// Command socbench measures the parallel fleet-simulation scaling
// trajectory: it runs the Table I experiment at several worker counts and
// writes a BENCH_fleet.json with wall-clock time, racks/sec throughput and
// allocation counts per configuration. It also cross-checks that every
// worker count produced a byte-identical table — the determinism contract
// the parallel runner guarantees.
//
// Usage:
//
//	socbench [-racks N] [-traindays D] [-evaldays D] [-seed S] [-out FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"time"

	"smartoclock/internal/causal"
	"smartoclock/internal/experiment"
)

// benchPoint is one worker-count measurement in BENCH_fleet.json.
type benchPoint struct {
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`
	RacksPerSec float64 `json:"racks_per_sec"`
	Allocs      uint64  `json:"allocs"`
	BytesAlloc  uint64  `json:"bytes_alloc"`
	Speedup     float64 `json:"speedup_vs_1"`
}

// benchReport is the top-level BENCH_fleet.json document.
type benchReport struct {
	Timestamp     string       `json:"timestamp"`
	GoMaxProcs    int          `json:"gomaxprocs"`
	NumCPU        int          `json:"num_cpu"`
	RacksPerClass int          `json:"racks_per_class"`
	TotalRacks    int          `json:"total_racks"`
	TrainDays     int          `json:"train_days"`
	EvalDays      int          `json:"eval_days"`
	Seed          int64        `json:"seed"`
	Deterministic bool         `json:"deterministic_across_workers"`
	Points        []benchPoint `json:"points"`
	// CriticalPath profiles the causal decision log of one observed run:
	// longest chain, decisions/messages, records per tick.
	CriticalPath *causal.Stats `json:"critical_path,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("socbench: ")

	racks := flag.Int("racks", 4, "racks per power class")
	trainDays := flag.Int("traindays", 7, "trace days used to fit templates")
	evalDays := flag.Int("evaldays", 3, "simulated days with the agents running")
	seed := flag.Int64("seed", 1, "deterministic generation seed")
	out := flag.String("out", "BENCH_fleet.json", "output JSON path")
	flag.Parse()

	// Worker counts: 1, 2, 4, ..., NumCPU, deduplicated and sorted. On a
	// single-core host this degenerates to just {1}, which still yields a
	// valid (if flat) trajectory.
	counts := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true}
	var workerCounts []int
	for w := range counts {
		if w >= 1 {
			workerCounts = append(workerCounts, w)
		}
	}
	sort.Ints(workerCounts)

	cfg := experiment.DefaultFleetSimConfig()
	cfg.RacksPerClass = *racks
	cfg.TrainDays = *trainDays
	cfg.EvalDays = *evalDays
	cfg.Seed = *seed
	// Table I simulates every (class, system) pair over RacksPerClass racks:
	// 3 classes x 5 systems.
	totalRacks := 3 * 5 * cfg.RacksPerClass

	rep := benchReport{
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		RacksPerClass: cfg.RacksPerClass,
		TotalRacks:    totalRacks,
		TrainDays:     cfg.TrainDays,
		EvalDays:      cfg.EvalDays,
		Seed:          cfg.Seed,
		Deterministic: true,
	}

	var refTable string
	var baseWall float64
	for _, w := range workerCounts {
		cfg.Workers = w
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		tbl, _, err := experiment.RunTable1(cfg)
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			log.Fatalf("workers=%d: %v", w, err)
		}
		formatted := tbl.Format()
		if refTable == "" {
			refTable = formatted
		} else if formatted != refTable {
			rep.Deterministic = false
			log.Printf("WARNING: workers=%d produced a different table than workers=%d", w, workerCounts[0])
		}

		pt := benchPoint{
			Workers:     w,
			WallSeconds: wall.Seconds(),
			RacksPerSec: float64(totalRacks) / wall.Seconds(),
			Allocs:      after.Mallocs - before.Mallocs,
			BytesAlloc:  after.TotalAlloc - before.TotalAlloc,
		}
		if baseWall == 0 {
			baseWall = pt.WallSeconds
		}
		pt.Speedup = baseWall / pt.WallSeconds
		rep.Points = append(rep.Points, pt)
		fmt.Fprintf(os.Stderr, "socbench: workers=%-3d wall=%.2fs racks/sec=%.1f allocs=%d speedup=%.2fx\n",
			w, pt.WallSeconds, pt.RacksPerSec, pt.Allocs, pt.Speedup)
	}

	// One extra observed run (at the widest worker count) profiles the causal
	// decision log: chain depth, decision/message counts, records per tick.
	// Kept out of the timed loop so tracing cost never skews the points.
	cfg.Workers = workerCounts[len(workerCounts)-1]
	if _, _, observation, err := experiment.RunTable1Observed(cfg); err != nil {
		log.Printf("WARNING: observed profiling run failed: %v", err)
	} else if observation != nil {
		stats := observation.CriticalPath
		rep.CriticalPath = &stats
		fmt.Fprintf(os.Stderr, "socbench: critical path: %d decisions, %d messages, max chain depth %d\n",
			stats.Decisions, stats.Messages, stats.MaxDepth)
	}

	if !rep.Deterministic {
		defer os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "socbench: wrote %s\n", *out)
}
