// Command socbench measures the parallel fleet-simulation scaling
// trajectory twice over:
//
//  1. The worker sweep — the Table I experiment at several worker counts,
//     with wall-clock time, racks/sec, allocation counts and honest
//     parallelism stamps per point. speedup_vs_1 is only recorded for
//     points the host could actually parallelize (workers <= GOMAXPROCS);
//     beyond that the field is omitted and a note explains why, so a
//     single-core runner can never again publish a "flat speedup" that is
//     really just an unrunnable configuration.
//  2. The fleet scale curve — streamed fleets at increasing rack counts
//     (default 30, 1000 and the paper's 7100 dedicated racks), recording
//     racks/sec and bytes/rack per point. Because shards generate their
//     racks on entry and drop them on exit, bytes/rack must stay flat (in
//     fact shrink) as the fleet grows.
//
// Both sections land in one BENCH_fleet.json. socbench also cross-checks
// that every worker count produced a byte-identical table — the
// determinism contract the parallel runner guarantees — and exits nonzero
// otherwise.
//
// Usage:
//
//	socbench [-racks N] [-traindays D] [-evaldays D] [-seed S]
//	         [-scale-racks 30,1000,7100] [-scale-servers N]
//	         [-scale-traindays D] [-scale-evaldays D] [-out FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"smartoclock/internal/causal"
	"smartoclock/internal/experiment"
)

// benchPoint is one worker-count measurement in BENCH_fleet.json.
type benchPoint struct {
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`
	RacksPerSec float64 `json:"racks_per_sec"`
	Allocs      uint64  `json:"allocs"`
	BytesAlloc  uint64  `json:"bytes_alloc"`

	// GoMaxProcs and EffectiveParallelism are stamped per point: the
	// parallelism the host could actually deliver for this worker count.
	GoMaxProcs           int `json:"gomaxprocs"`
	EffectiveParallelism int `json:"effective_parallelism"`

	// Speedup is wall(workers=1) / wall(this point). It is omitted — and
	// SpeedupNote set — when workers exceeds GOMAXPROCS, because the extra
	// workers never ran concurrently and the ratio would measure scheduler
	// noise, not scaling.
	Speedup     *float64 `json:"speedup_vs_1,omitempty"`
	SpeedupNote string   `json:"speedup_note,omitempty"`
}

// benchReport is the top-level BENCH_fleet.json document.
type benchReport struct {
	Timestamp     string       `json:"timestamp"`
	GoMaxProcs    int          `json:"gomaxprocs"`
	NumCPU        int          `json:"num_cpu"`
	RacksPerClass int          `json:"racks_per_class"`
	TotalRacks    int          `json:"total_racks"`
	TrainDays     int          `json:"train_days"`
	EvalDays      int          `json:"eval_days"`
	Seed          int64        `json:"seed"`
	Deterministic bool         `json:"deterministic_across_workers"`
	Points        []benchPoint `json:"points"`
	// Scale is the streamed-fleet scaling curve: one point per rack count,
	// each with racks/sec, bytes/rack and parallelism stamps.
	Scale []*experiment.ScaleResult `json:"scale,omitempty"`
	// CriticalPath profiles the causal decision log of one observed run:
	// longest chain, decisions/messages, records per tick.
	CriticalPath *causal.Stats `json:"critical_path,omitempty"`
}

// finishPoint applies the honest-parallelism policy to a measured point:
// stamp the effective parallelism, and either record speedup_vs_1 (when
// the host could run all workers) or omit it with an explanatory note.
// Pure so the policy is unit-testable.
func finishPoint(pt benchPoint, baseWall float64) benchPoint {
	pt.EffectiveParallelism = experiment.EffectiveParallelism(pt.Workers, pt.GoMaxProcs)
	if pt.Workers > pt.GoMaxProcs {
		pt.SpeedupNote = fmt.Sprintf(
			"workers=%d exceeds GOMAXPROCS=%d: only %d ran concurrently, so speedup_vs_1 is not meaningful",
			pt.Workers, pt.GoMaxProcs, pt.EffectiveParallelism)
		return pt
	}
	if baseWall > 0 && pt.WallSeconds > 0 {
		s := baseWall / pt.WallSeconds
		pt.Speedup = &s
	}
	return pt
}

// parseRackList parses a comma-separated list of rack counts, e.g.
// "30,1000,7100". An empty string yields an empty list (scale curve off).
func parseRackList(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad rack count %q (want positive integers, comma-separated)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("socbench: ")

	racks := flag.Int("racks", 4, "racks per power class")
	trainDays := flag.Int("traindays", 7, "trace days used to fit templates")
	evalDays := flag.Int("evaldays", 3, "simulated days with the agents running")
	seed := flag.Int64("seed", 1, "deterministic generation seed")
	scaleRacks := flag.String("scale-racks", "30,1000,7100", "comma-separated fleet sizes for the streamed scale curve (empty disables)")
	scaleServers := flag.Int("scale-servers", 6, "servers per rack on the scale curve (<= 0 uses the paper default)")
	scaleTrain := flag.Int("scale-traindays", 2, "training days per rack on the scale curve")
	scaleEval := flag.Int("scale-evaldays", 1, "evaluated days per rack on the scale curve")
	out := flag.String("out", "BENCH_fleet.json", "output JSON path")
	flag.Parse()

	scaleSizes, err := parseRackList(*scaleRacks)
	if err != nil {
		log.Fatalf("-scale-racks: %v", err)
	}

	// Worker counts: 1, 2, 4, ..., NumCPU, deduplicated and sorted. On a
	// single-core host only the workers=1 point carries speedup_vs_1; the
	// rest are stamped with effective_parallelism=1 and a note.
	counts := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true}
	var workerCounts []int
	for w := range counts {
		if w >= 1 {
			workerCounts = append(workerCounts, w)
		}
	}
	sort.Ints(workerCounts)

	cfg := experiment.DefaultFleetSimConfig()
	cfg.RacksPerClass = *racks
	cfg.TrainDays = *trainDays
	cfg.EvalDays = *evalDays
	cfg.Seed = *seed
	// Table I simulates every (class, system) pair over RacksPerClass racks:
	// 3 classes x 5 systems.
	totalRacks := 3 * 5 * cfg.RacksPerClass

	rep := benchReport{
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		RacksPerClass: cfg.RacksPerClass,
		TotalRacks:    totalRacks,
		TrainDays:     cfg.TrainDays,
		EvalDays:      cfg.EvalDays,
		Seed:          cfg.Seed,
		Deterministic: true,
	}

	var refTable string
	var baseWall float64
	for _, w := range workerCounts {
		cfg.Workers = w
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		tbl, _, err := experiment.RunTable1(cfg)
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			log.Fatalf("workers=%d: %v", w, err)
		}
		formatted := tbl.Format()
		if refTable == "" {
			refTable = formatted
		} else if formatted != refTable {
			rep.Deterministic = false
			log.Printf("WARNING: workers=%d produced a different table than workers=%d", w, workerCounts[0])
		}

		pt := benchPoint{
			Workers:     w,
			WallSeconds: wall.Seconds(),
			RacksPerSec: float64(totalRacks) / wall.Seconds(),
			Allocs:      after.Mallocs - before.Mallocs,
			BytesAlloc:  after.TotalAlloc - before.TotalAlloc,
			GoMaxProcs:  runtime.GOMAXPROCS(0),
		}
		if baseWall == 0 {
			baseWall = pt.WallSeconds
		}
		pt = finishPoint(pt, baseWall)
		rep.Points = append(rep.Points, pt)
		speedup := "n/a (workers > GOMAXPROCS)"
		if pt.Speedup != nil {
			speedup = fmt.Sprintf("%.2fx", *pt.Speedup)
		}
		fmt.Fprintf(os.Stderr, "socbench: workers=%-3d eff=%d wall=%.2fs racks/sec=%.1f allocs=%d speedup=%s\n",
			w, pt.EffectiveParallelism, pt.WallSeconds, pt.RacksPerSec, pt.Allocs, speedup)
	}

	// The streamed scale curve: each fleet size runs once with the worker
	// bound left at GOMAXPROCS. bytes/rack across the curve is the
	// O(active shard) witness — it must not grow with the fleet.
	for _, n := range scaleSizes {
		sc := experiment.DefaultScaleConfig(n)
		sc.Seed = *seed
		sc.TrainDays = *scaleTrain
		sc.EvalDays = *scaleEval
		sc.ServersPerRack = *scaleServers
		res, err := experiment.RunFleetScale(sc)
		if err != nil {
			log.Fatalf("scale racks=%d: %v", n, err)
		}
		rep.Scale = append(rep.Scale, res)
		fmt.Fprintf(os.Stderr, "socbench: scale racks=%-5d wall=%.1fs racks/sec=%.1f bytes/rack=%d peak=%dMB eff=%d\n",
			n, res.WallSeconds, res.RacksPerSec, res.BytesPerRack, res.PeakHeapBytes>>20, res.EffectiveParallelism)
	}

	// One extra observed run (at the widest worker count) profiles the causal
	// decision log: chain depth, decision/message counts, records per tick.
	// Kept out of the timed loop so tracing cost never skews the points.
	cfg.Workers = workerCounts[len(workerCounts)-1]
	if _, _, observation, err := experiment.RunTable1Observed(cfg); err != nil {
		log.Printf("WARNING: observed profiling run failed: %v", err)
	} else if observation != nil {
		stats := observation.CriticalPath
		rep.CriticalPath = &stats
		fmt.Fprintf(os.Stderr, "socbench: critical path: %d decisions, %d messages, max chain depth %d\n",
			stats.Decisions, stats.Messages, stats.MaxDepth)
	}

	if !rep.Deterministic {
		defer os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "socbench: wrote %s\n", *out)
}
