package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestFinishPointOmitsSpeedupBeyondGoMaxProcs is the regression test for
// the flat-speedup methodology bug: a single-core host used to record
// speedup_vs_1 ~= 1.0 for workers=2 and workers=4 as if the sweep had
// measured scaling. Points whose worker bound exceeds GOMAXPROCS must now
// omit the field entirely and carry an explanatory note instead.
func TestFinishPointOmitsSpeedupBeyondGoMaxProcs(t *testing.T) {
	pt := finishPoint(benchPoint{Workers: 4, WallSeconds: 2.0, GoMaxProcs: 1}, 2.1)
	if pt.Speedup != nil {
		t.Errorf("workers=4 on GOMAXPROCS=1 recorded speedup_vs_1 = %v", *pt.Speedup)
	}
	if pt.SpeedupNote == "" {
		t.Error("omitted speedup carries no explanatory note")
	}
	if pt.EffectiveParallelism != 1 {
		t.Errorf("effective parallelism = %d, want 1", pt.EffectiveParallelism)
	}

	raw, err := json.Marshal(pt)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"speedup_vs_1":`) {
		t.Errorf("marshaled point still contains speedup_vs_1: %s", raw)
	}
	for _, key := range []string{"gomaxprocs", "effective_parallelism", "speedup_note"} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("marshaled point missing %q: %s", key, raw)
		}
	}
}

// TestFinishPointRecordsSpeedupWithinGoMaxProcs covers the honest side:
// when the host can actually run the workers, speedup is measured against
// the workers=1 wall time and survives the JSON round trip.
func TestFinishPointRecordsSpeedupWithinGoMaxProcs(t *testing.T) {
	pt := finishPoint(benchPoint{Workers: 2, WallSeconds: 1.0, GoMaxProcs: 4}, 2.0)
	if pt.Speedup == nil {
		t.Fatal("workers=2 on GOMAXPROCS=4 omitted speedup_vs_1")
	}
	if *pt.Speedup != 2.0 {
		t.Errorf("speedup = %v, want 2.0", *pt.Speedup)
	}
	if pt.SpeedupNote != "" {
		t.Errorf("unexpected note on a valid speedup: %q", pt.SpeedupNote)
	}
	if pt.EffectiveParallelism != 2 {
		t.Errorf("effective parallelism = %d, want 2", pt.EffectiveParallelism)
	}
	raw, err := json.Marshal(pt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"speedup_vs_1":2`) {
		t.Errorf("marshaled point missing speedup_vs_1: %s", raw)
	}
	if strings.Contains(string(raw), "speedup_note") {
		t.Errorf("marshaled point has a spurious note: %s", raw)
	}
}

// The workers=1 baseline point divides by itself: speedup exactly 1.
func TestFinishPointBaseline(t *testing.T) {
	pt := finishPoint(benchPoint{Workers: 1, WallSeconds: 2.5, GoMaxProcs: 1}, 2.5)
	if pt.Speedup == nil || *pt.Speedup != 1.0 {
		t.Errorf("baseline speedup = %v, want 1.0", pt.Speedup)
	}
}

func TestParseRackList(t *testing.T) {
	got, err := parseRackList("30, 1000,7100")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{30, 1000, 7100}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parsed %v, want %v", got, want)
		}
	}
	if got, err := parseRackList(""); err != nil || got != nil {
		t.Errorf("empty list: got %v, %v", got, err)
	}
	for _, bad := range []string{"30,x", "0", "-5", "30,,40"} {
		if _, err := parseRackList(bad); err == nil {
			t.Errorf("parseRackList(%q) accepted invalid input", bad)
		}
	}
}
