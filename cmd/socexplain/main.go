// Command socexplain answers "why did the control plane do that": given a
// span ID it prints the decision record, its full causal ancestry
// (root-first: the workload-interface request, the budget broadcast, the
// admission verdict...) and its direct consequences.
//
// It reads either a provenance log written offline (socsim -prov-out) or a
// live soccluster -serve telemetry endpoint's /explain:
//
//	socexplain -log PROV.jsonl [-json] <span>
//	socexplain [-addr http://127.0.0.1:9188] [-json] <span>
//	socexplain [-log PROV.jsonl | -addr URL] -recent N
//
// -recent lists the N newest provenance records instead — the discovery
// path when no span is at hand yet.
//
// The span ID is the 16-digit hex printed by trace events, provenance
// records and the zoo/report summaries. The address falls back to
// $SOC_API_ADDR (the telemetry listener is shared with the /api plane).
//
// Exit codes: 0 success, 1 usage error, 2 span not found, 3 read or
// transport failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"smartoclock/internal/causal"
	"smartoclock/internal/telemetry"
)

const (
	exitOK = iota
	exitUsage
	exitNotFound
	exitFailure
)

func fatalf(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "socexplain: "+format+"\n", args...)
	os.Exit(code)
}

func main() {
	logPath := flag.String("log", "", "read this provenance log (JSON Lines, from socsim -prov-out) instead of querying a server")
	addr := flag.String("addr", envOr("SOC_API_ADDR", "http://127.0.0.1:9188"), "telemetry base URL ($SOC_API_ADDR)")
	asJSON := flag.Bool("json", false, "print the explanation as JSON")
	recent := flag.Int("recent", 0, "instead of explaining a span, list the N newest provenance records (span discovery)")
	timeout := flag.Duration("timeout", 10*time.Second, "request timeout")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: socexplain [-log PROV.jsonl | -addr URL] [-json] <span>\n       socexplain [-log PROV.jsonl | -addr URL] [-json] -recent N")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *recent > 0 {
		if flag.NArg() != 0 {
			flag.Usage()
			os.Exit(exitUsage)
		}
		listRecent(*logPath, *addr, *recent, *timeout, *asJSON)
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(exitUsage)
	}

	var ex *telemetry.Explanation
	if *logPath != "" {
		ex = explainOffline(*logPath, flag.Arg(0))
	} else {
		ex = explainRemote(*addr, flag.Arg(0), *timeout)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.SetEscapeHTML(false)
		if err := enc.Encode(ex); err != nil {
			fatalf(exitFailure, "%v", err)
		}
		return
	}
	render(os.Stdout, ex)
}

// listRecent prints the N newest provenance records — the span-discovery
// path: pick a span from here, then explain it.
func listRecent(logPath, addr string, n int, timeout time.Duration, asJSON bool) {
	var rr telemetry.RecentRecords
	if logPath != "" {
		f, err := os.Open(logPath)
		if err != nil {
			fatalf(exitFailure, "%v", err)
		}
		defer f.Close()
		log, err := causal.ReadLog(f)
		if err != nil {
			fatalf(exitFailure, "%s: %v", logPath, err)
		}
		recs := log.Records
		if len(recs) > n {
			recs = recs[len(recs)-n:]
		}
		rr = telemetry.RecentRecords{Records: recs, Held: log.Len(), Total: log.Len()}
	} else {
		base := addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		u := strings.TrimRight(base, "/") + "/explain?recent=" + strconv.Itoa(n)
		client := &http.Client{Timeout: timeout}
		resp, err := client.Get(u)
		if err != nil {
			fatalf(exitFailure, "%v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			fatalf(exitFailure, "%v", err)
		}
		if resp.StatusCode != http.StatusOK {
			fatalf(exitFailure, "%s: %s", resp.Status, strings.TrimSpace(string(body)))
		}
		if err := json.Unmarshal(body, &rr); err != nil {
			fatalf(exitFailure, "bad /explain response: %v", err)
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.SetEscapeHTML(false)
		if err := enc.Encode(&rr); err != nil {
			fatalf(exitFailure, "%v", err)
		}
		return
	}
	for i := range rr.Records {
		fmt.Println(causal.FormatRecord(&rr.Records[i]))
	}
	fmt.Fprintf(os.Stderr, "socexplain: %d of %d held records (%d ever recorded)\n",
		len(rr.Records), rr.Held, rr.Total)
}

// explainOffline answers from a -prov-out JSONL file, producing the same
// Explanation shape the live /explain endpoint returns.
func explainOffline(path, span string) *telemetry.Explanation {
	id, err := causal.ParseSpan(span)
	if err != nil {
		fatalf(exitUsage, "%v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		fatalf(exitFailure, "%v", err)
	}
	defer f.Close()
	log, err := causal.ReadLog(f)
	if err != nil {
		fatalf(exitFailure, "%s: %v", path, err)
	}
	rec := log.Find(id)
	if rec == nil {
		fatalf(exitNotFound, "span %s not in %s (%d records)", id, path, log.Len())
	}
	chain := log.Chain(id)
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return &telemetry.Explanation{
		Span:     id.String(),
		Record:   *rec,
		Chain:    chain,
		Children: log.Children(id),
		Held:     log.Len(),
		Total:    log.Len(),
	}
}

// explainRemote queries a live telemetry server's /explain endpoint.
func explainRemote(addr, span string, timeout time.Duration) *telemetry.Explanation {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	u := strings.TrimRight(base, "/") + "/explain?span=" + url.QueryEscape(span)
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(u)
	if err != nil {
		fatalf(exitFailure, "%v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf(exitFailure, "%v", err)
	}
	switch {
	case resp.StatusCode == http.StatusNotFound:
		fatalf(exitNotFound, "%s", strings.TrimSpace(string(body)))
	case resp.StatusCode != http.StatusOK:
		fatalf(exitFailure, "%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var ex telemetry.Explanation
	if err := json.Unmarshal(body, &ex); err != nil {
		fatalf(exitFailure, "bad /explain response: %v", err)
	}
	return &ex
}

func render(w io.Writer, ex *telemetry.Explanation) {
	fmt.Fprintf(w, "span %s: %s/%s %s\n\n", ex.Span, ex.Record.Component, ex.Record.Site, ex.Record.Verdict)
	fmt.Fprintf(w, "causal chain (root first):\n")
	_ = causal.WriteChain(w, ex.Chain)
	if len(ex.Children) > 0 {
		fmt.Fprintf(w, "\nconsequences:\n")
		for i := range ex.Children {
			fmt.Fprintf(w, "  %s\n", causal.FormatRecord(&ex.Children[i]))
		}
	}
	if ex.Held != ex.Total {
		fmt.Fprintf(w, "\n(window holds %d of %d records; older ancestors may have aged out)\n", ex.Held, ex.Total)
	}
}

func envOr(key, fallback string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return fallback
}
