// Command socctl is the operator CLI of the live-cluster control plane: it
// speaks the authenticated /api/v1 HTTP API a `soccluster -serve -api-tokens`
// process exposes, one subcommand per endpoint.
//
// Usage:
//
//	socctl [-addr http://127.0.0.1:9188] [-token T] [-json] <command> [args]
//
// Commands:
//
//	status                                   cluster control-state snapshot
//	deploy   -name N -server S -cores C [-util U]   register a deployment
//	drain    -name N                         drain and remove a deployment
//	profile  -server S -median W [-requested C] [-granted C] [-core-cost W]
//	budget   -server S -watts W              set a static sOA power budget
//	assign   [-step MINUTES]                 gOA budget templates -> all sOAs
//	severity -server S -class 0..3           reclassify capping severity
//	oc       -server S -vm V [-cores C] [-mhz F] [-duration SECONDS]
//	ocstop   -server S -vm V                 cancel an overclock session
//	chaos    -agent A [-up]                  take an agent down (or back up)
//	checkpoint                               force a durable checkpoint now
//	advance  [-ticks N]                      run N ticks (hold mode only)
//	shutdown                                 end the live run gracefully
//	explain  [-span] ID                      causal chain behind a decision span
//
// The address and token fall back to $SOC_API_ADDR and $SOC_API_TOKEN.
// -json prints the raw response body instead of the human rendering.
//
// Exit codes: 0 success, 1 usage error, 2 request rejected (4xx),
// 3 server/transport failure (5xx, unreachable), 4 authentication or
// authorization failure (401/403), 5 rate limited (429).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"smartoclock/internal/api"
	"smartoclock/internal/causal"
	"smartoclock/internal/telemetry"
)

const (
	exitOK = iota
	exitUsage
	exitRejected
	exitFailure
	exitAuth
	exitRateLimited
)

// exitCodeFor maps an API call error to the documented exit code.
func exitCodeFor(err error) int {
	var re *api.RemoteError
	if errors.As(err, &re) {
		switch {
		case re.StatusCode == 401 || re.StatusCode == 403:
			return exitAuth
		case re.StatusCode == 429:
			return exitRateLimited
		case re.StatusCode >= 400 && re.StatusCode < 500:
			return exitRejected
		default:
			return exitFailure
		}
	}
	var ae *api.Error
	if errors.As(err, &ae) {
		return exitRejected
	}
	return exitFailure
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "socctl: %v\n", err)
	os.Exit(exitCodeFor(err))
}

func usage(fs *flag.FlagSet, msg string) {
	fmt.Fprintf(os.Stderr, "socctl: %s\n", msg)
	if fs != nil {
		fs.Usage()
	}
	os.Exit(exitUsage)
}

// printJSON renders v as indented JSON (the -json output path).
func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func main() {
	root := flag.NewFlagSet("socctl", flag.ExitOnError)
	addr := root.String("addr", envOr("SOC_API_ADDR", "http://127.0.0.1:9188"), "control-plane base URL ($SOC_API_ADDR)")
	token := root.String("token", os.Getenv("SOC_API_TOKEN"), "bearer token ($SOC_API_TOKEN)")
	asJSON := root.Bool("json", false, "print raw JSON responses")
	timeout := root.Duration("timeout", 30*time.Second, "request timeout")
	root.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: socctl [flags] <command> [args]  (see 'go doc ./cmd/socctl')")
		root.PrintDefaults()
	}
	_ = root.Parse(os.Args[1:])
	if root.NArg() < 1 {
		usage(root, "missing command")
	}
	cmd, args := root.Arg(0), root.Args()[1:]

	client := api.NewClient(*addr, *token)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch cmd {
	case "status":
		st, err := client.Status(ctx)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			printJSON(st)
			return
		}
		printStatus(st)

	case "deploy":
		fs := flag.NewFlagSet("deploy", flag.ExitOnError)
		name := fs.String("name", "", "deployment name")
		server := fs.String("server", "", "target server")
		cores := fs.Int("cores", 0, "cores to allocate")
		util := fs.Float64("util", 0.5, "steady-state core utilization [0,1]")
		_ = fs.Parse(args)
		st, err := client.RegisterDeployment(ctx, api.DeploymentSpec{
			Name: *name, Server: *server, Cores: *cores, Util: *util,
		})
		if err != nil {
			fail(err)
		}
		if *asJSON {
			printJSON(st)
			return
		}
		fmt.Printf("deployed %s on %s cores %v at util %.2f\n", st.Name, st.Server, st.Cores, st.Util)

	case "drain":
		fs := flag.NewFlagSet("drain", flag.ExitOnError)
		name := fs.String("name", "", "deployment name")
		_ = fs.Parse(args)
		if err := client.DrainDeployment(ctx, *name); err != nil {
			fail(err)
		}
		ack(*asJSON, "drained %s\n", *name)

	case "profile":
		fs := flag.NewFlagSet("profile", flag.ExitOnError)
		server := fs.String("server", "", "target server")
		median := fs.Float64("median", 0, "median power template level in watts")
		requested := fs.Float64("requested", 0, "requested-cores template level")
		granted := fs.Float64("granted", 0, "granted-cores template level")
		coreCost := fs.Float64("core-cost", 0, "per-core overclock cost in watts (0 uses the host model)")
		_ = fs.Parse(args)
		err := client.SetProfile(ctx, api.ProfileSpec{
			Server: *server, MedianWatts: *median,
			RequestedCores: *requested, GrantedCores: *granted, CoreCostWatts: *coreCost,
		})
		if err != nil {
			fail(err)
		}
		ack(*asJSON, "profiled %s at %.1f W\n", *server, *median)

	case "budget":
		fs := flag.NewFlagSet("budget", flag.ExitOnError)
		server := fs.String("server", "", "target server")
		watts := fs.Float64("watts", 0, "static power budget in watts")
		_ = fs.Parse(args)
		if err := client.SetBudget(ctx, api.BudgetSpec{Server: *server, Watts: *watts}); err != nil {
			fail(err)
		}
		ack(*asJSON, "budget %s = %.1f W\n", *server, *watts)

	case "assign":
		fs := flag.NewFlagSet("assign", flag.ExitOnError)
		step := fs.Int("step", 0, "template slot width in minutes (0 = 60)")
		_ = fs.Parse(args)
		st, err := client.AssignBudgets(ctx, api.AssignSpec{StepMinutes: *step})
		if err != nil {
			fail(err)
		}
		if *asJSON {
			printJSON(st)
			return
		}
		fmt.Printf("assigned budgets to %d servers\n", st.Servers)
		for _, name := range sortedKeys(st.Budgets) {
			fmt.Printf("  %-8s %.1f W\n", name, st.Budgets[name])
		}

	case "severity":
		fs := flag.NewFlagSet("severity", flag.ExitOnError)
		server := fs.String("server", "", "target server")
		class := fs.Int("class", 0, "severity class: 0 critical ... 3 harvest")
		_ = fs.Parse(args)
		if err := client.SetSeverity(ctx, api.SeveritySpec{Server: *server, Severity: *class}); err != nil {
			fail(err)
		}
		ack(*asJSON, "severity %s = %d\n", *server, *class)

	case "oc":
		fs := flag.NewFlagSet("oc", flag.ExitOnError)
		server := fs.String("server", "", "target server")
		vm := fs.String("vm", "", "vm or deployment name")
		cores := fs.Int("cores", 0, "cores to overclock (0 = all the vm owns)")
		mhz := fs.Int("mhz", 0, "target frequency (0 = host maximum)")
		duration := fs.Int("duration", 0, "session bound in simulated seconds (0 = open-ended)")
		_ = fs.Parse(args)
		st, err := client.StartOverclock(ctx, api.OCSpec{
			Server: *server, VM: *vm, Cores: *cores, TargetMHz: *mhz, DurationSec: *duration,
		})
		if err != nil {
			fail(err)
		}
		if *asJSON {
			printJSON(st)
			return
		}
		if st.Granted {
			fmt.Printf("granted: cores %v\n", st.Cores)
		} else {
			fmt.Printf("denied: %s\n", st.Reason)
		}

	case "ocstop":
		fs := flag.NewFlagSet("ocstop", flag.ExitOnError)
		server := fs.String("server", "", "target server")
		vm := fs.String("vm", "", "vm or deployment name")
		_ = fs.Parse(args)
		if err := client.StopOverclock(ctx, api.StopSpec{Server: *server, VM: *vm}); err != nil {
			fail(err)
		}
		ack(*asJSON, "stopped %s on %s\n", *vm, *server)

	case "chaos":
		fs := flag.NewFlagSet("chaos", flag.ExitOnError)
		agent := fs.String("agent", "", `agent: "goa", "soa/<server>" or a bare server name`)
		up := fs.Bool("up", false, "bring the agent back up instead of taking it down")
		_ = fs.Parse(args)
		st, err := client.SetChaos(ctx, api.ChaosSpec{Agent: *agent, Down: !*up})
		if err != nil {
			fail(err)
		}
		if *asJSON {
			printJSON(st)
			return
		}
		state := "down"
		if !st.Down {
			state = "up"
		}
		fmt.Printf("%s is %s; down agents: %v\n", st.Agent, state, st.DownAgents)

	case "checkpoint":
		st, err := client.ForceCheckpoint(ctx)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			printJSON(st)
			return
		}
		fmt.Printf("checkpoint #%d: %d bytes to %s at %s\n",
			st.Writes, st.Bytes, st.Path, st.SavedAt.Format(time.RFC3339))

	case "advance":
		fs := flag.NewFlagSet("advance", flag.ExitOnError)
		ticks := fs.Int("ticks", 1, "ticks to run")
		_ = fs.Parse(args)
		st, err := client.Advance(ctx, api.AdvanceSpec{Ticks: *ticks})
		if err != nil {
			fail(err)
		}
		if *asJSON {
			printJSON(st)
			return
		}
		fmt.Printf("advanced %d ticks to %s\n", st.Ticks, st.Now.Format(time.RFC3339))

	case "shutdown":
		if err := client.Shutdown(ctx); err != nil {
			fail(err)
		}
		ack(*asJSON, "shutdown requested\n")

	case "explain":
		fs := flag.NewFlagSet("explain", flag.ExitOnError)
		span := fs.String("span", "", "span ID (16-digit hex) to explain")
		_ = fs.Parse(args)
		target := *span
		if target == "" && fs.NArg() == 1 {
			target = fs.Arg(0)
		}
		if target == "" {
			usage(fs, "explain needs a span ID")
		}
		explain(*addr, target, *timeout, *asJSON)

	default:
		usage(root, fmt.Sprintf("unknown command %q", cmd))
	}
}

// explain asks the telemetry plane (same listener as /api/v1, unauthenticated
// read path) why a span's decision happened and renders the causal chain.
func explain(addr, span string, timeout time.Duration, asJSON bool) {
	base := strings.TrimRight(addr, "/")
	hc := &http.Client{Timeout: timeout}
	resp, err := hc.Get(base + "/explain?span=" + url.QueryEscape(span))
	if err != nil {
		fmt.Fprintf(os.Stderr, "socctl: %v\n", err)
		os.Exit(exitFailure)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "socctl: %v\n", err)
		os.Exit(exitFailure)
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "socctl: %s\n", strings.TrimSpace(string(body)))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			os.Exit(exitRejected)
		}
		os.Exit(exitFailure)
	}
	var ex telemetry.Explanation
	if err := json.Unmarshal(body, &ex); err != nil {
		fmt.Fprintf(os.Stderr, "socctl: bad /explain response: %v\n", err)
		os.Exit(exitFailure)
	}
	if asJSON {
		printJSON(&ex)
		return
	}
	fmt.Printf("span %s: %s/%s %s\n", ex.Span, ex.Record.Component, ex.Record.Site, ex.Record.Verdict)
	_ = causal.WriteChain(os.Stdout, ex.Chain)
	for i := range ex.Children {
		fmt.Printf("  -> %s\n", causal.FormatRecord(&ex.Children[i]))
	}
}

// ack prints a human acknowledgement, or the canonical ok envelope in JSON
// mode.
func ack(asJSON bool, format string, args ...any) {
	if asJSON {
		printJSON(map[string]bool{"ok": true})
		return
	}
	fmt.Printf(format, args...)
}

func printStatus(st *api.ClusterStatus) {
	hold := ""
	if st.Hold {
		hold = " [hold]"
	}
	fmt.Printf("now %s%s  ticks %d  oc %d/%d granted  violations %d\n",
		st.Now.Format(time.RFC3339), hold, st.Ticks, st.Granted, st.Requests, st.Violations)
	fmt.Printf("rack %s: %.1f / %.1f W  cap events %d  warnings %d\n",
		st.Rack.Name, st.Rack.PowerWatts, st.Rack.LimitWatts, st.Rack.CapEvents, st.Rack.Warnings)
	if len(st.ChaosDown) > 0 {
		fmt.Printf("chaos: down %v, %d messages dropped\n", st.ChaosDown, st.ChaosDropped)
	}
	if st.Checkpoint.Path != "" {
		fmt.Printf("checkpoint: %s (%d writes, last %d bytes)\n",
			st.Checkpoint.Path, st.Checkpoint.Writes, st.Checkpoint.LastBytes)
	}
	for _, s := range st.Servers {
		fmt.Printf("  %-8s sev %d/%s cap L%d  %.1f W of %.1f W budget\n",
			s.Name, s.Severity, s.SeverityName, s.CapLevel, s.PowerWatts, s.BudgetWatts)
		for _, d := range s.Deployments {
			fmt.Printf("    deploy %-12s cores %v util %.2f\n", d.Name, d.Cores, d.Util)
		}
		for _, sess := range s.Sessions {
			fmt.Printf("    oc     %-12s cores %v at %d MHz (%s)\n", sess.VM, sess.Cores, sess.MHz, sess.Priority)
		}
	}
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func envOr(key, fallback string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return fallback
}
