// Command socsim runs the large-scale trace-driven simulation of §V-B:
// Table I (SmartOClock vs Central / NaiveOClock / NoFeedback / NoWarning
// across High/Medium/Low-power clusters) and Fig 15 (power prediction
// strategies).
//
// Usage:
//
//	socsim [-racks N] [-traindays D] [-evaldays D] [-seed S] [-table1] [-fig15] [-chaos] [-recovery] [-zoo] [-oversub] [-contention]
//
// With no experiment flag the paper experiments run (Table I, Fig 15,
// ablations). -chaos runs the fault-injection experiment instead: a rack
// under 25% message loss, a 1-hour gOA outage and sOA crash/restarts, with
// the runtime invariant checker asserting safety on every tick. -recovery
// runs the crash-recovery experiment: a control-plane crash mid-run,
// comparing cold restarts against warm restarts from checkpoints of
// varying staleness (time-to-first-grant, grant-availability gap, budget
// divergence from an uninterrupted oracle). -zoo runs the policy ×
// scenario stress matrix: every certified policy set crossed with every
// adversarial zoo scenario (flash crowds, correlated surges, outlier-day
// storms, mixed hardware, sensor drift), each cell watched by the
// invariant checker; -zoo-policies and -zoo-scenarios narrow the matrix
// (the unsafe "canary" set is addressable by name for negative runs).
// -oversub runs the power-oversubscription sweep: predicted-peak admission
// against severity-ordered capping across oversubscription ratios, with
// the NoBrownout and SeverityOrder invariants armed. -contention runs
// oversubscription admission and sOA overclock sessions competing for the
// same rack headroom; -oversub-ratios overrides the swept ratios for both.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"smartoclock/internal/causal"
	"smartoclock/internal/experiment"
	"smartoclock/internal/metrics"
	"smartoclock/internal/obs"
	"smartoclock/internal/policy"
	"smartoclock/internal/trace"
)

// writeMetrics writes a snapshot to path: Prometheus text exposition by
// default, JSON when the path ends in .json.
func writeMetrics(path string, snap *metrics.Snapshot) {
	if path == "" || snap == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		err = snap.WriteJSON(f)
	} else {
		err = snap.WriteProm(f)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// writeTrace writes the event trace to path as JSON Lines.
func writeTrace(path string, tr *obs.Tracer) {
	if path == "" || tr == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := tr.WriteJSONL(f); err != nil {
		log.Fatal(err)
	}
}

// writeSeries writes a recording to path: CSV by default, JSON when the
// path ends in .json.
func writeSeries(path string, rec *metrics.Recording) {
	if path == "" || rec == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		err = rec.WriteJSON(f)
	} else {
		err = rec.WriteCSV(f)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// writeProv writes a causal decision-provenance log to path as JSON Lines.
func writeProv(path string, log_ *causal.Log) {
	if path == "" || log_ == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := log_.WriteJSONL(f); err != nil {
		log.Fatal(err)
	}
}

// parseComponents parses a -trace-components value, exiting on bad input.
func parseComponents(s string) []obs.Component {
	comps, err := obs.ParseComponents(s)
	if err != nil {
		log.Fatal(err)
	}
	return comps
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("socsim: ")

	racks := flag.Int("racks", 6, "racks per power class for Table I")
	trainDays := flag.Int("traindays", 7, "trace days used to fit templates")
	evalDays := flag.Int("evaldays", 5, "simulated days with the agents running")
	seed := flag.Int64("seed", 1, "deterministic generation seed")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent rack-simulation workers (results are identical at any count)")
	fig15Racks := flag.Int("fig15racks", 30, "racks for the Fig 15 prediction study")
	runTable1 := flag.Bool("table1", false, "run only Table I")
	runFig15 := flag.Bool("fig15", false, "run only Fig 15")
	runAblations := flag.Bool("ablations", false, "run only the design-choice ablations")
	runChaos := flag.Bool("chaos", false, "run the fault-injection experiment (gOA outage, lossy control plane, sOA crashes)")
	runRecovery := flag.Bool("recovery", false, "run the crash-recovery experiment (cold vs warm restart from checkpoints)")
	runZoo := flag.Bool("zoo", false, "run the policy × scenario stress matrix with the invariant checker armed")
	runOversub := flag.Bool("oversub", false, "run the power-oversubscription sweep (predicted-peak admission vs severity-ordered capping)")
	runContention := flag.Bool("contention", false, "run the oversubscription-vs-overclocking contention sweep on shared rack headroom")
	oversubRatios := flag.String("oversub-ratios", "", "comma-separated oversubscription ratios for -oversub/-contention (default: the built-in sweep)")
	zooPolicies := flag.String("zoo-policies", "", "comma-separated policy sets for -zoo (default: all certified sets; 'canary' selects the unsafe negative control)")
	zooScenarios := flag.String("zoo-scenarios", "", "comma-separated zoo scenarios for -zoo (default: the full catalog)")
	zooDuration := flag.Duration("zoo-duration", 0, "override the simulated duration of each -zoo cell")
	metricsOut := flag.String("metrics-out", "", "write the metrics snapshot of the Table I run (or -chaos run) here; .json selects JSON, anything else Prometheus text")
	traceOut := flag.String("trace-out", "", "write the structured event trace of the Table I run (or -chaos run) here as JSON Lines")
	seriesOut := flag.String("series-out", "", "write the recorded time series of the Table I run (or -chaos run) here; .json selects JSON, anything else CSV")
	recordEvery := flag.Duration("record-every", 0, "sampling interval (sim time) for -series-out; defaults to 1h for Table I and 30s for -chaos")
	traceComponents := flag.String("trace-components", "", "comma-separated obs components to trace (e.g. soa,rack,alert); empty traces everything")
	provOut := flag.String("prov-out", "", "write the causal decision-provenance log (-zoo matrix or Table I run) here as JSON Lines, explorable with socexplain")
	flag.Parse()
	observe := *metricsOut != "" || *traceOut != "" || *seriesOut != "" || *provOut != ""
	comps := parseComponents(*traceComponents)

	if *runChaos {
		cfg := experiment.DefaultChaosConfig()
		cfg.Seed = *seed
		cfg.TraceOnly = comps
		if *recordEvery > 0 {
			cfg.RecordEvery = *recordEvery
		}
		fmt.Fprintf(os.Stderr, "socsim: chaos run — %d servers, %v, %.0f%% drop, %v gOA outage, %d sOA crashes...\n",
			cfg.Servers, cfg.Duration, 100*cfg.DropProb, cfg.GOAOutage, cfg.SOACrashes)
		res, err := experiment.RunChaos(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Format())
		fmt.Println(experiment.FormatAlerts(res.Alerts).Format())
		writeMetrics(*metricsOut, res.Metrics)
		writeTrace(*traceOut, res.Trace)
		writeSeries(*seriesOut, res.Series)
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		return
	}

	if *runZoo {
		cfg := experiment.DefaultZooConfig()
		cfg.Seed = *seed
		cfg.Workers = *workers
		if *zooDuration > 0 {
			cfg.Duration = *zooDuration
		}
		for _, name := range strings.Split(*zooPolicies, ",") {
			if name = strings.TrimSpace(name); name == "" {
				continue
			}
			f, err := policy.Lookup(name)
			if err != nil {
				log.Fatal(err)
			}
			cfg.Policies = append(cfg.Policies, f)
		}
		for _, name := range strings.Split(*zooScenarios, ",") {
			if name = strings.TrimSpace(name); name == "" {
				continue
			}
			sc, err := trace.ZooByName(name, cfg.Seed)
			if err != nil {
				log.Fatal(err)
			}
			cfg.Scenarios = append(cfg.Scenarios, sc)
		}
		pols, scs := "all certified sets", "full catalog"
		if len(cfg.Policies) > 0 {
			pols = *zooPolicies
		}
		if len(cfg.Scenarios) > 0 {
			scs = *zooScenarios
		}
		fmt.Fprintf(os.Stderr, "socsim: zoo run — policies %s × scenarios %s, %v per cell (%d workers)...\n",
			pols, scs, cfg.Duration, *workers)
		res, err := experiment.RunZoo(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Format())
		writeProv(*provOut, res.ProvenanceLog())
		if res.Err != nil {
			for _, c := range res.Cells {
				for i, v := range c.Violations {
					if i == 3 {
						fmt.Fprintf(os.Stderr, "socsim: %s×%s: ... %d more violations\n",
							c.Policy, c.Scenario, len(c.Violations)-i)
						break
					}
					fmt.Fprintf(os.Stderr, "socsim: %s×%s: %v\n", c.Policy, c.Scenario, v)
				}
			}
			log.Fatal(res.Err)
		}
		return
	}

	if *runOversub || *runContention {
		cfg := experiment.DefaultOversubConfig()
		cfg.Seed = *seed
		cfg.Workers = *workers
		if *oversubRatios != "" {
			cfg.Ratios = nil
			for _, f := range strings.Split(*oversubRatios, ",") {
				r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
				if err != nil {
					log.Fatalf("bad -oversub-ratios value %q: %v", f, err)
				}
				cfg.Ratios = append(cfg.Ratios, r)
			}
		}
		dumpViolations := func(cells []experiment.OversubCellResult) {
			for _, c := range cells {
				for i, v := range c.Violations {
					if i == 3 {
						fmt.Fprintf(os.Stderr, "socsim: ratio %.2f: ... %d more violations\n",
							c.Ratio, len(c.Violations)-i)
						break
					}
					fmt.Fprintf(os.Stderr, "socsim: ratio %.2f: %v\n", c.Ratio, v)
				}
			}
		}
		failed := false
		if *runOversub {
			fmt.Fprintf(os.Stderr, "socsim: oversubscription sweep — ratios %v, %d arrivals over %v (%d workers)...\n",
				cfg.Ratios, cfg.Arrivals, cfg.Duration, *workers)
			res, err := experiment.RunOversub(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(res.Format())
			if res.Err != nil {
				dumpViolations(res.Cells)
				log.Print(res.Err)
				failed = true
			}
		}
		if *runContention {
			fmt.Fprintf(os.Stderr, "socsim: contention sweep — %d overclocking servers vs oversubscribed admission, ratios %v (%d workers)...\n",
				cfg.BaseServers, cfg.Ratios, *workers)
			res, err := experiment.RunContention(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(res.Format())
			if res.Err != nil {
				dumpViolations(res.Cells)
				log.Print(res.Err)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	if *runRecovery {
		cfg := experiment.DefaultRecoveryConfig()
		cfg.Seed = *seed
		fmt.Fprintf(os.Stderr, "socsim: recovery run — %d servers, crash at %v for %v, checkpoint staleness %v...\n",
			cfg.Servers, cfg.CrashAt, cfg.DownFor, cfg.Staleness)
		res, err := experiment.RunRecovery(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Format())
		return
	}

	all := !*runTable1 && !*runFig15 && !*runAblations

	if *runTable1 || all {
		cfg := experiment.DefaultFleetSimConfig()
		cfg.RacksPerClass = *racks
		cfg.TrainDays = *trainDays
		cfg.EvalDays = *evalDays
		cfg.Seed = *seed
		cfg.Workers = *workers
		fmt.Fprintf(os.Stderr, "socsim: simulating %d racks/class, %d train + %d eval days (%d workers)...\n",
			cfg.RacksPerClass, cfg.TrainDays, cfg.EvalDays, *workers)
		if observe {
			cfg.TraceOnly = comps
			if *seriesOut != "" {
				cfg.RecordEvery = *recordEvery
				if cfg.RecordEvery == 0 {
					cfg.RecordEvery = time.Hour
				}
			}
			tbl, _, observation, err := experiment.RunTable1Observed(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(tbl.Format())
			writeMetrics(*metricsOut, observation.Metrics)
			writeTrace(*traceOut, observation.Trace)
			writeSeries(*seriesOut, observation.Series)
			writeProv(*provOut, observation.Provenance)
		} else {
			tbl, _, err := experiment.RunTable1(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(tbl.Format())
		}
	}
	if *runFig15 || all {
		tbl, err := experiment.Fig15(*fig15Racks, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tbl.Format())
	}
	if *runAblations || all {
		cfg := experiment.DefaultFleetSimConfig()
		cfg.RacksPerClass = *racks
		cfg.TrainDays = *trainDays
		cfg.EvalDays = *evalDays
		cfg.Seed = *seed
		cfg.Workers = *workers
		for _, run := range []func(experiment.FleetSimConfig) (*experiment.Table, error){
			experiment.RunAblationTemplates,
			experiment.RunAblationExploreStep,
			experiment.RunAblationWarnThreshold,
			experiment.RunDatacenterRebalance,
		} {
			tbl, err := run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(tbl.Format())
		}
	}
}
