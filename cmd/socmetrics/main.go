// Command socmetrics inspects and compares metrics snapshots written by
// socsim/soccluster -metrics-out (JSON format). It is the offline analysis
// half of the observability layer: run two experiments, snapshot both, and
// diff them to see exactly which counters moved.
//
// Usage:
//
//	socmetrics show snapshot.json
//	socmetrics diff [-all] before.json after.json
//	socmetrics series [-json] [-metric NAME] recording.json
//
// show renders a snapshot as Prometheus text exposition. diff prints one
// line per series whose value changed between the two snapshots (counters
// and gauges compare values; histograms compare observation counts); -all
// includes unchanged series too. series renders a recording written by
// -series-out (JSON format) as long-form CSV — one row per (time, series,
// kind) — or re-emits it as normalized JSON with -json; -metric restricts
// the output to one metric name.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"smartoclock/internal/causal"
	"smartoclock/internal/metrics"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  socmetrics show snapshot.json
  socmetrics diff [-all] before.json after.json
  socmetrics series [-json] [-metric NAME] recording.json`)
	os.Exit(2)
}

func readSnapshot(path string) *metrics.Snapshot {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	snap, err := metrics.ReadSnapshot(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return snap
}

// criticalPathBlock summarizes the causal_* critical-path series held in a
// snapshot as a comment block (every line starts with '#', so appending it
// keeps the output valid Prometheus text exposition). Series are summed
// across label sets — shards export one labeled series each, and counters
// and histogram bucket counts add. Returns "" when the snapshot carries no
// critical-path profile.
func criticalPathBlock(snap *metrics.Snapshot) string {
	var decisions, messages float64
	type hist struct {
		sum     float64
		count   uint64
		buckets []metrics.Bucket
	}
	merge := func(h *hist, s *metrics.Series) {
		h.sum += s.Value
		h.count += s.Count
		if h.buckets == nil {
			h.buckets = make([]metrics.Bucket, len(s.Buckets))
			copy(h.buckets, s.Buckets)
			return
		}
		for i := range s.Buckets {
			if i < len(h.buckets) && h.buckets[i].LE == s.Buckets[i].LE {
				h.buckets[i].Count += s.Buckets[i].Count
			}
		}
	}
	var depth, tick hist
	seen := false
	for i := range snap.Series {
		s := &snap.Series[i]
		switch s.Name {
		case causal.MetricDecisions:
			decisions += s.Value
		case causal.MetricMessages:
			messages += s.Value
		case causal.MetricChainDepth:
			merge(&depth, s)
		case causal.MetricTickRecords:
			merge(&tick, s)
		default:
			continue
		}
		seen = true
	}
	if !seen {
		return ""
	}

	// ceiling reports the smallest bucket bound covering every observation,
	// or "> LE_max" when some fell beyond the last bucket.
	ceiling := func(h hist) string {
		if h.count == 0 {
			return "n/a"
		}
		for _, b := range h.buckets {
			if b.Count >= h.count {
				return fmt.Sprintf("<= %g", b.LE)
			}
		}
		if n := len(h.buckets); n > 0 {
			return fmt.Sprintf("> %g", h.buckets[n-1].LE)
		}
		return "n/a"
	}
	mean := func(h hist) float64 {
		if h.count == 0 {
			return 0
		}
		return h.sum / float64(h.count)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# critical path (causal provenance)\n")
	fmt.Fprintf(&b, "#   decisions    %g\n", decisions)
	fmt.Fprintf(&b, "#   messages     %g\n", messages)
	fmt.Fprintf(&b, "#   chain depth  mean %.2f  max %s\n", mean(depth), ceiling(depth))
	fmt.Fprintf(&b, "#   tick records mean %.2f  max %s\n", mean(tick), ceiling(tick))
	return b.String()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("socmetrics: ")
	if len(os.Args) < 2 {
		usage()
	}

	switch os.Args[1] {
	case "show":
		fs := flag.NewFlagSet("show", flag.ExitOnError)
		fs.Parse(os.Args[2:])
		if fs.NArg() != 1 {
			usage()
		}
		snap := readSnapshot(fs.Arg(0))
		if err := snap.WriteProm(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if block := criticalPathBlock(snap); block != "" {
			fmt.Print(block)
		}

	case "diff":
		fs := flag.NewFlagSet("diff", flag.ExitOnError)
		all := fs.Bool("all", false, "include series with zero delta")
		fs.Parse(os.Args[2:])
		if fs.NArg() != 2 {
			usage()
		}
		entries := metrics.Diff(readSnapshot(fs.Arg(0)), readSnapshot(fs.Arg(1)))
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "SERIES\tTYPE\tBEFORE\tAFTER\tDELTA")
		shown := 0
		for _, e := range entries {
			if !*all && e.Delta == 0 {
				continue
			}
			fmt.Fprintf(w, "%s%s\t%s\t%g\t%g\t%+g\n", e.Name, e.Labels, e.Type, e.Before, e.After, e.Delta)
			shown++
		}
		w.Flush()
		fmt.Fprintf(os.Stderr, "socmetrics: %d of %d series shown\n", shown, len(entries))

	case "series":
		fs := flag.NewFlagSet("series", flag.ExitOnError)
		asJSON := fs.Bool("json", false, "re-emit the recording as normalized JSON instead of CSV")
		metric := fs.String("metric", "", "restrict output to this metric name")
		fs.Parse(os.Args[2:])
		if fs.NArg() != 1 {
			usage()
		}
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		rec, err := metrics.ReadRecording(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", fs.Arg(0), err)
		}
		if *metric != "" {
			kept := rec.Series[:0]
			for _, s := range rec.Series {
				if s.Name == *metric {
					kept = append(kept, s)
				}
			}
			rec.Series = kept
			if len(kept) == 0 {
				log.Fatalf("%s: no series named %q", fs.Arg(0), *metric)
			}
		}
		if *asJSON {
			err = rec.WriteJSON(os.Stdout)
		} else {
			err = rec.WriteCSV(os.Stdout)
		}
		if err != nil {
			log.Fatal(err)
		}

	default:
		usage()
	}
}
