// Command socmetrics inspects and compares metrics snapshots written by
// socsim/soccluster -metrics-out (JSON format). It is the offline analysis
// half of the observability layer: run two experiments, snapshot both, and
// diff them to see exactly which counters moved.
//
// Usage:
//
//	socmetrics show snapshot.json
//	socmetrics diff [-all] before.json after.json
//	socmetrics series [-json] [-metric NAME] recording.json
//
// show renders a snapshot as Prometheus text exposition. diff prints one
// line per series whose value changed between the two snapshots (counters
// and gauges compare values; histograms compare observation counts); -all
// includes unchanged series too. series renders a recording written by
// -series-out (JSON format) as long-form CSV — one row per (time, series,
// kind) — or re-emits it as normalized JSON with -json; -metric restricts
// the output to one metric name.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"smartoclock/internal/metrics"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  socmetrics show snapshot.json
  socmetrics diff [-all] before.json after.json
  socmetrics series [-json] [-metric NAME] recording.json`)
	os.Exit(2)
}

func readSnapshot(path string) *metrics.Snapshot {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	snap, err := metrics.ReadSnapshot(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return snap
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("socmetrics: ")
	if len(os.Args) < 2 {
		usage()
	}

	switch os.Args[1] {
	case "show":
		fs := flag.NewFlagSet("show", flag.ExitOnError)
		fs.Parse(os.Args[2:])
		if fs.NArg() != 1 {
			usage()
		}
		if err := readSnapshot(fs.Arg(0)).WriteProm(os.Stdout); err != nil {
			log.Fatal(err)
		}

	case "diff":
		fs := flag.NewFlagSet("diff", flag.ExitOnError)
		all := fs.Bool("all", false, "include series with zero delta")
		fs.Parse(os.Args[2:])
		if fs.NArg() != 2 {
			usage()
		}
		entries := metrics.Diff(readSnapshot(fs.Arg(0)), readSnapshot(fs.Arg(1)))
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "SERIES\tTYPE\tBEFORE\tAFTER\tDELTA")
		shown := 0
		for _, e := range entries {
			if !*all && e.Delta == 0 {
				continue
			}
			fmt.Fprintf(w, "%s%s\t%s\t%g\t%g\t%+g\n", e.Name, e.Labels, e.Type, e.Before, e.After, e.Delta)
			shown++
		}
		w.Flush()
		fmt.Fprintf(os.Stderr, "socmetrics: %d of %d series shown\n", shown, len(entries))

	case "series":
		fs := flag.NewFlagSet("series", flag.ExitOnError)
		asJSON := fs.Bool("json", false, "re-emit the recording as normalized JSON instead of CSV")
		metric := fs.String("metric", "", "restrict output to this metric name")
		fs.Parse(os.Args[2:])
		if fs.NArg() != 1 {
			usage()
		}
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		rec, err := metrics.ReadRecording(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", fs.Arg(0), err)
		}
		if *metric != "" {
			kept := rec.Series[:0]
			for _, s := range rec.Series {
				if s.Name == *metric {
					kept = append(kept, s)
				}
			}
			rec.Series = kept
			if len(kept) == 0 {
				log.Fatalf("%s: no series named %q", fs.Arg(0), *metric)
			}
		}
		if *asJSON {
			err = rec.WriteJSON(os.Stdout)
		} else {
			err = rec.WriteCSV(os.Stdout)
		}
		if err != nil {
			log.Fatal(err)
		}

	default:
		usage()
	}
}
