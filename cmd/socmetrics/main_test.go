package main

import (
	"testing"
	"time"

	"smartoclock/internal/causal"
	"smartoclock/internal/metrics"
)

// buildLog assembles a tiny deterministic provenance log: one message
// spawning a chain of two decisions on tick 1, plus a lone decision on
// tick 2.
func buildLog(t *testing.T) *causal.Log {
	t.Helper()
	rec := causal.NewRecorder(42, 0)
	t0 := time.Unix(0, 0).UTC()
	msg := rec.Emit(causal.Record{Time: t0, Kind: causal.KindMessage, Component: "rack", Site: "msg.rack.event"})
	admit := rec.Emit(causal.Record{Time: t0, Kind: causal.KindDecision, Component: "soa", Site: "soa.admit", Parent: msg})
	rec.Emit(causal.Record{Time: t0, Kind: causal.KindDecision, Component: "soa", Site: "soa.session", Parent: admit})
	rec.Emit(causal.Record{Time: t0.Add(time.Second), Kind: causal.KindDecision, Component: "goa", Site: "goa.budget"})
	return &causal.Log{Records: rec.Records()}
}

func TestCriticalPathBlockGolden(t *testing.T) {
	reg := metrics.NewRegistry()
	buildLog(t).Register(reg, metrics.Label{Key: "shard", Value: "0"})

	got := criticalPathBlock(reg.Snapshot())
	want := "# critical path (causal provenance)\n" +
		"#   decisions    3\n" +
		"#   messages     1\n" +
		"#   chain depth  mean 1.75  max <= 3\n" +
		"#   tick records mean 2.00  max <= 4\n"
	if got != want {
		t.Errorf("criticalPathBlock mismatch\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestCriticalPathBlockSumsShards(t *testing.T) {
	reg := metrics.NewRegistry()
	log_ := buildLog(t)
	log_.Register(reg, metrics.Label{Key: "shard", Value: "0"})
	log_.Register(reg, metrics.Label{Key: "shard", Value: "1"})

	got := criticalPathBlock(reg.Snapshot())
	want := "# critical path (causal provenance)\n" +
		"#   decisions    6\n" +
		"#   messages     2\n" +
		"#   chain depth  mean 1.75  max <= 3\n" +
		"#   tick records mean 2.00  max <= 4\n"
	if got != want {
		t.Errorf("criticalPathBlock mismatch\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestCriticalPathBlockAbsent(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("unrelated_total").Inc()
	if got := criticalPathBlock(reg.Snapshot()); got != "" {
		t.Errorf("expected empty block for snapshot without causal series, got:\n%s", got)
	}
}
