// Command socreport runs the complete reproduction sweep — every
// characterization figure, the cluster emulation, the fleet simulation,
// the ablations, the chaos experiment and the policy × scenario zoo — and
// writes one markdown report, including the oversubscription and
// contention sweeps.
//
// Usage:
//
//	socreport [-o report.md] [-fast] [-seed S]
//
// -fast shrinks every experiment for a quick end-to-end check (~30 s);
// the default scales match EXPERIMENTS.md (a few minutes).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"smartoclock/internal/causal"
	"smartoclock/internal/experiment"
)

// decisionBreakdown tabulates a provenance log's decision records by
// (component, site, verdict), sorted by key so the report is byte-stable
// across runs of the same seed.
func decisionBreakdown(log_ *causal.Log) string {
	type key struct{ component, site, verdict string }
	counts := make(map[key]int)
	for i := range log_.Records {
		r := &log_.Records[i]
		if r.Kind == causal.KindMessage {
			continue
		}
		k := key{r.Component, r.Site, r.Verdict}
		if k.verdict == "" {
			k.verdict = "-"
		}
		counts[k]++
	}
	keys := make([]key, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.component != b.component {
			return a.component < b.component
		}
		if a.site != b.site {
			return a.site < b.site
		}
		return a.verdict < b.verdict
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-22s %-12s %s\n", "COMPONENT", "SITE", "VERDICT", "COUNT")
	for _, k := range keys {
		fmt.Fprintf(&b, "%-10s %-22s %-12s %d\n", k.component, k.site, k.verdict, counts[k])
	}
	return b.String()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("socreport: ")

	out := flag.String("o", "", "output file (default stdout)")
	fast := flag.Bool("fast", false, "reduced scales for a quick sweep")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	fleetCfg := experiment.DefaultFleetSimConfig()
	fleetCfg.Seed = *seed
	clusterCfg := experiment.DefaultClusterConfig(experiment.SysSmartOClock)
	clusterCfg.Seed = *seed
	fig5Racks, fig8Racks, fig15Racks := 40, 10, 30
	if *fast {
		fleetCfg.RacksPerClass = 1
		fleetCfg.EvalDays = 1
		clusterCfg.Duration = 10 * time.Minute
		clusterCfg.Warmup = 2 * time.Minute
		fig5Racks, fig8Racks, fig15Racks = 8, 4, 6
	}

	section := func(title string) {
		fmt.Fprintf(w, "\n## %s\n\n", title)
	}
	table := func(tbl *experiment.Table, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "```\n%s```\n", tbl.Format())
	}

	fmt.Fprintf(w, "# SmartOClock reproduction report\n\ngenerated %s, seed %d\n",
		time.Now().UTC().Format(time.RFC3339), *seed)

	section("Characterization (§III)")
	table(experiment.Fig1(), nil)
	fig2, fig3 := experiment.Fig2And3()
	table(fig2, nil)
	table(fig3, nil)
	table(experiment.Fig4(), nil)
	table(experiment.Fig5(fig5Racks, *seed))
	fig6, overFrac, err := experiment.Fig6(*seed)
	table(fig6, err)
	fmt.Fprintf(w, "Naive overclocking exceeds the limit %.1f%% of the time.\n", 100*overFrac)
	table(experiment.Fig7(), nil)
	table(experiment.Fig8(fig8Racks, *seed))
	table(experiment.Fig9(*seed))

	section("Cluster emulation (§V-A)")
	log.Print("running the cluster emulation (4 systems)...")
	fig12, fig13, fig14, _, err := experiment.RunFig12To14(clusterCfg)
	if err != nil {
		log.Fatal(err)
	}
	table(fig12, nil)
	table(fig13, nil)
	table(fig14, nil)
	pc, _, err := experiment.RunPowerConstrained(clusterCfg, 0.80)
	table(pc, err)
	oc, err := experiment.RunOCConstrained(clusterCfg, 0.6)
	table(oc, err)

	section("Fleet simulation (§V-B)")
	log.Print("running the fleet simulation (5 systems x 3 classes)...")
	t1, _, err := experiment.RunTable1(fleetCfg)
	table(t1, err)
	table(experiment.Fig15(fig15Racks, *seed))

	section("Production services (§V-C)")
	table(experiment.Fig16(), nil)
	fig17, reduction := experiment.Fig17()
	table(fig17, nil)
	fmt.Fprintf(w, "Overclocking reduces Service C's 5-minute peaks by %.0f%%.\n", 100*reduction)

	section("Ablations")
	log.Print("running the ablations...")
	table(experiment.RunAblationTemplates(fleetCfg))
	table(experiment.RunAblationExploreStep(fleetCfg))
	table(experiment.RunAblationWarnThreshold(fleetCfg))
	table(experiment.RunDatacenterRebalance(fleetCfg))

	section("Chaos and alerts (§VI)")
	log.Print("running the chaos experiment...")
	chaosCfg := experiment.DefaultChaosConfig()
	chaosCfg.Seed = *seed
	if *fast {
		chaosCfg.Duration = time.Hour
		chaosCfg.GOAOutageStart = 20 * time.Minute
		chaosCfg.GOAOutage = 20 * time.Minute
		chaosCfg.SOACrashes = 2
	}
	chaosRes, err := experiment.RunChaos(chaosCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(w, "```\n%s```\n", chaosRes.Format())
	fmt.Fprintf(w, "```\n%s```\n", experiment.FormatAlerts(chaosRes.Alerts).Format())
	if chaosRes.Err != nil {
		log.Fatal(chaosRes.Err)
	}

	section("Oversubscription & contention")
	log.Print("running the oversubscription sweeps...")
	ovCfg := experiment.DefaultOversubConfig()
	ovCfg.Seed = *seed
	if *fast {
		ovCfg.Duration = 40 * time.Minute
		ovCfg.Arrivals = 12
		ovCfg.ArrivalEvery = 3 * time.Minute
	}
	ovRes, err := experiment.RunOversub(ovCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(w, "```\n%s```\n", ovRes.Format())
	ctRes, err := experiment.RunContention(ovCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(w, "```\n%s```\n", ctRes.Format())
	fmt.Fprintf(w, "Predicted-peak admission (q%.0f of the fitted day templates) bets the rack past its provisioned limit; severity-ordered capping backs the bet. The contention table shows what each extra admitted deployment costs in overclocked core-hours on the same headroom.\n",
		100*ovCfg.Quantile)
	if ovRes.Err != nil {
		log.Fatal(ovRes.Err)
	}
	if ctRes.Err != nil {
		log.Fatal(ctRes.Err)
	}

	section("Policy × scenario zoo")
	log.Print("running the policy zoo...")
	zooCfg := experiment.DefaultZooConfig()
	zooCfg.Seed = *seed
	if *fast {
		zooCfg.Duration = 30 * time.Minute
	}
	zooRes, err := experiment.RunZoo(zooCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(w, "```\n%s```\n", zooRes.Format())
	fmt.Fprintf(w, "Every certified policy set ran every adversarial scenario with the invariant checker armed; the violation column must be all zeros.\n")
	if zooRes.Err != nil {
		log.Fatal(zooRes.Err)
	}

	section("Decisions")
	prov := zooRes.ProvenanceLog()
	stats := prov.Stats()
	fmt.Fprintf(w, "The zoo ran with decision provenance armed: every admission, cap, session stop, alert and invariant verdict above carries a \"why\" record, resolvable by span with socexplain.\n\n")
	fmt.Fprintf(w, "%d decisions and %d control-plane messages across %d ticks; the deepest causal chain is %d records (span %s).\n\n",
		stats.Decisions, stats.Messages, stats.Ticks, stats.MaxDepth, stats.DeepSpan)
	fmt.Fprintf(w, "```\n%s```\n", decisionBreakdown(prov))

	if *out != "" {
		log.Printf("wrote %s", *out)
	}
}
