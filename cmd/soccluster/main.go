// Command soccluster runs the emulated 36-server cluster evaluation of
// §V-A: Figs 12-14 (latency, cost, energy across Baseline / ScaleOut /
// ScaleUp / SmartOClock) plus the power-constrained and
// overclocking-constrained experiments.
//
// Usage:
//
//	soccluster [-minutes M] [-warmup M] [-seed S]
//	           [-main] [-powerconstrained] [-occonstrained]
//
// With no experiment flag all three run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"smartoclock/internal/experiment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("soccluster: ")

	minutes := flag.Int("minutes", 40, "emulated duration in minutes")
	warmup := flag.Int("warmup", 8, "warmup minutes excluded from measurement")
	seed := flag.Int64("seed", 1, "deterministic seed")
	limitScale := flag.Float64("limitscale", 0.80, "rack limit scale for the power-constrained run")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent emulation workers across the system sweep (results are identical at any count)")
	runMain := flag.Bool("main", false, "run only Figs 12-14")
	runPower := flag.Bool("powerconstrained", false, "run only the power-constrained comparison")
	runOC := flag.Bool("occonstrained", false, "run only the overclocking-constrained comparison")
	flag.Parse()

	all := !*runMain && !*runPower && !*runOC
	base := experiment.DefaultClusterConfig(experiment.SysSmartOClock)
	base.Duration = time.Duration(*minutes) * time.Minute
	base.Warmup = time.Duration(*warmup) * time.Minute
	base.Seed = *seed
	base.Workers = *workers

	if *runMain || all {
		fmt.Fprintf(os.Stderr, "soccluster: emulating %v across 4 systems...\n", base.Duration)
		fig12, fig13, fig14, _, err := experiment.RunFig12To14(base)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(fig12.Format())
		fmt.Println(fig13.Format())
		fmt.Println(fig14.Format())
	}
	if *runPower || all {
		tbl, _, err := experiment.RunPowerConstrained(base, *limitScale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tbl.Format())
	}
	if *runOC || all {
		tbl, err := experiment.RunOCConstrained(base, 0.6)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tbl.Format())
	}
}
