// Command soccluster runs the emulated 36-server cluster evaluation of
// §V-A: Figs 12-14 (latency, cost, energy across Baseline / ScaleOut /
// ScaleUp / SmartOClock) plus the power-constrained and
// overclocking-constrained experiments.
//
// Usage:
//
//	soccluster [-minutes M] [-warmup M] [-seed S]
//	           [-main] [-powerconstrained] [-occonstrained]
//	soccluster -serve 127.0.0.1:9188 [-pace 200ms] [-minutes M]
//	           [-checkpoint state.json] [-checkpoint-every 1m] [-restore state.json]
//
// With no experiment flag all three run. -serve switches to the live
// networked mode instead: a small rack whose control plane crosses real
// loopback TCP links, paced in wall-clock time, with /metrics, /healthz,
// /statez, /trace/tail and /debug/pprof served on the given address for the
// duration of the run. -checkpoint periodically persists the control plane
// (gOA profiles, sOA sessions/budgets/ledgers, server wear) to an atomic
// checkpoint file; -restore warm-starts a run from one, so a killed server
// resumes where the checkpoint left it instead of relearning from scratch.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"smartoclock/internal/api"
	"smartoclock/internal/experiment"
	"smartoclock/internal/obs"
	"smartoclock/internal/telemetry"
)

// writeObservation writes the merged metrics snapshot, event trace and/or
// recorded series of an observed sweep. Metrics format: Prometheus text
// exposition by default, JSON when the path ends in .json. Traces are JSON
// Lines. Series: CSV by default, JSON when the path ends in .json.
func writeObservation(metricsPath, tracePath, seriesPath string, o *experiment.FleetObservation) {
	if o == nil {
		return
	}
	if metricsPath != "" && o.Metrics != nil {
		f, err := os.Create(metricsPath)
		if err != nil {
			log.Fatal(err)
		}
		if strings.HasSuffix(metricsPath, ".json") {
			err = o.Metrics.WriteJSON(f)
		} else {
			err = o.Metrics.WriteProm(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	if tracePath != "" && o.Trace != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			log.Fatal(err)
		}
		err = o.Trace.WriteJSONL(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	if seriesPath != "" && o.Series != nil {
		f, err := os.Create(seriesPath)
		if err != nil {
			log.Fatal(err)
		}
		if strings.HasSuffix(seriesPath, ".json") {
			err = o.Series.WriteJSON(f)
		} else {
			err = o.Series.WriteCSV(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("soccluster: ")

	minutes := flag.Int("minutes", 40, "emulated duration in minutes")
	warmup := flag.Int("warmup", 8, "warmup minutes excluded from measurement")
	seed := flag.Int64("seed", 1, "deterministic seed")
	limitScale := flag.Float64("limitscale", 0.80, "rack limit scale for the power-constrained run")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent emulation workers across the system sweep (results are identical at any count)")
	runMain := flag.Bool("main", false, "run only Figs 12-14")
	runPower := flag.Bool("powerconstrained", false, "run only the power-constrained comparison")
	runOC := flag.Bool("occonstrained", false, "run only the overclocking-constrained comparison")
	metricsOut := flag.String("metrics-out", "", "write the merged metrics snapshot of the Figs 12-14 sweep (or, if only -powerconstrained runs, that sweep) here; .json selects JSON, anything else Prometheus text")
	traceOut := flag.String("trace-out", "", "write the merged structured event trace of the observed sweep here as JSON Lines")
	seriesOut := flag.String("series-out", "", "write the merged recorded time series of the observed sweep here; .json selects JSON, anything else CSV")
	recordEvery := flag.Duration("record-every", 0, "sampling interval (emulated time) for -series-out; defaults to 1m")
	traceComponents := flag.String("trace-components", "", "comma-separated obs components to trace (e.g. soa,rack,alert); empty traces everything")
	serve := flag.String("serve", "", "run the live networked mode instead, serving /metrics, /healthz, /trace/tail and /debug/pprof on this address until the run ends")
	pace := flag.Duration("pace", 200*time.Millisecond, "wall-clock pace per live tick (with -serve); 0 runs flat out")
	checkpoint := flag.String("checkpoint", "", "with -serve: write periodic durable checkpoints of the control plane to this file")
	checkpointEvery := flag.Duration("checkpoint-every", time.Minute, "with -serve -checkpoint: simulated time between checkpoints")
	restore := flag.String("restore", "", "with -serve: warm-start the run from this checkpoint file")
	apiDefaults := api.DefaultConfig()
	if err := apiDefaults.FromEnv(os.LookupEnv); err != nil {
		log.Fatal(err)
	}
	apiTokens := flag.String("api-tokens", apiDefaults.Tokens, "with -serve: enable the mutating control-plane API under /api/v1 with this credential spec (name:token:scope+scope[:rfc3339-expiry];...); empty disables it ($"+api.EnvTokens+")")
	apiRate := flag.Float64("api-rate", apiDefaults.Rate, "with -api-tokens: per-credential rate limit in requests/second; <=0 disables limiting ($"+api.EnvRate+")")
	apiBurst := flag.Float64("api-burst", apiDefaults.Burst, "with -api-tokens: rate-limit burst size ($"+api.EnvBurst+")")
	apiMaxBody := flag.Int64("api-max-body", apiDefaults.MaxBody, "with -api-tokens: request body cap in bytes ($"+api.EnvMaxBody+")")
	hold := flag.Bool("hold", false, "with -api-tokens: suspend the clock and tick only on /api/v1/advance commands")
	flag.Parse()

	comps, err := obs.ParseComponents(*traceComponents)
	if err != nil {
		log.Fatal(err)
	}

	if *serve != "" {
		srv := telemetry.NewServer(telemetry.DefaultTailCap)
		cfg := experiment.DefaultLiveConfig()
		cfg.Seed = *seed
		cfg.Duration = time.Duration(*minutes) * time.Minute
		cfg.Pace = *pace
		cfg.TraceOnly = comps
		cfg.CheckpointPath = *checkpoint
		cfg.CheckpointEvery = *checkpointEvery
		cfg.RestorePath = *restore
		apiCfg := api.Config{Tokens: *apiTokens, Rate: *apiRate, Burst: *apiBurst, MaxBody: *apiMaxBody}
		if apiCfg.Enabled() {
			ctrl := experiment.NewLiveController()
			h, err := apiCfg.Build(ctrl)
			if err != nil {
				log.Fatal(err)
			}
			srv.Mount("/api/", h)
			cfg.Control = ctrl
			cfg.Hold = *hold
		} else if *hold {
			log.Fatal("-hold needs -api-tokens (or $" + api.EnvTokens + "): only API advance commands can tick a held run")
		}
		addr, err := srv.Start(*serve)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		if *restore != "" {
			fmt.Fprintf(os.Stderr, "soccluster: warm-starting from %s\n", *restore)
		}
		if apiCfg.Enabled() {
			fmt.Fprintf(os.Stderr, "soccluster: control-plane API on http://%s/api/v1 (hold=%v)\n", addr, *hold)
		}
		fmt.Fprintf(os.Stderr, "soccluster: live mode on http://%s — %v simulated at %v/tick...\n", addr, cfg.Duration, cfg.Pace)
		res, err := experiment.RunLive(cfg, srv)
		if err != nil {
			log.Fatal(err)
		}
		// Let in-flight API responses (notably the shutdown ack) reach
		// their clients before the process exits.
		drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = srv.Drain(drainCtx)
		cancel()
		fmt.Println(res.Format())
		return
	}

	all := !*runMain && !*runPower && !*runOC
	base := experiment.DefaultClusterConfig(experiment.SysSmartOClock)
	base.Duration = time.Duration(*minutes) * time.Minute
	base.Warmup = time.Duration(*warmup) * time.Minute
	base.Seed = *seed
	base.Workers = *workers
	base.Observe = *metricsOut != "" || *traceOut != "" || *seriesOut != ""
	base.TraceOnly = comps
	if *seriesOut != "" {
		base.RecordEvery = *recordEvery
		if base.RecordEvery == 0 {
			base.RecordEvery = time.Minute
		}
	}
	observed := false

	if *runMain || all {
		fmt.Fprintf(os.Stderr, "soccluster: emulating %v across 4 systems...\n", base.Duration)
		fig12, fig13, fig14, results, err := experiment.RunFig12To14(base)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(fig12.Format())
		fmt.Println(fig13.Format())
		fmt.Println(fig14.Format())
		if base.Observe && !observed {
			writeObservation(*metricsOut, *traceOut, *seriesOut, experiment.MergeClusterObservations(experiment.ClusterSystems(), results))
			observed = true
		}
	}
	if *runPower || all {
		tbl, results, err := experiment.RunPowerConstrained(base, *limitScale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tbl.Format())
		if base.Observe && !observed {
			systems := []experiment.ClusterSystem{experiment.SysNaiveOClock, experiment.SysSmartOClock}
			writeObservation(*metricsOut, *traceOut, *seriesOut, experiment.MergeClusterObservations(systems, results))
			observed = true
		}
	}
	if *runOC || all {
		// RunOCConstrained exposes no per-run results, so observing it
		// would only slow the sweep down.
		base.Observe = false
		tbl, err := experiment.RunOCConstrained(base, 0.6)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tbl.Format())
	}
}
