// Command soctrace generates synthetic production traces and prints the
// characterization figures of §III: Fig 1 (service load patterns), Fig 5
// (rack power utilization CDF), Fig 6 (rack power vs limit ± overclock),
// Fig 7 (CPU aging policies), Fig 8 (prediction RMSE CDF) and Fig 9
// (per-server heterogeneity), plus Figs 2-4 and 16-17 (workload
// characterizations).
//
// It can also export a generated rack trace as JSON for external analysis:
//
//	soctrace -export rack.json [-days D] [-seed S]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"smartoclock/internal/experiment"
	"smartoclock/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("soctrace: ")

	seed := flag.Int64("seed", 1, "deterministic generation seed")
	racks := flag.Int("racks", 40, "racks for fleet-level figures")
	days := flag.Int("days", 14, "trace days for -export")
	export := flag.String("export", "", "write one generated rack trace as JSON to this file and exit")
	flag.Parse()

	if *export != "" {
		start := time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)
		cfg := trace.DefaultRackGenConfig("export", start, time.Duration(*days)*24*time.Hour)
		rack, err := trace.GenRack(cfg, rand.New(rand.NewSource(*seed)))
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*export)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := trace.WriteRackJSON(f, rack); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s (%d servers, %d days)", *export, len(rack.Servers), *days)
		return
	}

	fmt.Println(experiment.Fig1().Format())
	fig2, fig3 := experiment.Fig2And3()
	fmt.Println(fig2.Format())
	fmt.Println(fig3.Format())
	fmt.Println(experiment.Fig4().Format())

	fig5, err := experiment.Fig5(*racks, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig5.Format())

	fig6, overFrac, err := experiment.Fig6(*seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig6.Format())
	fmt.Printf("Naive overclocking exceeds the limit %.1f%% of the time.\n\n", 100*overFrac)

	fmt.Println(experiment.Fig7().Format())

	fig8, err := experiment.Fig8(max(*racks/4, 4), *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig8.Format())

	fig9, err := experiment.Fig9(*seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig9.Format())

	fmt.Println(experiment.Fig16().Format())
	fig17, reduction := experiment.Fig17()
	fmt.Println(fig17.Format())
	fmt.Printf("Overclocking reduces Service C's 5-minute peaks by %.0f%%.\n", 100*reduction)
	fmt.Printf("Overclocking lets Service A VMs serve %.0f%% additional load (paper: 25%%).\n",
		100*experiment.ServiceAExtraLoad())
}
