// Package smartoclock's root benchmarks regenerate every table and figure
// of the paper's evaluation. Each benchmark runs the corresponding
// experiment at a reduced-but-representative scale and reports the
// headline numbers through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints a full reproduction sweep. The CLIs (cmd/socsim, cmd/soccluster,
// cmd/soctrace) run the same experiments at full scale with printed tables.
package main

import (
	"fmt"
	"runtime"
	"strconv"
	"testing"
	"time"

	"smartoclock/internal/baselines"
	"smartoclock/internal/experiment"
	"smartoclock/internal/trace"
	"smartoclock/internal/workload"
)

// benchClusterCfg is the cluster emulation scale used by benches.
func benchClusterCfg(sys experiment.ClusterSystem) experiment.ClusterConfig {
	cfg := experiment.DefaultClusterConfig(sys)
	cfg.Duration = 20 * time.Minute
	cfg.Warmup = 4 * time.Minute
	return cfg
}

func BenchmarkFig01ServiceLoadPatterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiment.Fig1()
		if len(tbl.Rows) != 24 {
			b.Fatal("unexpected shape")
		}
	}
}

func BenchmarkFig02MicroserviceLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig2, _ := experiment.Fig2And3()
		if len(fig2.Rows) != 24 {
			b.Fatal("unexpected shape")
		}
	}
}

func BenchmarkFig03MicroserviceUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, fig3 := experiment.Fig2And3()
		if len(fig3.Rows) != 24 {
			b.Fatal("unexpected shape")
		}
	}
}

func BenchmarkFig04WebConfDeployment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiment.Fig4() == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkFig05RackUtilizationCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiment.Fig5(20, 1)
		if err != nil {
			b.Fatal(err)
		}
		if v, _ := strconv.ParseFloat(tbl.FindRow("p50")[1], 64); true {
			b.ReportMetric(v, "p50-avg-util")
		}
	}
}

func BenchmarkFig06RackPowerVsLimit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, frac, err := experiment.Fig6(3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*frac, "naive-overlimit-%")
	}
}

func BenchmarkFig07AgingPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := experiment.Fig7()
		aged, _ := strconv.ParseFloat(tbl.FindRow("Always overclock")[1], 64)
		b.ReportMetric(aged, "always-oc-aged-days")
	}
}

func BenchmarkFig08PredictionRMSECDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiment.Fig8(6, 2)
		if err != nil {
			b.Fatal(err)
		}
		p99, _ := strconv.ParseFloat(tbl.Rows[0][3], 64)
		b.ReportMetric(p99, "region1-p99-rmse-W")
	}
}

func BenchmarkFig09ServerHeterogeneity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig9(21); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCluster runs one system of the §V-A emulation and reports its
// headline metrics.
func benchCluster(b *testing.B, sys experiment.ClusterSystem) *experiment.ClusterResult {
	b.Helper()
	var res *experiment.ClusterResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.RunCluster(benchClusterCfg(sys))
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

func BenchmarkFig12LatencyBaseline(b *testing.B) {
	res := benchCluster(b, experiment.SysBaseline)
	b.ReportMetric(res.NormP99[workload.HighLoad], "p99/slo-high")
	b.ReportMetric(float64(res.MissedSLO[workload.HighLoad]), "missed-high")
}

func BenchmarkFig12LatencyScaleOut(b *testing.B) {
	res := benchCluster(b, experiment.SysScaleOut)
	b.ReportMetric(res.NormP99[workload.HighLoad], "p99/slo-high")
	b.ReportMetric(float64(res.MissedSLO[workload.HighLoad]), "missed-high")
}

func BenchmarkFig12LatencyScaleUp(b *testing.B) {
	res := benchCluster(b, experiment.SysScaleUp)
	b.ReportMetric(res.NormP99[workload.HighLoad], "p99/slo-high")
	b.ReportMetric(float64(res.MissedSLO[workload.HighLoad]), "missed-high")
}

func BenchmarkFig12LatencySmartOClock(b *testing.B) {
	res := benchCluster(b, experiment.SysSmartOClock)
	b.ReportMetric(res.NormP99[workload.HighLoad], "p99/slo-high")
	b.ReportMetric(float64(res.MissedSLO[workload.HighLoad]), "missed-high")
}

func BenchmarkFig13InstanceCost(b *testing.B) {
	so := benchCluster(b, experiment.SysScaleOut)
	smart, err := experiment.RunCluster(benchClusterCfg(experiment.SysSmartOClock))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(so.MeanInstances, "scaleout-instances")
	b.ReportMetric(smart.MeanInstances, "smart-instances")
	b.ReportMetric(100*(1-smart.MeanInstances/so.MeanInstances), "saving-%")
}

func BenchmarkFig14Energy(b *testing.B) {
	so := benchCluster(b, experiment.SysScaleOut)
	smart, err := experiment.RunCluster(benchClusterCfg(experiment.SysSmartOClock))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(smart.TotalEnergy/so.TotalEnergy, "smart/scaleout-total")
	b.ReportMetric(smart.LCEnergy/so.LCEnergy, "smart/scaleout-lc")
}

func BenchmarkPowerConstrained(b *testing.B) {
	var results map[experiment.ClusterSystem]*experiment.ClusterResult
	var err error
	for i := 0; i < b.N; i++ {
		_, results, err = experiment.RunPowerConstrained(benchClusterCfg(experiment.SysSmartOClock), 0.80)
		if err != nil {
			b.Fatal(err)
		}
	}
	naive := results[experiment.SysNaiveOClock]
	smart := results[experiment.SysSmartOClock]
	b.ReportMetric(naive.NormP99[workload.HighLoad], "naive-p99/slo-high")
	b.ReportMetric(smart.NormP99[workload.HighLoad], "smart-p99/slo-high")
	b.ReportMetric(smart.MLThroughput/naive.MLThroughput, "ml-throughput-gain")
}

func BenchmarkOCConstrained(b *testing.B) {
	var tbl *experiment.Table
	var err error
	for i := 0; i < b.N; i++ {
		cfg := benchClusterCfg(experiment.SysSmartOClock)
		cfg.Duration = 30 * time.Minute
		cfg.Warmup = 5 * time.Minute
		tbl, err = experiment.RunOCConstrained(cfg, 0.6)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(tbl.Rows) != 3 {
		b.Fatal("unexpected shape")
	}
}

// benchFleetCfg is the Table I scale used by benches.
func benchFleetCfg() experiment.FleetSimConfig {
	cfg := experiment.DefaultFleetSimConfig()
	cfg.RacksPerClass = 2
	cfg.EvalDays = 3
	return cfg
}

func BenchmarkTable1Comparison(b *testing.B) {
	var rows []experiment.Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		_, rows, err = experiment.RunTable1(benchFleetCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Class == trace.HighPower {
			switch r.System {
			case baselines.NaiveOClock:
				b.ReportMetric(float64(r.CapEvents), "high-naive-caps")
			case baselines.SmartOClock:
				b.ReportMetric(float64(r.CapEvents), "high-smart-caps")
				b.ReportMetric(r.SuccessPct, "high-smart-success-%")
			case baselines.Central:
				b.ReportMetric(r.SuccessPct, "high-central-success-%")
			}
		}
	}
}

// BenchmarkTable1Observed runs the same Table I workload with the metrics
// registry and event tracer attached. Compare against
// BenchmarkTable1Comparison: the acceptance bar for the observability
// layer is under 5% wall-clock overhead, which the allocation-free handle
// design keeps comfortably met.
func BenchmarkTable1Observed(b *testing.B) {
	var snapSeries int
	for i := 0; i < b.N; i++ {
		_, _, observation, err := experiment.RunTable1Observed(benchFleetCfg())
		if err != nil {
			b.Fatal(err)
		}
		snapSeries = len(observation.Metrics.Series)
	}
	b.ReportMetric(float64(snapSeries), "series")
}

// BenchmarkTable1Workers measures the scaling trajectory of the parallel
// fleet runner: the same Table I workload at 1/2/4/NumCPU workers. With
// per-rack seed derivation the results are identical at every count, so
// the sub-benchmarks differ only in wall-clock. cmd/socbench runs the
// same sweep standalone and writes BENCH_fleet.json.
func BenchmarkTable1Workers(b *testing.B) {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := benchFleetCfg()
			cfg.Workers = w
			for i := 0; i < b.N; i++ {
				if _, _, err := experiment.RunTable1(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(3*5*cfg.RacksPerClass)/b.Elapsed().Seconds()*float64(b.N), "racks/sec")
		})
	}
}

func BenchmarkFig15PredictionStrategies(b *testing.B) {
	var tbl *experiment.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = experiment.Fig15(12, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	dm, _ := strconv.ParseFloat(tbl.FindRow("DailyMed")[4], 64)
	weekly, _ := strconv.ParseFloat(tbl.FindRow("Weekly")[4], 64)
	b.ReportMetric(dm, "dailymed-rmse-p50")
	b.ReportMetric(weekly, "weekly-rmse-p50")
}

func BenchmarkFig16ServiceB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiment.Fig16() == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkFig17ServiceC(b *testing.B) {
	var red float64
	for i := 0; i < b.N; i++ {
		_, red = experiment.Fig17()
	}
	b.ReportMetric(100*red, "peak-reduction-%")
}
