package api

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzCommandDecode fuzzes the single decode entry point of the HTTP
// adapter: for any (command, body) pair it must either return a validated
// spec or a typed error — never panic, and never hand back a spec its own
// Validate rejects.
func FuzzCommandDecode(f *testing.F) {
	for _, rt := range Routes() {
		f.Add(rt.Cmd, []byte(""))
		f.Add(rt.Cmd, []byte("{}"))
	}
	f.Add(CmdDeploy, []byte(`{"name":"web","server":"lv-00","cores":2,"util":0.5}`))
	f.Add(CmdDeploy, []byte(`{"name":"web","cores":-2}`))
	f.Add(CmdOCStart, []byte(`{"server":"lv-00","vm":"vm","target_mhz":3800}`))
	f.Add(CmdAdvance, []byte(`{"ticks":100001}`))
	f.Add(CmdChaos, []byte(`{"agent":"goa","down":true} trailing`))
	f.Add(CmdBudget, []byte(`{"watts":1e308}`))
	f.Add(CmdSeverity, []byte(`{"server":"x","severity":9007199254740993}`))
	f.Add("no-such-command", []byte(`{}`))
	f.Add(CmdProfile, []byte(`{"server":" ","median_watts":-0}`))
	f.Add(CmdDrain, []byte(strings.Repeat("[", 1000)))

	f.Fuzz(func(t *testing.T, cmd string, body []byte) {
		spec, err := DecodeCommand(cmd, body)
		if err != nil {
			if KindOf(err) != KindInvalid {
				t.Fatalf("DecodeCommand(%q) returned a non-invalid error: %v", cmd, err)
			}
			return
		}
		// A success must round-trip its own validation.
		v, ok := spec.(interface{ Validate() error })
		if !ok {
			t.Fatalf("DecodeCommand(%q) returned %T without Validate", cmd, spec)
		}
		if verr := v.Validate(); verr != nil {
			t.Fatalf("DecodeCommand(%q) returned a spec failing its own Validate: %v", cmd, verr)
		}
		// Only known commands may succeed.
		if _, known := RouteFor(cmd); !known {
			t.Fatalf("DecodeCommand accepted unknown command %q", cmd)
		}
		_ = utf8.ValidString(cmd) // fuzz inputs may be arbitrary bytes; decode must not care
	})
}
