package api

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// fakeService is a canned Service: every method succeeds with a fixed,
// deterministic response and records the call, so transport tests assert
// on exactly what crossed the port.
type fakeService struct {
	calls []string
	// fail, when set, is returned by every method (error-mapping tests).
	fail error
}

func (f *fakeService) record(cmd string, spec any) {
	if spec == nil {
		f.calls = append(f.calls, cmd)
		return
	}
	b, _ := json.Marshal(spec)
	f.calls = append(f.calls, cmd+" "+string(b))
}

func (f *fakeService) Status(context.Context) (*ClusterStatus, error) {
	f.record(CmdStatus, nil)
	if f.fail != nil {
		return nil, f.fail
	}
	return &ClusterStatus{
		Now: t0, Ticks: 42, Requests: 7, Granted: 5,
		Rack: RackStatus{Name: "rack-live", LimitWatts: 1000, PowerWatts: 640},
	}, nil
}

func (f *fakeService) RegisterDeployment(_ context.Context, spec DeploymentSpec) (*DeploymentStatus, error) {
	f.record(CmdDeploy, spec)
	if f.fail != nil {
		return nil, f.fail
	}
	return &DeploymentStatus{Name: spec.Name, Server: spec.Server, Cores: []int{4, 5}, Util: spec.Util}, nil
}

func (f *fakeService) DrainDeployment(_ context.Context, name string) error {
	f.record(CmdDrain, DrainSpec{Name: name})
	return f.fail
}

func (f *fakeService) SetProfile(_ context.Context, spec ProfileSpec) error {
	f.record(CmdProfile, spec)
	return f.fail
}

func (f *fakeService) SetBudget(_ context.Context, spec BudgetSpec) error {
	f.record(CmdBudget, spec)
	return f.fail
}

func (f *fakeService) AssignBudgets(_ context.Context, spec AssignSpec) (*AssignStatus, error) {
	f.record(CmdAssign, spec)
	if f.fail != nil {
		return nil, f.fail
	}
	return &AssignStatus{Servers: 4, Budgets: map[string]float64{"lv-00": 250, "lv-01": 250}}, nil
}

func (f *fakeService) SetSeverity(_ context.Context, spec SeveritySpec) error {
	f.record(CmdSeverity, spec)
	return f.fail
}

func (f *fakeService) StartOverclock(_ context.Context, spec OCSpec) (*OCStatus, error) {
	f.record(CmdOCStart, spec)
	if f.fail != nil {
		return nil, f.fail
	}
	return &OCStatus{Granted: true, Cores: []int{0, 1}}, nil
}

func (f *fakeService) StopOverclock(_ context.Context, spec StopSpec) error {
	f.record(CmdOCStop, spec)
	return f.fail
}

func (f *fakeService) SetChaos(_ context.Context, spec ChaosSpec) (*ChaosStatus, error) {
	f.record(CmdChaos, spec)
	if f.fail != nil {
		return nil, f.fail
	}
	return &ChaosStatus{Agent: spec.Agent, Down: spec.Down, DownAgents: []string{spec.Agent}}, nil
}

func (f *fakeService) ForceCheckpoint(context.Context) (*CheckpointStatus, error) {
	f.record(CmdCheckpoint, nil)
	if f.fail != nil {
		return nil, f.fail
	}
	return &CheckpointStatus{Path: "state.json", Bytes: 2048, Writes: 3, SavedAt: t0}, nil
}

func (f *fakeService) Advance(_ context.Context, spec AdvanceSpec) (*AdvanceStatus, error) {
	f.record(CmdAdvance, spec)
	if f.fail != nil {
		return nil, f.fail
	}
	return &AdvanceStatus{Ticks: spec.Ticks, Now: t0.Add(time.Minute)}, nil
}

func (f *fakeService) Shutdown(context.Context) error {
	f.record(CmdShutdown, nil)
	return f.fail
}

var _ Service = (*fakeService)(nil)

// testCreds is the four-token matrix every conformance case draws from: a
// token per scope plus an expired one. "wrong scope" picks a token whose
// scopes exclude the route's.
const testCreds = "reader:tok-read:read;" +
	"operator:tok-operate:operate;" +
	"admin:tok-admin:admin;" +
	"chaos:tok-chaos:chaos;" +
	"expired:tok-expired:read+operate+admin+chaos:2026-01-01T00:00:00Z"

// tokenForScope returns a valid token holding scope, and one that holds
// every scope but it.
func tokenForScope(s Scope) (valid, wrong string) {
	valid = "tok-" + string(s)
	for _, other := range Scopes() {
		if other != s {
			return valid, "tok-" + string(other)
		}
	}
	panic("unreachable")
}

func newTestHandler(t *testing.T, svc Service, cfg HandlerConfig) http.Handler {
	t.Helper()
	auth, err := ParseCredentials(testCreds)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Now == nil {
		cfg.Now = func() time.Time { return t0 }
	}
	return NewHandler(svc, auth, cfg)
}

func doReq(t *testing.T, h http.Handler, method, path, token, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// minimalBody returns a body that passes validation for each command.
func minimalBody(cmd string) string {
	switch cmd {
	case CmdDeploy:
		return `{"name":"web","server":"lv-00","cores":2,"util":0.5}`
	case CmdDrain:
		return `{"name":"web"}`
	case CmdProfile:
		return `{"server":"lv-00","median_watts":200,"requested_cores":4,"granted_cores":2}`
	case CmdBudget:
		return `{"server":"lv-00","watts":250}`
	case CmdAssign:
		return `{"step_minutes":30}`
	case CmdSeverity:
		return `{"server":"lv-00","severity":2}`
	case CmdOCStart:
		return `{"server":"lv-00","vm":"web","cores":2,"target_mhz":3800}`
	case CmdOCStop:
		return `{"server":"lv-00","vm":"web"}`
	case CmdChaos:
		return `{"agent":"goa","down":true}`
	case CmdAdvance:
		return `{"ticks":3}`
	default:
		return ""
	}
}

// TestAuthMatrix drives every route through the four token cases the
// conformance battery requires: valid scope, wrong scope, expired, and no
// token at all. Only the valid case may reach the service.
func TestAuthMatrix(t *testing.T) {
	for _, rt := range Routes() {
		valid, wrong := tokenForScope(rt.Scope)
		cases := []struct {
			name   string
			token  string
			status int
		}{
			{"valid", valid, http.StatusOK},
			{"wrong-scope", wrong, http.StatusForbidden},
			{"expired", "tok-expired", http.StatusUnauthorized},
			{"no-token", "", http.StatusUnauthorized},
		}
		for _, tc := range cases {
			t.Run(rt.Cmd+"/"+tc.name, func(t *testing.T) {
				svc := &fakeService{}
				h := newTestHandler(t, svc, HandlerConfig{})
				w := doReq(t, h, rt.Method, rt.Path, tc.token, minimalBody(rt.Cmd))
				if w.Code != tc.status {
					t.Fatalf("%s %s with %s token: status %d, want %d\n%s",
						rt.Method, rt.Path, tc.name, w.Code, tc.status, w.Body)
				}
				if tc.status == http.StatusOK && len(svc.calls) != 1 {
					t.Fatalf("valid call did not reach the service: calls=%v", svc.calls)
				}
				if tc.status != http.StatusOK && len(svc.calls) != 0 {
					t.Fatalf("%s token leaked through to the service: calls=%v", tc.name, svc.calls)
				}
				if w.Code == http.StatusUnauthorized {
					if w.Header().Get("WWW-Authenticate") == "" {
						t.Error("401 without WWW-Authenticate")
					}
					if strings.Contains(w.Body.String(), "expired") || strings.Contains(w.Body.String(), "unknown") {
						t.Errorf("401 body leaks failure detail: %s", w.Body)
					}
				}
			})
		}
	}
}

// TestAuthMatrixCoversAllMutatingRoutes pins the acceptance criterion: the
// matrix above must include every mutating endpoint, so a new route cannot
// silently skip conformance.
func TestAuthMatrixCoversAllMutatingRoutes(t *testing.T) {
	mutating := 0
	seen := map[string]bool{}
	for _, rt := range Routes() {
		if seen[rt.Method+" "+rt.Path] {
			t.Errorf("duplicate route %s %s", rt.Method, rt.Path)
		}
		seen[rt.Method+" "+rt.Path] = true
		if rt.Mutating {
			mutating++
		}
		if _, ok := RouteFor(rt.Cmd); !ok {
			t.Errorf("RouteFor(%q) missing", rt.Cmd)
		}
	}
	if mutating != len(Routes())-1 {
		t.Fatalf("mutating routes = %d, want all but status (%d)", mutating, len(Routes())-1)
	}
}

func TestUnknownTokenIs401(t *testing.T) {
	h := newTestHandler(t, &fakeService{}, HandlerConfig{})
	w := doReq(t, h, http.MethodGet, "/api/v1/status", "tok-made-up", "")
	if w.Code != http.StatusUnauthorized {
		t.Fatalf("unknown token status = %d, want 401", w.Code)
	}
}

func TestBodyTooLarge(t *testing.T) {
	h := newTestHandler(t, &fakeService{}, HandlerConfig{MaxBody: 64})
	big := `{"name":"` + strings.Repeat("x", 200) + `"}`
	w := doReq(t, h, http.MethodPost, "/api/v1/deployments/drain", "tok-operate", big)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body status = %d, want 413\n%s", w.Code, w.Body)
	}
}

func TestStrictDecode(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"name":"web","oops":1}`,
		"trailing data": `{"name":"web"} {"name":"web2"}`,
		"wrong type":    `{"name":3}`,
		"not json":      `drain web`,
		"validation":    `{"name":""}`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			svc := &fakeService{}
			h := newTestHandler(t, svc, HandlerConfig{})
			w := doReq(t, h, http.MethodPost, "/api/v1/deployments/drain", "tok-operate", body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("%s: status = %d, want 400\n%s", name, w.Code, w.Body)
			}
			if len(svc.calls) != 0 {
				t.Fatalf("%s: bad body reached the service", name)
			}
		})
	}
}

func TestErrorKindMapping(t *testing.T) {
	cases := []struct {
		err    error
		status int
	}{
		{Invalidf("x"), http.StatusBadRequest},
		{NotFoundf("x"), http.StatusNotFound},
		{Conflictf("x"), http.StatusConflict},
		{Unavailablef("x"), http.StatusServiceUnavailable},
		{fmt.Errorf("plain"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		h := newTestHandler(t, &fakeService{fail: tc.err}, HandlerConfig{})
		w := doReq(t, h, http.MethodGet, "/api/v1/status", "tok-read", "")
		if w.Code != tc.status {
			t.Errorf("%v -> %d, want %d", tc.err, w.Code, tc.status)
		}
		var eb errorBody
		if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Error == "" {
			t.Errorf("%v: error envelope missing: %s", tc.err, w.Body)
		}
	}
}

func TestRateLimit429(t *testing.T) {
	l := NewRateLimiter(1, 2)
	l.SetClock(func() time.Time { return t0 })
	h := newTestHandler(t, &fakeService{}, HandlerConfig{Limiter: l})

	for i := 0; i < 2; i++ {
		if w := doReq(t, h, http.MethodGet, "/api/v1/status", "tok-read", ""); w.Code != http.StatusOK {
			t.Fatalf("burst request %d status = %d", i, w.Code)
		}
	}
	if w := doReq(t, h, http.MethodGet, "/api/v1/status", "tok-read", ""); w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-burst status = %d, want 429", w.Code)
	}
	// Another credential has its own bucket.
	if w := doReq(t, h, http.MethodPost, "/api/v1/severity", "tok-operate", minimalBody(CmdSeverity)); w.Code != http.StatusOK {
		t.Fatalf("independent credential status = %d", w.Code)
	}
	// Unauthenticated probing shares one bucket and gets throttled too.
	if w := doReq(t, h, http.MethodGet, "/api/v1/status", "bad-token", ""); w.Code != http.StatusUnauthorized {
		t.Fatal("first probe should be an orderly 401")
	}
	if w := doReq(t, h, http.MethodGet, "/api/v1/status", "another-bad", ""); w.Code != http.StatusUnauthorized {
		t.Fatal("second probe should be an orderly 401")
	}
	if w := doReq(t, h, http.MethodGet, "/api/v1/status", "third-bad", ""); w.Code != http.StatusTooManyRequests {
		t.Fatalf("third probe status = %d, want 429", w.Code)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	h := newTestHandler(t, &fakeService{}, HandlerConfig{})
	w := doReq(t, h, http.MethodGet, "/api/v1/deployments", "tok-operate", "")
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET on POST route status = %d, want 405", w.Code)
	}
}

// TestClientRoundTrip exercises Client -> NewHandler -> fakeService over a
// real listener, including the error path.
func TestClientRoundTrip(t *testing.T) {
	svc := &fakeService{}
	ts := httptest.NewServer(newTestHandler(t, svc, HandlerConfig{}))
	defer ts.Close()

	admin := NewClient(ts.URL, "tok-admin")
	operator := NewClient(ts.URL, "tok-operate")
	reader := NewClient(ts.URL, "tok-read")
	ctx := context.Background()

	st, err := reader.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ticks != 42 || st.Rack.Name != "rack-live" {
		t.Fatalf("status = %+v", st)
	}

	dep, err := operator.RegisterDeployment(ctx, DeploymentSpec{Name: "web", Server: "lv-00", Cores: 2, Util: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Name != "web" || len(dep.Cores) != 2 {
		t.Fatalf("deployment = %+v", dep)
	}

	cp, err := admin.ForceCheckpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Bytes != 2048 {
		t.Fatalf("checkpoint = %+v", cp)
	}

	// A scope the token lacks surfaces as a typed RemoteError.
	_, err = reader.StartOverclock(ctx, OCSpec{Server: "lv-00", VM: "vm"})
	re, ok := err.(*RemoteError)
	if !ok || re.StatusCode != http.StatusForbidden {
		t.Fatalf("wrong-scope client err = %v", err)
	}
}

// TestGoldenTranscript replays a fixed request sequence and compares the
// full wire transcript (request line, status, response body) against
// testdata/transcript.golden. Regenerate with:
//
//	go test ./internal/api -run Golden -update
func TestGoldenTranscript(t *testing.T) {
	svc := &fakeService{}
	h := newTestHandler(t, svc, HandlerConfig{})

	type step struct {
		method, path, token, body string
	}
	steps := []step{
		{http.MethodGet, "/api/v1/status", "tok-read", ""},
		{http.MethodPost, "/api/v1/deployments", "tok-operate", `{"name":"web","server":"lv-00","cores":2,"util":0.5}`},
		{http.MethodPost, "/api/v1/profiles", "tok-operate", `{"server":"lv-00","median_watts":210.5,"requested_cores":4,"granted_cores":2}`},
		{http.MethodPost, "/api/v1/budgets", "tok-operate", `{"server":"lv-00","watts":250}`},
		{http.MethodPost, "/api/v1/budgets/assign", "tok-operate", `{"step_minutes":30}`},
		{http.MethodPost, "/api/v1/severity", "tok-operate", `{"server":"lv-00","severity":3}`},
		{http.MethodPost, "/api/v1/overclock", "tok-operate", `{"server":"lv-00","vm":"web","target_mhz":3800}`},
		{http.MethodPost, "/api/v1/overclock/stop", "tok-operate", `{"server":"lv-00","vm":"web"}`},
		{http.MethodPost, "/api/v1/chaos", "tok-chaos", `{"agent":"goa","down":true}`},
		{http.MethodPost, "/api/v1/checkpoint", "tok-admin", ""},
		{http.MethodPost, "/api/v1/advance", "tok-admin", `{"ticks":3}`},
		{http.MethodPost, "/api/v1/deployments/drain", "tok-operate", `{"name":"web"}`},
		{http.MethodPost, "/api/v1/shutdown", "tok-admin", ""},
		// Error shapes are part of the wire contract too.
		{http.MethodGet, "/api/v1/status", "", ""},
		{http.MethodPost, "/api/v1/chaos", "tok-operate", `{"agent":"goa","down":true}`},
		{http.MethodPost, "/api/v1/deployments", "tok-operate", `{"name":"","server":"lv-00","cores":2}`},
		{http.MethodPost, "/api/v1/deployments", "tok-operate", `{"nope":1}`},
	}

	var b strings.Builder
	for _, s := range steps {
		w := doReq(t, h, s.method, s.path, s.token, s.body)
		tok := s.token
		if tok == "" {
			tok = "-"
		}
		fmt.Fprintf(&b, ">>> %s %s token=%s body=%s\n<<< %d\n%s\n", s.method, s.path, tok, s.body, w.Code, w.Body.String())
	}
	fmt.Fprintf(&b, "=== service calls ===\n%s\n", strings.Join(svc.calls, "\n"))

	golden := filepath.Join("testdata", "transcript.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if string(want) != b.String() {
		t.Errorf("transcript differs from %s (rerun with -update if the change is intended):\n--- want ---\n%s\n--- got ---\n%s",
			golden, want, b.String())
	}
}

// TestScopesSorted guards the documented scope list used by docs and CLI
// help.
func TestScopesSorted(t *testing.T) {
	names := make([]string, 0)
	for _, s := range Scopes() {
		names = append(names, string(s))
	}
	uniq := map[string]bool{}
	for _, n := range names {
		if uniq[n] {
			t.Fatalf("duplicate scope %s", n)
		}
		uniq[n] = true
		if _, err := ParseScope(n); err != nil {
			t.Fatalf("ParseScope(%q): %v", n, err)
		}
	}
	if _, err := ParseScope("root"); err == nil {
		t.Fatal("ParseScope accepted an unknown scope")
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	_ = sorted // order is semantic (read < operate < admin < chaos), not lexical
}
