// Package api is the mutating control plane of the live cluster mode: the
// transport-free Service port, its wire DTOs, and the HTTP adapter that
// exposes it with scoped Bearer authentication, per-credential token-bucket
// rate limiting and request-size caps.
//
// The package follows a hexagonal (ports & adapters) split:
//
//   - Service (this file) is the port: every control-plane operation as a
//     plain Go method over plain Go values, free of HTTP, JSON and auth.
//   - NewHandler (http.go) is the driving adapter: it authenticates,
//     authorizes, rate-limits, decodes and dispatches HTTP requests onto a
//     Service.
//   - Client (client.go) is the same port re-exported over HTTP for CLIs
//     and tests; it implements Service.
//   - The driven adapter lives in internal/experiment: a LiveController
//     enqueues each call into the live cluster's command inbox, where the
//     simulation goroutine applies it between ticks — mutations enter the
//     same channel-inbox model as control-plane telemetry, so the
//     single-writer discipline and the invariant battery are preserved.
//
// The package deliberately imports nothing from the simulation: DTOs are
// self-contained so the port can be re-backed (a federation tier, a mock)
// without dragging transport concerns along.
package api

import (
	"context"
	"fmt"
	"time"
)

// Service is the control-plane port. Every method is synchronous: it
// returns once the cluster has applied (or rejected) the mutation, so a
// caller observing its own write through Status sees it.
//
// Errors returned by implementations should be *Error values; the HTTP
// adapter maps their Kind to a status code and anything else to 500.
type Service interface {
	// Status reports a consistent snapshot of the cluster control state.
	Status(ctx context.Context) (*ClusterStatus, error)
	// RegisterDeployment places a named deployment onto free cores of a
	// server; its cores run at the spec utilization each tick and may be
	// overclocked via StartOverclock.
	RegisterDeployment(ctx context.Context, spec DeploymentSpec) (*DeploymentStatus, error)
	// DrainDeployment stops the deployment's overclock session, frees its
	// cores and removes it.
	DrainDeployment(ctx context.Context, name string) error
	// SetProfile installs a server's reported power/overclock profile on
	// the gOA (a flat week template, mirroring the live profile reports).
	SetProfile(ctx context.Context, spec ProfileSpec) error
	// SetBudget sets a server sOA's static power budget in watts.
	SetBudget(ctx context.Context, spec BudgetSpec) error
	// AssignBudgets computes the gOA's heterogeneous budget templates from
	// the currently reported profiles and assigns them to every profiled
	// server's sOA.
	AssignBudgets(ctx context.Context, spec AssignSpec) (*AssignStatus, error)
	// SetSeverity reclassifies a server's capping severity class.
	SetSeverity(ctx context.Context, spec SeveritySpec) error
	// StartOverclock asks a server's sOA to overclock a VM (the built-in
	// "vm" or a registered deployment). The sOA's admission control
	// decides; a denial is a granted=false status, not an error.
	StartOverclock(ctx context.Context, spec OCSpec) (*OCStatus, error)
	// StopOverclock cancels a VM's active overclock session.
	StopOverclock(ctx context.Context, spec StopSpec) error
	// SetChaos flips a chaos fault: while an agent ("goa" or
	// "soa/<server>") is down, control messages from and to it are dropped.
	SetChaos(ctx context.Context, spec ChaosSpec) (*ChaosStatus, error)
	// ForceCheckpoint writes a durable checkpoint now (requires the run to
	// have a checkpoint path configured).
	ForceCheckpoint(ctx context.Context) (*CheckpointStatus, error)
	// Advance runs n simulation ticks synchronously (hold mode only).
	Advance(ctx context.Context, spec AdvanceSpec) (*AdvanceStatus, error)
	// Shutdown ends the live run gracefully.
	Shutdown(ctx context.Context) error
}

// --- Errors ----------------------------------------------------------------

// ErrorKind classifies a control-plane error for transport mapping.
type ErrorKind string

const (
	// KindInvalid is a malformed or out-of-range request (HTTP 400).
	KindInvalid ErrorKind = "invalid"
	// KindNotFound names a server, VM or deployment that does not exist
	// (HTTP 404).
	KindNotFound ErrorKind = "not-found"
	// KindConflict is a request valid in itself but at odds with current
	// state, e.g. a duplicate deployment name (HTTP 409).
	KindConflict ErrorKind = "conflict"
	// KindUnavailable means the control plane cannot serve the request in
	// its current mode — run ended, checkpointing off, not holding
	// (HTTP 503).
	KindUnavailable ErrorKind = "unavailable"
)

// Error is the Service error type. Kind drives the HTTP status; Msg is the
// operator-facing detail.
type Error struct {
	Kind ErrorKind
	Msg  string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Kind, e.Msg) }

// Invalidf builds a KindInvalid error.
func Invalidf(format string, args ...any) *Error {
	return &Error{Kind: KindInvalid, Msg: fmt.Sprintf(format, args...)}
}

// NotFoundf builds a KindNotFound error.
func NotFoundf(format string, args ...any) *Error {
	return &Error{Kind: KindNotFound, Msg: fmt.Sprintf(format, args...)}
}

// Conflictf builds a KindConflict error.
func Conflictf(format string, args ...any) *Error {
	return &Error{Kind: KindConflict, Msg: fmt.Sprintf(format, args...)}
}

// Unavailablef builds a KindUnavailable error.
func Unavailablef(format string, args ...any) *Error {
	return &Error{Kind: KindUnavailable, Msg: fmt.Sprintf(format, args...)}
}

// KindOf extracts the ErrorKind of err, or "" for non-API errors.
func KindOf(err error) ErrorKind {
	if e, ok := err.(*Error); ok {
		return e.Kind
	}
	if e, ok := err.(*RemoteError); ok {
		return e.Kind
	}
	return ""
}

// --- Request DTOs ----------------------------------------------------------

// DeploymentSpec registers a deployment.
type DeploymentSpec struct {
	// Name is the cluster-unique deployment (and VM) name.
	Name string `json:"name"`
	// Server hosts the deployment.
	Server string `json:"server"`
	// Cores is how many free cores to allocate.
	Cores int `json:"cores"`
	// Util is the steady-state utilization its cores run at, in [0,1].
	Util float64 `json:"util"`
}

// Validate reports whether the spec is well formed.
func (s DeploymentSpec) Validate() error {
	switch {
	case s.Name == "":
		return Invalidf("deployment needs a name")
	case s.Name == "vm":
		return Invalidf("deployment name %q is reserved for the built-in VM", s.Name)
	case s.Server == "":
		return Invalidf("deployment needs a server")
	case s.Cores <= 0:
		return Invalidf("deployment needs cores > 0, got %d", s.Cores)
	case s.Util < 0 || s.Util > 1:
		return Invalidf("deployment util %g outside [0,1]", s.Util)
	}
	return nil
}

// DrainSpec names the deployment to drain.
type DrainSpec struct {
	Name string `json:"name"`
}

// Validate reports whether the spec is well formed.
func (s DrainSpec) Validate() error {
	if s.Name == "" {
		return Invalidf("drain needs a deployment name")
	}
	return nil
}

// ProfileSpec installs a server profile on the gOA.
type ProfileSpec struct {
	Server string `json:"server"`
	// MedianWatts is the server's flat power template level.
	MedianWatts float64 `json:"median_watts"`
	// RequestedCores/GrantedCores are the flat overclock template levels.
	RequestedCores float64 `json:"requested_cores"`
	GrantedCores   float64 `json:"granted_cores"`
	// CoreCostWatts is the per-core overclock power cost; 0 uses the
	// host's modeled cost.
	CoreCostWatts float64 `json:"core_cost_watts,omitempty"`
}

// Validate reports whether the spec is well formed.
func (s ProfileSpec) Validate() error {
	switch {
	case s.Server == "":
		return Invalidf("profile needs a server")
	case s.MedianWatts < 0:
		return Invalidf("profile median %g W negative", s.MedianWatts)
	case s.RequestedCores < 0 || s.GrantedCores < 0:
		return Invalidf("profile core counts must be non-negative")
	case s.GrantedCores > s.RequestedCores:
		return Invalidf("profile granted %g > requested %g cores", s.GrantedCores, s.RequestedCores)
	case s.CoreCostWatts < 0:
		return Invalidf("profile core cost %g W negative", s.CoreCostWatts)
	}
	return nil
}

// BudgetSpec sets a server's static power budget.
type BudgetSpec struct {
	Server string  `json:"server"`
	Watts  float64 `json:"watts"`
}

// Validate reports whether the spec is well formed.
func (s BudgetSpec) Validate() error {
	switch {
	case s.Server == "":
		return Invalidf("budget needs a server")
	case s.Watts <= 0:
		return Invalidf("budget needs watts > 0, got %g", s.Watts)
	}
	return nil
}

// AssignSpec parameterizes gOA budget-template assignment.
type AssignSpec struct {
	// StepMinutes is the template slot width; 0 defaults to 60.
	StepMinutes int `json:"step_minutes,omitempty"`
}

// Validate reports whether the spec is well formed.
func (s AssignSpec) Validate() error {
	if s.StepMinutes < 0 || s.StepMinutes > 24*60 {
		return Invalidf("assign step %d minutes outside (0, 1440]", s.StepMinutes)
	}
	return nil
}

// SeveritySpec reclassifies a server's capping severity.
type SeveritySpec struct {
	Server string `json:"server"`
	// Severity is the power.Severity class: 0 critical … 3 harvest.
	Severity int `json:"severity"`
}

// Validate reports whether the spec is well formed.
func (s SeveritySpec) Validate() error {
	switch {
	case s.Server == "":
		return Invalidf("severity needs a server")
	case s.Severity < 0 || s.Severity > 3:
		return Invalidf("severity class %d outside [0,3]", s.Severity)
	}
	return nil
}

// OCSpec triggers an overclock session.
type OCSpec struct {
	Server string `json:"server"`
	VM     string `json:"vm"`
	// Cores bounds the session to the first n of the VM's cores; 0 uses
	// all of them.
	Cores int `json:"cores,omitempty"`
	// TargetMHz is the requested frequency; 0 asks for the host maximum.
	TargetMHz int `json:"target_mhz,omitempty"`
	// DurationSec bounds the session in simulated seconds; 0 is
	// open-ended (metrics-style).
	DurationSec int `json:"duration_sec,omitempty"`
}

// Validate reports whether the spec is well formed.
func (s OCSpec) Validate() error {
	switch {
	case s.Server == "":
		return Invalidf("overclock needs a server")
	case s.VM == "":
		return Invalidf("overclock needs a vm")
	case s.Cores < 0:
		return Invalidf("overclock cores %d negative", s.Cores)
	case s.TargetMHz < 0:
		return Invalidf("overclock target %d MHz negative", s.TargetMHz)
	case s.DurationSec < 0:
		return Invalidf("overclock duration %d s negative", s.DurationSec)
	}
	return nil
}

// StopSpec cancels an overclock session.
type StopSpec struct {
	Server string `json:"server"`
	VM     string `json:"vm"`
}

// Validate reports whether the spec is well formed.
func (s StopSpec) Validate() error {
	switch {
	case s.Server == "":
		return Invalidf("stop needs a server")
	case s.VM == "":
		return Invalidf("stop needs a vm")
	}
	return nil
}

// ChaosSpec flips a chaos fault on an agent.
type ChaosSpec struct {
	// Agent is "goa" or "soa/<server>" (a bare server name is shorthand
	// for its sOA).
	Agent string `json:"agent"`
	Down  bool   `json:"down"`
}

// Validate reports whether the spec is well formed.
func (s ChaosSpec) Validate() error {
	if s.Agent == "" {
		return Invalidf("chaos needs an agent")
	}
	return nil
}

// AdvanceSpec runs simulation ticks in hold mode.
type AdvanceSpec struct {
	// Ticks is how many ticks to run; 0 defaults to 1.
	Ticks int `json:"ticks,omitempty"`
}

// MaxAdvanceTicks bounds one Advance call so a typo cannot wedge the
// control plane for hours.
const MaxAdvanceTicks = 100000

// Validate reports whether the spec is well formed.
func (s AdvanceSpec) Validate() error {
	if s.Ticks < 0 || s.Ticks > MaxAdvanceTicks {
		return Invalidf("advance ticks %d outside [0,%d]", s.Ticks, MaxAdvanceTicks)
	}
	return nil
}

// --- Response DTOs ---------------------------------------------------------

// DeploymentStatus describes a registered deployment.
type DeploymentStatus struct {
	Name   string  `json:"name"`
	Server string  `json:"server"`
	Cores  []int   `json:"cores"`
	Util   float64 `json:"util"`
}

// AssignStatus reports a budget-template assignment.
type AssignStatus struct {
	// Servers is how many sOAs received an assigned template.
	Servers int `json:"servers"`
	// Budgets is each profiled server's budget at the current sim time.
	Budgets map[string]float64 `json:"budgets,omitempty"`
}

// OCStatus is the sOA's decision on an overclock request.
type OCStatus struct {
	Granted bool   `json:"granted"`
	Reason  string `json:"reason,omitempty"`
	Cores   []int  `json:"cores,omitempty"`
}

// ChaosStatus reports the chaos fault state after a flip.
type ChaosStatus struct {
	Agent string `json:"agent"`
	Down  bool   `json:"down"`
	// DownAgents is the full sorted list of currently-down agents.
	DownAgents []string `json:"down_agents,omitempty"`
}

// CheckpointStatus reports a forced checkpoint write.
type CheckpointStatus struct {
	Path    string    `json:"path"`
	Bytes   int       `json:"bytes"`
	Writes  int       `json:"writes"`
	SavedAt time.Time `json:"saved_at"`
}

// AdvanceStatus reports how far Advance got.
type AdvanceStatus struct {
	// Ticks is how many ticks actually ran (the run may end first).
	Ticks int       `json:"ticks"`
	Now   time.Time `json:"now"`
}

// SessionStatus describes one active overclock session.
type SessionStatus struct {
	VM       string `json:"vm"`
	Cores    []int  `json:"cores"`
	MHz      int    `json:"mhz"`
	Priority string `json:"priority"`
}

// ServerStatus describes one server's control state.
type ServerStatus struct {
	Name         string             `json:"name"`
	Severity     int                `json:"severity"`
	SeverityName string             `json:"severity_name"`
	CapLevel     int                `json:"cap_level"`
	PowerWatts   float64            `json:"power_watts"`
	BudgetWatts  float64            `json:"budget_watts"`
	Sessions     []SessionStatus    `json:"sessions,omitempty"`
	Deployments  []DeploymentStatus `json:"deployments,omitempty"`
}

// RackStatus describes the rack manager's state.
type RackStatus struct {
	Name       string  `json:"name"`
	LimitWatts float64 `json:"limit_watts"`
	PowerWatts float64 `json:"power_watts"`
	CapEvents  int     `json:"cap_events"`
	Warnings   int     `json:"warnings"`
}

// CheckpointInfo mirrors the durable-state status into the cluster status.
type CheckpointInfo struct {
	Path         string    `json:"path,omitempty"`
	Writes       int       `json:"writes"`
	LastBytes    int       `json:"last_bytes,omitempty"`
	LastSavedAt  time.Time `json:"last_saved_at,omitempty"`
	RestoredFrom string    `json:"restored_from,omitempty"`
}

// ClusterStatus is the consistent control-state snapshot Status returns.
type ClusterStatus struct {
	// Now is the simulated time of the next tick to run.
	Now time.Time `json:"now"`
	// Hold reports whether the run advances only on Advance commands.
	Hold     bool `json:"hold"`
	Ticks    int  `json:"ticks"`
	Requests int  `json:"requests"`
	Granted  int  `json:"granted"`
	// Violations counts invariant violations observed so far (0 is the
	// only healthy value).
	Violations int          `json:"violations"`
	Rack       RackStatus   `json:"rack"`
	Servers    []ServerStatus `json:"servers"`
	// ProfiledServers lists servers the gOA currently holds profiles for.
	ProfiledServers []string `json:"profiled_servers,omitempty"`
	// ChaosDown lists agents currently chaos-downed; ChaosDropped counts
	// messages dropped by chaos gates.
	ChaosDown    []string       `json:"chaos_down,omitempty"`
	ChaosDropped int            `json:"chaos_dropped,omitempty"`
	Checkpoint   CheckpointInfo `json:"checkpoint"`
}
