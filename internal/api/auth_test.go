package api

import (
	"errors"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)

func TestParseCredentials(t *testing.T) {
	spec := "ops:tok-ops:read+operate;ci:tok-ci:admin:2026-06-01T00:00:00Z; chaos-bot:tok-chaos:chaos"
	a, err := ParseCredentials(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Names(); strings.Join(got, ",") != "chaos-bot,ci,ops" {
		t.Fatalf("names = %v", got)
	}

	ops, err := a.Lookup("tok-ops", t0)
	if err != nil {
		t.Fatal(err)
	}
	if !ops.Allows(ScopeRead) || !ops.Allows(ScopeOperate) || ops.Allows(ScopeAdmin) || ops.Allows(ScopeChaos) {
		t.Fatalf("ops scopes = %v", ops.Scopes())
	}
	if !ops.Expiry.IsZero() {
		t.Fatalf("ops should never expire, got %v", ops.Expiry)
	}

	ci, err := a.Lookup("tok-ci", t0)
	if err != nil {
		t.Fatal(err)
	}
	if want := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC); !ci.Expiry.Equal(want) {
		t.Fatalf("ci expiry = %v, want %v", ci.Expiry, want)
	}
}

func TestParseCredentialsRejects(t *testing.T) {
	cases := map[string]string{
		"empty spec":      "",
		"only separators": " ; ; ",
		"missing fields":  "ops:tok",
		"too many fields": "ops:tok:read:2026-06-01T00:00:00Z:extra",
		"empty name":      ":tok:read",
		"empty token":     "ops::read",
		"unknown scope":   "ops:tok:root",
		"no scopes":       "ops:tok:",
		"bad expiry":      "ops:tok:read:tomorrow",
		"duplicate name":  "ops:tok1:read;ops:tok2:read",
		"duplicate token": "a:tok:read;b:tok:read",
	}
	for name, spec := range cases {
		if _, err := ParseCredentials(spec); err == nil {
			t.Errorf("%s (%q): parsed without error", name, spec)
		}
	}
}

func TestLookupFailures(t *testing.T) {
	a, err := ParseCredentials("ci:tok-ci:admin:2026-06-01T00:00:00Z")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Lookup("", t0); !errors.Is(err, ErrNoToken) {
		t.Errorf("empty token err = %v", err)
	}
	if _, err := a.Lookup("nope", t0); !errors.Is(err, ErrUnknownToken) {
		t.Errorf("unknown token err = %v", err)
	}
	after := time.Date(2026, 6, 1, 0, 0, 1, 0, time.UTC)
	if _, err := a.Lookup("tok-ci", after); !errors.Is(err, ErrExpiredToken) {
		t.Errorf("expired token err = %v", err)
	}
	// At the expiry instant itself the credential is still good (After, not
	// !Before).
	if _, err := a.Lookup("tok-ci", time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Errorf("at-expiry lookup err = %v", err)
	}
}

func TestRateLimiter(t *testing.T) {
	l := NewRateLimiter(1, 3) // 1 req/s, burst 3
	now := t0
	l.SetClock(func() time.Time { return now })

	for i := 0; i < 3; i++ {
		if !l.Allow("ops") {
			t.Fatalf("burst request %d denied", i)
		}
	}
	if l.Allow("ops") {
		t.Fatal("4th instant request allowed past burst")
	}
	// Another key has its own bucket.
	if !l.Allow("ci") {
		t.Fatal("independent key denied")
	}

	now = now.Add(2 * time.Second) // refills 2 tokens
	if !l.Allow("ops") || !l.Allow("ops") {
		t.Fatal("refilled tokens denied")
	}
	if l.Allow("ops") {
		t.Fatal("third request allowed after 2-token refill")
	}

	// Refill saturates at burst.
	now = now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if !l.Allow("ops") {
			t.Fatalf("post-saturation request %d denied", i)
		}
	}
	if l.Allow("ops") {
		t.Fatal("saturated bucket exceeded burst")
	}
}

func TestRateLimiterNilAllows(t *testing.T) {
	var l *RateLimiter
	for i := 0; i < 1000; i++ {
		if !l.Allow("anyone") {
			t.Fatal("nil limiter denied")
		}
	}
}

func TestNewRateLimiterPanicsOnNonPositive(t *testing.T) {
	for _, pair := range [][2]float64{{0, 1}, {1, 0}, {-1, 1}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRateLimiter(%g, %g) did not panic", pair[0], pair[1])
				}
			}()
			NewRateLimiter(pair[0], pair[1])
		}()
	}
}

func TestConfigFromEnv(t *testing.T) {
	env := map[string]string{
		EnvTokens:  "ops:tok:read",
		EnvRate:    "2.5",
		EnvBurst:   "7",
		EnvMaxBody: "1024",
	}
	lookup := func(k string) (string, bool) { v, ok := env[k]; return v, ok }
	c := DefaultConfig()
	if err := c.FromEnv(lookup); err != nil {
		t.Fatal(err)
	}
	if c.Tokens != "ops:tok:read" || c.Rate != 2.5 || c.Burst != 7 || c.MaxBody != 1024 {
		t.Fatalf("config = %+v", c)
	}
	if !c.Enabled() {
		t.Fatal("config with tokens not enabled")
	}

	env[EnvRate] = "fast"
	if err := c.FromEnv(lookup); err == nil {
		t.Fatal("bad rate accepted")
	}
	if DefaultConfig().Enabled() {
		t.Fatal("default config (no tokens) reports enabled")
	}
}
