package api

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Scope is a capability class a credential may hold.
type Scope string

const (
	// ScopeRead allows status queries.
	ScopeRead Scope = "read"
	// ScopeOperate allows workload mutations: deployments, profiles,
	// budgets, severity, overclock sessions.
	ScopeOperate Scope = "operate"
	// ScopeAdmin allows run-level mutations: checkpoints, advance,
	// shutdown.
	ScopeAdmin Scope = "admin"
	// ScopeChaos allows flipping chaos faults.
	ScopeChaos Scope = "chaos"
)

// Scopes lists every valid scope.
func Scopes() []Scope { return []Scope{ScopeRead, ScopeOperate, ScopeAdmin, ScopeChaos} }

// ParseScope validates a scope name.
func ParseScope(s string) (Scope, error) {
	for _, sc := range Scopes() {
		if Scope(s) == sc {
			return sc, nil
		}
	}
	return "", fmt.Errorf("api: unknown scope %q", s)
}

// Credential is one named bearer token with its scopes and optional expiry.
type Credential struct {
	Name   string
	token  string
	scopes map[Scope]bool
	// Expiry zero means the credential never expires.
	Expiry time.Time
}

// Allows reports whether the credential holds the scope.
func (c *Credential) Allows(s Scope) bool { return c.scopes[s] }

// ExpiredAt reports whether the credential has expired as of now.
func (c *Credential) ExpiredAt(now time.Time) bool {
	return !c.Expiry.IsZero() && now.After(c.Expiry)
}

// Scopes returns the credential's scopes, sorted.
func (c *Credential) Scopes() []Scope {
	out := make([]Scope, 0, len(c.scopes))
	for s := range c.scopes {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Authenticator resolves bearer tokens to credentials.
type Authenticator struct {
	byToken map[string]*Credential
}

// Auth failure sentinels: the transport maps all of them to 401 but keeps
// the detail out of the response body (no oracle for token probing).
var (
	ErrNoToken      = &Error{Kind: KindInvalid, Msg: "missing bearer token"}
	ErrUnknownToken = &Error{Kind: KindInvalid, Msg: "unknown token"}
	ErrExpiredToken = &Error{Kind: KindInvalid, Msg: "expired token"}
)

// ParseCredentials parses the 12-factor credential spec:
//
//	name:token:scope[+scope...][:rfc3339-expiry] [; more]
//
// e.g. "ops:s3cret:read+operate;ci:tok:admin:2026-01-02T15:04:05Z".
// Names and tokens must be unique and non-empty.
func ParseCredentials(spec string) (*Authenticator, error) {
	a := &Authenticator{byToken: make(map[string]*Credential)}
	names := make(map[string]bool)
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		// SplitN keeps the colons inside an RFC 3339 expiry intact.
		parts := strings.SplitN(entry, ":", 4)
		if len(parts) < 3 {
			return nil, fmt.Errorf("api: credential %q: want name:token:scopes[:expiry]", entry)
		}
		name, token := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
		if name == "" || token == "" {
			return nil, fmt.Errorf("api: credential %q: empty name or token", entry)
		}
		if names[name] {
			return nil, fmt.Errorf("api: duplicate credential name %q", name)
		}
		if _, dup := a.byToken[token]; dup {
			return nil, fmt.Errorf("api: duplicate token for credential %q", name)
		}
		cred := &Credential{Name: name, token: token, scopes: make(map[Scope]bool)}
		for _, s := range strings.Split(parts[2], "+") {
			sc, err := ParseScope(strings.TrimSpace(s))
			if err != nil {
				return nil, fmt.Errorf("api: credential %q: %w", name, err)
			}
			cred.scopes[sc] = true
		}
		if len(cred.scopes) == 0 {
			return nil, fmt.Errorf("api: credential %q has no scopes", name)
		}
		if len(parts) == 4 {
			exp, err := time.Parse(time.RFC3339, strings.TrimSpace(parts[3]))
			if err != nil {
				return nil, fmt.Errorf("api: credential %q: bad expiry: %w", name, err)
			}
			cred.Expiry = exp
		}
		names[name] = true
		a.byToken[token] = cred
	}
	if len(a.byToken) == 0 {
		return nil, fmt.Errorf("api: no credentials in spec")
	}
	return a, nil
}

// Lookup resolves a bearer token as of now.
func (a *Authenticator) Lookup(token string, now time.Time) (*Credential, error) {
	if token == "" {
		return nil, ErrNoToken
	}
	cred, ok := a.byToken[token]
	if !ok {
		return nil, ErrUnknownToken
	}
	if cred.ExpiredAt(now) {
		return nil, ErrExpiredToken
	}
	return cred, nil
}

// Names returns the configured credential names, sorted.
func (a *Authenticator) Names() []string {
	out := make([]string, 0, len(a.byToken))
	for _, c := range a.byToken {
		out = append(out, c.Name)
	}
	sort.Strings(out)
	return out
}

// --- Rate limiting ---------------------------------------------------------

// RateLimiter is a per-key token bucket: each key may spend up to Burst
// requests instantly and refills at Rate requests per second. The zero
// limiter (nil) allows everything.
type RateLimiter struct {
	mu    sync.Mutex
	rate  float64 // tokens per second
	burst float64
	// now is the clock, injectable for tests.
	now     func() time.Time
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter builds a limiter refilling rate tokens/second up to burst.
// Non-positive rate or burst panics: a limiter that can never admit is a
// configuration bug, and "no limiting" is spelled nil.
func NewRateLimiter(rate, burst float64) *RateLimiter {
	if rate <= 0 || burst <= 0 {
		panic(fmt.Sprintf("api: rate limiter needs positive rate/burst, got %g/%g", rate, burst))
	}
	return &RateLimiter{rate: rate, burst: burst, now: time.Now, buckets: make(map[string]*bucket)}
}

// SetClock replaces the limiter's clock (tests).
func (l *RateLimiter) SetClock(now func() time.Time) {
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}

// Allow spends one token from key's bucket, reporting whether one was
// available. A nil limiter always allows.
func (l *RateLimiter) Allow(key string) bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[key]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
