package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// RemoteError is an API error as seen by a client: the HTTP status plus
// the server's error envelope.
type RemoteError struct {
	StatusCode int
	Kind       ErrorKind
	Msg        string
}

// Error implements error.
func (e *RemoteError) Error() string {
	if e.Kind != "" {
		return fmt.Sprintf("api: %d %s: %s", e.StatusCode, e.Kind, e.Msg)
	}
	return fmt.Sprintf("api: %d: %s", e.StatusCode, e.Msg)
}

// Client speaks the control-plane API over HTTP. It implements Service, so
// test harnesses and CLIs can treat a remote cluster exactly like a local
// port.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:9188".
	Base string
	// Token is the bearer credential.
	Token string
	// HTTP is the underlying client; nil uses a 30-second-timeout default.
	HTTP *http.Client
}

// NewClient builds a client for base with the bearer token.
func NewClient(base, token string) *Client {
	return &Client{Base: base, Token: token, HTTP: &http.Client{Timeout: 30 * time.Second}}
}

var _ Service = (*Client)(nil)

// call performs one command round-trip: in is the request body (nil for
// none), out the response target (nil to discard).
func (c *Client) call(ctx context.Context, cmd string, in, out any) error {
	rt, ok := RouteFor(cmd)
	if !ok {
		return Invalidf("unknown command %q", cmd)
	}
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("api: encode %s: %w", cmd, err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, rt.Method, c.Base+rt.Path, body)
	if err != nil {
		return fmt.Errorf("api: build %s: %w", cmd, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	hc := c.HTTP
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("api: %s: %w", cmd, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return fmt.Errorf("api: read %s response: %w", cmd, err)
	}
	if resp.StatusCode != http.StatusOK {
		re := &RemoteError{StatusCode: resp.StatusCode, Msg: string(bytes.TrimSpace(data))}
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			re.Kind, re.Msg = eb.Kind, eb.Error
		}
		return re
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("api: decode %s response: %w", cmd, err)
	}
	return nil
}

// Status implements Service.
func (c *Client) Status(ctx context.Context) (*ClusterStatus, error) {
	var st ClusterStatus
	if err := c.call(ctx, CmdStatus, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// RegisterDeployment implements Service.
func (c *Client) RegisterDeployment(ctx context.Context, spec DeploymentSpec) (*DeploymentStatus, error) {
	var st DeploymentStatus
	if err := c.call(ctx, CmdDeploy, spec, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// DrainDeployment implements Service.
func (c *Client) DrainDeployment(ctx context.Context, name string) error {
	return c.call(ctx, CmdDrain, DrainSpec{Name: name}, nil)
}

// SetProfile implements Service.
func (c *Client) SetProfile(ctx context.Context, spec ProfileSpec) error {
	return c.call(ctx, CmdProfile, spec, nil)
}

// SetBudget implements Service.
func (c *Client) SetBudget(ctx context.Context, spec BudgetSpec) error {
	return c.call(ctx, CmdBudget, spec, nil)
}

// AssignBudgets implements Service.
func (c *Client) AssignBudgets(ctx context.Context, spec AssignSpec) (*AssignStatus, error) {
	var st AssignStatus
	if err := c.call(ctx, CmdAssign, spec, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// SetSeverity implements Service.
func (c *Client) SetSeverity(ctx context.Context, spec SeveritySpec) error {
	return c.call(ctx, CmdSeverity, spec, nil)
}

// StartOverclock implements Service.
func (c *Client) StartOverclock(ctx context.Context, spec OCSpec) (*OCStatus, error) {
	var st OCStatus
	if err := c.call(ctx, CmdOCStart, spec, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// StopOverclock implements Service.
func (c *Client) StopOverclock(ctx context.Context, spec StopSpec) error {
	return c.call(ctx, CmdOCStop, spec, nil)
}

// SetChaos implements Service.
func (c *Client) SetChaos(ctx context.Context, spec ChaosSpec) (*ChaosStatus, error) {
	var st ChaosStatus
	if err := c.call(ctx, CmdChaos, spec, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// ForceCheckpoint implements Service.
func (c *Client) ForceCheckpoint(ctx context.Context) (*CheckpointStatus, error) {
	var st CheckpointStatus
	if err := c.call(ctx, CmdCheckpoint, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Advance implements Service.
func (c *Client) Advance(ctx context.Context, spec AdvanceSpec) (*AdvanceStatus, error) {
	var st AdvanceStatus
	if err := c.call(ctx, CmdAdvance, spec, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Shutdown implements Service.
func (c *Client) Shutdown(ctx context.Context) error {
	return c.call(ctx, CmdShutdown, nil, nil)
}
