package api

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Command names identify each control-plane operation across the HTTP
// adapter, the CLI and the fuzzer.
const (
	CmdStatus     = "status"
	CmdDeploy     = "deployment.register"
	CmdDrain      = "deployment.drain"
	CmdProfile    = "profile.set"
	CmdBudget     = "budget.set"
	CmdAssign     = "budget.assign"
	CmdSeverity   = "severity.set"
	CmdOCStart    = "overclock.start"
	CmdOCStop     = "overclock.stop"
	CmdChaos      = "chaos.set"
	CmdCheckpoint = "checkpoint.force"
	CmdAdvance    = "advance"
	CmdShutdown   = "shutdown"
)

// Route describes one HTTP endpoint: its method+path, required scope, and
// whether it mutates cluster state. Exported so the conformance suites can
// enumerate the full auth matrix instead of hand-maintaining it.
type Route struct {
	Cmd      string
	Method   string
	Path     string
	Scope    Scope
	Mutating bool
}

// Routes returns every endpoint of the control-plane API, in a fixed order.
func Routes() []Route {
	return []Route{
		{CmdStatus, http.MethodGet, "/api/v1/status", ScopeRead, false},
		{CmdDeploy, http.MethodPost, "/api/v1/deployments", ScopeOperate, true},
		{CmdDrain, http.MethodPost, "/api/v1/deployments/drain", ScopeOperate, true},
		{CmdProfile, http.MethodPost, "/api/v1/profiles", ScopeOperate, true},
		{CmdBudget, http.MethodPost, "/api/v1/budgets", ScopeOperate, true},
		{CmdAssign, http.MethodPost, "/api/v1/budgets/assign", ScopeOperate, true},
		{CmdSeverity, http.MethodPost, "/api/v1/severity", ScopeOperate, true},
		{CmdOCStart, http.MethodPost, "/api/v1/overclock", ScopeOperate, true},
		{CmdOCStop, http.MethodPost, "/api/v1/overclock/stop", ScopeOperate, true},
		{CmdChaos, http.MethodPost, "/api/v1/chaos", ScopeChaos, true},
		{CmdCheckpoint, http.MethodPost, "/api/v1/checkpoint", ScopeAdmin, true},
		{CmdAdvance, http.MethodPost, "/api/v1/advance", ScopeAdmin, true},
		{CmdShutdown, http.MethodPost, "/api/v1/shutdown", ScopeAdmin, true},
	}
}

// RouteFor returns the route for a command name.
func RouteFor(cmd string) (Route, bool) {
	for _, r := range Routes() {
		if r.Cmd == cmd {
			return r, true
		}
	}
	return Route{}, false
}

// decodeStrict unmarshals body into T rejecting unknown fields and trailing
// garbage, then validates. An empty body decodes the zero value (commands
// whose every field is optional accept it).
func decodeStrict[T interface{ Validate() error }](body []byte) (T, error) {
	var v T
	if len(bytes.TrimSpace(body)) > 0 {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&v); err != nil {
			return v, Invalidf("decode: %v", err)
		}
		if dec.More() {
			return v, Invalidf("decode: trailing data after JSON body")
		}
	}
	if err := v.Validate(); err != nil {
		return v, err
	}
	return v, nil
}

// emptySpec is the body of commands that take no parameters.
type emptySpec struct{}

// Validate implements the decode contract.
func (emptySpec) Validate() error { return nil }

// DecodeCommand decodes and validates the request body for a command name,
// returning the typed spec. It is the single entry point the HTTP handlers
// use, and the surface FuzzCommandDecode drives: for any input it must
// return either a valid spec or an error, never panic.
func DecodeCommand(cmd string, body []byte) (any, error) {
	switch cmd {
	case CmdStatus, CmdCheckpoint, CmdShutdown:
		return decodeStrict[emptySpec](body)
	case CmdDeploy:
		return decodeStrict[DeploymentSpec](body)
	case CmdDrain:
		return decodeStrict[DrainSpec](body)
	case CmdProfile:
		return decodeStrict[ProfileSpec](body)
	case CmdBudget:
		return decodeStrict[BudgetSpec](body)
	case CmdAssign:
		return decodeStrict[AssignSpec](body)
	case CmdSeverity:
		return decodeStrict[SeveritySpec](body)
	case CmdOCStart:
		return decodeStrict[OCSpec](body)
	case CmdOCStop:
		return decodeStrict[StopSpec](body)
	case CmdChaos:
		return decodeStrict[ChaosSpec](body)
	case CmdAdvance:
		return decodeStrict[AdvanceSpec](body)
	default:
		return nil, Invalidf("unknown command %q", cmd)
	}
}

// HandlerConfig tunes the HTTP adapter.
type HandlerConfig struct {
	// MaxBody caps request bodies in bytes; <=0 uses DefaultMaxBody.
	MaxBody int64
	// Limiter rate-limits per credential (plus a shared bucket for
	// unauthenticated callers); nil disables limiting.
	Limiter *RateLimiter
	// Now is the auth clock (token expiry); nil uses time.Now.
	Now func() time.Time
}

// DefaultMaxBody caps request bodies at 64 KiB — orders of magnitude above
// any legitimate control-plane payload.
const DefaultMaxBody = 64 << 10

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string    `json:"error"`
	Kind  ErrorKind `json:"kind,omitempty"`
}

// handler is the driving HTTP adapter over a Service.
type handler struct {
	svc  Service
	auth *Authenticator
	cfg  HandlerConfig
	mux  *http.ServeMux
}

// NewHandler wraps svc in the authenticated HTTP adapter. Every request is
// size-capped, authenticated against auth, authorized against the route's
// scope, rate-limited per credential, decoded strictly, dispatched, and
// answered in JSON.
func NewHandler(svc Service, auth *Authenticator, cfg HandlerConfig) http.Handler {
	if svc == nil || auth == nil {
		panic("api: NewHandler needs a service and an authenticator")
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	h := &handler{svc: svc, auth: auth, cfg: cfg, mux: http.NewServeMux()}
	for _, rt := range Routes() {
		rt := rt
		h.mux.HandleFunc(rt.Method+" "+rt.Path, func(w http.ResponseWriter, r *http.Request) {
			h.serve(rt, w, r)
		})
	}
	return h
}

// ServeHTTP implements http.Handler.
func (h *handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// bearerToken extracts the Bearer token, "" when absent or malformed.
func bearerToken(r *http.Request) string {
	v := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(v) <= len(prefix) || !strings.EqualFold(v[:len(prefix)], prefix) {
		return ""
	}
	return strings.TrimSpace(v[len(prefix):])
}

func (h *handler) serve(rt Route, w http.ResponseWriter, r *http.Request) {
	// 1. Authenticate. Failures share one throttle bucket so token probing
	// is rate-limited too, and the body never says which check failed.
	cred, err := h.auth.Lookup(bearerToken(r), h.cfg.Now())
	if err != nil {
		if !h.cfg.Limiter.Allow("!unauthenticated") {
			writeError(w, http.StatusTooManyRequests, "rate limited")
			return
		}
		w.Header().Set("WWW-Authenticate", `Bearer realm="smartoclock"`)
		writeError(w, http.StatusUnauthorized, "unauthorized")
		return
	}
	// 2. Authorize the route's scope.
	if !cred.Allows(rt.Scope) {
		writeError(w, http.StatusForbidden,
			fmt.Sprintf("credential %q lacks scope %q", cred.Name, rt.Scope))
		return
	}
	// 3. Rate-limit per credential.
	if !h.cfg.Limiter.Allow(cred.Name) {
		writeError(w, http.StatusTooManyRequests, "rate limited")
		return
	}
	// 4. Read the size-capped body and decode the command.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, h.cfg.MaxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", h.cfg.MaxBody))
			return
		}
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	spec, err := DecodeCommand(rt.Cmd, body)
	if err != nil {
		h.writeServiceError(w, err)
		return
	}
	// 5. Dispatch to the port.
	v, err := h.dispatch(rt.Cmd, r, spec)
	if err != nil {
		h.writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// okBody acknowledges mutations that return no data.
type okBody struct {
	OK  bool   `json:"ok"`
	Cmd string `json:"cmd"`
}

func (h *handler) dispatch(cmd string, r *http.Request, spec any) (any, error) {
	ctx := r.Context()
	ack := func(err error) (any, error) {
		if err != nil {
			return nil, err
		}
		return okBody{OK: true, Cmd: cmd}, nil
	}
	switch cmd {
	case CmdStatus:
		return h.svc.Status(ctx)
	case CmdDeploy:
		return h.svc.RegisterDeployment(ctx, spec.(DeploymentSpec))
	case CmdDrain:
		return ack(h.svc.DrainDeployment(ctx, spec.(DrainSpec).Name))
	case CmdProfile:
		return ack(h.svc.SetProfile(ctx, spec.(ProfileSpec)))
	case CmdBudget:
		return ack(h.svc.SetBudget(ctx, spec.(BudgetSpec)))
	case CmdAssign:
		return h.svc.AssignBudgets(ctx, spec.(AssignSpec))
	case CmdSeverity:
		return ack(h.svc.SetSeverity(ctx, spec.(SeveritySpec)))
	case CmdOCStart:
		return h.svc.StartOverclock(ctx, spec.(OCSpec))
	case CmdOCStop:
		return ack(h.svc.StopOverclock(ctx, spec.(StopSpec)))
	case CmdChaos:
		return h.svc.SetChaos(ctx, spec.(ChaosSpec))
	case CmdCheckpoint:
		return h.svc.ForceCheckpoint(ctx)
	case CmdAdvance:
		return h.svc.Advance(ctx, spec.(AdvanceSpec))
	case CmdShutdown:
		return ack(h.svc.Shutdown(ctx))
	default:
		return nil, Invalidf("unknown command %q", cmd)
	}
}

// writeServiceError maps a Service error to its HTTP status.
func (h *handler) writeServiceError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch KindOf(err) {
	case KindInvalid:
		status = http.StatusBadRequest
	case KindNotFound:
		status = http.StatusNotFound
	case KindConflict:
		status = http.StatusConflict
	case KindUnavailable:
		status = http.StatusServiceUnavailable
	}
	body := errorBody{Error: err.Error(), Kind: KindOf(err)}
	writeJSON(w, status, body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
