package api

import (
	"fmt"
	"net/http"
	"strconv"
)

// Environment variables of the 12-factor configuration surface. Flags on
// the serving binary override them; both feed the same Config.
const (
	// EnvTokens is the credential spec (see ParseCredentials). Empty
	// disables the control-plane API entirely.
	EnvTokens = "SOC_API_TOKENS"
	// EnvRate/EnvBurst tune the per-credential token bucket.
	EnvRate  = "SOC_API_RATE"
	EnvBurst = "SOC_API_BURST"
	// EnvMaxBody caps request bodies in bytes.
	EnvMaxBody = "SOC_API_MAX_BODY"
)

// Config is the deployable configuration of the HTTP adapter.
type Config struct {
	// Tokens is the credential spec; empty means the API is disabled.
	Tokens string
	// Rate/Burst parameterize the per-credential token bucket
	// (requests/second and bucket size). Rate <= 0 disables limiting.
	Rate  float64
	Burst float64
	// MaxBody caps request bodies in bytes; <=0 uses DefaultMaxBody.
	MaxBody int64
}

// DefaultConfig returns the production defaults: 50 req/s with a burst of
// 100 per credential, 64 KiB bodies, no credentials (API off until
// configured).
func DefaultConfig() Config {
	return Config{Rate: 50, Burst: 100, MaxBody: DefaultMaxBody}
}

// FromEnv overlays environment variables onto c. lookup is os.LookupEnv in
// production, injectable for tests.
func (c *Config) FromEnv(lookup func(string) (string, bool)) error {
	if v, ok := lookup(EnvTokens); ok {
		c.Tokens = v
	}
	if v, ok := lookup(EnvRate); ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("api: %s=%q: %w", EnvRate, v, err)
		}
		c.Rate = f
	}
	if v, ok := lookup(EnvBurst); ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("api: %s=%q: %w", EnvBurst, v, err)
		}
		c.Burst = f
	}
	if v, ok := lookup(EnvMaxBody); ok {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("api: %s=%q: %w", EnvMaxBody, v, err)
		}
		c.MaxBody = n
	}
	return nil
}

// Enabled reports whether credentials are configured.
func (c Config) Enabled() bool { return c.Tokens != "" }

// Build parses the credentials and assembles the authenticated HTTP
// adapter over svc.
func (c Config) Build(svc Service) (http.Handler, error) {
	auth, err := ParseCredentials(c.Tokens)
	if err != nil {
		return nil, err
	}
	var limiter *RateLimiter
	if c.Rate > 0 {
		burst := c.Burst
		if burst <= 0 {
			burst = c.Rate
		}
		limiter = NewRateLimiter(c.Rate, burst)
	}
	return NewHandler(svc, auth, HandlerConfig{MaxBody: c.MaxBody, Limiter: limiter}), nil
}
