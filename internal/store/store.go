// Package store is the durable checkpoint layer: a versioned, deterministic
// snapshot/restore envelope for agent state, written atomically so a crash
// mid-checkpoint never leaves a corrupt file behind.
//
// The envelope is compact JSON: a magic marker, a schema version, the
// simulated save instant, a CRC-32 (IEEE) checksum of the payload, and the
// payload itself as raw JSON. Encoding is deterministic — encoding/json
// sorts map keys, float64 round-trips via the shortest representation, and
// time values serialize as exact RFC 3339 nanoseconds — so the same state
// always yields the same bytes, which the equivalence tests exploit to
// assert lossless roundtrips byte-for-byte.
package store

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"smartoclock/internal/cluster"
	"smartoclock/internal/core"
)

// Magic marks a checkpoint envelope.
const Magic = "SOCSTATE"

// Version is the current schema version. Decode rejects envelopes from a
// different version: state types carry no migration shims, and silently
// restoring mismatched state is worse than a cold start.
const Version = 1

// Envelope is the on-disk checkpoint format.
type Envelope struct {
	Magic    string          `json:"magic"`
	Version  int             `json:"version"`
	SavedAt  time.Time       `json:"saved_at"`
	Checksum uint32          `json:"checksum"`
	Payload  json.RawMessage `json:"payload"`
}

// Checkpoint aggregates the durable state of one rack's control plane: the
// gOA, every sOA (keyed by server name, including its lifetime ledger), and
// the servers' hardware-adjacent state (cap level, wear counters).
// Individual fields may be nil/empty — a checkpoint holds whatever the rig
// chose to persist.
type Checkpoint struct {
	GOA     *core.GOAState                  `json:"goa,omitempty"`
	SOAs    map[string]*core.SOAState       `json:"soas,omitempty"`
	Servers map[string]*cluster.ServerState `json:"servers,omitempty"`
}

// Encode serializes state into an envelope, stamped with the (simulated)
// save instant. The same state and instant always produce the same bytes.
func Encode(savedAt time.Time, state any) ([]byte, error) {
	payload, err := json.Marshal(state)
	if err != nil {
		return nil, fmt.Errorf("store: encode payload: %w", err)
	}
	env := Envelope{
		Magic:    Magic,
		Version:  Version,
		SavedAt:  savedAt,
		Checksum: crc32.ChecksumIEEE(payload),
		Payload:  payload,
	}
	data, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("store: encode envelope: %w", err)
	}
	return data, nil
}

// Decode verifies an envelope (magic, version, checksum) and unmarshals its
// payload into state, returning the save instant.
func Decode(data []byte, state any) (time.Time, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return time.Time{}, fmt.Errorf("store: decode envelope: %w", err)
	}
	if env.Magic != Magic {
		return time.Time{}, fmt.Errorf("store: bad magic %q, want %q", env.Magic, Magic)
	}
	if env.Version != Version {
		return time.Time{}, fmt.Errorf("store: schema version %d, this build reads %d", env.Version, Version)
	}
	if sum := crc32.ChecksumIEEE(env.Payload); sum != env.Checksum {
		return time.Time{}, fmt.Errorf("store: payload checksum %08x, envelope says %08x (corrupt checkpoint)", sum, env.Checksum)
	}
	if err := json.Unmarshal(env.Payload, state); err != nil {
		return time.Time{}, fmt.Errorf("store: decode payload: %w", err)
	}
	return env.SavedAt, nil
}

// StateInfo describes a process's durable-state status: where and when it
// last checkpointed, and what (if anything) it was restored from. The live
// telemetry plane publishes it at /statez.
type StateInfo struct {
	// CheckpointPath is where periodic checkpoints are written ("" when
	// checkpointing is off).
	CheckpointPath string `json:"checkpoint_path,omitempty"`
	// LastSavedAt is the (simulated) instant stamped into the most recent
	// checkpoint; LastBytes its encoded size; Writes the lifetime count.
	LastSavedAt time.Time `json:"last_saved_at,omitempty"`
	LastBytes   int       `json:"last_bytes,omitempty"`
	Writes      int       `json:"writes"`
	// RestoredFrom/RestoredAt record a warm start: the file the process
	// restored from and the save instant that checkpoint carried.
	RestoredFrom string    `json:"restored_from,omitempty"`
	RestoredAt   time.Time `json:"restored_at,omitempty"`
}

// Save writes state to path atomically: the envelope goes to a temp file in
// the same directory, is synced, then renamed over path. A reader never
// observes a partial checkpoint, and a crash mid-write leaves the previous
// checkpoint intact.
func Save(path string, savedAt time.Time, state any) error {
	data, err := Encode(savedAt, state)
	if err != nil {
		return err
	}
	return SaveEncoded(path, data)
}

// SaveEncoded atomically writes an already-encoded envelope to path (see
// Save). Callers that need the encoded size use Encode + SaveEncoded to
// avoid serializing twice.
func SaveEncoded(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: save %s: %w", path, werr)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: save %s: %w", path, err)
	}
	return nil
}

// Load reads and decodes a checkpoint file into state, returning the save
// instant.
func Load(path string, state any) (time.Time, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return time.Time{}, fmt.Errorf("store: load: %w", err)
	}
	at, err := Decode(data, state)
	if err != nil {
		return time.Time{}, fmt.Errorf("store: load %s: %w", path, err)
	}
	return at, nil
}
