package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"smartoclock/internal/cluster"
	"smartoclock/internal/core"
	"smartoclock/internal/lifetime"
	"smartoclock/internal/machine"
	"smartoclock/internal/timeseries"
)

var t0 = time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC)

// buildCheckpoint assembles a representative checkpoint: a profiled gOA,
// one exercised sOA with sessions and ledger, and one server with wear.
func buildCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	g := core.NewGOA("rack-0", 6000)
	g.SetProfile("s0", core.ServerProfile{Power: timeseries.FlatWeek(250, time.Hour), OCCoreCost: 3.2})
	g.SetProfile("s1", core.ServerProfile{Power: timeseries.FlatWeek(310, time.Hour), OCCoreCost: 3.2})

	mcfg := machine.DefaultConfig()
	mcfg.Cores = 8
	srv := cluster.NewServer("s0", mcfg, 0)
	budgets := lifetime.NewCoreBudgets(lifetime.DefaultBudgetConfig(), mcfg.Cores, t0)
	soa := core.NewSOA(core.DefaultSOAConfig(), srv, budgets, 400, t0)
	for i := 0; i < mcfg.Cores; i++ {
		srv.SetCoreUtil(i, 0.6)
	}
	if d := soa.Request(t0, core.Request{VM: "vm1", Cores: 2, TargetMHz: 4000, Priority: core.PriorityMetric}); !d.Granted {
		t.Fatalf("setup grant failed: %+v", d)
	}
	for i := 0; i < 20; i++ {
		now := t0.Add(time.Duration(i) * time.Minute)
		soa.Tick(now)
		srv.Advance(time.Minute)
	}
	return &Checkpoint{
		GOA:     g.Snapshot(),
		SOAs:    map[string]*core.SOAState{"s0": soa.Snapshot()},
		Servers: map[string]*cluster.ServerState{"s0": srv.Snapshot()},
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	cp := buildCheckpoint(t)
	data, err := Encode(t0.Add(20*time.Minute), cp)
	if err != nil {
		t.Fatal(err)
	}

	var got Checkpoint
	at, err := Decode(data, &got)
	if err != nil {
		t.Fatal(err)
	}
	if !at.Equal(t0.Add(20 * time.Minute)) {
		t.Fatalf("SavedAt = %v", at)
	}

	// Re-encoding the decoded checkpoint must be byte-identical: the wire
	// form is deterministic and lossless.
	data2, err := Encode(t0.Add(20*time.Minute), &got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("roundtrip not byte-identical:\n%s\nvs\n%s", data, data2)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	cp := buildCheckpoint(t)
	a, err := Encode(t0, cp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(t0, cp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same state encoded to different bytes")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data, err := Encode(t0, &Checkpoint{GOA: core.NewGOA("r", 100).Snapshot()})
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte: the checksum must catch it. Find a digit in
	// the payload (mutating structural JSON would fail the envelope parse
	// instead, which is a different guard).
	idx := bytes.Index(data, []byte(`"limit":100`))
	if idx < 0 {
		t.Fatalf("payload layout changed: %s", data)
	}
	corrupt := append([]byte(nil), data...)
	corrupt[idx+len(`"limit":`)] = '9'
	var cp Checkpoint
	if _, err := Decode(corrupt, &cp); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestDecodeRejectsBadMagicAndVersion(t *testing.T) {
	data, err := Encode(t0, &Checkpoint{})
	if err != nil {
		t.Fatal(err)
	}
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}

	env.Magic = "NOTSTATE"
	bad, _ := json.Marshal(env)
	var cp Checkpoint
	if _, err := Decode(bad, &cp); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic not detected: %v", err)
	}

	env.Magic = Magic
	env.Version = Version + 1
	bad, _ = json.Marshal(env)
	if _, err := Decode(bad, &cp); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch not detected: %v", err)
	}

	if _, err := Decode([]byte("not json"), &cp); err == nil {
		t.Fatal("garbage not detected")
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	cp := buildCheckpoint(t)
	if err := Save(path, t0, cp); err != nil {
		t.Fatal(err)
	}

	var got Checkpoint
	at, err := Load(path, &got)
	if err != nil {
		t.Fatal(err)
	}
	if !at.Equal(t0) {
		t.Fatalf("SavedAt = %v", at)
	}
	want, _ := Encode(t0, cp)
	have, _ := Encode(t0, &got)
	if !bytes.Equal(want, have) {
		t.Fatal("loaded checkpoint differs from saved")
	}

	// Overwrite is atomic: a second Save replaces the file, and no temp
	// files are left behind.
	if err := Save(path, t0.Add(time.Hour), cp); err != nil {
		t.Fatal(err)
	}
	if at, err := Load(path, &got); err != nil || !at.Equal(t0.Add(time.Hour)) {
		t.Fatalf("overwrite: at=%v err=%v", at, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1 (no temp litter)", len(entries))
	}
}

func TestLoadMissingFile(t *testing.T) {
	var cp Checkpoint
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json"), &cp); err == nil {
		t.Fatal("expected error for missing file")
	}
}

// TestRestoredAgentsFromCheckpoint exercises the full path: snapshot a rig
// into a checkpoint, encode, decode, restore fresh agents, and verify the
// restored rig re-snapshots byte-identically.
func TestRestoredAgentsFromCheckpoint(t *testing.T) {
	cp := buildCheckpoint(t)
	data, err := Encode(t0, cp)
	if err != nil {
		t.Fatal(err)
	}
	var got Checkpoint
	if _, err := Decode(data, &got); err != nil {
		t.Fatal(err)
	}

	g := core.NewGOA("fresh", 1)
	g.Restore(got.GOA)

	mcfg := machine.DefaultConfig()
	mcfg.Cores = 8
	srv := cluster.NewServer("s0", mcfg, 0)
	if err := srv.Restore(got.Servers["s0"]); err != nil {
		t.Fatal(err)
	}
	budgets := lifetime.NewCoreBudgets(lifetime.DefaultBudgetConfig(), mcfg.Cores, t0)
	soa := core.NewSOA(core.DefaultSOAConfig(), srv, budgets, 400, t0)
	if err := soa.Restore(got.SOAs["s0"]); err != nil {
		t.Fatal(err)
	}

	re := &Checkpoint{
		GOA:     g.Snapshot(),
		SOAs:    map[string]*core.SOAState{"s0": soa.Snapshot()},
		Servers: map[string]*cluster.ServerState{"s0": srv.Snapshot()},
	}
	redata, err := Encode(t0, re)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, redata) {
		t.Fatalf("restored rig re-snapshot differs:\n%s\nvs\n%s", data, redata)
	}
}
