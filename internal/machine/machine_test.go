package machine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.StepMHz = 0 },
		func(c *Config) { c.MinMHz = 0 },
		func(c *Config) { c.MinMHz = c.TurboMHz + 1 },
		func(c *Config) { c.MaxOCMHz = c.TurboMHz - 1 },
		func(c *Config) { c.DynCoreWatts = 0 },
		func(c *Config) { c.IdleWatts = -1 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := DefaultConfig()
	c.Cores = -1
	New(c)
}

func TestVoltageRatio(t *testing.T) {
	c := DefaultConfig()
	if got := c.VoltageRatio(c.TurboMHz); got != 1 {
		t.Fatalf("ratio at turbo = %v", got)
	}
	if got := c.VoltageRatio(2000); got != 1 {
		t.Fatalf("ratio below turbo = %v", got)
	}
	got := c.VoltageRatio(c.MaxOCMHz)
	want := 1 + c.VoltSlope*float64(c.MaxOCMHz-c.TurboMHz)/float64(c.TurboMHz)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ratio at max OC = %v, want %v", got, want)
	}
	if got <= 1 {
		t.Fatal("OC voltage ratio must exceed 1")
	}
}

func TestClampFreq(t *testing.T) {
	c := DefaultConfig()
	if got := c.ClampFreq(100); got != c.MinMHz-c.MinMHz%c.StepMHz {
		t.Fatalf("clamp low = %d", got)
	}
	if got := c.ClampFreq(99999); got != c.MaxOCMHz {
		t.Fatalf("clamp high = %d", got)
	}
	if got := c.ClampFreq(3350); got != 3300 {
		t.Fatalf("step align = %d", got)
	}
}

func TestCorePowerMonotonicInFreqAndUtil(t *testing.T) {
	c := DefaultConfig()
	prev := 0.0
	for f := c.MinMHz; f <= c.MaxOCMHz; f += c.StepMHz {
		p := c.CorePower(f, 0.8)
		if p < prev {
			t.Fatalf("core power not monotone in freq at %d MHz", f)
		}
		prev = p
	}
	if c.CorePower(c.TurboMHz, 0.9) <= c.CorePower(c.TurboMHz, 0.1) {
		t.Fatal("core power not monotone in util")
	}
}

func TestCorePowerClampsUtil(t *testing.T) {
	c := DefaultConfig()
	if c.CorePower(c.TurboMHz, -1) != c.CorePower(c.TurboMHz, 0) {
		t.Fatal("negative util not clamped")
	}
	if c.CorePower(c.TurboMHz, 2) != c.CorePower(c.TurboMHz, 1) {
		t.Fatal("util > 1 not clamped")
	}
}

func TestOCCostSuperlinear(t *testing.T) {
	c := DefaultConfig()
	// Power at max OC must exceed the pure frequency ratio: voltage rises.
	turbo := c.CorePower(c.TurboMHz, 1)
	oc := c.CorePower(c.MaxOCMHz, 1)
	freqRatio := float64(c.MaxOCMHz) / float64(c.TurboMHz)
	if oc/turbo <= freqRatio {
		t.Fatalf("OC power ratio %.3f not superlinear vs freq ratio %.3f", oc/turbo, freqRatio)
	}
}

func TestOCCoreCostCalibration(t *testing.T) {
	// §IV-C worked example: ~10 W per overclocked core.
	c := DefaultConfig()
	cost := c.OCCoreCost()
	if cost < 7 || cost > 13 {
		t.Fatalf("OC per-core cost = %.2f W, want ≈10 W", cost)
	}
}

func TestMachineInitialState(t *testing.T) {
	m := New(DefaultConfig())
	for i := 0; i < m.Cores(); i++ {
		if m.Freq(i) != m.Config().TurboMHz {
			t.Fatalf("core %d initial freq = %d", i, m.Freq(i))
		}
		if m.Util(i) != 0 {
			t.Fatalf("core %d initial util = %v", i, m.Util(i))
		}
	}
	if got := m.Power(); got != m.Config().IdleWatts+float64(m.Cores())*m.Config().StaticCoreWatts {
		t.Fatalf("idle power = %v", got)
	}
}

func TestSetFreqAppliesClamp(t *testing.T) {
	m := New(DefaultConfig())
	applied := m.SetFreq(0, 5000)
	if applied != m.Config().MaxOCMHz || m.Freq(0) != applied {
		t.Fatalf("applied = %d", applied)
	}
}

func TestSetFreqRangeAndAll(t *testing.T) {
	m := New(DefaultConfig())
	m.SetFreqRange(0, 4, 4000)
	if m.OverclockedCores() != 4 {
		t.Fatalf("OC cores = %d", m.OverclockedCores())
	}
	m.SetFreqRange(60, 100, 4000) // hi beyond range must not panic
	if m.OverclockedCores() != 8 {
		t.Fatalf("OC cores after range = %d", m.OverclockedCores())
	}
	m.SetFreqAll(3300)
	if m.OverclockedCores() != 0 {
		t.Fatalf("OC cores after reset = %d", m.OverclockedCores())
	}
}

func TestSetUtilClampsAndMeanUtil(t *testing.T) {
	m := New(DefaultConfig())
	m.SetUtil(0, 2)
	m.SetUtil(1, -5)
	if m.Util(0) != 1 || m.Util(1) != 0 {
		t.Fatal("util clamping failed")
	}
	want := 1.0 / float64(m.Cores())
	if math.Abs(m.MeanUtil()-want) > 1e-12 {
		t.Fatalf("MeanUtil = %v", m.MeanUtil())
	}
}

func TestPowerRisesWithOverclocking(t *testing.T) {
	m := New(DefaultConfig())
	for i := 0; i < m.Cores(); i++ {
		m.SetUtil(i, 0.8)
	}
	base := m.Power()
	m.SetFreqRange(0, 8, m.Config().MaxOCMHz)
	oc := m.Power()
	if oc <= base {
		t.Fatal("overclocking must raise power")
	}
	perCore := (oc - base) / 8
	if perCore <= 0 || perCore > m.Config().OCCoreCost() {
		t.Fatalf("per-core OC delta = %v", perCore)
	}
}

func TestAdvanceAccumulatesEnergyAndOCTime(t *testing.T) {
	m := New(DefaultConfig())
	m.SetFreq(0, m.Config().MaxOCMHz)
	p := m.Power()
	m.Advance(10 * time.Second)
	if math.Abs(m.Energy()-p*10) > 1e-9 {
		t.Fatalf("Energy = %v, want %v", m.Energy(), p*10)
	}
	if m.OCTime(0) != 10*time.Second {
		t.Fatalf("OCTime(0) = %v", m.OCTime(0))
	}
	if m.OCTime(1) != 0 {
		t.Fatalf("OCTime(1) = %v", m.OCTime(1))
	}
	if m.TotalOCCoreSeconds() != 10 {
		t.Fatalf("TotalOCCoreSeconds = %v", m.TotalOCCoreSeconds())
	}
	if m.Elapsed() != 10*time.Second {
		t.Fatalf("Elapsed = %v", m.Elapsed())
	}
}

func TestAdvancePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(DefaultConfig()).Advance(-time.Second)
}

func TestMaxPower(t *testing.T) {
	m := New(DefaultConfig())
	turboMax := m.MaxPower(m.Config().TurboMHz)
	ocMax := m.MaxPower(m.Config().MaxOCMHz)
	if ocMax <= turboMax {
		t.Fatal("max power at OC must exceed turbo")
	}
	// Setting everything to max util at OC must reach MaxPower.
	for i := 0; i < m.Cores(); i++ {
		m.SetUtil(i, 1)
		m.SetFreq(i, m.Config().MaxOCMHz)
	}
	if math.Abs(m.Power()-ocMax) > 1e-9 {
		t.Fatalf("Power = %v, MaxPower = %v", m.Power(), ocMax)
	}
}

func TestPredictPowerMatchesMachine(t *testing.T) {
	c := DefaultConfig()
	m := New(c)
	ocCores, ocUtil, baseUtil := 10, 0.9, 0.4
	for i := 0; i < c.Cores; i++ {
		if i < ocCores {
			m.SetFreq(i, c.MaxOCMHz)
			m.SetUtil(i, ocUtil)
		} else {
			m.SetUtil(i, baseUtil)
		}
	}
	pred := c.PredictPower(ocCores, c.MaxOCMHz, ocUtil, baseUtil)
	if math.Abs(pred-m.Power()) > 1e-9 {
		t.Fatalf("PredictPower = %v, machine = %v", pred, m.Power())
	}
}

func TestPredictPowerClampsCores(t *testing.T) {
	c := DefaultConfig()
	if c.PredictPower(-5, c.MaxOCMHz, 1, 0) != c.PredictPower(0, c.MaxOCMHz, 1, 0) {
		t.Fatal("negative cores not clamped")
	}
	if c.PredictPower(c.Cores+10, c.MaxOCMHz, 1, 0) != c.PredictPower(c.Cores, c.MaxOCMHz, 1, 0) {
		t.Fatal("excess cores not clamped")
	}
}

// Property: server power is bounded by [idle floor, MaxPower(MaxOC)] for any
// utilization/frequency assignment.
func TestPowerBoundedProperty(t *testing.T) {
	c := DefaultConfig()
	f := func(freqs []int16, utils []float64) bool {
		m := New(c)
		for i := 0; i < m.Cores(); i++ {
			if i < len(freqs) {
				m.SetFreq(i, int(freqs[i]))
			}
			if i < len(utils) {
				u := utils[i]
				if math.IsNaN(u) || math.IsInf(u, 0) {
					u = 0
				}
				m.SetUtil(i, math.Abs(math.Mod(u, 1)))
			}
		}
		p := m.Power()
		floor := c.IdleWatts + float64(c.Cores)*c.StaticCoreWatts
		return p >= floor-1e-9 && p <= m.MaxPower(c.MaxOCMHz)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPower(b *testing.B) {
	m := New(DefaultConfig())
	for i := 0; i < m.Cores(); i++ {
		m.SetUtil(i, 0.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Power()
	}
}

func TestSetCoreMaxOCClampsFrequency(t *testing.T) {
	m := New(DefaultConfig())
	m.SetFreq(0, 4000)
	applied := m.SetCoreMaxOC(0, 3600)
	if applied != 3600 {
		t.Fatalf("applied max = %d", applied)
	}
	if m.Freq(0) != 3600 {
		t.Fatalf("freq after max change = %d", m.Freq(0))
	}
	// Later requests respect the individual ceiling.
	if got := m.SetFreq(0, 4000); got != 3600 {
		t.Fatalf("SetFreq over core max = %d", got)
	}
	// Other cores keep the full range.
	if got := m.SetFreq(1, 4000); got != 4000 {
		t.Fatalf("unaffected core = %d", got)
	}
}

func TestSetCoreMaxOCBounds(t *testing.T) {
	m := New(DefaultConfig())
	if got := m.SetCoreMaxOC(0, 1000); got != m.Config().TurboMHz {
		t.Fatalf("below-turbo max = %d", got)
	}
	if got := m.SetCoreMaxOC(0, 9999); got != m.Config().MaxOCMHz {
		t.Fatalf("above-range max = %d", got)
	}
	if got := m.SetCoreMaxOC(0, 3750); got != 3700 {
		t.Fatalf("step alignment = %d", got)
	}
}

func TestRandomizeCoreMaxOCAndFastestCores(t *testing.T) {
	m := New(DefaultConfig())
	m.RandomizeCoreMaxOC(rand.New(rand.NewSource(3)), 3500)
	distinct := map[int]bool{}
	for i := 0; i < m.Cores(); i++ {
		max := m.CoreMaxOC(i)
		if max < 3500 || max > m.Config().MaxOCMHz {
			t.Fatalf("core %d max = %d out of range", i, max)
		}
		if max%m.Config().StepMHz != 0 {
			t.Fatalf("core %d max = %d not step-aligned", i, max)
		}
		distinct[max] = true
	}
	if len(distinct) < 2 {
		t.Fatal("variability produced uniform cores")
	}
	fastest := m.FastestCores(8)
	if len(fastest) != 8 {
		t.Fatalf("FastestCores returned %d", len(fastest))
	}
	// Every selected core is at least as fast as every unselected one.
	selected := map[int]bool{}
	minSel := m.Config().MaxOCMHz
	for _, c := range fastest {
		selected[c] = true
		if m.CoreMaxOC(c) < minSel {
			minSel = m.CoreMaxOC(c)
		}
	}
	for i := 0; i < m.Cores(); i++ {
		if !selected[i] && m.CoreMaxOC(i) > minSel {
			t.Fatalf("core %d (max %d) faster than selected minimum %d", i, m.CoreMaxOC(i), minSel)
		}
	}
	if m.FastestCores(0) != nil {
		t.Fatal("FastestCores(0) must be nil")
	}
	if got := m.FastestCores(1000); len(got) != m.Cores() {
		t.Fatalf("FastestCores clamped = %d", len(got))
	}
}

// Property: per-core frequency never exceeds the core's individual
// maximum, for any interleaving of SetFreq and SetCoreMaxOC.
func TestCoreMaxOCInvariantProperty(t *testing.T) {
	c := DefaultConfig()
	c.Cores = 8
	f := func(ops []uint16) bool {
		m := New(c)
		for _, op := range ops {
			core := int(op) % c.Cores
			mhz := c.MinMHz + int(op)%(c.MaxOCMHz-c.MinMHz+200)
			if op%3 == 0 {
				m.SetCoreMaxOC(core, mhz)
			} else {
				m.SetFreq(core, mhz)
			}
			for i := 0; i < c.Cores; i++ {
				if m.Freq(i) > m.CoreMaxOC(i) {
					return false
				}
				if m.Freq(i) > c.MaxOCMHz || m.CoreMaxOC(i) < c.TurboMHz {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
