// Package machine simulates the server hardware SmartOClock controls:
// per-core DVFS actuators, utilization and power sensors, and PMT-like
// time-in-state counters.
//
// On real hardware the Server Overclocking Agent reads Intel PMT / AMD HSMP
// telemetry and sets frequencies through ACPI CPPC. This package exposes the
// same operations — set a core's frequency, read the server's power draw,
// read cumulative overclocked time — against a calibrated analytical power
// model, so the agent code above it is identical to what would run on metal.
package machine

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"smartoclock/internal/metrics"
)

// Config describes a server model. All frequencies are in MHz.
type Config struct {
	// Cores is the number of physical cores.
	Cores int
	// TurboMHz is the maximum vendor-supported (turbo) frequency; cloud
	// CPUs in performance mode run at this frequency when unconstrained.
	TurboMHz int
	// MaxOCMHz is the maximum overclocked frequency validated with vendors.
	MaxOCMHz int
	// MinMHz is the lowest frequency the capping mechanism may force.
	MinMHz int
	// StepMHz is the DVFS step granularity (the paper uses 100 MHz steps).
	StepMHz int

	// IdleWatts is platform static power (fans, DRAM refresh, uncore) at
	// nominal voltage, independent of core activity.
	IdleWatts float64
	// StaticCoreWatts is per-core leakage at turbo voltage.
	StaticCoreWatts float64
	// DynCoreWatts is per-core dynamic power at turbo frequency and 100%
	// utilization.
	DynCoreWatts float64
	// VoltSlope is the relative voltage increase per relative frequency
	// increase beyond turbo (dV/V per df/f). Overclocking raises voltage,
	// which is what makes its power cost superlinear.
	VoltSlope float64
}

// DefaultConfig models the paper's evaluation servers: 64-core AMD parts
// with 3.3 GHz turbo and 4.0 GHz maximum overclock. The power constants are
// calibrated so overclocking a fully-utilized core costs ≈10 W (§IV-C's
// worked example: 5 cores ⇒ +50 W).
func DefaultConfig() Config {
	return Config{
		Cores:           64,
		TurboMHz:        3300,
		MaxOCMHz:        4000,
		MinMHz:          1500,
		StepMHz:         100,
		IdleWatts:       100,
		StaticCoreWatts: 1.5,
		DynCoreWatts:    7.0,
		VoltSlope:       1.3,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("machine: Cores = %d, must be positive", c.Cores)
	case c.StepMHz <= 0:
		return fmt.Errorf("machine: StepMHz = %d, must be positive", c.StepMHz)
	case c.MinMHz <= 0 || c.MinMHz > c.TurboMHz:
		return fmt.Errorf("machine: MinMHz = %d out of range (turbo %d)", c.MinMHz, c.TurboMHz)
	case c.MaxOCMHz < c.TurboMHz:
		return fmt.Errorf("machine: MaxOCMHz = %d below turbo %d", c.MaxOCMHz, c.TurboMHz)
	case c.IdleWatts < 0 || c.StaticCoreWatts < 0 || c.DynCoreWatts <= 0:
		return fmt.Errorf("machine: power constants must be non-negative (dyn positive)")
	}
	return nil
}

// VoltageRatio returns V(f)/V(turbo) for frequency mhz. At or below turbo
// the ratio is 1 (cloud parts run a fixed performance-mode voltage);
// beyond turbo it rises linearly with the frequency overshoot.
func (c Config) VoltageRatio(mhz int) float64 {
	if mhz <= c.TurboMHz {
		return 1
	}
	over := float64(mhz-c.TurboMHz) / float64(c.TurboMHz)
	return 1 + c.VoltSlope*over
}

// ClampFreq clamps mhz into [MinMHz, MaxOCMHz] and aligns it down to the
// step granularity.
func (c Config) ClampFreq(mhz int) int {
	if mhz < c.MinMHz {
		mhz = c.MinMHz
	}
	if mhz > c.MaxOCMHz {
		mhz = c.MaxOCMHz
	}
	return mhz - mhz%c.StepMHz
}

// CorePower returns the power of one core at frequency mhz and utilization
// util in [0,1]: leakage scales with V², dynamic power with f·V².
func (c Config) CorePower(mhz int, util float64) float64 {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	vr := c.VoltageRatio(mhz)
	v2 := vr * vr
	fr := float64(mhz) / float64(c.TurboMHz)
	return c.StaticCoreWatts*v2 + c.DynCoreWatts*fr*v2*util
}

// NameplateWatts returns the server's worst-case draw without overclocking:
// platform idle plus every core busy at turbo. Oversubscription admission
// uses it as the conservative fallback when no trustworthy day template
// exists — it is what a rack would have to provision per server without
// prediction.
func (c Config) NameplateWatts() float64 {
	return c.IdleWatts + float64(c.Cores)*c.CorePower(c.TurboMHz, 1)
}

// OCCoreCost returns the extra power of running one fully-utilized core at
// MaxOCMHz instead of TurboMHz — the per-core overclock cost the Global
// Overclocking Agent uses when splitting headroom.
func (c Config) OCCoreCost() float64 {
	return c.CorePower(c.MaxOCMHz, 1) - c.CorePower(c.TurboMHz, 1)
}

// Machine is one simulated server.
type Machine struct {
	cfg       Config
	coreFreq  []int
	coreUtil  []float64
	coreMaxOC []int // per-core maximum frequency (silicon variability, §VI)
	ocTime    []time.Duration
	energy    float64 // joules
	elapsed   time.Duration

	// obs, when non-nil, holds resolved metric handles (see Instrument).
	obs *machineObs
}

// machineObs holds the machine's resolved instruments: the PMT-like
// counters a real deployment would scrape from the BMC.
type machineObs struct {
	energy  *metrics.Gauge
	ocSecs  *metrics.Gauge
	ocCores *metrics.Gauge
}

// Instrument attaches the machine's hardware counters to a registry; the
// gauges refresh on every Advance.
func (m *Machine) Instrument(reg *metrics.Registry, labels ...metrics.Label) {
	m.obs = &machineObs{
		energy:  reg.Gauge("machine_energy_joules", labels...),
		ocSecs:  reg.Gauge("machine_oc_core_seconds", labels...),
		ocCores: reg.Gauge("machine_oc_cores", labels...),
	}
}

// New creates a machine from cfg with all cores at turbo and idle.
// It panics on an invalid configuration (a construction-time programming
// error, matching the package's hardware-bringup role).
func New(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		cfg:       cfg,
		coreFreq:  make([]int, cfg.Cores),
		coreUtil:  make([]float64, cfg.Cores),
		coreMaxOC: make([]int, cfg.Cores),
		ocTime:    make([]time.Duration, cfg.Cores),
	}
	for i := range m.coreFreq {
		m.coreFreq[i] = cfg.TurboMHz
		m.coreMaxOC[i] = cfg.MaxOCMHz
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Cores returns the number of cores.
func (m *Machine) Cores() int { return m.cfg.Cores }

// SetFreq sets core i's frequency (clamped to the machine range, the
// core's individual maximum, and step-aligned) and returns the applied
// value.
func (m *Machine) SetFreq(i int, mhz int) int {
	f := m.cfg.ClampFreq(mhz)
	if f > m.coreMaxOC[i] {
		f = m.coreMaxOC[i]
	}
	m.coreFreq[i] = f
	return f
}

// SetCoreMaxOC sets core i's individual maximum frequency: silicon
// variability means some cores can run faster than others, a property
// server parts do not normally expose but §VI's vendor engagements aim to
// leverage (ACPI CPPC preferred cores). The value is clamped to
// [TurboMHz, MaxOCMHz] and step-aligned; the core's current frequency is
// re-clamped.
func (m *Machine) SetCoreMaxOC(i int, mhz int) int {
	if mhz < m.cfg.TurboMHz {
		mhz = m.cfg.TurboMHz
	}
	if mhz > m.cfg.MaxOCMHz {
		mhz = m.cfg.MaxOCMHz
	}
	mhz -= mhz % m.cfg.StepMHz
	m.coreMaxOC[i] = mhz
	if m.coreFreq[i] > mhz {
		m.coreFreq[i] = mhz
	}
	return mhz
}

// CoreMaxOC returns core i's individual maximum frequency.
func (m *Machine) CoreMaxOC(i int) int { return m.coreMaxOC[i] }

// RandomizeCoreMaxOC assigns each core an individual maximum drawn
// uniformly from [minMHz, MaxOCMHz] (step-aligned), modelling
// manufacturing variability. It uses the provided deterministic source.
func (m *Machine) RandomizeCoreMaxOC(rng *rand.Rand, minMHz int) {
	if minMHz < m.cfg.TurboMHz {
		minMHz = m.cfg.TurboMHz
	}
	span := (m.cfg.MaxOCMHz - minMHz) / m.cfg.StepMHz
	for i := range m.coreMaxOC {
		mhz := minMHz
		if span > 0 {
			mhz += rng.Intn(span+1) * m.cfg.StepMHz
		}
		m.SetCoreMaxOC(i, mhz)
	}
}

// FastestCores returns the indices of the n cores with the highest
// individual maximum frequencies (ties broken by index) — the "preferred
// cores" a §VI-style scheduler would target first.
func (m *Machine) FastestCores(n int) []int {
	if n <= 0 {
		return nil
	}
	if n > len(m.coreMaxOC) {
		n = len(m.coreMaxOC)
	}
	idx := make([]int, len(m.coreMaxOC))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return m.coreMaxOC[idx[a]] > m.coreMaxOC[idx[b]]
	})
	out := make([]int, n)
	copy(out, idx[:n])
	return out
}

// SetFreqRange sets cores [lo, hi) to mhz.
func (m *Machine) SetFreqRange(lo, hi, mhz int) {
	for i := lo; i < hi && i < len(m.coreFreq); i++ {
		m.SetFreq(i, mhz)
	}
}

// SetFreqAll sets every core to mhz.
func (m *Machine) SetFreqAll(mhz int) { m.SetFreqRange(0, len(m.coreFreq), mhz) }

// Freq returns core i's current frequency in MHz.
func (m *Machine) Freq(i int) int { return m.coreFreq[i] }

// SetUtil sets core i's utilization in [0,1] (clamped).
func (m *Machine) SetUtil(i int, u float64) {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	m.coreUtil[i] = u
}

// Util returns core i's utilization.
func (m *Machine) Util(i int) float64 { return m.coreUtil[i] }

// MeanUtil returns the mean utilization across all cores.
func (m *Machine) MeanUtil() float64 {
	sum := 0.0
	for _, u := range m.coreUtil {
		sum += u
	}
	return sum / float64(len(m.coreUtil))
}

// IsOverclocked reports whether core i runs beyond turbo.
func (m *Machine) IsOverclocked(i int) bool { return m.coreFreq[i] > m.cfg.TurboMHz }

// OverclockedCores returns how many cores currently run beyond turbo.
func (m *Machine) OverclockedCores() int {
	n := 0
	for i := range m.coreFreq {
		if m.IsOverclocked(i) {
			n++
		}
	}
	return n
}

// CorePower returns core i's instantaneous power draw in watts.
func (m *Machine) CorePower(i int) float64 {
	return m.cfg.CorePower(m.coreFreq[i], m.coreUtil[i])
}

// Power returns the server's instantaneous power draw in watts: the sensor
// an sOA polls.
func (m *Machine) Power() float64 {
	p := m.cfg.IdleWatts
	for i := range m.coreFreq {
		p += m.CorePower(i)
	}
	return p
}

// Advance integrates time forward by dt: accumulates energy and the PMT-like
// per-core overclocked time-in-state counters. It panics on negative dt.
func (m *Machine) Advance(dt time.Duration) {
	if dt < 0 {
		panic(fmt.Sprintf("machine: negative Advance %v", dt))
	}
	m.energy += m.Power() * dt.Seconds()
	for i := range m.coreFreq {
		if m.IsOverclocked(i) {
			m.ocTime[i] += dt
		}
	}
	m.elapsed += dt
	if m.obs != nil {
		ocCores := 0
		var ocSecs float64
		for i := range m.coreFreq {
			if m.IsOverclocked(i) {
				ocCores++
			}
			ocSecs += m.ocTime[i].Seconds()
		}
		m.obs.energy.Set(m.energy)
		m.obs.ocSecs.Set(ocSecs)
		m.obs.ocCores.Set(float64(ocCores))
	}
}

// OCTime returns core i's cumulative overclocked time-in-state — the
// counter a real deployment reads through Intel PMT or AMD HSMP.
func (m *Machine) OCTime(i int) time.Duration { return m.ocTime[i] }

// TotalOCCoreSeconds returns the sum of overclocked time across cores, in
// core-seconds.
func (m *Machine) TotalOCCoreSeconds() float64 {
	var total float64
	for _, d := range m.ocTime {
		total += d.Seconds()
	}
	return total
}

// Energy returns cumulative energy in joules since construction.
func (m *Machine) Energy() float64 { return m.energy }

// Elapsed returns total simulated time advanced.
func (m *Machine) Elapsed() time.Duration { return m.elapsed }

// MaxPower returns the server's power with every core fully utilized at
// frequency mhz — used for worst-case admission checks.
func (m *Machine) MaxPower(mhz int) float64 {
	return m.cfg.IdleWatts + float64(m.cfg.Cores)*m.cfg.CorePower(m.cfg.ClampFreq(mhz), 1)
}

// PredictPower returns the modeled server power if ocCores cores ran
// overclocked at ocMHz with utilization ocUtil while the rest stay at turbo
// with utilization baseUtil. This is the "power model" the agents use to
// estimate the impact of overclocking (§V-B: "Models are used to estimate
// the power impact of overclocking; CPU utilization and core frequency are
// the input").
func (c Config) PredictPower(ocCores int, ocMHz int, ocUtil float64, baseUtil float64) float64 {
	if ocCores < 0 {
		ocCores = 0
	}
	if ocCores > c.Cores {
		ocCores = c.Cores
	}
	p := c.IdleWatts
	p += float64(ocCores) * c.CorePower(c.ClampFreq(ocMHz), ocUtil)
	p += float64(c.Cores-ocCores) * c.CorePower(c.TurboMHz, baseUtil)
	return p
}
