// Package chaos is the deterministic fault-injection subsystem behind the
// reproduction's robustness experiments. SmartOClock's central safety claim
// is that decentralized enforcement keeps racks under budget even when the
// gOA is unreachable and budgets go stale (§IV, §VI): this package supplies
// the faults — seeded message drop/delay/duplication/reorder, per-agent
// outage windows, agent crash/restart with in-memory state loss, and
// stale-budget epochs — while the invariant package checks that the safety
// properties survive them.
//
// Every decision is drawn from a seeded random source and scheduled on the
// discrete-event engine, so a chaos run is exactly as reproducible as a
// fault-free one: same seed, same faults, same trace.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"smartoclock/internal/agent"
	"smartoclock/internal/metrics"
	"smartoclock/internal/obs"
	"smartoclock/internal/sim"
)

// Config parameterizes fault injection. The zero value injects nothing.
type Config struct {
	// Seed derives the fault stream. Two transports with the same seed and
	// the same send sequence make identical drop/delay/duplicate choices.
	Seed int64

	// DropProb is the per-message probability of silent loss.
	DropProb float64
	// DupProb is the per-message probability of delivering twice.
	DupProb float64
	// DelayProb is the per-message probability of extra latency drawn
	// uniformly from (0, MaxDelay]. Because each message draws its own
	// delay, delayed messages naturally reorder against undelayed ones.
	DelayProb float64
	// MaxDelay bounds the injected extra latency.
	MaxDelay time.Duration
	// BaseDelay is applied to every delivery (the transport's intrinsic
	// latency); zero delivers on the next engine event.
	BaseDelay time.Duration

	// Outages are windows during which a named agent is unreachable:
	// messages to or from it are dropped. Use it for gOA unavailability.
	Outages []Window
}

// Validate reports whether the configuration is consistent.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"DropProb", c.DropProb}, {"DupProb", c.DupProb}, {"DelayProb", c.DelayProb}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("chaos: %s = %v out of [0,1]", p.name, p.v)
		}
	}
	if c.DelayProb > 0 && c.MaxDelay <= 0 {
		return fmt.Errorf("chaos: DelayProb %v needs positive MaxDelay", c.DelayProb)
	}
	for _, w := range c.Outages {
		if w.To.Before(w.From) {
			return fmt.Errorf("chaos: outage window for %q ends %v before it starts %v", w.Agent, w.To, w.From)
		}
	}
	return nil
}

// Window is a closed-open [From, To) interval during which Agent is down.
// An empty Agent name matches every agent (a full partition).
type Window struct {
	Agent    string
	From, To time.Time
}

// covers reports whether the window applies to name at ts.
func (w Window) covers(name string, ts time.Time) bool {
	if w.Agent != "" && w.Agent != name {
		return false
	}
	return !ts.Before(w.From) && ts.Before(w.To)
}

// Stats counts what the injector did, for experiment reports.
type Stats struct {
	Sent       int // messages offered to the transport
	Delivered  int // deliveries handed to the inner transport (incl. dups)
	Dropped    int // lost to DropProb
	Outage     int // lost to outage windows or crashed endpoints
	Duplicated int
	Delayed    int
}

// LossFraction returns the fraction of offered messages that never arrived
// at all (duplicates of a delivered message don't compensate for losses).
func (s Stats) LossFraction() float64 {
	if s.Sent == 0 {
		return 0
	}
	return float64(s.Dropped+s.Outage) / float64(s.Sent)
}

// Transport wraps an agent.Transport with deterministic fault injection.
// It is driven by the simulation engine and therefore shares its
// single-goroutine discipline: not safe for concurrent use.
type Transport struct {
	cfg   Config
	eng   *sim.Engine
	rng   *rand.Rand
	inner agent.Transport
	down  map[string]bool // crashed agents (Crash/Restart)
	stats Stats

	// obs, when non-nil, mirrors Stats into the metrics registry and traces
	// process faults (see Instrument).
	obs *transportObs
}

// transportObs holds the transport's resolved instruments.
type transportObs struct {
	tracer     *obs.Tracer
	sent       *metrics.Counter
	delivered  *metrics.Counter
	dropped    *metrics.Counter
	outage     *metrics.Counter
	duplicated *metrics.Counter
	delayed    *metrics.Counter
	crashes    *metrics.Counter
	restarts   *metrics.Counter
}

// Instrument attaches the transport to a registry and tracer. Message-level
// faults become counters (they are too frequent to trace); process faults
// (crash/restart) are counted and traced.
func (t *Transport) Instrument(reg *metrics.Registry, tr *obs.Tracer, labels ...metrics.Label) {
	withFault := func(fault string) []metrics.Label {
		out := make([]metrics.Label, 0, len(labels)+1)
		out = append(out, labels...)
		return append(out, metrics.L("fault", fault))
	}
	t.obs = &transportObs{
		tracer:     tr,
		sent:       reg.Counter("chaos_messages_sent_total", labels...),
		delivered:  reg.Counter("chaos_messages_delivered_total", labels...),
		dropped:    reg.Counter("chaos_messages_faulted_total", withFault("drop")...),
		outage:     reg.Counter("chaos_messages_faulted_total", withFault("outage")...),
		duplicated: reg.Counter("chaos_messages_faulted_total", withFault("duplicate")...),
		delayed:    reg.Counter("chaos_messages_faulted_total", withFault("delay")...),
		crashes:    reg.Counter("chaos_crashes_total", labels...),
		restarts:   reg.Counter("chaos_restarts_total", labels...),
	}
}

// NewTransport wraps inner with fault injection scheduled on eng.
// It panics on an invalid configuration.
func NewTransport(cfg Config, eng *sim.Engine, inner agent.Transport) *Transport {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Transport{
		cfg:   cfg,
		eng:   eng,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		inner: inner,
		down:  make(map[string]bool),
	}
}

// Stats returns the fault counters so far.
func (t *Transport) Stats() Stats { return t.stats }

// Crash marks an agent as down: messages to or from it are dropped until
// Restart. The caller is responsible for discarding the agent's in-memory
// state — that's the point of the fault.
func (t *Transport) Crash(name string) {
	t.down[name] = true
	if t.obs != nil {
		t.obs.crashes.Inc()
		t.obs.tracer.Emit(obs.Event{
			Time: t.eng.Now(), Component: obs.Chaos, Kind: "crash", Target: name,
		})
	}
}

// Restart marks a crashed agent as reachable again.
func (t *Transport) Restart(name string) {
	delete(t.down, name)
	if t.obs != nil {
		t.obs.restarts.Inc()
		t.obs.tracer.Emit(obs.Event{
			Time: t.eng.Now(), Component: obs.Chaos, Kind: "restart", Target: name,
		})
	}
}

// Down reports whether name is currently crashed or inside an outage
// window at the engine's current time.
func (t *Transport) Down(name string) bool {
	if t.down[name] {
		return true
	}
	now := t.eng.Now()
	for _, w := range t.cfg.Outages {
		if w.covers(name, now) {
			return true
		}
	}
	return false
}

// Register implements agent.Transport.
func (t *Transport) Register(name string, h agent.Handler) { t.inner.Register(name, h) }

// Close implements agent.Transport.
func (t *Transport) Close() error { return t.inner.Close() }

// Send implements agent.Transport: it applies the fault model and schedules
// surviving deliveries on the engine. Send itself never fails for injected
// faults — real networks drop silently.
// SendBatch implements agent.BatchSender. Fault draws (drop/dup/delay)
// come from the transport's single deterministic rng stream, in strict
// per-message order — so batch delivery simply loops Send in slice order,
// and a run is byte-identical whether call sites batch their per-tick
// bursts or send one message at a time.
func (t *Transport) SendBatch(msgs []agent.Message) error {
	var firstErr error
	for _, m := range msgs {
		if err := t.Send(m); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (t *Transport) Send(msg agent.Message) error {
	t.stats.Sent++
	if t.obs != nil {
		t.obs.sent.Inc()
	}
	if t.Down(msg.From) || t.Down(msg.To) {
		t.countOutage()
		return nil
	}
	if t.cfg.DropProb > 0 && t.rng.Float64() < t.cfg.DropProb {
		t.stats.Dropped++
		if t.obs != nil {
			t.obs.dropped.Inc()
		}
		return nil
	}
	copies := 1
	if t.cfg.DupProb > 0 && t.rng.Float64() < t.cfg.DupProb {
		copies = 2
		t.stats.Duplicated++
		if t.obs != nil {
			t.obs.duplicated.Inc()
		}
	}
	for i := 0; i < copies; i++ {
		delay := t.cfg.BaseDelay
		if t.cfg.DelayProb > 0 && t.rng.Float64() < t.cfg.DelayProb {
			delay += time.Duration(1 + t.rng.Int63n(int64(t.cfg.MaxDelay)))
			t.stats.Delayed++
			if t.obs != nil {
				t.obs.delayed.Inc()
			}
		}
		m := msg
		t.eng.After(delay, func() {
			// An endpoint that went down after the send still loses the
			// in-flight message (it had nobody to receive it).
			if t.Down(m.To) {
				t.countOutage()
				return
			}
			t.stats.Delivered++
			if t.obs != nil {
				t.obs.delivered.Inc()
			}
			_ = t.inner.Send(m) // unknown recipient: crashed and deregistered
		})
	}
	return nil
}

// countOutage tallies a message lost to an outage window or crashed
// endpoint in both the Stats struct and the registry.
func (t *Transport) countOutage() {
	t.stats.Outage++
	if t.obs != nil {
		t.obs.outage.Inc()
	}
}

// Plan is a schedule of crash/restart faults for named agents, derived
// deterministically from a seed. It complements Config's probabilistic
// message faults with scripted process faults.
type Plan struct {
	Crashes []CrashFault

	// WarmRestart selects the recovery mode the rig applies in onRestart:
	// false rebuilds each crashed agent cold (all in-memory state lost —
	// the transport's documented contract), true restores it from the last
	// durable checkpoint taken at CheckpointEvery cadence. The plan only
	// carries the knobs; the rig owns the checkpoint store.
	WarmRestart bool
	// CheckpointEvery is the checkpoint cadence for warm restarts. Longer
	// cadences mean staler restored state — the recovery experiment sweeps
	// this to measure how staleness degrades warm-restart benefit.
	CheckpointEvery time.Duration
}

// CrashFault takes Agent down at At and restarts it RestartAfter later.
type CrashFault struct {
	Agent        string
	At           time.Time
	RestartAfter time.Duration
}

// GenPlan draws n crash faults across [start, start+span) over the given
// agents: each fault picks a seeded random agent, instant and restart delay
// in (0, maxDown]. Faults are returned in time order.
func GenPlan(seed int64, agents []string, start time.Time, span time.Duration, n int, maxDown time.Duration) Plan {
	rng := rand.New(rand.NewSource(seed))
	var p Plan
	if len(agents) == 0 || n <= 0 || span <= 0 || maxDown <= 0 {
		return p
	}
	for i := 0; i < n; i++ {
		p.Crashes = append(p.Crashes, CrashFault{
			Agent:        agents[rng.Intn(len(agents))],
			At:           start.Add(time.Duration(rng.Int63n(int64(span)))),
			RestartAfter: time.Duration(1 + rng.Int63n(int64(maxDown))),
		})
	}
	sort.Slice(p.Crashes, func(i, j int) bool { return p.Crashes[i].At.Before(p.Crashes[j].At) })
	return p
}

// Schedule arms the plan on the engine: at each fault's instant the agent
// is crashed on tr and onCrash is invoked (to discard in-memory state);
// after RestartAfter the agent is restarted and onRestart invoked (to
// rebuild it from durable state only).
func (p Plan) Schedule(eng *sim.Engine, tr *Transport, onCrash, onRestart func(agent string)) {
	for _, f := range p.Crashes {
		f := f
		eng.At(f.At, func() {
			tr.Crash(f.Agent)
			if onCrash != nil {
				onCrash(f.Agent)
			}
			eng.After(f.RestartAfter, func() {
				tr.Restart(f.Agent)
				if onRestart != nil {
					onRestart(f.Agent)
				}
			})
		})
	}
}
