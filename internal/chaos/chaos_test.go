package chaos

import (
	"fmt"
	"math"
	"testing"
	"time"

	"smartoclock/internal/agent"
	"smartoclock/internal/sim"
)

var chaosStart = time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)

// runLossy pushes n messages through a lossy transport and returns the
// delivery trace (payload ids in arrival order) plus the stats.
func runLossy(seed int64, cfg Config, n int) ([]string, Stats) {
	eng := sim.NewEngine(chaosStart, seed)
	bus := agent.NewBus()
	tr := NewTransport(cfg, eng, bus)
	var got []string
	tr.Register("goa", func(m agent.Message) { got = append(got, m.Type) })
	for i := 0; i < n; i++ {
		i := i
		eng.After(time.Duration(i)*time.Second, func() {
			msg, _ := agent.NewMessage(fmt.Sprintf("m%04d", i), "soa", "goa", nil)
			_ = tr.Send(msg)
		})
	}
	eng.RunAll()
	return got, tr.Stats()
}

func TestDeterministicSameSeed(t *testing.T) {
	cfg := Config{Seed: 7, DropProb: 0.3, DupProb: 0.1, DelayProb: 0.5, MaxDelay: 30 * time.Second}
	a, sa := runLossy(7, cfg, 500)
	b, sb := runLossy(7, cfg, 500)
	if sa != sb {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestDropRateApproximatesConfig(t *testing.T) {
	cfg := Config{Seed: 1, DropProb: 0.25}
	_, s := runLossy(1, cfg, 4000)
	got := float64(s.Dropped) / float64(s.Sent)
	if math.Abs(got-0.25) > 0.03 {
		t.Fatalf("drop rate %.3f, want ~0.25", got)
	}
	if s.Delivered != s.Sent-s.Dropped {
		t.Fatalf("delivered %d + dropped %d != sent %d", s.Delivered, s.Dropped, s.Sent)
	}
}

func TestDelayReordersButLosesNothing(t *testing.T) {
	cfg := Config{Seed: 3, DelayProb: 0.5, MaxDelay: 45 * time.Second}
	got, s := runLossy(3, cfg, 300)
	if len(got) != 300 {
		t.Fatalf("delivered %d of 300", len(got))
	}
	if s.Delayed == 0 {
		t.Fatal("no message was delayed")
	}
	reordered := false
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			reordered = true
			break
		}
	}
	if !reordered {
		t.Fatal("50% delays up to 45s over 1s-spaced sends produced no reordering")
	}
}

func TestDuplicatesArriveTwice(t *testing.T) {
	cfg := Config{Seed: 5, DupProb: 0.5}
	got, s := runLossy(5, cfg, 400)
	if s.Duplicated == 0 {
		t.Fatal("nothing duplicated")
	}
	if len(got) != 400+s.Duplicated {
		t.Fatalf("deliveries %d, want %d sends + %d dups", len(got), 400, s.Duplicated)
	}
}

func TestOutageWindowBlackholes(t *testing.T) {
	outage := Window{Agent: "goa", From: chaosStart.Add(100 * time.Second), To: chaosStart.Add(200 * time.Second)}
	cfg := Config{Seed: 2, Outages: []Window{outage}}
	got, s := runLossy(2, cfg, 300)
	// Messages sent at t=100..199s are lost; everything else arrives.
	if len(got) != 200 {
		t.Fatalf("delivered %d, want 200", len(got))
	}
	if s.Outage != 100 {
		t.Fatalf("outage losses = %d, want 100", s.Outage)
	}
	for _, ty := range got {
		var id int
		fmt.Sscanf(ty, "m%d", &id)
		if id >= 100 && id < 200 {
			t.Fatalf("message %s delivered during outage", ty)
		}
	}
}

func TestCrashRestartDropsBothDirections(t *testing.T) {
	eng := sim.NewEngine(chaosStart, 1)
	bus := agent.NewBus()
	tr := NewTransport(Config{Seed: 1}, eng, bus)
	var toA, toB []string
	tr.Register("a", func(m agent.Message) { toA = append(toA, m.Type) })
	tr.Register("b", func(m agent.Message) { toB = append(toB, m.Type) })

	send := func(ty, from, to string) {
		msg, _ := agent.NewMessage(ty, from, to, nil)
		_ = tr.Send(msg)
	}
	eng.After(time.Second, func() { send("pre", "a", "b") })
	eng.After(2*time.Second, func() { tr.Crash("b") })
	eng.After(3*time.Second, func() { send("lost-out", "b", "a") }) // crashed sender
	eng.After(4*time.Second, func() { send("lost-in", "a", "b") })  // crashed recipient
	eng.After(5*time.Second, func() { tr.Restart("b") })
	eng.After(6*time.Second, func() { send("post", "a", "b") })
	eng.RunAll()

	if len(toB) != 2 || toB[0] != "pre" || toB[1] != "post" {
		t.Fatalf("b received %v, want [pre post]", toB)
	}
	if len(toA) != 0 {
		t.Fatalf("a received %v from a crashed sender", toA)
	}
	if tr.Stats().Outage != 2 {
		t.Fatalf("outage count = %d, want 2", tr.Stats().Outage)
	}
}

// TestInFlightLostWhenRecipientGoesDown: a message delayed past the start
// of its recipient's outage is lost, not queued.
func TestInFlightLostWhenRecipientGoesDown(t *testing.T) {
	eng := sim.NewEngine(chaosStart, 1)
	bus := agent.NewBus()
	tr := NewTransport(Config{Seed: 1, BaseDelay: 10 * time.Second}, eng, bus)
	var got []string
	tr.Register("b", func(m agent.Message) { got = append(got, m.Type) })
	eng.After(time.Second, func() {
		msg, _ := agent.NewMessage("inflight", "a", "b", nil)
		_ = tr.Send(msg)
	})
	eng.After(5*time.Second, func() { tr.Crash("b") })
	eng.RunAll()
	if len(got) != 0 {
		t.Fatalf("crashed recipient received %v", got)
	}
}

func TestGenPlanDeterministicAndOrdered(t *testing.T) {
	agents := []string{"s0", "s1", "s2"}
	a := GenPlan(9, agents, chaosStart, time.Hour, 20, 5*time.Minute)
	b := GenPlan(9, agents, chaosStart, time.Hour, 20, 5*time.Minute)
	if len(a.Crashes) != 20 || len(b.Crashes) != 20 {
		t.Fatalf("plan sizes %d/%d", len(a.Crashes), len(b.Crashes))
	}
	for i := range a.Crashes {
		if a.Crashes[i] != b.Crashes[i] {
			t.Fatalf("fault %d differs", i)
		}
		if i > 0 && a.Crashes[i].At.Before(a.Crashes[i-1].At) {
			t.Fatalf("faults out of order at %d", i)
		}
		if a.Crashes[i].RestartAfter <= 0 || a.Crashes[i].RestartAfter > 5*time.Minute {
			t.Fatalf("restart delay %v out of range", a.Crashes[i].RestartAfter)
		}
	}
}

func TestPlanScheduleInvokesHooks(t *testing.T) {
	eng := sim.NewEngine(chaosStart, 1)
	tr := NewTransport(Config{Seed: 1}, eng, agent.NewBus())
	p := Plan{Crashes: []CrashFault{{Agent: "s0", At: chaosStart.Add(time.Minute), RestartAfter: 30 * time.Second}}}
	var events []string
	p.Schedule(eng, tr,
		func(a string) { events = append(events, "crash:"+a+"@"+eng.Now().String()) },
		func(a string) { events = append(events, "restart:"+a+"@"+eng.Now().String()) })
	eng.After(70*time.Second, func() {
		if !tr.Down("s0") {
			t.Error("s0 not down during fault")
		}
	})
	eng.RunAll()
	if len(events) != 2 {
		t.Fatalf("events = %v", events)
	}
	if tr.Down("s0") {
		t.Fatal("s0 still down after restart")
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{DropProb: -0.1},
		{DupProb: 1.5},
		{DelayProb: 0.5}, // missing MaxDelay
		{Outages: []Window{{Agent: "x", From: chaosStart.Add(time.Hour), To: chaosStart}}},
	} {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %+v validated", cfg)
		}
	}
	if err := (Config{DropProb: 0.2, DelayProb: 0.3, MaxDelay: time.Second}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}
