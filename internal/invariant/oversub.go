package invariant

import (
	"fmt"
	"time"

	"smartoclock/internal/power"
)

// Oversubscription invariants. Admitting more servers than the provisioned
// power supports is a bet that prediction plus severity-classed capping
// keep the rack safe; these two checks audit both halves of that bet on
// every tick.

// NoBrownout asserts that rack power, observed after the rack manager's
// control cycle has run, never exceeds the provisioned limit by more than
// epsilon. Register it in a loop that calls Checker.Check after rack.Tick:
// at that point warnings have been delivered and capping applied, so any
// draw still above the limit means enforcement failed to protect the
// breaker — the brownout an over-admitting policy causes when capping is
// broken or disabled.
func NoBrownout(c *Checker, rack *power.Rack, epsilon float64) {
	c.Register("no-brownout", rack.Name(), func(now time.Time, report Reporter) {
		limit := rack.Config().LimitWatts
		if p := rack.Power(); p > limit+epsilon {
			report(fmt.Sprintf("post-enforcement draw %.1f W exceeds provisioned limit %.1f W", p, limit))
		}
	})
}

// SeverityOrder asserts severity-ordered shedding: no server of severity
// class k is capped while any server of a more sheddable class (> k) on
// the same rack is uncapped. This is the contract that lets critical work
// share a rack with harvest deployments — capping may touch it only after
// everything more sheddable has been throttled. One violation is reported
// per tick, naming the offending pair.
func SeverityOrder(c *Checker, rack *power.Rack) {
	c.Register("severity-order", rack.Name(), func(now time.Time, report Reporter) {
		var capped, uncapped [power.NumSeverities]string
		for _, s := range rack.Servers() {
			k := power.SeverityOf(s)
			if s.CapLevel() > 0 {
				if capped[k] == "" {
					capped[k] = s.Name()
				}
			} else if uncapped[k] == "" {
				uncapped[k] = s.Name()
			}
		}
		for k := power.Severity(0); k < power.NumSeverities; k++ {
			if capped[k] == "" {
				continue
			}
			for j := k + 1; j < power.NumSeverities; j++ {
				if uncapped[j] != "" {
					report(fmt.Sprintf("server %s (severity %v) capped while %s (severity %v) is uncapped",
						capped[k], k, uncapped[j], j))
					return
				}
			}
		}
	})
}
