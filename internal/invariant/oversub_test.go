package invariant

import (
	"strings"
	"testing"

	"smartoclock/internal/power"
)

// sevServer is a fakeServer with a severity class.
type sevServer struct {
	fakeServer
	sev power.Severity
}

func (s *sevServer) Severity() power.Severity { return s.sev }

func newSevServer(name string, watts float64, sev power.Severity) *sevServer {
	return &sevServer{fakeServer: fakeServer{name: name, watts: watts}, sev: sev}
}

func TestNoBrownoutFiresOnPostEnforcementOverdraw(t *testing.T) {
	a := newFakeServer("a", 4)
	a.watts = 1100
	rack := power.NewRack(power.DefaultRackConfig("r0", 1000), a)
	c := NewChecker()
	NoBrownout(c, rack, 1e-6)
	c.Check(invStart)
	if c.Total() != 1 {
		t.Fatalf("draw 1100/limit 1000: %d violations, want 1", c.Total())
	}
	v := c.Violations()[0]
	if v.Invariant != "no-brownout" || v.Rack != "r0" {
		t.Fatalf("violation labeled %q/%q", v.Invariant, v.Rack)
	}
	if !strings.Contains(v.Detail, "1100.0") {
		t.Fatalf("detail lacks the overdraw: %s", v.Detail)
	}
}

func TestNoBrownoutQuietAtOrUnderLimit(t *testing.T) {
	a := newFakeServer("a", 4)
	rack := power.NewRack(power.DefaultRackConfig("r0", 1000), a)
	c := NewChecker()
	NoBrownout(c, rack, 1e-6)
	for _, w := range []float64{0, 500, 1000, 1000 + 1e-9} {
		a.watts = w
		c.Check(invStart)
	}
	if c.Total() != 0 {
		t.Fatalf("draws within limit+epsilon reported %d violations: %v", c.Total(), c.Err())
	}
}

func TestSeverityOrderFiresOnInvertedShedding(t *testing.T) {
	crit := newSevServer("crit", 300, power.SeverityCritical)
	low := newSevServer("low", 300, power.SeverityLow)
	rack := power.NewRack(power.DefaultRackConfig("r0", 1000), crit, low)
	c := NewChecker()
	SeverityOrder(c, rack)

	// Critical capped while low runs free: the exact inversion the
	// invariant exists to catch.
	crit.cap = 3
	c.Check(invStart)
	if c.Total() != 1 {
		t.Fatalf("inverted shedding: %d violations, want 1", c.Total())
	}
	v := c.Violations()[0]
	if v.Invariant != "severity-order" {
		t.Fatalf("violation labeled %q", v.Invariant)
	}
	if !strings.Contains(v.Detail, "crit") || !strings.Contains(v.Detail, "low") {
		t.Fatalf("detail does not name the offending pair: %s", v.Detail)
	}
}

func TestSeverityOrderAcceptsOrderedShedding(t *testing.T) {
	crit := newSevServer("crit", 300, power.SeverityCritical)
	med := newSevServer("med", 300, power.SeverityMedium)
	low := newSevServer("low", 300, power.SeverityLow)
	rack := power.NewRack(power.DefaultRackConfig("r0", 1000), crit, med, low)
	c := NewChecker()
	SeverityOrder(c, rack)

	// Legal states: nothing capped; harvest only; harvest exhausted plus
	// medium; everything capped.
	states := [][3]int{{0, 0, 0}, {0, 0, 5}, {0, 2, 10}, {4, 6, 10}}
	for _, st := range states {
		crit.cap, med.cap, low.cap = st[0], st[1], st[2]
		c.Check(invStart)
	}
	if c.Total() != 0 {
		t.Fatalf("ordered shedding reported %d violations: %v", c.Total(), c.Err())
	}

	// Same-class partial capping is legal too (interleaving inside the
	// boundary class).
	med2 := newSevServer("med2", 300, power.SeverityMedium)
	rack.AddServer(med2)
	crit.cap, med.cap, med2.cap, low.cap = 0, 3, 0, 10
	c.Check(invStart)
	if c.Total() != 0 {
		t.Fatalf("partial same-class capping flagged: %v", c.Err())
	}
}

func TestSeverityOrderOneViolationPerTick(t *testing.T) {
	crit := newSevServer("crit", 300, power.SeverityCritical)
	high := newSevServer("high", 300, power.SeverityHigh)
	low := newSevServer("low", 300, power.SeverityLow)
	low2 := newSevServer("low2", 300, power.SeverityLow)
	rack := power.NewRack(power.DefaultRackConfig("r0", 1000), crit, high, low, low2)
	c := NewChecker()
	SeverityOrder(c, rack)
	crit.cap, high.cap = 2, 2 // two capped classes, two uncapped witnesses
	c.Check(invStart)
	if c.Total() != 1 {
		t.Fatalf("%d violations in one tick, want 1 (one report per tick)", c.Total())
	}
}
