package invariant

import (
	"strings"
	"testing"
	"time"

	"smartoclock/internal/core"
	"smartoclock/internal/lifetime"
	"smartoclock/internal/policy"
	"smartoclock/internal/power"
	"smartoclock/internal/predict"
	"smartoclock/internal/timeseries"
)

var invStart = time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)

// fakeServer implements power.Server and OCHost (and enough of core.Host
// for an SOA) with directly settable state.
type fakeServer struct {
	name  string
	watts float64
	freqs []int
	cap   int
}

func newFakeServer(name string, cores int) *fakeServer {
	f := &fakeServer{name: name, freqs: make([]int, cores)}
	for i := range f.freqs {
		f.freqs[i] = 3200 // turbo
	}
	return f
}

func (f *fakeServer) Name() string               { return f.name }
func (f *fakeServer) Power() float64             { return f.watts }
func (f *fakeServer) CapPriority() int           { return 0 }
func (f *fakeServer) ForceCap(level int)         { f.cap = level }
func (f *fakeServer) CapLevel() int              { return f.cap }
func (f *fakeServer) MaxCapLevel() int           { return 10 }
func (f *fakeServer) NumCores() int              { return len(f.freqs) }
func (f *fakeServer) TurboMHz() int              { return 3200 }
func (f *fakeServer) MaxOCMHz() int              { return 4000 }
func (f *fakeServer) StepMHz() int               { return 100 }
func (f *fakeServer) EffectiveFreq(core int) int { return f.freqs[core] }
func (f *fakeServer) CoreUtil(core int) float64  { return 0.5 }
func (f *fakeServer) SetDesiredFreq(core, mhz int) {
	f.freqs[core] = mhz
}
func (f *fakeServer) DesiredFreq(core int) int { return f.freqs[core] }
func (f *fakeServer) OCDeltaWatts(cores, mhz int, util float64) float64 {
	return 0 // power admission always passes; tests drive lifetime/frequency paths
}

func TestCheckerRecordsTickRackAndName(t *testing.T) {
	c := NewChecker()
	c.Register("always-fails", "rack-7", func(now time.Time, report Reporter) {
		report("boom")
	})
	ts := invStart.Add(42 * time.Second)
	c.Check(ts)
	if c.Total() != 1 || len(c.Violations()) != 1 {
		t.Fatalf("total %d recorded %d", c.Total(), len(c.Violations()))
	}
	v := c.Violations()[0]
	if v.Rack != "rack-7" || v.Invariant != "always-fails" || !v.Time.Equal(ts) || v.Detail != "boom" {
		t.Fatalf("violation = %+v", v)
	}
	err := c.Err()
	if err == nil {
		t.Fatal("Err() nil with violations")
	}
	for _, want := range []string{"rack-7", "always-fails", "boom"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}

func TestCheckerMaxRecordCapsStorageNotCount(t *testing.T) {
	c := NewChecker()
	c.MaxRecord = 3
	c.Register("noisy", "r", func(now time.Time, report Reporter) { report("x") })
	for i := 0; i < 10; i++ {
		c.Check(invStart.Add(time.Duration(i) * time.Second))
	}
	if c.Total() != 10 || len(c.Violations()) != 3 {
		t.Fatalf("total %d recorded %d", c.Total(), len(c.Violations()))
	}
	if !strings.Contains(c.Err().Error(), "7 more") {
		t.Fatalf("error does not summarize overflow: %v", c.Err())
	}
}

func TestCheckerCleanRun(t *testing.T) {
	c := NewChecker()
	c.Register("fine", "r", func(now time.Time, report Reporter) {})
	c.Check(invStart)
	if err := c.Err(); err != nil {
		t.Fatalf("Err() = %v on clean run", err)
	}
	if c.Checks() != 1 {
		t.Fatalf("checks = %d", c.Checks())
	}
}

func TestRackPowerWithinLimit(t *testing.T) {
	s := newFakeServer("s0", 4)
	rack := power.NewRack(power.DefaultRackConfig("rack-t", 100), s)
	c := NewChecker()
	RackPowerWithinLimit(c, rack, 2*time.Second)

	// Within limit: fine.
	s.watts = 90
	c.Check(invStart)
	// Excursion above limit shorter than grace: still fine.
	s.watts = 120
	c.Check(invStart.Add(1 * time.Second))
	c.Check(invStart.Add(2 * time.Second))
	// Back under resets the window.
	s.watts = 80
	c.Check(invStart.Add(3 * time.Second))
	s.watts = 130
	c.Check(invStart.Add(4 * time.Second))
	c.Check(invStart.Add(5 * time.Second))
	if c.Total() != 0 {
		t.Fatalf("violations during tolerated excursions: %v", c.Err())
	}
	// Staying over past the grace window violates.
	c.Check(invStart.Add(7 * time.Second))
	if c.Total() != 1 {
		t.Fatalf("total = %d, want 1 (sustained breach)", c.Total())
	}
}

func TestCoreBudgetsNeverOverdrawn(t *testing.T) {
	s := newFakeServer("s0", 2)
	cfg := lifetime.BudgetConfig{Epoch: time.Hour, Fraction: 0.10} // 6 min/epoch
	c := NewChecker()
	CoreBudgetsNeverOverdrawn(c, "rack-t", s, cfg, invStart, 2*time.Second)

	// Core 0 overclocks for exactly its allowance: no violation.
	s.freqs[0] = 3600
	now := invStart
	for i := 0; i < 360; i++ { // 6 minutes of 1s ticks
		now = now.Add(time.Second)
		c.Check(now)
	}
	if c.Total() != 0 {
		t.Fatalf("violation inside allowance: %v", c.Err())
	}
	// A few more seconds past the slack: overdraw.
	for i := 0; i < 5; i++ {
		now = now.Add(time.Second)
		c.Check(now)
	}
	if c.Total() == 0 {
		t.Fatal("overdraw not detected")
	}
	if !strings.Contains(c.Violations()[0].Detail, "core 0") {
		t.Fatalf("detail does not name the core: %s", c.Violations()[0].Detail)
	}
}

func TestCoreBudgetsFreshEpochRestoresHeadroom(t *testing.T) {
	s := newFakeServer("s0", 1)
	cfg := lifetime.BudgetConfig{Epoch: time.Hour, Fraction: 0.10}
	c := NewChecker()
	CoreBudgetsNeverOverdrawn(c, "rack-t", s, cfg, invStart, 2*time.Second)
	// Idle through epoch 1, then overclock 10 minutes in epoch 2: the
	// cumulative bound is 2 allowances = 12 min, so this is legal.
	now := invStart.Add(time.Hour)
	c.Check(now)
	s.freqs[0] = 3800
	for i := 0; i < 600; i++ {
		now = now.Add(time.Second)
		c.Check(now)
	}
	if c.Total() != 0 {
		t.Fatalf("legal carry-like spend flagged: %v", c.Err())
	}
}

func TestSessionsWithinGrant(t *testing.T) {
	s := newFakeServer("s0", 8)
	budgets := lifetime.NewCoreBudgets(lifetime.DefaultBudgetConfig(), 8, invStart)
	soa := core.NewSOA(core.DefaultSOAConfig(), s, budgets, 1000, invStart)
	d := soa.Request(invStart, core.Request{VM: "vm1", Cores: 2, TargetMHz: 3800, Priority: core.PriorityMetric})
	if !d.Granted {
		t.Fatalf("request rejected: %+v", d)
	}
	c := NewChecker()
	SessionsWithinGrant(c, "rack-t", s, func() *core.SOA { return soa })
	c.Check(invStart.Add(time.Second))
	if c.Total() != 0 {
		t.Fatalf("granted session flagged: %v", c.Err())
	}
	// Hardware running a core above the session's setting is a violation.
	s.freqs[d.Cores[0]] = 4000
	c.Check(invStart.Add(2 * time.Second))
	if c.Total() != 1 {
		t.Fatalf("over-frequency core not flagged (total %d)", c.Total())
	}
	// A nil sOA (crashed, not yet restarted) is skipped, not a violation.
	c2 := NewChecker()
	SessionsWithinGrant(c2, "rack-t", s, func() *core.SOA { return nil })
	c2.Check(invStart)
	if c2.Total() != 0 {
		t.Fatalf("nil sOA flagged: %v", c2.Err())
	}
}

func TestBudgetConservation(t *testing.T) {
	goa := core.NewGOA("rack-t", 1000)
	c := NewChecker()
	BudgetConservation(c, goa, 1e-6)
	// No profiles: nothing to conserve.
	c.Check(invStart)
	if c.Total() != 0 {
		t.Fatalf("empty gOA flagged: %v", c.Err())
	}
	for i, name := range []string{"s0", "s1", "s2"} {
		goa.SetProfile(name, core.ServerProfile{
			Power: timeseries.FlatWeek(200+50*float64(i), time.Hour),
			OC: &predict.OCTemplate{
				Requested: timeseries.FlatWeek(float64(4*i), time.Hour),
				Granted:   timeseries.FlatWeek(float64(2*i), time.Hour),
			},
			OCCoreCost: 5,
		})
	}
	c.Check(invStart.Add(time.Second))
	if c.Total() != 0 {
		t.Fatalf("conserving split flagged: %v", c.Err())
	}
	// Also under scarcity (regular demand alone above the limit).
	goa.SetLimit(300)
	c.Check(invStart.Add(2 * time.Second))
	if c.Total() != 0 {
		t.Fatalf("scarcity split flagged: %v", c.Err())
	}
}

func TestAdmissionWithinBudgetAuditsGrants(t *testing.T) {
	c := NewChecker()
	sink := AdmissionWithinBudget(c, "rack-1", 0)

	// An honest grant (total ≤ budget) and an honest rejection beyond the
	// budget: neither may fire.
	sink(core.AdmissionAudit{Server: "s1", VM: "vm1", PredictedWatts: 300,
		ActiveDeltaWatts: 50, RequestDeltaWatts: 40, BudgetWatts: 400, Granted: true})
	sink(core.AdmissionAudit{Server: "s1", VM: "vm2", PredictedWatts: 300,
		ActiveDeltaWatts: 50, RequestDeltaWatts: 100, BudgetWatts: 400, Granted: false})
	c.Check(invStart)
	if c.Total() != 0 {
		t.Fatalf("honest audits flagged: %v", c.Err())
	}

	// An over-grant must fire exactly once, naming the policy.
	sink(core.AdmissionAudit{Server: "s1", VM: "vm3", Policy: "over-grant",
		PredictedWatts: 300, ActiveDeltaWatts: 50, RequestDeltaWatts: 100,
		BudgetWatts: 400, Granted: true})
	c.Check(invStart.Add(time.Second))
	if c.Total() != 1 {
		t.Fatalf("violations = %d, want 1", c.Total())
	}
	v := c.Violations()[0]
	if v.Invariant != "admission-within-budget" || !strings.Contains(v.Detail, "over-grant") {
		t.Fatalf("violation = %+v", v)
	}

	// Audits drain at each Check: the same over-grant must not re-report.
	c.Check(invStart.Add(2 * time.Second))
	if c.Total() != 1 {
		t.Fatalf("drained audit re-reported: total = %d", c.Total())
	}
}

func TestAdmissionWithinBudgetLiveSOA(t *testing.T) {
	// End-to-end over a real sOA: the canary factory's over-granting
	// admission trips the invariant on the very first impossible grant,
	// while the default policy stays clean under the same demand.
	run := func(factory policy.Factory) *Checker {
		c := NewChecker()
		cfg := core.DefaultSOAConfig()
		cfg.Policies = factory
		cfg.OnAdmit = AdmissionWithinBudget(c, "rack-1", 0)
		srv := newFakeServer("s1", 8)
		srv.watts = 200
		budgets := lifetime.NewCoreBudgets(lifetime.DefaultBudgetConfig(), 8, invStart)
		soa := core.NewSOA(cfg, &ocDeltaServer{fakeServer: srv, delta: 30}, budgets, 100, invStart)
		soa.Request(invStart, core.Request{VM: "vm1", Cores: 4, TargetMHz: 4000, Priority: core.PriorityMetric})
		c.Check(invStart)
		return c
	}
	if c := run(policy.Canary()); c.Total() == 0 {
		t.Fatal("canary over-grant not detected — the checker is silently green")
	}
	if c := run(policy.Default()); c.Total() != 0 {
		t.Fatalf("default policy flagged: %v", c.Err())
	}
}

// ocDeltaServer gives the fake server a non-zero overclock power model so
// power admission actually has something to reject.
type ocDeltaServer struct {
	*fakeServer
	delta float64
}

func (s *ocDeltaServer) OCDeltaWatts(cores, mhz int, util float64) float64 {
	return float64(cores) * s.delta
}
