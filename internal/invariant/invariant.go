// Package invariant is the runtime safety checker for cluster and fleet
// experiments. It continuously asserts, on every simulation tick, the
// properties SmartOClock's design promises to uphold regardless of faults
// (§IV, §VI):
//
//   - rack power never exceeds the provisioned limit for longer than the
//     enforcement-latency window (warnings + capping must bring it back);
//   - per-core lifetime (overclocking-time) budgets are never overdrawn —
//     checked by independent accounting, not by trusting the budget
//     bookkeeping under test;
//   - no session runs above its granted frequency;
//   - the gOA's heterogeneous budget split conserves the rack limit.
//
// Violations carry the tick, rack and invariant name so a failing chaos run
// points straight at the broken property.
package invariant

import (
	"fmt"
	"math"
	"strings"
	"time"

	"smartoclock/internal/causal"
	"smartoclock/internal/core"
	"smartoclock/internal/lifetime"
	"smartoclock/internal/metrics"
	"smartoclock/internal/obs"
	"smartoclock/internal/power"
)

// Violation is one failed assertion at one tick.
type Violation struct {
	Time      time.Time
	Rack      string
	Invariant string
	Detail    string
}

// String formats the violation for test failure output.
func (v Violation) String() string {
	return fmt.Sprintf("[%s] rack=%s invariant=%s: %s",
		v.Time.Format(time.RFC3339), v.Rack, v.Invariant, v.Detail)
}

// Reporter records a violation's detail; the checker fills in tick, rack
// and invariant name.
type Reporter func(detail string)

// check is one registered invariant.
type check struct {
	name string
	rack string
	fn   func(now time.Time, report Reporter)
	// viol, when the checker is instrumented, counts this check's
	// violations in the metrics registry.
	viol *metrics.Counter
}

// Checker runs registered invariants and collects violations.
type Checker struct {
	checks []check
	nRuns  int64

	// MaxRecord caps stored violations so a badly broken run doesn't eat
	// memory; the total count keeps incrementing past it.
	MaxRecord  int
	violations []Violation
	total      int

	// Instrumentation (see Instrument).
	reg        *metrics.Registry
	tracer     *obs.Tracer
	checksRun  *metrics.Counter
	extraLabel []metrics.Label

	// prov, when non-nil, receives one causal.Record per violation (see
	// AttachProvenance).
	prov *causal.Recorder
}

// AttachProvenance points the checker at a provenance recorder: every
// violation emits a decision record with the invariant name as Policy.
// Pass nil to detach.
func (c *Checker) AttachProvenance(rec *causal.Recorder) { c.prov = rec }

// NewChecker returns an empty checker recording up to 100 violations.
func NewChecker() *Checker { return &Checker{MaxRecord: 100} }

// Register adds an invariant. fn is called on every Check with the current
// tick time and a reporter for violations.
func (c *Checker) Register(invariantName, rack string, fn func(now time.Time, report Reporter)) {
	ck := check{name: invariantName, rack: rack, fn: fn}
	if c.reg != nil {
		ck.viol = c.violationCounter(invariantName)
	}
	c.checks = append(c.checks, ck)
}

// Instrument attaches the checker to a registry and tracer: Check passes
// count into invariant_checks_total and each violation into
// invariant_violations_total{invariant} plus a trace event. Checks already
// registered are wired up too, so Instrument may run before or after them.
func (c *Checker) Instrument(reg *metrics.Registry, tr *obs.Tracer, labels ...metrics.Label) {
	c.reg = reg
	c.tracer = tr
	c.extraLabel = append([]metrics.Label(nil), labels...)
	c.checksRun = reg.Counter("invariant_checks_total", c.extraLabel...)
	for i := range c.checks {
		c.checks[i].viol = c.violationCounter(c.checks[i].name)
	}
}

// violationCounter resolves the per-invariant violation counter.
func (c *Checker) violationCounter(invariantName string) *metrics.Counter {
	ls := make([]metrics.Label, 0, len(c.extraLabel)+1)
	ls = append(ls, c.extraLabel...)
	ls = append(ls, metrics.L("invariant", invariantName))
	return c.reg.Counter("invariant_violations_total", ls...)
}

// Check runs every registered invariant at tick time now.
func (c *Checker) Check(now time.Time) {
	c.nRuns++
	if c.checksRun != nil {
		c.checksRun.Inc()
	}
	for i := range c.checks {
		ck := &c.checks[i]
		ck.fn(now, func(detail string) {
			c.total++
			var span causal.SpanID
			if c.prov.Enabled() {
				span = c.prov.Emit(causal.Record{
					Time:      now,
					Kind:      causal.KindDecision,
					Component: "invariant",
					Site:      "invariant.violation",
					Subject:   ck.rack,
					Policy:    ck.name,
					Verdict:   "violation",
					Detail:    detail,
				})
			}
			if ck.viol != nil {
				ck.viol.Inc()
				c.tracer.Emit(obs.Event{
					Time: now, Component: obs.Invariant, Kind: "violation",
					Source: ck.rack, Detail: ck.name + ": " + detail,
					Span: uint64(span),
				})
			}
			if len(c.violations) < c.MaxRecord {
				c.violations = append(c.violations, Violation{
					Time: now, Rack: ck.rack, Invariant: ck.name, Detail: detail,
				})
			}
		})
	}
}

// Checks returns how many times Check ran.
func (c *Checker) Checks() int64 { return c.nRuns }

// Total returns the total violation count, including unrecorded ones.
func (c *Checker) Total() int { return c.total }

// Violations returns the recorded violations.
func (c *Checker) Violations() []Violation { return c.violations }

// Err returns nil when no invariant was violated; otherwise an error
// naming every recorded violation, ready for t.Fatal.
func (c *Checker) Err() error {
	if c.total == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d invariant violation(s) in %d checks:", c.total, c.nRuns)
	for _, v := range c.violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	if c.total > len(c.violations) {
		fmt.Fprintf(&b, "\n  ... and %d more", c.total-len(c.violations))
	}
	return fmt.Errorf("%s", b.String())
}

// --- Canned invariants -----------------------------------------------------

// RackPowerWithinLimit asserts that rack draw never stays above the limit
// longer than grace — the enforcement-latency window within which warnings
// and prioritized capping must have brought the rack back under budget.
// Instantaneous excursions shorter than grace are the paper's expected
// operating regime (the rack manager polls, then enforces).
func RackPowerWithinLimit(c *Checker, rack *power.Rack, grace time.Duration) {
	var overSince time.Time
	over := false
	c.Register("rack-power-within-limit", rack.Name(), func(now time.Time, report Reporter) {
		limit := rack.Config().LimitWatts
		p := rack.Power()
		if p <= limit {
			over = false
			return
		}
		if !over {
			over = true
			overSince = now
			return
		}
		if d := now.Sub(overSince); d > grace {
			report(fmt.Sprintf("draw %.1f W > limit %.1f W for %v (> enforcement window %v)",
				p, limit, d, grace))
			// Re-arm so a persistent breach reports once per grace window
			// instead of every tick.
			overSince = now
		}
	})
}

// OCHost is the server surface the lifetime and frequency invariants
// observe: effective (post-cap) per-core frequency. cluster.Server
// implements it.
type OCHost interface {
	Name() string
	NumCores() int
	TurboMHz() int
	MaxOCMHz() int
	EffectiveFreq(core int) int
}

// CoreBudgetsNeverOverdrawn asserts, by independent accounting, that no
// core spends more time overclocked than its epoch allowances permit:
// cumulative overclocked time of core i by time T must not exceed
// ceil((T-start)/epoch) × allowance (carry-over only defers spending, it
// never mints budget). slack absorbs tick-sampling error — one or two
// control ticks is plenty.
//
// The accounting lives here, outside the lifetime.Budget under test, so a
// double-spend bug in the budget bookkeeping (or an sOA forgetting to
// charge after a crash-restart) is caught rather than mirrored.
func CoreBudgetsNeverOverdrawn(c *Checker, rack string, host OCHost, cfg lifetime.BudgetConfig, start time.Time, slack time.Duration) {
	acc := make([]time.Duration, host.NumCores())
	// Frequencies are sampled at the start of each inter-check interval:
	// in a discrete-event run every transition lands on a tick boundary,
	// which makes this accounting exact rather than off by one tick per
	// session start.
	prev := make([]int, host.NumCores())
	turbo := host.TurboMHz()
	for i := range prev {
		prev[i] = host.EffectiveFreq(i)
	}
	last := start
	allowance := cfg.Allowance()
	c.Register("core-budget-never-overdrawn", rack, func(now time.Time, report Reporter) {
		dt := now.Sub(last)
		last = now
		epochs := int64(now.Sub(start)/cfg.Epoch) + 1
		budget := time.Duration(epochs)*allowance + slack
		for i := 0; i < host.NumCores(); i++ {
			cur := host.EffectiveFreq(i)
			if dt > 0 && prev[i] > turbo {
				acc[i] += dt
				if acc[i] > budget {
					report(fmt.Sprintf("server %s core %d overclocked %v, budget %v over %d epoch(s)",
						host.Name(), i, acc[i], budget, epochs))
				}
			}
			prev[i] = cur
		}
	})
}

// SOASource returns the current sOA for a server — a func, not a pointer,
// because chaos experiments replace the sOA object on crash/restart.
type SOASource func() *core.SOA

// SessionsWithinGrant asserts that every active session runs at or below
// the frequency it was granted: the session's feedback frequency never
// exceeds its target, and the cores' effective frequency never exceeds the
// session's setting (capping may only lower it).
func SessionsWithinGrant(c *Checker, rack string, host OCHost, soa SOASource) {
	c.Register("session-within-grant", rack, func(now time.Time, report Reporter) {
		a := soa()
		if a == nil {
			return
		}
		maxOC := host.MaxOCMHz()
		for vm, s := range a.Sessions() {
			cur := s.CurrentMHz()
			if cur > s.TargetMHz || cur > maxOC {
				report(fmt.Sprintf("server %s vm %s at %d MHz beyond grant (target %d, max OC %d)",
					host.Name(), vm, cur, s.TargetMHz, maxOC))
				continue
			}
			for _, cr := range s.Cores {
				if eff := host.EffectiveFreq(cr); eff > cur {
					report(fmt.Sprintf("server %s vm %s core %d effective %d MHz above session setting %d",
						host.Name(), vm, cr, eff, cur))
				}
			}
		}
	})
}

// BudgetConservation asserts the gOA's heterogeneous split conserves the
// rack limit: per-server budgets must sum to the limit within epsilon
// (never above it — over-allocation is how decentralized enforcement loses
// its safety net; under-allocation wastes provisioned power).
func BudgetConservation(c *Checker, goa *core.GOA, epsilon float64) {
	c.Register("goa-budget-conservation", goa.Rack(), func(now time.Time, report Reporter) {
		budgets := goa.BudgetsAt(now)
		if len(budgets) == 0 {
			return // no profiles yet: nothing to conserve
		}
		sum := 0.0
		for _, b := range budgets {
			sum += b
		}
		if math.Abs(sum-goa.Limit()) > epsilon {
			report(fmt.Sprintf("budgets sum to %.3f W, limit %.3f W (|Δ| > %g)",
				sum, goa.Limit(), epsilon))
		}
	})
}

// AdmissionWithinBudget audits power-side admission decisions at the moment
// they are made. The sOA's feedback loop steps an over-granted session back
// down to the budget within a tick, so an unsafe admission policy leaves no
// steady-state trace — rack power and session frequencies all look fine. The
// only place the violation is observable is the decision itself: a grant
// whose modeled total draw exceeds the budget it was admitted against.
//
// The returned sink is installed as SOAConfig.OnAdmit; audits buffer until
// the next Check drains them. epsilon absorbs float round-off — honest
// policies compare the exact same sums, so 0 is correct for them.
func AdmissionWithinBudget(c *Checker, rack string, epsilon float64) func(core.AdmissionAudit) {
	var pending []core.AdmissionAudit
	c.Register("admission-within-budget", rack, func(now time.Time, report Reporter) {
		for _, a := range pending {
			if a.Granted && a.TotalWatts() > a.BudgetWatts+epsilon {
				report(fmt.Sprintf("server %s vm %s policy %s granted %.1f W against budget %.1f W",
					a.Server, a.VM, a.Policy, a.TotalWatts(), a.BudgetWatts))
			}
		}
		pending = pending[:0]
	})
	return func(a core.AdmissionAudit) { pending = append(pending, a) }
}
