package trace

import (
	"fmt"
	"math/rand"
	"time"

	"smartoclock/internal/parallel"
)

// ClusterClass groups racks by their power headroom, matching Table I's
// High/Medium/Low-power cluster split.
type ClusterClass int

const (
	// HighPower racks run close to their limit; overclocking headroom is
	// scarce and mispredictions are punished.
	HighPower ClusterClass = iota
	// MediumPower racks have moderate headroom.
	MediumPower
	// LowPower racks have abundant headroom.
	LowPower
)

// String returns the class name as used in Table I.
func (c ClusterClass) String() string {
	switch c {
	case HighPower:
		return "High-Power"
	case MediumPower:
		return "Medium-Power"
	case LowPower:
		return "Low-Power"
	default:
		return fmt.Sprintf("ClusterClass(%d)", int(c))
	}
}

// TargetP99Util returns the generation knob for the class: the rack's P99
// power draw as a fraction of its limit.
func (c ClusterClass) TargetP99Util() float64 {
	switch c {
	case HighPower:
		// §III-Q2: on power-constrained racks the headroom available at
		// the 99th percentile covers only ~75% of what full overclocking
		// needs — baseline P99 at 90% of the limit reproduces that.
		return 0.93
	case MediumPower:
		return 0.86
	default:
		return 0.62
	}
}

// FleetRack annotates a generated rack trace with its region and class.
type FleetRack struct {
	*RackTrace
	Region string
	Class  ClusterClass
}

// FleetConfig parameterizes fleet generation.
type FleetConfig struct {
	Seed           int64
	Regions        []string
	RacksPerRegion int
	// ClassMix gives the fraction of racks per class; it is normalized.
	ClassMix map[ClusterClass]float64
	Start    time.Time
	Step     time.Duration
	Duration time.Duration
	// RackTemplate provides all remaining rack-level knobs; Name, Start,
	// Step, Duration and TargetP99Util are overridden per rack.
	RackTemplate RackGenConfig
	// Workers bounds the number of racks generated concurrently;
	// <= 0 selects GOMAXPROCS. Any value yields identical fleets: each
	// rack's stream is derived from (Seed, rack index), never from how
	// much randomness its siblings consumed.
	Workers int
}

// DefaultFleetConfig returns a fleet sized for simulation experiments:
// four regions (like Fig 8) with an even class mix.
func DefaultFleetConfig(start time.Time, duration time.Duration) FleetConfig {
	return FleetConfig{
		Seed:           1,
		Regions:        []string{"Region1", "Region2", "Region3", "Region4"},
		RacksPerRegion: 25,
		ClassMix: map[ClusterClass]float64{
			HighPower: 1, MediumPower: 1, LowPower: 1,
		},
		Start:        start,
		Step:         5 * time.Minute,
		Duration:     duration,
		RackTemplate: DefaultRackGenConfig("", start, duration),
	}
}

// Fleet is a generated set of rack traces across regions and classes.
type Fleet struct {
	Racks []*FleetRack
}

// ByClass returns the fleet's racks in the given class.
func (f *Fleet) ByClass(c ClusterClass) []*FleetRack {
	var out []*FleetRack
	for _, r := range f.Racks {
		if r.Class == c {
			out = append(out, r)
		}
	}
	return out
}

// ByRegion returns the fleet's racks in the given region.
func (f *Fleet) ByRegion(region string) []*FleetRack {
	var out []*FleetRack
	for _, r := range f.Racks {
		if r.Region == region {
			out = append(out, r)
		}
	}
	return out
}

// NumRacks returns the fleet's total rack count (regions x racks/region).
func (c FleetConfig) NumRacks() int {
	return len(c.Regions) * c.RacksPerRegion
}

// validate reports whether the fleet-level shape is usable.
func (c FleetConfig) validate() error {
	if len(c.Regions) == 0 || c.RacksPerRegion <= 0 {
		return fmt.Errorf("trace: empty fleet config")
	}
	return nil
}

// classWeights normalizes the class mix into per-class weights plus their
// total, defaulting to an even mix when unset.
func (c FleetConfig) classWeights() (classes []ClusterClass, weights []float64, totalW float64) {
	classes = []ClusterClass{HighPower, MediumPower, LowPower}
	for _, cl := range classes {
		w := c.ClassMix[cl]
		if w < 0 {
			w = 0
		}
		weights = append(weights, w)
		totalW += w
	}
	if totalW == 0 {
		weights = []float64{1, 1, 1}
		totalW = 3
	}
	return classes, weights, totalW
}

// GenFleetRack generates rack idx (0 <= idx < cfg.NumRacks()) of the fleet
// described by cfg, without materializing any sibling. The rack's random
// stream is seeded from (cfg.Seed, idx) via parallel.ChildSeed, so the
// result is a pure function of the config and the index: GenFleet(cfg) is
// exactly [GenFleetRack(cfg, 0), ..., GenFleetRack(cfg, n-1)], and callers
// that can fold racks one at a time get memory O(1 rack) instead of
// O(fleet).
func GenFleetRack(cfg FleetConfig, idx int) (*FleetRack, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if idx < 0 || idx >= cfg.NumRacks() {
		return nil, fmt.Errorf("trace: rack index %d out of range [0,%d)", idx, cfg.NumRacks())
	}
	classes, weights, totalW := cfg.classWeights()

	region := cfg.Regions[idx/cfg.RacksPerRegion]
	i := idx % cfg.RacksPerRegion
	rng := rand.New(rand.NewSource(parallel.ChildSeed(cfg.Seed, uint64(idx))))

	// Deterministic class draw from the rack's own stream.
	x := rng.Float64() * totalW
	class := classes[len(classes)-1]
	for k, w := range weights {
		if x < w {
			class = classes[k]
			break
		}
		x -= w
	}
	rcfg := cfg.RackTemplate
	rcfg.Name = fmt.Sprintf("%s-rack%03d", region, i)
	rcfg.Start = cfg.Start
	rcfg.Step = cfg.Step
	rcfg.Duration = cfg.Duration
	rcfg.TargetP99Util = class.TargetP99Util()
	rack, err := GenRack(rcfg, rng)
	if err != nil {
		return nil, err
	}
	return &FleetRack{RackTrace: rack, Region: region, Class: class}, nil
}

// GenFleet generates a deterministic fleet of rack traces.
//
// Every rack owns an independent random stream seeded from (cfg.Seed,
// global rack index) via parallel.ChildSeed, so rack i's trace — and its
// class draw — is a pure function of the seed and its position: adding
// racks, removing regions, or generating across any number of workers
// never perturbs the racks that remain. GenFleet materializes the whole
// fleet; memory-bound callers should stream racks via GenFleetRack instead.
func GenFleet(cfg FleetConfig) (*Fleet, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	type rackOut struct {
		rack *FleetRack
		err  error
	}
	n := cfg.NumRacks()
	outs := parallel.Map(n, parallel.Options{Workers: cfg.Workers}, func(idx int) rackOut {
		rack, err := GenFleetRack(cfg, idx)
		return rackOut{rack: rack, err: err}
	})

	fleet := &Fleet{Racks: make([]*FleetRack, 0, n)}
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		fleet.Racks = append(fleet.Racks, o.rack)
	}
	return fleet, nil
}
