package trace

import (
	"fmt"
	"math/rand"
	"time"

	"smartoclock/internal/machine"
	"smartoclock/internal/stats"
	"smartoclock/internal/timeseries"
)

// VMSpec places one VM of a service on a server.
type VMSpec struct {
	Service ServiceProfile
	Cores   int
}

// ServerSpec describes one server's hardware and its VM placement.
// Operators spread a workload's VMs across servers, so any one server hosts
// a mix of services (§III-Q2) — that mix is what VMs captures.
type ServerSpec struct {
	Name string
	HW   machine.Config
	VMs  []VMSpec
}

// TotalVMCores returns the number of cores allocated to VMs.
func (s ServerSpec) TotalVMCores() int {
	n := 0
	for _, vm := range s.VMs {
		n += vm.Cores
	}
	return n
}

// UtilAt returns the server's mean core utilization at ts: each VM
// contributes its service's utilization weighted by its core count.
func (s ServerSpec) UtilAt(ts time.Time, rng *rand.Rand) float64 {
	if s.HW.Cores == 0 {
		return 0
	}
	busy := 0.0
	for _, vm := range s.VMs {
		busy += float64(vm.Cores) * vm.Service.UtilAt(ts, rng)
	}
	u := busy / float64(s.HW.Cores)
	if u > 1 {
		u = 1
	}
	return u
}

// PowerAt returns the server's modeled power draw at utilization u with all
// cores at turbo (the non-overclocked baseline the traces record).
func (s ServerSpec) PowerAt(u float64) float64 {
	return s.HW.PredictPower(0, s.HW.TurboMHz, 0, u)
}

// ServerTrace is one server's generated utilization and power series.
type ServerTrace struct {
	Spec  ServerSpec
	Util  *timeseries.Series
	Power *timeseries.Series
}

// RackTrace is one rack's generated trace: per-server series plus the rack
// power limit.
type RackTrace struct {
	Name       string
	LimitWatts float64
	Servers    []*ServerTrace
}

// RackPower returns the rack's total power series (sum of servers).
func (r *RackTrace) RackPower() *timeseries.Series {
	if len(r.Servers) == 0 {
		return nil
	}
	total := r.Servers[0].Power.Clone()
	for _, s := range r.Servers[1:] {
		// Same start/step by construction; Add cannot fail.
		if err := total.Add(s.Power); err != nil {
			panic(fmt.Sprintf("trace: misaligned server series: %v", err))
		}
	}
	return total
}

// UtilizationStats returns the rack's average, median and P99 power
// utilization (draw/limit) — the per-rack metrics behind Fig 5.
func (r *RackTrace) UtilizationStats() (avg, p50, p99 float64) {
	p := r.RackPower()
	if p == nil || r.LimitWatts <= 0 {
		return 0, 0, 0
	}
	util := make([]float64, p.Len())
	for i, v := range p.Values {
		util[i] = v / r.LimitWatts
	}
	ps := stats.Percentiles(util, 50, 99)
	return stats.Mean(util), ps[0], ps[1]
}

// RackGenConfig parameterizes rack trace generation.
type RackGenConfig struct {
	Name    string
	Servers int
	HW      machine.Config
	// Profiles is the service catalog VMs are drawn from.
	Profiles []ServiceProfile
	// VMsPerServerMin/Max bound how many VMs each server hosts.
	VMsPerServerMin, VMsPerServerMax int
	// VMCoresMin/Max bound per-VM core counts (paper: many small 2-8 core
	// VMs).
	VMCoresMin, VMCoresMax int
	// TargetP99Util sets the rack power limit so that the rack's P99 power
	// utilization equals this value — the knob that produces the paper's
	// High/Medium/Low-power cluster classes.
	TargetP99Util float64
	// OutlierDayProb is the chance that the trace contains one anomalous
	// day with OutlierBoost multiplicative extra load.
	OutlierDayProb float64
	OutlierBoost   float64
	// OutlierWithinDays restricts the anomalous day to the first N days
	// (0 = anywhere in the trace). Useful to keep evaluation windows
	// clean when studying predictor robustness.
	OutlierWithinDays int

	Start    time.Time
	Step     time.Duration
	Duration time.Duration
}

// DefaultRackGenConfig returns a generation config matching the paper's
// environment: 24-32 servers per rack (we use 28), 5-minute samples, small
// multi-tenant VMs.
func DefaultRackGenConfig(name string, start time.Time, duration time.Duration) RackGenConfig {
	return RackGenConfig{
		Name:            name,
		Servers:         28,
		HW:              machine.DefaultConfig(),
		Profiles:        Catalog(),
		VMsPerServerMin: 4,
		VMsPerServerMax: 8,
		VMCoresMin:      2,
		VMCoresMax:      8,
		TargetP99Util:   0.85,
		OutlierDayProb:  0.1,
		OutlierBoost:    0.3,
		Start:           start,
		Step:            5 * time.Minute,
		Duration:        duration,
	}
}

// Validate reports whether the configuration is usable.
func (c RackGenConfig) Validate() error {
	switch {
	case c.Servers <= 0:
		return fmt.Errorf("trace: Servers = %d", c.Servers)
	case len(c.Profiles) == 0:
		return fmt.Errorf("trace: empty profile catalog")
	case c.VMsPerServerMin <= 0 || c.VMsPerServerMax < c.VMsPerServerMin:
		return fmt.Errorf("trace: bad VM count bounds [%d,%d]", c.VMsPerServerMin, c.VMsPerServerMax)
	case c.VMCoresMin <= 0 || c.VMCoresMax < c.VMCoresMin:
		return fmt.Errorf("trace: bad VM core bounds [%d,%d]", c.VMCoresMin, c.VMCoresMax)
	case c.TargetP99Util <= 0 || c.TargetP99Util > 1.2:
		return fmt.Errorf("trace: TargetP99Util = %v", c.TargetP99Util)
	case c.Step <= 0 || c.Duration < c.Step:
		return fmt.Errorf("trace: bad step/duration %v/%v", c.Step, c.Duration)
	}
	return c.HW.Validate()
}

// randBetween returns a uniform int in [lo, hi].
func randBetween(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// GenServerSpec draws one server's VM placement from the catalog.
func GenServerSpec(cfg RackGenConfig, name string, rng *rand.Rand) ServerSpec {
	spec := ServerSpec{Name: name, HW: cfg.HW}
	nVMs := randBetween(rng, cfg.VMsPerServerMin, cfg.VMsPerServerMax)
	budget := cfg.HW.Cores
	for v := 0; v < nVMs && budget > 0; v++ {
		cores := randBetween(rng, cfg.VMCoresMin, cfg.VMCoresMax)
		if cores > budget {
			cores = budget
		}
		profile := cfg.Profiles[rng.Intn(len(cfg.Profiles))]
		// Per-VM phase jitter decorrelates instances of the same service.
		profile.PhaseShiftHours += rng.Float64()*2 - 1
		spec.VMs = append(spec.VMs, VMSpec{Service: profile, Cores: cores})
		budget -= cores
	}
	return spec
}

// GenRack generates one rack's full trace deterministically from rng.
func GenRack(cfg RackGenConfig, rng *rand.Rand) (*RackTrace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	steps := int(cfg.Duration / cfg.Step)
	rack := &RackTrace{Name: cfg.Name, Servers: make([]*ServerTrace, 0, cfg.Servers)}

	// Optional outlier day for the whole rack (a holiday, an incident).
	outlierDay := -1
	if rng.Float64() < cfg.OutlierDayProb {
		days := int(cfg.Duration / (24 * time.Hour))
		if cfg.OutlierWithinDays > 0 && days > cfg.OutlierWithinDays {
			days = cfg.OutlierWithinDays
		}
		if days > 0 {
			outlierDay = rng.Intn(days)
		}
	}

	for i := 0; i < cfg.Servers; i++ {
		spec := GenServerSpec(cfg, fmt.Sprintf("%s-s%02d", cfg.Name, i), rng)
		// The tick count is known up front: sizing both series here keeps
		// the per-tick loop below allocation-free (guarded by AllocsPerRun).
		util := timeseries.NewWithCap(cfg.Start, cfg.Step, steps)
		power := timeseries.NewWithCap(cfg.Start, cfg.Step, steps)
		for j := 0; j < steps; j++ {
			ts := cfg.Start.Add(time.Duration(j) * cfg.Step)
			u := spec.UtilAt(ts, rng)
			if outlierDay >= 0 && int(ts.Sub(cfg.Start)/(24*time.Hour)) == outlierDay {
				u *= 1 + cfg.OutlierBoost
				if u > 1 {
					u = 1
				}
			}
			util.Append(u)
			power.Append(spec.PowerAt(u))
		}
		rack.Servers = append(rack.Servers, &ServerTrace{Spec: spec, Util: util, Power: power})
	}

	// Set the limit so the rack's P99 utilization hits the target class.
	total := rack.RackPower()
	p99 := stats.P99(total.Values)
	rack.LimitWatts = p99 / cfg.TargetP99Util
	return rack, nil
}
