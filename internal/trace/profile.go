// Package trace generates the synthetic production traces that substitute
// for the paper's 6-week, 7.1k-rack dataset (§III, §V-B).
//
// The generator reproduces the structural properties the paper's analysis
// relies on rather than any particular service's absolute numbers:
//
//   - diurnal, repeatable daily patterns (making per-day templates accurate);
//   - short transient peaks (Services B/C in Fig 1 peak for ~5 minutes at
//     the top and bottom of each hour) and broad multi-hour peaks
//     (Service A peaks 10am–noon);
//   - statistical multiplexing: each server hosts VMs of several services
//     with different peak times, so rack power is smoother than any VM;
//   - heterogeneous per-server power inside a rack (Fig 9);
//   - weekday/weekend structure and occasional outlier days.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Pattern is the temporal shape of a service's load.
type Pattern int

const (
	// PatternDiurnal is a smooth sinusoidal day: low at night, high midday.
	PatternDiurnal Pattern = iota
	// PatternBroadPeak holds base load except for a multi-hour plateau
	// (Service A in Fig 1).
	PatternBroadPeak
	// PatternSpiky holds base load except for short spikes at the top and
	// bottom of each hour (Services B and C in Fig 1).
	PatternSpiky
	// PatternConstant is flat high load (ML training).
	PatternConstant
	// PatternNightly peaks during the night hours (batch workloads),
	// providing anti-correlated multiplexing partners.
	PatternNightly
)

// String returns the pattern name.
func (p Pattern) String() string {
	switch p {
	case PatternDiurnal:
		return "diurnal"
	case PatternBroadPeak:
		return "broadpeak"
	case PatternSpiky:
		return "spiky"
	case PatternConstant:
		return "constant"
	case PatternNightly:
		return "nightly"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// ServiceProfile describes one service's load shape. Utilization values are
// fractions of the service's VMs' allocated cores.
type ServiceProfile struct {
	Name    string
	Pattern Pattern
	// BaseUtil is the off-peak utilization.
	BaseUtil float64
	// PeakUtil is the on-peak utilization.
	PeakUtil float64
	// PeakStartHour/PeakEndHour bound the broad peak (PatternBroadPeak)
	// or the nightly peak (PatternNightly, wrapping midnight).
	PeakStartHour, PeakEndHour int
	// SpikeMinutes is the spike length for PatternSpiky (around minute 0
	// and minute 30 of each hour).
	SpikeMinutes int
	// NoiseSD is the standard deviation of multiplicative Gaussian noise.
	NoiseSD float64
	// WeekendFactor scales utilization on weekends (1 = unchanged).
	WeekendFactor float64
	// PhaseShiftHours rotates the pattern, modelling different regions or
	// customer bases.
	PhaseShiftHours float64
}

// UtilAt returns the service's utilization at ts with deterministic noise
// from rng, clamped to [0.01, 1].
func (p ServiceProfile) UtilAt(ts time.Time, rng *rand.Rand) float64 {
	hour := float64(ts.Hour()) + float64(ts.Minute())/60 - p.PhaseShiftHours
	for hour < 0 {
		hour += 24
	}
	for hour >= 24 {
		hour -= 24
	}
	var u float64
	switch p.Pattern {
	case PatternDiurnal:
		mid := (p.BaseUtil + p.PeakUtil) / 2
		amp := (p.PeakUtil - p.BaseUtil) / 2
		u = mid - amp*math.Cos(2*math.Pi*hour/24)
	case PatternBroadPeak:
		u = p.BaseUtil
		if hour >= float64(p.PeakStartHour) && hour < float64(p.PeakEndHour) {
			u = p.PeakUtil
		}
	case PatternSpiky:
		u = p.BaseUtil
		min := ts.Minute()
		spike := p.SpikeMinutes
		if spike <= 0 {
			spike = 5
		}
		if min < spike || (min >= 30 && min < 30+spike) {
			u = p.PeakUtil
		}
	case PatternConstant:
		u = p.PeakUtil
	case PatternNightly:
		u = p.PeakUtil
		if hour >= 7 && hour < 22 {
			u = p.BaseUtil
		}
	default:
		u = p.BaseUtil
	}
	if ts.Weekday() == time.Saturday || ts.Weekday() == time.Sunday {
		if p.WeekendFactor > 0 {
			u *= p.WeekendFactor
		}
	}
	if p.NoiseSD > 0 && rng != nil {
		u *= 1 + rng.NormFloat64()*p.NoiseSD
	}
	if u < 0.01 {
		u = 0.01
	}
	if u > 1 {
		u = 1
	}
	return u
}

// ServiceA models the paper's Fig 1 Service A: a broad weekday peak from
// 10am to noon.
func ServiceA() ServiceProfile {
	return ServiceProfile{
		Name: "ServiceA", Pattern: PatternBroadPeak,
		BaseUtil: 0.25, PeakUtil: 0.9,
		PeakStartHour: 10, PeakEndHour: 12,
		NoiseSD: 0.03, WeekendFactor: 0.5,
	}
}

// ServiceB models Fig 1 Service B: ~5-minute spikes at the top and bottom
// of each hour.
func ServiceB() ServiceProfile {
	return ServiceProfile{
		Name: "ServiceB", Pattern: PatternSpiky,
		BaseUtil: 0.2, PeakUtil: 0.85, SpikeMinutes: 5,
		NoiseSD: 0.03, WeekendFactor: 0.6,
	}
}

// ServiceC models Fig 1 Service C: like Service B with a different base.
func ServiceC() ServiceProfile {
	return ServiceProfile{
		Name: "ServiceC", Pattern: PatternSpiky,
		BaseUtil: 0.3, PeakUtil: 0.95, SpikeMinutes: 5,
		NoiseSD: 0.03, WeekendFactor: 0.7,
	}
}

// MLTrainProfile models throughput-optimized training: constant high load.
func MLTrainProfile() ServiceProfile {
	return ServiceProfile{
		Name: "MLTrain", Pattern: PatternConstant,
		BaseUtil: 0.85, PeakUtil: 0.92, NoiseSD: 0.02, WeekendFactor: 1,
	}
}

// Catalog returns a mix of service archetypes for populating multi-tenant
// servers; the variety is what produces statistical multiplexing.
func Catalog() []ServiceProfile {
	return []ServiceProfile{
		ServiceA(),
		ServiceB(),
		ServiceC(),
		MLTrainProfile(),
		{Name: "WebFrontend", Pattern: PatternDiurnal, BaseUtil: 0.15, PeakUtil: 0.7,
			NoiseSD: 0.05, WeekendFactor: 0.6},
		{Name: "KVStore", Pattern: PatternDiurnal, BaseUtil: 0.3, PeakUtil: 0.6,
			NoiseSD: 0.04, WeekendFactor: 0.8, PhaseShiftHours: 3},
		{Name: "BatchETL", Pattern: PatternNightly, BaseUtil: 0.1, PeakUtil: 0.8,
			NoiseSD: 0.05, WeekendFactor: 1},
		{Name: "VideoConf", Pattern: PatternBroadPeak, BaseUtil: 0.2, PeakUtil: 0.85,
			PeakStartHour: 9, PeakEndHour: 17, NoiseSD: 0.04, WeekendFactor: 0.3},
		{Name: "Analytics", Pattern: PatternDiurnal, BaseUtil: 0.2, PeakUtil: 0.5,
			NoiseSD: 0.06, WeekendFactor: 0.9, PhaseShiftHours: -4},
		{Name: "SearchIdx", Pattern: PatternNightly, BaseUtil: 0.15, PeakUtil: 0.75,
			NoiseSD: 0.05, WeekendFactor: 1},
	}
}
