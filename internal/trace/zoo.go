package trace

import (
	"fmt"
	"time"

	"smartoclock/internal/machine"
)

// The scenario zoo: deterministic, seeded adversarial workload regimes for
// stress-certifying overclocking policies. Each scenario describes a small
// multi-rack topology and answers point queries — does server (r,s) demand
// overclocking at offset t? what is its utilization? what does its power
// sensor report? — as pure functions of (seed, rack, server, time slot).
// Hash-based generation (no stateful RNG) means the answers are independent
// of query order, so a simulation driven by a zoo scenario is byte-identical
// regardless of worker count or dispatch order.
//
// The regimes come from the failure modes the paper's benign traces never
// exercise: flash crowds (synchronized admission pressure), correlated
// cross-rack surges (every gOA squeezed at once), heteroskedastic "outlier
// day" storms (template-breaking variance, DCcluster-Opt's shifting-regime
// stress), mixed hardware generations (distinct power/frequency curves
// inside one rack, Fig 9's heterogeneity pushed across SKUs), and slow
// sensor drift (the sOA's power telemetry diverging from truth, with
// under-reading as the risky direction).

// ZooScenario is one adversarial regime. All time arguments are offsets
// from the run start, so a scenario is independent of the absolute clock.
type ZooScenario struct {
	Name string
	Desc string
	// Racks × ServersPerRack is the scenario's topology.
	Racks          int
	ServersPerRack int
	// HW returns server (rack, srv)'s hardware model.
	HW func(rack, srv int) machine.Config
	// Demand reports whether server (rack, srv) wants its VM overclocked
	// at offset since.
	Demand func(rack, srv int, since time.Duration) bool
	// Util returns the core utilization for the server's VM cores (hot)
	// or its background cores (!hot) at offset since.
	Util func(rack, srv int, since time.Duration, hot bool) float64
	// SensorGain is the multiplicative error of the power reading the
	// sOA sees at offset since (1 = honest; <1 under-reads, which is the
	// dangerous direction: the agent believes it has headroom it lacks).
	SensorGain func(rack, srv int, since time.Duration) float64
}

// zooSplitmix is splitmix64: the zoo's stateless position-hash primitive.
func zooSplitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// zooHash folds a seed and coordinates into one 64-bit hash.
func zooHash(seed int64, coords ...uint64) uint64 {
	x := zooSplitmix(uint64(seed))
	for _, c := range coords {
		x = zooSplitmix(x ^ c)
	}
	return x
}

// zooUnit maps a seed and coordinates to a uniform float in [0, 1).
func zooUnit(seed int64, coords ...uint64) float64 {
	return float64(zooHash(seed, coords...)>>11) / float64(1<<53)
}

// zooSlot quantizes an offset to a slot index of the given width.
func zooSlot(since, width time.Duration) uint64 {
	if since < 0 {
		return 0
	}
	return uint64(since / width)
}

// Distinct coordinate tags keep the per-purpose hash streams independent:
// the same (rack, srv, slot) must not produce correlated demand and util.
const (
	zooTagDemand = 1 + iota
	zooTagHot
	zooTagBase
	zooTagFlash
	zooTagSurge
	zooTagStorm
	zooTagHW
	zooTagDrift
)

// defaultHW returns the single-generation hardware model.
func defaultHW(int, int) machine.Config { return machine.DefaultConfig() }

// honestSensor is the identity sensor gain.
func honestSensor(int, int, time.Duration) float64 { return 1 }

// benignUtil is the zoo's baseline utilization: mild per-slot jitter around
// a low base and a high hot level, re-drawn each minute.
func benignUtil(seed int64, rack, srv int, since time.Duration, hot bool) float64 {
	slot := zooSlot(since, time.Minute)
	if hot {
		return 0.80 + 0.10*zooUnit(seed, zooTagHot, uint64(rack), uint64(srv), slot)
	}
	return 0.35 + 0.05*zooUnit(seed, zooTagBase, uint64(rack), uint64(srv), slot)
}

// phasedDemand is the benign demand wave: per-server phase-shifted square
// waves with onFrac duty over period.
func phasedDemand(rack, srv, perRack int, since time.Duration, period time.Duration, onFrac float64) bool {
	phase := time.Duration(rack*perRack+srv) * period / time.Duration(perRack*2)
	into := (since + phase) % period
	return float64(into) < onFrac*float64(period)
}

// ZooBenign is the control regime: the chaos rig's phase-shifted demand
// waves on homogeneous hardware with honest sensors. A policy that cannot
// keep the invariants here is broken outright.
func ZooBenign(seed int64) ZooScenario {
	return ZooScenario{
		Name:           "benign",
		Desc:           "phase-shifted square-wave demand, homogeneous hardware, honest sensors",
		Racks:          2,
		ServersPerRack: 6,
		HW:             defaultHW,
		Demand: func(rack, srv int, since time.Duration) bool {
			return phasedDemand(rack, srv, 6, since, 20*time.Minute, 0.45)
		},
		Util: func(rack, srv int, since time.Duration, hot bool) float64 {
			return benignUtil(seed, rack, srv, since, hot)
		},
		SensorGain: honestSensor,
	}
}

// ZooFlashCrowd models flash crowds: demand is usually sparse, but in
// hash-chosen 15-minute windows an entire rack's servers ask for
// overclocking within the same tick — the synchronized admission burst
// that a per-server view never anticipates.
func ZooFlashCrowd(seed int64) ZooScenario {
	flashAt := func(rack int, since time.Duration) bool {
		w := zooSlot(since, 15*time.Minute)
		if zooUnit(seed, zooTagFlash, uint64(rack), w) >= 0.35 {
			return false
		}
		// The flash occupies the first 5 minutes of its window.
		return since%(15*time.Minute) < 5*time.Minute
	}
	return ZooScenario{
		Name:           "flash-crowd",
		Desc:           "rack-wide synchronized demand bursts in hash-chosen windows",
		Racks:          2,
		ServersPerRack: 6,
		HW:             defaultHW,
		Demand: func(rack, srv int, since time.Duration) bool {
			if flashAt(rack, since) {
				return true
			}
			return phasedDemand(rack, srv, 6, since, 30*time.Minute, 0.15)
		},
		Util: func(rack, srv int, since time.Duration, hot bool) float64 {
			if hot && flashAt(rack, since) {
				slot := zooSlot(since, time.Minute)
				return 0.90 + 0.08*zooUnit(seed, zooTagHot, uint64(rack), uint64(srv), slot)
			}
			return benignUtil(seed, rack, srv, since, hot)
		},
		SensorGain: honestSensor,
	}
}

// ZooCorrelatedSurge models cross-rack correlated surges: one global event
// (a product launch, a regional failover) pushes every rack hot at once,
// so no gOA can borrow calm from a neighbor and every budget split is
// squeezed simultaneously.
func ZooCorrelatedSurge(seed int64) ZooScenario {
	surgeAt := func(since time.Duration) bool {
		w := zooSlot(since, 30*time.Minute)
		if zooUnit(seed, zooTagSurge, w) >= 0.5 {
			return false
		}
		return since%(30*time.Minute) < 12*time.Minute
	}
	return ZooScenario{
		Name:           "correlated-surge",
		Desc:           "global surge windows hit every rack simultaneously",
		Racks:          2,
		ServersPerRack: 6,
		HW:             defaultHW,
		Demand: func(rack, srv int, since time.Duration) bool {
			if surgeAt(since) {
				return true
			}
			return phasedDemand(rack, srv, 6, since, 40*time.Minute, 0.10)
		},
		Util: func(rack, srv int, since time.Duration, hot bool) float64 {
			slot := zooSlot(since, time.Minute)
			if surgeAt(since) {
				if hot {
					return 0.88 + 0.10*zooUnit(seed, zooTagHot, uint64(rack), uint64(srv), slot)
				}
				return 0.50 + 0.10*zooUnit(seed, zooTagBase, uint64(rack), uint64(srv), slot)
			}
			return benignUtil(seed, rack, srv, since, hot)
		},
		SensorGain: honestSensor,
	}
}

// ZooOutlierStorm models heteroskedastic "outlier day" behaviour: each hour
// is either calm or a storm. Storm hours re-draw demand erratically every
// two minutes and swing utilization with ~5× the calm variance, breaking
// the low-variance assumption a fitted template encodes.
func ZooOutlierStorm(seed int64) ZooScenario {
	stormHour := func(since time.Duration) bool {
		return zooUnit(seed, zooTagStorm, zooSlot(since, time.Hour)) < 0.35
	}
	return ZooScenario{
		Name:           "outlier-storm",
		Desc:           "heteroskedastic hours: calm baseline vs high-variance storm regimes",
		Racks:          2,
		ServersPerRack: 6,
		HW:             defaultHW,
		Demand: func(rack, srv int, since time.Duration) bool {
			if stormHour(since) {
				slot := zooSlot(since, 2*time.Minute)
				return zooUnit(seed, zooTagDemand, uint64(rack), uint64(srv), slot) < 0.6
			}
			return phasedDemand(rack, srv, 6, since, 20*time.Minute, 0.35)
		},
		Util: func(rack, srv int, since time.Duration, hot bool) float64 {
			if !stormHour(since) {
				return benignUtil(seed, rack, srv, since, hot)
			}
			slot := zooSlot(since, time.Minute)
			u := zooUnit(seed, zooTagHot, uint64(rack), uint64(srv), slot)
			if hot {
				return 0.55 + 0.43*u // swings 0.55–0.98
			}
			return 0.20 + 0.50*u // swings 0.20–0.70
		},
		SensorGain: honestSensor,
	}
}

// ZooMixedHW models mixed hardware generations inside the same racks: a
// hash-chosen ~40% of servers are an older SKU with a lower turbo ceiling,
// a costlier overclock (steeper voltage slope, hungrier cores) and higher
// idle draw, so identical budgets buy very different frequency headroom and
// the gOA's split must cope with heterogeneous power/frequency curves.
func ZooMixedHW(seed int64) ZooScenario {
	oldGen := machine.DefaultConfig()
	oldGen.TurboMHz = 2800
	oldGen.MaxOCMHz = 3600
	oldGen.IdleWatts = 120
	oldGen.DynCoreWatts = 8.5
	oldGen.VoltSlope = 1.6
	return ZooScenario{
		Name:           "mixed-hw",
		Desc:           "two server generations with distinct power/frequency curves per rack",
		Racks:          2,
		ServersPerRack: 6,
		HW: func(rack, srv int) machine.Config {
			if zooUnit(seed, zooTagHW, uint64(rack), uint64(srv)) < 0.4 {
				return oldGen
			}
			return machine.DefaultConfig()
		},
		Demand: func(rack, srv int, since time.Duration) bool {
			return phasedDemand(rack, srv, 6, since, 20*time.Minute, 0.45)
		},
		Util: func(rack, srv int, since time.Duration, hot bool) float64 {
			return benignUtil(seed, rack, srv, since, hot)
		},
		SensorGain: honestSensor,
	}
}

// ZooSensorDrift models slow power-sensor drift: each server's reported
// draw diverges linearly from truth over the first two hours, toward a
// hash-chosen endpoint in [0.93, 1.07]. Under-reading servers believe they
// have headroom they lack, so rack-level enforcement (warnings, capping)
// is the only thing standing between drift and a limit breach.
func ZooSensorDrift(seed int64) ZooScenario {
	ramp := 2 * time.Hour
	return ZooScenario{
		Name:           "sensor-drift",
		Desc:           "per-server power telemetry drifts up to ±7% from truth over two hours",
		Racks:          2,
		ServersPerRack: 6,
		HW:             defaultHW,
		Demand: func(rack, srv int, since time.Duration) bool {
			return phasedDemand(rack, srv, 6, since, 20*time.Minute, 0.45)
		},
		Util: func(rack, srv int, since time.Duration, hot bool) float64 {
			return benignUtil(seed, rack, srv, since, hot)
		},
		SensorGain: func(rack, srv int, since time.Duration) float64 {
			end := 0.93 + 0.14*zooUnit(seed, zooTagDrift, uint64(rack), uint64(srv))
			frac := float64(since) / float64(ramp)
			if frac > 1 {
				frac = 1
			}
			if frac < 0 {
				frac = 0
			}
			return 1 + (end-1)*frac
		},
	}
}

// ZooCatalog returns every zoo scenario, seeded, in catalog order.
func ZooCatalog(seed int64) []ZooScenario {
	return []ZooScenario{
		ZooBenign(seed),
		ZooFlashCrowd(seed),
		ZooCorrelatedSurge(seed),
		ZooOutlierStorm(seed),
		ZooMixedHW(seed),
		ZooSensorDrift(seed),
	}
}

// ZooByName resolves one scenario by name.
func ZooByName(name string, seed int64) (ZooScenario, error) {
	names := make([]string, 0, 8)
	for _, sc := range ZooCatalog(seed) {
		if sc.Name == name {
			return sc, nil
		}
		names = append(names, sc.Name)
	}
	return ZooScenario{}, fmt.Errorf("trace: unknown zoo scenario %q (valid: %v)", name, names)
}

// Validate reports whether the scenario is runnable.
func (s ZooScenario) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("trace: zoo scenario without a name")
	case s.Racks <= 0 || s.ServersPerRack <= 0:
		return fmt.Errorf("trace: zoo scenario %s topology %dx%d", s.Name, s.Racks, s.ServersPerRack)
	case s.HW == nil || s.Demand == nil || s.Util == nil || s.SensorGain == nil:
		return fmt.Errorf("trace: zoo scenario %s has nil generators", s.Name)
	}
	for r := 0; r < s.Racks; r++ {
		for i := 0; i < s.ServersPerRack; i++ {
			if err := s.HW(r, i).Validate(); err != nil {
				return fmt.Errorf("trace: zoo scenario %s server (%d,%d): %w", s.Name, r, i, err)
			}
		}
	}
	return nil
}
