package trace

import (
	"testing"
	"time"
)

func TestZooCatalogValidatesAndHasDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, sc := range ZooCatalog(7) {
		if err := sc.Validate(); err != nil {
			t.Errorf("%s: %v", sc.Name, err)
		}
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
	}
	if len(seen) < 5 {
		t.Fatalf("catalog has %d scenarios, want at least 5", len(seen))
	}
}

func TestZooByName(t *testing.T) {
	sc, err := ZooByName("flash-crowd", 3)
	if err != nil || sc.Name != "flash-crowd" {
		t.Fatalf("lookup: %v / %q", err, sc.Name)
	}
	if _, err := ZooByName("nope", 3); err == nil {
		t.Fatal("unknown scenario must error")
	}
}

// TestZooDeterministicPerSeed asserts the core contract: a scenario is a
// pure function of (seed, rack, server, offset) — two instances with the
// same seed agree everywhere, and a different seed actually changes the
// regime.
func TestZooDeterministicPerSeed(t *testing.T) {
	catA, catB, catC := ZooCatalog(42), ZooCatalog(42), ZooCatalog(43)
	for k := range catA {
		a, b, c := catA[k], catB[k], catC[k]
		differs := false
		for r := 0; r < a.Racks; r++ {
			for s := 0; s < a.ServersPerRack; s++ {
				if a.HW(r, s) != b.HW(r, s) {
					t.Fatalf("%s: HW(%d,%d) differs across same-seed instances", a.Name, r, s)
				}
				for since := time.Duration(0); since < 3*time.Hour; since += 37 * time.Second {
					if a.Demand(r, s, since) != b.Demand(r, s, since) {
						t.Fatalf("%s: Demand(%d,%d,%v) nondeterministic", a.Name, r, s, since)
					}
					for _, hot := range []bool{false, true} {
						if a.Util(r, s, since, hot) != b.Util(r, s, since, hot) {
							t.Fatalf("%s: Util(%d,%d,%v,%v) nondeterministic", a.Name, r, s, since, hot)
						}
					}
					if a.SensorGain(r, s, since) != b.SensorGain(r, s, since) {
						t.Fatalf("%s: SensorGain(%d,%d,%v) nondeterministic", a.Name, r, s, since)
					}
					if a.Demand(r, s, since) != c.Demand(r, s, since) ||
						a.Util(r, s, since, true) != c.Util(r, s, since, true) {
						differs = true
					}
				}
			}
		}
		if !differs {
			t.Errorf("%s: seed 42 and 43 produce identical regimes", a.Name)
		}
	}
}

// TestZooQueryOrderIndependence spot-checks that interleaved queries return
// the same answers as sequential ones (no hidden generator state).
func TestZooQueryOrderIndependence(t *testing.T) {
	sc := ZooOutlierStorm(9)
	want := make([]float64, 0, 100)
	for i := 0; i < 100; i++ {
		want = append(want, sc.Util(i%2, i%6, time.Duration(i)*time.Minute, i%3 == 0))
	}
	// Re-query in reverse order.
	for i := 99; i >= 0; i-- {
		got := sc.Util(i%2, i%6, time.Duration(i)*time.Minute, i%3 == 0)
		if got != want[i] {
			t.Fatalf("query %d: %v after reverse-order replay, want %v", i, got, want[i])
		}
	}
}

func TestZooFlashCrowdSynchronizesRack(t *testing.T) {
	sc := ZooFlashCrowd(11)
	// Find at least one offset where every server of a rack demands at once
	// — the signature of a flash — and verify quiet offsets exist too.
	flashes, quiets := 0, 0
	for since := time.Duration(0); since < 6*time.Hour; since += time.Minute {
		all, none := true, true
		for s := 0; s < sc.ServersPerRack; s++ {
			if sc.Demand(0, s, since) {
				none = false
			} else {
				all = false
			}
		}
		if all {
			flashes++
		}
		if none {
			quiets++
		}
	}
	if flashes == 0 {
		t.Fatal("no rack-wide synchronized demand in 6 h — not a flash crowd")
	}
	if quiets == 0 {
		t.Fatal("demand never quiet — flash crowd needs contrast")
	}
}

func TestZooCorrelatedSurgeHitsAllRacks(t *testing.T) {
	sc := ZooCorrelatedSurge(5)
	found := false
	for since := time.Duration(0); since < 6*time.Hour; since += time.Minute {
		all := true
		for r := 0; r < sc.Racks && all; r++ {
			for s := 0; s < sc.ServersPerRack; s++ {
				if !sc.Demand(r, s, since) {
					all = false
					break
				}
			}
		}
		if all {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no cross-rack synchronized surge in 6 h")
	}
}

func TestZooMixedHWHasTwoGenerations(t *testing.T) {
	sc := ZooMixedHW(1)
	turbos := map[int]bool{}
	for r := 0; r < sc.Racks; r++ {
		for s := 0; s < sc.ServersPerRack; s++ {
			turbos[sc.HW(r, s).TurboMHz] = true
		}
	}
	if len(turbos) < 2 {
		t.Fatalf("hardware generations = %v, want 2 distinct turbo ceilings", turbos)
	}
}

func TestZooSensorDriftRampsFromHonest(t *testing.T) {
	sc := ZooSensorDrift(2)
	sawDrift := false
	for s := 0; s < sc.ServersPerRack; s++ {
		if g := sc.SensorGain(0, s, 0); g != 1 {
			t.Fatalf("server %d gain at t=0 is %v, want 1 (drift is slow)", s, g)
		}
		g := sc.SensorGain(0, s, 3*time.Hour)
		if g < 0.93 || g > 1.07 {
			t.Fatalf("server %d terminal gain %v outside [0.93, 1.07]", s, g)
		}
		if g != 1 {
			sawDrift = true
		}
		// Monotone ramp: halfway gain is between start and end.
		mid := sc.SensorGain(0, s, time.Hour)
		if (g-1)*(mid-1) < 0 {
			t.Fatalf("server %d drift not monotone: mid %v, end %v", s, mid, g)
		}
	}
	if !sawDrift {
		t.Fatal("no server drifted at all")
	}
}

func TestZooOutlierStormHasBothRegimes(t *testing.T) {
	sc := ZooOutlierStorm(4)
	// Variance of hot util should differ sharply between some hours.
	hourSpread := func(hour int) float64 {
		lo, hi := 2.0, -1.0
		for m := 0; m < 60; m++ {
			since := time.Duration(hour)*time.Hour + time.Duration(m)*time.Minute
			u := sc.Util(0, 0, since, true)
			if u < lo {
				lo = u
			}
			if u > hi {
				hi = u
			}
		}
		return hi - lo
	}
	minSpread, maxSpread := 2.0, -1.0
	for h := 0; h < 12; h++ {
		sp := hourSpread(h)
		if sp < minSpread {
			minSpread = sp
		}
		if sp > maxSpread {
			maxSpread = sp
		}
	}
	if maxSpread < 2*minSpread {
		t.Fatalf("utilization spread calm=%.3f storm=%.3f: not heteroskedastic", minSpread, maxSpread)
	}
}
