package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"smartoclock/internal/timeseries"
)

// WriteRackJSON encodes a rack trace as JSON.
func WriteRackJSON(w io.Writer, r *RackTrace) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r)
}

// ReadRackJSON decodes a rack trace from JSON.
func ReadRackJSON(r io.Reader) (*RackTrace, error) {
	var out RackTrace
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("trace: decode rack: %w", err)
	}
	return &out, nil
}

// WriteSeriesCSV writes a series as CSV rows of (RFC3339 timestamp, value).
func WriteSeriesCSV(w io.Writer, s *timeseries.Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"timestamp", "value"}); err != nil {
		return err
	}
	for i, v := range s.Values {
		rec := []string{s.TimeAt(i).Format(time.RFC3339), strconv.FormatFloat(v, 'g', -1, 64)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSeriesCSV reads a series written by WriteSeriesCSV. The step is
// inferred from the first two rows; a single-row series uses fallbackStep.
func ReadSeriesCSV(r io.Reader, fallbackStep time.Duration) (*timeseries.Series, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("trace: csv has no data rows")
	}
	rows := records[1:] // skip header
	times := make([]time.Time, len(rows))
	values := make([]float64, len(rows))
	for i, rec := range rows {
		if len(rec) != 2 {
			return nil, fmt.Errorf("trace: row %d has %d fields", i, len(rec))
		}
		ts, err := time.Parse(time.RFC3339, rec[0])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d timestamp: %w", i, err)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d value: %w", i, err)
		}
		times[i] = ts
		values[i] = v
	}
	step := fallbackStep
	if len(times) >= 2 {
		step = times[1].Sub(times[0])
	}
	if step <= 0 {
		return nil, fmt.Errorf("trace: non-positive inferred step %v", step)
	}
	return timeseries.FromValues(times[0], step, values), nil
}
