package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"smartoclock/internal/predict"
	"smartoclock/internal/stats"
)

// genStart is a Monday.
var genStart = time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)

func TestPatternStrings(t *testing.T) {
	names := map[Pattern]string{
		PatternDiurnal: "diurnal", PatternBroadPeak: "broadpeak",
		PatternSpiky: "spiky", PatternConstant: "constant", PatternNightly: "nightly",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}

func TestServiceAProfileShape(t *testing.T) {
	p := ServiceA()
	peak := p.UtilAt(genStart.Add(11*time.Hour), nil) // 11:00 Monday
	off := p.UtilAt(genStart.Add(15*time.Hour), nil)  // 15:00 Monday
	night := p.UtilAt(genStart.Add(3*time.Hour), nil) // 03:00 Monday
	if peak <= off || peak <= night {
		t.Fatalf("broad peak shape wrong: peak=%v off=%v night=%v", peak, off, night)
	}
	if peak != p.PeakUtil {
		t.Fatalf("peak = %v, want %v", peak, p.PeakUtil)
	}
}

func TestSpikyProfileSpikesTopAndBottomOfHour(t *testing.T) {
	p := ServiceB()
	top := p.UtilAt(genStart.Add(10*time.Hour+2*time.Minute), nil)
	bottom := p.UtilAt(genStart.Add(10*time.Hour+32*time.Minute), nil)
	mid := p.UtilAt(genStart.Add(10*time.Hour+15*time.Minute), nil)
	if top != p.PeakUtil || bottom != p.PeakUtil {
		t.Fatalf("spikes missing: top=%v bottom=%v", top, bottom)
	}
	if mid != p.BaseUtil {
		t.Fatalf("mid-hour = %v, want base %v", mid, p.BaseUtil)
	}
}

func TestWeekendFactorApplies(t *testing.T) {
	p := ServiceA()
	sat := genStart.Add(5 * 24 * time.Hour).Add(11 * time.Hour) // Saturday 11:00
	mon := genStart.Add(11 * time.Hour)
	if p.UtilAt(sat, nil) >= p.UtilAt(mon, nil) {
		t.Fatal("weekend must reduce utilization")
	}
}

func TestUtilClamped(t *testing.T) {
	p := ServiceProfile{Pattern: PatternConstant, PeakUtil: 5}
	if got := p.UtilAt(genStart, nil); got != 1 {
		t.Fatalf("util = %v, want clamp to 1", got)
	}
	p.PeakUtil = -3
	if got := p.UtilAt(genStart, nil); got != 0.01 {
		t.Fatalf("util = %v, want floor 0.01", got)
	}
}

func TestPhaseShiftRotates(t *testing.T) {
	base := ServiceProfile{Pattern: PatternDiurnal, BaseUtil: 0.1, PeakUtil: 0.9}
	shifted := base
	shifted.PhaseShiftHours = 6
	ts := genStart.Add(12 * time.Hour)
	if base.UtilAt(ts, nil) == shifted.UtilAt(ts, nil) {
		t.Fatal("phase shift must change utilization at noon")
	}
	// Shifted by 6h == original 6h earlier.
	if got, want := shifted.UtilAt(ts, nil), base.UtilAt(genStart.Add(6*time.Hour), nil); got != want {
		t.Fatalf("shift semantics: got %v want %v", got, want)
	}
}

func TestNoiseIsDeterministicPerRNG(t *testing.T) {
	p := ServiceB()
	a := p.UtilAt(genStart, rand.New(rand.NewSource(5)))
	b := p.UtilAt(genStart, rand.New(rand.NewSource(5)))
	if a != b {
		t.Fatal("same seed must give same noise")
	}
}

func TestServerSpecUtilAggregation(t *testing.T) {
	hw := DefaultRackGenConfig("r", genStart, time.Hour).HW
	spec := ServerSpec{Name: "s", HW: hw, VMs: []VMSpec{
		{Service: ServiceProfile{Pattern: PatternConstant, PeakUtil: 1}, Cores: hw.Cores / 2},
	}}
	if got := spec.UtilAt(genStart, nil); got != 0.5 {
		t.Fatalf("server util = %v, want 0.5", got)
	}
	if spec.TotalVMCores() != hw.Cores/2 {
		t.Fatalf("TotalVMCores = %d", spec.TotalVMCores())
	}
}

func TestGenRackBasics(t *testing.T) {
	cfg := DefaultRackGenConfig("rackA", genStart, 24*time.Hour)
	cfg.Servers = 6
	rack, err := GenRack(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rack.Servers) != 6 {
		t.Fatalf("servers = %d", len(rack.Servers))
	}
	steps := int(cfg.Duration / cfg.Step)
	for _, s := range rack.Servers {
		if s.Util.Len() != steps || s.Power.Len() != steps {
			t.Fatalf("series lengths %d/%d, want %d", s.Util.Len(), s.Power.Len(), steps)
		}
		if len(s.Spec.VMs) < cfg.VMsPerServerMin {
			t.Fatalf("server has %d VMs", len(s.Spec.VMs))
		}
		if s.Spec.TotalVMCores() > cfg.HW.Cores {
			t.Fatal("VM cores exceed server cores")
		}
	}
	if rack.LimitWatts <= 0 {
		t.Fatal("limit not set")
	}
}

func TestGenRackDeterministic(t *testing.T) {
	cfg := DefaultRackGenConfig("rackA", genStart, 12*time.Hour)
	cfg.Servers = 3
	a, err := GenRack(cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenRack(cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if a.LimitWatts != b.LimitWatts {
		t.Fatal("limits differ across same-seed runs")
	}
	for i := range a.Servers {
		for j := range a.Servers[i].Power.Values {
			if a.Servers[i].Power.Values[j] != b.Servers[i].Power.Values[j] {
				t.Fatalf("power differs at server %d sample %d", i, j)
			}
		}
	}
}

func TestGenRackP99TargetsClass(t *testing.T) {
	cfg := DefaultRackGenConfig("rackA", genStart, 3*24*time.Hour)
	cfg.Servers = 8
	cfg.TargetP99Util = 0.85
	rack, err := GenRack(cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	_, _, p99 := rack.UtilizationStats()
	if p99 < 0.80 || p99 > 0.90 {
		t.Fatalf("P99 utilization = %v, want ≈0.85", p99)
	}
}

func TestGenRackValidation(t *testing.T) {
	cfg := DefaultRackGenConfig("rackA", genStart, time.Hour)
	cfg.Servers = 0
	if _, err := GenRack(cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected validation error")
	}
}

// TestFig9Heterogeneity: servers within one rack must show heterogeneous
// power profiles and the dominant server must change over time.
func TestFig9Heterogeneity(t *testing.T) {
	cfg := DefaultRackGenConfig("rackA", genStart, 2*24*time.Hour)
	cfg.Servers = 6
	rack, err := GenRack(cfg, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	// Mean power spread across servers should exceed 10%.
	var means []float64
	for _, s := range rack.Servers {
		means = append(means, s.Power.Mean())
	}
	if spread := (stats.Max(means) - stats.Min(means)) / stats.Max(means); spread < 0.1 {
		t.Fatalf("server power spread = %v, want >= 0.1", spread)
	}
	// The identity of the most power-hungry server must change over time.
	dominant := map[int]bool{}
	steps := rack.Servers[0].Power.Len()
	for j := 0; j < steps; j += 12 {
		best, bestP := 0, 0.0
		for i, s := range rack.Servers {
			if s.Power.Values[j] > bestP {
				bestP = s.Power.Values[j]
				best = i
			}
		}
		dominant[best] = true
	}
	if len(dominant) < 2 {
		t.Fatalf("dominant server never changes (always %v)", dominant)
	}
}

// TestRackPowerPredictable: rack-level power must be predictable by
// DailyMed (the paper's Q3/Fig 8 property).
func TestRackPowerPredictable(t *testing.T) {
	cfg := DefaultRackGenConfig("rackA", genStart, 14*24*time.Hour)
	cfg.Servers = 10
	cfg.OutlierDayProb = 0
	rack, err := GenRack(cfg, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	total := rack.RackPower()
	split := genStart.Add(7 * 24 * time.Hour)
	train := total.Slice(genStart, split)
	test := total.Slice(split, total.End())
	ev, err := predict.Evaluate(predict.NewDailyMed(), train, test)
	if err != nil {
		t.Fatal(err)
	}
	// Relative RMSE below 5% of mean rack power.
	if rel := ev.RMSE / total.Mean(); rel > 0.05 {
		t.Fatalf("relative RMSE = %v, rack power must be predictable", rel)
	}
}

func TestGenFleetClassesAndRegions(t *testing.T) {
	cfg := DefaultFleetConfig(genStart, 24*time.Hour)
	cfg.RacksPerRegion = 6
	cfg.Regions = []string{"R1", "R2"}
	cfg.RackTemplate.Servers = 4
	fleet, err := GenFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Racks) != 12 {
		t.Fatalf("racks = %d", len(fleet.Racks))
	}
	if len(fleet.ByRegion("R1")) != 6 {
		t.Fatalf("R1 racks = %d", len(fleet.ByRegion("R1")))
	}
	total := 0
	for _, c := range []ClusterClass{HighPower, MediumPower, LowPower} {
		total += len(fleet.ByClass(c))
	}
	if total != 12 {
		t.Fatalf("class partition covers %d racks", total)
	}
}

func TestGenFleetEmptyConfig(t *testing.T) {
	if _, err := GenFleet(FleetConfig{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestClusterClassStrings(t *testing.T) {
	if HighPower.String() != "High-Power" || LowPower.String() != "Low-Power" {
		t.Fatal("class names wrong")
	}
	if HighPower.TargetP99Util() <= MediumPower.TargetP99Util() ||
		MediumPower.TargetP99Util() <= LowPower.TargetP99Util() {
		t.Fatal("class targets must be ordered")
	}
}

func TestRackJSONRoundTrip(t *testing.T) {
	cfg := DefaultRackGenConfig("rackA", genStart, 2*time.Hour)
	cfg.Servers = 2
	rack, err := GenRack(cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRackJSON(&buf, rack); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRackJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != rack.Name || got.LimitWatts != rack.LimitWatts || len(got.Servers) != 2 {
		t.Fatal("round trip lost data")
	}
	if got.Servers[0].Power.Values[3] != rack.Servers[0].Power.Values[3] {
		t.Fatal("round trip lost samples")
	}
}

func TestSeriesCSVRoundTrip(t *testing.T) {
	cfg := DefaultRackGenConfig("rackA", genStart, time.Hour)
	cfg.Servers = 1
	rack, err := GenRack(cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	s := rack.Servers[0].Power
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeriesCSV(&buf, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() || got.Step != s.Step || !got.Start.Equal(s.Start) {
		t.Fatalf("round trip meta: len=%d step=%v start=%v", got.Len(), got.Step, got.Start)
	}
	for i := range s.Values {
		if got.Values[i] != s.Values[i] {
			t.Fatalf("sample %d: %v vs %v", i, got.Values[i], s.Values[i])
		}
	}
}

func TestReadSeriesCSVErrors(t *testing.T) {
	if _, err := ReadSeriesCSV(bytes.NewBufferString("timestamp,value\n"), time.Minute); err == nil {
		t.Fatal("expected error on empty data")
	}
	if _, err := ReadSeriesCSV(bytes.NewBufferString("timestamp,value\nnot-a-time,1\n"), time.Minute); err == nil {
		t.Fatal("expected error on bad timestamp")
	}
	if _, err := ReadSeriesCSV(bytes.NewBufferString("timestamp,value\n2023-04-10T00:00:00Z,xyz\n"), time.Minute); err == nil {
		t.Fatal("expected error on bad value")
	}
}

func BenchmarkGenRackDay(b *testing.B) {
	cfg := DefaultRackGenConfig("rackA", genStart, 24*time.Hour)
	cfg.Servers = 28
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenRack(cfg, rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGenFleetDeterministic(t *testing.T) {
	cfg := DefaultFleetConfig(genStart, 24*time.Hour)
	cfg.Regions = []string{"R1"}
	cfg.RacksPerRegion = 3
	cfg.RackTemplate.Servers = 3
	a, err := GenFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Racks {
		if a.Racks[i].Class != b.Racks[i].Class || a.Racks[i].LimitWatts != b.Racks[i].LimitWatts {
			t.Fatalf("fleet differs at rack %d", i)
		}
	}
}

func TestOutlierWithinDaysConfinesAnomaly(t *testing.T) {
	// With OutlierDayProb = 1 and OutlierWithinDays = 2, the anomalous day
	// must fall in the first two days.
	cfg := DefaultRackGenConfig("out", genStart, 6*24*time.Hour)
	cfg.Servers = 2
	cfg.OutlierDayProb = 1
	cfg.OutlierWithinDays = 2
	cfg.OutlierBoost = 3 // unmistakable
	withOut, err := GenRack(cfg, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	cfg.OutlierDayProb = 0
	noOut, err := GenRack(cfg, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	// Compare daily means: only days 0-1 may differ substantially. The
	// two rack generations consume different rng sequences, so compare
	// day-level aggregates with a generous tolerance.
	dayMean := func(r *RackTrace, day int) float64 {
		s := r.RackPower()
		from := genStart.Add(time.Duration(day) * 24 * time.Hour)
		return s.Slice(from, from.Add(24*time.Hour)).Mean()
	}
	boosted := 0
	for d := 0; d < 6; d++ {
		ratio := dayMean(withOut, d) / dayMean(noOut, d)
		if ratio > 1.15 {
			if d >= 2 {
				t.Fatalf("outlier leaked to day %d (ratio %v)", d, ratio)
			}
			boosted++
		}
	}
	if boosted == 0 {
		t.Fatal("no boosted day found in the allowed window")
	}
}

func TestRackGenConfigValidation(t *testing.T) {
	base := DefaultRackGenConfig("r", genStart, time.Hour)
	cases := []func(*RackGenConfig){
		func(c *RackGenConfig) { c.Servers = 0 },
		func(c *RackGenConfig) { c.Profiles = nil },
		func(c *RackGenConfig) { c.VMsPerServerMin = 0 },
		func(c *RackGenConfig) { c.VMsPerServerMax = c.VMsPerServerMin - 1 },
		func(c *RackGenConfig) { c.VMCoresMin = 0 },
		func(c *RackGenConfig) { c.VMCoresMax = c.VMCoresMin - 1 },
		func(c *RackGenConfig) { c.TargetP99Util = 0 },
		func(c *RackGenConfig) { c.TargetP99Util = 2 },
		func(c *RackGenConfig) { c.Step = 0 },
		func(c *RackGenConfig) { c.Duration = c.Step - 1 },
		func(c *RackGenConfig) { c.HW.Cores = 0 },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestGenFleetRackStreamsIndependent proves the seed-derivation hygiene the
// parallel runner depends on: rack i's trace is a pure function of (seed,
// rack index), unaffected by how many sibling racks exist or how many
// workers generate them.
func TestGenFleetRackStreamsIndependent(t *testing.T) {
	base := DefaultFleetConfig(genStart, 24*time.Hour)
	base.Regions = []string{"R1"}
	base.RackTemplate.Servers = 3

	gen := func(racks, workers int) *Fleet {
		cfg := base
		cfg.RacksPerRegion = racks
		cfg.Workers = workers
		f, err := GenFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	small := gen(2, 1)
	big := gen(5, 1)
	wide := gen(5, 8)
	for i, want := range small.Racks {
		for fi, other := range []*Fleet{big, wide} {
			got := other.Racks[i]
			if got.Class != want.Class || got.Name != want.Name ||
				got.LimitWatts != want.LimitWatts {
				t.Fatalf("fleet %d rack %d header differs: %v/%v vs %v/%v",
					fi, i, got.Class, got.LimitWatts, want.Class, want.LimitWatts)
			}
			for si, st := range want.Servers {
				ost := got.Servers[si]
				if len(ost.Power.Values) != len(st.Power.Values) {
					t.Fatalf("fleet %d rack %d server %d length differs", fi, i, si)
				}
				for k := range st.Power.Values {
					if ost.Power.Values[k] != st.Power.Values[k] ||
						ost.Util.Values[k] != st.Util.Values[k] {
						t.Fatalf("fleet %d rack %d server %d sample %d differs", fi, i, si, k)
					}
				}
			}
		}
	}
}
