package trace

import (
	"fmt"
	"time"

	"smartoclock/internal/machine"
)

// Deployment arrivals for the oversubscription experiments: a deterministic
// stream of servers asking to be placed on a rack, each carrying a severity
// class, a hardware model, a service load shape and a description of how
// much (and how fresh) power history exists to fit its day template. Like
// the zoo, every field of arrival i is a pure hash of (seed, i), so a
// simulation consuming the stream is byte-identical regardless of worker
// count or dispatch order, and arrival i can be generated without
// generating arrivals 0..i-1.

// Hash-stream tags for the arrival generator, disjoint from the zoo's tags
// so the two never correlate.
const (
	arrTagAt = 100 + iota
	arrTagSeverity
	arrTagCores
	arrTagService
	arrTagHistory
	arrTagAge
)

// Arrival is one deployment asking for rack placement.
type Arrival struct {
	// Index is the arrival's position in the stream.
	Index int
	// At is the arrival's offset from the run start.
	At time.Duration
	// Name identifies the deployment.
	Name string
	// Severity is the capping class: 0 is most critical (capped last),
	// higher classes are more sheddable (capped first). The range matches
	// power.Severity but stays an int here to keep trace decoupled.
	Severity int
	// HW is the server hardware model; its nameplate is the conservative
	// admission fallback.
	HW machine.Config
	// Service is the load shape that drives the deployment's utilization.
	Service ServiceProfile
	// HistoryDays is how many days of power history exist to fit a day
	// template; 0 means none — admission must fall back to the nameplate.
	HistoryDays int
	// TemplateAgeDays is how old the fitted template is at the run start;
	// ages beyond the admission policy's freshness bound force the same
	// conservative fallback as absent history.
	TemplateAgeDays int
}

// ArrivalStream generates deployment arrivals as pure functions of
// (Seed, index).
type ArrivalStream struct {
	// Seed is the deterministic generation seed.
	Seed int64
	// Mean is the mean spacing between consecutive arrivals.
	Mean time.Duration
	// N is the stream length.
	N int
}

// NewArrivalStream creates a stream of n arrivals spaced mean apart on
// average. It panics on non-positive mean or negative n — programming
// errors, like the engine's interval checks.
func NewArrivalStream(seed int64, mean time.Duration, n int) *ArrivalStream {
	if mean <= 0 || n < 0 {
		panic(fmt.Sprintf("trace: arrival stream mean %v / n %d", mean, n))
	}
	return &ArrivalStream{Seed: seed, Mean: mean, N: n}
}

// Arrival returns arrival i. Arrival times are strictly increasing in i:
// arrival i lands a hash-jittered fraction into its own slot of width Mean.
func (s *ArrivalStream) Arrival(i int) Arrival {
	u := func(tag uint64) float64 { return zooUnit(s.Seed, tag, uint64(i)) }

	sev := 3
	switch v := u(arrTagSeverity); {
	case v < 0.15:
		sev = 0
	case v < 0.40:
		sev = 1
	case v < 0.70:
		sev = 2
	}

	hw := machine.DefaultConfig()
	switch v := u(arrTagCores); {
	case v < 0.35:
		hw.Cores = 16
	case v < 0.70:
		hw.Cores = 32
	}

	catalog := Catalog()
	svc := catalog[int(zooHash(s.Seed, arrTagService, uint64(i))%uint64(len(catalog)))]

	// Most deployments arrive with one to two weeks of fresh history; a
	// hash-chosen tail has none at all or only a month-old fit, exercising
	// the conservative-admission fallbacks.
	hist, age := 0, 0
	if v := u(arrTagHistory); v >= 0.12 {
		hist = 7 + int(v*8) // 7..14 days
		if w := u(arrTagAge); w < 0.10 {
			age = 30 // stale beyond any sane freshness bound
		} else {
			age = int(w * 4) // 0..3 days
		}
	}

	return Arrival{
		Index:           i,
		At:              time.Duration(float64(s.Mean) * (float64(i) + u(arrTagAt))),
		Name:            fmt.Sprintf("dep-%03d", i),
		Severity:        sev,
		HW:              hw,
		Service:         svc,
		HistoryDays:     hist,
		TemplateAgeDays: age,
	}
}

// All returns every arrival in stream order.
func (s *ArrivalStream) All() []Arrival {
	out := make([]Arrival, s.N)
	for i := range out {
		out[i] = s.Arrival(i)
	}
	return out
}

// DemandWave exposes the zoo's phase-shifted square-wave demand for
// experiments that drive overclocking outside a full ZooScenario: server
// srv of perRack on rack wants overclocking for onFrac of each period,
// phase-shifted so the rack's demand is staggered rather than synchronized.
func DemandWave(rack, srv, perRack int, since, period time.Duration, onFrac float64) bool {
	return phasedDemand(rack, srv, perRack, since, period, onFrac)
}

// BenignUtil exposes the zoo's baseline utilization generator: mild
// per-minute jitter around a low background level and a high hot level.
func BenignUtil(seed int64, rack, srv int, since time.Duration, hot bool) float64 {
	return benignUtil(seed, rack, srv, since, hot)
}
