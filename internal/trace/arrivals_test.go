package trace

import (
	"testing"
	"time"
)

func TestArrivalStreamDeterministicAndRandomAccess(t *testing.T) {
	s := NewArrivalStream(42, 5*time.Minute, 40)
	all := s.All()
	// Arrival i is a pure function of (seed, i): random access agrees with
	// stream order, and a second stream with the same seed is identical.
	s2 := NewArrivalStream(42, 5*time.Minute, 40)
	for i, a := range all {
		if got := s.Arrival(i); got != a {
			t.Fatalf("arrival %d differs on re-read", i)
		}
		if got := s2.Arrival(i); got != a {
			t.Fatalf("arrival %d differs across same-seed streams", i)
		}
	}
	// A different seed must actually change the stream.
	s3 := NewArrivalStream(43, 5*time.Minute, 40)
	same := 0
	for i := range all {
		if s3.Arrival(i).Severity == all[i].Severity {
			same++
		}
	}
	if same == len(all) {
		t.Fatal("seed change left every severity identical")
	}
}

func TestArrivalStreamFieldRanges(t *testing.T) {
	s := NewArrivalStream(7, 3*time.Minute, 200)
	var last time.Duration = -1
	var haveAbsent, haveStale, haveFresh bool
	sevSeen := map[int]bool{}
	for _, a := range s.All() {
		if a.At <= last {
			t.Fatalf("arrival %d at %v not after %v", a.Index, a.At, last)
		}
		last = a.At
		if a.Severity < 0 || a.Severity > 3 {
			t.Fatalf("arrival %d severity %d out of range", a.Index, a.Severity)
		}
		sevSeen[a.Severity] = true
		switch a.HW.Cores {
		case 16, 32, 64:
		default:
			t.Fatalf("arrival %d has %d cores", a.Index, a.HW.Cores)
		}
		if a.HW.NameplateWatts() <= 0 {
			t.Fatalf("arrival %d nameplate %v", a.Index, a.HW.NameplateWatts())
		}
		switch {
		case a.HistoryDays == 0:
			haveAbsent = true
			if a.TemplateAgeDays != 0 {
				t.Fatalf("arrival %d has template age without history", a.Index)
			}
		case a.HistoryDays < 7 || a.HistoryDays > 14:
			t.Fatalf("arrival %d history %d days out of range", a.Index, a.HistoryDays)
		case a.TemplateAgeDays >= 30:
			haveStale = true
		default:
			haveFresh = true
		}
	}
	// A 200-arrival stream must exercise every admission path: all four
	// severity classes, fresh templates, stale templates, absent history.
	for sev := 0; sev < 4; sev++ {
		if !sevSeen[sev] {
			t.Fatalf("severity class %d never generated", sev)
		}
	}
	if !haveAbsent || !haveStale || !haveFresh {
		t.Fatalf("template freshness paths missing: absent=%v stale=%v fresh=%v",
			haveAbsent, haveStale, haveFresh)
	}
}

func TestArrivalStreamPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { NewArrivalStream(1, 0, 5) },
		func() { NewArrivalStream(1, time.Minute, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad arrival stream accepted")
				}
			}()
			f()
		}()
	}
}

func TestDemandWaveAndBenignUtilExports(t *testing.T) {
	// The exported wrappers must agree with the zoo's internal generators.
	for srv := 0; srv < 4; srv++ {
		for min := 0; min < 60; min += 5 {
			since := time.Duration(min) * time.Minute
			if got, want := DemandWave(0, srv, 4, since, 20*time.Minute, 0.45),
				phasedDemand(0, srv, 4, since, 20*time.Minute, 0.45); got != want {
				t.Fatalf("DemandWave(srv=%d, %v) = %v, internal %v", srv, since, got, want)
			}
			for _, hot := range []bool{false, true} {
				got := BenignUtil(9, 0, srv, since, hot)
				if want := benignUtil(9, 0, srv, since, hot); got != want {
					t.Fatalf("BenignUtil mismatch at srv=%d %v", srv, since)
				}
				if got < 0 || got > 1 {
					t.Fatalf("BenignUtil = %v out of [0,1]", got)
				}
			}
		}
	}
}
