package stats

import (
	"math"
	"testing"
)

// TestPercentileEdgeCases exercises the boundary inputs of the
// closest-ranks interpolation: empty and single-sample inputs, duplicated
// values, and out-of-range percentiles (which clamp rather than panic).
func TestPercentileEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"empty", nil, 50, 0},
		{"empty out-of-range", nil, 150, 0},
		{"single p0", []float64{7}, 0, 7},
		{"single p50", []float64{7}, 50, 7},
		{"single p100", []float64{7}, 100, 7},
		{"single clamp-low", []float64{7}, -10, 7},
		{"single clamp-high", []float64{7}, 900, 7},
		{"duplicates all equal", []float64{3, 3, 3, 3}, 99, 3},
		{"duplicates mixed p50", []float64{1, 2, 2, 2, 5}, 50, 2},
		{"two samples interpolate", []float64{0, 10}, 25, 2.5},
		{"clamp low to min", []float64{1, 2, 3}, -5, 1},
		{"clamp high to max", []float64{1, 2, 3}, 105, 3},
		{"unsorted input", []float64{9, 1, 5}, 50, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Percentile(tc.xs, tc.p); !almostEqual(got, tc.want, 1e-12) {
				t.Fatalf("Percentile(%v, %v) = %v, want %v", tc.xs, tc.p, got, tc.want)
			}
		})
	}
}

// TestCDFQuantileEdgeCases pins the CDF quantile's behaviour on degenerate
// samples and out-of-range q. q outside [0,1] used to index past the sorted
// slice and panic; it must clamp like Percentile does.
func TestCDFQuantileEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		q    float64
		want float64
	}{
		{"empty", nil, 0.5, 0},
		{"empty out-of-range", nil, 2, 0},
		{"single", []float64{4}, 0.99, 4},
		{"single clamp-low", []float64{4}, -1, 4},
		{"single clamp-high", []float64{4}, 2, 4},
		{"duplicates", []float64{2, 2, 2}, 0.5, 2},
		{"clamp low to min", []float64{1, 2, 3}, -0.5, 1},
		{"clamp high to max", []float64{1, 2, 3}, 1.5, 3},
		{"q0 is min", []float64{5, 1, 9}, 0, 1},
		{"q1 is max", []float64{5, 1, 9}, 1, 9},
		{"interpolated median", []float64{0, 10}, 0.5, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCDF(tc.xs)
			if got := c.Quantile(tc.q); !almostEqual(got, tc.want, 1e-12) {
				t.Fatalf("Quantile(%v) of %v = %v, want %v", tc.q, tc.xs, got, tc.want)
			}
		})
	}
}

// TestCDFAtEdgeCases covers At on empty samples, duplicates (P(X <= x)
// counts every equal sample) and probes outside the sample range.
func TestCDFAtEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		x    float64
		want float64
	}{
		{"empty", nil, 1, 0},
		{"below min", []float64{1, 2, 3}, 0, 0},
		{"above max", []float64{1, 2, 3}, 10, 1},
		{"at duplicate", []float64{1, 2, 2, 2, 3}, 2, 0.8},
		{"between samples", []float64{1, 2, 3, 4}, 2.5, 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCDF(tc.xs)
			if got := c.At(tc.x); !almostEqual(got, tc.want, 1e-12) {
				t.Fatalf("At(%v) of %v = %v, want %v", tc.x, tc.xs, got, tc.want)
			}
		})
	}
}

// TestP2QuantileSmallSamples checks the exact-fallback path (n < 5) and
// that duplicates do not break marker initialization at n = 5.
func TestP2QuantileSmallSamples(t *testing.T) {
	q := NewP2Quantile(0.5)
	if q.Value() != 0 || q.Max() != 0 {
		t.Fatal("empty estimator must report 0")
	}
	q.Add(3)
	if q.Value() != 3 || q.Max() != 3 {
		t.Fatalf("single-sample estimate = %v/%v, want 3/3", q.Value(), q.Max())
	}
	for _, v := range []float64{3, 3, 3, 3} {
		q.Add(v)
	}
	if q.Value() != 3 {
		t.Fatalf("all-duplicate estimate = %v, want 3", q.Value())
	}
	// A long constant stream must stay pinned at the constant.
	for i := 0; i < 1000; i++ {
		q.Add(3)
	}
	if q.Value() != 3 {
		t.Fatalf("constant stream drifted to %v", q.Value())
	}
}

// TestP2QuantileRejectsBadP documents the constructor contract.
func TestP2QuantileRejectsBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2Quantile(%v) did not panic", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}

// TestCDFPointsEdgeCases: Points returns nil for unusable inputs and spans
// exactly [min, max] otherwise.
func TestCDFPointsEdgeCases(t *testing.T) {
	if NewCDF(nil).Points(10) != nil {
		t.Fatal("Points on empty CDF must be nil")
	}
	if NewCDF([]float64{1, 2}).Points(1) != nil {
		t.Fatal("Points with n < 2 must be nil")
	}
	pts := NewCDF([]float64{5, 1, 9}).Points(3)
	if len(pts) != 3 || pts[0].Value != 1 || pts[2].Value != 9 {
		t.Fatalf("Points = %+v, want span [1, 9]", pts)
	}
	if pts[0].Cum != 0 || math.Abs(pts[1].Cum-0.5) > 1e-12 || pts[2].Cum != 1 {
		t.Fatalf("cumulative probabilities = %+v, want 0, 0.5, 1", pts)
	}
}
