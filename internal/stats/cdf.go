package stats

import (
	"fmt"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution function over a sample.
// The zero value is empty; construct with NewCDF.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample xs. The input is copied.
func NewCDF(xs []float64) *CDF {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// Len returns the number of samples backing the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x), i.e. the fraction of samples at or below x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the value at cumulative probability q. Out-of-range q
// is clamped to [0,1], matching Percentile's clamping semantics.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return percentileSorted(c.sorted, q*100)
}

// Points returns n evenly spaced (value, cumulative probability) pairs
// suitable for plotting the CDF curve. n must be at least 2.
func (c *CDF) Points(n int) []CDFPoint {
	if len(c.sorted) == 0 || n < 2 {
		return nil
	}
	pts := make([]CDFPoint, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		pts[i] = CDFPoint{Value: c.Quantile(q), Cum: q}
	}
	return pts
}

// CDFPoint is one point on an empirical CDF curve.
type CDFPoint struct {
	Value float64 // sample value
	Cum   float64 // cumulative probability in [0,1]
}

// FormatCDF renders CDF points as a fixed set of quantile rows, one per
// line, for textual figure output: "p10 value", "p50 value", ...
func FormatCDF(c *CDF, quantiles []float64, unit string) string {
	var b strings.Builder
	for _, q := range quantiles {
		fmt.Fprintf(&b, "p%-5.3g %.3f%s\n", q*100, c.Quantile(q), unit)
	}
	return b.String()
}

// Histogram counts samples into nbins equal-width bins over [min, max].
// Samples outside the range are clamped into the first/last bin.
type Histogram struct {
	Min, Max float64
	Counts   []int
	total    int
}

// NewHistogram creates a histogram with nbins bins spanning [min, max].
func NewHistogram(min, max float64, nbins int) *Histogram {
	if nbins < 1 {
		nbins = 1
	}
	if max <= min {
		max = min + 1
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	i := int((x - h.Min) / (h.Max - h.Min) * float64(n))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Summary holds running aggregate statistics without retaining samples.
// The zero value is ready to use.
type Summary struct {
	n        int
	sum      float64
	sumSq    float64
	min, max float64
}

// Add records one observation into the summary.
func (s *Summary) Add(x float64) {
	if s.n == 0 || x < s.min {
		s.min = x
	}
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n++
	s.sum += x
	s.sumSq += x * x
}

// N returns the number of recorded observations.
func (s *Summary) N() int { return s.n }

// Mean returns the mean of recorded observations, 0 when empty.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Sum returns the total of recorded observations.
func (s *Summary) Sum() float64 { return s.sum }

// Min returns the smallest recorded observation, 0 when empty.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest recorded observation, 0 when empty.
func (s *Summary) Max() float64 { return s.max }

// Var returns the population variance of recorded observations.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 { // numeric noise
		v = 0
	}
	return v
}
