// Package stats provides the small statistical toolkit used throughout the
// SmartOClock reproduction: percentiles, empirical CDFs, error metrics and
// running summaries.
//
// All functions operate on float64 slices and never mutate their inputs
// unless documented otherwise.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot produce a value from an
// empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Variance returns the population variance of xs, or 0 when fewer than two
// samples are present.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted computes the percentile of an already-sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentiles computes several percentiles of xs in one pass over a single
// sorted copy. The returned slice matches ps positionally.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, p := range ps {
		if p < 0 {
			p = 0
		}
		if p > 100 {
			p = 100
		}
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// P99 returns the 99th percentile of xs.
func P99(xs []float64) float64 {
	return Percentile(xs, 99)
}

// RMSE returns the root mean squared error between predictions and actuals.
// The two slices must have the same, non-zero length.
func RMSE(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) {
		return 0, fmt.Errorf("stats: RMSE length mismatch: %d vs %d", len(pred), len(actual))
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for i := range pred {
		d := pred[i] - actual[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred))), nil
}

// MeanError returns the mean signed error (pred - actual). A positive value
// means the predictor over-predicts on average; negative means it
// under-predicts. This is the per-entity metric behind the paper's Fig 15.
func MeanError(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) {
		return 0, fmt.Errorf("stats: MeanError length mismatch: %d vs %d", len(pred), len(actual))
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for i := range pred {
		sum += pred[i] - actual[i]
	}
	return sum / float64(len(pred)), nil
}

// MAE returns the mean absolute error between predictions and actuals.
func MAE(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) {
		return 0, fmt.Errorf("stats: MAE length mismatch: %d vs %d", len(pred), len(actual))
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for i := range pred {
		sum += math.Abs(pred[i] - actual[i])
	}
	return sum / float64(len(pred)), nil
}
