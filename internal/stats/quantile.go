package stats

import (
	"fmt"
	"sort"
)

// P2Quantile estimates a single quantile of a stream with O(1) memory using
// the P² algorithm (Jain & Chlamtac, 1985). The cluster emulation uses it
// to track per-deployment P99 latency over arbitrarily long runs without
// retaining samples.
type P2Quantile struct {
	p       float64
	n       int
	heights [5]float64
	pos     [5]float64
	want    [5]float64
	inc     [5]float64
	initial []float64
}

// NewP2Quantile creates an estimator for quantile p in (0,1).
// It panics for p outside (0,1) — a programming error.
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: quantile %v out of (0,1)", p))
	}
	q := &P2Quantile{p: p}
	q.pos = [5]float64{1, 2, 3, 4, 5}
	q.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	q.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q
}

// N returns the number of observations seen.
func (q *P2Quantile) N() int { return q.n }

// Add records one observation.
func (q *P2Quantile) Add(x float64) {
	q.n++
	if q.n <= 5 {
		q.initial = append(q.initial, x)
		if q.n == 5 {
			sort.Float64s(q.initial)
			copy(q.heights[:], q.initial)
			q.initial = nil
		}
		return
	}

	// Locate the cell containing x and adjust extreme markers.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < q.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := 0; i < 5; i++ {
		q.want[i] += q.inc[i]
	}

	// Adjust interior markers with parabolic interpolation, falling back
	// to linear when the parabola would violate ordering.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := q.parabolic(i, sign)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

func (q *P2Quantile) parabolic(i int, d float64) float64 {
	return q.heights[i] + d/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+d)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-d)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

func (q *P2Quantile) linear(i int, d float64) float64 {
	return q.heights[i] + d*(q.heights[i+int(d)]-q.heights[i])/(q.pos[i+int(d)]-q.pos[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the exact small-sample quantile.
func (q *P2Quantile) Value() float64 {
	if q.n == 0 {
		return 0
	}
	if q.n < 5 {
		sorted := append([]float64(nil), q.initial...)
		sort.Float64s(sorted)
		return percentileSorted(sorted, q.p*100)
	}
	return q.heights[2]
}

// Max returns the largest observation seen (exact).
func (q *P2Quantile) Max() float64 {
	if q.n == 0 {
		return 0
	}
	if q.n < 5 {
		m := q.initial[0]
		for _, v := range q.initial[1:] {
			if v > m {
				m = v
			}
		}
		return m
	}
	return q.heights[4]
}
