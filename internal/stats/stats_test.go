package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanSimple(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5, -1}); got != 3 {
		t.Fatalf("Sum = %v, want 3", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Fatalf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Fatalf("Max = %v", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("Min/Max of empty must be 0")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestVarianceSingleton(t *testing.T) {
	if got := Variance([]float64{5}); got != 0 {
		t.Fatalf("Variance singleton = %v, want 0", got)
	}
}

func TestPercentileExact(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Percentile(50) = %v, want 5", got)
	}
}

func TestPercentileClampsP(t *testing.T) {
	xs := []float64{1, 2, 3}
	if got := Percentile(xs, -5); got != 1 {
		t.Fatalf("clamped low percentile = %v", got)
	}
	if got := Percentile(xs, 150); got != 3 {
		t.Fatalf("clamped high percentile = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentilesMatchesPercentile(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7, 2}
	ps := []float64{0, 10, 50, 90, 99, 100}
	got := Percentiles(xs, ps...)
	for i, p := range ps {
		want := Percentile(xs, p)
		if !almostEqual(got[i], want, 1e-12) {
			t.Errorf("Percentiles[%v] = %v, want %v", p, got[i], want)
		}
	}
}

func TestMedianP99(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	if got := Median(xs); !almostEqual(got, 50.5, 1e-12) {
		t.Fatalf("Median = %v", got)
	}
	if got := P99(xs); !almostEqual(got, 99.01, 1e-9) {
		t.Fatalf("P99 = %v", got)
	}
}

func TestRMSE(t *testing.T) {
	pred := []float64{1, 2, 3}
	actual := []float64{1, 2, 3}
	got, err := RMSE(pred, actual)
	if err != nil || got != 0 {
		t.Fatalf("RMSE identical = %v, %v", got, err)
	}
	got, err = RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil || !almostEqual(got, math.Sqrt(12.5), 1e-12) {
		t.Fatalf("RMSE = %v, %v", got, err)
	}
}

func TestRMSEErrors(t *testing.T) {
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := RMSE(nil, nil); err != ErrEmpty {
		t.Fatalf("expected ErrEmpty, got %v", err)
	}
}

func TestMeanErrorSign(t *testing.T) {
	// Over-prediction is positive.
	got, err := MeanError([]float64{10, 10}, []float64{8, 8})
	if err != nil || got != 2 {
		t.Fatalf("MeanError = %v, %v", got, err)
	}
	got, err = MeanError([]float64{5}, []float64{9})
	if err != nil || got != -4 {
		t.Fatalf("MeanError under = %v, %v", got, err)
	}
}

func TestMAE(t *testing.T) {
	got, err := MAE([]float64{1, -1}, []float64{0, 0})
	if err != nil || got != 1 {
		t.Fatalf("MAE = %v, %v", got, err)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if got := c.At(0); got != 0 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := c.At(2); got != 0.5 {
		t.Fatalf("At(2) = %v", got)
	}
	if got := c.At(10); got != 1 {
		t.Fatalf("At(10) = %v", got)
	}
}

func TestCDFQuantileRoundTrip(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	c := NewCDF(xs)
	if got := c.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %v", got)
	}
	if got := c.Quantile(1); got != 5 {
		t.Fatalf("Quantile(1) = %v", got)
	}
	if got := c.Quantile(0.5); got != 3 {
		t.Fatalf("Quantile(0.5) = %v", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.Len() != 0 || c.At(1) != 0 || c.Quantile(0.5) != 0 {
		t.Fatal("empty CDF must return zeros")
	}
	if pts := c.Points(5); pts != nil {
		t.Fatal("empty CDF Points must be nil")
	}
}

func TestCDFPointsMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	pts := NewCDF(xs).Points(20)
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value {
			t.Fatalf("CDF points not monotonic at %d: %v < %v", i, pts[i].Value, pts[i-1].Value)
		}
		if pts[i].Cum <= pts[i-1].Cum {
			t.Fatalf("cumulative probs not increasing at %d", i)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("bin %d count = %d, want 1", i, c)
		}
	}
	if h.Total() != 10 {
		t.Fatalf("Total = %d", h.Total())
	}
	if got := h.Fraction(0); got != 0.1 {
		t.Fatalf("Fraction = %v", got)
	}
}

func TestHistogramClamps(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-100)
	h.Add(100)
	if h.Counts[0] != 1 || h.Counts[4] != 1 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
}

func TestHistogramDegenerateArgs(t *testing.T) {
	h := NewHistogram(5, 5, 0) // max<=min and nbins<1 both repaired
	h.Add(5)
	if h.Total() != 1 || len(h.Counts) != 1 {
		t.Fatalf("degenerate histogram not repaired: %+v", h)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 || s.Mean() != 5 || s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("summary: n=%d mean=%v min=%v max=%v", s.N(), s.Mean(), s.Min(), s.Max())
	}
	if got := s.Var(); !almostEqual(got, 4, 1e-9) {
		t.Fatalf("Var = %v, want 4", got)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.N() != 0 {
		t.Fatal("empty summary must be zeros")
	}
}

// Property: for any sample, percentiles are monotone non-decreasing in p and
// bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			if v < Min(xs)-1e-9 || v > Max(xs)+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RMSE >= |MeanError| (Jensen), and RMSE >= MAE never holds in
// general but RMSE >= MAE does hold... actually RMSE >= MAE always (power
// mean inequality). Check both.
func TestErrorMetricInequalities(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		pred := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				pred = append(pred, x)
			}
		}
		if len(pred) == 0 {
			return true
		}
		actual := make([]float64, len(pred)) // zeros
		rmse, err1 := RMSE(pred, actual)
		mae, err2 := MAE(pred, actual)
		me, err3 := MeanError(pred, actual)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return rmse+1e-9 >= mae && rmse+1e-9 >= math.Abs(me)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF.At is monotone and bounded in [0,1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		c := NewCDF(xs)
		prev := -1.0
		for q := -2.0; q <= 2.0; q += 0.25 {
			v := c.At(q)
			if v < 0 || v > 1 || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPercentile(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Percentile(xs, 99)
	}
}

func TestP2QuantilePanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewP2Quantile(1.5)
}

func TestP2QuantileSmallSampleExact(t *testing.T) {
	q := NewP2Quantile(0.5)
	if q.Value() != 0 {
		t.Fatal("empty estimator must be 0")
	}
	for _, x := range []float64{3, 1, 2} {
		q.Add(x)
	}
	if q.Value() != 2 {
		t.Fatalf("small-sample median = %v", q.Value())
	}
	if q.Max() != 3 {
		t.Fatalf("small-sample max = %v", q.Max())
	}
}

func TestP2QuantileAccuracyUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, p := range []float64{0.5, 0.9, 0.99} {
		q := NewP2Quantile(p)
		exact := make([]float64, 0, 50000)
		for i := 0; i < 50000; i++ {
			x := rng.Float64() * 100
			q.Add(x)
			exact = append(exact, x)
		}
		want := Percentile(exact, p*100)
		if got := q.Value(); math.Abs(got-want) > 2 { // 2% of range
			t.Fatalf("p=%v: estimate %v vs exact %v", p, got, want)
		}
		if q.N() != 50000 {
			t.Fatalf("N = %d", q.N())
		}
	}
}

func TestP2QuantileAccuracySkewed(t *testing.T) {
	// Latency-like distribution: lognormal body with a heavy tail.
	rng := rand.New(rand.NewSource(9))
	q := NewP2Quantile(0.99)
	exact := make([]float64, 0, 80000)
	for i := 0; i < 80000; i++ {
		x := math.Exp(rng.NormFloat64())
		q.Add(x)
		exact = append(exact, x)
	}
	want := Percentile(exact, 99)
	if rel := math.Abs(q.Value()-want) / want; rel > 0.1 {
		t.Fatalf("P99 estimate %v vs exact %v (rel %v)", q.Value(), want, rel)
	}
}

func TestP2QuantileMaxTracksExtremes(t *testing.T) {
	q := NewP2Quantile(0.9)
	rng := rand.New(rand.NewSource(2))
	maxSeen := 0.0
	for i := 0; i < 1000; i++ {
		x := rng.Float64()
		if x > maxSeen {
			maxSeen = x
		}
		q.Add(x)
	}
	if q.Max() != maxSeen {
		t.Fatalf("Max = %v, want %v", q.Max(), maxSeen)
	}
}

func TestFormatCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	out := FormatCDF(c, []float64{0.5, 0.99}, "W")
	if !strings.Contains(out, "p50") || !strings.Contains(out, "W") {
		t.Fatalf("FormatCDF output:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 2 {
		t.Fatalf("FormatCDF lines = %d", lines)
	}
}
