// Package predict implements the power/utilization prediction strategies
// SmartOClock evaluates for template creation (§IV-B, Fig 15):
//
//   - FlatMed:  a single constant, the median of all prior measurements
//   - FlatMax:  a single constant, the maximum of all prior measurements
//   - Weekly:   the raw measurement series from exactly one week earlier
//   - DailyMed: per-day aggregation — the median across the prior week's
//     days at the same time-of-day slot (SmartOClock's choice)
//   - DailyMax: per-day aggregation with the maximum
//
// All predictors are fitted on a history window and then queried at future
// instants; Evaluate computes the error metrics behind Fig 8 and Fig 15.
package predict

import (
	"fmt"
	"time"

	"smartoclock/internal/stats"
	"smartoclock/internal/timeseries"
)

// Predictor forecasts a scalar signal (rack power, server power, CPU
// utilization) at future instants after being fitted on history.
type Predictor interface {
	// Name returns the strategy name as used in the paper's Fig 15.
	Name() string
	// Fit trains the predictor on a history series. Fitting replaces any
	// previous state.
	Fit(history *timeseries.Series)
	// Predict returns the forecast value at ts. Predict on an unfitted
	// predictor returns 0.
	Predict(ts time.Time) float64
}

// FlatMed predicts the median of all history as a constant.
type FlatMed struct{ value float64 }

// Name implements Predictor.
func (*FlatMed) Name() string { return "FlatMed" }

// Fit implements Predictor.
func (p *FlatMed) Fit(h *timeseries.Series) { p.value = stats.Median(h.Values) }

// Predict implements Predictor.
func (p *FlatMed) Predict(time.Time) float64 { return p.value }

// FlatMax predicts the maximum of all history as a constant.
type FlatMax struct{ value float64 }

// Name implements Predictor.
func (*FlatMax) Name() string { return "FlatMax" }

// Fit implements Predictor.
func (p *FlatMax) Fit(h *timeseries.Series) { p.value = stats.Max(h.Values) }

// Predict implements Predictor.
func (p *FlatMax) Predict(time.Time) float64 { return p.value }

// Weekly predicts the raw measurement from exactly one week before the
// queried instant. It is sensitive to outliers in the source week (§V-B).
type Weekly struct{ history *timeseries.Series }

// Name implements Predictor.
func (*Weekly) Name() string { return "Weekly" }

// Fit implements Predictor.
func (p *Weekly) Fit(h *timeseries.Series) { p.history = h }

// Predict implements Predictor.
func (p *Weekly) Predict(ts time.Time) float64 {
	if p.history == nil {
		return 0
	}
	return p.history.At(ts.Add(-7 * 24 * time.Hour))
}

// Daily aggregates history into weekday/weekend day templates with a reduce
// function; DailyMed and DailyMax are its two instantiations.
type Daily struct {
	name     string
	reduce   timeseries.Reduce
	template *timeseries.WeekTemplate
}

// NewDailyMed returns the per-day-aggregation median predictor SmartOClock
// uses in production.
func NewDailyMed() *Daily { return &Daily{name: "DailyMed", reduce: timeseries.ReduceMedian} }

// NewDailyMax returns the per-day-aggregation maximum predictor.
func NewDailyMax() *Daily { return &Daily{name: "DailyMax", reduce: timeseries.ReduceMax} }

// Name implements Predictor.
func (p *Daily) Name() string { return p.name }

// Fit implements Predictor.
func (p *Daily) Fit(h *timeseries.Series) {
	p.template = timeseries.BuildWeekTemplate(h, p.reduce)
}

// Predict implements Predictor.
func (p *Daily) Predict(ts time.Time) float64 {
	if p.template == nil {
		return 0
	}
	return p.template.At(ts)
}

// Template returns the fitted week template, or nil before Fit.
func (p *Daily) Template() *timeseries.WeekTemplate { return p.template }

// All returns one fresh instance of every strategy, in the paper's Fig 15
// order.
func All() []Predictor {
	return []Predictor{&FlatMed{}, &FlatMax{}, &Weekly{}, NewDailyMed(), NewDailyMax()}
}

// Evaluation holds the error metrics of one predictor on one test window.
type Evaluation struct {
	Strategy string
	RMSE     float64 // root mean squared error (Fig 8)
	MeanErr  float64 // mean signed error, positive = over-prediction (Fig 15)
	MAE      float64
}

// Evaluate fits p on train and scores it against every sample of test.
func Evaluate(p Predictor, train, test *timeseries.Series) (Evaluation, error) {
	if test.Len() == 0 {
		return Evaluation{}, fmt.Errorf("predict: empty test window")
	}
	p.Fit(train)
	pred := make([]float64, test.Len())
	for i := range pred {
		pred[i] = p.Predict(test.TimeAt(i))
	}
	rmse, err := stats.RMSE(pred, test.Values)
	if err != nil {
		return Evaluation{}, err
	}
	me, err := stats.MeanError(pred, test.Values)
	if err != nil {
		return Evaluation{}, err
	}
	mae, err := stats.MAE(pred, test.Values)
	if err != nil {
		return Evaluation{}, err
	}
	return Evaluation{Strategy: p.Name(), RMSE: rmse, MeanErr: me, MAE: mae}, nil
}

// EvaluateAll scores every strategy on the same train/test split.
func EvaluateAll(train, test *timeseries.Series) ([]Evaluation, error) {
	out := make([]Evaluation, 0, 5)
	for _, p := range All() {
		ev, err := Evaluate(p, train, test)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}
