package predict

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"smartoclock/internal/timeseries"
)

// histStart is a Monday.
var histStart = time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)

// diurnal synthesizes a repeatable daily power pattern with optional noise
// and an optional outlier day.
func diurnal(days int, noise float64, outlierDay int, rng *rand.Rand) *timeseries.Series {
	s := timeseries.New(histStart, time.Hour)
	for d := 0; d < days; d++ {
		for h := 0; h < 24; h++ {
			v := 300 + 100*math.Sin(2*math.Pi*float64(h)/24)
			if noise > 0 {
				v += rng.NormFloat64() * noise
			}
			if d == outlierDay {
				v += 150 // unexpected event
			}
			s.Append(v)
		}
	}
	return s
}

func trainTest(days int, noise float64, outlierDay int) (train, test *timeseries.Series) {
	rng := rand.New(rand.NewSource(11))
	full := diurnal(days, noise, outlierDay, rng)
	split := histStart.Add(7 * 24 * time.Hour)
	return full.Slice(histStart, split), full.Slice(split, full.End())
}

func TestPredictorNames(t *testing.T) {
	want := []string{"FlatMed", "FlatMax", "Weekly", "DailyMed", "DailyMax"}
	ps := All()
	if len(ps) != len(want) {
		t.Fatalf("All() returned %d predictors", len(ps))
	}
	for i, p := range ps {
		if p.Name() != want[i] {
			t.Errorf("predictor %d = %q, want %q", i, p.Name(), want[i])
		}
	}
}

func TestUnfittedPredictorsReturnZero(t *testing.T) {
	for _, p := range All() {
		if got := p.Predict(histStart); got != 0 {
			t.Errorf("%s unfitted Predict = %v", p.Name(), got)
		}
	}
}

func TestFlatMedPredictsMedian(t *testing.T) {
	s := timeseries.FromValues(histStart, time.Hour, []float64{1, 2, 3, 4, 100})
	p := &FlatMed{}
	p.Fit(s)
	if got := p.Predict(histStart.Add(48 * time.Hour)); got != 3 {
		t.Fatalf("FlatMed = %v", got)
	}
}

func TestFlatMaxPredictsMax(t *testing.T) {
	s := timeseries.FromValues(histStart, time.Hour, []float64{1, 2, 100, 4})
	p := &FlatMax{}
	p.Fit(s)
	if got := p.Predict(histStart); got != 100 {
		t.Fatalf("FlatMax = %v", got)
	}
}

func TestWeeklyLooksBackOneWeek(t *testing.T) {
	train, _ := trainTest(14, 0, -1)
	p := &Weekly{}
	p.Fit(train)
	ts := histStart.Add(8*24*time.Hour + 9*time.Hour) // Tue week 2, 9:00
	want := train.At(ts.Add(-7 * 24 * time.Hour))
	if got := p.Predict(ts); got != want {
		t.Fatalf("Weekly = %v, want %v", got, want)
	}
}

func TestDailyMedPerfectOnNoiselessPattern(t *testing.T) {
	train, test := trainTest(14, 0, -1)
	ev, err := Evaluate(NewDailyMed(), train, test)
	if err != nil {
		t.Fatal(err)
	}
	if ev.RMSE > 1e-9 {
		t.Fatalf("DailyMed RMSE on noiseless pattern = %v", ev.RMSE)
	}
}

func TestDailyTemplateAccessor(t *testing.T) {
	p := NewDailyMed()
	if p.Template() != nil {
		t.Fatal("template before Fit must be nil")
	}
	train, _ := trainTest(14, 0, -1)
	p.Fit(train)
	if p.Template() == nil {
		t.Fatal("template after Fit must be set")
	}
}

// TestFig15Shape verifies the orderings the paper reports: DailyMed is the
// most accurate; FlatMax over-predicts (negative error in the paper's sign
// convention means predictions above actual — here positive MeanErr);
// FlatMed has large errors at the daily peak; Weekly suffers from outliers.
func TestFig15Shape(t *testing.T) {
	// Outlier on day 3 of the training week.
	train, test := trainTest(14, 5, 3)
	evs, err := EvaluateAll(train, test)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Evaluation{}
	for _, ev := range evs {
		byName[ev.Strategy] = ev
	}
	dm := byName["DailyMed"]
	for name, ev := range byName {
		if name == "DailyMed" {
			continue
		}
		if dm.RMSE > ev.RMSE+1e-9 {
			t.Errorf("DailyMed RMSE %.2f not best vs %s %.2f", dm.RMSE, name, ev.RMSE)
		}
	}
	if byName["FlatMax"].MeanErr <= 0 {
		t.Errorf("FlatMax must over-predict, MeanErr = %v", byName["FlatMax"].MeanErr)
	}
	if byName["FlatMed"].RMSE <= dm.RMSE {
		t.Errorf("FlatMed must be worse than DailyMed")
	}
	if byName["Weekly"].RMSE <= dm.RMSE {
		t.Errorf("Weekly (outlier-affected) must be worse than DailyMed: %v vs %v",
			byName["Weekly"].RMSE, dm.RMSE)
	}
	if byName["DailyMax"].MeanErr <= dm.MeanErr {
		t.Errorf("DailyMax must over-predict more than DailyMed")
	}
}

func TestDailyMedRobustToOutlierDay(t *testing.T) {
	// With an outlier day in training, DailyMed (median across 5 weekdays)
	// must ignore it while Weekly replays it.
	trainOut, test := trainTest(14, 0, 2)
	med, err := Evaluate(NewDailyMed(), trainOut, test)
	if err != nil {
		t.Fatal(err)
	}
	weekly, err := Evaluate(&Weekly{}, trainOut, test)
	if err != nil {
		t.Fatal(err)
	}
	if med.RMSE > 1e-9 {
		t.Fatalf("DailyMed must reject a single outlier day, RMSE = %v", med.RMSE)
	}
	if weekly.RMSE < 10 {
		t.Fatalf("Weekly must replay the outlier, RMSE = %v", weekly.RMSE)
	}
}

func TestEvaluateEmptyTest(t *testing.T) {
	train, _ := trainTest(14, 0, -1)
	empty := timeseries.New(histStart, time.Hour)
	if _, err := Evaluate(&FlatMed{}, train, empty); err == nil {
		t.Fatal("expected error on empty test window")
	}
}

func TestOCRecorderAndTemplate(t *testing.T) {
	rec := NewOCRecorder(histStart, time.Hour)
	// Two identical weekdays: 5 cores requested, 4 granted 9:00-17:00.
	for d := 0; d < 2; d++ {
		for h := 0; h < 24; h++ {
			if h >= 9 && h < 17 {
				rec.Record(5, 4)
			} else {
				rec.Record(0, 0)
			}
		}
	}
	if rec.Len() != 48 {
		t.Fatalf("Len = %d", rec.Len())
	}
	tpl := rec.Template()
	at := histStart.Add(7*24*time.Hour + 10*time.Hour) // next Monday 10:00
	if got := tpl.RequestedAt(at); got != 5 {
		t.Fatalf("RequestedAt = %v", got)
	}
	if got := tpl.GrantedAt(at); got != 4 {
		t.Fatalf("GrantedAt = %v", got)
	}
	night := histStart.Add(7*24*time.Hour + 3*time.Hour)
	if tpl.RequestedAt(night) != 0 {
		t.Fatal("no demand at night expected")
	}
}

func TestNilOCTemplateSafe(t *testing.T) {
	var tpl *OCTemplate
	if tpl.RequestedAt(histStart) != 0 || tpl.GrantedAt(histStart) != 0 {
		t.Fatal("nil template must return 0")
	}
}

func BenchmarkDailyMedFitPredict(b *testing.B) {
	train, test := trainTest(14, 5, -1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewDailyMed()
		p.Fit(train)
		for j := 0; j < test.Len(); j++ {
			p.Predict(test.TimeAt(j))
		}
	}
}

func TestOCRecorderSeriesAccessors(t *testing.T) {
	rec := NewOCRecorder(histStart, time.Hour)
	rec.Record(3, 2)
	if rec.Requested().Values[0] != 3 || rec.Granted().Values[0] != 2 {
		t.Fatalf("raw series: %v / %v", rec.Requested().Values, rec.Granted().Values)
	}
}
