package predict

import (
	"smartoclock/internal/stats"
	"smartoclock/internal/timeseries"
)

// PeakQuantile returns the q-quantile (q in (0,1]) of a week template's
// slot values — the predicted-peak statistic oversubscription admission
// compares against the provisioned budget. Kumbhare et al. provision
// against a high quantile of the predicted distribution rather than the
// absolute maximum so a single outlier slot does not forfeit the headroom
// the whole rack could otherwise harvest; the oversubscription policy here
// uses q = 0.98.
//
// Slots that no history sample contributed to are excluded: a template
// fitted on weekday-only history would otherwise dilute the peak with
// phantom zero-valued weekend slots. When no slot carries sample counts at
// all (synthetic templates such as timeseries.FlatWeek) the raw slot values
// are used, provided any is positive. The second return is false when the
// template is nil, unfitted, or carries no usable signal — callers must
// fall back to conservative (nameplate) admission, never trust a zero.
func PeakQuantile(t *timeseries.WeekTemplate, q float64) (float64, bool) {
	if t == nil || q <= 0 || q > 1 {
		return 0, false
	}
	var sampled, raw []float64
	anyPositive := false
	collect := func(d *timeseries.DayTemplate) {
		if d == nil {
			return
		}
		for i, v := range d.Slots {
			raw = append(raw, v)
			if v > 0 {
				anyPositive = true
			}
			if d.SampleCount(i) > 0 {
				sampled = append(sampled, v)
			}
		}
	}
	collect(t.Weekday)
	collect(t.Weekend)
	if len(sampled) > 0 {
		return stats.Percentile(sampled, 100*q), true
	}
	if len(raw) > 0 && anyPositive {
		return stats.Percentile(raw, 100*q), true
	}
	return 0, false
}
