package predict

import (
	"testing"
	"time"

	"smartoclock/internal/timeseries"
)

// buildPeakSeries returns a template fitted on d days of synthetic history
// where every day holds one spike of spikeWatts over a base of baseWatts.
func buildPeakTemplate(t *testing.T, days int, baseWatts, spikeWatts float64) *timeseries.WeekTemplate {
	t.Helper()
	start := time.Date(2023, 4, 3, 0, 0, 0, 0, time.UTC) // Monday
	step := 30 * time.Minute
	s := timeseries.New(start, step)
	perDay := int(24 * time.Hour / step)
	for d := 0; d < days; d++ {
		for i := 0; i < perDay; i++ {
			v := baseWatts
			if i == perDay/2 {
				v = spikeWatts
			}
			s.Append(v)
		}
	}
	return timeseries.BuildWeekTemplate(s, timeseries.ReduceMedian)
}

func TestPeakQuantileFindsSpike(t *testing.T) {
	tpl := buildPeakTemplate(t, 7, 100, 900)
	p, ok := PeakQuantile(tpl, 0.98)
	if !ok {
		t.Fatal("fitted template reported no signal")
	}
	if p <= 100 {
		t.Fatalf("PeakQuantile = %v, did not see above the 100 W base", p)
	}
	// The full max must bound the quantile.
	if max, _ := PeakQuantile(tpl, 1.0); p > max {
		t.Fatalf("q98 %v above q100 %v", p, max)
	}
}

func TestPeakQuantileQuantileDampensOutliers(t *testing.T) {
	tpl := buildPeakTemplate(t, 7, 100, 5000)
	p98, _ := PeakQuantile(tpl, 0.98)
	p100, _ := PeakQuantile(tpl, 1.0)
	if p98 >= p100 {
		t.Fatalf("q98 %v should sit below the single-slot outlier max %v", p98, p100)
	}
}

func TestPeakQuantileNoSignal(t *testing.T) {
	if _, ok := PeakQuantile(nil, 0.98); ok {
		t.Fatal("nil template reported a peak")
	}
	empty := timeseries.BuildWeekTemplate(timeseries.New(time.Unix(0, 0), time.Minute), timeseries.ReduceMedian)
	if _, ok := PeakQuantile(empty, 0.98); ok {
		t.Fatal("unfitted template reported a peak")
	}
	if _, ok := PeakQuantile(buildPeakTemplate(t, 7, 100, 900), 0); ok {
		t.Fatal("q=0 accepted")
	}
	if _, ok := PeakQuantile(buildPeakTemplate(t, 7, 100, 900), 1.5); ok {
		t.Fatal("q>1 accepted")
	}
}

func TestPeakQuantileFlatWeekFallback(t *testing.T) {
	// FlatWeek templates carry no sample counts; the raw slot values must
	// still yield the flat level rather than a spurious miss.
	p, ok := PeakQuantile(timeseries.FlatWeek(250, 30*time.Minute), 0.98)
	if !ok || p != 250 {
		t.Fatalf("FlatWeek peak = %v ok=%v, want 250", p, ok)
	}
}

func TestPeakQuantileExcludesPhantomSlots(t *testing.T) {
	// History covering only weekdays: weekend slots have no samples and
	// must not dilute the quantile with zeros.
	tpl := buildPeakTemplate(t, 5, 400, 500) // Mon-Fri only
	p, ok := PeakQuantile(tpl, 0.5)
	if !ok {
		t.Fatal("weekday-only template reported no signal")
	}
	if p < 400 {
		t.Fatalf("median %v dragged below the weekday base by unsampled weekend slots", p)
	}
}
