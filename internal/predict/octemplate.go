package predict

import (
	"time"

	"smartoclock/internal/timeseries"
)

// OCTemplate is a server's overclock template: how many cores requested and
// were granted overclocking at each time-of-day slot (§IV-C). The Global
// Overclocking Agent combines these with power templates to split rack
// headroom heterogeneously.
type OCTemplate struct {
	Requested *timeseries.WeekTemplate
	Granted   *timeseries.WeekTemplate
}

// RequestedAt returns the typical number of cores requesting overclocking
// at the time-of-day of ts.
func (t *OCTemplate) RequestedAt(ts time.Time) float64 {
	if t == nil || t.Requested == nil {
		return 0
	}
	return t.Requested.At(ts)
}

// GrantedAt returns the typical number of cores granted overclocking at the
// time-of-day of ts.
func (t *OCTemplate) GrantedAt(ts time.Time) float64 {
	if t == nil || t.Granted == nil {
		return 0
	}
	return t.Granted.At(ts)
}

// OCRecorder accumulates per-slot observations of overclocking demand and
// produces OCTemplates. Each Server Overclocking Agent runs one and
// periodically ships the resulting template to the gOA.
type OCRecorder struct {
	requested *timeseries.Series
	granted   *timeseries.Series
}

// NewOCRecorder creates a recorder whose observations start at start and
// arrive every step.
func NewOCRecorder(start time.Time, step time.Duration) *OCRecorder {
	return &OCRecorder{
		requested: timeseries.New(start, step),
		granted:   timeseries.New(start, step),
	}
}

// Record appends one observation: the number of cores that requested and
// that were granted overclocking during the current slot.
func (r *OCRecorder) Record(requested, granted int) {
	r.requested.Append(float64(requested))
	r.granted.Append(float64(granted))
}

// Len returns the number of recorded slots.
func (r *OCRecorder) Len() int { return r.requested.Len() }

// Requested returns the raw requested-cores series.
func (r *OCRecorder) Requested() *timeseries.Series { return r.requested }

// Granted returns the raw granted-cores series.
func (r *OCRecorder) Granted() *timeseries.Series { return r.granted }

// OCRecorderState is the serializable state of an OCRecorder.
type OCRecorderState struct {
	Requested *timeseries.Series `json:"requested"`
	Granted   *timeseries.Series `json:"granted"`
}

// Snapshot captures the recorded series (deep copies).
func (r *OCRecorder) Snapshot() *OCRecorderState {
	return &OCRecorderState{Requested: r.requested.Clone(), Granted: r.granted.Clone()}
}

// Restore replaces the recorded series from a snapshot (deep copies, so the
// snapshot stays independent of subsequent recording).
func (r *OCRecorder) Restore(st *OCRecorderState) {
	if st.Requested != nil {
		r.requested = st.Requested.Clone()
	}
	if st.Granted != nil {
		r.granted = st.Granted.Clone()
	}
}

// Template builds the overclock template from all recorded observations
// using per-day median aggregation, mirroring the power templates.
func (r *OCRecorder) Template() *OCTemplate {
	return &OCTemplate{
		Requested: timeseries.BuildWeekTemplate(r.requested, timeseries.ReduceMedian),
		Granted:   timeseries.BuildWeekTemplate(r.granted, timeseries.ReduceMedian),
	}
}
