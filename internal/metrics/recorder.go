package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"smartoclock/internal/timeseries"
)

// This file is the continuous half of the metrics layer: where Snapshot
// freezes a registry once at the end of a run, a Recorder samples it at a
// fixed simulation-time interval and accumulates one time series per metric
// series. The same determinism contract applies: sampling happens on the
// single simulation goroutine at sim-time boundaries, series are keyed and
// sorted by canonical identity, and per-shard recordings merge in
// shard-index order, so the recorded plane is byte-identical for any worker
// count.

// RecordedSeries is one metric series over the recording window.
//
// The per-interval meaning of Samples depends on the instrument:
//   - counter: the per-second rate over the interval (value delta divided
//     by the interval length) — the temporal view of a total;
//   - gauge: the level sampled at the interval's end;
//   - histogram: the per-second observation rate (count delta / interval).
//
// Histograms additionally keep per-interval deltas of every cumulative
// bucket plus the observation sum, which is what lets quantile series be
// computed after merging: bucket deltas sum exactly across shards, where
// pre-computed quantiles would not.
type RecordedSeries struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`

	Samples []float64 `json:"samples"`

	// Histogram-only fields. Buckets[i][j] is the interval-i delta of the
	// cumulative count at upper bound Uppers[j]; Sums[i] is the interval-i
	// delta of the observation sum. CountDeltas[i] is the raw (undivided)
	// observation count of interval i.
	Uppers      []float64  `json:"uppers,omitempty"`
	Buckets     [][]uint64 `json:"bucket_deltas,omitempty"`
	Sums        []float64  `json:"sum_deltas,omitempty"`
	CountDeltas []uint64   `json:"count_deltas,omitempty"`
}

// id reconstructs the canonical sort identity of the recorded series.
func (s *RecordedSeries) id() string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ls := make([]Label, len(keys))
	for i, k := range keys {
		ls[i] = Label{Key: k, Value: s.Labels[k]}
	}
	return seriesID(s.Name, ls)
}

// ID renders the canonical "name{k=v,...}" identity of the series.
func (s *RecordedSeries) ID() string { return s.id() }

// Quantile returns the per-interval q-quantile series of a recorded
// histogram, estimated Prometheus-style: linear interpolation inside the
// bucket containing the target rank, with the first bucket anchored at zero
// and ranks beyond the last finite bucket clamped to its upper bound.
// Intervals with no observations yield 0. Returns nil for non-histograms.
func (s *RecordedSeries) Quantile(q float64) []float64 {
	if s.Type != "histogram" {
		return nil
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	out := make([]float64, len(s.Buckets))
	for i, deltas := range s.Buckets {
		total := s.CountDeltas[i]
		if total == 0 {
			continue
		}
		rank := q * float64(total)
		var prevCum uint64
		prevUB := 0.0
		found := false
		for j, cum := range deltas {
			if float64(cum) >= rank {
				inBucket := cum - prevCum
				lo, hi := prevUB, s.Uppers[j]
				if inBucket == 0 {
					out[i] = hi
				} else {
					out[i] = lo + (hi-lo)*(rank-float64(prevCum))/float64(inBucket)
				}
				found = true
				break
			}
			prevCum = cum
			prevUB = s.Uppers[j]
		}
		if !found {
			// Rank falls in the +Inf bucket: clamp to the last finite bound.
			out[i] = s.Uppers[len(s.Uppers)-1]
		}
	}
	return out
}

// Recording is a set of recorded series over a shared fixed-interval
// timeline. Series are sorted by canonical identity and every Samples slice
// has the same length, so two recordings of the same run are byte-identical
// however they were sharded.
type Recording struct {
	Start  time.Time        `json:"start"`
	Step   time.Duration    `json:"step"`
	Series []RecordedSeries `json:"series"`
}

// Intervals returns the number of recorded intervals.
func (r *Recording) Intervals() int {
	if len(r.Series) == 0 {
		return 0
	}
	return len(r.Series[0].Samples)
}

// TimeAt returns the start instant of interval i.
func (r *Recording) TimeAt(i int) time.Time {
	return r.Start.Add(time.Duration(i) * r.Step)
}

// Find returns the recorded series with the given name and labels, or nil.
func (r *Recording) Find(name string, labels map[string]string) *RecordedSeries {
	want := RecordedSeries{Name: name, Labels: labels}
	id := want.id()
	for i := range r.Series {
		if r.Series[i].id() == id {
			return &r.Series[i]
		}
	}
	return nil
}

// ToSeries converts one recorded series' samples into a timeseries.Series
// on the recording's timeline.
func (r *Recording) ToSeries(s *RecordedSeries) *timeseries.Series {
	vals := make([]float64, len(s.Samples))
	copy(vals, s.Samples)
	return timeseries.FromValues(r.Start, r.Step, vals)
}

// Recorder samples a registry into a Recording. Like the registry it is
// single-goroutine: each parallel shard owns its own recorder, and the
// shard recordings are merged afterwards with MergeRecordings.
type Recorder struct {
	reg  *Registry
	rec  *Recording
	next time.Time
	prev *Snapshot
	// index maps series identity to its slot in rec.Series. New series may
	// appear mid-run (e.g. an agent instrumented after a restart); their
	// history is backfilled with zeros so every series shares the timeline.
	index map[string]int
}

// NewRecorder starts recording reg on a fixed step. The first sample is
// taken by the first Tick at or after start+step and covers [start,
// start+step); Tick is designed to be called once per simulation tick with
// the current sim time.
func NewRecorder(reg *Registry, start time.Time, step time.Duration) *Recorder {
	if step <= 0 {
		panic(fmt.Sprintf("metrics: non-positive recording step %v", step))
	}
	return &Recorder{
		reg:   reg,
		rec:   &Recording{Start: start, Step: step},
		next:  start.Add(step),
		prev:  &Snapshot{},
		index: make(map[string]int),
	}
}

// Tick samples the registry once for every interval boundary at or before
// now. Call it at the end of each simulation tick; boundaries between calls
// (a coarse-ticked harness) repeat the state observed at the call.
func (r *Recorder) Tick(now time.Time) {
	for !now.Before(r.next) {
		r.sample()
		r.next = r.next.Add(r.rec.Step)
	}
}

// sample appends one interval to every series.
func (r *Recorder) sample() {
	snap := r.reg.Snapshot()
	n := r.rec.Intervals()
	stepSecs := r.rec.Step.Seconds()

	prevByID := make(map[string]*Series, len(r.prev.Series))
	for i := range r.prev.Series {
		prevByID[r.prev.Series[i].id()] = &r.prev.Series[i]
	}

	for i := range snap.Series {
		sr := &snap.Series[i]
		id := sr.id()
		slot, ok := r.index[id]
		if !ok {
			rs := RecordedSeries{
				Name: sr.Name, Type: sr.Type, Labels: sr.Labels,
				Samples: make([]float64, n),
			}
			if sr.Type == "histogram" {
				rs.Uppers = append([]float64(nil), bucketUppers(sr)...)
				rs.Buckets = make([][]uint64, n)
				for k := range rs.Buckets {
					rs.Buckets[k] = make([]uint64, len(rs.Uppers))
				}
				rs.Sums = make([]float64, n)
				rs.CountDeltas = make([]uint64, n)
			}
			slot = len(r.rec.Series)
			r.rec.Series = append(r.rec.Series, rs)
			r.index[id] = slot
		}
		rs := &r.rec.Series[slot]
		prev := prevByID[id]
		switch sr.Type {
		case "counter":
			base := 0.0
			if prev != nil {
				base = prev.Value
			}
			rs.Samples = append(rs.Samples, (sr.Value-base)/stepSecs)
		case "gauge":
			rs.Samples = append(rs.Samples, sr.Value)
		case "histogram":
			var baseCount uint64
			baseSum := 0.0
			if prev != nil {
				baseCount = prev.Count
				baseSum = prev.Value
			}
			countDelta := sr.Count - baseCount
			rs.Samples = append(rs.Samples, float64(countDelta)/stepSecs)
			rs.CountDeltas = append(rs.CountDeltas, countDelta)
			rs.Sums = append(rs.Sums, sr.Value-baseSum)
			row := make([]uint64, len(rs.Uppers))
			for j := range rs.Uppers {
				var b uint64
				if j < len(sr.Buckets) {
					b = sr.Buckets[j].Count
				}
				if prev != nil && j < len(prev.Buckets) {
					b -= prev.Buckets[j].Count
				}
				row[j] = b
			}
			rs.Buckets = append(rs.Buckets, row)
		}
	}

	// Series that vanished from the snapshot cannot happen (registries never
	// drop instruments), so every recorded series either got a new sample
	// above or was just created; nothing to pad here. Sort order is restored
	// lazily in Recording().
	r.prev = snap
}

// bucketUppers extracts the finite upper bounds of a snapshot histogram.
func bucketUppers(sr *Series) []float64 {
	out := make([]float64, len(sr.Buckets))
	for i, b := range sr.Buckets {
		out[i] = b.LE
	}
	return out
}

// Recording returns the accumulated recording with series sorted by
// canonical identity. The returned value shares storage with the recorder;
// take it once, after the run.
func (r *Recorder) Recording() *Recording {
	sort.Slice(r.rec.Series, func(i, j int) bool {
		return r.rec.Series[i].id() < r.rec.Series[j].id()
	})
	// The index is invalidated by the sort; rebuild for any further Ticks.
	for i := range r.rec.Series {
		r.index[r.rec.Series[i].id()] = i
	}
	return r.rec
}

// MergeRecordings folds per-shard recordings into one, in argument order:
// counter and histogram deltas sum sample-wise, gauges take the last
// shard's level. All recordings must share the same start, step and
// interval count — they come from shards of one run sampling on the same
// schedule — and mismatches panic like Snapshot merging does. Nil entries
// are skipped; merging nothing returns nil.
func MergeRecordings(recs ...*Recording) *Recording {
	var out *Recording
	merged := make(map[string]*RecordedSeries)
	for _, rec := range recs {
		if rec == nil {
			continue
		}
		if out == nil {
			out = &Recording{Start: rec.Start, Step: rec.Step}
		} else if !rec.Start.Equal(out.Start) || rec.Step != out.Step {
			panic(fmt.Sprintf("metrics: merge recordings: timeline mismatch %v/%v vs %v/%v",
				rec.Start, rec.Step, out.Start, out.Step))
		}
		for i := range rec.Series {
			sr := &rec.Series[i]
			id := sr.id()
			prev, ok := merged[id]
			if !ok {
				// Deep-copy every reference field — including Labels and
				// Uppers, which a shallow copy would alias. A merged
				// recording that outlives its shards must not pin their
				// backing arrays (the merge result is often retained long
				// after the per-shard recordings are dropped).
				cp := *sr
				cp.Labels = cloneLabels(sr.Labels)
				cp.Uppers = append([]float64(nil), sr.Uppers...)
				cp.Samples = append([]float64(nil), sr.Samples...)
				cp.Sums = append([]float64(nil), sr.Sums...)
				cp.CountDeltas = append([]uint64(nil), sr.CountDeltas...)
				cp.Buckets = make([][]uint64, len(sr.Buckets))
				for k := range sr.Buckets {
					cp.Buckets[k] = append([]uint64(nil), sr.Buckets[k]...)
				}
				merged[id] = &cp
				continue
			}
			if len(prev.Samples) != len(sr.Samples) {
				panic(fmt.Sprintf("metrics: merge recordings %s: %d vs %d intervals", id, len(prev.Samples), len(sr.Samples)))
			}
			switch sr.Type {
			case "counter":
				for k := range prev.Samples {
					prev.Samples[k] += sr.Samples[k]
				}
			case "gauge":
				copy(prev.Samples, sr.Samples)
			case "histogram":
				if len(prev.Uppers) != len(sr.Uppers) {
					panic(fmt.Sprintf("metrics: merge recordings %s: bucket layout mismatch", id))
				}
				for k := range prev.Samples {
					prev.Samples[k] += sr.Samples[k]
					prev.Sums[k] += sr.Sums[k]
					prev.CountDeltas[k] += sr.CountDeltas[k]
					for j := range prev.Buckets[k] {
						prev.Buckets[k][j] += sr.Buckets[k][j]
					}
				}
			}
		}
	}
	if out == nil {
		return nil
	}
	ids := make([]string, 0, len(merged))
	for id := range merged {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out.Series = make([]RecordedSeries, 0, len(ids))
	for _, id := range ids {
		out.Series = append(out.Series, *merged[id])
	}
	return out
}

// recordingQuantiles are the quantile series exported for each histogram.
var recordingQuantiles = []float64{0.5, 0.99}

// WriteCSV writes the recording in long form, one row per (interval,
// series): interval start (RFC 3339), series identity, sample kind and
// value. Counters appear as `rate` rows, gauges as `level`, histograms as a
// `rate` row (observations/second) plus one `p50`/`p99` row each. Output is
// byte-deterministic: series are sorted and floats use shortest-exact
// formatting.
func (r *Recording) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "series", "kind", "value"}); err != nil {
		return err
	}
	n := r.Intervals()
	// Precompute histogram quantiles once per series, not per interval.
	type qset struct {
		name string
		vals []float64
	}
	quantiles := make(map[int][]qset)
	for si := range r.Series {
		sr := &r.Series[si]
		if sr.Type != "histogram" {
			continue
		}
		var qs []qset
		for _, q := range recordingQuantiles {
			qs = append(qs, qset{
				name: "p" + strconv.Itoa(int(q*100)),
				vals: sr.Quantile(q),
			})
		}
		quantiles[si] = qs
	}
	for i := 0; i < n; i++ {
		ts := r.TimeAt(i).UTC().Format(time.RFC3339)
		for si := range r.Series {
			sr := &r.Series[si]
			id := sr.id()
			kind := "level"
			if sr.Type != "gauge" {
				kind = "rate"
			}
			if err := cw.Write([]string{ts, id, kind, formatFloat(sr.Samples[i])}); err != nil {
				return err
			}
			for _, qs := range quantiles[si] {
				if err := cw.Write([]string{ts, id, qs.name, formatFloat(qs.vals[i])}); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the recording as indented JSON, suitable for
// `socmetrics series` and ReadRecording.
func (r *Recording) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadRecording parses a recording previously written by WriteJSON.
func ReadRecording(rd io.Reader) (*Recording, error) {
	var r Recording
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("metrics: decode recording: %w", err)
	}
	return &r, nil
}
