package metrics

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The golden tests snapshot the exposition formats byte-for-byte: any
// change to series ordering, float formatting or label escaping shows up as
// a readable diff against testdata/. Regenerate intentionally with:
//
//	go test ./internal/metrics -run Golden -update

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (rerun with -update if the change is intended):\n--- want ---\n%s\n--- got ---\n%s",
			path, want, got)
	}
}

// goldenRegistry builds a registry covering every instrument kind, labeled
// and unlabeled series, label escaping and non-integer floats.
func goldenRegistry() *Registry {
	r := NewRegistry()
	// Registered deliberately out of lexical order: the snapshot must sort.
	r.Counter("soa_rejects_total", L("server", "srv-1"), L("reason", "power")).Add(7)
	r.Counter("soa_rejects_total", L("server", "srv-0"), L("reason", "lifetime")).Add(2)
	r.Gauge("rack_power_watts", L("rack", "rack-0")).Set(1234.5625)
	r.Gauge("unlabeled_gauge").Set(0.30000000000000004) // classic float artifact
	r.Counter("escaped_total", L("path", `a\b"c`+"\n")).Inc()
	h := r.Histogram("rack_utilization", FractionBuckets, L("rack", "rack-0"))
	for _, v := range []float64{0.1, 0.55, 0.72, 0.91, 0.97, 1.2} {
		h.Observe(v)
	}
	return r
}

func TestWritePromGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().Snapshot().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.prom.golden", b.String())
}

func TestWriteJSONGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.json.golden", b.String())
}

func TestSnapshotOrderIndependent(t *testing.T) {
	// Same state, reversed registration order: identical bytes.
	a := goldenRegistry().Snapshot()
	r := NewRegistry()
	h := r.Histogram("rack_utilization", FractionBuckets, L("rack", "rack-0"))
	for _, v := range []float64{0.1, 0.55, 0.72, 0.91, 0.97, 1.2} {
		h.Observe(v)
	}
	r.Counter("escaped_total", L("path", `a\b"c`+"\n")).Inc()
	r.Gauge("unlabeled_gauge").Set(0.30000000000000004)
	r.Gauge("rack_power_watts", L("rack", "rack-0")).Set(1234.5625)
	r.Counter("soa_rejects_total", L("reason", "lifetime"), L("server", "srv-0")).Add(2)
	r.Counter("soa_rejects_total", L("reason", "power"), L("server", "srv-1")).Add(7)
	b := r.Snapshot()

	var wa, wb strings.Builder
	if err := a.WriteProm(&wa); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteProm(&wb); err != nil {
		t.Fatal(err)
	}
	if wa.String() != wb.String() {
		t.Errorf("registration order changed exposition bytes:\n--- a ---\n%s\n--- b ---\n%s", wa.String(), wb.String())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	snap := goldenRegistry().Snapshot()
	var b strings.Builder
	if err := snap.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	var b2 strings.Builder
	if err := back.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Error("JSON round trip is not byte-stable")
	}
}

func TestMergeSemantics(t *testing.T) {
	mk := func(counter, gauge float64, obsv []float64) *Snapshot {
		r := NewRegistry()
		r.Counter("c_total").Add(counter)
		r.Gauge("g").Set(gauge)
		h := r.Histogram("h", []float64{1, 10})
		for _, v := range obsv {
			h.Observe(v)
		}
		return r.Snapshot()
	}
	a := mk(3, 100, []float64{0.5, 5})
	b := mk(4, 200, []float64{20})
	m := Merge(a, nil, b)

	if got := m.Find("c_total", nil).Value; got != 7 {
		t.Errorf("merged counter = %v, want 7 (sum)", got)
	}
	if got := m.Find("g", nil).Value; got != 200 {
		t.Errorf("merged gauge = %v, want 200 (last)", got)
	}
	h := m.Find("h", nil)
	if h.Count != 3 || h.Value != 25.5 {
		t.Errorf("merged histogram count/sum = %d/%v, want 3/25.5", h.Count, h.Value)
	}
	if h.Buckets[0].Count != 1 || h.Buckets[1].Count != 2 {
		t.Errorf("merged cumulative buckets = %+v, want 1, 2", h.Buckets)
	}
}

func TestMergeDisjointSeriesPassThrough(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()
	ra.Counter("only_a_total").Add(1)
	rb.Counter("only_b_total").Add(2)
	m := Merge(ra.Snapshot(), rb.Snapshot())
	if m.Find("only_a_total", nil) == nil || m.Find("only_b_total", nil) == nil {
		t.Fatal("series present in one snapshot must pass through the merge")
	}
	if len(m.Series) != 2 {
		t.Fatalf("merged %d series, want 2", len(m.Series))
	}
}

func TestMergeLayoutMismatchPanics(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()
	ra.Histogram("h", []float64{1, 2})
	rb.Histogram("h", []float64{1, 2, 3})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched histogram layouts did not panic")
		}
	}()
	Merge(ra.Snapshot(), rb.Snapshot())
}

func TestSumByName(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", L("s", "a")).Add(1)
	r.Counter("x_total", L("s", "b")).Add(2)
	r.Counter("y_total").Add(100)
	if got := r.Snapshot().SumByName("x_total"); got != 3 {
		t.Fatalf("SumByName = %v, want 3", got)
	}
}

func TestDiff(t *testing.T) {
	mk := func(c float64, obsv int) *Snapshot {
		r := NewRegistry()
		r.Counter("c_total", L("s", "a")).Add(c)
		h := r.Histogram("h", []float64{1})
		for i := 0; i < obsv; i++ {
			h.Observe(0.5)
		}
		return r.Snapshot()
	}
	before, after := mk(3, 1), mk(10, 4)
	// A series only in after.
	after.Series = append(after.Series, Series{Name: "new_total", Type: "counter", Value: 5})

	entries := Diff(before, after)
	byName := map[string]DiffEntry{}
	for _, e := range entries {
		byName[e.Name] = e
	}
	if e := byName["c_total"]; e.Before != 3 || e.After != 10 || e.Delta != 7 {
		t.Errorf("counter diff = %+v, want 3 -> 10 (Δ7)", e)
	}
	if e := byName["h"]; e.Before != 1 || e.After != 4 || e.Delta != 3 {
		t.Errorf("histogram diff compares counts: %+v, want 1 -> 4 (Δ3)", e)
	}
	if e := byName["new_total"]; e.Before != 0 || e.Delta != 5 {
		t.Errorf("one-sided diff = %+v, want 0 -> 5", e)
	}
	if e := byName["c_total"]; e.Labels != `{s="a"}` {
		t.Errorf("rendered labels = %q", e.Labels)
	}
}
