package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Bucket is one cumulative histogram bucket with a finite upper bound. The
// +Inf bucket is implicit: its cumulative count equals Series.Count.
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Series is one frozen metric series. For counters and gauges Value holds
// the reading; for histograms Value holds the sum of observations and
// Count/Buckets hold the distribution.
type Series struct {
	Name    string            `json:"name"`
	Type    string            `json:"type"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`
	Count   uint64            `json:"count,omitempty"`
	Buckets []Bucket          `json:"buckets,omitempty"`
}

// id reconstructs the canonical sort identity of the series.
func (s *Series) id() string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ls := make([]Label, len(keys))
	for i, k := range keys {
		ls[i] = Label{Key: k, Value: s.Labels[k]}
	}
	return seriesID(s.Name, ls)
}

// Snapshot is an immutable, sorted copy of a registry's state, suitable for
// exposition, diffing, and deterministic cross-shard merging.
type Snapshot struct {
	Series []Series `json:"series"`
}

// Snapshot freezes the registry. Series are ordered by canonical identity
// (name, then sorted labels), so two registries holding the same values
// produce byte-identical snapshots regardless of registration order.
func (r *Registry) Snapshot() *Snapshot {
	ids := make([]string, 0, len(r.byID))
	for id := range r.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	snap := &Snapshot{Series: make([]Series, 0, len(ids))}
	for _, id := range ids {
		ins := r.byID[id]
		s := Series{Name: ins.name, Type: ins.kind.String()}
		if len(ins.labels) > 0 {
			s.Labels = make(map[string]string, len(ins.labels))
			for _, l := range ins.labels {
				s.Labels[l.Key] = l.Value
			}
		}
		switch ins.kind {
		case KindCounter:
			s.Value = ins.c.v
		case KindGauge:
			s.Value = ins.g.v
		case KindHistogram:
			h := ins.h
			s.Value = h.sum
			s.Count = h.count
			s.Buckets = make([]Bucket, len(h.uppers))
			var cum uint64
			for i, ub := range h.uppers {
				cum += h.counts[i]
				s.Buckets[i] = Bucket{LE: ub, Count: cum}
			}
		}
		snap.Series = append(snap.Series, s)
	}
	return snap
}

// formatFloat renders v with the shortest exact representation, matching
// the repo-wide convention for byte-stable float output.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue applies Prometheus label-value escaping.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promLabels renders {k="v",...} with keys sorted, plus an optional extra
// trailing label (used for histogram "le"). Returns "" for no labels.
func promLabels(labels map[string]string, extraKey, extraVal string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	writePair := func(k, v string) {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(v))
		b.WriteByte('"')
	}
	for _, k := range keys {
		writePair(k, labels[k])
	}
	if extraKey != "" {
		writePair(extraKey, extraVal)
	}
	if b.Len() == 0 {
		return ""
	}
	return "{" + b.String() + "}"
}

// WriteProm writes the snapshot in Prometheus text exposition format 0.0.4.
// Output is byte-deterministic: series are already sorted and floats use
// shortest-exact formatting.
func (s *Snapshot) WriteProm(w io.Writer) error {
	lastTyped := ""
	for i := range s.Series {
		sr := &s.Series[i]
		if sr.Name != lastTyped {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", sr.Name, sr.Type); err != nil {
				return err
			}
			lastTyped = sr.Name
		}
		switch sr.Type {
		case "histogram":
			for _, b := range sr.Buckets {
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					sr.Name, promLabels(sr.Labels, "le", formatFloat(b.LE)), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				sr.Name, promLabels(sr.Labels, "le", "+Inf"), sr.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
				sr.Name, promLabels(sr.Labels, "", ""), formatFloat(sr.Value)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n",
				sr.Name, promLabels(sr.Labels, "", ""), sr.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				sr.Name, promLabels(sr.Labels, "", ""), formatFloat(sr.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON writes the snapshot as indented JSON. encoding/json emits map
// keys sorted, so the output is byte-deterministic.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadSnapshot parses a snapshot previously written by WriteJSON.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("metrics: decode snapshot: %w", err)
	}
	return &s, nil
}

// Merge folds snapshots into one: counters and histograms sum, gauges take
// the last snapshot's value (shard order is the caller's deterministic
// order, so merge output is deterministic too). Series present in only some
// snapshots pass through. Mismatched histogram layouts for the same
// identity are a programming error and panic.
// cloneLabels returns an independent copy of a label map (nil stays nil).
func cloneLabels(labels map[string]string) map[string]string {
	if labels == nil {
		return nil
	}
	cp := make(map[string]string, len(labels))
	for k, v := range labels {
		cp[k] = v
	}
	return cp
}

func Merge(snaps ...*Snapshot) *Snapshot {
	merged := make(map[string]*Series)
	for _, snap := range snaps {
		if snap == nil {
			continue
		}
		for i := range snap.Series {
			sr := snap.Series[i]
			id := sr.id()
			prev, ok := merged[id]
			if !ok {
				// Deep-copy every reference field: the merged snapshot must
				// not alias input memory, or one retained merge result keeps
				// whole shard snapshots (and their backing buffers) alive.
				cp := sr
				cp.Labels = cloneLabels(sr.Labels)
				cp.Buckets = append([]Bucket(nil), sr.Buckets...)
				merged[id] = &cp
				continue
			}
			switch sr.Type {
			case "counter":
				prev.Value += sr.Value
			case "gauge":
				prev.Value = sr.Value
			case "histogram":
				if len(prev.Buckets) != len(sr.Buckets) {
					panic(fmt.Sprintf("metrics: merge %s: bucket layout mismatch", id))
				}
				prev.Value += sr.Value
				prev.Count += sr.Count
				for j := range prev.Buckets {
					prev.Buckets[j].Count += sr.Buckets[j].Count
				}
			}
		}
	}
	ids := make([]string, 0, len(merged))
	for id := range merged {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := &Snapshot{Series: make([]Series, 0, len(ids))}
	for _, id := range ids {
		out.Series = append(out.Series, *merged[id])
	}
	return out
}

// Find returns the series with the given name and labels, or nil.
func (s *Snapshot) Find(name string, labels map[string]string) *Series {
	want := Series{Name: name, Labels: labels}
	id := want.id()
	for i := range s.Series {
		if s.Series[i].id() == id {
			return &s.Series[i]
		}
	}
	return nil
}

// SumByName sums Value across all series with the given name (for
// histograms this sums observation sums; use SumCountByName for counts).
func (s *Snapshot) SumByName(name string) float64 {
	var sum float64
	for i := range s.Series {
		if s.Series[i].Name == name {
			sum += s.Series[i].Value
		}
	}
	return sum
}

// DiffEntry is one series compared across two snapshots.
type DiffEntry struct {
	Name   string
	Labels string // rendered {k="v",...}, "" when unlabeled
	Type   string
	Before float64 // counter/gauge value; histogram count
	After  float64
	Delta  float64
}

// Diff compares two snapshots series-by-series, returning one entry per
// identity in either snapshot, sorted by canonical identity. Counters and
// gauges compare Value; histograms compare observation Count. Missing
// series count as zero on the missing side.
func Diff(before, after *Snapshot) []DiffEntry {
	type half struct {
		sr  *Series
		val float64
	}
	reading := func(sr *Series) float64 {
		if sr.Type == "histogram" {
			return float64(sr.Count)
		}
		return sr.Value
	}
	all := make(map[string][2]half)
	collect := func(snap *Snapshot, side int) {
		if snap == nil {
			return
		}
		for i := range snap.Series {
			sr := &snap.Series[i]
			id := sr.id()
			pair := all[id]
			pair[side] = half{sr: sr, val: reading(sr)}
			all[id] = pair
		}
	}
	collect(before, 0)
	collect(after, 1)
	ids := make([]string, 0, len(all))
	for id := range all {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]DiffEntry, 0, len(ids))
	for _, id := range ids {
		pair := all[id]
		ref := pair[0].sr
		if ref == nil {
			ref = pair[1].sr
		}
		e := DiffEntry{
			Name:   ref.Name,
			Labels: promLabels(ref.Labels, "", ""),
			Type:   ref.Type,
			Before: pair[0].val,
			After:  pair[1].val,
		}
		e.Delta = e.After - e.Before
		if math.IsNaN(e.Delta) {
			e.Delta = 0
		}
		out = append(out, e)
	}
	return out
}
