// Package metrics is the simulation-time metrics registry behind the
// reproduction's observability layer. It deliberately mirrors the shape of
// production metric systems (counters, gauges, fixed-bucket histograms,
// name+label series identity, Prometheus text exposition) while staying
// inside the simulator's determinism contract: instruments carry no clocks
// and no goroutines, values advance only when the single-goroutine
// simulation calls them, and snapshots order series bytes-identically for
// any insertion order.
//
// Hot-path discipline: handles (*Counter, *Gauge, *Histogram) are resolved
// once at setup via the Registry; Inc/Add/Set/Observe on a handle is a
// plain field update with zero allocations (guarded by AllocsPerRun tests).
// Per-shard registries are merged in shard-index order (Merge), which keeps
// fleet-wide telemetry byte-identical across worker counts, exactly like
// the experiment reducers.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Label is one name=value pair of a series identity.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind distinguishes instrument types.
type Kind int

const (
	// KindCounter is a monotonically increasing total.
	KindCounter Kind = iota
	// KindGauge is a last-written value.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String returns the Prometheus type name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Counter is a monotonically increasing total. Not safe for concurrent use;
// like the simulation engine, it relies on single-goroutine discipline
// (each parallel shard owns its own Registry).
type Counter struct {
	v float64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v++ }

// Add adds delta (callers keep it non-negative; counters are totals).
func (c *Counter) Add(delta float64) { c.v += delta }

// Value returns the current total.
func (c *Counter) Value() float64 { return c.v }

// Gauge is a last-written instantaneous value.
type Gauge struct {
	v float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta float64) { g.v += delta }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram counts observations into a fixed layout of upper-bound buckets
// (plus an implicit +Inf bucket), tracking sum and count like a Prometheus
// histogram. Observe is allocation-free.
type Histogram struct {
	uppers []float64 // ascending upper bounds; +Inf implicit
	counts []uint64  // len(uppers)+1; last is the +Inf overflow bucket
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.uppers) && v > h.uppers[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Fixed bucket layouts shared across the instrumented subsystems, so the
// same metric is comparable between the fleet simulation, the cluster
// emulation and the chaos runs.
var (
	// FractionBuckets spans normalized fractions (rack utilization, duty
	// cycles): the interesting band is around the warning threshold.
	FractionBuckets = []float64{0.25, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0, 1.05}
	// WattBuckets spans server and rack draws in watts.
	WattBuckets = []float64{100, 200, 400, 800, 1600, 3200, 6400, 12800}
	// CoreBuckets spans per-request/overclocked core counts.
	CoreBuckets = []float64{1, 2, 4, 8, 16, 32, 64}
	// ByteBuckets spans message and frame sizes on the agent transports.
	ByteBuckets = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
	// LatencyBuckets spans RPC round-trip and delivery times in seconds.
	LatencyBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1}
)

// instrument is one registered series.
type instrument struct {
	name   string
	labels []Label // sorted by key
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds instruments keyed by name + sorted labels. Registering the
// same identity twice returns the same handle, so re-instrumented
// components (e.g. an sOA rebooted after a chaos crash) keep accumulating
// into the same series. Registration is setup-path; it may allocate.
// A Registry is not safe for concurrent use: each parallel shard owns its
// own and snapshots are merged afterwards.
type Registry struct {
	byID map[string]*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*instrument)}
}

// seriesID renders the canonical identity "name{k1=v1,k2=v2}" with labels
// sorted by key. It doubles as the snapshot sort key, which is what makes
// exposition byte-deterministic regardless of registration order.
func seriesID(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// sortedLabels returns a sorted copy of labels.
func sortedLabels(labels []Label) []Label {
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookup finds or creates the instrument for (name, labels, kind). It
// panics on an identity registered under a different kind — a programming
// error, caught at setup like an invalid hardware config.
func (r *Registry) lookup(name string, kind Kind, labels []Label) *instrument {
	if name == "" {
		panic("metrics: empty metric name")
	}
	ls := sortedLabels(labels)
	id := seriesID(name, ls)
	if ins, ok := r.byID[id]; ok {
		if ins.kind != kind {
			panic(fmt.Sprintf("metrics: %s registered as %v, requested as %v", id, ins.kind, kind))
		}
		return ins
	}
	ins := &instrument{name: name, labels: ls, kind: kind}
	r.byID[id] = ins
	return ins
}

// Counter returns the counter handle for name+labels, creating it at zero
// on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	ins := r.lookup(name, KindCounter, labels)
	if ins.c == nil {
		ins.c = &Counter{}
	}
	return ins.c
}

// Gauge returns the gauge handle for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	ins := r.lookup(name, KindGauge, labels)
	if ins.g == nil {
		ins.g = &Gauge{}
	}
	return ins.g
}

// Histogram returns the histogram handle for name+labels with the given
// fixed upper-bound bucket layout. Re-registering an existing histogram
// ignores the (necessarily identical) layout.
func (r *Registry) Histogram(name string, uppers []float64, labels ...Label) *Histogram {
	ins := r.lookup(name, KindHistogram, labels)
	if ins.h == nil {
		if len(uppers) == 0 {
			panic(fmt.Sprintf("metrics: histogram %s without buckets", name))
		}
		for i := 1; i < len(uppers); i++ {
			if uppers[i] <= uppers[i-1] {
				panic(fmt.Sprintf("metrics: histogram %s buckets not ascending", name))
			}
		}
		ins.h = &Histogram{
			uppers: append([]float64(nil), uppers...),
			counts: make([]uint64, len(uppers)+1),
		}
	}
	return ins.h
}

// Len returns the number of registered series.
func (r *Registry) Len() int { return len(r.byID) }
