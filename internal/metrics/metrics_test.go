package metrics

import (
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", L("server", "s0"))
	c.Inc()
	c.Inc()
	c.Add(3)
	if c.Value() != 5 {
		t.Fatalf("counter = %v, want 5", c.Value())
	}
	// Same identity, any label order: same handle.
	c2 := r.Counter("requests_total", L("server", "s0"))
	if c2 != c {
		t.Fatal("re-registration returned a different handle")
	}
	if r.Len() != 1 {
		t.Fatalf("registry holds %d series, want 1", r.Len())
	}
}

func TestLabelOrderIrrelevant(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", L("b", "2"), L("a", "1"))
	b := r.Counter("m", L("a", "1"), L("b", "2"))
	if a != b {
		t.Fatal("label order changed series identity")
	}
	if r.Len() != 1 {
		t.Fatalf("registry holds %d series, want 1", r.Len())
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("power_watts")
	g.Set(150)
	g.Add(-50)
	if g.Value() != 100 {
		t.Fatalf("gauge = %v, want 100", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cores", CoreBuckets)
	for _, v := range []float64{1, 2, 3, 64, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 170 {
		t.Fatalf("sum = %v, want 170", h.Sum())
	}
	s := r.Snapshot().Find("cores", nil)
	if s == nil {
		t.Fatal("histogram series missing from snapshot")
	}
	// Cumulative: le=1 -> 1, le=2 -> 2, le=4 -> 3 (3 lands in (2,4]),
	// le=64 -> 4; the 100 lives only in +Inf (== Count).
	wantCum := map[float64]uint64{1: 1, 2: 2, 4: 3, 8: 3, 16: 3, 32: 3, 64: 4}
	for _, b := range s.Buckets {
		if b.Count != wantCum[b.LE] {
			t.Errorf("bucket le=%v cumulative = %d, want %d", b.LE, b.Count, wantCum[b.LE])
		}
	}
	if s.Count != 5 {
		t.Fatalf("+Inf cumulative (Count) = %d, want 5", s.Count)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("registering the same identity under a different kind did not panic")
		}
	}()
	r.Gauge("m")
}

func TestBadHistogramLayoutPanics(t *testing.T) {
	for name, uppers := range map[string][]float64{
		"empty":         {},
		"not ascending": {1, 3, 2},
		"duplicate":     {1, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bucket layout did not panic", name)
				}
			}()
			NewRegistry().Histogram("m", uppers)
		}()
	}
}

func TestEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty metric name did not panic")
		}
	}()
	NewRegistry().Counter("")
}

// The hot-path discipline: instrument updates must be allocation-free so
// instrumented per-tick loops cost a pointer test and a float update, never
// GC pressure that would skew the benchmarked simulations.

func TestCounterIncAllocFree(t *testing.T) {
	c := NewRegistry().Counter("m")
	if allocs := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(2) }); allocs != 0 {
		t.Fatalf("Counter.Inc/Add allocates %.1f objects per run, want 0", allocs)
	}
}

func TestGaugeSetAllocFree(t *testing.T) {
	g := NewRegistry().Gauge("m")
	if allocs := testing.AllocsPerRun(1000, func() { g.Set(1.5); g.Add(-0.5) }); allocs != 0 {
		t.Fatalf("Gauge.Set/Add allocates %.1f objects per run, want 0", allocs)
	}
}

func TestHistogramObserveAllocFree(t *testing.T) {
	h := NewRegistry().Histogram("m", WattBuckets)
	v := 0.0
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		v += 37.5 // cycle across buckets including +Inf
		if v > 20000 {
			v = 0
		}
	}); allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f objects per run, want 0", allocs)
	}
}
