package metrics

import (
	"runtime"
	"testing"
	"time"
)

// The observed fleet path merges thousands of per-shard snapshots and
// recordings, then drops the shards and retains only the merged result. A
// shallow copy of any reference field (Labels, Uppers, Samples, ...) would
// keep every shard's memory reachable through the merge output — these
// tests pin the deep-copy contract.

func TestMergeDoesNotAliasInputs(t *testing.T) {
	in := &Snapshot{Series: []Series{
		{
			Name: "caps_total", Type: "counter",
			Labels: map[string]string{"rack": "r0"},
			Value:  3,
		},
		{
			Name: "tick_ms", Type: "histogram",
			Labels: map[string]string{"rack": "r0"},
			Value:  10, Count: 4,
			Buckets: []Bucket{{LE: 1, Count: 1}, {LE: 5, Count: 3}},
		},
	}}
	merged := Merge(in)
	if len(merged.Series) != 2 {
		t.Fatalf("merged %d series, want 2", len(merged.Series))
	}
	// Mutating the input after the merge must not change the output.
	in.Series[0].Labels["rack"] = "mutated"
	in.Series[1].Buckets[0].Count = 99
	for _, sr := range merged.Series {
		if got := sr.Labels["rack"]; got != "r0" {
			t.Errorf("%s: merged labels alias input: rack = %q", sr.Name, got)
		}
	}
	for _, sr := range merged.Series {
		if sr.Type == "histogram" && sr.Buckets[0].Count != 1 {
			t.Errorf("merged buckets alias input: count = %d", sr.Buckets[0].Count)
		}
	}
}

func TestMergeRecordingsDoesNotAliasInputs(t *testing.T) {
	start := time.Unix(0, 0).UTC()
	in := &Recording{Start: start, Step: time.Minute, Series: []RecordedSeries{
		{
			Name: "tick_ms", Type: "histogram",
			Labels:      map[string]string{"rack": "r0"},
			Samples:     []float64{1, 2},
			Uppers:      []float64{1, 5},
			Buckets:     [][]uint64{{1, 0}, {0, 1}},
			Sums:        []float64{0.5, 4},
			CountDeltas: []uint64{1, 1},
		},
	}}
	merged := MergeRecordings(in)
	if len(merged.Series) != 1 {
		t.Fatalf("merged %d series, want 1", len(merged.Series))
	}
	in.Series[0].Labels["rack"] = "mutated"
	in.Series[0].Uppers[0] = -1
	in.Series[0].Samples[0] = -1
	in.Series[0].Buckets[0][0] = 99
	in.Series[0].Sums[0] = -1
	in.Series[0].CountDeltas[0] = 99
	sr := merged.Series[0]
	if sr.Labels["rack"] != "r0" {
		t.Errorf("merged labels alias input: rack = %q", sr.Labels["rack"])
	}
	if sr.Uppers[0] != 1 {
		t.Errorf("merged uppers alias input: %v", sr.Uppers[0])
	}
	if sr.Samples[0] != 1 || sr.Buckets[0][0] != 1 || sr.Sums[0] != 0.5 || sr.CountDeltas[0] != 1 {
		t.Errorf("merged samples alias input: %+v", sr)
	}
}

// TestMergeRecordingsReleasesShardBuffers is the bytes-retained regression
// test: a merged recording whose series are subslices of huge shard
// buffers must not keep those buffers alive once the shards are dropped.
func TestMergeRecordingsReleasesShardBuffers(t *testing.T) {
	const shardBuf = 1 << 22 // 4M float64 = 32 MiB per shard backing array
	const shards = 4
	start := time.Unix(0, 0).UTC()

	mkShard := func(i int) *Recording {
		// The recorded series views only the first 8 samples, but its
		// backing array — like a shard arena would — is 32 MiB.
		backing := make([]float64, shardBuf)
		for j := range backing {
			backing[j] = float64(i + j)
		}
		uppers := make([]float64, shardBuf)
		uppers[0], uppers[1] = 1, 5
		return &Recording{Start: start, Step: time.Minute, Series: []RecordedSeries{
			{
				Name: "tick_ms", Type: "histogram",
				Labels:      map[string]string{"shard": string(rune('a' + i))},
				Samples:     backing[:8:8],
				Uppers:      uppers[:2], // subslice aliasing the huge array
				Buckets:     [][]uint64{{1, 0}, {0, 1}, {1, 1}, {0, 0}, {1, 0}, {0, 1}, {1, 1}, {0, 0}},
				Sums:        backing[8:16:16],
				CountDeltas: []uint64{1, 1, 1, 1, 1, 1, 1, 1},
			},
		}}
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	var merged *Recording
	func() {
		recs := make([]*Recording, shards)
		for i := range recs {
			recs[i] = mkShard(i)
		}
		merged = MergeRecordings(recs...)
	}()

	runtime.GC()
	runtime.ReadMemStats(&after)
	retained := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	// The shard backings total shards * 2 * 32 MiB. The merged recording
	// itself is tiny; allow 8 MiB of slack for allocator noise.
	const budget = 8 << 20
	if retained > budget {
		t.Errorf("merge retained %d bytes of shard buffers (budget %d): merged output aliases shard memory", retained, budget)
	}
	if len(merged.Series) != shards {
		t.Fatalf("merged %d series, want %d", len(merged.Series), shards)
	}
	if merged.Series[0].Samples[0] != 0 {
		t.Fatalf("merged sample corrupted: %v", merged.Series[0].Samples[0])
	}
}
