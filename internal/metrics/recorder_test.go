package metrics

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// TestRecorderCounterRates pins the temporal semantics of counters: each
// interval records the per-second rate of the delta, not the running total.
func TestRecorderCounterRates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs_total")
	rec := NewRecorder(reg, t0, 10*time.Second)

	c.Add(5)
	rec.Tick(t0.Add(10 * time.Second)) // interval 0: 5 in 10s = 0.5/s
	c.Add(20)
	rec.Tick(t0.Add(20 * time.Second)) // interval 1: 20 in 10s = 2/s
	rec.Tick(t0.Add(30 * time.Second)) // interval 2: idle = 0/s

	r := rec.Recording()
	s := r.Find("reqs_total", nil)
	if s == nil {
		t.Fatal("series missing")
	}
	want := []float64{0.5, 2, 0}
	if len(s.Samples) != len(want) {
		t.Fatalf("samples = %v, want %v", s.Samples, want)
	}
	for i, w := range want {
		if s.Samples[i] != w {
			t.Errorf("interval %d: rate = %v, want %v", i, s.Samples[i], w)
		}
	}
}

// TestRecorderGaugeLevels pins gauge semantics: the level at each interval
// boundary, including repeats when the harness ticks coarser than the
// recording step.
func TestRecorderGaugeLevels(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("power_watts")
	rec := NewRecorder(reg, t0, 10*time.Second)

	g.Set(100)
	rec.Tick(t0.Add(10 * time.Second))
	g.Set(250)
	// One coarse tick spanning two boundaries: both sample the same level.
	rec.Tick(t0.Add(30 * time.Second))

	s := rec.Recording().Find("power_watts", nil)
	want := []float64{100, 250, 250}
	for i, w := range want {
		if s.Samples[i] != w {
			t.Errorf("interval %d: level = %v, want %v", i, s.Samples[i], w)
		}
	}
}

// TestRecorderHistogramQuantiles pins the per-interval quantile estimation:
// bucket deltas per interval, Prometheus-style interpolation, clamping at
// the top finite bound, and zeros for empty intervals.
func TestRecorderHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", []float64{1, 2, 4})
	rec := NewRecorder(reg, t0, 10*time.Second)

	// Interval 0: 4 obs spread evenly through (0,1] and (1,2].
	h.Observe(0.5)
	h.Observe(1.0)
	h.Observe(1.5)
	h.Observe(2.0)
	rec.Tick(t0.Add(10 * time.Second))
	// Interval 1: empty.
	rec.Tick(t0.Add(20 * time.Second))
	// Interval 2: everything beyond the last finite bucket.
	h.Observe(100)
	h.Observe(200)
	rec.Tick(t0.Add(30 * time.Second))

	s := rec.Recording().Find("lat_seconds", nil)
	if s == nil {
		t.Fatal("series missing")
	}
	// Observation rates: 4/10s, 0, 2/10s.
	wantRates := []float64{0.4, 0, 0.2}
	for i, w := range wantRates {
		if s.Samples[i] != w {
			t.Errorf("interval %d: obs rate = %v, want %v", i, s.Samples[i], w)
		}
	}
	p50 := s.Quantile(0.5)
	// Interval 0: rank 2 of 4 falls exactly at the first bucket's
	// cumulative count → interpolates to its upper bound 1.
	if p50[0] != 1 {
		t.Errorf("interval 0 p50 = %v, want 1", p50[0])
	}
	if p50[1] != 0 {
		t.Errorf("empty interval p50 = %v, want 0", p50[1])
	}
	// Interval 2: all mass in +Inf; clamp to last finite bound.
	if p50[2] != 4 {
		t.Errorf("+Inf interval p50 = %v, want 4 (clamped)", p50[2])
	}
	if got := s.Quantile(0.99)[2]; got != 4 {
		t.Errorf("+Inf interval p99 = %v, want 4 (clamped)", got)
	}
}

// TestRecorderMidRunSeries pins zero-backfill: a series first touched in a
// later interval still spans the full timeline.
func TestRecorderMidRunSeries(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("early_total").Inc()
	rec := NewRecorder(reg, t0, time.Second)
	rec.Tick(t0.Add(time.Second))

	// New series appears after the first interval (e.g. a component booted
	// mid-run by the chaos harness).
	reg.Counter("late_total").Add(2)
	rec.Tick(t0.Add(2 * time.Second))

	r := rec.Recording()
	late := r.Find("late_total", nil)
	if late == nil {
		t.Fatal("late series missing")
	}
	want := []float64{0, 2}
	for i, w := range want {
		if late.Samples[i] != w {
			t.Errorf("late interval %d = %v, want %v", i, late.Samples[i], w)
		}
	}
	if n := r.Intervals(); n != 2 {
		t.Fatalf("intervals = %d, want 2", n)
	}
	// Sorted by canonical identity.
	if r.Series[0].Name != "early_total" || r.Series[1].Name != "late_total" {
		t.Errorf("series not sorted: %s, %s", r.Series[0].Name, r.Series[1].Name)
	}
}

// shardRecording simulates one shard's workload: a counter, a labeled
// gauge, and a histogram ticked over three intervals.
func shardRecording(shard int) *Recording {
	reg := NewRegistry()
	c := reg.Counter("work_total", L("shard", "s")) // same identity across shards
	g := reg.Gauge("level")
	h := reg.Histogram("dist", []float64{1, 10})
	rec := NewRecorder(reg, t0, time.Second)
	for i := 0; i < 3; i++ {
		c.Add(float64(shard + i))
		g.Set(float64(10*shard + i))
		h.Observe(float64(shard))
		rec.Tick(t0.Add(time.Duration(i+1) * time.Second))
	}
	return rec.Recording()
}

// TestMergeRecordings pins shard-order merge semantics: counters and
// histogram deltas sum sample-wise, gauges take the last shard's level.
func TestMergeRecordings(t *testing.T) {
	a, b := shardRecording(1), shardRecording(2)
	m := MergeRecordings(a, b)
	c := m.Find("work_total", map[string]string{"shard": "s"})
	// Interval i: (1+i) + (2+i) per second.
	want := []float64{3, 5, 7}
	for i, w := range want {
		if c.Samples[i] != w {
			t.Errorf("merged counter interval %d = %v, want %v", i, c.Samples[i], w)
		}
	}
	g := m.Find("level", nil)
	// Gauge: last shard (shard 2) wins.
	wantG := []float64{20, 21, 22}
	for i, w := range wantG {
		if g.Samples[i] != w {
			t.Errorf("merged gauge interval %d = %v, want %v", i, g.Samples[i], w)
		}
	}
	h := m.Find("dist", nil)
	for i := range h.CountDeltas {
		if h.CountDeltas[i] != 2 {
			t.Errorf("merged histogram interval %d count = %d, want 2", i, h.CountDeltas[i])
		}
	}

	// Byte-determinism of the merged export: merge order only affects
	// gauges, which we re-merge in the same order here.
	var b1, b2 bytes.Buffer
	if err := MergeRecordings(a, b).WriteCSV(&b1); err != nil {
		t.Fatal(err)
	}
	if err := MergeRecordings(shardRecording(1), shardRecording(2)).WriteCSV(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("merged CSV not reproducible")
	}
}

// TestMergeRecordingsTimelineMismatch pins that shards recording on
// different schedules are a programming error.
func TestMergeRecordingsTimelineMismatch(t *testing.T) {
	a := shardRecording(1)
	reg := NewRegistry()
	rec := NewRecorder(reg, t0, 2*time.Second)
	rec.Tick(t0.Add(2 * time.Second))
	b := rec.Recording()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on timeline mismatch")
		}
	}()
	MergeRecordings(a, b)
}

// TestMergeRecordingsIntervalMismatch pins the second mismatch class: same
// timeline, but one shard sampled more intervals than the other — a sign
// the harness ticked the shards unevenly, never a recoverable state.
func TestMergeRecordingsIntervalMismatch(t *testing.T) {
	a := shardRecording(1) // 3 intervals

	reg := NewRegistry()
	reg.Counter("work_total", L("shard", "s")).Add(1)
	rec := NewRecorder(reg, t0, time.Second)
	rec.Tick(t0.Add(time.Second)) // 1 interval, same start/step
	b := rec.Recording()

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on interval-count mismatch")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "intervals") {
			t.Errorf("panic %q should name the interval mismatch", msg)
		}
	}()
	MergeRecordings(a, b)
}

// TestMergeRecordingsEmptyShards pins the degenerate inputs: merging
// nothing (or only nils) is nil, and a shard that recorded no series — an
// idle worker — merges as a no-op rather than poisoning the timeline.
func TestMergeRecordingsEmptyShards(t *testing.T) {
	if m := MergeRecordings(); m != nil {
		t.Errorf("merge of nothing = %+v, want nil", m)
	}
	if m := MergeRecordings(nil, nil); m != nil {
		t.Errorf("merge of nils = %+v, want nil", m)
	}

	empty := &Recording{Start: t0, Step: time.Second}
	a := shardRecording(1)
	m := MergeRecordings(empty, a, nil, empty)
	if m == nil {
		t.Fatal("merge with empty shards = nil")
	}
	if len(m.Series) != len(a.Series) {
		t.Fatalf("merged series = %d, want %d", len(m.Series), len(a.Series))
	}
	c := m.Find("work_total", map[string]string{"shard": "s"})
	if c == nil || c.Samples[0] != a.Find("work_total", map[string]string{"shard": "s"}).Samples[0] {
		t.Error("empty shards must not perturb the survivor's samples")
	}

	// An empty first shard must still pin the timeline for mismatch checks.
	late := &Recording{Start: t0.Add(time.Hour), Step: time.Second}
	defer func() {
		if recover() == nil {
			t.Error("expected panic: empty first recording still fixes the timeline")
		}
	}()
	MergeRecordings(empty, late, a)
}

// TestMergeRecordingsSingleSampleHistogram pins the smallest histogram
// case end to end: one interval, one observation per shard, merged and
// exported. Quantiles interpolate inside the only populated bucket and the
// CSV export stays byte-deterministic.
func TestMergeRecordingsSingleSampleHistogram(t *testing.T) {
	shard := func(v float64) *Recording {
		reg := NewRegistry()
		reg.Histogram("lat", []float64{1, 2, 4}).Observe(v)
		rec := NewRecorder(reg, t0, time.Second)
		rec.Tick(t0.Add(time.Second))
		return rec.Recording()
	}

	single := shard(0.5)
	s := single.Find("lat", nil)
	if s.CountDeltas[0] != 1 {
		t.Fatalf("single-sample count = %d, want 1", s.CountDeltas[0])
	}
	// Rank 0.5 of 1 observation interpolates to half the (0,1] bucket.
	if got := s.Quantile(0.5)[0]; got != 0.5 {
		t.Errorf("single-sample p50 = %v, want 0.5", got)
	}
	if got := s.Quantile(1)[0]; got != 1 {
		t.Errorf("single-sample p100 = %v, want bucket bound 1", got)
	}

	m := MergeRecordings(single, shard(3))
	ms := m.Find("lat", nil)
	if ms.CountDeltas[0] != 2 {
		t.Fatalf("merged count = %d, want 2", ms.CountDeltas[0])
	}
	// One obs in (0,1], one in (2,4]: rank 1 lands exactly on the first
	// bucket's cumulative count → its upper bound.
	if got := ms.Quantile(0.5)[0]; got != 1 {
		t.Errorf("merged p50 = %v, want 1", got)
	}

	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"time,series,kind,value",
		"2026-01-01T00:00:00Z,lat{},rate,2",
		"2026-01-01T00:00:00Z,lat{},p50,1",
		"2026-01-01T00:00:00Z,lat{},p99,3.96",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("CSV mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRecordingRoundTrip pins WriteJSON/ReadRecording as a lossless pair.
func TestRecordingRoundTrip(t *testing.T) {
	orig := shardRecording(3)
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecording(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := orig.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("round trip changed recording:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !got.Start.Equal(orig.Start) || got.Step != orig.Step {
		t.Errorf("timeline lost: %v/%v vs %v/%v", got.Start, got.Step, orig.Start, orig.Step)
	}
}

// TestRecordingWriteCSV pins the long-format layout and deterministic
// series ordering, including quantile rows for histograms.
func TestRecordingWriteCSV(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total").Add(10)
	reg.Gauge("b_level").Set(7)
	reg.Histogram("c_dist", []float64{1, 2}).Observe(1.5)
	rec := NewRecorder(reg, t0, 10*time.Second)
	rec.Tick(t0.Add(10 * time.Second))
	var buf bytes.Buffer
	if err := rec.Recording().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"time,series,kind,value",
		"2026-01-01T00:00:00Z,a_total{},rate,1",
		"2026-01-01T00:00:00Z,b_level{},level,7",
		"2026-01-01T00:00:00Z,c_dist{},rate,0.1",
		"2026-01-01T00:00:00Z,c_dist{},p50,1.5",
		"2026-01-01T00:00:00Z,c_dist{},p99,1.99",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("CSV mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRecordingToSeries pins the bridge into the timeseries package.
func TestRecordingToSeries(t *testing.T) {
	r := shardRecording(1)
	s := r.Find("level", nil)
	ts := r.ToSeries(s)
	if ts.Step != r.Step || !ts.Start.Equal(r.Start) {
		t.Fatalf("timeline mismatch: %v/%v", ts.Start, ts.Step)
	}
	if got := ts.At(r.TimeAt(2)); got != s.Samples[2] {
		t.Errorf("At = %v, want %v", got, s.Samples[2])
	}
}

// TestLockedRegistry exercises the concurrent wrapper under the race
// detector: parallel writers plus a scraper.
func TestLockedRegistry(t *testing.T) {
	lk := NewLocked()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				reg := lk.Lock()
				reg.Counter("ops_total").Inc()
				lk.Unlock()
				lk.Do(func(r *Registry) { r.Gauge("depth").Set(float64(j)) })
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			lk.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	snap := lk.Snapshot()
	if got := snap.SumByName("ops_total"); got != 400 {
		t.Errorf("ops_total = %v, want 400", got)
	}
}
