package metrics

import "sync"

// Locked wraps a Registry in a mutex for the live telemetry plane, where
// transport goroutines and the HTTP scraper touch the same instruments.
// The deterministic experiments never need this — their registries are
// single-goroutine by construction — so the lock lives in a wrapper rather
// than on every Inc.
//
// Usage pattern: hold the lock across a batch of updates
//
//	reg := lk.Lock()
//	reg.Counter("transport_sends_total").Inc()
//	lk.Unlock()
//
// and scrape with Snapshot(), which locks internally.
type Locked struct {
	mu  sync.Mutex
	reg *Registry
}

// NewLocked returns a Locked wrapper around a fresh registry.
func NewLocked() *Locked {
	return &Locked{reg: NewRegistry()}
}

// Lock acquires the mutex and returns the underlying registry. The caller
// must call Unlock when done and must not retain the registry (or handles
// resolved from it for unlocked use) past the Unlock.
func (l *Locked) Lock() *Registry {
	l.mu.Lock()
	return l.reg
}

// Unlock releases the mutex.
func (l *Locked) Unlock() { l.mu.Unlock() }

// Snapshot freezes the registry under the lock.
func (l *Locked) Snapshot() *Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reg.Snapshot()
}

// Do runs fn with the registry held under the lock — convenient for
// instrumentation sites that update several handles at once.
func (l *Locked) Do(fn func(*Registry)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fn(l.reg)
}
