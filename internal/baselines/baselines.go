// Package baselines defines the systems Table I compares SmartOClock
// against (§V-B) as configuration variants of the Server Overclocking
// Agent:
//
//   - Central: an oracle with a global, instantaneous view of rack power
//     that can precisely decide whether a request will cause capping;
//   - NaiveOClock: grants every request, no budgets, even split on caps;
//   - NoFeedback: enforces per-server budgets but never explores beyond;
//   - NoWarning: explores beyond budgets but ignores warning messages,
//     reverting only on actual capping events;
//   - SmartOClock: the full system.
package baselines

import (
	"fmt"

	"smartoclock/internal/core"
)

// System identifies one comparison system.
type System int

const (
	// Central is the global-view oracle.
	Central System = iota
	// NaiveOClock grants all requests.
	NaiveOClock
	// NoFeedback never explores beyond assigned budgets.
	NoFeedback
	// NoWarning explores but ignores warnings.
	NoWarning
	// SmartOClock is the full system.
	SmartOClock
)

// String returns the system name as printed in Table I.
func (s System) String() string {
	switch s {
	case Central:
		return "Central"
	case NaiveOClock:
		return "NaiveOClock"
	case NoFeedback:
		return "NoFeedback"
	case NoWarning:
		return "NoWarning"
	case SmartOClock:
		return "SmartOClock"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// All returns the systems in Table I's row order.
func All() []System {
	return []System{Central, NaiveOClock, NoFeedback, NoWarning, SmartOClock}
}

// RackOracle answers whether a rack can absorb extra watts right now —
// the global view only Central has.
type RackOracle func(extraWatts float64) bool

// SOAConfig derives the sOA configuration for a system from a base config.
// For Central, oracle supplies the global admission check.
func SOAConfig(s System, base core.SOAConfig, oracle RackOracle) core.SOAConfig {
	cfg := base
	switch s {
	case Central:
		cfg.NoExplore = true // the oracle needs no local exploration
		cfg.AdmitOverride = func(req core.Request, delta float64) bool {
			if oracle == nil {
				return false
			}
			return oracle(delta)
		}
	case NaiveOClock:
		cfg.Naive = true
	case NoFeedback:
		cfg.NoExplore = true
	case NoWarning:
		cfg.IgnoreWarnings = true
	case SmartOClock:
		// Full behaviour: defaults.
	}
	return cfg
}
