package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"smartoclock/internal/causal"
	"smartoclock/internal/metrics"
	"smartoclock/internal/obs"
	"smartoclock/internal/store"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestRingTail(t *testing.T) {
	r := NewRing(3)
	if got := r.Tail(5); len(got) != 0 {
		t.Fatalf("empty ring tail = %v", got)
	}
	for i := 0; i < 5; i++ {
		r.Append(obs.Event{Kind: fmt.Sprintf("e%d", i)})
	}
	if r.Len() != 3 || r.Total() != 5 {
		t.Fatalf("len=%d total=%d, want 3/5", r.Len(), r.Total())
	}
	got := r.Tail(10)
	want := []string{"e2", "e3", "e4"}
	if len(got) != len(want) {
		t.Fatalf("tail = %+v, want %v", got, want)
	}
	for i, w := range want {
		if got[i].Kind != w {
			t.Errorf("tail[%d] = %s, want %s", i, got[i].Kind, w)
		}
	}
	if got := r.Tail(2); len(got) != 2 || got[0].Kind != "e3" || got[1].Kind != "e4" {
		t.Errorf("tail(2) = %+v, want e3,e4", got)
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(4)
	r.Append(obs.Event{Kind: "a"}, obs.Event{Kind: "b"})
	got := r.Tail(10)
	if len(got) != 2 || got[0].Kind != "a" || got[1].Kind != "b" {
		t.Fatalf("partial tail = %+v", got)
	}
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(16)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t)

	// Empty until the harness publishes.
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK || body != "" {
		t.Fatalf("pre-publish /metrics = %d %q", code, body)
	}

	reg := metrics.NewRegistry()
	reg.Counter("rack_cap_events_total", metrics.L("rack", "r0")).Add(3)
	reg.Gauge("rack_power_watts", metrics.L("rack", "r0")).Set(6400)
	s.PublishSnapshot(reg.Snapshot())

	code, body = get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"# TYPE rack_cap_events_total counter",
		`rack_cap_events_total{rack="r0"} 3`,
		`rack_power_watts{rack="r0"} 6400`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestStatez(t *testing.T) {
	s, ts := newTestServer(t)

	// Before any publish the zero StateInfo serves: no checkpoint path, zero
	// writes.
	code, body := get(t, ts.URL+"/statez")
	if code != http.StatusOK {
		t.Fatalf("pre-publish /statez status = %d", code)
	}
	var zero store.StateInfo
	if err := json.Unmarshal([]byte(body), &zero); err != nil {
		t.Fatalf("pre-publish /statez not JSON: %v\n%s", err, body)
	}
	if zero.Writes != 0 || zero.CheckpointPath != "" {
		t.Fatalf("pre-publish state = %+v, want zero", zero)
	}

	want := store.StateInfo{
		CheckpointPath: "/var/run/soc/state.json",
		LastSavedAt:    t0.Add(5 * time.Minute),
		LastBytes:      4096,
		Writes:         7,
		RestoredFrom:   "/var/run/soc/old.json",
		RestoredAt:     t0,
	}
	s.PublishState(want)

	code, body = get(t, ts.URL+"/statez")
	if code != http.StatusOK {
		t.Fatalf("/statez status = %d", code)
	}
	var got store.StateInfo
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("/statez not JSON: %v\n%s", err, body)
	}
	if got != want {
		t.Fatalf("/statez = %+v, want %+v", got, want)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
}

func TestTraceTail(t *testing.T) {
	s, ts := newTestServer(t)
	var events []obs.Event
	for i := 0; i < 20; i++ {
		events = append(events, obs.Event{
			Time:      t0.Add(time.Duration(i) * time.Second),
			Component: obs.Rack, Kind: "cap", Value: float64(i),
		})
	}
	s.PublishEvents(events)

	// Default n=100 clamps to the ring capacity (16).
	code, body := get(t, ts.URL+"/trace/tail")
	if code != http.StatusOK {
		t.Fatalf("/trace/tail status = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 16 {
		t.Fatalf("tail lines = %d, want ring cap 16", len(lines))
	}
	if !strings.Contains(lines[len(lines)-1], `"value":19`) {
		t.Errorf("last tail line is not the newest event: %s", lines[len(lines)-1])
	}

	code, body = get(t, ts.URL+"/trace/tail?n=3")
	if code != http.StatusOK {
		t.Fatalf("?n=3 status = %d", code)
	}
	if lines := strings.Split(strings.TrimSpace(body), "\n"); len(lines) != 3 {
		t.Fatalf("tail?n=3 lines = %d", len(lines))
	}

	if code, _ := get(t, ts.URL+"/trace/tail?n=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad n status = %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/trace/tail?n=-1"); code != http.StatusBadRequest {
		t.Errorf("negative n status = %d, want 400", code)
	}
}

// TestTraceTailEdges covers the request-bound edge cases: n beyond
// MaxTailRequest and values that overflow int must be rejected with 400,
// never silently clamped, while the boundary value itself is accepted.
func TestTraceTailEdges(t *testing.T) {
	s, ts := newTestServer(t)
	s.PublishEvents([]obs.Event{{Component: obs.Rack, Kind: "cap"}})

	reject := []string{
		fmt.Sprint(MaxTailRequest + 1), // just past the cap
		"1000000000",                   // absurd but parseable
		"9223372036854775807",          // max int64
		"92233720368547758080",         // overflows int64 (Atoi errors)
		"18446744073709551616",         // overflows uint64 too
		"0",
		"-9223372036854775808",
		"+1e9", // float syntax is not an integer
	}
	for _, n := range reject {
		code, body := get(t, ts.URL+"/trace/tail?n="+n)
		if code != http.StatusBadRequest {
			t.Errorf("n=%s status = %d, want 400", n, code)
		}
		if !strings.Contains(body, fmt.Sprint(MaxTailRequest)) {
			t.Errorf("n=%s error %q does not state the bound", n, body)
		}
	}

	// The documented maximum is itself valid and clamps to what the ring
	// holds.
	code, body := get(t, ts.URL+fmt.Sprintf("/trace/tail?n=%d", MaxTailRequest))
	if code != http.StatusOK {
		t.Fatalf("n=max status = %d, want 200", code)
	}
	if lines := strings.Split(strings.TrimSpace(body), "\n"); len(lines) != 1 {
		t.Fatalf("n=max returned %d events, ring holds 1", len(lines))
	}
}

// TestTraceTailComponentFilter covers the server-side ?component= filter:
// filtering happens over the full held window (not the post-truncation
// tail), multiple names combine as a union, and unknown names are 400s
// naming the valid set.
func TestTraceTailComponentFilter(t *testing.T) {
	s, ts := newTestServer(t)
	var events []obs.Event
	for i := 0; i < 5; i++ {
		events = append(events,
			obs.Event{Time: t0.Add(time.Duration(2*i) * time.Second), Component: obs.Rack, Kind: "cap"},
			obs.Event{Time: t0.Add(time.Duration(2*i+1) * time.Second), Component: obs.SOA, Kind: "grant"},
		)
	}
	s.PublishEvents(events)

	code, body := get(t, ts.URL+"/trace/tail?component=rack")
	if code != http.StatusOK {
		t.Fatalf("?component=rack status = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 5 {
		t.Fatalf("rack-only tail = %d lines, want 5", len(lines))
	}
	for _, l := range lines {
		if !strings.Contains(l, `"component":"rack"`) {
			t.Errorf("rack filter leaked: %s", l)
		}
	}

	// The filter applies before the tail cut: asking for 2 rack events must
	// return the 2 newest rack events, not whatever survives in the last 2
	// slots of the mixed window.
	code, body = get(t, ts.URL+"/trace/tail?component=rack&n=2")
	if code != http.StatusOK {
		t.Fatalf("rack n=2 status = %d", code)
	}
	if lines := strings.Split(strings.TrimSpace(body), "\n"); len(lines) != 2 {
		t.Fatalf("rack n=2 = %d lines", len(lines))
	}

	// Union of components.
	code, body = get(t, ts.URL+"/trace/tail?component=rack,soa")
	if code != http.StatusOK {
		t.Fatalf("rack,soa status = %d", code)
	}
	if lines := strings.Split(strings.TrimSpace(body), "\n"); len(lines) != 10 {
		t.Fatalf("rack,soa tail = %d lines, want 10", len(lines))
	}

	code, body = get(t, ts.URL+"/trace/tail?component=nonsense")
	if code != http.StatusBadRequest {
		t.Fatalf("unknown component status = %d, want 400", code)
	}
	if !strings.Contains(body, "nonsense") || !strings.Contains(body, "rack") {
		t.Errorf("unknown-component error %q should name the bad value and the valid set", body)
	}
}

// TestTraceTailSpanFilter covers ?span=: an event matches when the span is
// its own or its parent, and a malformed span is a 400.
func TestTraceTailSpanFilter(t *testing.T) {
	s, ts := newTestServer(t)
	s.PublishEvents([]obs.Event{
		{Time: t0, Component: obs.SOA, Kind: "request", Span: 0xabc},
		{Time: t0.Add(time.Second), Component: obs.SOA, Kind: "grant", Span: 0xdef, Parent: 0xabc},
		{Time: t0.Add(2 * time.Second), Component: obs.Rack, Kind: "cap", Span: 0x123},
	})

	code, body := get(t, ts.URL+"/trace/tail?span=0000000000000abc")
	if code != http.StatusOK {
		t.Fatalf("?span status = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 {
		t.Fatalf("span filter = %d lines, want request+child grant", len(lines))
	}
	if code, _ := get(t, ts.URL+"/trace/tail?span=zzz"); code != http.StatusBadRequest {
		t.Errorf("bad span status = %d, want 400", code)
	}

	// Filters compose: span 0xabc AND component rack matches nothing.
	code, body = get(t, ts.URL+"/trace/tail?span=0000000000000abc&component=rack")
	if code != http.StatusOK {
		t.Fatalf("composed filter status = %d", code)
	}
	if strings.TrimSpace(body) != "" {
		t.Errorf("composed filter should be empty, got %q", body)
	}
}

func provRecord(span, parent causal.SpanID, site, verdict string, at time.Time) causal.Record {
	return causal.Record{
		Span: span, Parent: parent, Time: at,
		Kind: causal.KindDecision, Component: "soa", Site: site, Verdict: verdict,
	}
}

// TestExplain covers the /explain endpoint: usage and parse 400s, a 404
// for an unheld span, and a 200 whose chain reads root-first with the
// decision's children attached.
func TestExplain(t *testing.T) {
	s, ts := newTestServer(t)
	s.PublishProvenance([]causal.Record{
		provRecord(0xa, 0, "wi.request", "-", t0),
		provRecord(0xb, 0xa, "soa.admit", "grant", t0.Add(time.Second)),
		provRecord(0xc, 0xb, "soa.session", "stop", t0.Add(2*time.Second)),
	})

	if code, body := get(t, ts.URL+"/explain"); code != http.StatusBadRequest || !strings.Contains(body, "usage") {
		t.Errorf("missing span = %d %q, want 400 usage", code, body)
	}
	if code, _ := get(t, ts.URL+"/explain?span=xyz"); code != http.StatusBadRequest {
		t.Errorf("bad span = %d, want 400", code)
	}
	if code, body := get(t, ts.URL+"/explain?span=00000000000000ff"); code != http.StatusNotFound ||
		!strings.Contains(body, "00000000000000ff") {
		t.Errorf("unheld span = %d %q, want 404 naming the span", code, body)
	}

	code, body := get(t, ts.URL+"/explain?span=000000000000000b")
	if code != http.StatusOK {
		t.Fatalf("/explain status = %d: %s", code, body)
	}
	var ex Explanation
	if err := json.Unmarshal([]byte(body), &ex); err != nil {
		t.Fatalf("/explain not JSON: %v\n%s", err, body)
	}
	if ex.Record.Site != "soa.admit" || ex.Record.Verdict != "grant" {
		t.Errorf("record = %+v, want the admit decision", ex.Record)
	}
	if len(ex.Chain) != 2 || ex.Chain[0].Site != "wi.request" || ex.Chain[1].Site != "soa.admit" {
		t.Errorf("chain should read root-first request->admit, got %+v", ex.Chain)
	}
	if len(ex.Children) != 1 || ex.Children[0].Site != "soa.session" {
		t.Errorf("children = %+v, want the session stop", ex.Children)
	}
	if ex.Held != 3 || ex.Total != 3 {
		t.Errorf("held/total = %d/%d, want 3/3", ex.Held, ex.Total)
	}
}

// TestExplainRecent covers the span-discovery path: /explain?recent=N
// lists the newest held records oldest-first, and out-of-range N is a 400.
func TestExplainRecent(t *testing.T) {
	s, ts := newTestServer(t)
	s.PublishProvenance([]causal.Record{
		provRecord(0xa, 0, "wi.request", "-", t0),
		provRecord(0xb, 0xa, "soa.admit", "grant", t0.Add(time.Second)),
		provRecord(0xc, 0xb, "soa.session", "stop", t0.Add(2*time.Second)),
	})

	code, body := get(t, ts.URL+"/explain?recent=2")
	if code != http.StatusOK {
		t.Fatalf("?recent status = %d: %s", code, body)
	}
	var rr RecentRecords
	if err := json.Unmarshal([]byte(body), &rr); err != nil {
		t.Fatalf("?recent not JSON: %v\n%s", err, body)
	}
	if len(rr.Records) != 2 || rr.Records[0].Site != "soa.admit" || rr.Records[1].Site != "soa.session" {
		t.Errorf("recent = %+v, want the 2 newest oldest-first", rr.Records)
	}
	if rr.Held != 3 || rr.Total != 3 {
		t.Errorf("held/total = %d/%d, want 3/3", rr.Held, rr.Total)
	}

	for _, bad := range []string{"0", "-1", "bogus", fmt.Sprint(MaxTailRequest + 1)} {
		if code, _ := get(t, ts.URL+"/explain?recent="+bad); code != http.StatusBadRequest {
			t.Errorf("recent=%s status = %d, want 400", bad, code)
		}
	}
}

// TestExplainWindowEviction verifies the bounded record ring reports an
// aged-out window honestly: Held < Total and the chain stops where the
// ancestor fell out.
func TestExplainWindowEviction(t *testing.T) {
	s := NewServer(4)
	s.prov = NewRecordRing(2)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	s.PublishProvenance([]causal.Record{
		provRecord(0xa, 0, "wi.request", "-", t0),
		provRecord(0xb, 0xa, "soa.admit", "grant", t0.Add(time.Second)),
		provRecord(0xc, 0xb, "soa.session", "stop", t0.Add(2*time.Second)),
	})

	// 0xa was evicted by the 2-slot ring.
	if code, _ := get(t, ts.URL+"/explain?span=000000000000000a"); code != http.StatusNotFound {
		t.Errorf("evicted span = %d, want 404", code)
	}
	code, body := get(t, ts.URL+"/explain?span=000000000000000c")
	if code != http.StatusOK {
		t.Fatalf("/explain status = %d", code)
	}
	var ex Explanation
	if err := json.Unmarshal([]byte(body), &ex); err != nil {
		t.Fatal(err)
	}
	if ex.Held != 2 || ex.Total != 3 {
		t.Errorf("held/total = %d/%d, want 2/3", ex.Held, ex.Total)
	}
	if len(ex.Chain) != 2 || ex.Chain[0].Site != "soa.admit" {
		t.Errorf("chain should stop at the held admit, got %+v", ex.Chain)
	}
}

// TestRecordRing exercises the provenance ring directly: unbounded growth
// at cap 0, overwrite at capacity, oldest-first unwrap.
func TestRecordRing(t *testing.T) {
	r := NewRecordRing(0)
	for i := 1; i <= 3; i++ {
		r.Append(causal.Record{Span: causal.SpanID(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("unbounded ring len = %d", r.Len())
	}

	b := NewRecordRing(2)
	for i := 1; i <= 5; i++ {
		b.Append(causal.Record{Span: causal.SpanID(i)})
	}
	recs := b.Records()
	if len(recs) != 2 || recs[0].Span != 4 || recs[1].Span != 5 {
		t.Fatalf("bounded ring = %+v, want spans 4,5 oldest-first", recs)
	}
}

// TestMount verifies extra planes share the telemetry listener and do not
// shadow the built-in endpoints.
func TestMount(t *testing.T) {
	s := NewServer(4)
	s.Mount("/api/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		fmt.Fprint(w, "mounted")
	}))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	if code, body := get(t, ts.URL+"/api/v1/anything"); code != http.StatusTeapot || body != "mounted" {
		t.Fatalf("mounted subtree = %d %q", code, body)
	}
	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz after mount = %d %q", code, body)
	}
}

func TestPprofIndex(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d (goroutine profile missing)", code)
	}
}

// TestStartClose exercises the real listener path used by soccluster.
func TestStartClose(t *testing.T) {
	s := NewServer(0)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	code, body := get(t, "http://"+addr+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("live /healthz = %d %q", code, body)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still reachable after Close")
	}
}

// TestConcurrentPublishAndScrape gives the race detector publisher/scraper
// interleavings: a harness goroutine publishing snapshots and events while
// HTTP clients scrape.
func TestConcurrentPublishAndScrape(t *testing.T) {
	s, ts := newTestServer(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			reg := metrics.NewRegistry()
			reg.Counter("ticks_total").Add(float64(i))
			s.PublishSnapshot(reg.Snapshot())
			s.PublishEvents([]obs.Event{{Component: obs.Rack, Kind: "tick", Value: float64(i)}})
		}
	}()
	for i := 0; i < 20; i++ {
		if code, _ := get(t, ts.URL+"/metrics"); code != http.StatusOK {
			t.Fatalf("scrape %d failed: %d", i, code)
		}
		if code, _ := get(t, ts.URL+"/trace/tail?n=5"); code != http.StatusOK {
			t.Fatalf("tail %d failed: %d", i, code)
		}
	}
	<-done
}
