package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"smartoclock/internal/metrics"
	"smartoclock/internal/obs"
	"smartoclock/internal/store"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestRingTail(t *testing.T) {
	r := NewRing(3)
	if got := r.Tail(5); len(got) != 0 {
		t.Fatalf("empty ring tail = %v", got)
	}
	for i := 0; i < 5; i++ {
		r.Append(obs.Event{Kind: fmt.Sprintf("e%d", i)})
	}
	if r.Len() != 3 || r.Total() != 5 {
		t.Fatalf("len=%d total=%d, want 3/5", r.Len(), r.Total())
	}
	got := r.Tail(10)
	want := []string{"e2", "e3", "e4"}
	if len(got) != len(want) {
		t.Fatalf("tail = %+v, want %v", got, want)
	}
	for i, w := range want {
		if got[i].Kind != w {
			t.Errorf("tail[%d] = %s, want %s", i, got[i].Kind, w)
		}
	}
	if got := r.Tail(2); len(got) != 2 || got[0].Kind != "e3" || got[1].Kind != "e4" {
		t.Errorf("tail(2) = %+v, want e3,e4", got)
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(4)
	r.Append(obs.Event{Kind: "a"}, obs.Event{Kind: "b"})
	got := r.Tail(10)
	if len(got) != 2 || got[0].Kind != "a" || got[1].Kind != "b" {
		t.Fatalf("partial tail = %+v", got)
	}
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(16)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t)

	// Empty until the harness publishes.
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK || body != "" {
		t.Fatalf("pre-publish /metrics = %d %q", code, body)
	}

	reg := metrics.NewRegistry()
	reg.Counter("rack_cap_events_total", metrics.L("rack", "r0")).Add(3)
	reg.Gauge("rack_power_watts", metrics.L("rack", "r0")).Set(6400)
	s.PublishSnapshot(reg.Snapshot())

	code, body = get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"# TYPE rack_cap_events_total counter",
		`rack_cap_events_total{rack="r0"} 3`,
		`rack_power_watts{rack="r0"} 6400`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestStatez(t *testing.T) {
	s, ts := newTestServer(t)

	// Before any publish the zero StateInfo serves: no checkpoint path, zero
	// writes.
	code, body := get(t, ts.URL+"/statez")
	if code != http.StatusOK {
		t.Fatalf("pre-publish /statez status = %d", code)
	}
	var zero store.StateInfo
	if err := json.Unmarshal([]byte(body), &zero); err != nil {
		t.Fatalf("pre-publish /statez not JSON: %v\n%s", err, body)
	}
	if zero.Writes != 0 || zero.CheckpointPath != "" {
		t.Fatalf("pre-publish state = %+v, want zero", zero)
	}

	want := store.StateInfo{
		CheckpointPath: "/var/run/soc/state.json",
		LastSavedAt:    t0.Add(5 * time.Minute),
		LastBytes:      4096,
		Writes:         7,
		RestoredFrom:   "/var/run/soc/old.json",
		RestoredAt:     t0,
	}
	s.PublishState(want)

	code, body = get(t, ts.URL+"/statez")
	if code != http.StatusOK {
		t.Fatalf("/statez status = %d", code)
	}
	var got store.StateInfo
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("/statez not JSON: %v\n%s", err, body)
	}
	if got != want {
		t.Fatalf("/statez = %+v, want %+v", got, want)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
}

func TestTraceTail(t *testing.T) {
	s, ts := newTestServer(t)
	var events []obs.Event
	for i := 0; i < 20; i++ {
		events = append(events, obs.Event{
			Time:      t0.Add(time.Duration(i) * time.Second),
			Component: obs.Rack, Kind: "cap", Value: float64(i),
		})
	}
	s.PublishEvents(events)

	// Default n=100 clamps to the ring capacity (16).
	code, body := get(t, ts.URL+"/trace/tail")
	if code != http.StatusOK {
		t.Fatalf("/trace/tail status = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 16 {
		t.Fatalf("tail lines = %d, want ring cap 16", len(lines))
	}
	if !strings.Contains(lines[len(lines)-1], `"value":19`) {
		t.Errorf("last tail line is not the newest event: %s", lines[len(lines)-1])
	}

	code, body = get(t, ts.URL+"/trace/tail?n=3")
	if code != http.StatusOK {
		t.Fatalf("?n=3 status = %d", code)
	}
	if lines := strings.Split(strings.TrimSpace(body), "\n"); len(lines) != 3 {
		t.Fatalf("tail?n=3 lines = %d", len(lines))
	}

	if code, _ := get(t, ts.URL+"/trace/tail?n=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad n status = %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/trace/tail?n=-1"); code != http.StatusBadRequest {
		t.Errorf("negative n status = %d, want 400", code)
	}
}

// TestTraceTailEdges covers the request-bound edge cases: n beyond
// MaxTailRequest and values that overflow int must be rejected with 400,
// never silently clamped, while the boundary value itself is accepted.
func TestTraceTailEdges(t *testing.T) {
	s, ts := newTestServer(t)
	s.PublishEvents([]obs.Event{{Component: obs.Rack, Kind: "cap"}})

	reject := []string{
		fmt.Sprint(MaxTailRequest + 1), // just past the cap
		"1000000000",                   // absurd but parseable
		"9223372036854775807",          // max int64
		"92233720368547758080",         // overflows int64 (Atoi errors)
		"18446744073709551616",         // overflows uint64 too
		"0",
		"-9223372036854775808",
		"+1e9", // float syntax is not an integer
	}
	for _, n := range reject {
		code, body := get(t, ts.URL+"/trace/tail?n="+n)
		if code != http.StatusBadRequest {
			t.Errorf("n=%s status = %d, want 400", n, code)
		}
		if !strings.Contains(body, fmt.Sprint(MaxTailRequest)) {
			t.Errorf("n=%s error %q does not state the bound", n, body)
		}
	}

	// The documented maximum is itself valid and clamps to what the ring
	// holds.
	code, body := get(t, ts.URL+fmt.Sprintf("/trace/tail?n=%d", MaxTailRequest))
	if code != http.StatusOK {
		t.Fatalf("n=max status = %d, want 200", code)
	}
	if lines := strings.Split(strings.TrimSpace(body), "\n"); len(lines) != 1 {
		t.Fatalf("n=max returned %d events, ring holds 1", len(lines))
	}
}

// TestMount verifies extra planes share the telemetry listener and do not
// shadow the built-in endpoints.
func TestMount(t *testing.T) {
	s := NewServer(4)
	s.Mount("/api/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		fmt.Fprint(w, "mounted")
	}))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	if code, body := get(t, ts.URL+"/api/v1/anything"); code != http.StatusTeapot || body != "mounted" {
		t.Fatalf("mounted subtree = %d %q", code, body)
	}
	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz after mount = %d %q", code, body)
	}
}

func TestPprofIndex(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d (goroutine profile missing)", code)
	}
}

// TestStartClose exercises the real listener path used by soccluster.
func TestStartClose(t *testing.T) {
	s := NewServer(0)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	code, body := get(t, "http://"+addr+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("live /healthz = %d %q", code, body)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still reachable after Close")
	}
}

// TestConcurrentPublishAndScrape gives the race detector publisher/scraper
// interleavings: a harness goroutine publishing snapshots and events while
// HTTP clients scrape.
func TestConcurrentPublishAndScrape(t *testing.T) {
	s, ts := newTestServer(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			reg := metrics.NewRegistry()
			reg.Counter("ticks_total").Add(float64(i))
			s.PublishSnapshot(reg.Snapshot())
			s.PublishEvents([]obs.Event{{Component: obs.Rack, Kind: "tick", Value: float64(i)}})
		}
	}()
	for i := 0; i < 20; i++ {
		if code, _ := get(t, ts.URL+"/metrics"); code != http.StatusOK {
			t.Fatalf("scrape %d failed: %d", i, code)
		}
		if code, _ := get(t, ts.URL+"/trace/tail?n=5"); code != http.StatusOK {
			t.Fatalf("tail %d failed: %d", i, code)
		}
	}
	<-done
}
