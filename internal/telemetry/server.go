// Package telemetry is the live scrape surface of the observability layer:
// a small HTTP server exposing the current metrics snapshot in Prometheus
// text format, a health probe, the standard pprof profiling endpoints, and
// a bounded tail of recent trace events. It exists for the networked
// cluster mode — the deterministic experiments export their telemetry as
// end-of-run artifacts instead and never start a server.
//
// The server never reaches into the simulation: the harness pushes
// snapshots and events in (PublishSnapshot / PublishEvents) at its own
// cadence, and scrapes read the latest published state under a mutex. That
// keeps the HTTP goroutines off the simulation's data entirely.
package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"smartoclock/internal/causal"
	"smartoclock/internal/metrics"
	"smartoclock/internal/obs"
	"smartoclock/internal/store"
)

// DefaultTailCap bounds the event ring when NewServer is given a
// non-positive capacity.
const DefaultTailCap = 1024

// Ring is a bounded FIFO of trace events: appends beyond the capacity
// overwrite the oldest entries, so a long-lived server holds the most
// recent window of activity in constant memory.
type Ring struct {
	buf   []obs.Event
	next  int // index the next append writes to
	total int // lifetime appends
}

// NewRing returns a ring holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultTailCap
	}
	return &Ring{buf: make([]obs.Event, 0, capacity)}
}

// Append adds events in order, overwriting the oldest once full.
func (r *Ring) Append(events ...obs.Event) {
	for _, ev := range events {
		if len(r.buf) < cap(r.buf) {
			r.buf = append(r.buf, ev)
		} else {
			r.buf[r.next] = ev
		}
		r.next = (r.next + 1) % cap(r.buf)
		r.total++
	}
}

// Len returns the number of events currently held.
func (r *Ring) Len() int { return len(r.buf) }

// Total returns the lifetime number of appended events, including
// overwritten ones.
func (r *Ring) Total() int { return r.total }

// Tail returns the most recent n events in chronological order. n beyond
// the held window returns everything held.
func (r *Ring) Tail(n int) []obs.Event {
	if n <= 0 {
		return nil
	}
	if n > len(r.buf) {
		n = len(r.buf)
	}
	out := make([]obs.Event, 0, n)
	// Oldest-first start position: next wraps over the oldest entry once
	// the ring is full; before that the buffer is already in order.
	start := 0
	if len(r.buf) == cap(r.buf) {
		start = r.next
	}
	for i := len(r.buf) - n; i < len(r.buf); i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// DefaultProvCap bounds the provenance ring: enough to hold the causal
// neighborhood of recent decisions without growing with run length.
const DefaultProvCap = 8192

// RecordRing is a bounded FIFO of provenance records, the causal.Record
// sibling of Ring.
type RecordRing struct {
	buf   []causal.Record
	next  int
	total int
}

// NewRecordRing returns a ring holding up to capacity records.
func NewRecordRing(capacity int) *RecordRing {
	if capacity <= 0 {
		capacity = DefaultProvCap
	}
	return &RecordRing{buf: make([]causal.Record, 0, capacity)}
}

// Append adds records in order, overwriting the oldest once full.
func (r *RecordRing) Append(recs ...causal.Record) {
	for _, rec := range recs {
		if len(r.buf) < cap(r.buf) {
			r.buf = append(r.buf, rec)
		} else {
			r.buf[r.next] = rec
		}
		r.next = (r.next + 1) % cap(r.buf)
		r.total++
	}
}

// Len returns the number of records currently held.
func (r *RecordRing) Len() int { return len(r.buf) }

// Records returns the held window oldest-first.
func (r *RecordRing) Records() []causal.Record {
	out := make([]causal.Record, 0, len(r.buf))
	start := 0
	if len(r.buf) == cap(r.buf) {
		start = r.next
	}
	for i := range r.buf {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Server owns the published telemetry state and the HTTP listener.
type Server struct {
	mu     sync.Mutex
	snap   *metrics.Snapshot
	ring   *Ring
	prov   *RecordRing
	state  store.StateInfo
	mounts map[string]http.Handler

	srv *http.Server
	ln  net.Listener
}

// NewServer returns a server with an empty snapshot and an event ring of
// the given capacity (<=0 uses DefaultTailCap).
func NewServer(tailCap int) *Server {
	return &Server{snap: &metrics.Snapshot{}, ring: NewRing(tailCap), prov: NewRecordRing(0)}
}

// PublishSnapshot replaces the snapshot served at /metrics.
func (s *Server) PublishSnapshot(snap *metrics.Snapshot) {
	if snap == nil {
		return
	}
	s.mu.Lock()
	s.snap = snap
	s.mu.Unlock()
}

// PublishState replaces the durable-state status served at /statez.
func (s *Server) PublishState(info store.StateInfo) {
	s.mu.Lock()
	s.state = info
	s.mu.Unlock()
}

// PublishEvents appends trace events to the tail ring.
func (s *Server) PublishEvents(events []obs.Event) {
	if len(events) == 0 {
		return
	}
	s.mu.Lock()
	s.ring.Append(events...)
	s.mu.Unlock()
}

// PublishProvenance appends causal decision records to the provenance ring
// backing /explain.
func (s *Server) PublishProvenance(recs []causal.Record) {
	if len(recs) == 0 {
		return
	}
	s.mu.Lock()
	s.prov.Append(recs...)
	s.mu.Unlock()
}

// Mount attaches an extra handler subtree under pattern (e.g. "/api/v1/"),
// so sibling planes — the mutating control-plane API, say — share the
// telemetry listener. Mount before Start; later calls are ignored by
// already-built muxes.
func (s *Server) Mount(pattern string, h http.Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mounts == nil {
		s.mounts = make(map[string]http.Handler)
	}
	s.mounts[pattern] = h
}

// Handler returns the server's HTTP mux:
//
//	/metrics           Prometheus text exposition of the latest snapshot
//	/healthz           liveness probe, always "ok"
//	/statez            durable-state status (checkpoint/restore) as JSON
//	/trace/tail?n=100  last n trace events as JSON lines (default 100);
//	                   ?component=a,b and ?span=ID filter server-side
//	/explain?span=ID   a decision's full causal ancestry as JSON
//	/debug/pprof/*     standard Go profiling endpoints
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statez", s.handleState)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/trace/tail", s.handleTail)
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mu.Lock()
	for pattern, h := range s.mounts {
		mux.Handle(pattern, h)
	}
	s.mu.Unlock()
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	snap := s.snap
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := snap.WriteProm(w); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	info := s.state
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(info)
}

// MaxTailRequest bounds /trace/tail?n=. Requests beyond it are rejected
// with 400 rather than silently clamped: a caller asking for a billion
// events has a bug, and handing back whatever the ring holds would hide it.
const MaxTailRequest = 65536

func (s *Server) handleTail(w http.ResponseWriter, r *http.Request) {
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		// Atoi rejects overflowing values outright, so n > MaxTailRequest
		// is the only way an absurd request could previously sneak through.
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 || v > MaxTailRequest {
			http.Error(w, fmt.Sprintf("telemetry: n must be an integer in [1,%d]", MaxTailRequest),
				http.StatusBadRequest)
			return
		}
		n = v
	}
	// Server-side filters: unknown component names are caller bugs and get
	// a 400 naming the valid set, exactly like the CLI's -trace-only flag.
	var want map[obs.Component]bool
	if q := r.URL.Query().Get("component"); q != "" {
		comps, err := obs.ParseComponents(q)
		if err != nil {
			http.Error(w, "telemetry: "+err.Error(), http.StatusBadRequest)
			return
		}
		want = make(map[obs.Component]bool, len(comps))
		for _, c := range comps {
			want[c] = true
		}
	}
	var span uint64
	if q := r.URL.Query().Get("span"); q != "" {
		id, err := causal.ParseSpan(q)
		if err != nil {
			http.Error(w, "telemetry: "+err.Error(), http.StatusBadRequest)
			return
		}
		span = uint64(id)
	}
	s.mu.Lock()
	events := s.ring.Tail(s.ring.Len())
	s.mu.Unlock()
	if want != nil || span != 0 {
		kept := events[:0]
		for _, ev := range events {
			if want != nil && !want[ev.Component] {
				continue
			}
			if span != 0 && ev.Span != span && ev.Parent != span {
				continue
			}
			kept = append(kept, ev)
		}
		events = kept
	}
	if len(events) > n {
		events = events[len(events)-n:]
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = obs.WriteEventsJSONL(w, events)
}

// Explanation is the /explain response: the requested decision, its causal
// ancestry (root-first, ending at the decision itself) and its direct
// consequences within the held provenance window.
type Explanation struct {
	Span     string          `json:"span"`
	Record   causal.Record   `json:"record"`
	Chain    []causal.Record `json:"chain"`
	Children []causal.Record `json:"children,omitempty"`
	// Held/Total report the provenance window the answer was computed
	// from; an ancestor older than the window is absent, not unknown.
	Held  int `json:"held"`
	Total int `json:"total"`
}

// RecentRecords is the /explain?recent=N response: the newest held
// provenance records, oldest first, for discovering spans to explain.
type RecentRecords struct {
	Records []causal.Record `json:"records"`
	Held    int             `json:"held"`
	Total   int             `json:"total"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("span")
	if q == "" {
		if rq := r.URL.Query().Get("recent"); rq != "" {
			s.handleRecent(w, rq)
			return
		}
		http.Error(w, "telemetry: usage /explain?span=<hex id> or /explain?recent=<n>", http.StatusBadRequest)
		return
	}
	id, err := causal.ParseSpan(q)
	if err != nil {
		http.Error(w, "telemetry: "+err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	log := &causal.Log{Records: s.prov.Records()}
	total := s.prov.total
	s.mu.Unlock()
	rec := log.Find(id)
	if rec == nil {
		http.Error(w, fmt.Sprintf("telemetry: span %s not in the held provenance window", id), http.StatusNotFound)
		return
	}
	chain := log.Chain(id)
	// Chain returns leaf-first; a "why" reads top-down from the root cause.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	out := Explanation{
		Span:     id.String(),
		Record:   *rec,
		Chain:    chain,
		Children: log.Children(id),
		Held:     log.Len(),
		Total:    total,
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// handleRecent serves the span-discovery half of /explain: the newest N
// held provenance records, bounded like /trace/tail.
func (s *Server) handleRecent(w http.ResponseWriter, rq string) {
	n, err := strconv.Atoi(rq)
	if err != nil || n <= 0 || n > MaxTailRequest {
		http.Error(w, fmt.Sprintf("telemetry: recent must be an integer in [1,%d]", MaxTailRequest),
			http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	recs := s.prov.Records()
	total := s.prov.total
	s.mu.Unlock()
	held := len(recs)
	if len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	out := RecentRecords{Records: recs, Held: held, Total: total}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// Start listens on addr (use "127.0.0.1:0" for a free port) and serves in a
// background goroutine. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener. In-flight requests are abandoned; the server is
// a diagnostics plane, not a durability one.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// Drain stops accepting connections and waits for in-flight requests to
// finish, up to ctx. With a control plane mounted, the response to the
// command that ended the run (e.g. shutdown) must reach the client before
// the process exits — Close would cut it off mid-write.
func (s *Server) Drain(ctx context.Context) error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}
