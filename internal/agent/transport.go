// Package agent provides the messaging layer the SmartOClock agents use to
// talk to each other: Server Overclocking Agents report power and overclock
// templates to the Global Overclocking Agent, the gOA pushes heterogeneous
// power budgets back, the rack manager broadcasts warnings, and Workload
// Intelligence agents exchange metrics and scale-out signals.
//
// Two transports share one interface: an in-process bus (used by the
// simulator, optionally with artificial delivery delay) and a
// line-delimited-JSON TCP transport (used by the distributed example to run
// agents as real networked processes). Production deployments would swap in
// a hypervisor shared-memory channel or locally-terminated endpoint for the
// VM-to-host hop (§IV).
package agent

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// Message is the envelope every agent exchange uses.
type Message struct {
	// Type names the message's meaning, e.g. "oc.request" or "goa.budget".
	Type string `json:"type"`
	// From is the sender's agent name.
	From string `json:"from"`
	// To is the recipient's agent name.
	To string `json:"to"`
	// Payload carries the type-specific body as JSON.
	Payload json.RawMessage `json:"payload,omitempty"`
	// Span is the causal span ID of the send (internal/causal), threading
	// provenance across agents: a handler that makes a decision because of
	// this message records the decision with Parent = Span. Zero — the
	// value whenever provenance is off — is omitted from the wire format,
	// so frames are byte-identical to the pre-provenance protocol.
	Span uint64 `json:"span,omitempty"`
}

// NewMessage builds a message with v encoded as the payload.
func NewMessage(msgType, from, to string, v any) (Message, error) {
	var payload json.RawMessage
	if v != nil {
		b, err := json.Marshal(v)
		if err != nil {
			return Message{}, fmt.Errorf("agent: encode payload: %w", err)
		}
		payload = b
	}
	return Message{Type: msgType, From: from, To: to, Payload: payload}, nil
}

// Decode unmarshals a message's payload into T.
func Decode[T any](m Message) (T, error) {
	var v T
	if len(m.Payload) == 0 {
		return v, fmt.Errorf("agent: message %q has no payload", m.Type)
	}
	if err := json.Unmarshal(m.Payload, &v); err != nil {
		return v, fmt.Errorf("agent: decode %q payload: %w", m.Type, err)
	}
	return v, nil
}

// Handler consumes a delivered message.
type Handler func(Message)

// Transport delivers messages between named agents.
type Transport interface {
	// Send routes msg to the agent named msg.To. Unknown recipients are an
	// error.
	Send(msg Message) error
	// Register attaches h as the handler for messages addressed to name.
	// Registering a name twice replaces the handler.
	Register(name string, h Handler)
	// Close releases transport resources.
	Close() error
}

// Bus is an in-process Transport with synchronous delivery. It is safe for
// concurrent use. An optional Defer hook lets the simulator delay delivery
// (e.g. to model network latency) by scheduling the thunk instead of
// running it inline.
type Bus struct {
	mu       sync.Mutex
	handlers map[string]Handler
	instr    *transportInstruments
	// Defer, when non-nil, receives each delivery thunk instead of the
	// thunk running synchronously. Set it to the simulator's scheduling
	// function to model latency.
	Defer func(deliver func())
}

// NewBus creates an empty in-process bus.
func NewBus() *Bus {
	return &Bus{handlers: make(map[string]Handler)}
}

// Register implements Transport.
func (b *Bus) Register(name string, h Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.handlers[name] = h
}

// Unregister removes a handler.
func (b *Bus) Unregister(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.handlers, name)
}

// Send implements Transport.
func (b *Bus) Send(msg Message) error {
	b.mu.Lock()
	h, ok := b.handlers[msg.To]
	deferFn := b.Defer
	instr := b.instr
	b.mu.Unlock()
	if !ok {
		instr.send(0, 0, fmt.Errorf("agent: unknown recipient %q", msg.To))
		return fmt.Errorf("agent: unknown recipient %q", msg.To)
	}
	if instr == nil {
		if deferFn != nil {
			deferFn(func() { h(msg) })
			return nil
		}
		h(msg)
		return nil
	}
	start := time.Now()
	deliver := func() {
		h(msg)
		instr.send(len(msg.Payload), time.Since(start), nil)
	}
	if deferFn != nil {
		instr.queue(1)
		deferFn(func() {
			instr.queue(-1)
			deliver()
		})
		return nil
	}
	deliver()
	return nil
}

// BatchSender is implemented by transports that can accept a burst of
// messages in one call. Batch delivery is semantically identical to calling
// Send once per message in slice order — same delivery order, same
// per-message fault draws and instrumentation — batching only amortizes the
// per-call overhead (one lock round instead of len(msgs)), which matters on
// the simulator's per-tick fan-out paths (sOA→gOA reports, budget pushes,
// rack event broadcasts).
type BatchSender interface {
	SendBatch(msgs []Message) error
}

// SendAll delivers msgs through t in order, using SendBatch when the
// transport supports it and falling back to per-message Send otherwise. It
// returns the first error but attempts every message either way, matching a
// loop of independent Send calls.
func SendAll(t Transport, msgs []Message) error {
	if bs, ok := t.(BatchSender); ok {
		return bs.SendBatch(msgs)
	}
	var firstErr error
	for _, msg := range msgs {
		if err := t.Send(msg); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SendBatch implements BatchSender: one lock round resolves every
// recipient, then messages deliver synchronously in slice order. Handler
// registrations made by a handler mid-batch affect the next batch, not the
// remainder of this one.
func (b *Bus) SendBatch(msgs []Message) error {
	b.mu.Lock()
	deferFn := b.Defer
	instr := b.instr
	type delivery struct {
		h   Handler
		msg Message
	}
	deliveries := make([]delivery, 0, len(msgs))
	var firstErr error
	for _, msg := range msgs {
		h, ok := b.handlers[msg.To]
		if !ok {
			err := fmt.Errorf("agent: unknown recipient %q", msg.To)
			instr.send(0, 0, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		deliveries = append(deliveries, delivery{h: h, msg: msg})
	}
	b.mu.Unlock()
	for _, d := range deliveries {
		h, msg := d.h, d.msg
		if instr == nil {
			if deferFn != nil {
				deferFn(func() { h(msg) })
				continue
			}
			h(msg)
			continue
		}
		start := time.Now()
		deliver := func() {
			h(msg)
			instr.send(len(msg.Payload), time.Since(start), nil)
		}
		if deferFn != nil {
			instr.queue(1)
			deferFn(func() {
				instr.queue(-1)
				deliver()
			})
			continue
		}
		deliver()
	}
	return firstErr
}

// Broadcast sends msg to every registered agent except the sender.
func (b *Bus) Broadcast(msg Message) {
	b.mu.Lock()
	names := make([]string, 0, len(b.handlers))
	for name := range b.handlers {
		if name != msg.From {
			names = append(names, name)
		}
	}
	b.mu.Unlock()
	for _, name := range names {
		m := msg
		m.To = name
		_ = b.Send(m) // recipients may unregister concurrently; best effort
	}
}

// Close implements Transport.
func (b *Bus) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.handlers = make(map[string]Handler)
	return nil
}
