package agent

import (
	"bytes"
	"testing"
)

// The causal span must ride every transport untouched: the bus hands the
// same Message value to the handler, frames round-trip it as JSON, and a
// zero span (provenance off) must not appear on the wire at all.

func TestBusPropagatesSpan(t *testing.T) {
	b := NewBus()
	var got []uint64
	b.Register("soa-0", func(m Message) { got = append(got, m.Span) })
	msg, err := NewMessage("goa.budget", "goa", "soa-0", map[string]float64{"watts": 500})
	if err != nil {
		t.Fatal(err)
	}
	msg.Span = 0xDEAD
	if err := b.Send(msg); err != nil {
		t.Fatal(err)
	}
	b.Broadcast(Message{Type: "rack.event", From: "rack", Span: 0xBEEF})
	if len(got) != 2 || got[0] != 0xDEAD || got[1] != 0xBEEF {
		t.Fatalf("delivered spans = %#x", got)
	}
}

func TestFrameRoundTripsSpan(t *testing.T) {
	msg, err := NewMessage("soa.profile", "soa-0", "goa", map[string]int{"cores": 4})
	if err != nil {
		t.Fatal(err)
	}
	msg.Span = 42
	frame, err := EncodeFrame(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(frame, []byte(`"span":42`)) {
		t.Fatalf("span missing from frame: %s", frame)
	}
	back, err := DecodeFrame(bytes.TrimRight(frame, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if back.Span != 42 {
		t.Fatalf("span lost in round trip: %d", back.Span)
	}
}

func TestZeroSpanStaysOffTheWire(t *testing.T) {
	msg, err := NewMessage("soa.profile", "soa-0", "goa", map[string]int{"cores": 4})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeFrame(msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(frame, []byte("span")) {
		t.Fatalf("zero span leaked onto the wire: %s", frame)
	}
}
