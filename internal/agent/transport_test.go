package agent

import (
	"sync"
	"testing"
	"time"
)

type payload struct {
	Watts float64 `json:"watts"`
	Cores int     `json:"cores"`
}

func TestNewMessageAndDecode(t *testing.T) {
	m, err := NewMessage("oc.request", "soa-1", "goa", payload{Watts: 42.5, Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != "oc.request" || m.From != "soa-1" || m.To != "goa" {
		t.Fatalf("envelope = %+v", m)
	}
	got, err := Decode[payload](m)
	if err != nil {
		t.Fatal(err)
	}
	if got.Watts != 42.5 || got.Cores != 4 {
		t.Fatalf("payload = %+v", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode[payload](Message{Type: "x"}); err == nil {
		t.Fatal("expected error on empty payload")
	}
	m := Message{Type: "x", Payload: []byte(`{"watts": "nope"}`)}
	if _, err := Decode[payload](m); err == nil {
		t.Fatal("expected error on type mismatch")
	}
}

func TestNewMessageNilPayload(t *testing.T) {
	m, err := NewMessage("ping", "a", "b", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Payload) != 0 {
		t.Fatal("nil payload must stay empty")
	}
}

func TestBusDelivery(t *testing.T) {
	b := NewBus()
	var got Message
	b.Register("goa", func(m Message) { got = m })
	msg, _ := NewMessage("t", "a", "goa", nil)
	if err := b.Send(msg); err != nil {
		t.Fatal(err)
	}
	if got.Type != "t" {
		t.Fatal("message not delivered")
	}
}

func TestBusUnknownRecipient(t *testing.T) {
	b := NewBus()
	msg, _ := NewMessage("t", "a", "ghost", nil)
	if err := b.Send(msg); err == nil {
		t.Fatal("expected error")
	}
}

func TestBusUnregister(t *testing.T) {
	b := NewBus()
	b.Register("x", func(Message) {})
	b.Unregister("x")
	msg, _ := NewMessage("t", "a", "x", nil)
	if err := b.Send(msg); err == nil {
		t.Fatal("expected error after unregister")
	}
}

func TestBusDefer(t *testing.T) {
	b := NewBus()
	delivered := false
	b.Register("x", func(Message) { delivered = true })
	var queue []func()
	b.Defer = func(f func()) { queue = append(queue, f) }
	msg, _ := NewMessage("t", "a", "x", nil)
	if err := b.Send(msg); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Fatal("deferred send delivered synchronously")
	}
	queue[0]()
	if !delivered {
		t.Fatal("deferred thunk did not deliver")
	}
}

func TestBusBroadcastSkipsSender(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	got := map[string]int{}
	for _, name := range []string{"a", "b", "c"} {
		name := name
		b.Register(name, func(Message) {
			mu.Lock()
			got[name]++
			mu.Unlock()
		})
	}
	msg, _ := NewMessage("warn", "a", "", nil)
	b.Broadcast(msg)
	if got["a"] != 0 || got["b"] != 1 || got["c"] != 1 {
		t.Fatalf("broadcast counts = %v", got)
	}
}

func TestBusClose(t *testing.T) {
	b := NewBus()
	b.Register("x", func(Message) {})
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	msg, _ := NewMessage("t", "a", "x", nil)
	if err := b.Send(msg); err == nil {
		t.Fatal("send after close must fail")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not met before deadline")
}

func TestTCPNodeRoundTrip(t *testing.T) {
	n1, err := NewTCPNode("node1", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := NewTCPNode("node2", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()

	var mu sync.Mutex
	var got []Message
	n2.Register("soa-1", func(m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})
	n1.AddPeer("soa-1", n2.Addr())

	msg, _ := NewMessage("goa.budget", "goa", "soa-1", payload{Watts: 550})
	if err := n1.Send(msg); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	})
	mu.Lock()
	defer mu.Unlock()
	p, err := Decode[payload](got[0])
	if err != nil || p.Watts != 550 {
		t.Fatalf("payload = %+v, err=%v", p, err)
	}
}

func TestTCPNodeLocalDelivery(t *testing.T) {
	n, err := NewTCPNode("node", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	delivered := false
	n.Register("local", func(Message) { delivered = true })
	msg, _ := NewMessage("t", "x", "local", nil)
	if err := n.Send(msg); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Fatal("local delivery must be synchronous")
	}
}

func TestTCPNodeUnknownRecipient(t *testing.T) {
	n, err := NewTCPNode("node", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	msg, _ := NewMessage("t", "x", "ghost", nil)
	if err := n.Send(msg); err == nil {
		t.Fatal("expected error")
	}
}

func TestTCPNodeManyMessages(t *testing.T) {
	n1, err := NewTCPNode("node1", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := NewTCPNode("node2", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()

	var mu sync.Mutex
	count := 0
	n2.Register("sink", func(Message) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	n1.AddPeer("sink", n2.Addr())
	const total = 200
	for i := 0; i < total; i++ {
		msg, _ := NewMessage("tick", "src", "sink", payload{Cores: i})
		if err := n1.Send(msg); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return count == total
	})
}

func TestTCPNodeSendAfterClose(t *testing.T) {
	n, err := NewTCPNode("node", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n.Close()
	msg, _ := NewMessage("t", "x", "y", nil)
	if err := n.Send(msg); err == nil {
		t.Fatal("send after close must fail")
	}
	// Double close is fine.
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBusConcurrentSendAndRegister(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	received := 0
	b.Register("sink", func(Message) {
		mu.Lock()
		received++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				msg, _ := NewMessage("t", "src", "sink", nil)
				if err := b.Send(msg); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// Concurrent churn on unrelated registrations.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			b.Register("churn", func(Message) {})
			b.Unregister("churn")
		}
	}()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if received != 800 {
		t.Fatalf("received = %d, want 800", received)
	}
}

func TestTCPNodeNameAndReconnect(t *testing.T) {
	n1, err := NewTCPNode("node1", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	if n1.Name() != "node1" {
		t.Fatalf("Name = %q", n1.Name())
	}
	n2, err := NewTCPNode("node2", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	count := 0
	n2.Register("sink", func(Message) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	n1.AddPeer("sink", n2.Addr())
	msg, _ := NewMessage("t", "src", "sink", nil)
	if err := n1.Send(msg); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return count == 1
	})
	// Kill the receiver: sends eventually fail (the cached connection is
	// dropped and the redial is refused).
	addr := n2.Addr()
	n2.Close()
	failed := false
	for i := 0; i < 20; i++ {
		if err := n1.Send(msg); err != nil {
			failed = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !failed {
		t.Fatal("sends kept succeeding against a closed peer")
	}
	_ = addr
}
