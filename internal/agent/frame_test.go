package agent

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	msg, err := NewMessage("oc.request", "soa/s0", "goa", map[string]any{"cores": 4, "mhz": 3800})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeFrame(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(frame, []byte("\n")) {
		t.Fatal("frame not newline-terminated")
	}
	if bytes.IndexByte(frame[:len(frame)-1], '\n') >= 0 {
		t.Fatal("frame body contains a newline — breaks line framing")
	}
	got, err := DecodeFrame(frame)
	if err != nil {
		t.Fatalf("decode of own encoding failed: %v", err)
	}
	if got.Type != msg.Type || got.From != msg.From || got.To != msg.To {
		t.Fatalf("round trip changed envelope: %+v -> %+v", msg, got)
	}
	if !bytes.Equal(got.Payload, msg.Payload) {
		t.Fatalf("round trip changed payload: %s -> %s", msg.Payload, got.Payload)
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"whitespace":        "  \t ",
		"bare newline":      "\n",
		"not json":          "hello world",
		"truncated":         `{"type":"x","to":"y","payload":{"a"`,
		"wrong type":        `[1,2,3]`,
		"missing type":      `{"to":"goa"}`,
		"missing to":        `{"type":"oc.request"}`,
		"interior newline":  "{\"type\":\"a\",\n\"to\":\"b\"}",
		"trailing garbage":  `{"type":"a","to":"b"} extra`,
		"number payload ok": `{"type":"a","to":"b","payload":"unterminated`,
	}
	for name, in := range cases {
		if _, err := DecodeFrame([]byte(in)); err == nil {
			t.Errorf("%s: DecodeFrame(%q) accepted", name, in)
		}
	}
}

func TestDecodeFrameOversized(t *testing.T) {
	big := []byte(`{"type":"a","to":"b","payload":"` + strings.Repeat("x", MaxFrameBytes) + `"}`)
	if _, err := DecodeFrame(big); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestEncodeFrameRejectsUnroutableAndOversized(t *testing.T) {
	if _, err := EncodeFrame(Message{Type: "", To: "goa"}); err == nil {
		t.Error("empty type accepted")
	}
	if _, err := EncodeFrame(Message{Type: "x", To: ""}); err == nil {
		t.Error("empty to accepted")
	}
	huge := Message{Type: "x", To: "y", Payload: json.RawMessage(`"` + strings.Repeat("x", MaxFrameBytes) + `"`)}
	if _, err := EncodeFrame(huge); err == nil {
		t.Error("oversized frame encoded")
	}
}

// FuzzMessageDecode throws arbitrary bytes at the wire decoder: it must
// never panic, and anything it accepts must be a routable message that
// survives a re-encode/re-decode round trip.
func FuzzMessageDecode(f *testing.F) {
	f.Add([]byte(`{"type":"oc.request","from":"soa/s0","to":"goa","payload":{"cores":4}}`))
	f.Add([]byte(`{"type":"goa.budget","to":"soa/s1","payload":123.5}`))
	f.Add([]byte(`{"type":"a","to":"b"}` + "\n"))
	f.Add([]byte(`{"to":"goa"}`))
	f.Add([]byte(`{"type":1,"to":2}`))
	f.Add([]byte("not json at all"))
	f.Add([]byte(""))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"type":"x","to":"y","payload":`))
	f.Add([]byte("{\"type\":\"a\",\n\"to\":\"b\"}"))
	f.Add(bytes.Repeat([]byte("["), 4096))
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if msg.Type == "" || msg.To == "" {
			t.Fatalf("decoder accepted unroutable message %+v from %q", msg, data)
		}
		frame, err := EncodeFrame(msg)
		if err != nil {
			// Re-encoding escapes <, > and & to 6-byte \u00XX sequences, so a
			// near-limit input can legitimately grow past the frame cap.
			if strings.Contains(err.Error(), "exceeds limit") {
				return
			}
			t.Fatalf("re-encode of accepted message failed: %v (%+v)", err, msg)
		}
		again, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("re-decode failed: %v (frame %q)", err, frame)
		}
		if again.Type != msg.Type || again.From != msg.From || again.To != msg.To {
			t.Fatalf("round trip changed envelope: %+v -> %+v", msg, again)
		}
	})
}

// FuzzFrameStream feeds the decoder a stream split into lines the way the
// TCP read loop does: whatever the bytes, every line either decodes to a
// routable message or errors — no panics, no partial-frame leakage across
// line boundaries.
func FuzzFrameStream(f *testing.F) {
	good, _ := NewMessage("soa.profile", "soa/s0", "goa", map[string]float64{"w": 211.5})
	gf, _ := EncodeFrame(good)
	f.Add(append(gf, gf...))
	f.Add([]byte("{\"type\":\"a\",\"to\":\"b\"}\ngarbage\n{\"type\":\"c\",\"to\":\"d\"}\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"type":"x","to":"y"`))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, line := range bytes.Split(data, []byte("\n")) {
			msg, err := DecodeFrame(line)
			if err == nil && (msg.Type == "" || msg.To == "") {
				t.Fatalf("stream line %q decoded to unroutable %+v", line, msg)
			}
		}
	})
}
