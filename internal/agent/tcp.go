package agent

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// MaxFrameBytes bounds a single line-delimited frame on the wire. Frames
// beyond it are rejected at both ends: EncodeFrame refuses to produce them
// and the read loop's scanner (and DecodeFrame) refuses to accept them, so
// one huge message can't wedge a link or balloon a reader's memory.
const MaxFrameBytes = 4 * 1024 * 1024

// EncodeFrame serializes msg as one newline-terminated JSON frame, the unit
// the TCP transport writes. It fails on unroutable messages (empty Type or
// To) and on frames that would exceed MaxFrameBytes.
func EncodeFrame(msg Message) ([]byte, error) {
	if msg.Type == "" || msg.To == "" {
		return nil, fmt.Errorf("agent: unroutable frame (type %q, to %q)", msg.Type, msg.To)
	}
	data, err := json.Marshal(msg)
	if err != nil {
		return nil, fmt.Errorf("agent: encode message: %w", err)
	}
	if len(data)+1 > MaxFrameBytes {
		return nil, fmt.Errorf("agent: frame %d bytes exceeds limit %d", len(data)+1, MaxFrameBytes)
	}
	return append(data, '\n'), nil
}

// DecodeFrame parses one frame (a single line, with or without its trailing
// newline) into a Message. Malformed JSON, truncated frames, embedded extra
// lines, oversized frames and unroutable messages are all errors — never
// panics — so a hostile or corrupted peer can at worst have its frames
// discarded.
func DecodeFrame(frame []byte) (Message, error) {
	frame = bytes.TrimSuffix(frame, []byte("\n"))
	frame = bytes.TrimSuffix(frame, []byte("\r"))
	if len(frame) > MaxFrameBytes {
		return Message{}, fmt.Errorf("agent: frame %d bytes exceeds limit %d", len(frame), MaxFrameBytes)
	}
	if len(bytes.TrimSpace(frame)) == 0 {
		return Message{}, errors.New("agent: empty frame")
	}
	if i := bytes.IndexByte(frame, '\n'); i >= 0 {
		return Message{}, fmt.Errorf("agent: frame contains interior newline at offset %d", i)
	}
	var msg Message
	if err := json.Unmarshal(frame, &msg); err != nil {
		return Message{}, fmt.Errorf("agent: decode frame: %w", err)
	}
	if msg.Type == "" || msg.To == "" {
		return Message{}, fmt.Errorf("agent: unroutable frame (type %q, to %q)", msg.Type, msg.To)
	}
	return msg, nil
}

// TCPNode is a networked agent endpoint: it listens for line-delimited JSON
// messages and dials peers on demand. Connections to peers are cached and
// re-established on failure. All methods are safe for concurrent use.
type TCPNode struct {
	name string

	mu       sync.Mutex
	handlers map[string]Handler
	peers    map[string]string   // agent name -> address
	conns    map[string]net.Conn // address -> cached outbound connection
	accepted map[net.Conn]bool   // inbound connections, closed on shutdown
	listener net.Listener
	instr    *transportInstruments
	closed   bool
	wg       sync.WaitGroup
}

// NewTCPNode starts a node listening on addr (use "127.0.0.1:0" to pick a
// free port). The node's own agents are attached with Register.
func NewTCPNode(name, addr string) (*TCPNode, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agent: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		name:     name,
		handlers: make(map[string]Handler),
		peers:    make(map[string]string),
		conns:    make(map[string]net.Conn),
		accepted: make(map[net.Conn]bool),
		listener: ln,
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Name returns the node's name.
func (n *TCPNode) Name() string { return n.name }

// Addr returns the node's listen address.
func (n *TCPNode) Addr() string { return n.listener.Addr().String() }

// AddPeer maps an agent name to the node address hosting it. Multiple agent
// names may map to the same address.
func (n *TCPNode) AddPeer(agentName, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[agentName] = addr
}

// Register implements Transport for agents hosted on this node.
func (n *TCPNode) Register(name string, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[name] = h
}

// Send implements Transport: local recipients are delivered directly,
// remote ones over TCP using the peer table.
func (n *TCPNode) Send(msg Message) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return errors.New("agent: node closed")
	}
	instr := n.instr
	if h, ok := n.handlers[msg.To]; ok {
		n.mu.Unlock()
		start := time.Now()
		h(msg)
		instr.send(len(msg.Payload), time.Since(start), nil)
		return nil
	}
	addr, ok := n.peers[msg.To]
	n.mu.Unlock()
	if !ok {
		err := fmt.Errorf("agent: unknown recipient %q", msg.To)
		instr.send(0, 0, err)
		return err
	}
	return n.sendTo(addr, msg)
}

// sendTo writes msg to addr, dialing or reusing a cached connection and
// retrying once on a stale connection.
func (n *TCPNode) sendTo(addr string, msg Message) error {
	n.mu.Lock()
	instr := n.instr
	n.mu.Unlock()
	data, err := EncodeFrame(msg)
	if err != nil {
		instr.send(0, 0, err)
		return err
	}
	start := time.Now()
	for attempt := 0; attempt < 2; attempt++ {
		conn, err := n.conn(addr)
		if err != nil {
			instr.send(0, 0, err)
			return err
		}
		if _, err := conn.Write(data); err == nil {
			instr.send(len(data), time.Since(start), nil)
			return nil
		}
		n.dropConn(addr)
	}
	err = fmt.Errorf("agent: send to %s failed", addr)
	instr.send(0, 0, err)
	return err
}

func (n *TCPNode) conn(addr string) (net.Conn, error) {
	n.mu.Lock()
	if c, ok := n.conns[addr]; ok {
		n.mu.Unlock()
		return c, nil
	}
	n.mu.Unlock()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agent: dial %s: %w", addr, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		c.Close()
		return nil, errors.New("agent: node closed")
	}
	if existing, ok := n.conns[addr]; ok {
		c.Close()
		return existing, nil
	}
	n.conns[addr] = c
	return c, nil
}

func (n *TCPNode) dropConn(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if c, ok := n.conns[addr]; ok {
		c.Close()
		delete(n.conns, addr)
	}
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.accepted[conn] = true
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

func (n *TCPNode) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.accepted, conn)
		n.mu.Unlock()
	}()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), MaxFrameBytes)
	for scanner.Scan() {
		frame := scanner.Bytes()
		msg, err := DecodeFrame(frame)
		if err != nil {
			continue // skip malformed frames rather than killing the link
		}
		n.mu.Lock()
		h, ok := n.handlers[msg.To]
		instr := n.instr
		n.mu.Unlock()
		if ok {
			instr.recv(len(frame))
			instr.queue(1)
			h(msg)
			instr.queue(-1)
		}
	}
}

// Close shuts down the listener and all connections and waits for reader
// goroutines to exit.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	err := n.listener.Close()
	for addr, c := range n.conns {
		c.Close()
		delete(n.conns, addr)
	}
	for c := range n.accepted {
		c.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	return err
}
