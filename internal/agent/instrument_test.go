package agent

import (
	"testing"

	"smartoclock/internal/metrics"
)

func TestBusInstrumentation(t *testing.T) {
	lk := metrics.NewLocked()
	bus := NewBus()
	bus.Instrument(lk, metrics.L("node", "sim"))
	got := 0
	bus.Register("soa-0", func(m Message) { got++ })

	msg, err := NewMessage("goa.budget", "goa", "soa-0", map[string]float64{"watts": 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.Send(msg); err != nil {
		t.Fatal(err)
	}
	if err := bus.Send(Message{Type: "x", From: "goa", To: "nobody"}); err == nil {
		t.Fatal("unknown recipient accepted")
	}

	// Deferred delivery: queue depth rises while the thunk is parked.
	var parked func()
	bus.Defer = func(deliver func()) { parked = deliver }
	if err := bus.Send(msg); err != nil {
		t.Fatal(err)
	}
	snap := lk.Snapshot()
	labels := map[string]string{"transport": "bus", "node": "sim"}
	if depth := snap.Find("transport_queue_depth", labels); depth == nil || depth.Value != 1 {
		t.Fatalf("queue depth while parked = %+v, want 1", depth)
	}
	parked()
	bus.Defer = nil

	snap = lk.Snapshot()
	if got != 2 {
		t.Fatalf("deliveries = %d, want 2", got)
	}
	if s := snap.Find("transport_sends_total", labels); s == nil || s.Value != 2 {
		t.Fatalf("sends = %+v, want 2", s)
	}
	if s := snap.Find("transport_send_errors_total", labels); s == nil || s.Value != 1 {
		t.Fatalf("send errors = %+v, want 1", s)
	}
	if s := snap.Find("transport_send_bytes", labels); s == nil || s.Count != 2 || s.Value <= 0 {
		t.Fatalf("send bytes = %+v, want 2 observations of payload size", s)
	}
	if s := snap.Find("transport_send_seconds", labels); s == nil || s.Count != 2 {
		t.Fatalf("send seconds = %+v, want 2 observations", s)
	}
	if depth := snap.Find("transport_queue_depth", labels); depth.Value != 0 {
		t.Fatalf("queue depth after drain = %v, want 0", depth.Value)
	}
}

func TestTCPInstrumentation(t *testing.T) {
	lk := metrics.NewLocked()
	a, err := NewTCPNode("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPNode("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.Instrument(lk, metrics.L("node", "a"))
	b.Instrument(lk, metrics.L("node", "b"))

	recv := make(chan Message, 4)
	b.Register("soa-0", func(m Message) { recv <- m })
	a.Register("goa", func(m Message) {})
	a.AddPeer("soa-0", b.Addr())

	msg, err := NewMessage("oc.grant", "goa", "soa-0", map[string]int{"cores": 4})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeFrame(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	<-recv
	// Local delivery on the sending node counts as a send too.
	local, _ := NewMessage("wi.metrics", "goa", "goa", nil)
	if err := a.Send(local); err != nil {
		t.Fatal(err)
	}

	aLabels := map[string]string{"transport": "tcp", "node": "a"}
	bLabels := map[string]string{"transport": "tcp", "node": "b"}
	waitFor(t, func() bool {
		s := lk.Snapshot().Find("transport_recvs_total", bLabels)
		return s != nil && s.Value == 1
	})
	snap := lk.Snapshot()
	if s := snap.Find("transport_sends_total", aLabels); s == nil || s.Value != 2 {
		t.Fatalf("node a sends = %+v, want 2", s)
	}
	// The remote send observed the wire frame size exactly; the local one
	// observed the (nil) payload size.
	if s := snap.Find("transport_send_bytes", aLabels); s == nil || s.Value != float64(len(frame)) {
		t.Fatalf("node a send bytes sum = %+v, want frame len %d", s, len(frame))
	}
	if s := snap.Find("transport_recv_bytes", bLabels); s == nil || s.Count != 1 {
		t.Fatalf("node b recv bytes = %+v, want 1 observation", s)
	}
	if s := snap.Find("transport_queue_depth", bLabels); s == nil || s.Value != 0 {
		t.Fatalf("node b queue depth = %+v, want 0 after drain", s)
	}

	// Unknown recipient counts as a send error.
	if err := a.Send(Message{Type: "x", From: "goa", To: "ghost"}); err == nil {
		t.Fatal("unknown recipient accepted")
	}
	if s := lk.Snapshot().Find("transport_send_errors_total", aLabels); s == nil || s.Value != 1 {
		t.Fatalf("node a send errors = %+v, want 1", s)
	}
}

// TestUninstrumentedTransportsUnchanged pins the nil-hook path: transports
// without Instrument must work exactly as before.
func TestUninstrumentedTransportsUnchanged(t *testing.T) {
	bus := NewBus()
	n := 0
	bus.Register("x", func(Message) { n++ })
	if err := bus.Send(Message{Type: "t", To: "x"}); err != nil || n != 1 {
		t.Fatalf("uninstrumented bus delivery broken: %v, n=%d", err, n)
	}
	var parked func()
	bus.Defer = func(d func()) { parked = d }
	if err := bus.Send(Message{Type: "t", To: "x"}); err != nil {
		t.Fatal(err)
	}
	parked()
	if n != 2 {
		t.Fatalf("deferred uninstrumented delivery broken: n=%d", n)
	}
}
