package agent

import (
	"time"

	"smartoclock/internal/metrics"
)

// Transport instrumentation for the live telemetry plane. Unlike the
// deterministic experiments — whose registries are single-goroutine and
// whose instrumentation records simulation time — the transports here run
// real goroutines and measure wall-clock latency, so the handles live under
// a metrics.Locked and every update takes the lock. Deterministic runs
// simply never call Instrument; a nil set of instruments costs one pointer
// test per hook.
//
// The series (all carrying a transport=bus|tcp label plus any caller
// labels):
//
//	transport_sends_total        messages accepted for delivery
//	transport_send_errors_total  failed sends (unknown recipient, dead link)
//	transport_recvs_total        frames delivered to a local handler
//	transport_send_bytes         message payload / wire frame sizes
//	transport_recv_bytes         received wire frame sizes (TCP only)
//	transport_send_seconds       send-to-delivered (bus) or write (TCP) time
//	transport_queue_depth        deferred deliveries (bus) / in-flight handlers (TCP)
type transportInstruments struct {
	lk          *metrics.Locked
	sends       *metrics.Counter
	sendErrs    *metrics.Counter
	recvs       *metrics.Counter
	sendBytes   *metrics.Histogram
	recvBytes   *metrics.Histogram
	sendSeconds *metrics.Histogram
	queueDepth  *metrics.Gauge
}

func newTransportInstruments(lk *metrics.Locked, transport string, labels []metrics.Label) *transportInstruments {
	ls := append([]metrics.Label{metrics.L("transport", transport)}, labels...)
	ti := &transportInstruments{lk: lk}
	lk.Do(func(r *metrics.Registry) {
		ti.sends = r.Counter("transport_sends_total", ls...)
		ti.sendErrs = r.Counter("transport_send_errors_total", ls...)
		ti.recvs = r.Counter("transport_recvs_total", ls...)
		ti.sendBytes = r.Histogram("transport_send_bytes", metrics.ByteBuckets, ls...)
		ti.recvBytes = r.Histogram("transport_recv_bytes", metrics.ByteBuckets, ls...)
		ti.sendSeconds = r.Histogram("transport_send_seconds", metrics.LatencyBuckets, ls...)
		ti.queueDepth = r.Gauge("transport_queue_depth", ls...)
	})
	return ti
}

// send records one send attempt. All methods are nil-safe so hook sites in
// uninstrumented transports stay a single comparison.
func (ti *transportInstruments) send(bytes int, dur time.Duration, err error) {
	if ti == nil {
		return
	}
	ti.lk.Lock()
	if err != nil {
		ti.sendErrs.Inc()
	} else {
		ti.sends.Inc()
		ti.sendBytes.Observe(float64(bytes))
		ti.sendSeconds.Observe(dur.Seconds())
	}
	ti.lk.Unlock()
}

// recv records one frame delivered to a local handler.
func (ti *transportInstruments) recv(bytes int) {
	if ti == nil {
		return
	}
	ti.lk.Lock()
	ti.recvs.Inc()
	ti.recvBytes.Observe(float64(bytes))
	ti.lk.Unlock()
}

// queue adjusts the queue-depth gauge.
func (ti *transportInstruments) queue(delta float64) {
	if ti == nil {
		return
	}
	ti.lk.Lock()
	ti.queueDepth.Add(delta)
	ti.lk.Unlock()
}

// Instrument attaches transport metrics to the bus under lk. Call before
// traffic starts; the bus measures payload sizes, send-to-delivered wall
// latency (across the Defer hook when one is set) and the depth of the
// deferred-delivery queue.
func (b *Bus) Instrument(lk *metrics.Locked, labels ...metrics.Label) {
	ti := newTransportInstruments(lk, "bus", labels)
	b.mu.Lock()
	b.instr = ti
	b.mu.Unlock()
}

// Instrument attaches transport metrics to the node under lk. Call before
// traffic starts; the node measures wire frame sizes in both directions,
// write latency, and the number of in-flight inbound handlers.
func (n *TCPNode) Instrument(lk *metrics.Locked, labels ...metrics.Label) {
	ti := newTransportInstruments(lk, "tcp", labels)
	n.mu.Lock()
	n.instr = ti
	n.mu.Unlock()
}
