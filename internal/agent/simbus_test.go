package agent

import (
	"testing"
	"time"

	"smartoclock/internal/sim"
)

// TestBusWithSimulatedLatency wires the bus's Defer hook to the
// discrete-event engine, modelling network latency between agents: sends
// are delivered 50 simulated milliseconds later, in order.
func TestBusWithSimulatedLatency(t *testing.T) {
	start := time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)
	engine := sim.NewEngine(start, 1)
	b := NewBus()
	b.Defer = func(deliver func()) {
		engine.After(50*time.Millisecond, deliver)
	}

	var deliveredAt []time.Time
	b.Register("goa", func(m Message) {
		deliveredAt = append(deliveredAt, engine.Now())
	})

	// Two sOAs report at different simulated instants.
	engine.After(time.Second, func() {
		msg, _ := NewMessage("soa.profile", "soa-1", "goa", nil)
		if err := b.Send(msg); err != nil {
			t.Error(err)
		}
	})
	engine.After(2*time.Second, func() {
		msg, _ := NewMessage("soa.profile", "soa-2", "goa", nil)
		if err := b.Send(msg); err != nil {
			t.Error(err)
		}
	})
	engine.RunAll()

	if len(deliveredAt) != 2 {
		t.Fatalf("delivered %d messages", len(deliveredAt))
	}
	if !deliveredAt[0].Equal(start.Add(time.Second + 50*time.Millisecond)) {
		t.Fatalf("first delivery at %v", deliveredAt[0])
	}
	if !deliveredAt[1].Equal(start.Add(2*time.Second + 50*time.Millisecond)) {
		t.Fatalf("second delivery at %v", deliveredAt[1])
	}
}
