package parallel

import (
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("non-positive requests must resolve to at least one worker")
	}
	if Workers(7) != 7 {
		t.Fatal("positive requests pass through")
	}
}

func TestRunCoversEveryShardOnce(t *testing.T) {
	for _, opts := range []Options{
		{Workers: 1},
		{Workers: 4},
		{Workers: 64},
		{Workers: 4, ShuffleSeed: 99},
		{Workers: 1, ShuffleSeed: 7},
	} {
		const n = 257
		var hits [n]atomic.Int32
		Run(n, opts, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("opts %+v: shard %d executed %d times", opts, i, got)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	Run(0, Options{Workers: 4}, func(int) { t.Fatal("must not run") })
	if out := Map(0, Options{}, func(i int) int { return i }); len(out) != 0 {
		t.Fatal("empty map must return empty slice")
	}
}

func TestMapDeterministicAcrossWorkersAndOrder(t *testing.T) {
	// A float fold whose result depends on summation order inside a shard
	// but not across shards: every scheduling must produce identical bytes.
	shard := func(i int) float64 {
		rng := rand.New(rand.NewSource(ChildSeed(42, uint64(i))))
		sum := 0.0
		for k := 0; k < 1000; k++ {
			sum += rng.Float64() * float64(i+1)
		}
		return sum
	}
	want := Map(33, Options{Workers: 1}, shard)
	for _, opts := range []Options{
		{Workers: 2}, {Workers: 8}, {Workers: 16, ShuffleSeed: 5}, {Workers: 3, ShuffleSeed: -11},
	} {
		got := Map(33, opts, shard)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("opts %+v: shard %d result %v != serial %v", opts, i, got[i], want[i])
			}
		}
	}
}

func TestChildSeedIndependentOfSiblings(t *testing.T) {
	// Child i's seed must be a pure function of (root, i).
	if ChildSeed(1, 5) != ChildSeed(1, 5) {
		t.Fatal("ChildSeed not deterministic")
	}
	// Distinct streams and distinct roots give distinct seeds.
	seen := map[int64]bool{}
	for root := int64(0); root < 8; root++ {
		for stream := uint64(0); stream < 1024; stream++ {
			s := ChildSeed(root, stream)
			if seen[s] {
				t.Fatalf("collision at root %d stream %d", root, stream)
			}
			seen[s] = true
		}
	}
}

func TestChildSeedStreamsDecorrelated(t *testing.T) {
	// Adjacent child streams must not produce correlated first draws: a
	// crude sign test on the first normal variate across 512 streams.
	pos := 0
	for i := uint64(0); i < 512; i++ {
		rng := rand.New(rand.NewSource(ChildSeed(123, i)))
		if rng.NormFloat64() > 0 {
			pos++
		}
	}
	if pos < 200 || pos > 312 {
		t.Fatalf("first-draw sign count %d/512, streams look correlated", pos)
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic payload lost: %v", r)
		}
	}()
	Run(16, Options{Workers: 4}, func(i int) {
		if i == 9 {
			panic("boom")
		}
	})
}
