// Package parallel provides the deterministic fan-out machinery behind the
// fleet-scale experiment runners: a bounded worker pool over an index space,
// and splitmix64-style child-seed derivation so every shard owns an
// independent random stream.
//
// Determinism contract: shard functions receive their shard index and write
// results only into index-addressed slots; callers reduce those slots in
// index order. Because no shard reads shared mutable state and the reduction
// order is fixed, results are bit-identical for any worker count and any
// dispatch order — which Run's shuffle option exists to prove under the race
// detector.
package parallel

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 select
// GOMAXPROCS, everything else is returned unchanged.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// splitmix64 is the finalizer of the SplitMix64 generator (Steele et al.,
// "Fast Splittable Pseudorandom Number Generators"): a bijective avalanche
// mix whose outputs at consecutive multiples of the golden gamma are
// statistically independent.
func splitmix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// goldenGamma is 2^64 / phi, the SplitMix64 stream increment.
const goldenGamma = 0x9E3779B97F4A7C15

// ChildSeed derives the seed of child stream `stream` from a root seed.
// The derivation is position-based, not draw-based: child i's seed depends
// only on (root, i), never on how much randomness other children consumed —
// the property that makes per-shard generation independent of shard count
// and execution order.
func ChildSeed(root int64, stream uint64) int64 {
	return int64(splitmix64(uint64(root) + (stream+1)*goldenGamma))
}

// Options tunes a Run/Map call.
type Options struct {
	// Workers is the maximum number of concurrent shard executions;
	// <= 0 selects GOMAXPROCS.
	Workers int
	// ShuffleSeed, when nonzero, dispatches shards in a seeded random
	// order instead of ascending index order. Results must not change —
	// the determinism tests run shuffled on purpose.
	ShuffleSeed int64
}

// Run executes fn(i) for every i in [0, n) across a bounded pool of
// workers. It returns after all shards complete. A panic in any shard is
// captured and re-raised on the calling goroutine once the pool has
// drained, so tests see ordinary panics instead of a crashed runtime.
func Run(n int, opts Options, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := Workers(opts.Workers)
	if workers > n {
		workers = n
	}

	// The dispatch order is the identity unless a shuffle is requested.
	order := []int(nil)
	if opts.ShuffleSeed != 0 {
		order = rand.New(rand.NewSource(opts.ShuffleSeed)).Perm(n)
	}

	if workers == 1 && order == nil {
		// Fast path: the serial sweep, with the same panic semantics.
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= n {
					return
				}
				i := k
				if order != nil {
					i = order[k]
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicked == nil {
								panicked = r
							}
							panicMu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("parallel: shard panic: %v", panicked))
	}
}

// Map runs fn over [0, n) with Run's scheduling and collects the results
// into an index-ordered slice: out[i] = fn(i) regardless of worker count
// or dispatch order. Reduce out front-to-back for bit-identical folds.
func Map[T any](n int, opts Options, fn func(i int) T) []T {
	out := make([]T, n)
	Run(n, opts, func(i int) { out[i] = fn(i) })
	return out
}
