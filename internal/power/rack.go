// Package power models the datacenter power-delivery side of SmartOClock:
// racks with shared power limits, the rack manager's warning messages, and
// the prioritized capping mechanism that protects the limit.
//
// The contract matches the paper (§II, §IV-D): under normal operation
// servers may collectively draw anything below the rack limit; when the draw
// reaches a warning threshold (e.g. 95% of the limit) the rack manager sends
// a warning message to every Server Overclocking Agent; when the draw
// reaches the limit itself, a power capping event occurs and server
// frequencies are throttled — lowest-priority servers first — until the
// rack is safe again.
package power

import (
	"fmt"
	"sort"
	"time"

	"smartoclock/internal/causal"
	"smartoclock/internal/metrics"
	"smartoclock/internal/obs"
)

// Server is the rack manager's view of one server: a power sensor plus a
// capping actuator. The cluster package provides implementations.
type Server interface {
	// Name identifies the server within the rack.
	Name() string
	// Power returns the server's instantaneous power draw in watts.
	Power() float64
	// CapPriority orders capping: servers with a LOWER value are throttled
	// first. The paper's prioritized capping protects critical workloads by
	// giving them higher values.
	CapPriority() int
	// ForceCap imposes a frequency ceiling "level" DVFS steps below turbo.
	// Level 0 removes the cap. Implementations clamp to MaxCapLevel.
	ForceCap(level int)
	// CapLevel returns the currently imposed cap level.
	CapLevel() int
	// MaxCapLevel returns the deepest cap level the hardware supports.
	MaxCapLevel() int
}

// EventKind distinguishes rack manager notifications.
type EventKind int

const (
	// EventWarning is sent when rack power crosses the warning threshold.
	// Exploring sOAs react by backing off; others ignore it (§IV-D).
	EventWarning EventKind = iota
	// EventCap is sent when rack power reaches the limit and capping is
	// applied.
	EventCap
	// EventRelease is sent when a previously applied cap is fully removed.
	EventRelease
)

// String returns the event kind's name.
func (k EventKind) String() string {
	switch k {
	case EventWarning:
		return "warning"
	case EventCap:
		return "cap"
	case EventRelease:
		return "release"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is a rack manager notification delivered to subscribers.
type Event struct {
	Kind  EventKind
	Time  time.Time
	Rack  string
	Power float64 // rack draw when the event fired, watts
	Limit float64 // rack power limit, watts
	// Span is the causal span of the rack manager's provenance record for
	// this event (internal/causal). Subscribers that act on the event —
	// an sOA shedding its exploration surplus — record their reaction with
	// Span as parent. Zero when provenance is off.
	Span uint64
}

// RackConfig parameterizes a rack manager.
type RackConfig struct {
	// Name identifies the rack.
	Name string
	// LimitWatts is the rack's power budget.
	LimitWatts float64
	// WarnFraction of the limit at which warning messages are sent
	// (the paper uses 95%).
	WarnFraction float64
	// TargetFraction of the limit capping throttles down to. Emergency
	// capping is deliberately deep (the paper reports 30-50%% frequency
	// degradation during events, §III-Q2) so the rack is safe even if
	// load keeps rising within one control period.
	TargetFraction float64
	// RestoreFraction of the limit below which applied caps are relaxed
	// one level per tick. It sits just under the warning threshold:
	// whenever the rack has headroom, caps recover gradually, so a
	// workload that keeps pushing causes recurring capping events rather
	// than a permanent throttle.
	RestoreFraction float64
	// Mode selects the capping discipline. The zero value is the original
	// interleaved prioritized capping; oversubscribed racks run
	// CapSeverity so shedding respects severity classes.
	Mode CapMode
}

// DefaultRackConfig returns the configuration used across the evaluation:
// warnings at 95% of the limit, emergency capping down to 78%, gradual
// restore while below 85%.
func DefaultRackConfig(name string, limitWatts float64) RackConfig {
	return RackConfig{
		Name:            name,
		LimitWatts:      limitWatts,
		WarnFraction:    0.95,
		TargetFraction:  0.78,
		RestoreFraction: 0.92,
	}
}

// Validate reports whether the configuration is consistent.
func (c RackConfig) Validate() error {
	switch {
	case c.LimitWatts <= 0:
		return fmt.Errorf("power: LimitWatts = %v, must be positive", c.LimitWatts)
	case c.WarnFraction <= 0 || c.WarnFraction > 1:
		return fmt.Errorf("power: WarnFraction = %v out of (0,1]", c.WarnFraction)
	case c.TargetFraction <= 0 || c.TargetFraction > c.WarnFraction:
		return fmt.Errorf("power: TargetFraction = %v must be in (0, WarnFraction]", c.TargetFraction)
	case c.RestoreFraction < 0 || c.RestoreFraction > c.WarnFraction:
		return fmt.Errorf("power: RestoreFraction = %v must be in [0, WarnFraction]", c.RestoreFraction)
	}
	return nil
}

// Rack is the rack manager: it polls server power, emits warnings, applies
// prioritized capping and tracks statistics.
type Rack struct {
	cfg     RackConfig
	servers []Server
	subs    []func(Event)

	capEvents   int
	warnings    int
	capped      bool
	cappedTime  time.Duration
	lastTick    time.Time
	hasLastTick bool

	// obs, when non-nil, holds resolved metric handles and the tracer.
	obs *rackObs
	// prov, when non-nil, receives a causal.Record per emitted rack event
	// (see provenance on emit); nil costs one pointer test.
	prov *causal.Recorder
}

// rackObs holds the rack manager's resolved instruments.
type rackObs struct {
	tracer    *obs.Tracer
	warnings  *metrics.Counter
	caps      *metrics.Counter
	releases  *metrics.Counter
	power     *metrics.Gauge
	limit     *metrics.Gauge
	util      *metrics.Histogram
	capLevels *metrics.Gauge
	// ticks/overLimitTicks book the underprediction rate of §V-C: the
	// fraction of control cycles spent above the provisioned limit.
	ticks          *metrics.Counter
	overLimitTicks *metrics.Counter
}

// Instrument attaches the rack manager to a registry and tracer. The rack
// label is the configured name; extra labels give experiment context.
func (r *Rack) Instrument(reg *metrics.Registry, tr *obs.Tracer, labels ...metrics.Label) {
	ls := make([]metrics.Label, 0, len(labels)+1)
	ls = append(ls, labels...)
	ls = append(ls, metrics.L("rack", r.cfg.Name))
	r.obs = &rackObs{
		tracer:         tr,
		warnings:       reg.Counter("rack_warnings_total", ls...),
		caps:           reg.Counter("rack_cap_events_total", ls...),
		releases:       reg.Counter("rack_releases_total", ls...),
		power:          reg.Gauge("rack_power_watts", ls...),
		limit:          reg.Gauge("rack_limit_watts", ls...),
		util:           reg.Histogram("rack_utilization", metrics.FractionBuckets, ls...),
		capLevels:      reg.Gauge("rack_cap_levels", ls...),
		ticks:          reg.Counter("rack_ticks_total", ls...),
		overLimitTicks: reg.Counter("rack_over_limit_ticks_total", ls...),
	}
	// The limit is static configuration, published once so alert rules can
	// judge the power series against the same rack's limit series.
	r.obs.limit.Set(r.cfg.LimitWatts)
}

// obsEvent counts and traces one emitted rack event.
func (r *Rack) obsEvent(ev Event) {
	if r.obs == nil {
		return
	}
	switch ev.Kind {
	case EventWarning:
		r.obs.warnings.Inc()
	case EventCap:
		r.obs.caps.Inc()
	case EventRelease:
		r.obs.releases.Inc()
	}
	// Warnings are too frequent near the threshold to trace individually;
	// capping actions and full releases are the bounded, load-bearing ones.
	if ev.Kind != EventWarning {
		r.obs.tracer.Emit(obs.Event{
			Time: ev.Time, Component: obs.Rack, Kind: ev.Kind.String(),
			Source: ev.Rack, Value: ev.Power, Detail: "limit=" + fmt.Sprintf("%g", ev.Limit),
			Span: ev.Span,
		})
	}
}

// obsTick samples the power gauge and utilization histogram once per
// control cycle.
func (r *Rack) obsTick(p float64) {
	if r.obs == nil {
		return
	}
	r.obs.power.Set(p)
	r.obs.util.Observe(p / r.cfg.LimitWatts)
	r.obs.ticks.Inc()
	if p > r.cfg.LimitWatts {
		r.obs.overLimitTicks.Inc()
	}
	lvl := 0
	for _, s := range r.servers {
		lvl += s.CapLevel()
	}
	r.obs.capLevels.Set(float64(lvl))
}

// NewRack creates a rack manager. It panics on invalid configuration.
func NewRack(cfg RackConfig, servers ...Server) *Rack {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Rack{cfg: cfg, servers: servers}
}

// Config returns the rack's configuration.
func (r *Rack) Config() RackConfig { return r.cfg }

// Name returns the rack's name.
func (r *Rack) Name() string { return r.cfg.Name }

// Servers returns the managed servers.
func (r *Rack) Servers() []Server { return r.servers }

// AddServer registers an additional server. Under severity-ordered capping
// a late joiner must respect the discipline already in force: if any server
// of a MORE critical class is currently capped, the newcomer's class was by
// definition exhausted before that class was touched, so the newcomer
// arrives fully capped and recovers through the normal severity-ordered
// restore path. Without this, a harvest deployment admitted onto a
// capping rack would run free while critical work stays throttled.
func (r *Rack) AddServer(s Server) {
	if r.cfg.Mode == CapSeverity {
		sv := SeverityOf(s)
		for _, e := range r.servers {
			if e.CapLevel() > 0 && SeverityOf(e) < sv {
				s.ForceCap(s.MaxCapLevel())
				break
			}
		}
	}
	r.servers = append(r.servers, s)
}

// Subscribe registers fn to receive rack events. Subscriptions cannot be
// removed; subscribers that go away should ignore events.
func (r *Rack) Subscribe(fn func(Event)) { r.subs = append(r.subs, fn) }

// Power returns the rack's instantaneous total draw in watts.
func (r *Rack) Power() float64 {
	total := 0.0
	for _, s := range r.servers {
		total += s.Power()
	}
	return total
}

// Utilization returns current draw as a fraction of the limit.
func (r *Rack) Utilization() float64 { return r.Power() / r.cfg.LimitWatts }

// CapEvents returns the number of capping events so far.
func (r *Rack) CapEvents() int { return r.capEvents }

// Warnings returns the number of warning messages sent so far.
func (r *Rack) Warnings() int { return r.warnings }

// CappedTime returns total time spent with at least one cap applied.
func (r *Rack) CappedTime() time.Duration { return r.cappedTime }

// IsCapped reports whether any server currently has a forced cap.
func (r *Rack) IsCapped() bool {
	for _, s := range r.servers {
		if s.CapLevel() > 0 {
			return true
		}
	}
	return false
}

// AttachProvenance points the rack manager at a provenance recorder. Pass
// nil to detach.
func (r *Rack) AttachProvenance(rec *causal.Recorder) { r.prov = rec }

// provEvent records an emitted rack event as a risk decision, returning
// its span (0 with provenance off). Cap events additionally capture how
// much throttling the capping pass applied.
func (r *Rack) provEvent(ev Event) uint64 {
	if r.prov == nil {
		return 0
	}
	rec := causal.Record{
		Time:      ev.Time,
		Kind:      causal.KindDecision,
		Component: "rack",
		Site:      "rack." + ev.Kind.String(),
		Subject:   ev.Rack,
		Verdict:   ev.Kind.String(),
		Inputs: []causal.Input{
			causal.In("power_watts", ev.Power),
			causal.In("limit_watts", ev.Limit),
		},
	}
	if ev.Kind == EventCap {
		capped, levels := 0, 0
		for _, s := range r.servers {
			if l := s.CapLevel(); l > 0 {
				capped++
				levels += l
			}
		}
		rec.Inputs = append(rec.Inputs,
			causal.In("servers_capped", float64(capped)),
			causal.In("cap_levels", float64(levels)))
	}
	return uint64(r.prov.Emit(rec))
}

func (r *Rack) emit(ev Event) {
	ev.Span = r.provEvent(ev)
	r.obsEvent(ev)
	for _, fn := range r.subs {
		fn(ev)
	}
}

// Tick runs one rack-manager control cycle at time now: measure, warn,
// cap or restore. Call it at a fixed cadence from the simulation.
func (r *Rack) Tick(now time.Time) {
	if r.hasLastTick && r.IsCapped() {
		r.cappedTime += now.Sub(r.lastTick)
	}
	r.lastTick = now
	r.hasLastTick = true

	p := r.Power()
	r.obsTick(p)
	limit := r.cfg.LimitWatts
	switch {
	case p >= limit:
		// A real rack manager polls far faster than our tick, so the
		// draw crossed the warning threshold before reaching the limit:
		// deliver warnings first and let subscribers shed load round by
		// round; only if the rack stays over the limit does capping
		// trigger. Subscribers that ignore warnings (or have nothing
		// left to shed) make no progress and get capped.
		for rounds := 0; p >= limit && rounds < 10; rounds++ {
			r.warnings++
			r.emit(Event{Kind: EventWarning, Time: now, Rack: r.cfg.Name, Power: p, Limit: limit})
			next := r.Power()
			if next >= p {
				break // nobody is shedding
			}
			p = next
		}
		if p < limit {
			break
		}
		r.capEvents++
		r.applyCapping(p)
		r.emit(Event{Kind: EventCap, Time: now, Rack: r.cfg.Name, Power: p, Limit: limit})
	case p >= r.cfg.WarnFraction*limit:
		r.warnings++
		r.emit(Event{Kind: EventWarning, Time: now, Rack: r.cfg.Name, Power: p, Limit: limit})
	case p < r.cfg.RestoreFraction*limit:
		if r.relaxCapping() && !r.IsCapped() {
			r.emit(Event{Kind: EventRelease, Time: now, Rack: r.cfg.Name, Power: r.Power(), Limit: limit})
		}
	}
}

// applyCapping escalates cap levels until the modeled rack power drops
// below the target fraction of the limit or every server is fully
// throttled, under the configured capping discipline.
func (r *Rack) applyCapping(current float64) {
	switch r.cfg.Mode {
	case CapSeverity:
		r.applyCappingSeverity(current, false)
	case CapInvertedUnsafe:
		r.applyCappingSeverity(current, true)
	case CapDisabledUnsafe:
		// Enforcement off: the negative-test mode that lets
		// invariant.NoBrownout prove it has teeth.
	default:
		r.applyCappingInterleaved(current)
	}
}

// applyCappingInterleaved is the original discipline: one level per server
// round-robin, lowest CapPriority first.
func (r *Rack) applyCappingInterleaved(current float64) {
	target := r.cfg.TargetFraction * r.cfg.LimitWatts
	ordered := make([]Server, len(r.servers))
	copy(ordered, r.servers)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].CapPriority() < ordered[j].CapPriority()
	})
	for current > target {
		progressed := false
		for _, s := range ordered {
			if current <= target {
				break
			}
			if s.CapLevel() >= s.MaxCapLevel() {
				continue
			}
			s.ForceCap(s.CapLevel() + 1)
			progressed = true
			current = r.Power()
		}
		if !progressed {
			break // everything at the floor; nothing more we can do
		}
	}
}

// applyCappingSeverity is the severity-ordered discipline: servers sort by
// severity class (most sheddable first — or most critical first when
// inverted, the negative-test mode), with CapPriority breaking ties inside a
// class. One class is driven all the way to its cap floor before the next
// class is touched, so a server of class k is capped only while every more
// sheddable class is fully throttled — the property invariant.SeverityOrder
// audits.
func (r *Rack) applyCappingSeverity(current float64, invert bool) {
	target := r.cfg.TargetFraction * r.cfg.LimitWatts
	if current <= target {
		return
	}
	ordered := make([]Server, len(r.servers))
	copy(ordered, r.servers)
	sort.SliceStable(ordered, func(i, j int) bool {
		si, sj := SeverityOf(ordered[i]), SeverityOf(ordered[j])
		if si != sj {
			if invert {
				return si < sj
			}
			return si > sj
		}
		return ordered[i].CapPriority() < ordered[j].CapPriority()
	})
	for lo := 0; lo < len(ordered) && current > target; {
		hi := lo
		for hi < len(ordered) && SeverityOf(ordered[hi]) == SeverityOf(ordered[lo]) {
			hi++
		}
		class := ordered[lo:hi]
		for current > target {
			progressed := false
			for _, s := range class {
				if current <= target {
					break
				}
				if s.CapLevel() >= s.MaxCapLevel() {
					continue
				}
				s.ForceCap(s.CapLevel() + 1)
				progressed = true
				current = r.Power()
			}
			if !progressed {
				break // class exhausted; move on to the next one
			}
		}
		lo = hi
	}
}

// relaxCapping lowers cap levels one step per tick under the configured
// discipline, reporting whether any level changed.
func (r *Rack) relaxCapping() bool {
	if r.cfg.Mode == CapSeverity {
		return r.relaxCappingSeverity()
	}
	return r.relaxCappingInterleaved()
}

// relaxCappingInterleaved lowers cap levels one step on every capped
// server, highest CapPriority first so important servers recover sooner.
func (r *Rack) relaxCappingInterleaved() bool {
	changed := false
	ordered := make([]Server, len(r.servers))
	copy(ordered, r.servers)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].CapPriority() > ordered[j].CapPriority()
	})
	for _, s := range ordered {
		if lvl := s.CapLevel(); lvl > 0 {
			s.ForceCap(lvl - 1)
			changed = true
		}
	}
	return changed
}

// relaxCappingSeverity restores in severity order: only the most critical
// class that still has capped servers relaxes this tick, one level each;
// more sheddable classes start recovering only once every class above them
// is fully uncapped. Restoring in this order keeps the SeverityOrder
// property intact on the way down as well as on the way up — uncapping
// harvest first would leave critical work throttled while harvest ran free.
func (r *Rack) relaxCappingSeverity() bool {
	best := Severity(-1)
	for _, s := range r.servers {
		if s.CapLevel() > 0 {
			if sv := SeverityOf(s); best < 0 || sv < best {
				best = sv
			}
		}
	}
	if best < 0 {
		return false
	}
	var relaxed []Server
	for _, s := range r.servers {
		if SeverityOf(s) != best {
			continue
		}
		if lvl := s.CapLevel(); lvl > 0 {
			s.ForceCap(lvl - 1)
			relaxed = append(relaxed, s)
		}
	}
	// A whole class stepping up at once can overshoot the hysteresis
	// margin: if the probe shows the relaxed rack at or over the limit,
	// undo and hold the caps until the load drops further. Without this a
	// restore tick itself can brown the rack out.
	if len(relaxed) > 0 && r.Power() >= r.cfg.LimitWatts {
		for _, s := range relaxed {
			s.ForceCap(s.CapLevel() + 1)
		}
		return false
	}
	return len(relaxed) > 0
}
