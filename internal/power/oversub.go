// Power oversubscription: admission control against predicted rack peaks.
//
// SmartOClock spends rack headroom on overclocking; the sibling policy
// family from the same Azure lineage (Kumbhare et al., "Prediction-Based
// Power Oversubscription in Cloud Platforms") spends it the opposite way —
// admit more servers than the provisioned power supports, trusting a
// high-quantile prediction of the rack peak, and back the bet with
// severity-classed capping when reality exceeds the prediction. The
// Admission controller below is that front half: a deployment lands on a
// rack only while the predicted rack peak stays inside the oversubscription
// budget. The back half is CapSeverity in the rack manager.
package power

import (
	"fmt"
	"time"

	"smartoclock/internal/causal"
	"smartoclock/internal/predict"
	"smartoclock/internal/timeseries"
)

// OversubConfig parameterizes predicted-peak admission.
type OversubConfig struct {
	// Ratio scales the provisioned rack limit into the admission budget:
	// predicted peaks may add up to Ratio × LimitWatts. Ratios above 1
	// deliberately oversubscribe — capping absorbs the days prediction
	// gets wrong.
	Ratio float64
	// Quantile of the candidate's day-template slots used as its predicted
	// peak (the policy default is 0.98).
	Quantile float64
	// MaxTemplateAge bounds how stale a candidate's fitted template may be
	// before admission distrusts it and falls back to the nameplate.
	MaxTemplateAge time.Duration
	// AdmitAllUnsafe bypasses the budget check and grants everything. It
	// exists for the invariant negative tests (the over-admitting canary)
	// and must never ship in a real policy.
	AdmitAllUnsafe bool
}

// DefaultOversubConfig returns the policy defaults: budget equal to the
// provisioned limit, 0.98-quantile peaks, two-week template freshness.
func DefaultOversubConfig() OversubConfig {
	return OversubConfig{
		Ratio:          1.0,
		Quantile:       0.98,
		MaxTemplateAge: 14 * 24 * time.Hour,
	}
}

// Validate reports whether the configuration is consistent.
func (c OversubConfig) Validate() error {
	switch {
	case c.Ratio <= 0:
		return fmt.Errorf("power: oversubscription Ratio = %v, must be positive", c.Ratio)
	case c.Quantile <= 0 || c.Quantile > 1:
		return fmt.Errorf("power: oversubscription Quantile = %v out of (0,1]", c.Quantile)
	case c.MaxTemplateAge <= 0:
		return fmt.Errorf("power: oversubscription MaxTemplateAge = %v, must be positive", c.MaxTemplateAge)
	}
	return nil
}

// Candidate is one deployment asking to be placed on the rack.
type Candidate struct {
	// Name identifies the deployment in decisions and audit trails.
	Name string
	// NameplateWatts is the worst-case draw (all cores busy at turbo); it
	// is both the conservative fallback peak and a cap on what any fitted
	// template may claim.
	NameplateWatts float64
	// Template is the deployment's fitted power day-template; nil means no
	// history is available and admission must assume the nameplate.
	Template *timeseries.WeekTemplate
	// FittedAt is when Template was fitted; older than MaxTemplateAge is
	// treated the same as absent.
	FittedAt time.Time
	// Severity is the capping class the deployment will carry if admitted.
	Severity Severity
}

// AdmitDecision records one admission decision with the numbers it compared.
type AdmitDecision struct {
	Granted bool
	// PeakWatts is the candidate's predicted peak as admission scored it.
	PeakWatts float64
	// RackPeakWatts is the predicted rack peak before this candidate.
	RackPeakWatts float64
	// BudgetWatts is Ratio × LimitWatts.
	BudgetWatts float64
	// Conservative is true when the nameplate fallback was used because the
	// template was absent, stale or unusable.
	Conservative bool
	// Reason explains a rejection or a fallback; empty on a clean grant.
	Reason string
}

// Admission is a rack's oversubscription admission controller. It is not
// safe for concurrent use; the simulation drives it from one goroutine.
type Admission struct {
	cfg      OversubConfig
	limit    float64
	peak     float64 // predicted rack peak: reservations + admitted peaks
	admitted int
	// prov, when non-nil, receives a causal.Record per admission verdict.
	prov *causal.Recorder
}

// AttachProvenance points the admission controller at a provenance
// recorder. Pass nil to detach.
func (a *Admission) AttachProvenance(rec *causal.Recorder) { a.prov = rec }

// NewAdmission creates an admission controller for a rack with the given
// provisioned limit. It returns an error on invalid configuration.
func NewAdmission(cfg OversubConfig, limitWatts float64) (*Admission, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if limitWatts <= 0 {
		return nil, fmt.Errorf("power: admission limit %v W, must be positive", limitWatts)
	}
	return &Admission{cfg: cfg, limit: limitWatts}, nil
}

// Reserve pre-charges the predicted rack peak with load that is already on
// the rack (e.g. the production servers an overclocking deployment shares
// the rack with). Reserved watts are not counted as admissions.
func (a *Admission) Reserve(watts float64) {
	if watts > 0 {
		a.peak += watts
	}
}

// PredictedRackPeak returns the current predicted rack peak: reservations
// plus the peaks of every admitted candidate.
func (a *Admission) PredictedRackPeak() float64 { return a.peak }

// BudgetWatts returns the admission budget, Ratio × limit.
func (a *Admission) BudgetWatts() float64 { return a.cfg.Ratio * a.limit }

// Admitted returns how many candidates have been granted.
func (a *Admission) Admitted() int { return a.admitted }

// candidatePeak scores one candidate: the quantile of its fitted template
// when fresh and usable, the nameplate otherwise.
func (a *Admission) candidatePeak(now time.Time, c Candidate) (peak float64, conservative bool, why string) {
	switch {
	case c.Template == nil:
		return c.NameplateWatts, true, "no day template"
	case now.Sub(c.FittedAt) > a.cfg.MaxTemplateAge:
		return c.NameplateWatts, true, fmt.Sprintf("day template stale (%v old)", now.Sub(c.FittedAt))
	}
	q, ok := predict.PeakQuantile(c.Template, a.cfg.Quantile)
	if !ok || q <= 0 {
		return c.NameplateWatts, true, "day template carries no signal"
	}
	if q > c.NameplateWatts {
		// A noisy template must not claim more than physics allows.
		q = c.NameplateWatts
	}
	return q, false, ""
}

// Admit decides whether the candidate fits: the predicted rack peak plus
// the candidate's predicted peak must stay within the oversubscription
// budget. The comparison is exact (<=) so a candidate landing precisely on
// the boundary is admitted. On a grant the candidate's peak is charged
// against the rack.
func (a *Admission) Admit(now time.Time, c Candidate) AdmitDecision {
	d := AdmitDecision{RackPeakWatts: a.peak, BudgetWatts: a.BudgetWatts()}
	if c.NameplateWatts <= 0 {
		d.Reason = fmt.Sprintf("candidate %s nameplate %v W, must be positive", c.Name, c.NameplateWatts)
		a.provAdmit(now, c, d)
		return d
	}
	peak, conservative, why := a.candidatePeak(now, c)
	d.PeakWatts, d.Conservative, d.Reason = peak, conservative, why
	switch {
	case a.cfg.AdmitAllUnsafe:
		d.Granted = true
		d.Reason = "UNSAFE admit-all canary"
	case a.peak+peak <= d.BudgetWatts:
		d.Granted = true
	default:
		d.Granted = false
		d.Reason = fmt.Sprintf("predicted rack peak %.1f + %.1f W exceeds budget %.1f W",
			a.peak, peak, d.BudgetWatts)
		a.provAdmit(now, c, d)
		return d
	}
	a.peak += peak
	a.admitted++
	a.provAdmit(now, c, d)
	return d
}

// provAdmit records one oversubscription admission verdict.
func (a *Admission) provAdmit(now time.Time, c Candidate, d AdmitDecision) {
	if a.prov == nil {
		return
	}
	verdict := "deny"
	if d.Granted {
		verdict = "grant"
	}
	conservative := 0.0
	if d.Conservative {
		conservative = 1
	}
	a.prov.Emit(causal.Record{
		Time:      now,
		Kind:      causal.KindDecision,
		Component: "rack",
		Site:      "oversub.admit",
		Subject:   c.Name,
		Policy:    fmt.Sprintf("peak-q%g", a.cfg.Quantile),
		Verdict:   verdict,
		Inputs: []causal.Input{
			causal.In("peak_watts", d.PeakWatts),
			causal.In("rack_peak_watts", d.RackPeakWatts),
			causal.In("budget_watts", d.BudgetWatts),
			causal.In("conservative", conservative),
		},
		Detail: d.Reason,
	})
}
