package power

import (
	"testing"
	"time"
)

// fakeServer implements Server with a direct mapping from cap level to
// power: each cap level removes stepWatts from the draw.
type fakeServer struct {
	name      string
	baseWatts float64
	stepWatts float64
	priority  int
	capLevel  int
	maxCap    int
}

func (f *fakeServer) Name() string     { return f.name }
func (f *fakeServer) CapPriority() int { return f.priority }
func (f *fakeServer) CapLevel() int    { return f.capLevel }
func (f *fakeServer) MaxCapLevel() int { return f.maxCap }

func (f *fakeServer) Power() float64 {
	p := f.baseWatts - float64(f.capLevel)*f.stepWatts
	if p < 0 {
		p = 0
	}
	return p
}

func (f *fakeServer) ForceCap(level int) {
	if level < 0 {
		level = 0
	}
	if level > f.maxCap {
		level = f.maxCap
	}
	f.capLevel = level
}

func newFake(name string, watts float64, prio int) *fakeServer {
	return &fakeServer{name: name, baseWatts: watts, stepWatts: 20, priority: prio, maxCap: 18}
}

var tick0 = time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC)

func TestDefaultRackConfigValid(t *testing.T) {
	if err := DefaultRackConfig("r", 10000).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRackConfigValidation(t *testing.T) {
	bad := []RackConfig{
		{Name: "r", LimitWatts: 0, WarnFraction: 0.95, TargetFraction: 0.9, RestoreFraction: 0.8},
		{Name: "r", LimitWatts: 100, WarnFraction: 1.5, TargetFraction: 0.9, RestoreFraction: 0.8},
		{Name: "r", LimitWatts: 100, WarnFraction: 0.95, TargetFraction: 0.96, RestoreFraction: 0.8},
		{Name: "r", LimitWatts: 100, WarnFraction: 0.95, TargetFraction: 0.9, RestoreFraction: 0.96},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestRackPowerSumsServers(t *testing.T) {
	a, b := newFake("a", 300, 0), newFake("b", 400, 0)
	r := NewRack(DefaultRackConfig("r", 1000), a, b)
	if got := r.Power(); got != 700 {
		t.Fatalf("Power = %v", got)
	}
	if got := r.Utilization(); got != 0.7 {
		t.Fatalf("Utilization = %v", got)
	}
}

func TestTickBelowWarnDoesNothing(t *testing.T) {
	a := newFake("a", 500, 0)
	r := NewRack(DefaultRackConfig("r", 1000), a)
	var events []Event
	r.Subscribe(func(e Event) { events = append(events, e) })
	r.Tick(tick0)
	if len(events) != 0 || r.CapEvents() != 0 || r.Warnings() != 0 {
		t.Fatalf("events = %v", events)
	}
}

func TestTickWarning(t *testing.T) {
	a := newFake("a", 960, 0) // 96% of limit
	r := NewRack(DefaultRackConfig("r", 1000), a)
	var events []Event
	r.Subscribe(func(e Event) { events = append(events, e) })
	r.Tick(tick0)
	if len(events) != 1 || events[0].Kind != EventWarning {
		t.Fatalf("events = %v", events)
	}
	if r.Warnings() != 1 || r.CapEvents() != 0 {
		t.Fatalf("counters: warn=%d cap=%d", r.Warnings(), r.CapEvents())
	}
	if a.capLevel != 0 {
		t.Fatal("warning must not throttle")
	}
}

func TestTickCapThrottlesToTarget(t *testing.T) {
	a := newFake("a", 600, 0)
	b := newFake("b", 500, 1)
	r := NewRack(DefaultRackConfig("r", 1000), a, b)
	var events []Event
	r.Subscribe(func(e Event) { events = append(events, e) })
	r.Tick(tick0)
	if r.CapEvents() != 1 {
		t.Fatalf("cap events = %d", r.CapEvents())
	}
	// A warning precedes the cap (the shed-first contract); the final
	// event is the cap itself.
	if len(events) < 2 || events[len(events)-1].Kind != EventCap || events[0].Kind != EventWarning {
		t.Fatalf("events = %v", events)
	}
	if got := r.Power(); got > 0.78*1000 {
		t.Fatalf("power after capping = %v, want <= 780", got)
	}
	// Lowest priority (a, priority 0) must be throttled at least as deep.
	if a.capLevel < b.capLevel {
		t.Fatalf("priorities inverted: a=%d b=%d", a.capLevel, b.capLevel)
	}
}

func TestCappingPrefersLowPriority(t *testing.T) {
	low := newFake("low", 520, 0)
	high := newFake("high", 520, 10)
	r := NewRack(DefaultRackConfig("r", 1000), high, low) // registration order shuffled
	r.Tick(tick0)
	if low.capLevel == 0 {
		t.Fatal("low-priority server not throttled")
	}
	if high.capLevel > low.capLevel {
		t.Fatalf("high-priority server throttled deeper: high=%d low=%d", high.capLevel, low.capLevel)
	}
}

func TestCappingStopsAtFloor(t *testing.T) {
	a := newFake("a", 5000, 0) // far above limit even fully throttled
	a.maxCap = 3
	r := NewRack(DefaultRackConfig("r", 1000), a)
	r.Tick(tick0) // must terminate
	if a.capLevel != 3 {
		t.Fatalf("capLevel = %d, want max 3", a.capLevel)
	}
}

func TestRestoreRelaxesCaps(t *testing.T) {
	a := newFake("a", 1100, 0)
	r := NewRack(DefaultRackConfig("r", 1000), a)
	r.Tick(tick0)
	if a.capLevel == 0 {
		t.Fatal("setup: server must be capped")
	}
	// Load drops far below restore threshold.
	a.baseWatts = 300
	lvl := a.capLevel
	var released bool
	r.Subscribe(func(e Event) {
		if e.Kind == EventRelease {
			released = true
		}
	})
	now := tick0
	for i := 0; i < lvl; i++ {
		now = now.Add(time.Second)
		r.Tick(now)
	}
	if a.capLevel != 0 {
		t.Fatalf("capLevel = %d after %d restore ticks", a.capLevel, lvl)
	}
	if !released {
		t.Fatal("no release event")
	}
	if r.IsCapped() {
		t.Fatal("IsCapped after full restore")
	}
}

func TestCappedTimeAccumulates(t *testing.T) {
	a := newFake("a", 1100, 0)
	r := NewRack(DefaultRackConfig("r", 1000), a)
	r.Tick(tick0)
	r.Tick(tick0.Add(10 * time.Second))
	if got := r.CappedTime(); got != 10*time.Second {
		t.Fatalf("CappedTime = %v", got)
	}
}

func TestAddServer(t *testing.T) {
	r := NewRack(DefaultRackConfig("r", 1000))
	r.AddServer(newFake("a", 100, 0))
	if len(r.Servers()) != 1 || r.Power() != 100 {
		t.Fatal("AddServer failed")
	}
}

func TestNewRackPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRack(RackConfig{Name: "r"})
}

func TestEventKindString(t *testing.T) {
	if EventWarning.String() != "warning" || EventCap.String() != "cap" || EventRelease.String() != "release" {
		t.Fatal("event kind names wrong")
	}
	if EventKind(42).String() == "" {
		t.Fatal("unknown kind must still format")
	}
}

func TestHierarchyEvenShare(t *testing.T) {
	dc := NewNode("dc", 12000).Add(
		NewNode("rack1", 0), NewNode("rack2", 0), NewNode("rack3", 0),
	)
	dc.ApplyEvenShare()
	for _, c := range dc.Children {
		if c.Budget != 4000 {
			t.Fatalf("child budget = %v", c.Budget)
		}
	}
	leaf := NewNode("leaf", 100)
	if leaf.EvenShare() != 0 {
		t.Fatal("leaf EvenShare must be 0")
	}
}

func TestHierarchyOversubscription(t *testing.T) {
	rack := NewNode("rack", 1000)
	s1 := NewNode("s1", 0)
	s1.PeakDraw = 600
	s2 := NewNode("s2", 0)
	s2.PeakDraw = 700
	rack.Add(s1, s2)
	if got := rack.Oversubscription(); got != 1.3 {
		t.Fatalf("Oversubscription = %v", got)
	}
	if NewNode("x", 0).Oversubscription() != 0 {
		t.Fatal("zero-budget oversubscription must be 0")
	}
}

func TestHierarchyWalkFindValidate(t *testing.T) {
	dc := NewNode("dc", 10000).Add(
		NewNode("rack1", 5000).Add(NewNode("s1", 500)),
		NewNode("rack2", 5000),
	)
	count := 0
	dc.Walk(func(*Node) { count++ })
	if count != 4 {
		t.Fatalf("Walk visited %d", count)
	}
	if n, ok := dc.Find("s1"); !ok || n.Budget != 500 {
		t.Fatal("Find failed")
	}
	if _, ok := dc.Find("nope"); ok {
		t.Fatal("Find must miss")
	}
	if err := dc.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := NewNode("p", 100).Add(NewNode("c", 200))
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}
