package power

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"smartoclock/internal/timeseries"
)

// sevFake is a fakeServer with a severity class.
type sevFake struct {
	fakeServer
	sev Severity
}

func (f *sevFake) Severity() Severity { return f.sev }

func newSevFake(name string, watts float64, sev Severity) *sevFake {
	return &sevFake{
		fakeServer: fakeServer{name: name, baseWatts: watts, stepWatts: 20, maxCap: 18},
		sev:        sev,
	}
}

// checkSeverityOrder asserts the capping discipline's core property on the
// current rack state: no server of class k capped while a server of a more
// sheddable class (>k) is uncapped.
func checkSeverityOrder(t *testing.T, r *Rack, ctx string) {
	t.Helper()
	var capped, uncapped [NumSeverities]string
	for _, s := range r.Servers() {
		k := SeverityOf(s)
		if s.CapLevel() > 0 {
			capped[k] = s.Name()
		} else {
			uncapped[k] = s.Name()
		}
	}
	for k := Severity(0); k < NumSeverities; k++ {
		if capped[k] == "" {
			continue
		}
		for j := k + 1; j < NumSeverities; j++ {
			if uncapped[j] != "" {
				t.Fatalf("%s: %s (severity %v) capped while %s (severity %v) uncapped",
					ctx, capped[k], k, uncapped[j], j)
			}
		}
	}
}

// TestSeverityCappingProperty drives randomized fleets through overload and
// recovery and asserts, after every control cycle, that (a) severity order
// holds and (b) capping made the rack safe whenever enough sheddable power
// existed: post-cap draw at or under the limit, or every server at its cap
// floor.
func TestSeverityCappingProperty(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 2 + rng.Intn(10)
			fleet := make([]*sevFake, n)
			total := 0.0
			for i := range fleet {
				fleet[i] = newSevFake(fmt.Sprintf("s%d", i),
					100+rng.Float64()*400, Severity(rng.Intn(int(NumSeverities))))
				fleet[i].stepWatts = 5 + rng.Float64()*20
				fleet[i].maxCap = 4 + rng.Intn(15)
				total += fleet[i].baseWatts
			}
			// The limit sits well below the fleet's draw, so the first tick
			// is an overload and capping must engage.
			cfg := DefaultRackConfig("r", total*(0.4+rng.Float64()*0.5))
			cfg.Mode = CapSeverity
			rack := NewRack(cfg)
			for _, f := range fleet {
				rack.AddServer(f)
			}

			now := tick0
			for tickN := 0; tickN < 12; tickN++ {
				// Wander the load so ticks exercise escalation, steady
				// state and the restore path in one run.
				for _, f := range fleet {
					f.baseWatts *= 0.7 + rng.Float64()*0.6
				}
				rack.Tick(now)
				ctx := fmt.Sprintf("tick %d", tickN)
				checkSeverityOrder(t, rack, ctx)
				if p := rack.Power(); p > cfg.LimitWatts {
					for _, f := range fleet {
						if f.CapLevel() < f.MaxCapLevel() {
							t.Fatalf("%s: draw %.1f over limit %.1f with %s not at cap floor (%d/%d)",
								ctx, p, cfg.LimitWatts, f.Name(), f.CapLevel(), f.MaxCapLevel())
						}
					}
				}
				now = now.Add(15 * time.Second)
			}

			// Collapse the load: repeated ticks below the restore threshold
			// must walk every cap back to zero without ever breaking the
			// order on the way down.
			for _, f := range fleet {
				f.baseWatts = 1
			}
			for tickN := 0; rack.IsCapped(); tickN++ {
				if tickN > 500 {
					t.Fatal("caps never fully restored")
				}
				rack.Tick(now)
				checkSeverityOrder(t, rack, fmt.Sprintf("restore tick %d", tickN))
				now = now.Add(15 * time.Second)
			}
		})
	}
}

// TestSeverityCappingShedsMostSheddableFirst pins the direction: with one
// server per class and a modest overshoot, only the highest (most
// sheddable) class is touched.
func TestSeverityCappingShedsMostSheddableFirst(t *testing.T) {
	crit := newSevFake("crit", 300, SeverityCritical)
	low := newSevFake("low", 300, SeverityLow)
	cfg := DefaultRackConfig("r", 590)
	cfg.TargetFraction = 0.95
	cfg.Mode = CapSeverity
	rack := NewRack(cfg, crit, low)
	rack.Tick(tick0)
	if crit.CapLevel() != 0 {
		t.Fatalf("critical server capped to %d; harvest had %d spare levels",
			crit.CapLevel(), low.MaxCapLevel()-low.CapLevel())
	}
	if low.CapLevel() == 0 {
		t.Fatal("overload but the sheddable server was not capped")
	}
}

// TestSeverityRestoreCriticalFirst pins the restore direction: the most
// critical capped class recovers fully before more sheddable classes start.
func TestSeverityRestoreCriticalFirst(t *testing.T) {
	med := newSevFake("med", 350, SeverityMedium)
	low := newSevFake("low", 300, SeverityLow)
	cfg := DefaultRackConfig("r", 400)
	cfg.Mode = CapSeverity
	rack := NewRack(cfg, med, low)
	rack.Tick(tick0) // overload: low exhausted, med capped too
	if med.CapLevel() == 0 || low.CapLevel() == 0 {
		t.Fatalf("setup: expected both capped, got med=%d low=%d", med.CapLevel(), low.CapLevel())
	}
	med.baseWatts, low.baseWatts = 10, 10
	now := tick0
	for i := 0; med.CapLevel() > 0; i++ {
		if i > 100 {
			t.Fatal("medium server never restored")
		}
		now = now.Add(15 * time.Second)
		rack.Tick(now)
		if med.CapLevel() > 0 && low.CapLevel() < low.capBefore(t) {
			t.Fatal("sheddable class relaxed before critical class finished")
		}
	}
	if low.CapLevel() == 0 {
		t.Fatal("low fully restored in lockstep with med; expected critical-first")
	}
}

// capBefore returns the server's max cap level for comparison (the low
// server is exhausted by the overload tick and must stay there while the
// medium class recovers).
func (f *sevFake) capBefore(t *testing.T) int {
	t.Helper()
	return f.maxCap
}

// TestAddServerDuringSeverityCapping covers the late-joiner rule: a more
// sheddable newcomer joining a rack whose more critical class is capped
// arrives at its cap floor; an equally or more critical newcomer arrives
// uncapped.
func TestAddServerDuringSeverityCapping(t *testing.T) {
	crit := newSevFake("crit", 600, SeverityCritical)
	cfg := DefaultRackConfig("r", 300)
	cfg.Mode = CapSeverity
	rack := NewRack(cfg, crit)
	rack.Tick(tick0)
	if crit.CapLevel() == 0 {
		t.Fatal("setup: critical server not capped by overload")
	}

	low := newSevFake("low", 100, SeverityLow)
	rack.AddServer(low)
	if low.CapLevel() != low.MaxCapLevel() {
		t.Fatalf("late harvest joiner capped to %d, want floor %d", low.CapLevel(), low.MaxCapLevel())
	}
	checkSeverityOrder(t, rack, "after harvest join")

	crit2 := newSevFake("crit2", 100, SeverityCritical)
	rack.AddServer(crit2)
	if crit2.CapLevel() != 0 {
		t.Fatalf("late critical joiner capped to %d, want uncapped", crit2.CapLevel())
	}
}

// TestAddServerInterleavedModeUntouched pins that the legacy discipline
// does not pre-cap late joiners (existing behavior, existing goldens).
func TestAddServerInterleavedModeUntouched(t *testing.T) {
	a := newFake("a", 600, 0)
	rack := NewRack(DefaultRackConfig("r", 300), a)
	rack.Tick(tick0)
	b := newFake("b", 100, 1)
	rack.AddServer(b)
	if b.CapLevel() != 0 {
		t.Fatalf("interleaved mode pre-capped a joiner to %d", b.CapLevel())
	}
}

// --- Admission ------------------------------------------------------------

func admTemplate(watts float64) *timeseries.WeekTemplate {
	return timeseries.FlatWeek(watts, 30*time.Minute)
}

func TestOversubConfigValidate(t *testing.T) {
	if err := DefaultOversubConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []OversubConfig{
		{Ratio: 0, Quantile: 0.98, MaxTemplateAge: time.Hour},
		{Ratio: 1, Quantile: 0, MaxTemplateAge: time.Hour},
		{Ratio: 1, Quantile: 1.2, MaxTemplateAge: time.Hour},
		{Ratio: 1, Quantile: 0.98, MaxTemplateAge: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	if _, err := NewAdmission(OversubConfig{Ratio: 1, Quantile: 0.5, MaxTemplateAge: time.Hour}, 0); err == nil {
		t.Error("zero rack limit accepted")
	}
}

// TestAdmissionEdgeCases is the table-driven admission battery: boundary
// arithmetic and every conservative-fallback path.
func TestAdmissionEdgeCases(t *testing.T) {
	now := time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC)
	fresh := now.Add(-24 * time.Hour)
	cfg := func(ratio float64) OversubConfig {
		c := DefaultOversubConfig()
		c.Ratio = ratio
		return c
	}
	cases := []struct {
		name         string
		cfg          OversubConfig
		limit        float64
		reserve      float64
		cand         Candidate
		granted      bool
		conservative bool
	}{
		{
			name:  "empty rack admits first candidate",
			cfg:   cfg(1.0),
			limit: 1000,
			cand:  Candidate{Name: "a", NameplateWatts: 900, Template: admTemplate(400), FittedAt: fresh},
			// Predicted peak 400 <= 1000: in.
			granted: true,
		},
		{
			name:    "zero headroom rejects",
			cfg:     cfg(1.0),
			limit:   1000,
			reserve: 1000,
			cand:    Candidate{Name: "a", NameplateWatts: 100, Template: admTemplate(50), FittedAt: fresh},
			granted: false,
		},
		{
			name:    "exact ratio boundary admits",
			cfg:     cfg(1.2),
			limit:   1000,
			reserve: 800,
			cand:    Candidate{Name: "a", NameplateWatts: 500, Template: admTemplate(400), FittedAt: fresh},
			// 800 + 400 == 1.2 × 1000 exactly: <= admits.
			granted: true,
		},
		{
			name:    "one watt past the boundary rejects",
			cfg:     cfg(1.2),
			limit:   1000,
			reserve: 801,
			cand:    Candidate{Name: "a", NameplateWatts: 500, Template: admTemplate(400), FittedAt: fresh},
			granted: false,
		},
		{
			name:  "nameplate alone exceeds budget but template fits",
			cfg:   cfg(1.0),
			limit: 1000,
			cand:  Candidate{Name: "a", NameplateWatts: 1500, Template: admTemplate(600), FittedAt: fresh},
			// Oversubscription's whole bet: predicted 600 in, nameplate out.
			granted: true,
		},
		{
			name:         "absent template falls back to nameplate",
			cfg:          cfg(1.0),
			limit:        1000,
			cand:         Candidate{Name: "a", NameplateWatts: 1500},
			granted:      false,
			conservative: true,
		},
		{
			name:  "stale template falls back to nameplate",
			cfg:   cfg(1.0),
			limit: 1000,
			cand: Candidate{Name: "a", NameplateWatts: 1500, Template: admTemplate(600),
				FittedAt: now.Add(-15 * 24 * time.Hour)},
			granted:      false,
			conservative: true,
		},
		{
			name:  "unfitted template falls back to nameplate",
			cfg:   cfg(1.0),
			limit: 1000,
			cand: Candidate{Name: "a", NameplateWatts: 700,
				Template: timeseries.BuildWeekTemplate(timeseries.New(fresh, time.Minute), timeseries.ReduceMedian),
				FittedAt: fresh},
			granted:      true, // nameplate 700 still fits
			conservative: true,
		},
		{
			name:  "quantile clamped to nameplate",
			cfg:   cfg(1.0),
			limit: 1000,
			cand: Candidate{Name: "a", NameplateWatts: 300, Template: admTemplate(900),
				FittedAt: fresh},
			// A template predicting more than the hardware can draw is
			// noise; the clamp admits at 300, not 900.
			granted: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			adm, err := NewAdmission(tc.cfg, tc.limit)
			if err != nil {
				t.Fatal(err)
			}
			adm.Reserve(tc.reserve)
			d := adm.Admit(now, tc.cand)
			if d.Granted != tc.granted {
				t.Fatalf("Granted = %v (%s), want %v", d.Granted, d.Reason, tc.granted)
			}
			if d.Conservative != tc.conservative {
				t.Fatalf("Conservative = %v (%s), want %v", d.Conservative, d.Reason, tc.conservative)
			}
			if d.Granted && adm.Admitted() != 1 {
				t.Fatalf("Admitted() = %d after one grant", adm.Admitted())
			}
			if !d.Granted && adm.PredictedRackPeak() != tc.reserve {
				t.Fatalf("rejected candidate charged the rack peak: %v", adm.PredictedRackPeak())
			}
		})
	}
}

func TestAdmissionChargesGrants(t *testing.T) {
	now := time.Unix(0, 0)
	adm, err := NewAdmission(OversubConfig{Ratio: 1, Quantile: 0.98, MaxTemplateAge: time.Hour}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		d := adm.Admit(now, Candidate{Name: fmt.Sprintf("c%d", i), NameplateWatts: 300})
		if !d.Granted {
			t.Fatalf("candidate %d rejected with headroom %v", i, adm.BudgetWatts()-adm.PredictedRackPeak())
		}
	}
	if d := adm.Admit(now, Candidate{Name: "c3", NameplateWatts: 300}); d.Granted {
		t.Fatal("fourth 300 W candidate admitted past a 1000 W budget")
	}
	if got := adm.PredictedRackPeak(); got != 900 {
		t.Fatalf("PredictedRackPeak = %v, want 900", got)
	}
}

func TestAdmissionRejectsNonPositiveNameplate(t *testing.T) {
	adm, err := NewAdmission(DefaultOversubConfig(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if d := adm.Admit(time.Unix(0, 0), Candidate{Name: "bad"}); d.Granted {
		t.Fatal("candidate with zero nameplate admitted")
	}
}

func TestAdmissionAdmitAllUnsafe(t *testing.T) {
	cfg := DefaultOversubConfig()
	cfg.AdmitAllUnsafe = true
	adm, err := NewAdmission(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	d := adm.Admit(time.Unix(0, 0), Candidate{Name: "huge", NameplateWatts: 10000})
	if !d.Granted {
		t.Fatal("canary mode rejected a candidate")
	}
}

func TestSeverityStrings(t *testing.T) {
	if SeverityCritical.String() != "critical" || SeverityLow.String() != "low" {
		t.Fatalf("severity names: %v %v", SeverityCritical, SeverityLow)
	}
	if CapSeverity.String() == "" || CapInvertedUnsafe.String() == "" {
		t.Fatal("cap mode names empty")
	}
	if got := SeverityOf(newFake("plain", 100, 0)); got != SeverityMedium {
		t.Fatalf("unclassed server severity = %v, want medium", got)
	}
}
