package power

import (
	"fmt"
)

// Node is one level of the power-delivery hierarchy (datacenter → row →
// rack → server). Providers split each parent's budget equally among its
// children and oversubscribe: the sum of children's peak draws may exceed
// the parent's budget (§II).
type Node struct {
	Name     string
	Budget   float64 // watts provisioned for this node
	PeakDraw float64 // observed or rated peak draw, for oversubscription accounting
	Children []*Node
}

// NewNode creates a hierarchy node.
func NewNode(name string, budget float64) *Node {
	return &Node{Name: name, Budget: budget}
}

// Add appends child nodes and returns n for chaining.
func (n *Node) Add(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// EvenShare returns the equal split of this node's budget across its
// children — the provider's default assignment the paper improves upon
// with heterogeneous budgets. It returns 0 for a leaf.
func (n *Node) EvenShare() float64 {
	if len(n.Children) == 0 {
		return 0
	}
	return n.Budget / float64(len(n.Children))
}

// ApplyEvenShare assigns every child the even share of this node's budget,
// recursively.
func (n *Node) ApplyEvenShare() {
	share := n.EvenShare()
	for _, c := range n.Children {
		c.Budget = share
		c.ApplyEvenShare()
	}
}

// Oversubscription returns the ratio of the children's summed peak draw to
// this node's budget. Values above 1 mean the level is oversubscribed and
// relies on statistical multiplexing plus capping for safety.
func (n *Node) Oversubscription() float64 {
	if n.Budget <= 0 {
		return 0
	}
	sum := 0.0
	for _, c := range n.Children {
		sum += c.PeakDraw
	}
	return sum / n.Budget
}

// Walk visits n and every descendant in depth-first order.
func (n *Node) Walk(visit func(*Node)) {
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// Find returns the first descendant (or n itself) with the given name.
func (n *Node) Find(name string) (*Node, bool) {
	var found *Node
	n.Walk(func(m *Node) {
		if found == nil && m.Name == name {
			found = m
		}
	})
	if found == nil {
		return nil, false
	}
	return found, true
}

// Validate checks that no child budget exceeds its parent's budget (a
// provisioning error) anywhere in the tree.
func (n *Node) Validate() error {
	for _, c := range n.Children {
		if c.Budget > n.Budget {
			return fmt.Errorf("power: child %q budget %.0fW exceeds parent %q budget %.0fW",
				c.Name, c.Budget, n.Name, n.Budget)
		}
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}
