package power

import "fmt"

// Severity classes a server by the blast radius of capping it, following the
// prediction-based oversubscription design of Kumbhare et al. (same Azure
// lineage as SmartOClock): class 0 hosts the most critical work and is
// throttled last; higher classes are progressively more sheddable and are
// throttled first. Severity ordering is coarser than CapPriority — the
// priority only breaks ties inside one class, while the class boundary is a
// hard ordering constraint the SeverityOrder invariant audits.
type Severity int

const (
	// SeverityCritical is production work that capping may touch only after
	// every other class is fully throttled.
	SeverityCritical Severity = iota
	// SeverityHigh is latency-sensitive but restartable work.
	SeverityHigh
	// SeverityMedium is throughput work that tolerates slowdown.
	SeverityMedium
	// SeverityLow is harvest/spot work admitted purely to soak up headroom;
	// it is the first to be shed.
	SeverityLow
	// NumSeverities is the number of severity classes.
	NumSeverities
)

// String returns the class name.
func (s Severity) String() string {
	switch s {
	case SeverityCritical:
		return "critical"
	case SeverityHigh:
		return "high"
	case SeverityMedium:
		return "medium"
	case SeverityLow:
		return "low"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// SeverityClassed is the optional interface a Server implements to declare
// its severity class for severity-ordered capping.
type SeverityClassed interface {
	Severity() Severity
}

// SeverityOf returns a server's severity class, clamped into the valid
// range. Servers that do not declare one default to SeverityMedium: safe to
// shed before critical work, but never before explicitly sheddable harvest.
func SeverityOf(s Server) Severity {
	sv := SeverityMedium
	if c, ok := s.(SeverityClassed); ok {
		sv = c.Severity()
	}
	if sv < 0 {
		sv = 0
	}
	if sv >= NumSeverities {
		sv = NumSeverities - 1
	}
	return sv
}

// CapMode selects the rack manager's capping discipline.
type CapMode int

const (
	// CapInterleaved is the original SmartOClock discipline: escalate cap
	// levels one step per server round-robin, lowest CapPriority first. It
	// spreads the pain but may leave a low-priority server only lightly
	// capped while a high-priority one is already throttled.
	CapInterleaved CapMode = iota
	// CapSeverity is the oversubscription discipline: fully exhaust every
	// server of the most sheddable class before touching the next class, so
	// a critical server is never capped while harvest work runs uncapped.
	CapSeverity
	// CapDisabledUnsafe turns enforcement off entirely. It exists for
	// exactly one purpose — proving invariant.NoBrownout fires when an
	// over-admitting policy is not backed by capping. Never ship it.
	CapDisabledUnsafe
	// CapInvertedUnsafe caps the most critical class first. It exists for
	// the invariant.SeverityOrder negative test. Never ship it.
	CapInvertedUnsafe
)

// String returns the mode name.
func (m CapMode) String() string {
	switch m {
	case CapInterleaved:
		return "interleaved"
	case CapSeverity:
		return "severity"
	case CapDisabledUnsafe:
		return "disabled-unsafe"
	case CapInvertedUnsafe:
		return "inverted-unsafe"
	default:
		return fmt.Sprintf("CapMode(%d)", int(m))
	}
}
