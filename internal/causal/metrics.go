package causal

import (
	"time"

	"smartoclock/internal/metrics"
)

// Bucket layouts of the critical-path histograms. Depth is small (chains
// run request → decision → consequence), per-tick record counts scale with
// fleet size.
var (
	// ChainDepthBuckets spans causal-chain depths.
	ChainDepthBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16}
	// TickRecordBuckets spans provenance records per simulation tick.
	TickRecordBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
)

// Metric names of the critical-path profile. Counters and histograms sum
// across shard registries under metrics.Merge, so the merged snapshot
// carries the fleet-wide profile without any gauge last-wins hazard.
const (
	MetricDecisions   = "causal_decisions_total"
	MetricMessages    = "causal_messages_total"
	MetricChainDepth  = "causal_chain_depth"
	MetricTickRecords = "causal_tick_records"
)

// Register folds the log's critical-path profile into reg: decision and
// message totals, one chain-depth observation per record, and one
// records-per-tick observation per distinct record timestamp. Call it once
// per shard after the run, on the shard's own registry; the merged
// snapshot then answers "how deep do causal chains run" and "how much
// decision work lands on a tick" fleet-wide.
func (l *Log) Register(reg *metrics.Registry, labels ...metrics.Label) {
	if l == nil || reg == nil {
		return
	}
	decisions := reg.Counter(MetricDecisions, labels...)
	messages := reg.Counter(MetricMessages, labels...)
	depthH := reg.Histogram(MetricChainDepth, ChainDepthBuckets, labels...)
	tickH := reg.Histogram(MetricTickRecords, TickRecordBuckets, labels...)
	if len(l.Records) == 0 {
		return
	}

	index := make(map[SpanID]int, len(l.Records))
	for i := range l.Records {
		index[l.Records[i].Span] = i
	}
	depth := make([]int, len(l.Records))
	var depthOf func(i int) int
	depthOf = func(i int) int {
		if depth[i] != 0 {
			return depth[i]
		}
		depth[i] = -1
		d := 1
		if j, ok := index[l.Records[i].Parent]; ok && depth[j] != -1 {
			d = 1 + depthOf(j)
		}
		depth[i] = d
		return d
	}

	perTick := make(map[time.Time]int)
	for i := range l.Records {
		switch l.Records[i].Kind {
		case KindMessage:
			messages.Inc()
		default:
			decisions.Inc()
		}
		perTick[l.Records[i].Time]++
		depthH.Observe(float64(depthOf(i)))
	}
	for _, n := range perTick {
		tickH.Observe(float64(n))
	}
}
