package causal

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// FormatRecord renders one record as a single human-readable line:
//
//	15:04:05 [0123456789abcdef] soa/soa.admit reject srv3/vm policy=greedy inputs{watts=812 budget=800} detail
//
// It is the shared rendering of socexplain, socctl explain and ad-hoc log
// dumps, so a chain reads the same everywhere.
func FormatRecord(r *Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s] %s/%s",
		r.Time.UTC().Format(time.TimeOnly), r.Span, r.Component, r.Site)
	if r.Verdict != "" {
		fmt.Fprintf(&b, " %s", r.Verdict)
	}
	if r.Subject != "" {
		fmt.Fprintf(&b, " %s", r.Subject)
	}
	if r.Policy != "" {
		fmt.Fprintf(&b, " policy=%s", r.Policy)
	}
	if len(r.Inputs) > 0 {
		b.WriteString(" inputs{")
		for i, in := range r.Inputs {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s=%g", in.Name, in.Value)
		}
		b.WriteByte('}')
	}
	if len(r.Links) > 0 {
		b.WriteString(" links[")
		for i, l := range r.Links {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(l.String())
		}
		b.WriteByte(']')
	}
	if r.Detail != "" {
		fmt.Fprintf(&b, " %s", r.Detail)
	}
	return b.String()
}

// WriteChain renders a root-first causal chain, each consequence indented
// one step deeper than its cause.
func WriteChain(w io.Writer, chain []Record) error {
	for i := range chain {
		if _, err := fmt.Fprintf(w, "%s%s\n", strings.Repeat("  ", i), FormatRecord(&chain[i])); err != nil {
			return err
		}
	}
	return nil
}
