// Package causal is the decision-provenance layer of the observability
// stack: deterministic span identifiers threaded through every
// control-plane message, and structured "why" records emitted at every
// risk decision point (policy admission, exploration moves, power capping,
// alert transitions, invariant violations), linked into causal chains by
// span parentage.
//
// Span IDs are derived from the experiment seed with the same splitmix64
// stream construction as parallel.ChildSeed — never from wall clocks or
// runtime addresses — so the provenance log of a run is byte-identical at
// any worker count and across shuffled dispatch orders.
//
// A nil *Recorder is valid and records nothing: instrumented decision
// sites pay one pointer test when provenance is off, the same
// zero-observer-effect contract as obs.Tracer and the metrics registry.
package causal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// goldenGamma is the Weyl-sequence increment of splitmix64, shared with
// internal/parallel so span streams and shard seeds draw from the same
// family without colliding streams.
const goldenGamma = 0x9E3779B97F4A7C15

// splitmix64 is the 64-bit finalizer from Vigna's SplitMix64.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// SpanID identifies one node of a causal chain. Zero means "no span": the
// omitted value on messages and records produced with provenance off.
type SpanID uint64

// String renders the span as fixed-width lowercase hex, the format
// accepted back by ParseSpan, /explain?span= and socexplain.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// MarshalJSON renders spans as their canonical hex string, so a span
// copied out of a provenance log pastes straight into socexplain and
// /explain?span= without a decimal/hex ambiguity.
func (s SpanID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON accepts both the canonical hex string and the bare number
// older logs carried.
func (s *SpanID) UnmarshalJSON(b []byte) error {
	if len(b) >= 2 && b[0] == '"' {
		id, err := ParseSpan(string(b[1 : len(b)-1]))
		if err != nil {
			return err
		}
		*s = id
		return nil
	}
	v, err := strconv.ParseUint(string(b), 10, 64)
	if err != nil {
		return fmt.Errorf("causal: bad span %s", b)
	}
	*s = SpanID(v)
	return nil
}

// ParseSpan parses a span rendered by String. Plain decimal is also
// accepted so spans copied from raw JSON (where they are numbers) resolve
// too.
func ParseSpan(s string) (SpanID, error) {
	if s == "" {
		return 0, fmt.Errorf("causal: empty span")
	}
	if v, err := strconv.ParseUint(s, 16, 64); err == nil {
		return SpanID(v), nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("causal: bad span %q", s)
	}
	return SpanID(v), nil
}

// Source is a deterministic span-ID stream: seed and stream index select a
// splitmix64 sequence exactly like parallel.ChildSeed selects shard seeds.
// Each actor (gOA, one sOA, one rack, the WI harness) owns its own stream
// so IDs never depend on cross-actor interleaving.
type Source struct {
	state uint64
}

// NewSource returns the span stream for (seed, stream).
func NewSource(seed int64, stream uint64) Source {
	return Source{state: splitmix64(uint64(seed) + (stream+1)*goldenGamma)}
}

// Next returns the next span ID of the stream, never zero.
func (s *Source) Next() SpanID {
	for {
		s.state += goldenGamma
		if id := splitmix64(s.state); id != 0 {
			return SpanID(id)
		}
	}
}

// Record kinds: decisions are risk verdicts (admit, deny, cap, fire...),
// messages are control-plane sends that propagate a span across agents.
const (
	KindDecision = "decision"
	KindMessage  = "message"
)

// Input is one named quantity that fed a decision — predictor outputs,
// thresholds, budgets — kept as an ordered list so records marshal
// byte-deterministically.
type Input struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// In is shorthand for constructing an Input.
func In(name string, value float64) Input { return Input{Name: name, Value: value} }

// Record is one provenance entry: what was decided (or sent), by whom,
// with which inputs, and which span caused it. Parent links the primary
// cause; Links name additional contributing spans (e.g. the budget
// broadcast an admission was judged against).
type Record struct {
	Span      SpanID    `json:"span"`
	Parent    SpanID    `json:"parent,omitempty"`
	Links     []SpanID  `json:"links,omitempty"`
	Time      time.Time `json:"t"`
	Kind      string    `json:"kind"`
	Component string    `json:"component"`
	Site      string    `json:"site"`
	Subject   string    `json:"subject,omitempty"`
	Policy    string    `json:"policy,omitempty"`
	Verdict   string    `json:"verdict"`
	Inputs    []Input   `json:"inputs,omitempty"`
	Detail    string    `json:"detail,omitempty"`
}

// Recorder accumulates provenance records in emission order and hands out
// span IDs from its Source. Like the tracer it is single-goroutine: each
// shard or cell owns its own recorder, merged afterwards in shard order.
// A nil recorder discards everything and returns span 0.
type Recorder struct {
	src     Source
	records []Record
	bound   int // 0 = unbounded; otherwise ring capacity
	start   int // ring read position when bounded and full
	dropped uint64
}

// NewRecorder returns an unbounded recorder whose span stream is derived
// from (seed, stream).
func NewRecorder(seed int64, stream uint64) *Recorder {
	return &Recorder{src: NewSource(seed, stream)}
}

// NewBounded returns a recorder that keeps only the most recent capacity
// records, counting overwritten ones in Dropped — for long live runs where
// the full provenance log would grow without bound.
func NewBounded(seed int64, stream uint64, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1
	}
	return &Recorder{src: NewSource(seed, stream), bound: capacity}
}

// Enabled reports whether the recorder actually records (i.e. is non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Span draws the next span ID; 0 on a nil recorder, so disabled provenance
// leaves messages span-free (and their JSON byte-identical to before).
func (r *Recorder) Span() SpanID {
	if r == nil {
		return 0
	}
	return r.src.Next()
}

// Emit appends rec, assigning it a fresh span when rec.Span is zero, and
// returns the record's span (0 on a nil recorder).
func (r *Recorder) Emit(rec Record) SpanID {
	if r == nil {
		return 0
	}
	if rec.Span == 0 {
		rec.Span = r.src.Next()
	}
	if r.bound > 0 && len(r.records) == r.bound {
		r.records[r.start] = rec
		r.start = (r.start + 1) % r.bound
		r.dropped++
	} else {
		r.records = append(r.records, rec)
	}
	return rec.Span
}

// Len returns the number of records currently held; 0 on a nil recorder.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.records)
}

// Dropped returns how many records a bounded recorder overwrote.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Records returns the held records in emission order. The slice is freshly
// built for bounded recorders (to unwrap the ring) and shared otherwise;
// callers must not mutate it.
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	if r.bound == 0 || len(r.records) < r.bound || r.start == 0 {
		return r.records
	}
	out := make([]Record, 0, len(r.records))
	out = append(out, r.records[r.start:]...)
	out = append(out, r.records[:r.start]...)
	return out
}

// Log is a merged, ordered provenance log — the unit that is written to
// disk, served by /explain, and walked by socexplain.
type Log struct {
	Records []Record
}

// Collect builds a log from per-shard recorders in argument order; nil
// recorders are skipped. Merging in shard-index order is what keeps the
// combined log byte-identical across worker counts.
func Collect(recs ...*Recorder) *Log {
	out := &Log{}
	for _, r := range recs {
		out.Records = append(out.Records, r.Records()...)
	}
	return out
}

// Append concatenates other's records onto l, preserving order.
func (l *Log) Append(other *Log) {
	if l == nil || other == nil {
		return
	}
	l.Records = append(l.Records, other.Records...)
}

// Len returns the number of records; 0 on a nil log.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.Records)
}

// WriteJSONL writes one JSON object per record. HTML escaping is disabled
// (Detail strings carry comparisons like "power > limit") and field order
// is fixed, so output is byte-deterministic.
func (l *Log) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for i := range l.Records {
		if err := enc.Encode(&l.Records[i]); err != nil {
			return fmt.Errorf("causal: encode record %d: %w", i, err)
		}
	}
	return nil
}

// ReadLog parses a log previously written by WriteJSONL.
func ReadLog(r io.Reader) (*Log, error) {
	out := &Log{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("causal: line %d: %w", line, err)
		}
		out.Records = append(out.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("causal: read log: %w", err)
	}
	return out, nil
}

// Find returns the record carrying span, or nil. Spans are unique per
// record within one run (each Emit draws or is handed a fresh ID).
func (l *Log) Find(span SpanID) *Record {
	if l == nil || span == 0 {
		return nil
	}
	for i := range l.Records {
		if l.Records[i].Span == span {
			return &l.Records[i]
		}
	}
	return nil
}

// Chain returns the causal ancestry of span, leaf first: the record itself,
// then its parent's record, and so on until a record has no parent or the
// parent span has no record in the log (a span minted for a message whose
// send was not itself recorded). Cycles — impossible from the emitters, but
// logs can be hand-edited — terminate the walk.
func (l *Log) Chain(span SpanID) []Record {
	var out []Record
	seen := make(map[SpanID]bool)
	for rec := l.Find(span); rec != nil && !seen[rec.Span]; rec = l.Find(rec.Parent) {
		seen[rec.Span] = true
		out = append(out, *rec)
	}
	return out
}

// Children returns records whose Parent is span, in log order — the
// forward half of an explanation (what a cap event went on to cause).
func (l *Log) Children(span SpanID) []Record {
	if l == nil || span == 0 {
		return nil
	}
	var out []Record
	for i := range l.Records {
		if l.Records[i].Parent == span {
			out = append(out, l.Records[i])
		}
	}
	return out
}

// Stats summarizes a log for critical-path profiling: how many decisions
// and messages, how deep the longest causal chain runs, and how decision
// work distributes over simulation ticks (records sharing a timestamp).
type Stats struct {
	Decisions int     `json:"decisions"`
	Messages  int     `json:"messages"`
	MaxDepth  int     `json:"max_chain_depth"`
	DeepSpan  SpanID  `json:"deepest_span,omitempty"`
	Ticks     int     `json:"ticks"`
	MaxTick   int     `json:"max_records_per_tick"`
	MeanTick  float64 `json:"mean_records_per_tick"`
}

// Stats computes the log's critical-path summary. Depth is memoized over
// the span→record index, so the walk is linear in the log size.
func (l *Log) Stats() Stats {
	var st Stats
	if l == nil || len(l.Records) == 0 {
		return st
	}
	index := make(map[SpanID]int, len(l.Records))
	for i := range l.Records {
		index[l.Records[i].Span] = i
	}
	depth := make([]int, len(l.Records))
	var depthOf func(i int) int
	depthOf = func(i int) int {
		if depth[i] != 0 {
			return depth[i]
		}
		depth[i] = -1 // cycle guard: a revisit mid-walk scores as boundary
		d := 1
		if j, ok := index[l.Records[i].Parent]; ok && depth[j] != -1 {
			d = 1 + depthOf(j)
		}
		depth[i] = d
		return d
	}
	perTick := make(map[time.Time]int)
	for i := range l.Records {
		rec := &l.Records[i]
		switch rec.Kind {
		case KindMessage:
			st.Messages++
		default:
			st.Decisions++
		}
		perTick[rec.Time]++
		if d := depthOf(i); d > st.MaxDepth {
			st.MaxDepth = d
			st.DeepSpan = rec.Span
		}
	}
	st.Ticks = len(perTick)
	total := 0
	for _, n := range perTick {
		total += n
		if n > st.MaxTick {
			st.MaxTick = n
		}
	}
	if st.Ticks > 0 {
		st.MeanTick = float64(total) / float64(st.Ticks)
	}
	return st
}
