package causal

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)

func TestSourceDeterministicAndStreamed(t *testing.T) {
	a1 := NewSource(42, 0)
	a2 := NewSource(42, 0)
	b := NewSource(42, 1)
	c := NewSource(43, 0)
	for i := 0; i < 100; i++ {
		x := a1.Next()
		if x == 0 {
			t.Fatalf("draw %d: zero span", i)
		}
		if y := a2.Next(); y != x {
			t.Fatalf("draw %d: same (seed,stream) diverged: %v vs %v", i, x, y)
		}
		if y := b.Next(); y == x {
			t.Fatalf("draw %d: stream 1 collided with stream 0", i)
		}
		if y := c.Next(); y == x {
			t.Fatalf("draw %d: seed 43 collided with seed 42", i)
		}
	}
}

func TestSpanRoundTrip(t *testing.T) {
	src := NewSource(7, 3)
	for i := 0; i < 10; i++ {
		id := src.Next()
		got, err := ParseSpan(id.String())
		if err != nil {
			t.Fatalf("parse %q: %v", id.String(), err)
		}
		if got != id {
			t.Fatalf("round trip %v -> %q -> %v", id, id.String(), got)
		}
	}
	if _, err := ParseSpan(""); err == nil {
		t.Fatal("empty span parsed")
	}
	if _, err := ParseSpan("zz zz"); err == nil {
		t.Fatal("garbage span parsed")
	}
	if got, err := ParseSpan("255"); err != nil || got != 0x255 {
		// hex wins for ambiguous digit strings, matching String output
		t.Fatalf("ParseSpan(255) = %v, %v", got, err)
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder enabled")
	}
	if got := r.Span(); got != 0 {
		t.Fatalf("nil Span = %v", got)
	}
	if got := r.Emit(Record{Site: "x"}); got != 0 {
		t.Fatalf("nil Emit = %v", got)
	}
	if r.Len() != 0 || r.Dropped() != 0 || r.Records() != nil {
		t.Fatal("nil recorder holds state")
	}
}

func TestEmitAssignsAndKeepsSpans(t *testing.T) {
	r := NewRecorder(1, 0)
	auto := r.Emit(Record{Time: t0, Site: "a", Verdict: "ok"})
	if auto == 0 {
		t.Fatal("auto span is zero")
	}
	pre := r.Span()
	kept := r.Emit(Record{Span: pre, Time: t0, Site: "b", Verdict: "ok"})
	if kept != pre {
		t.Fatalf("explicit span replaced: %v vs %v", kept, pre)
	}
	recs := r.Records()
	if len(recs) != 2 || recs[0].Span != auto || recs[1].Span != pre {
		t.Fatalf("records = %+v", recs)
	}
}

func TestBoundedRecorderRing(t *testing.T) {
	r := NewBounded(1, 0, 3)
	var spans []SpanID
	for i := 0; i < 5; i++ {
		spans = append(spans, r.Emit(Record{Time: t0.Add(time.Duration(i) * time.Minute), Site: "s"}))
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d", r.Dropped())
	}
	recs := r.Records()
	for i, want := range spans[2:] {
		if recs[i].Span != want {
			t.Fatalf("record %d span = %v, want %v", i, recs[i].Span, want)
		}
	}
}

func buildChainLog() *Log {
	r := NewRecorder(9, 0)
	req := r.Emit(Record{Time: t0, Kind: KindMessage, Component: "wi", Site: "wi.request", Subject: "vm-1", Verdict: "sent"})
	grant := r.Emit(Record{Time: t0, Parent: req, Kind: KindDecision, Component: "soa", Site: "soa.admit", Subject: "vm-1", Verdict: "grant"})
	r.Emit(Record{Time: t0.Add(time.Minute), Parent: grant, Kind: KindDecision, Component: "soa", Site: "soa.session", Subject: "vm-1", Verdict: "stop"})
	r.Emit(Record{Time: t0, Kind: KindDecision, Component: "rack", Site: "rack.cap", Verdict: "cap"})
	return Collect(r)
}

func TestChainAndChildren(t *testing.T) {
	l := buildChainLog()
	leaf := l.Records[2].Span
	chain := l.Chain(leaf)
	if len(chain) != 3 {
		t.Fatalf("chain len = %d, want 3", len(chain))
	}
	if chain[0].Site != "soa.session" || chain[1].Site != "soa.admit" || chain[2].Site != "wi.request" {
		t.Fatalf("chain order = %s %s %s", chain[0].Site, chain[1].Site, chain[2].Site)
	}
	kids := l.Children(l.Records[0].Span)
	if len(kids) != 1 || kids[0].Site != "soa.admit" {
		t.Fatalf("children = %+v", kids)
	}
	if l.Find(0) != nil || len(l.Chain(0)) != 0 {
		t.Fatal("zero span resolved")
	}
}

func TestChainCycleTerminates(t *testing.T) {
	l := &Log{Records: []Record{
		{Span: 1, Parent: 2, Site: "a"},
		{Span: 2, Parent: 1, Site: "b"},
	}}
	if got := len(l.Chain(1)); got != 2 {
		t.Fatalf("cycle chain len = %d", got)
	}
	st := l.Stats()
	if st.MaxDepth < 1 || st.MaxDepth > 2 {
		t.Fatalf("cycle stats depth = %d", st.MaxDepth)
	}
}

func TestStats(t *testing.T) {
	l := buildChainLog()
	st := l.Stats()
	if st.Decisions != 3 || st.Messages != 1 {
		t.Fatalf("decisions/messages = %d/%d", st.Decisions, st.Messages)
	}
	if st.MaxDepth != 3 {
		t.Fatalf("max depth = %d", st.MaxDepth)
	}
	if st.DeepSpan != l.Records[2].Span {
		t.Fatalf("deep span = %v", st.DeepSpan)
	}
	if st.Ticks != 2 || st.MaxTick != 3 || st.MeanTick != 2 {
		t.Fatalf("ticks = %d maxtick = %d meantick = %v", st.Ticks, st.MaxTick, st.MeanTick)
	}
	if (&Log{}).Stats() != (Stats{}) {
		t.Fatal("empty log stats nonzero")
	}
}

func TestWriteReadRoundTripAndDeterminism(t *testing.T) {
	l := buildChainLog()
	var b1, b2 bytes.Buffer
	if err := l.WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two writes of the same log differ")
	}
	if strings.Contains(b1.String(), `>`) {
		t.Fatal("HTML escaping leaked into the log")
	}
	back, err := ReadLog(&b1)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != l.Len() {
		t.Fatalf("round trip len %d vs %d", back.Len(), l.Len())
	}
	for i := range l.Records {
		if back.Records[i].Span != l.Records[i].Span || back.Records[i].Site != l.Records[i].Site {
			t.Fatalf("record %d changed in round trip", i)
		}
	}
}

func TestCollectShardOrder(t *testing.T) {
	r1 := NewRecorder(5, 0)
	r2 := NewRecorder(5, 1)
	s1 := r1.Emit(Record{Time: t0, Site: "one"})
	s2 := r2.Emit(Record{Time: t0, Site: "two"})
	l := Collect(r1, nil, r2)
	if l.Len() != 2 || l.Records[0].Span != s1 || l.Records[1].Span != s2 {
		t.Fatalf("collect order broken: %+v", l.Records)
	}
	other := &Log{}
	other.Append(l)
	if other.Len() != 2 {
		t.Fatalf("append len = %d", other.Len())
	}
}
