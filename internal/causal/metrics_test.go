package causal

import (
	"testing"

	"smartoclock/internal/metrics"
)

func TestRegisterMetrics(t *testing.T) {
	l := buildChainLog()
	reg := metrics.NewRegistry()
	l.Register(reg)
	snap := reg.Snapshot()
	if got := snap.SumByName(MetricDecisions); got != 3 {
		t.Fatalf("%s = %v", MetricDecisions, got)
	}
	if got := snap.SumByName(MetricMessages); got != 1 {
		t.Fatalf("%s = %v", MetricMessages, got)
	}
	depth := snap.Find(MetricChainDepth, nil)
	if depth == nil || depth.Count != 4 {
		t.Fatalf("chain depth series = %+v", depth)
	}
	// Depths are 1 (request), 2 (grant), 3 (stop), 1 (cap): sum 7.
	if depth.Value != 7 {
		t.Fatalf("chain depth sum = %v", depth.Value)
	}
	ticks := snap.Find(MetricTickRecords, nil)
	if ticks == nil || ticks.Count != 2 || ticks.Value != 4 {
		t.Fatalf("tick records series = %+v", ticks)
	}
}

func TestRegisterMetricsMergesAcrossShards(t *testing.T) {
	r1, r2 := metrics.NewRegistry(), metrics.NewRegistry()
	buildChainLog().Register(r1)
	buildChainLog().Register(r2)
	merged := metrics.Merge(r1.Snapshot(), r2.Snapshot())
	if got := merged.SumByName(MetricDecisions); got != 6 {
		t.Fatalf("merged decisions = %v", got)
	}
	if depth := merged.Find(MetricChainDepth, nil); depth == nil || depth.Count != 8 {
		t.Fatalf("merged depth = %+v", depth)
	}
}

func TestRegisterNilAndEmpty(t *testing.T) {
	var l *Log
	l.Register(metrics.NewRegistry())
	reg := metrics.NewRegistry()
	(&Log{}).Register(reg)
	snap := reg.Snapshot()
	if got := snap.SumByName(MetricDecisions); got != 0 {
		t.Fatalf("empty log decisions = %v", got)
	}
	if len(snap.Series) != 4 {
		t.Fatalf("empty log registered %d series, want 4", len(snap.Series))
	}
}
