package timeseries

import (
	"testing"
	"time"
)

// The trace generator's per-tick loop appends one sample per tick into
// series whose length is known up front. These guards pin the preallocation
// contract: a NewWithCap series absorbs its full tick count with zero
// reallocation, so the hot path never regrows.

func TestNewWithCapAppendNoRegrowth(t *testing.T) {
	start := time.Unix(0, 0).UTC()
	const steps = 4096
	allocs := testing.AllocsPerRun(20, func() {
		s := NewWithCap(start, time.Minute, steps)
		for i := 0; i < steps; i++ {
			s.Append(float64(i))
		}
		if s.Len() != steps {
			t.Fatalf("len = %d", s.Len())
		}
	})
	// One allocation for the Series struct, one for the Values backing
	// array — and nothing from the 4096 appends.
	if allocs > 2 {
		t.Errorf("prealloc'd append path allocated %.0f times per run, want <= 2", allocs)
	}
}

func TestGrow(t *testing.T) {
	start := time.Unix(0, 0).UTC()
	s := New(start, time.Minute)
	s.Append(1)
	s.Grow(100)
	if cap(s.Values)-len(s.Values) < 100 {
		t.Fatalf("Grow(100) left headroom %d", cap(s.Values)-len(s.Values))
	}
	if s.Len() != 1 || s.Values[0] != 1 {
		t.Fatalf("Grow corrupted values: %v", s.Values)
	}
	// Growing into existing headroom must not reallocate.
	base := &s.Values[0]
	s.Grow(50)
	if &s.Values[0] != base {
		t.Error("Grow reallocated despite sufficient capacity")
	}
	allocs := testing.AllocsPerRun(20, func() {
		s.Grow(10) // headroom exists: no allocation
	})
	if allocs != 0 {
		t.Errorf("no-op Grow allocated %.0f times", allocs)
	}
}
