package timeseries

import (
	"testing"
	"time"
)

// TestReduceMedianNoAllocs pins the in-place median: it may reorder its
// input but must not copy it. Template fitting reduces one slice per
// time-of-day slot per server, which made the previous copying version
// the single largest allocation source in the fleet-simulation profile.
func TestReduceMedianNoAllocs(t *testing.T) {
	samples := make([]float64, 101)
	for i := range samples {
		samples[i] = float64((i * 7919) % 101)
	}
	allocs := testing.AllocsPerRun(100, func() {
		ReduceMedian(samples)
	})
	if allocs != 0 {
		t.Fatalf("ReduceMedian allocates %.1f objects per call, want 0", allocs)
	}
}

// TestBuildDayTemplateAllocsBounded checks the two-pass slot partition:
// the number of allocations must not scale with the sample count, only
// with the (fixed) slot count — one backing array plus per-slot headers.
func TestBuildDayTemplateAllocsBounded(t *testing.T) {
	start := time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC) // a Monday
	build := func(days int) float64 {
		s := New(start, 5*time.Minute)
		for i := 0; i < days*24*12; i++ {
			s.Append(float64(i % 288))
		}
		return testing.AllocsPerRun(10, func() {
			BuildDayTemplate(s, Weekdays, ReduceMedian)
		})
	}
	small, large := build(7), build(28)
	// 4x the samples must not mean 4x the allocations: the partition is a
	// single backing array regardless of how many days feed each slot.
	if large > small+8 {
		t.Fatalf("BuildDayTemplate allocations scale with samples: %d-day=%.0f vs 7-day=%.0f",
			28, large, small)
	}
}
