package timeseries

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// DayKind selects which days of the week a template aggregates over.
// SmartOClock keeps separate templates for weekdays and weekends (§IV-B).
type DayKind int

const (
	// Weekdays selects Monday through Friday.
	Weekdays DayKind = iota
	// Weekends selects Saturday and Sunday.
	Weekends
	// AllDays selects every day.
	AllDays
)

// String returns a human-readable name for the day kind.
func (k DayKind) String() string {
	switch k {
	case Weekdays:
		return "weekdays"
	case Weekends:
		return "weekends"
	case AllDays:
		return "alldays"
	default:
		return fmt.Sprintf("DayKind(%d)", int(k))
	}
}

// Matches reports whether weekday belongs to the kind.
func (k DayKind) Matches(d time.Weekday) bool {
	switch k {
	case Weekdays:
		return d >= time.Monday && d <= time.Friday
	case Weekends:
		return d == time.Saturday || d == time.Sunday
	default:
		return true
	}
}

// Reduce collapses the per-day samples of one time-of-day slot into a single
// template value. A Reduce may reorder samples in place; callers must not
// rely on the slice's order afterwards.
type Reduce func(samples []float64) float64

// ReduceMedian returns the median of the samples (the paper's DailyMed).
// It sorts samples in place: template fitting runs once per server per
// experiment shard, and the avoided copy was the single largest allocation
// source in the fleet-simulation profile.
func ReduceMedian(samples []float64) float64 {
	n := len(samples)
	if n == 0 {
		return 0
	}
	sort.Float64s(samples)
	if n%2 == 1 {
		return samples[n/2]
	}
	return (samples[n/2-1] + samples[n/2]) / 2
}

// ReduceMax returns the maximum of the samples (the paper's DailyMax).
func ReduceMax(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	m := samples[0]
	for _, v := range samples[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ReduceMean returns the mean of the samples.
func ReduceMean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// DayTemplate is a single representative day at a fixed slot width: the
// paper's "power template". Slot i covers [i*Step, (i+1)*Step) of a day.
type DayTemplate struct {
	Step   time.Duration
	Slots  []float64
	Kind   DayKind
	counts []int // number of contributing days per slot, for diagnostics
}

// NumSlots returns the number of time-of-day slots.
func (t *DayTemplate) NumSlots() int { return len(t.Slots) }

// SlotOf returns the slot index for instant ts.
func (t *DayTemplate) SlotOf(ts time.Time) int {
	sinceMidnight := time.Duration(ts.Hour())*time.Hour +
		time.Duration(ts.Minute())*time.Minute +
		time.Duration(ts.Second())*time.Second
	i := int(sinceMidnight / t.Step)
	if i >= len(t.Slots) {
		i = len(t.Slots) - 1
	}
	return i
}

// At returns the template value for the time of day of ts. It does not check
// that ts's weekday matches the template's kind; callers pick the template.
func (t *DayTemplate) At(ts time.Time) float64 {
	if len(t.Slots) == 0 {
		return 0
	}
	return t.Slots[t.SlotOf(ts)]
}

// SampleCount returns how many days contributed to slot i.
func (t *DayTemplate) SampleCount(i int) int {
	if i < 0 || i >= len(t.counts) {
		return 0
	}
	return t.counts[i]
}

// dayTemplateJSON is the wire form of a DayTemplate; it exists so the
// unexported per-slot sample counts survive a checkpoint/restore cycle.
type dayTemplateJSON struct {
	Step   time.Duration `json:"step"`
	Slots  []float64     `json:"slots"`
	Kind   DayKind       `json:"kind"`
	Counts []int         `json:"counts,omitempty"`
}

// MarshalJSON implements json.Marshaler, including the diagnostic sample
// counts that the exported fields alone would lose.
func (t *DayTemplate) MarshalJSON() ([]byte, error) {
	return json.Marshal(dayTemplateJSON{Step: t.Step, Slots: t.Slots, Kind: t.Kind, Counts: t.counts})
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *DayTemplate) UnmarshalJSON(data []byte) error {
	var w dayTemplateJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	t.Step = w.Step
	t.Slots = w.Slots
	t.Kind = w.Kind
	t.counts = w.Counts
	return nil
}

// Max returns the maximum slot value.
func (t *DayTemplate) Max() float64 {
	m := 0.0
	for i, v := range t.Slots {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// BuildDayTemplate aggregates a multi-day series into a single representative
// day. Samples are grouped by time-of-day slot across all days matching kind,
// then collapsed with reduce. The slot width equals the series step.
//
// This implements the paper's per-day aggregation: "the template's value at
// 9AM is the median of rack's power consumption at 9AM across all five
// weekdays" (§IV-B).
func BuildDayTemplate(s *Series, kind DayKind, reduce Reduce) *DayTemplate {
	slotsPerDay := int(24 * time.Hour / s.Step)
	if slotsPerDay < 1 {
		slotsPerDay = 1
	}
	// Template fitting runs once per server per experiment shard, so it is
	// built in two passes over a single backing array instead of growing a
	// slice per slot: pass one records each sample's slot and the per-slot
	// counts, pass two partitions the samples contiguously.
	slotOf := make([]int32, len(s.Values))
	counts := make([]int, slotsPerDay)
	for i := range s.Values {
		ts := s.TimeAt(i)
		if !kind.Matches(ts.Weekday()) {
			slotOf[i] = -1
			continue
		}
		sinceMidnight := time.Duration(ts.Hour())*time.Hour +
			time.Duration(ts.Minute())*time.Minute +
			time.Duration(ts.Second())*time.Second
		slot := int(sinceMidnight / s.Step)
		if slot >= slotsPerDay {
			slot = slotsPerDay - 1
		}
		slotOf[i] = int32(slot)
		counts[slot]++
	}
	offsets := make([]int, slotsPerDay)
	total := 0
	for i, c := range counts {
		offsets[i] = total
		total += c
	}
	backing := make([]float64, total)
	fill := make([]int, slotsPerDay)
	for i, v := range s.Values {
		slot := slotOf[i]
		if slot < 0 {
			continue
		}
		backing[offsets[slot]+fill[slot]] = v
		fill[slot]++
	}
	t := &DayTemplate{Step: s.Step, Kind: kind,
		Slots: make([]float64, slotsPerDay), counts: counts}
	for i := range counts {
		t.Slots[i] = reduce(backing[offsets[i] : offsets[i]+counts[i]])
	}
	return t
}

// WeekTemplate pairs a weekday template with a weekend template, selecting
// the right one by the weekday of the queried instant.
type WeekTemplate struct {
	Weekday *DayTemplate
	Weekend *DayTemplate
}

// BuildWeekTemplate builds both day templates from the series with the given
// reduce function.
func BuildWeekTemplate(s *Series, reduce Reduce) *WeekTemplate {
	return &WeekTemplate{
		Weekday: BuildDayTemplate(s, Weekdays, reduce),
		Weekend: BuildDayTemplate(s, Weekends, reduce),
	}
}

// At returns the template value for instant ts, using the weekday or weekend
// template as appropriate.
func (w *WeekTemplate) At(ts time.Time) float64 {
	if Weekends.Matches(ts.Weekday()) {
		return w.Weekend.At(ts)
	}
	return w.Weekday.At(ts)
}

// FlatWeek returns a week template holding a single constant value at the
// given slot width — useful for pushing scalar budgets through
// template-shaped interfaces.
func FlatWeek(v float64, step time.Duration) *WeekTemplate {
	slots := int(24 * time.Hour / step)
	if slots < 1 {
		slots = 1
	}
	mk := func(kind DayKind) *DayTemplate {
		t := &DayTemplate{Step: step, Kind: kind, Slots: make([]float64, slots)}
		for i := range t.Slots {
			t.Slots[i] = v
		}
		return t
	}
	return &WeekTemplate{Weekday: mk(Weekdays), Weekend: mk(Weekends)}
}
