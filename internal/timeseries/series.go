// Package timeseries provides fixed-interval time series and the
// time-of-day template aggregation SmartOClock uses for power and
// utilization prediction.
//
// A Series holds samples at a fixed step starting at a given instant.
// Templates (see template.go) collapse multi-day series into a single
// representative day, the core of the paper's DailyMed/DailyMax predictors.
package timeseries

import (
	"fmt"
	"time"
)

// Series is a fixed-interval time series. Values[i] is the sample for the
// interval beginning at Start + i*Step.
type Series struct {
	Start  time.Time
	Step   time.Duration
	Values []float64
}

// New creates an empty series starting at start with the given step.
// It panics if step is not positive, which always indicates a programming
// error at a call site.
func New(start time.Time, step time.Duration) *Series {
	if step <= 0 {
		panic(fmt.Sprintf("timeseries: non-positive step %v", step))
	}
	return &Series{Start: start, Step: step}
}

// NewWithCap creates an empty series with room for n samples, so a caller
// that knows its tick count up front can Append n times without a single
// reallocation on the hot path.
func NewWithCap(start time.Time, step time.Duration, n int) *Series {
	s := New(start, step)
	if n > 0 {
		s.Values = make([]float64, 0, n)
	}
	return s
}

// Grow ensures capacity for at least n more samples beyond the current
// length, reallocating at most once.
func (s *Series) Grow(n int) {
	if n <= 0 || cap(s.Values)-len(s.Values) >= n {
		return
	}
	grown := make([]float64, len(s.Values), len(s.Values)+n)
	copy(grown, s.Values)
	s.Values = grown
}

// FromValues creates a series from existing samples. The slice is used
// directly (not copied).
func FromValues(start time.Time, step time.Duration, values []float64) *Series {
	s := New(start, step)
	s.Values = values
	return s
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// End returns the instant just past the last sample interval.
func (s *Series) End() time.Time {
	return s.Start.Add(time.Duration(len(s.Values)) * s.Step)
}

// TimeAt returns the start instant of sample i.
func (s *Series) TimeAt(i int) time.Time {
	return s.Start.Add(time.Duration(i) * s.Step)
}

// IndexOf returns the sample index containing instant t, and whether t is
// within the series range.
func (s *Series) IndexOf(t time.Time) (int, bool) {
	if t.Before(s.Start) {
		return 0, false
	}
	i := int(t.Sub(s.Start) / s.Step)
	if i >= len(s.Values) {
		return len(s.Values) - 1, false
	}
	return i, true
}

// At returns the sample covering instant t, clamped to the first/last sample
// for out-of-range instants. Returns 0 for an empty series.
func (s *Series) At(t time.Time) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	i, _ := s.IndexOf(t)
	if i < 0 {
		i = 0
	}
	return s.Values[i]
}

// Append adds one sample at the end of the series.
func (s *Series) Append(v float64) { s.Values = append(s.Values, v) }

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	vals := make([]float64, len(s.Values))
	copy(vals, s.Values)
	return FromValues(s.Start, s.Step, vals)
}

// Slice returns the sub-series covering [from, to). Instants are clamped to
// the series range. The returned series shares backing storage.
func (s *Series) Slice(from, to time.Time) *Series {
	if from.Before(s.Start) {
		from = s.Start
	}
	if to.After(s.End()) {
		to = s.End()
	}
	if !to.After(from) {
		return New(from, s.Step)
	}
	lo := int(from.Sub(s.Start) / s.Step)
	hi := int(to.Sub(s.Start) / s.Step)
	if hi > len(s.Values) {
		hi = len(s.Values)
	}
	return FromValues(s.TimeAt(lo), s.Step, s.Values[lo:hi])
}

// Add adds other to s sample-wise over the overlapping range. The two series
// must share the same step. It returns an error (and leaves s unchanged) on
// a step mismatch.
func (s *Series) Add(other *Series) error {
	if other.Step != s.Step {
		return fmt.Errorf("timeseries: step mismatch %v vs %v", s.Step, other.Step)
	}
	offset := int(other.Start.Sub(s.Start) / s.Step)
	for j := range other.Values {
		i := offset + j
		if i < 0 || i >= len(s.Values) {
			continue
		}
		s.Values[i] += other.Values[j]
	}
	return nil
}

// Scale multiplies every sample by k in place and returns s.
func (s *Series) Scale(k float64) *Series {
	for i := range s.Values {
		s.Values[i] *= k
	}
	return s
}

// Map applies f to every sample in place and returns s.
func (s *Series) Map(f func(float64) float64) *Series {
	for i := range s.Values {
		s.Values[i] = f(s.Values[i])
	}
	return s
}

// Mean returns the mean of all samples, 0 when empty.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Max returns the maximum sample, 0 when empty.
func (s *Series) Max() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum sample, 0 when empty.
func (s *Series) Min() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Integral returns the sum of sample * step, i.e. the integral of the series
// over its range expressed in value-seconds. For a power series in watts this
// is energy in joules.
func (s *Series) Integral() float64 {
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum * s.Step.Seconds()
}

// Resample returns a new series with the given step. When the new step is a
// multiple of the old the samples are averaged within each new interval;
// when finer, samples are repeated.
//
// Only whole output intervals are emitted: a partial tail — source samples
// covering less than one full new step past the last whole interval — is
// dropped, so the resampled range may end up to (step - 1ns) short of the
// original End(). Callers averaging or integrating across a resample should
// either pick a step that divides the span or account for the truncation.
func (s *Series) Resample(step time.Duration) *Series {
	if step <= 0 {
		panic(fmt.Sprintf("timeseries: non-positive step %v", step))
	}
	if step == s.Step || len(s.Values) == 0 {
		return s.Clone()
	}
	out := New(s.Start, step)
	total := s.End().Sub(s.Start)
	n := int(total / step)
	for i := 0; i < n; i++ {
		from := s.Start.Add(time.Duration(i) * step)
		to := from.Add(step)
		lo, _ := s.IndexOf(from)
		hi, ok := s.IndexOf(to.Add(-time.Nanosecond))
		if !ok {
			hi = len(s.Values) - 1
		}
		sum := 0.0
		cnt := 0
		for j := lo; j <= hi && j < len(s.Values); j++ {
			sum += s.Values[j]
			cnt++
		}
		if cnt == 0 {
			out.Append(0)
		} else {
			out.Append(sum / float64(cnt))
		}
	}
	return out
}
