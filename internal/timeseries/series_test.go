package timeseries

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// t0 is a Monday at midnight UTC, used across the tests.
var t0 = time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)

func mkSeries(step time.Duration, vals ...float64) *Series {
	return FromValues(t0, step, vals)
}

func TestNewPanicsOnBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive step")
		}
	}()
	New(t0, 0)
}

func TestLenEndTimeAt(t *testing.T) {
	s := mkSeries(time.Minute, 1, 2, 3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.End(); !got.Equal(t0.Add(3 * time.Minute)) {
		t.Fatalf("End = %v", got)
	}
	if got := s.TimeAt(2); !got.Equal(t0.Add(2 * time.Minute)) {
		t.Fatalf("TimeAt(2) = %v", got)
	}
}

func TestIndexOf(t *testing.T) {
	s := mkSeries(5*time.Minute, 1, 2, 3)
	if i, ok := s.IndexOf(t0); !ok || i != 0 {
		t.Fatalf("IndexOf(start) = %d, %v", i, ok)
	}
	if i, ok := s.IndexOf(t0.Add(7 * time.Minute)); !ok || i != 1 {
		t.Fatalf("IndexOf(+7m) = %d, %v", i, ok)
	}
	if _, ok := s.IndexOf(t0.Add(-time.Minute)); ok {
		t.Fatal("IndexOf before start must report false")
	}
	if i, ok := s.IndexOf(t0.Add(time.Hour)); ok || i != 2 {
		t.Fatalf("IndexOf after end = %d, %v", i, ok)
	}
}

func TestAtClamps(t *testing.T) {
	s := mkSeries(time.Minute, 10, 20, 30)
	if got := s.At(t0.Add(-time.Hour)); got != 10 {
		t.Fatalf("At before = %v", got)
	}
	if got := s.At(t0.Add(90 * time.Second)); got != 20 {
		t.Fatalf("At mid = %v", got)
	}
	if got := s.At(t0.Add(time.Hour)); got != 30 {
		t.Fatalf("At after = %v", got)
	}
	var empty Series
	if empty.At(t0) != 0 {
		t.Fatal("empty At must be 0")
	}
}

func TestAppendClone(t *testing.T) {
	s := New(t0, time.Second)
	s.Append(1)
	s.Append(2)
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] != 1 {
		t.Fatal("Clone must deep-copy values")
	}
}

func TestSlice(t *testing.T) {
	s := mkSeries(time.Minute, 0, 1, 2, 3, 4, 5)
	sub := s.Slice(t0.Add(2*time.Minute), t0.Add(4*time.Minute))
	if sub.Len() != 2 || sub.Values[0] != 2 || sub.Values[1] != 3 {
		t.Fatalf("Slice = %+v", sub.Values)
	}
	if !sub.Start.Equal(t0.Add(2 * time.Minute)) {
		t.Fatalf("Slice start = %v", sub.Start)
	}
	// Clamping.
	all := s.Slice(t0.Add(-time.Hour), t0.Add(time.Hour))
	if all.Len() != 6 {
		t.Fatalf("clamped Slice len = %d", all.Len())
	}
	empty := s.Slice(t0.Add(4*time.Minute), t0.Add(2*time.Minute))
	if empty.Len() != 0 {
		t.Fatal("inverted Slice must be empty")
	}
}

func TestAddAligned(t *testing.T) {
	a := mkSeries(time.Minute, 1, 1, 1, 1)
	b := FromValues(t0.Add(time.Minute), time.Minute, []float64{10, 10})
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 11, 11, 1}
	for i, w := range want {
		if a.Values[i] != w {
			t.Fatalf("Add result[%d] = %v, want %v", i, a.Values[i], w)
		}
	}
}

func TestAddStepMismatch(t *testing.T) {
	a := mkSeries(time.Minute, 1)
	b := mkSeries(time.Second, 1)
	if err := a.Add(b); err == nil {
		t.Fatal("expected step-mismatch error")
	}
}

func TestAddOutOfRangeIgnored(t *testing.T) {
	a := mkSeries(time.Minute, 1, 1)
	b := FromValues(t0.Add(-time.Minute), time.Minute, []float64{5, 5, 5, 5, 5})
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	if a.Values[0] != 6 || a.Values[1] != 6 {
		t.Fatalf("Add overlap = %v", a.Values)
	}
}

func TestScaleMapMeanMinMax(t *testing.T) {
	s := mkSeries(time.Minute, 1, 2, 3)
	s.Scale(2)
	if s.Values[2] != 6 {
		t.Fatalf("Scale = %v", s.Values)
	}
	s.Map(func(v float64) float64 { return v + 1 })
	if s.Values[0] != 3 {
		t.Fatalf("Map = %v", s.Values)
	}
	if s.Mean() != 5 || s.Min() != 3 || s.Max() != 7 {
		t.Fatalf("Mean/Min/Max = %v/%v/%v", s.Mean(), s.Min(), s.Max())
	}
}

func TestIntegralIsEnergy(t *testing.T) {
	// 100 W for 2 one-minute samples = 100*120 J.
	s := mkSeries(time.Minute, 100, 100)
	if got := s.Integral(); got != 12000 {
		t.Fatalf("Integral = %v", got)
	}
}

func TestResampleCoarser(t *testing.T) {
	s := mkSeries(time.Minute, 1, 3, 5, 7)
	r := s.Resample(2 * time.Minute)
	if r.Len() != 2 || r.Values[0] != 2 || r.Values[1] != 6 {
		t.Fatalf("Resample = %+v", r.Values)
	}
}

func TestResampleSameStep(t *testing.T) {
	s := mkSeries(time.Minute, 1, 2)
	r := s.Resample(time.Minute)
	if r.Len() != 2 || r.Values[1] != 2 {
		t.Fatalf("Resample same = %+v", r.Values)
	}
	r.Values[0] = 99
	if s.Values[0] == 99 {
		t.Fatal("Resample must not alias input")
	}
}

func TestResampleDropsPartialTail(t *testing.T) {
	// 5 one-minute samples resampled to 2m: span 5m holds two whole 2m
	// intervals; the 1m tail (value 9) is dropped, not emitted as a
	// partial bucket.
	s := mkSeries(time.Minute, 1, 3, 5, 7, 9)
	r := s.Resample(2 * time.Minute)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (partial tail dropped)", r.Len())
	}
	if r.Values[0] != 2 || r.Values[1] != 6 {
		t.Fatalf("Resample = %+v", r.Values)
	}
	if got, want := r.End(), t0.Add(4*time.Minute); !got.Equal(want) {
		t.Fatalf("End = %v, want %v (one step short of source end %v)", got, want, s.End())
	}

	// Step larger than the whole span: nothing is emitted.
	if r := s.Resample(10 * time.Minute); r.Len() != 0 {
		t.Fatalf("over-span Resample Len = %d, want 0", r.Len())
	}

	// A non-divisible coarser step keeps only whole intervals: 5m of 1m
	// samples at 3m step → one interval averaging the first three samples.
	r = s.Resample(3 * time.Minute)
	if r.Len() != 1 || r.Values[0] != 3 {
		t.Fatalf("3m Resample = %+v, want [3]", r.Values)
	}
}

func TestResampleUpDownRoundtrip(t *testing.T) {
	// Up-sampling repeats each sample; averaging back at the original step
	// recovers the source exactly (each fine bucket holds equal values).
	s := mkSeries(2*time.Minute, 4, 8, 6)
	up := s.Resample(time.Minute)
	wantUp := []float64{4, 4, 8, 8, 6, 6}
	if up.Len() != len(wantUp) {
		t.Fatalf("up Len = %d, want %d", up.Len(), len(wantUp))
	}
	for i, w := range wantUp {
		if up.Values[i] != w {
			t.Fatalf("up[%d] = %v, want %v", i, up.Values[i], w)
		}
	}
	if up.Step != time.Minute || !up.Start.Equal(s.Start) {
		t.Fatalf("up step/start = %v/%v", up.Step, up.Start)
	}
	down := up.Resample(2 * time.Minute)
	if down.Len() != s.Len() {
		t.Fatalf("roundtrip Len = %d, want %d", down.Len(), s.Len())
	}
	for i := range s.Values {
		if down.Values[i] != s.Values[i] {
			t.Fatalf("roundtrip[%d] = %v, want %v", i, down.Values[i], s.Values[i])
		}
	}
}

func TestDayKindMatches(t *testing.T) {
	if !Weekdays.Matches(time.Monday) || Weekdays.Matches(time.Sunday) {
		t.Fatal("Weekdays classification wrong")
	}
	if !Weekends.Matches(time.Saturday) || Weekends.Matches(time.Friday) {
		t.Fatal("Weekends classification wrong")
	}
	if !AllDays.Matches(time.Wednesday) {
		t.Fatal("AllDays must match everything")
	}
	if Weekdays.String() != "weekdays" || Weekends.String() != "weekends" {
		t.Fatal("String names wrong")
	}
}

func TestReduceFuncs(t *testing.T) {
	xs := []float64{3, 1, 2}
	if ReduceMedian(xs) != 2 {
		t.Fatalf("median = %v", ReduceMedian(xs))
	}
	if ReduceMedian([]float64{4, 1, 3, 2}) != 2.5 {
		t.Fatal("even median wrong")
	}
	if ReduceMax(xs) != 3 {
		t.Fatalf("max = %v", ReduceMax(xs))
	}
	if ReduceMean(xs) != 2 {
		t.Fatalf("mean = %v", ReduceMean(xs))
	}
	if ReduceMedian(nil) != 0 || ReduceMax(nil) != 0 || ReduceMean(nil) != 0 {
		t.Fatal("empty reduces must be 0")
	}
}

// buildWeekSeries builds a 7-day series at 1h steps where the value encodes
// (weekday offset + hour): day d hour h = 100*d + h for weekdays, and
// 1000 + h for weekends.
func buildWeekSeries() *Series {
	s := New(t0, time.Hour) // t0 is Monday
	for d := 0; d < 7; d++ {
		for h := 0; h < 24; h++ {
			ts := t0.Add(time.Duration(d*24+h) * time.Hour)
			if Weekends.Matches(ts.Weekday()) {
				s.Append(1000 + float64(h))
			} else {
				s.Append(float64(100*d + h))
			}
		}
	}
	return s
}

func TestBuildDayTemplateMedianAcrossWeekdays(t *testing.T) {
	s := buildWeekSeries()
	tmpl := BuildDayTemplate(s, Weekdays, ReduceMedian)
	if tmpl.NumSlots() != 24 {
		t.Fatalf("slots = %d", tmpl.NumSlots())
	}
	// At hour h the weekday samples are {h, 100+h, 200+h, 300+h, 400+h};
	// the median is 200+h.
	for h := 0; h < 24; h++ {
		want := 200 + float64(h)
		if got := tmpl.Slots[h]; got != want {
			t.Fatalf("slot %d = %v, want %v", h, got, want)
		}
		if tmpl.SampleCount(h) != 5 {
			t.Fatalf("slot %d samples = %d, want 5", h, tmpl.SampleCount(h))
		}
	}
}

func TestBuildDayTemplateWeekend(t *testing.T) {
	s := buildWeekSeries()
	tmpl := BuildDayTemplate(s, Weekends, ReduceMax)
	for h := 0; h < 24; h++ {
		if got := tmpl.Slots[h]; got != 1000+float64(h) {
			t.Fatalf("weekend slot %d = %v", h, got)
		}
		if tmpl.SampleCount(h) != 2 {
			t.Fatalf("weekend slot %d samples = %d", h, tmpl.SampleCount(h))
		}
	}
}

func TestDayTemplateAt(t *testing.T) {
	s := buildWeekSeries()
	tmpl := BuildDayTemplate(s, Weekdays, ReduceMedian)
	// 9:30 AM on any day maps to slot 9.
	ts := time.Date(2023, 4, 20, 9, 30, 0, 0, time.UTC)
	if got := tmpl.At(ts); got != 209 {
		t.Fatalf("At(9:30) = %v, want 209", got)
	}
	if tmpl.SlotOf(ts) != 9 {
		t.Fatalf("SlotOf = %d", tmpl.SlotOf(ts))
	}
}

func TestWeekTemplateSelectsByWeekday(t *testing.T) {
	s := buildWeekSeries()
	w := BuildWeekTemplate(s, ReduceMedian)
	mon := time.Date(2023, 4, 17, 12, 0, 0, 0, time.UTC) // Monday
	sat := time.Date(2023, 4, 15, 12, 0, 0, 0, time.UTC) // Saturday
	if got := w.At(mon); got != 212 {
		t.Fatalf("weekday At = %v", got)
	}
	if got := w.At(sat); got != 1012 {
		t.Fatalf("weekend At = %v", got)
	}
}

func TestDayTemplateMaxAndCounts(t *testing.T) {
	s := buildWeekSeries()
	tmpl := BuildDayTemplate(s, Weekdays, ReduceMax)
	// Max over weekdays at hour 23 = 400+23.
	if got := tmpl.Max(); got != 423 {
		t.Fatalf("Max = %v", got)
	}
	if tmpl.SampleCount(-1) != 0 || tmpl.SampleCount(100) != 0 {
		t.Fatal("out-of-range SampleCount must be 0")
	}
}

func TestEmptyTemplateAt(t *testing.T) {
	tmpl := &DayTemplate{Step: time.Hour}
	if tmpl.At(t0) != 0 {
		t.Fatal("empty template At must be 0")
	}
}

// Property: integral is linear under scaling.
func TestIntegralLinearProperty(t *testing.T) {
	f := func(raw []float64, k float64) bool {
		if math.IsNaN(k) || math.IsInf(k, 0) || math.Abs(k) > 1e6 {
			return true
		}
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				vals = append(vals, v)
			}
		}
		s := FromValues(t0, time.Minute, vals)
		before := s.Integral()
		after := s.Clone().Scale(k).Integral()
		return math.Abs(after-before*k) <= 1e-6*(1+math.Abs(before*k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: template values are bounded by series min/max for median and max
// reducers.
func TestTemplateBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := FromValues(t0, time.Hour, vals)
		lo, hi := s.Min(), s.Max()
		for _, reduce := range []Reduce{ReduceMedian, ReduceMax, ReduceMean} {
			tmpl := BuildDayTemplate(s, AllDays, reduce)
			for i, v := range tmpl.Slots {
				if tmpl.SampleCount(i) == 0 {
					continue
				}
				if v < lo-1e-9 || v > hi+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFlatWeek(t *testing.T) {
	w := FlatWeek(42, time.Hour)
	mon := time.Date(2023, 4, 10, 13, 0, 0, 0, time.UTC)
	sat := time.Date(2023, 4, 15, 3, 0, 0, 0, time.UTC)
	if w.At(mon) != 42 || w.At(sat) != 42 {
		t.Fatalf("FlatWeek values: %v / %v", w.At(mon), w.At(sat))
	}
	if w.Weekday.NumSlots() != 24 || w.Weekend.NumSlots() != 24 {
		t.Fatalf("slots = %d/%d", w.Weekday.NumSlots(), w.Weekend.NumSlots())
	}
	// Degenerate step still yields one slot.
	d := FlatWeek(7, 48*time.Hour)
	if d.Weekday.NumSlots() != 1 || d.At(mon) != 7 {
		t.Fatal("degenerate FlatWeek wrong")
	}
}
