package sim

import (
	"testing"
	"time"
)

var start = time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine(start, 1)
	var order []int
	e.After(3*time.Second, func() { order = append(order, 3) })
	e.After(1*time.Second, func() { order = append(order, 1) })
	e.After(2*time.Second, func() { order = append(order, 2) })
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestTiesBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine(start, 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.After(time.Second, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine(start, 1)
	var at time.Time
	e.After(90*time.Second, func() { at = e.Now() })
	e.RunAll()
	if !at.Equal(start.Add(90 * time.Second)) {
		t.Fatalf("event saw Now = %v", at)
	}
	if !e.Now().Equal(start.Add(90 * time.Second)) {
		t.Fatalf("final Now = %v", e.Now())
	}
}

func TestPastEventRunsNow(t *testing.T) {
	e := NewEngine(start, 1)
	e.After(10*time.Second, func() {
		e.At(start, func() {}) // in the past
	})
	e.RunAll()
	if !e.Now().Equal(start.Add(10 * time.Second)) {
		t.Fatalf("Now = %v, past event must not rewind clock", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(start, 1)
	fired := false
	tm := e.After(time.Second, func() { fired = true })
	tm.Cancel()
	e.RunAll()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !tm.Canceled() {
		t.Fatal("Canceled() must report true")
	}
}

func TestRunUntilStopsAndAdvancesClock(t *testing.T) {
	e := NewEngine(start, 1)
	count := 0
	e.Every(start.Add(time.Second), time.Second, func(time.Time) { count++ })
	n := e.Run(start.Add(10*time.Second + 500*time.Millisecond))
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if n != 10 {
		t.Fatalf("processed = %d", n)
	}
	if !e.Now().Equal(start.Add(10*time.Second + 500*time.Millisecond)) {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestRunUntilExclusive(t *testing.T) {
	e := NewEngine(start, 1)
	fired := false
	e.At(start.Add(time.Minute), func() { fired = true })
	e.Run(start.Add(time.Minute)) // boundary event must NOT run
	if fired {
		t.Fatal("boundary event ran; Run is exclusive of until")
	}
	e.Run(start.Add(time.Minute + time.Nanosecond))
	if !fired {
		t.Fatal("event past boundary did not run")
	}
}

func TestEveryCancelStopsTicks(t *testing.T) {
	e := NewEngine(start, 1)
	count := 0
	var tm *Timer
	tm = e.Every(start, time.Second, func(time.Time) {
		count++
		if count == 3 {
			tm.Cancel()
		}
	})
	e.RunAll()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestEveryPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine(start, 1).Every(start, 0, func(time.Time) {})
}

func TestEveryFiringTimes(t *testing.T) {
	e := NewEngine(start, 1)
	var times []time.Time
	e.Every(start.Add(time.Second), 2*time.Second, func(ts time.Time) {
		times = append(times, ts)
	})
	e.Run(start.Add(6 * time.Second))
	want := []time.Duration{1 * time.Second, 3 * time.Second, 5 * time.Second}
	if len(times) != len(want) {
		t.Fatalf("times = %v", times)
	}
	for i, d := range want {
		if !times[i].Equal(start.Add(d)) {
			t.Fatalf("tick %d at %v, want %v", i, times[i], start.Add(d))
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []float64 {
		e := NewEngine(start, 42)
		var out []float64
		for i := 0; i < 10; i++ {
			e.After(time.Duration(i)*time.Second, func() {
				out = append(out, e.Rand().Float64())
			})
		}
		e.RunAll()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestProcessedAndPending(t *testing.T) {
	e := NewEngine(start, 1)
	e.After(time.Second, func() {})
	e.After(2*time.Second, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.RunAll()
	if e.Processed() != 2 || e.Pending() != 0 {
		t.Fatalf("Processed = %d Pending = %d", e.Processed(), e.Pending())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(start, 1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			e.After(time.Second, recurse)
		}
	}
	e.After(time.Second, recurse)
	e.RunAll()
	if depth != 5 {
		t.Fatalf("depth = %d", depth)
	}
	if !e.Now().Equal(start.Add(5 * time.Second)) {
		t.Fatalf("Now = %v", e.Now())
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	e := NewEngine(start, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(i)*time.Microsecond, func() {})
	}
	e.RunAll()
}
