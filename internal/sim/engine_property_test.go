package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

var propStart = time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)

// TestCompactionOnHeavyCancel is the regression test for the canceled-event
// retention bug: canceled events used to sit in the heap until their
// deadline popped them, so engines with timer churn (retries canceled on
// success) grew without bound. The heap must compact once canceled events
// exceed half of pending.
func TestCompactionOnHeavyCancel(t *testing.T) {
	e := NewEngine(propStart, 1)
	const n = 1000
	timers := make([]*Timer, n)
	for i := 0; i < n; i++ {
		// Far-future deadlines: nothing pops them during the test.
		timers[i] = e.After(time.Duration(i+1)*time.Hour, func() {})
	}
	if e.Pending() != n {
		t.Fatalf("pending = %d, want %d", e.Pending(), n)
	}
	// Cancel just under half: no compaction yet.
	for i := 0; i < n/2; i++ {
		timers[i].Cancel()
	}
	if e.Pending() != n {
		t.Fatalf("pending = %d after %d cancels, compaction ran too early", e.Pending(), n/2)
	}
	// One more cancel tips canceled over half of pending.
	timers[n/2].Cancel()
	if want := n - n/2 - 1; e.Pending() != want {
		t.Fatalf("pending = %d after compaction, want %d", e.Pending(), want)
	}
	// The surviving events still fire.
	e.RunAll()
	if got := e.Processed(); got != int64(n-n/2-1) {
		t.Fatalf("processed = %d, want %d", got, n-n/2-1)
	}
}

// TestCompactionRepeatedChurn exercises the amortized path: waves of
// schedule-then-cancel must not accumulate heap garbage across compactions.
func TestCompactionRepeatedChurn(t *testing.T) {
	e := NewEngine(propStart, 1)
	keep := e.After(1000*time.Hour, func() {})
	defer keep.Cancel()
	for wave := 0; wave < 50; wave++ {
		var ts []*Timer
		for i := 0; i < 100; i++ {
			ts = append(ts, e.After(time.Duration(wave*100+i+1)*time.Minute, func() {}))
		}
		for _, tm := range ts {
			tm.Cancel()
		}
		if e.Pending() > 101 {
			t.Fatalf("wave %d: pending = %d, heap retains canceled events", wave, e.Pending())
		}
	}
}

// TestCancelAfterFireIsHarmless: canceling an already-fired one-shot timer
// must not corrupt the canceled-event accounting.
func TestCancelAfterFireIsHarmless(t *testing.T) {
	e := NewEngine(propStart, 1)
	tm := e.After(time.Second, func() {})
	e.RunAll()
	tm.Cancel() // no pending event: must be a no-op
	tm.Cancel()
	if e.ncanceled != 0 {
		t.Fatalf("ncanceled = %d after canceling fired timer", e.ncanceled)
	}
	// Engine still works normally.
	ran := false
	e.After(time.Second, func() { ran = true })
	e.RunAll()
	if !ran {
		t.Fatal("event scheduled after stale cancel never ran")
	}
}

// runScripted executes a randomized but seed-determined schedule and
// returns the execution trace: event labels in the order they ran.
func runScripted(seed int64) []string {
	e := NewEngine(propStart, seed)
	var order []string
	rng := rand.New(rand.NewSource(seed))
	var tickers []*Timer
	for i := 0; i < 40; i++ {
		i := i
		delay := time.Duration(rng.Intn(3600)) * time.Second
		switch rng.Intn(3) {
		case 0:
			e.After(delay, func() { order = append(order, fmt.Sprintf("after-%d@%v", i, e.Now())) })
		case 1:
			// Nested scheduling from inside a callback.
			e.After(delay, func() {
				order = append(order, fmt.Sprintf("outer-%d@%v", i, e.Now()))
				e.After(time.Duration(rng.Intn(600))*time.Second, func() {
					order = append(order, fmt.Sprintf("inner-%d@%v", i, e.Now()))
				})
			})
		default:
			n := 0
			var tk *Timer
			tk = e.Every(e.Now().Add(delay), time.Duration(1+rng.Intn(900))*time.Second, func(at time.Time) {
				order = append(order, fmt.Sprintf("tick-%d-%d@%v", i, n, at))
				n++
				if n >= 5 {
					tk.Cancel()
				}
			})
			tickers = append(tickers, tk)
		}
	}
	e.Run(propStart.Add(2 * time.Hour))
	for _, tk := range tickers {
		tk.Cancel()
	}
	e.RunAll()
	return order
}

// TestSameSeedSameEventOrder: same seed ⇒ byte-identical event order across
// two independent runs (the determinism property every chaos experiment
// leans on).
func TestSameSeedSameEventOrder(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := runScripted(seed)
		b := runScripted(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: run lengths differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: event %d differs: %q vs %q", seed, i, a[i], b[i])
			}
		}
		if len(a) == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
	}
}

// TestEveryCanceledInsideCallbackNeverFiresAgain: a ticker canceled from
// inside its own callback must not fire again, for any phase/interval.
func TestEveryCanceledInsideCallbackNeverFiresAgain(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		e := NewEngine(propStart, int64(trial))
		interval := time.Duration(1+rng.Intn(300)) * time.Second
		cancelAt := 1 + rng.Intn(7) // fire count at which the callback cancels
		fires := 0
		var tk *Timer
		tk = e.Every(propStart.Add(time.Duration(rng.Intn(60))*time.Second), interval, func(time.Time) {
			fires++
			if fires >= cancelAt {
				tk.Cancel()
			}
		})
		e.RunAll()
		if fires != cancelAt {
			t.Fatalf("trial %d: ticker fired %d times, want exactly %d", trial, fires, cancelAt)
		}
		if e.Pending() != 0 {
			t.Fatalf("trial %d: %d events left after RunAll", trial, e.Pending())
		}
	}
}

// TestRunLeavesClockExactlyAtUntil: Run(until) must leave the clock at
// until — whether events stop before it, land exactly on it, or none exist.
func TestRunLeavesClockExactlyAtUntil(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		e := NewEngine(propStart, 1)
		until := propStart.Add(time.Duration(1+rng.Intn(7200)) * time.Second)
		for i := 0; i < rng.Intn(20); i++ {
			e.After(time.Duration(rng.Intn(10000))*time.Second, func() {})
		}
		if rng.Intn(2) == 0 {
			e.At(until, func() {}) // boundary event: exclusive, must not run
		}
		e.Run(until)
		if !e.Now().Equal(until) {
			t.Fatalf("trial %d: clock at %v, want exactly %v", trial, e.Now(), until)
		}
		// Remaining events must all be at or after until (Run is exclusive).
		for e.Step() {
			if e.Now().Before(until) {
				t.Fatalf("trial %d: event before until survived Run", trial)
			}
		}
	}
}
