// Package sim implements the deterministic discrete-event simulation engine
// that drives the SmartOClock large-scale evaluation (the paper's §V-B
// simulator) and the emulated 36-server cluster (§V-A).
//
// Events execute in timestamp order; ties are broken by scheduling order so
// runs with the same seed are fully reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Engine is a discrete-event simulator with a virtual clock.
// It is not safe for concurrent use: all events run on the caller's
// goroutine, which is exactly what makes runs deterministic.
type Engine struct {
	now    time.Time
	events eventHeap
	seq    int64
	rng    *rand.Rand
	nProc  int64
	// ncanceled counts heap events whose timer was canceled but whose
	// deadline has not popped yet; when they outnumber live events the
	// heap is compacted so long-lived engines with heavy timer churn
	// (e.g. retry timers canceled on success) don't accumulate garbage.
	ncanceled int
}

// NewEngine returns an engine whose clock starts at start, with a
// deterministic random source derived from seed.
func NewEngine(start time.Time, seed int64) *Engine {
	return &Engine{now: start, rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() int64 { return e.nProc }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.events) }

// Timer is a handle to a scheduled event; Cancel prevents it from firing.
type Timer struct {
	canceled bool
	eng      *Engine
	// pending is the number of heap events referencing this timer (0 or 1:
	// a one-shot timer's single event, or a ticker's next occurrence).
	pending int
}

// Cancel prevents the timer's event from firing. Canceling an already-fired
// or already-canceled timer is a no-op.
func (t *Timer) Cancel() {
	if t.canceled {
		return
	}
	t.canceled = true
	if t.eng != nil && t.pending > 0 {
		t.eng.noteCanceled()
	}
}

// Canceled reports whether Cancel was called.
func (t *Timer) Canceled() bool { return t.canceled }

// push adds ev to the heap, tracking how many events reference its timer.
func (e *Engine) push(ev *event) {
	if ev.timer != nil {
		ev.timer.pending++
	}
	heap.Push(&e.events, ev)
}

// noteCanceled records that a pending event's timer was canceled and
// compacts the heap once canceled events outnumber live ones.
func (e *Engine) noteCanceled() {
	e.ncanceled++
	if e.ncanceled*2 > len(e.events) {
		e.compact()
	}
}

// compact rebuilds the heap without events whose timer is canceled.
func (e *Engine) compact() {
	live := e.events[:0]
	for _, ev := range e.events {
		if ev.timer != nil && ev.timer.canceled {
			ev.timer.pending--
			continue
		}
		live = append(live, ev)
	}
	// Zero the tail so dropped events are collectable.
	for i := len(live); i < len(e.events); i++ {
		e.events[i] = nil
	}
	e.events = live
	e.ncanceled = 0
	heap.Init(&e.events)
}

// At schedules fn to run at virtual time at. Times in the past run at the
// current time (immediately on the next Step). The returned Timer can cancel
// the event.
func (e *Engine) At(at time.Time, fn func()) *Timer {
	if at.Before(e.now) {
		at = e.now
	}
	t := &Timer{eng: e}
	e.seq++
	e.push(&event{at: at, seq: e.seq, fn: fn, timer: t})
	return t
}

// After schedules fn to run delay after the current virtual time.
func (e *Engine) After(delay time.Duration, fn func()) *Timer {
	return e.At(e.now.Add(delay), fn)
}

// Every schedules fn to run at start and then every interval thereafter,
// until the returned Timer is canceled. fn receives the firing time.
// It panics if interval is not positive.
func (e *Engine) Every(start time.Time, interval time.Duration, fn func(time.Time)) *Timer {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive interval %v", interval))
	}
	t := &Timer{eng: e}
	var tick func()
	next := start
	tick = func() {
		if t.canceled {
			return
		}
		at := next
		fn(at)
		if t.canceled { // fn may cancel the ticker
			return
		}
		next = at.Add(interval)
		e.seq++
		e.push(&event{at: next, seq: e.seq, fn: tick, timer: t})
	}
	e.seq++
	if start.Before(e.now) {
		start = e.now
		next = start
	}
	e.push(&event{at: start, seq: e.seq, fn: tick, timer: t})
	return t
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.timer != nil {
			ev.timer.pending--
			if ev.timer.canceled {
				if e.ncanceled > 0 {
					e.ncanceled--
				}
				continue
			}
		}
		e.now = ev.at
		e.nProc++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the clock reaches until (exclusive) or no events
// remain. The clock is left at until if it was reached, otherwise at the
// last event time. It returns the number of events executed by this call.
func (e *Engine) Run(until time.Time) int64 {
	start := e.nProc
	for len(e.events) > 0 {
		next := e.events[0].at
		if !next.Before(until) {
			break
		}
		e.Step()
	}
	if e.now.Before(until) {
		e.now = until
	}
	return e.nProc - start
}

// RunAll executes all pending events (including ones scheduled while
// running). Use with care: a self-rescheduling ticker never drains.
func (e *Engine) RunAll() int64 {
	start := e.nProc
	for e.Step() {
	}
	return e.nProc - start
}

// event is one scheduled callback.
type event struct {
	at    time.Time
	seq   int64
	fn    func()
	timer *Timer
}

// eventHeap orders events by (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
