// Package cluster emulates the evaluation testbed: racks of simulated
// servers hosting VMs that run the workload models. A cluster Server
// implements both core.Host (the sOA's hardware interface) and power.Server
// (the rack manager's capping interface), reconciling the two: the sOA
// requests per-core frequencies, the rack manager imposes a capping
// ceiling, and the effective frequency is the minimum of both.
package cluster

import (
	"fmt"
	"time"

	"smartoclock/internal/lifetime"
	"smartoclock/internal/machine"
	"smartoclock/internal/metrics"
	"smartoclock/internal/power"
)

// Server is one emulated server.
type Server struct {
	name        string
	m           *machine.Machine
	desired     []int // sOA-requested per-core frequency
	capLevel    int
	capPriority int
	severity    power.Severity
	aging       lifetime.AgingModel
	wear        []*lifetime.Wear

	// agedSecs, when non-nil, mirrors MeanAgedSeconds into the metrics
	// registry on every Advance (see Instrument).
	agedSecs *metrics.Gauge
}

// NewServer creates a server named name from the hardware config with the
// given capping priority (higher = capped later).
func NewServer(name string, cfg machine.Config, capPriority int) *Server {
	m := machine.New(cfg)
	s := &Server{
		name:        name,
		m:           m,
		desired:     make([]int, cfg.Cores),
		capPriority: capPriority,
		aging:       lifetime.DefaultAgingModel(),
		wear:        make([]*lifetime.Wear, cfg.Cores),
	}
	for i := range s.desired {
		s.desired[i] = cfg.TurboMHz
		s.wear[i] = lifetime.NewWear(s.aging)
	}
	return s
}

// Machine exposes the underlying simulated hardware.
func (s *Server) Machine() *machine.Machine { return s.m }

// --- core.Host implementation -------------------------------------------

// Name implements core.Host and power.Server.
func (s *Server) Name() string { return s.name }

// NumCores implements core.Host.
func (s *Server) NumCores() int { return s.m.Cores() }

// TurboMHz implements core.Host.
func (s *Server) TurboMHz() int { return s.m.Config().TurboMHz }

// MaxOCMHz implements core.Host.
func (s *Server) MaxOCMHz() int { return s.m.Config().MaxOCMHz }

// StepMHz implements core.Host.
func (s *Server) StepMHz() int { return s.m.Config().StepMHz }

// Power implements core.Host and power.Server.
func (s *Server) Power() float64 { return s.m.Power() }

// CoreUtil implements core.Host.
func (s *Server) CoreUtil(core int) float64 { return s.m.Util(core) }

// SetDesiredFreq implements core.Host: records the sOA's request and
// applies the effective frequency (bounded by the capping ceiling).
func (s *Server) SetDesiredFreq(core, mhz int) {
	s.desired[core] = s.m.Config().ClampFreq(mhz)
	s.apply(core)
}

// DesiredFreq implements core.Host.
func (s *Server) DesiredFreq(core int) int { return s.desired[core] }

// OCDeltaWatts implements core.Host using the machine's power model.
func (s *Server) OCDeltaWatts(cores, mhz int, util float64) float64 {
	cfg := s.m.Config()
	return float64(cores) * (cfg.CorePower(cfg.ClampFreq(mhz), util) - cfg.CorePower(cfg.TurboMHz, util))
}

// --- power.Server implementation ----------------------------------------

// CapPriority implements power.Server.
func (s *Server) CapPriority() int { return s.capPriority }

// SetSeverity declares the server's capping severity class. Like the cap
// priority it is placement-time configuration, not runtime state, so it is
// not part of the snapshot.
func (s *Server) SetSeverity(v power.Severity) { s.severity = v }

// Severity implements power.SeverityClassed. The zero value is
// SeverityCritical: an unclassed production server is capped last under
// severity-ordered capping.
func (s *Server) Severity() power.Severity { return s.severity }

// capCeiling returns the frequency ceiling imposed by the current cap
// level: level 0 is uncapped (MaxOC); each level lowers the ceiling one
// DVFS step, stripping overclock first and then digging below turbo.
func (s *Server) capCeiling() int {
	cfg := s.m.Config()
	c := cfg.MaxOCMHz - s.capLevel*cfg.StepMHz
	if c < cfg.MinMHz {
		c = cfg.MinMHz
	}
	return c
}

// MaxCapLevel implements power.Server. The division rounds up: when the
// MaxOC→Min range is not a whole number of steps, the deepest level must
// still drive capCeiling all the way down to MinMHz (the ceiling clamps
// there), not strand it one partial step above the floor.
func (s *Server) MaxCapLevel() int {
	cfg := s.m.Config()
	return (cfg.MaxOCMHz - cfg.MinMHz + cfg.StepMHz - 1) / cfg.StepMHz
}

// ForceCap implements power.Server.
func (s *Server) ForceCap(level int) {
	if level < 0 {
		level = 0
	}
	if level > s.MaxCapLevel() {
		level = s.MaxCapLevel()
	}
	s.capLevel = level
	for i := range s.desired {
		s.apply(i)
	}
}

// CapLevel implements power.Server.
func (s *Server) CapLevel() int { return s.capLevel }

// apply pushes the effective frequency (desired bounded by the cap
// ceiling) into the hardware.
func (s *Server) apply(core int) {
	eff := s.desired[core]
	if c := s.capCeiling(); eff > c {
		eff = c
	}
	s.m.SetFreq(core, eff)
}

// EffectiveFreq returns the frequency core actually runs at.
func (s *Server) EffectiveFreq(core int) int { return s.m.Freq(core) }

// SetCoreUtil sets one core's utilization.
func (s *Server) SetCoreUtil(core int, u float64) { s.m.SetUtil(core, u) }

// Advance integrates dt of operation: energy, overclocked time-in-state
// and per-core wear.
func (s *Server) Advance(dt time.Duration) {
	s.m.Advance(dt)
	cfg := s.m.Config()
	for i := range s.wear {
		vr := cfg.VoltageRatio(s.m.Freq(i))
		s.wear[i].Add(dt, s.m.Util(i), vr)
	}
	if s.agedSecs != nil {
		s.agedSecs.Set(s.MeanAgedSeconds())
	}
}

// Instrument attaches the server's hardware counters (the underlying
// machine's PMT-like gauges plus mean silicon aging) to a registry under a
// server label.
func (s *Server) Instrument(reg *metrics.Registry, labels ...metrics.Label) {
	ls := make([]metrics.Label, 0, len(labels)+1)
	ls = append(ls, labels...)
	ls = append(ls, metrics.L("server", s.name))
	s.m.Instrument(reg, ls...)
	s.agedSecs = reg.Gauge("server_mean_aged_seconds", ls...)
}

// Energy returns cumulative energy in joules.
func (s *Server) Energy() float64 { return s.m.Energy() }

// CoreWear returns core i's wear tracker.
func (s *Server) CoreWear(i int) *lifetime.Wear { return s.wear[i] }

// MeanAgedSeconds returns the mean accumulated aging across cores, in
// seconds of reference operation.
func (s *Server) MeanAgedSeconds() float64 {
	total := 0.0
	for _, w := range s.wear {
		total += w.Aged().Seconds()
	}
	return total / float64(len(s.wear))
}

// ServerState is the serializable runtime state of a Server: the capping
// position, the sOA-requested frequencies and the per-core wear counters.
// Hardware configuration and the aging model are not serialized — a
// restoring process re-creates the Server from its own config and only the
// accumulated state comes from the checkpoint.
type ServerState struct {
	Name     string               `json:"name"`
	CapLevel int                  `json:"cap_level"`
	Desired  []int                `json:"desired"`
	Wear     []lifetime.WearState `json:"wear"`
}

// Snapshot captures the server's runtime state.
func (s *Server) Snapshot() *ServerState {
	st := &ServerState{
		Name:     s.name,
		CapLevel: s.capLevel,
		Desired:  append([]int(nil), s.desired...),
		Wear:     make([]lifetime.WearState, len(s.wear)),
	}
	for i, w := range s.wear {
		st.Wear[i] = w.Snapshot()
	}
	return st
}

// Restore overwrites the server's runtime state from a snapshot and
// re-applies the effective frequencies. It fails on a core-count mismatch
// (snapshot from different hardware) before touching any state.
func (s *Server) Restore(st *ServerState) error {
	if len(st.Desired) != len(s.desired) || len(st.Wear) != len(s.wear) {
		return fmt.Errorf("cluster: snapshot has %d/%d cores, server %s has %d",
			len(st.Desired), len(st.Wear), s.name, len(s.desired))
	}
	s.capLevel = st.CapLevel
	if s.capLevel < 0 {
		s.capLevel = 0
	}
	if max := s.MaxCapLevel(); s.capLevel > max {
		s.capLevel = max
	}
	cfg := s.m.Config()
	for i, mhz := range st.Desired {
		s.desired[i] = cfg.ClampFreq(mhz)
		s.wear[i].Restore(st.Wear[i])
		s.apply(i)
	}
	if s.agedSecs != nil {
		s.agedSecs.Set(s.MeanAgedSeconds())
	}
	return nil
}

// VM is a placed workload instance owning a set of cores on a server.
type VM struct {
	Name   string
	Server *Server
	Cores  []int
}

// SetUtil sets the utilization of every core the VM owns.
func (vm *VM) SetUtil(u float64) {
	for _, c := range vm.Cores {
		vm.Server.SetCoreUtil(c, u)
	}
}

// Freq returns the effective frequency of the VM's first core (all the
// VM's cores are driven together).
func (vm *VM) Freq() int {
	if len(vm.Cores) == 0 {
		return vm.Server.TurboMHz()
	}
	return vm.Server.EffectiveFreq(vm.Cores[0])
}

// PlaceVM allocates n cores on the server for a VM, after any cores
// already allocated. It returns an error when the server is out of cores.
func PlaceVM(s *Server, name string, n int, firstFree int) (*VM, error) {
	if firstFree+n > s.NumCores() {
		return nil, fmt.Errorf("cluster: server %s out of cores (%d requested at %d of %d)",
			s.Name(), n, firstFree, s.NumCores())
	}
	cores := make([]int, n)
	for i := range cores {
		cores[i] = firstFree + i
	}
	return &VM{Name: name, Server: s, Cores: cores}, nil
}
