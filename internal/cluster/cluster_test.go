package cluster

import (
	"testing"
	"time"

	"smartoclock/internal/core"
	"smartoclock/internal/lifetime"
	"smartoclock/internal/machine"
	"smartoclock/internal/power"
)

// Interface conformance checks.
var (
	_ core.Host    = (*Server)(nil)
	_ power.Server = (*Server)(nil)
)

func newServer() *Server {
	cfg := machine.DefaultConfig()
	cfg.Cores = 8
	return NewServer("s1", cfg, 0)
}

func TestInitialFrequencies(t *testing.T) {
	s := newServer()
	for i := 0; i < s.NumCores(); i++ {
		if s.EffectiveFreq(i) != s.TurboMHz() {
			t.Fatalf("core %d initial = %d", i, s.EffectiveFreq(i))
		}
	}
}

func TestDesiredFreqApplied(t *testing.T) {
	s := newServer()
	s.SetDesiredFreq(0, 4000)
	if s.EffectiveFreq(0) != 4000 || s.DesiredFreq(0) != 4000 {
		t.Fatalf("freq = %d/%d", s.EffectiveFreq(0), s.DesiredFreq(0))
	}
}

func TestCapCeilingBoundsEffectiveFreq(t *testing.T) {
	s := newServer()
	s.SetDesiredFreq(0, 4000)
	// 7 levels: ceiling = 4000 - 700 = 3300 (turbo).
	s.ForceCap(7)
	if s.EffectiveFreq(0) != 3300 {
		t.Fatalf("capped freq = %d, want 3300", s.EffectiveFreq(0))
	}
	// Deeper: below turbo.
	s.ForceCap(10)
	if s.EffectiveFreq(0) != 3000 {
		t.Fatalf("capped freq = %d, want 3000", s.EffectiveFreq(0))
	}
	// Desired preserved; uncapping restores it.
	s.ForceCap(0)
	if s.EffectiveFreq(0) != 4000 {
		t.Fatalf("uncapped freq = %d, want 4000", s.EffectiveFreq(0))
	}
}

func TestCapLevelClamps(t *testing.T) {
	s := newServer()
	s.ForceCap(-5)
	if s.CapLevel() != 0 {
		t.Fatal("negative level not clamped")
	}
	s.ForceCap(10000)
	if s.CapLevel() != s.MaxCapLevel() {
		t.Fatalf("level = %d, max = %d", s.CapLevel(), s.MaxCapLevel())
	}
	if s.EffectiveFreq(0) != s.Machine().Config().MinMHz {
		t.Fatalf("floor freq = %d", s.EffectiveFreq(0))
	}
}

func TestMaxCapLevelNonDivisibleRange(t *testing.T) {
	// 3950-1500 = 2450 MHz is not a multiple of the 100 MHz step. The
	// deepest level must round UP (25 levels) so full-throttle capping
	// reaches the MinMHz floor; floor division (24 levels) would strand
	// the ceiling at 1550 MHz.
	cfg := machine.DefaultConfig()
	cfg.Cores = 4
	cfg.MaxOCMHz = 3950
	cfg.MinMHz = 1500
	cfg.StepMHz = 100
	s := NewServer("odd", cfg, 0)
	if got, want := s.MaxCapLevel(), 25; got != want {
		t.Fatalf("MaxCapLevel = %d, want %d", got, want)
	}
	s.SetDesiredFreq(0, cfg.MaxOCMHz)
	s.ForceCap(s.MaxCapLevel())
	if s.EffectiveFreq(0) != cfg.MinMHz {
		t.Fatalf("deepest cap freq = %d, want floor %d", s.EffectiveFreq(0), cfg.MinMHz)
	}
	// An exactly divisible range is unchanged: (4000-1500)/100 = 25.
	s2 := newServer()
	if got, want := s2.MaxCapLevel(), 25; got != want {
		t.Fatalf("divisible MaxCapLevel = %d, want %d", got, want)
	}
}

func TestCappingReducesPower(t *testing.T) {
	s := newServer()
	for i := 0; i < s.NumCores(); i++ {
		s.SetCoreUtil(i, 0.9)
		s.SetDesiredFreq(i, 4000)
	}
	before := s.Power()
	s.ForceCap(7)
	if s.Power() >= before {
		t.Fatal("capping must reduce power")
	}
}

func TestOCDeltaWattsPositive(t *testing.T) {
	s := newServer()
	d := s.OCDeltaWatts(4, 4000, 0.9)
	if d <= 0 {
		t.Fatalf("delta = %v", d)
	}
	if s.OCDeltaWatts(4, 3300, 0.9) != 0 {
		t.Fatal("delta at turbo must be 0")
	}
}

func TestAdvanceAccumulatesWear(t *testing.T) {
	s := newServer()
	s.SetCoreUtil(0, 1.0)
	s.SetDesiredFreq(0, 4000)
	s.Advance(time.Hour)
	ocAged := s.CoreWear(0).Aged()
	turboAged := s.CoreWear(1).Aged()
	if ocAged <= turboAged {
		t.Fatalf("overclocked core must age faster: %v vs %v", ocAged, turboAged)
	}
	if s.Energy() <= 0 {
		t.Fatal("no energy recorded")
	}
	if s.MeanAgedSeconds() <= 0 {
		t.Fatal("no mean aging")
	}
}

func TestVMPlacementAndControl(t *testing.T) {
	s := newServer()
	vm1, err := PlaceVM(s, "vm1", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	vm2, err := PlaceVM(s, "vm2", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlaceVM(s, "vm3", 2, 8); err == nil {
		t.Fatal("over-allocation accepted")
	}
	vm1.SetUtil(0.7)
	if s.CoreUtil(0) != 0.7 || s.CoreUtil(3) != 0.7 {
		t.Fatal("VM util not applied")
	}
	if s.CoreUtil(4) != 0 {
		t.Fatal("neighbour VM affected")
	}
	if vm2.Freq() != s.TurboMHz() {
		t.Fatalf("vm2 freq = %d", vm2.Freq())
	}
	s.SetDesiredFreq(0, 4000)
	if vm1.Freq() != 4000 {
		t.Fatalf("vm1 freq = %d", vm1.Freq())
	}
	empty := &VM{Name: "e", Server: s}
	if empty.Freq() != s.TurboMHz() {
		t.Fatal("empty VM freq fallback wrong")
	}
}

// TestSOAOnClusterServer wires a real sOA to a cluster server and verifies
// the full grant→overclock→cap→revert cycle end to end.
func TestSOAOnClusterServer(t *testing.T) {
	s := newServer()
	start := time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC)
	budgets := lifetime.NewCoreBudgets(lifetime.DefaultBudgetConfig(), s.NumCores(), start)
	soa := core.NewSOA(core.DefaultSOAConfig(), s, budgets, 2000, start)
	for i := 0; i < s.NumCores(); i++ {
		s.SetCoreUtil(i, 0.5)
	}
	d := soa.Request(start, core.Request{VM: "vm1", Cores: 4, TargetMHz: 4000, Priority: core.PriorityMetric})
	if !d.Granted {
		t.Fatalf("grant failed: %+v", d)
	}
	if s.Machine().OverclockedCores() != 4 {
		t.Fatalf("OC cores = %d", s.Machine().OverclockedCores())
	}
	// Rack caps the server: effective frequency drops even though the
	// session's desired frequency stays.
	s.ForceCap(7)
	if s.Machine().OverclockedCores() != 0 {
		t.Fatal("cap did not strip overclock")
	}
	soa.OnRackEvent(start, power.Event{Kind: power.EventCap})
	if soa.ExtraWatts() != 0 {
		t.Fatal("sOA did not revert budget")
	}
}

// TestCapReconciliationAllLevels sweeps every cap level against a spread of
// desired frequencies and checks the apply/capCeiling reconciliation
// invariant exactly: the effective frequency is min(desired, ceiling),
// where the ceiling drops one DVFS step per level from MaxOC and floors at
// MinMHz, and capping never rewrites the sOA's desired frequency.
func TestCapReconciliationAllLevels(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 8
	s := NewServer("s1", cfg, 0)
	desired := []int{cfg.MinMHz, 2500, cfg.TurboMHz, 3700, cfg.MaxOCMHz}
	for i, d := range desired {
		s.SetDesiredFreq(i, d)
	}
	for level := 0; level <= s.MaxCapLevel(); level++ {
		s.ForceCap(level)
		if s.CapLevel() != level {
			t.Fatalf("CapLevel = %d, want %d", s.CapLevel(), level)
		}
		ceiling := cfg.MaxOCMHz - level*cfg.StepMHz
		if ceiling < cfg.MinMHz {
			ceiling = cfg.MinMHz
		}
		for i, d := range desired {
			want := d
			if want > ceiling {
				want = ceiling
			}
			if got := s.EffectiveFreq(i); got != want {
				t.Fatalf("level %d core %d (desired %d): effective = %d, want %d",
					level, i, d, got, want)
			}
			if s.DesiredFreq(i) != d {
				t.Fatalf("level %d rewrote desired[%d]: %d", level, i, s.DesiredFreq(i))
			}
		}
	}
	// The deepest level must bottom out exactly at MinMHz.
	s.ForceCap(s.MaxCapLevel())
	if got := s.EffectiveFreq(len(desired) - 1); got != cfg.MinMHz {
		t.Fatalf("max level effective = %d, want floor %d", got, cfg.MinMHz)
	}
	// Full release restores every desired frequency.
	s.ForceCap(0)
	for i, d := range desired {
		if got := s.EffectiveFreq(i); got != d {
			t.Fatalf("after release core %d = %d, want %d", i, got, d)
		}
	}
}

// TestCapReapplyAfterRelease covers the re-apply path: requests made while
// capped are ceiling-bounded immediately but remembered in full, partial
// release raises the ceiling one step at a time, and a fresh cap after a
// full release digs in again from the restored frequencies.
func TestCapReapplyAfterRelease(t *testing.T) {
	s := newServer()
	s.SetDesiredFreq(0, 4000)
	s.ForceCap(7) // ceiling 3300: overclock fully stripped
	if got := s.EffectiveFreq(0); got != 3300 {
		t.Fatalf("capped freq = %d, want 3300", got)
	}
	// A request made while capped takes effect only up to the ceiling...
	s.SetDesiredFreq(1, 3900)
	if got := s.EffectiveFreq(1); got != 3300 {
		t.Fatalf("capped new request = %d, want 3300", got)
	}
	// ...but is remembered in full for release.
	if s.DesiredFreq(1) != 3900 {
		t.Fatalf("desired[1] = %d, want 3900", s.DesiredFreq(1))
	}
	// Partial release: ceiling rises to 3700, both cores follow it.
	s.ForceCap(3)
	if a, b := s.EffectiveFreq(0), s.EffectiveFreq(1); a != 3700 || b != 3700 {
		t.Fatalf("partial release = %d/%d, want 3700/3700", a, b)
	}
	// Full release restores each core's own desired frequency.
	s.ForceCap(0)
	if a, b := s.EffectiveFreq(0), s.EffectiveFreq(1); a != 4000 || b != 3900 {
		t.Fatalf("release = %d/%d, want 4000/3900", a, b)
	}
	// Re-cap after release reconciles again, below turbo this time.
	s.ForceCap(12) // ceiling 2800
	if a, b := s.EffectiveFreq(0), s.EffectiveFreq(1); a != 2800 || b != 2800 {
		t.Fatalf("re-cap = %d/%d, want 2800/2800", a, b)
	}
	s.ForceCap(0)
	if a, b := s.EffectiveFreq(0), s.EffectiveFreq(1); a != 4000 || b != 3900 {
		t.Fatalf("second release = %d/%d, want 4000/3900", a, b)
	}
}
