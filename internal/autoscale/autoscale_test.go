package autoscale

import (
	"testing"
	"time"
)

var now0 = time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC)

func cfg() Config { return DefaultConfig(3300, 4000, 100) }

func TestBaselineNeverMoves(t *testing.T) {
	b := NewBaseline(cfg())
	if b.Name() != "Baseline" {
		t.Fatal("name")
	}
	for _, p99 := range []float64{0, 50, 500, 5000} {
		d := b.Control(now0, p99, 100)
		if d.Instances != 1 || d.FreqMHz != 3300 {
			t.Fatalf("baseline moved: %+v at p99=%v", d, p99)
		}
	}
}

func TestScaleOutGrowsAndShrinks(t *testing.T) {
	s := NewScaleOut(cfg())
	d := s.Control(now0, 90, 100) // ≥ 80% SLO
	if d.Instances != 2 {
		t.Fatalf("instances = %d", d.Instances)
	}
	// Cooldown blocks immediate growth.
	d = s.Control(now0.Add(time.Second), 90, 100)
	if d.Instances != 2 {
		t.Fatalf("cooldown violated: %d", d.Instances)
	}
	// After cooldown it grows again.
	d = s.Control(now0.Add(3*time.Minute), 90, 100)
	if d.Instances != 3 {
		t.Fatalf("instances = %d", d.Instances)
	}
	// Quiet tail shrinks.
	d = s.Control(now0.Add(6*time.Minute), 10, 100)
	if d.Instances != 2 {
		t.Fatalf("instances after shrink = %d", d.Instances)
	}
	if s.Name() != "ScaleOut" {
		t.Fatal("name")
	}
}

func TestScaleOutBounds(t *testing.T) {
	c := cfg()
	c.MaxInst = 2
	s := NewScaleOut(c)
	now := now0
	for i := 0; i < 5; i++ {
		now = now.Add(3 * time.Minute)
		if d := s.Control(now, 200, 100); d.Instances > 2 {
			t.Fatalf("exceeded max: %d", d.Instances)
		}
	}
	for i := 0; i < 5; i++ {
		now = now.Add(3 * time.Minute)
		if d := s.Control(now, 1, 100); d.Instances < 1 {
			t.Fatalf("below min: %d", d.Instances)
		}
	}
}

func TestScaleUpStepsFrequency(t *testing.T) {
	s := NewScaleUp(cfg())
	d := s.Control(now0, 90, 100)
	if d.FreqMHz != 3400 || d.Instances != 1 {
		t.Fatalf("decision = %+v", d)
	}
	// Keeps stepping up to the maximum.
	now := now0
	for i := 0; i < 20; i++ {
		now = now.Add(3 * time.Minute)
		d = s.Control(now, 90, 100)
	}
	if d.FreqMHz != 4000 {
		t.Fatalf("freq = %d, want max 4000", d.FreqMHz)
	}
	// Quiet: steps back down toward turbo.
	for i := 0; i < 20; i++ {
		now = now.Add(3 * time.Minute)
		d = s.Control(now, 10, 100)
	}
	if d.FreqMHz != 3300 {
		t.Fatalf("freq = %d, want turbo", d.FreqMHz)
	}
	if s.Name() != "ScaleUp" {
		t.Fatal("name")
	}
}

func TestScaleUpHysteresisBand(t *testing.T) {
	s := NewScaleUp(cfg())
	s.Control(now0, 90, 100) // 3400
	// Mid-band latency: hold.
	d := s.Control(now0.Add(3*time.Minute), 50, 100)
	if d.FreqMHz != 3400 {
		t.Fatalf("freq moved in hysteresis band: %d", d.FreqMHz)
	}
}
