// Package autoscale implements the comparison systems of the cluster
// evaluation (§V-A): Baseline (no scaling at all), ScaleOut (horizontal
// scaling on observed tail latency) and ScaleUp (vertical scaling —
// overclocking — on observed tail latency, with no admission control).
// SmartOClock itself lives in internal/core; these controllers share its
// deployment-facing shape so the experiment harness can swap them.
package autoscale

import (
	"time"
)

// Decision is a controller's desired deployment state.
type Decision struct {
	// Instances is the desired replica count.
	Instances int
	// FreqMHz is the desired core frequency for the deployment's VMs.
	FreqMHz int
}

// Controller reacts to the deployment's observed tail latency each control
// interval.
type Controller interface {
	// Name identifies the system in result tables.
	Name() string
	// Control returns the desired state given the observed deployment
	// P99 latency and the service SLO.
	Control(now time.Time, p99MS, sloMS float64) Decision
}

// Config holds the shared thresholds: act when the tail exceeds UpFrac of
// the SLO, relax when it falls below DownFrac, with a cooldown between
// actions.
type Config struct {
	UpFrac   float64
	DownFrac float64
	Cooldown time.Duration
	MinInst  int
	MaxInst  int
	TurboMHz int
	MaxOCMHz int
	StepMHz  int
}

// DefaultConfig matches the workload-intelligence thresholds so the
// comparison is apples-to-apples.
func DefaultConfig(turboMHz, maxOCMHz, stepMHz int) Config {
	return Config{
		UpFrac: 0.8, DownFrac: 0.3, Cooldown: 2 * time.Minute,
		MinInst: 1, MaxInst: 4,
		TurboMHz: turboMHz, MaxOCMHz: maxOCMHz, StepMHz: stepMHz,
	}
}

// Baseline never scales in either direction.
type Baseline struct {
	cfg Config
}

// NewBaseline returns the do-nothing controller.
func NewBaseline(cfg Config) *Baseline { return &Baseline{cfg: cfg} }

// Name implements Controller.
func (b *Baseline) Name() string { return "Baseline" }

// Control implements Controller.
func (b *Baseline) Control(time.Time, float64, float64) Decision {
	return Decision{Instances: b.cfg.MinInst, FreqMHz: b.cfg.TurboMHz}
}

// ScaleOut adds or removes instances at turbo frequency.
type ScaleOut struct {
	cfg       Config
	instances int
	lastAct   time.Time
	hasActed  bool
}

// NewScaleOut returns a horizontal-scaling controller.
func NewScaleOut(cfg Config) *ScaleOut {
	return &ScaleOut{cfg: cfg, instances: cfg.MinInst}
}

// Name implements Controller.
func (s *ScaleOut) Name() string { return "ScaleOut" }

// Control implements Controller.
func (s *ScaleOut) Control(now time.Time, p99MS, sloMS float64) Decision {
	if !s.hasActed || now.Sub(s.lastAct) >= s.cfg.Cooldown {
		switch {
		case p99MS >= s.cfg.UpFrac*sloMS && s.instances < s.cfg.MaxInst:
			s.instances++
			s.lastAct = now
			s.hasActed = true
		case p99MS > 0 && p99MS <= s.cfg.DownFrac*sloMS && s.instances > s.cfg.MinInst:
			s.instances--
			s.lastAct = now
			s.hasActed = true
		}
	}
	return Decision{Instances: s.instances, FreqMHz: s.cfg.TurboMHz}
}

// ScaleUp raises or lowers frequency (vertical scaling / overclocking) on a
// fixed instance count, one DVFS step per action. It performs no admission
// control and no power awareness — the paper's ScaleUp comparison point.
type ScaleUp struct {
	cfg      Config
	freq     int
	lastAct  time.Time
	hasActed bool
}

// NewScaleUp returns a vertical-scaling controller starting at turbo.
func NewScaleUp(cfg Config) *ScaleUp {
	return &ScaleUp{cfg: cfg, freq: cfg.TurboMHz}
}

// Name implements Controller.
func (s *ScaleUp) Name() string { return "ScaleUp" }

// Control implements Controller.
func (s *ScaleUp) Control(now time.Time, p99MS, sloMS float64) Decision {
	if !s.hasActed || now.Sub(s.lastAct) >= s.cfg.Cooldown {
		switch {
		case p99MS >= s.cfg.UpFrac*sloMS && s.freq < s.cfg.MaxOCMHz:
			s.freq += s.cfg.StepMHz
			if s.freq > s.cfg.MaxOCMHz {
				s.freq = s.cfg.MaxOCMHz
			}
			s.lastAct = now
			s.hasActed = true
		case p99MS > 0 && p99MS <= s.cfg.DownFrac*sloMS && s.freq > s.cfg.TurboMHz:
			s.freq -= s.cfg.StepMHz
			if s.freq < s.cfg.TurboMHz {
				s.freq = s.cfg.TurboMHz
			}
			s.lastAct = now
			s.hasActed = true
		}
	}
	return Decision{Instances: s.cfg.MinInst, FreqMHz: s.freq}
}
