package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

const (
	turbo = 3300
	oc    = 4000
)

var tstart = time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)

func TestServiceTimeScalesWithFrequency(t *testing.T) {
	m := Microservice{BaseLatencyMS: 10, CPUSensitivity: 1}
	at := m.ServiceTimeMS(turbo, turbo)
	if at != 10 {
		t.Fatalf("turbo service time = %v", at)
	}
	got := m.ServiceTimeMS(oc, turbo)
	want := 10 * float64(turbo) / float64(oc)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("OC service time = %v, want %v", got, want)
	}
}

func TestMemoryBoundServiceBenefitsLess(t *testing.T) {
	cpu := Microservice{BaseLatencyMS: 10, CPUSensitivity: 0.9}
	mem := Microservice{BaseLatencyMS: 10, CPUSensitivity: 0.3}
	cpuGain := 1 - cpu.ServiceTimeMS(oc, turbo)/10
	memGain := 1 - mem.ServiceTimeMS(oc, turbo)/10
	if memGain >= cpuGain {
		t.Fatalf("memory-bound gain %v >= cpu-bound gain %v", memGain, cpuGain)
	}
}

func TestRhoAndCapacity(t *testing.T) {
	m := Microservice{BaseLatencyMS: 10, CPUSensitivity: 1, Cores: 4}
	// ES = 10ms, c = 4 → capacity 400 rps.
	if got := m.CapacityRPS(turbo, turbo); math.Abs(got-400) > 1e-9 {
		t.Fatalf("capacity = %v", got)
	}
	if got := m.Rho(200, turbo, turbo); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("rho = %v", got)
	}
	if m.Rho(-5, turbo, turbo) != 0 {
		t.Fatal("negative rps must clamp")
	}
}

func TestSLODefinition(t *testing.T) {
	m := Microservice{BaseLatencyMS: 4}
	if m.SLOms() != 20 {
		t.Fatalf("SLO = %v", m.SLOms())
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	m := SocialNet()[0]
	in := NewInstance(m)
	prev := 0.0
	for _, rho := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		in.Reset()
		rps := rho * m.CapacityRPS(turbo, turbo)
		r := in.Step(time.Second, rps, turbo, turbo, nil)
		if r.P99MS <= prev {
			t.Fatalf("P99 not increasing at rho=%v: %v <= %v", rho, r.P99MS, prev)
		}
		prev = r.P99MS
	}
}

func TestOverclockingReducesLatencyAndUtil(t *testing.T) {
	m := SocialNet()[0]
	rps := HighLoad.RPS(m, turbo)
	base := NewInstance(m).Step(time.Second, rps, turbo, turbo, nil)
	ocr := NewInstance(m).Step(time.Second, rps, oc, turbo, nil)
	if ocr.P99MS >= base.P99MS {
		t.Fatal("overclocking must reduce tail latency")
	}
	if ocr.Util >= base.Util {
		t.Fatal("overclocking must reduce utilization")
	}
}

func TestOverloadBacklogGrowsAndDrains(t *testing.T) {
	m := SocialNet()[0]
	in := NewInstance(m)
	over := 1.3 * m.CapacityRPS(turbo, turbo)
	r1 := in.Step(time.Second, over, turbo, turbo, nil)
	r2 := in.Step(time.Second, over, turbo, turbo, nil)
	if in.Backlog() <= 0 {
		t.Fatal("backlog must grow under overload")
	}
	if r2.P99MS <= r1.P99MS {
		t.Fatal("latency must keep growing under sustained overload")
	}
	if r2.Util != 1 {
		t.Fatalf("overloaded util = %v", r2.Util)
	}
	// Drain with low load.
	for i := 0; i < 100 && in.Backlog() > 0; i++ {
		in.Step(time.Second, 0, turbo, turbo, nil)
	}
	if in.Backlog() != 0 {
		t.Fatalf("backlog did not drain: %v", in.Backlog())
	}
}

// TestFig2Shape replays the paper's Fig 2 matrix: Baseline (1×turbo),
// Overclock (1×OC), ScaleOut (2×turbo) per load level.
func TestFig2Shape(t *testing.T) {
	services := SocialNet()
	violations := func(freq, instances int, level LoadLevel) int {
		count := 0
		for _, m := range services {
			d := NewDeployment(m, instances)
			r := d.Step(time.Second, level.RPS(m, turbo), freq, turbo, nil)
			if r.SLOvio {
				count++
			}
		}
		return count
	}

	// Low load: everything meets SLOs in all three environments.
	for _, env := range []struct {
		freq, n int
	}{{turbo, 1}, {oc, 1}, {turbo, 2}} {
		if v := violations(env.freq, env.n, LowLoad); v != 0 {
			t.Fatalf("low load: %d violations at freq=%d n=%d", v, env.freq, env.n)
		}
	}

	baseHigh := violations(turbo, 1, HighLoad)
	ocHigh := violations(oc, 1, HighLoad)
	scaleHigh := violations(turbo, 2, HighLoad)
	if baseHigh < 6 {
		t.Fatalf("baseline high load violations = %d, want most services", baseHigh)
	}
	if ocHigh >= baseHigh {
		t.Fatalf("overclock must reduce violations: %d vs %d", ocHigh, baseHigh)
	}
	if scaleHigh != 0 {
		t.Fatalf("scale-out high load violations = %d, want 0", scaleHigh)
	}
}

// TestUsrTolerantUrlShortFragile checks the paper's Q1 observation.
func TestUsrTolerantUrlShortFragile(t *testing.T) {
	usr, ok := FindService("Usr")
	if !ok {
		t.Fatal("Usr missing")
	}
	urlShort, ok := FindService("UrlShort")
	if !ok {
		t.Fatal("UrlShort missing")
	}
	// Usr meets its SLO even at high utilization on a single instance.
	r := NewInstance(usr).Step(time.Second, HighLoad.RPS(usr, turbo), turbo, turbo, nil)
	if r.SLOvio {
		t.Fatalf("Usr violated SLO at high load: P99=%v SLO=%v", r.P99MS, usr.SLOms())
	}
	if r.Util < 0.8 {
		t.Fatalf("Usr utilization = %v, expected high", r.Util)
	}
	// UrlShort violates already at medium load/utilization.
	r = NewInstance(urlShort).Step(time.Second, MediumLoad.RPS(urlShort, turbo), turbo, turbo, nil)
	if !r.SLOvio {
		t.Fatalf("UrlShort met SLO at medium load: P99=%v SLO=%v", r.P99MS, urlShort.SLOms())
	}
}

func TestFindService(t *testing.T) {
	if _, ok := FindService("nope"); ok {
		t.Fatal("FindService must miss")
	}
	if len(SocialNet()) != 8 {
		t.Fatalf("SocialNet has %d services, want 8", len(SocialNet()))
	}
}

func TestDeploymentScale(t *testing.T) {
	d := NewDeployment(SocialNet()[0], 1)
	d.Scale(3)
	if d.Size() != 3 {
		t.Fatalf("Size = %d", d.Size())
	}
	d.Scale(0) // clamps to 1
	if d.Size() != 1 {
		t.Fatalf("Size after clamp = %d", d.Size())
	}
}

func TestNewDeploymentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDeployment(SocialNet()[0], 0)
}

func TestScaleOutHalvesUtil(t *testing.T) {
	m := SocialNet()[0]
	rps := MediumLoad.RPS(m, turbo)
	one := NewDeployment(m, 1).Step(time.Second, rps, turbo, turbo, nil)
	two := NewDeployment(m, 2).Step(time.Second, rps, turbo, turbo, nil)
	if math.Abs(two.Util-one.Util/2) > 1e-9 {
		t.Fatalf("scale-out util %v, want %v", two.Util, one.Util/2)
	}
}

func TestStepNoiseDeterministic(t *testing.T) {
	m := SocialNet()[0]
	a := NewInstance(m).Step(time.Second, 100, turbo, turbo, rand.New(rand.NewSource(3)))
	b := NewInstance(m).Step(time.Second, 100, turbo, turbo, rand.New(rand.NewSource(3)))
	if a.P99MS != b.P99MS {
		t.Fatal("same seed must give same noise")
	}
}

func TestMLTrainThroughputScalesWithFreq(t *testing.T) {
	ml := NewMLTrain(100)
	if got := ml.Throughput(turbo, turbo); got != 100 {
		t.Fatalf("turbo throughput = %v", got)
	}
	capped := ml.Throughput(2300, turbo)
	if capped >= 100 {
		t.Fatal("capped throughput must drop")
	}
	ml.Step(10*time.Second, turbo, turbo)
	ml.Step(10*time.Second, 2300, turbo)
	if ml.TotalSteps() >= 2000 || ml.TotalSteps() <= 1000 {
		t.Fatalf("TotalSteps = %v", ml.TotalSteps())
	}
	if ml.MeanThroughput() >= 100 {
		t.Fatalf("MeanThroughput = %v", ml.MeanThroughput())
	}
}

func TestMLTrainEmptyMeanThroughput(t *testing.T) {
	if NewMLTrain(100).MeanThroughput() != 0 {
		t.Fatal("empty mean must be 0")
	}
}

// TestFig16Calibration: overclocking must cut WebConf utilization ≈20-25%
// at fixed load and serve ≈25-30% more load at fixed utilization.
func TestFig16Calibration(t *testing.T) {
	w := NewWebConf(2000)
	rps := 1800.0
	baseUtil := w.Util(rps, turbo, turbo)
	ocUtil := w.Util(rps, oc, turbo)
	reduction := 1 - ocUtil/baseUtil
	if reduction < 0.18 || reduction > 0.28 {
		t.Fatalf("util reduction = %v, want ≈0.23", reduction)
	}
	moreLoad := w.RPSAtUtil(baseUtil, oc, turbo)/rps - 1
	if moreLoad < 0.22 || moreLoad > 0.35 {
		t.Fatalf("extra load at equal util = %v, want ≈0.28", moreLoad)
	}
}

func TestWebConfUtilClamps(t *testing.T) {
	w := NewWebConf(1000)
	if w.Util(5000, turbo, turbo) != 1 {
		t.Fatal("util must clamp to 1")
	}
	if w.Util(-10, turbo, turbo) != 0 {
		t.Fatal("util must clamp to 0")
	}
	zero := WebConf{}
	if zero.Util(10, turbo, turbo) != 1 {
		t.Fatal("zero capacity must saturate")
	}
}

func TestDeploymentUtil(t *testing.T) {
	if got := DeploymentUtil([]float64{0.1, 0.8}); math.Abs(got-0.45) > 1e-12 {
		t.Fatalf("DeploymentUtil = %v", got)
	}
	if DeploymentUtil(nil) != 0 {
		t.Fatal("empty deployment util must be 0")
	}
}

func TestLoadLevels(t *testing.T) {
	if len(Levels()) != 3 {
		t.Fatal("Levels must return 3")
	}
	if LowLoad.String() != "Low" || HighLoad.String() != "High" {
		t.Fatal("level names wrong")
	}
	if !(LowLoad.Rho() < MediumLoad.Rho() && MediumLoad.Rho() < HighLoad.Rho()) {
		t.Fatal("rho ordering wrong")
	}
	m := SocialNet()[0]
	if HighLoad.RPS(m, turbo) <= LowLoad.RPS(m, turbo) {
		t.Fatal("RPS ordering wrong")
	}
}

func TestLoadGenDiurnalAndBursts(t *testing.T) {
	g := &LoadGen{BaseRPS: 100, DiurnalAmp: 0.5}
	day := tstart.Add(14 * time.Hour) // afternoon > base
	night := tstart.Add(2 * time.Hour)
	if g.RPSAt(day, nil) <= g.RPSAt(night, nil) {
		t.Fatal("diurnal modulation wrong")
	}

	gb := &LoadGen{BaseRPS: 100, BurstProb: 1, BurstFactor: 3, BurstLen: 2}
	rng := rand.New(rand.NewSource(1))
	r1 := gb.RPSAt(tstart, rng)
	if r1 != 300 {
		t.Fatalf("burst rate = %v", r1)
	}
	// Burst persists for BurstLen steps.
	r2 := gb.RPSAt(tstart.Add(time.Second), rng)
	if r2 != 300 {
		t.Fatalf("burst continuation = %v", r2)
	}
}

func TestLoadGenNeverNegative(t *testing.T) {
	g := &LoadGen{BaseRPS: 1, NoiseSD: 10}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		if g.RPSAt(tstart, rng) < 0 {
			t.Fatal("negative rate")
		}
	}
}

func BenchmarkInstanceStep(b *testing.B) {
	m := SocialNet()[0]
	in := NewInstance(m)
	rps := HighLoad.RPS(m, turbo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Step(time.Second, rps, turbo, turbo, nil)
	}
}

func TestErlangC(t *testing.T) {
	// Single server: Erlang C reduces to rho.
	if got := ErlangC(0.5, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ErlangC(0.5,1) = %v, want 0.5", got)
	}
	// Unstable and degenerate inputs.
	if ErlangC(2, 1) != 1 {
		t.Fatal("unstable system must always wait")
	}
	if ErlangC(0, 4) != 0 || ErlangC(1, 0) != 0 {
		t.Fatal("degenerate inputs must be 0")
	}
	// More servers at the same offered load wait less.
	if ErlangC(2, 3) <= ErlangC(2.6667, 4)*0 { // sanity guard
	}
	if !(ErlangC(3, 4) > ErlangC(3, 6)) {
		t.Fatal("more servers must reduce waiting probability")
	}
}

func TestMeanSojournMMC(t *testing.T) {
	// M/M/1 closed form: 1/(mu - lambda).
	got := MeanSojournMMC(5, 10, 1)
	if math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("M/M/1 sojourn = %v, want 0.2", got)
	}
	if !math.IsInf(MeanSojournMMC(10, 5, 1), 1) {
		t.Fatal("unstable sojourn must be +Inf")
	}
}

func TestSimulateMMCMatchesAnalytics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lambda, mu, c := 300.0, 100.0, 4 // rho = 0.75
	lat := SimulateMMC(rng, lambda, mu, c, 200000)
	if len(lat) != 200000 {
		t.Fatalf("simulated %d requests", len(lat))
	}
	simMeanMS := 0.0
	for _, l := range lat {
		simMeanMS += l
	}
	simMeanMS /= float64(len(lat))
	wantMS := MeanSojournMMC(lambda, mu, c) * 1000
	if rel := math.Abs(simMeanMS-wantMS) / wantMS; rel > 0.05 {
		t.Fatalf("simulated mean %.3f ms vs analytic %.3f ms (rel err %.3f)", simMeanMS, wantMS, rel)
	}
}

func TestSimulateMMCTailGrowsWithLoad(t *testing.T) {
	p99 := func(rho float64) float64 {
		rng := rand.New(rand.NewSource(7))
		lat := SimulateMMC(rng, rho*400, 100, 4, 50000)
		sorted := append([]float64(nil), lat...)
		sort.Float64s(sorted)
		return sorted[int(0.99*float64(len(sorted)))]
	}
	low, high := p99(0.4), p99(0.9)
	if high <= 2*low {
		t.Fatalf("P99 at rho 0.9 (%v ms) must far exceed rho 0.4 (%v ms)", high, low)
	}
}

// TestInterpolationModelTracksQueueSim anchors the fast interpolation
// latency model to the request-level simulation: within the operating
// regime the cluster emulation uses (rho 0.3-0.9), the model's P99 must
// stay within the right order of magnitude and preserve ordering.
func TestInterpolationModelTracksQueueSim(t *testing.T) {
	m := Microservice{Name: "anchor", BaseLatencyMS: 10, CPUSensitivity: 1,
		Knee: 1.0, AvgKnee: 0.25, Exponent: 2, Cores: 4}
	mu := 1000.0 / m.BaseLatencyMS // per-core service rate in 1/s
	prevSim, prevModel := 0.0, 0.0
	for _, rho := range []float64{0.3, 0.6, 0.9} {
		lambda := rho * float64(m.Cores) * mu
		rng := rand.New(rand.NewSource(11))
		lat := SimulateMMC(rng, lambda, mu, m.Cores, 60000)
		sort.Float64s(lat)
		simP99 := lat[int(0.99*float64(len(lat)))]

		res := NewInstance(m).Step(time.Second, lambda, 3300, 3300, nil)
		if res.P99MS < prevModel || simP99 < prevSim {
			t.Fatal("P99 must grow with load in both models")
		}
		prevModel, prevSim = res.P99MS, simP99
		// Same order of magnitude across the regime.
		ratio := res.P99MS / simP99
		if ratio < 0.2 || ratio > 5 {
			t.Fatalf("rho %.1f: model %.1f ms vs sim %.1f ms (ratio %.2f)",
				rho, res.P99MS, simP99, ratio)
		}
	}
}

func TestSimulateMMCDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if SimulateMMC(rng, 0, 1, 1, 10) != nil {
		t.Fatal("zero lambda must return nil")
	}
	if SimulateMMC(rng, 1, 1, 1, 0) != nil {
		t.Fatal("zero requests must return nil")
	}
}
