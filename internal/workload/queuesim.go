package workload

import (
	"container/heap"
	"math"
	"math/rand"
)

// This file provides a request-granularity M/M/c queue simulator and the
// Erlang-C analytics it is validated against. The interpolation latency
// model in microservice.go is the fast path used by the cluster emulation;
// the simulator exists to cross-validate that model's regime and to let
// tests anchor the congestion behaviour to first principles.

// ErlangC returns the probability that an arriving request must wait in an
// M/M/c system with offered load a = λ/μ and c servers. It returns 1 when
// the system is unstable (a >= c).
func ErlangC(a float64, c int) float64 {
	if c <= 0 || a <= 0 {
		return 0
	}
	if a >= float64(c) {
		return 1
	}
	// Compute with the standard recurrence to avoid factorial overflow:
	// B(0) = 1; B(k) = a*B(k-1) / (k + a*B(k-1)) gives Erlang-B, then
	// C = B / (1 - rho*(1-B)).
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho*(1-b))
}

// MeanSojournMMC returns the analytic mean time in system (queueing +
// service) for an M/M/c queue, in the same time unit as 1/mu. It returns
// +Inf for an unstable system.
func MeanSojournMMC(lambda, mu float64, c int) float64 {
	if mu <= 0 || c <= 0 {
		return math.Inf(1)
	}
	a := lambda / mu
	if a >= float64(c) {
		return math.Inf(1)
	}
	pw := ErlangC(a, c)
	wq := pw / (float64(c)*mu - lambda)
	return wq + 1/mu
}

// qsEvent is a scheduled departure in the queue simulation.
type qsEvent struct {
	at float64
}

type qsHeap []qsEvent

func (h qsHeap) Len() int           { return len(h) }
func (h qsHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h qsHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *qsHeap) Push(x any)        { *h = append(*h, x.(qsEvent)) }
func (h *qsHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
func (h qsHeap) peek() float64 { return h[0].at }

// SimulateMMC runs an event-driven M/M/c FCFS simulation for n requests
// with arrival rate lambda and per-server service rate mu (both per
// second), returning each request's sojourn time in milliseconds. The
// simulation is deterministic for a given rng.
func SimulateMMC(rng *rand.Rand, lambda, mu float64, c, n int) []float64 {
	if lambda <= 0 || mu <= 0 || c <= 0 || n <= 0 {
		return nil
	}
	exp := func(rate float64) float64 { return rng.ExpFloat64() / rate }

	sojourns := make([]float64, 0, n)
	departures := &qsHeap{}
	busy := 0
	var queue []float64 // arrival times of waiting requests

	arrival := exp(lambda)
	generated := 0
	for len(sojourns) < n {
		// Next event: arrival or earliest departure.
		if generated < n && (departures.Len() == 0 || arrival <= departures.peek()) {
			now := arrival
			generated++
			arrival = now + exp(lambda)
			if busy < c {
				busy++
				svc := exp(mu)
				heap.Push(departures, qsEvent{at: now + svc})
				// A request that never waits sojourns for exactly its
				// service time.
				sojourns = append(sojourns, svc*1000)
			} else {
				queue = append(queue, now)
			}
			continue
		}
		if departures.Len() == 0 {
			break // exhausted arrivals with idle servers
		}
		ev := heap.Pop(departures).(qsEvent)
		if len(queue) > 0 {
			arrived := queue[0]
			queue = queue[1:]
			svc := exp(mu)
			heap.Push(departures, qsEvent{at: ev.at + svc})
			sojourns = append(sojourns, (ev.at+svc-arrived)*1000)
		} else {
			busy--
		}
	}
	if len(sojourns) > n {
		sojourns = sojourns[:n]
	}
	return sojourns
}
