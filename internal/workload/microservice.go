// Package workload models the applications the paper evaluates:
//
//   - SocialNet: eight latency-critical microservices (DeathStarBench) with
//     queueing-theoretic latency that explodes as load approaches capacity,
//     eases with overclocking, and halves its load under scale-out;
//   - MLTrain: throughput-optimized training whose rate tracks frequency;
//   - WebConf: a deployment-level conferencing service whose VM utilization
//     tracks request rate and frequency.
//
// The microservice latency model is the standard interpolation form for
// M/M/c-like systems: latency(ρ) = base · (1 + k·ρⁿ/(1−ρ)). The knee
// parameter k differs per service, reproducing the paper's observation that
// some services (Usr) tolerate high CPU utilization while others (UrlShort)
// violate their SLO even at low utilization (§III-Q1).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// SLOMultiplier is the paper's SLO definition: 5× a service's execution
// time on an unloaded system at turbo.
const SLOMultiplier = 5.0

// Microservice describes one latency-critical service tier.
type Microservice struct {
	// Name identifies the service (paper Fig 2 x-axis).
	Name string
	// BaseLatencyMS is the unloaded execution time at turbo frequency.
	BaseLatencyMS float64
	// CPUSensitivity in [0,1] is the fraction of execution time that
	// scales inversely with core frequency; the rest is memory/IO bound
	// and does not benefit from overclocking.
	CPUSensitivity float64
	// Knee controls how early congestion inflates the tail: P99 latency is
	// base·(1 + Knee·ρⁿ/(1−ρ)). Higher knee = SLO violated at lower load.
	Knee float64
	// AvgKnee is the analogous (smaller) coefficient for mean latency.
	AvgKnee float64
	// Exponent is n in the congestion term.
	Exponent float64
	// Cores is the number of worker threads one instance uses.
	Cores int
}

// SLOms returns the service's latency SLO in milliseconds.
func (m Microservice) SLOms() float64 { return SLOMultiplier * m.BaseLatencyMS }

// ServiceTimeMS returns the per-request execution time at the given core
// frequency: the CPU-bound fraction contracts with frequency, the rest is
// invariant.
func (m Microservice) ServiceTimeMS(freqMHz, turboMHz int) float64 {
	fr := float64(freqMHz) / float64(turboMHz)
	if fr <= 0 {
		fr = 1
	}
	return m.BaseLatencyMS * (m.CPUSensitivity/fr + (1 - m.CPUSensitivity))
}

// Rho returns the offered load ρ = λ·E[S]/c for rps requests per second at
// the given frequency.
func (m Microservice) Rho(rps float64, freqMHz, turboMHz int) float64 {
	if rps < 0 {
		rps = 0
	}
	es := m.ServiceTimeMS(freqMHz, turboMHz) / 1000
	return rps * es / float64(m.Cores)
}

// CapacityRPS returns the request rate at which ρ = 1 for the given
// frequency.
func (m Microservice) CapacityRPS(freqMHz, turboMHz int) float64 {
	es := m.ServiceTimeMS(freqMHz, turboMHz) / 1000
	return float64(m.Cores) / es
}

// congestion returns the multiplicative congestion factor k·ρⁿ/(1−ρ),
// evaluated at a ρ capped just below saturation (the backlog model covers
// the rest).
func (m Microservice) congestion(k, rho float64) float64 {
	if rho <= 0 {
		return 0
	}
	if rho > rhoSaturation {
		rho = rhoSaturation
	}
	return k * math.Pow(rho, m.Exponent) / (1 - rho)
}

// rhoSaturation is the utilization beyond which the open queue is treated
// as overloaded and requests accumulate in the instance backlog.
const rhoSaturation = 0.98

// maxBacklogSeconds bounds the queue: requests beyond this many seconds of
// work are shed (timeouts/load shedding), as any production service would.
const maxBacklogSeconds = 30.0

// StepResult reports one simulation step of a microservice instance.
type StepResult struct {
	AvgMS  float64 // mean response latency over the step
	P99MS  float64 // tail response latency over the step
	Util   float64 // CPU utilization in [0,1]
	Rho    float64 // offered load (can exceed 1 when overloaded)
	SLOvio bool    // whether P99 exceeded the SLO
}

// Instance is one running replica of a microservice with queue state.
type Instance struct {
	Service Microservice
	// backlogReqs is the number of queued requests beyond what the open
	// model covers; positive only after overload episodes.
	backlogReqs float64
}

// NewInstance creates an idle instance of service m.
func NewInstance(m Microservice) *Instance { return &Instance{Service: m} }

// Backlog returns the current overload backlog in requests.
func (in *Instance) Backlog() float64 { return in.backlogReqs }

// Step advances the instance by dt under an arrival rate of rps at the
// given frequency, returning the latency/utilization observed during the
// step. Optional rng adds ±5% lognormal measurement noise; pass nil for the
// pure analytic value.
func (in *Instance) Step(dt time.Duration, rps float64, freqMHz, turboMHz int, rng *rand.Rand) StepResult {
	m := in.Service
	rho := m.Rho(rps, freqMHz, turboMHz)
	esMS := m.ServiceTimeMS(freqMHz, turboMHz)
	capRPS := m.CapacityRPS(freqMHz, turboMHz)

	// Overload bookkeeping: arrivals beyond rhoSaturation·capacity queue
	// up; spare capacity drains the backlog.
	if rho > rhoSaturation {
		in.backlogReqs += (rps - rhoSaturation*capRPS) * dt.Seconds()
		if max := capRPS * maxBacklogSeconds; in.backlogReqs > max {
			in.backlogReqs = max
		}
	} else if in.backlogReqs > 0 {
		in.backlogReqs -= (rhoSaturation*capRPS - rps) * dt.Seconds()
		if in.backlogReqs < 0 {
			in.backlogReqs = 0
		}
	}

	// Queueing delay from the backlog applies to every request.
	backlogMS := in.backlogReqs / capRPS * 1000

	avg := esMS*(1+m.congestion(m.AvgKnee, rho)) + backlogMS
	p99 := esMS*(1+m.congestion(m.Knee, rho)) + backlogMS
	if rng != nil {
		noise := math.Exp(rng.NormFloat64() * 0.05)
		avg *= noise
		p99 *= noise
	}

	util := rho
	if util > 1 {
		util = 1
	}
	if in.backlogReqs > 0 {
		util = 1
	}
	return StepResult{
		AvgMS:  avg,
		P99MS:  p99,
		Util:   util,
		Rho:    rho,
		SLOvio: p99 > m.SLOms(),
	}
}

// Reset clears queue state.
func (in *Instance) Reset() { in.backlogReqs = 0 }

// Deployment is a load-balanced group of identical instances: arrivals
// split evenly, so scaling out halves per-instance load.
type Deployment struct {
	Service   Microservice
	Instances []*Instance
}

// NewDeployment creates a deployment with n instances of m.
// It panics if n is not positive.
func NewDeployment(m Microservice, n int) *Deployment {
	if n <= 0 {
		panic(fmt.Sprintf("workload: deployment needs >= 1 instance, got %d", n))
	}
	d := &Deployment{Service: m}
	for i := 0; i < n; i++ {
		d.Instances = append(d.Instances, NewInstance(m))
	}
	return d
}

// Scale adjusts the deployment to n instances, preserving existing queue
// state where possible. n is clamped to at least 1.
func (d *Deployment) Scale(n int) {
	if n < 1 {
		n = 1
	}
	for len(d.Instances) < n {
		d.Instances = append(d.Instances, NewInstance(d.Service))
	}
	if len(d.Instances) > n {
		d.Instances = d.Instances[:n]
	}
}

// Size returns the number of instances.
func (d *Deployment) Size() int { return len(d.Instances) }

// Step advances every instance by dt with total arrival rate totalRPS split
// evenly; freqMHz applies to all instances (per-instance frequencies are
// driven by the cluster layer). Returns the load-balanced aggregate result:
// the mean of per-instance averages and the worst per-instance P99.
func (d *Deployment) Step(dt time.Duration, totalRPS float64, freqMHz, turboMHz int, rng *rand.Rand) StepResult {
	per := totalRPS / float64(len(d.Instances))
	var agg StepResult
	for _, in := range d.Instances {
		r := in.Step(dt, per, freqMHz, turboMHz, rng)
		agg.AvgMS += r.AvgMS
		agg.Util += r.Util
		agg.Rho += r.Rho
		if r.P99MS > agg.P99MS {
			agg.P99MS = r.P99MS
		}
	}
	n := float64(len(d.Instances))
	agg.AvgMS /= n
	agg.Util /= n
	agg.Rho /= n
	agg.SLOvio = agg.P99MS > d.Service.SLOms()
	return agg
}

// SocialNet returns the eight SocialNet microservices used across the
// evaluation, calibrated so that under the paper's High load a single turbo
// instance violates most SLOs, a single overclocked instance meets most,
// and two turbo instances (ScaleOut) meet all — while Usr tolerates high
// utilization and UrlShort violates early (Fig 2).
func SocialNet() []Microservice {
	base := func(name string, lat, sens, knee float64) Microservice {
		return Microservice{
			Name: name, BaseLatencyMS: lat, CPUSensitivity: sens,
			Knee: knee, AvgKnee: knee / 4, Exponent: 2, Cores: 4,
		}
	}
	return []Microservice{
		base("ComposePost", 4.0, 0.85, 1.2),
		base("HomeTl", 2.5, 0.80, 1.0),
		base("UserTl", 2.2, 0.80, 1.1),
		base("UrlShort", 0.8, 0.90, 7.0), // fragile: violates at low util
		base("UserMention", 1.0, 0.85, 2.5),
		base("Text", 1.5, 0.75, 1.6),
		base("Media", 3.0, 0.45, 1.3), // partially memory/IO bound
		base("Usr", 0.9, 0.85, 0.35),  // tolerant: fine at high util
	}
}

// FindService returns the SocialNet service with the given name.
func FindService(name string) (Microservice, bool) {
	for _, m := range SocialNet() {
		if m.Name == name {
			return m, true
		}
	}
	return Microservice{}, false
}
