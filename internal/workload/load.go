package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// LoadLevel is the paper's Low/Medium/High load classification for the
// microservice experiments (Figs 2, 3, 12).
type LoadLevel int

const (
	// LowLoad leaves ample headroom; every system meets SLOs.
	LowLoad LoadLevel = iota
	// MediumLoad stresses fragile services.
	MediumLoad
	// HighLoad drives a single turbo instance into SLO violations for
	// most services.
	HighLoad
)

// String returns the level name.
func (l LoadLevel) String() string {
	switch l {
	case LowLoad:
		return "Low"
	case MediumLoad:
		return "Medium"
	case HighLoad:
		return "High"
	default:
		return fmt.Sprintf("LoadLevel(%d)", int(l))
	}
}

// Levels returns all load levels in ascending order.
func Levels() []LoadLevel { return []LoadLevel{LowLoad, MediumLoad, HighLoad} }

// Rho returns the offered load (utilization of a single turbo instance)
// the level corresponds to.
func (l LoadLevel) Rho() float64 {
	switch l {
	case LowLoad:
		return 0.35
	case MediumLoad:
		return 0.65
	default:
		// High load sits just above the congestion knee: a single turbo
		// instance hovers around its SLO (Fig 2/12), an overclocked one
		// recovers below it, and transient bursts push a turbo instance
		// deep into violation without saturating the queue.
		return 0.82
	}
}

// RPS returns the request rate that produces the level's offered load on a
// single instance of m at turbo.
func (l LoadLevel) RPS(m Microservice, turboMHz int) float64 {
	return l.Rho() * m.CapacityRPS(turboMHz, turboMHz)
}

// LoadGen produces a time-varying request rate around a base level with
// diurnal modulation and transient bursts — the bursty arrival process the
// cluster experiments drive SocialNet with.
type LoadGen struct {
	// BaseRPS is the mean request rate.
	BaseRPS float64
	// DiurnalAmp in [0,1] scales the day/night swing.
	DiurnalAmp float64
	// BurstProb is the per-step probability that a burst starts.
	BurstProb float64
	// BurstFactor multiplies the rate during a burst.
	BurstFactor float64
	// BurstLen is how many steps a burst lasts.
	BurstLen int
	// NoiseSD is multiplicative Gaussian noise.
	NoiseSD float64
	// WaveAmp/WavePeriod superimpose a faster sinusoidal load wave —
	// the transient peaks of the paper's Fig 1 compressed to emulation
	// time scales. WavePhase shifts the wave (decorrelating apps).
	WaveAmp    float64
	WavePeriod time.Duration
	WavePhase  time.Duration
	// SpikeFactor/SpikePeriod/SpikeLen superimpose square load plateaus:
	// every SpikePeriod the rate multiplies by SpikeFactor for SpikeLen
	// (Fig 1's Services B/C peak for ~5 minutes at the top and bottom of
	// each hour). SpikePhase decorrelates apps.
	SpikeFactor float64
	SpikePeriod time.Duration
	SpikeLen    time.Duration
	SpikePhase  time.Duration

	burstLeft int
}

// RPSAt returns the arrival rate for the step at ts, advancing burst state.
func (g *LoadGen) RPSAt(ts time.Time, rng *rand.Rand) float64 {
	rate := g.BaseRPS
	if g.DiurnalAmp > 0 {
		hour := float64(ts.Hour()) + float64(ts.Minute())/60
		rate *= 1 + g.DiurnalAmp*math.Sin(2*math.Pi*(hour-8)/24)
	}
	if g.WaveAmp > 0 && g.WavePeriod > 0 {
		frac := float64((ts.Add(g.WavePhase).Unix())%int64(g.WavePeriod.Seconds())) / g.WavePeriod.Seconds()
		rate *= 1 + g.WaveAmp*math.Sin(2*math.Pi*frac)
	}
	if g.SpikeFactor > 1 && g.SpikePeriod > 0 && g.SpikeLen > 0 {
		into := time.Duration((ts.Add(g.SpikePhase).Unix())%int64(g.SpikePeriod.Seconds())) * time.Second
		if into < g.SpikeLen {
			rate *= g.SpikeFactor
		}
	}
	if g.burstLeft > 0 {
		g.burstLeft--
		rate *= g.BurstFactor
	} else if g.BurstProb > 0 && rng != nil && rng.Float64() < g.BurstProb {
		g.burstLeft = g.BurstLen
		rate *= g.BurstFactor
	}
	if g.NoiseSD > 0 && rng != nil {
		rate *= 1 + rng.NormFloat64()*g.NoiseSD
	}
	if rate < 0 {
		rate = 0
	}
	return rate
}
