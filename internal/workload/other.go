package workload

import (
	"math"
	"time"
)

// MLTrain models throughput-optimized machine-learning training
// (FunctionBench): constantly high utilization, throughput proportional to
// core frequency. It is the power-hungry neighbour in the cluster
// experiments and is never overclocked — but it suffers when power capping
// throttles its frequency.
type MLTrain struct {
	// StepsPerSecondAtTurbo is the training throughput at turbo frequency.
	StepsPerSecondAtTurbo float64
	// Util is the workload's constant CPU utilization.
	Util float64

	totalSteps float64
	elapsed    time.Duration
}

// NewMLTrain returns a training job with the given turbo throughput.
func NewMLTrain(stepsPerSecond float64) *MLTrain {
	return &MLTrain{StepsPerSecondAtTurbo: stepsPerSecond, Util: 0.9}
}

// Throughput returns steps/second at the given frequency (linear scaling).
func (m *MLTrain) Throughput(freqMHz, turboMHz int) float64 {
	return m.StepsPerSecondAtTurbo * float64(freqMHz) / float64(turboMHz)
}

// Step advances training by dt at the given frequency, accumulating steps.
func (m *MLTrain) Step(dt time.Duration, freqMHz, turboMHz int) {
	m.totalSteps += m.Throughput(freqMHz, turboMHz) * dt.Seconds()
	m.elapsed += dt
}

// TotalSteps returns accumulated training steps.
func (m *MLTrain) TotalSteps() float64 { return m.totalSteps }

// MeanThroughput returns average steps/second over the run.
func (m *MLTrain) MeanThroughput() float64 {
	if m.elapsed == 0 {
		return 0
	}
	return m.totalSteps / m.elapsed.Seconds()
}

// WebConf models the paper's proprietary conferencing service for the
// production experiments (§V-C, Figs 16-17): per-VM CPU utilization is
// proportional to the request rate and inversely proportional to effective
// capacity, which grows superlinearly with frequency (higher frequency also
// improves boost residency and cache behaviour).
type WebConf struct {
	// CapacityRPSAtTurbo is the request rate that saturates one VM at
	// turbo.
	CapacityRPSAtTurbo float64
	// CapacityExponent is the exponent on the frequency ratio; calibrated
	// to ≈1.3 so overclocking 3.3→4.0 GHz serves ≈28% more load at equal
	// utilization (Fig 16).
	CapacityExponent float64
}

// NewWebConf returns a conferencing VM model with the paper's calibration.
func NewWebConf(capacityRPS float64) WebConf {
	return WebConf{CapacityRPSAtTurbo: capacityRPS, CapacityExponent: 1.3}
}

// Capacity returns the VM's request capacity at the given frequency.
func (w WebConf) Capacity(freqMHz, turboMHz int) float64 {
	fr := float64(freqMHz) / float64(turboMHz)
	return w.CapacityRPSAtTurbo * math.Pow(fr, w.CapacityExponent)
}

// Util returns CPU utilization for rps requests/second at the given
// frequency, clamped to [0,1].
func (w WebConf) Util(rps float64, freqMHz, turboMHz int) float64 {
	c := w.Capacity(freqMHz, turboMHz)
	if c <= 0 {
		return 1
	}
	u := rps / c
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return u
}

// RPSAtUtil returns the request rate the VM can serve at the given target
// utilization and frequency — the inverse of Util, used for Fig 16's
// "same utilization, more load" reading.
func (w WebConf) RPSAtUtil(util float64, freqMHz, turboMHz int) float64 {
	if util < 0 {
		util = 0
	}
	return util * w.Capacity(freqMHz, turboMHz)
}

// DeploymentUtil returns the deployment-level mean utilization across VM
// utilizations — WebConf's provisioning metric (§III-Q1, Fig 4): operators
// keep this below a target (e.g. 50%) to absorb an availability-zone
// failure.
func DeploymentUtil(vmUtils []float64) float64 {
	if len(vmUtils) == 0 {
		return 0
	}
	sum := 0.0
	for _, u := range vmUtils {
		sum += u
	}
	return sum / float64(len(vmUtils))
}
