package lifetime

import (
	"fmt"
	"time"
)

// BudgetConfig parameterizes epoch-based overclocking time budgets.
// A maximum total overclocking time (e.g. 10% over the part's life) is
// agreed offline with vendors; SmartOClock divides it into epochs so the
// part ages uniformly (§IV-B).
type BudgetConfig struct {
	// Epoch is the budgeting period. The paper uses a week so unused
	// weekend budget can serve weekdays.
	Epoch time.Duration
	// Fraction is the share of each epoch a core may spend overclocked.
	Fraction float64
	// CarryOver enables rolling unused budget into the next epoch.
	CarryOver bool
	// MaxCarryOver caps accumulated carry-over, expressed in epochs of
	// fresh allowance (1.0 = at most one extra epoch's worth).
	MaxCarryOver float64
}

// DefaultBudgetConfig returns the paper's running example: a weekly epoch
// with a 10% overclocking allowance and carry-over of at most one epoch.
func DefaultBudgetConfig() BudgetConfig {
	return BudgetConfig{
		Epoch:        7 * 24 * time.Hour,
		Fraction:     0.10,
		CarryOver:    true,
		MaxCarryOver: 1.0,
	}
}

// Validate reports whether the configuration is consistent.
func (c BudgetConfig) Validate() error {
	switch {
	case c.Epoch <= 0:
		return fmt.Errorf("lifetime: Epoch = %v, must be positive", c.Epoch)
	case c.Fraction < 0 || c.Fraction > 1:
		return fmt.Errorf("lifetime: Fraction = %v out of [0,1]", c.Fraction)
	case c.MaxCarryOver < 0:
		return fmt.Errorf("lifetime: MaxCarryOver = %v, must be non-negative", c.MaxCarryOver)
	}
	return nil
}

// Allowance returns the fresh overclocking time granted each epoch.
func (c BudgetConfig) Allowance() time.Duration {
	return time.Duration(float64(c.Epoch) * c.Fraction)
}

// Budget tracks the overclocking time budget of one component (typically a
// core) across epochs, including reservations for scheduled overclocking.
type Budget struct {
	cfg        BudgetConfig
	epochStart time.Time
	remaining  time.Duration
	reserved   time.Duration
}

// NewBudget creates a budget whose first epoch starts at start.
// It panics on an invalid configuration.
func NewBudget(cfg BudgetConfig, start time.Time) *Budget {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Budget{cfg: cfg, epochStart: start, remaining: cfg.Allowance()}
}

// Config returns the budget configuration.
func (b *Budget) Config() BudgetConfig { return b.cfg }

// EpochStart returns the start of the current epoch (after Advance).
func (b *Budget) EpochStart() time.Time { return b.epochStart }

// Advance rolls the budget forward to now, crossing epoch boundaries as
// needed: reservations expire with their epoch, unused budget carries over
// when configured (capped), and a fresh allowance is added per epoch.
func (b *Budget) Advance(now time.Time) {
	for now.Sub(b.epochStart) >= b.cfg.Epoch {
		b.epochStart = b.epochStart.Add(b.cfg.Epoch)
		b.reserved = 0
		fresh := b.cfg.Allowance()
		if b.cfg.CarryOver {
			carry := b.remaining
			maxCarry := time.Duration(float64(fresh) * b.cfg.MaxCarryOver)
			if carry > maxCarry {
				carry = maxCarry
			}
			b.remaining = fresh + carry
		} else {
			b.remaining = fresh
		}
	}
}

// Remaining returns unreserved budget available for unscheduled
// (metrics-based) overclocking right now.
func (b *Budget) Remaining() time.Duration {
	r := b.remaining - b.reserved
	if r < 0 {
		return 0
	}
	return r
}

// Reserved returns the budget currently held by reservations.
func (b *Budget) Reserved() time.Duration { return b.reserved }

// Total returns remaining budget including reservations.
func (b *Budget) Total() time.Duration { return b.remaining }

// Reserve sets aside d of budget for a scheduled overclocking request.
// It reports whether the reservation fit; on false nothing changes.
func (b *Budget) Reserve(d time.Duration) bool {
	if d < 0 || d > b.Remaining() {
		return false
	}
	b.reserved += d
	return true
}

// ReleaseReservation returns up to d of previously reserved budget.
func (b *Budget) ReleaseReservation(d time.Duration) {
	if d < 0 {
		return
	}
	b.reserved -= d
	if b.reserved < 0 {
		b.reserved = 0
	}
}

// Consume spends d of budget for actual overclocked operation. When
// fromReservation is true the spend is drawn from reserved budget first.
// It reports whether the full amount was available; on false nothing is
// consumed (callers should stop overclocking).
func (b *Budget) Consume(d time.Duration, fromReservation bool) bool {
	if d < 0 {
		return false
	}
	if fromReservation {
		if d > b.remaining || d > b.reserved {
			return false
		}
		b.reserved -= d
		b.remaining -= d
		return true
	}
	if d > b.Remaining() {
		return false
	}
	b.remaining -= d
	return true
}

// TimeToExhaustion returns how long the unreserved budget lasts when spent
// continuously. Used by the sOA's proactive exhaustion signal (§IV-D).
func (b *Budget) TimeToExhaustion() time.Duration { return b.Remaining() }

// CoreBudgets manages one Budget per core of a server and supports the
// paper's core-migration exploration: when a VM's cores run out of budget
// the sOA looks for other cores with headroom (§IV-D).
type CoreBudgets struct {
	cores []*Budget
	// candScratch backs FindCoresFiltered's candidate selection, which
	// runs on every admission attempt; reuse keeps the request hot path
	// from allocating a candidate list per call.
	candScratch []coreCand
}

// coreCand is one eligible core during budget-aware core selection.
type coreCand struct {
	idx int
	rem time.Duration
}

// NewCoreBudgets creates n per-core budgets that all start at start.
func NewCoreBudgets(cfg BudgetConfig, n int, start time.Time) *CoreBudgets {
	cb := &CoreBudgets{cores: make([]*Budget, n)}
	for i := range cb.cores {
		cb.cores[i] = NewBudget(cfg, start)
	}
	return cb
}

// Len returns the number of cores.
func (cb *CoreBudgets) Len() int { return len(cb.cores) }

// Core returns core i's budget.
func (cb *CoreBudgets) Core(i int) *Budget { return cb.cores[i] }

// Advance rolls every core's budget forward to now.
func (cb *CoreBudgets) Advance(now time.Time) {
	for _, b := range cb.cores {
		b.Advance(now)
	}
}

// TotalRemaining sums unreserved budget across cores.
func (cb *CoreBudgets) TotalRemaining() time.Duration {
	var total time.Duration
	for _, b := range cb.cores {
		total += b.Remaining()
	}
	return total
}

// FindCores returns the indices of up to n cores that each have at least
// need of unreserved budget, preferring the cores with the most budget so
// wear levels out. It returns nil when fewer than n cores qualify.
func (cb *CoreBudgets) FindCores(n int, need time.Duration) []int {
	return cb.FindCoresFiltered(n, need, nil)
}

// FindCoresFiltered is FindCores with an extra eligibility predicate
// (nil accepts every core) — used to exclude cores whose online wear
// counters report exhausted headroom.
func (cb *CoreBudgets) FindCoresFiltered(n int, need time.Duration, ok func(core int) bool) []int {
	cands := cb.candScratch[:0]
	for i, b := range cb.cores {
		if b.Remaining() >= need && (ok == nil || ok(i)) {
			cands = append(cands, coreCand{i, b.Remaining()})
		}
	}
	cb.candScratch = cands
	if len(cands) < n {
		return nil
	}
	// Selection by most remaining budget; stable on index for determinism.
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].rem > cands[best].rem {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].idx
	}
	return out
}
