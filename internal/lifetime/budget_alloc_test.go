package lifetime

import (
	"testing"
	"time"
)

// TestFindCoresFilteredSteadyStateAllocs guards the admission hot path:
// after the candidate scratch buffer warms up, the only allocation per
// call is the returned core-index slice the caller keeps.
func TestFindCoresFilteredSteadyStateAllocs(t *testing.T) {
	start := time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)
	cb := NewCoreBudgets(DefaultBudgetConfig(), 32, start)
	cb.FindCoresFiltered(4, time.Minute, nil) // warm the scratch buffer
	allocs := testing.AllocsPerRun(100, func() {
		cb.FindCoresFiltered(4, time.Minute, nil)
	})
	if allocs > 1 {
		t.Fatalf("FindCoresFiltered allocates %.1f objects per call, want <=1 (the result slice)", allocs)
	}
}
