package lifetime

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var epoch0 = time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)

// ocVoltRatio is the voltage ratio at the default machine's max overclock
// (3.3 → 4.0 GHz with VoltSlope 1.3): 1 + 1.3·(700/3300).
const ocVoltRatio = 1.2757575757575756

func TestAccelNominalIsOne(t *testing.T) {
	m := DefaultAgingModel()
	if got := m.Accel(1); got != 1 {
		t.Fatalf("Accel(1) = %v", got)
	}
	if got := m.Accel(0.9); got != 1 {
		t.Fatalf("Accel(<1) = %v, undervolt must clamp to 1", got)
	}
}

func TestAccelExponential(t *testing.T) {
	m := DefaultAgingModel()
	a1 := m.Accel(1.1)
	a2 := m.Accel(1.2)
	// Exponential: Accel(1.2) = Accel(1.1)^2 relative to exponent.
	if math.Abs(a2-a1*a1) > 1e-9 {
		t.Fatalf("not exponential: %v vs %v", a2, a1*a1)
	}
}

func TestAccelAtMaxOCCalibration(t *testing.T) {
	// DESIGN.md anchor: ≈5.5× acceleration at max overclock voltage.
	m := DefaultAgingModel()
	a := m.Accel(ocVoltRatio)
	if a < 4.5 || a > 6.5 {
		t.Fatalf("Accel at max OC = %v, want ≈5.5", a)
	}
}

func TestRateClampsUtil(t *testing.T) {
	m := DefaultAgingModel()
	if m.Rate(-1, 1) != m.UtilFloor {
		t.Fatalf("rate at negative util = %v", m.Rate(-1, 1))
	}
	if m.Rate(5, 1) != 1 {
		t.Fatalf("rate at util>1 = %v", m.Rate(5, 1))
	}
}

func TestReferenceRateIsOne(t *testing.T) {
	m := DefaultAgingModel()
	if got := m.Rate(1, 1); got != 1 {
		t.Fatalf("reference rate = %v", got)
	}
}

func TestConservativeFleetAnchor(t *testing.T) {
	// §III-Q2: conservative fleet usage ages 2.5 years over 5 years —
	// i.e. rate 0.5 at ~50% utilization and nominal voltage.
	m := DefaultAgingModel()
	if got := m.Rate(0.5, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("fleet rate = %v, want 0.5", got)
	}
}

func TestNaiveOCAnchor(t *testing.T) {
	// §III-Q2: overclocking 50% of the time at high utilization ages the
	// part several years per year of use: average rate well above 2.5.
	m := DefaultAgingModel()
	avg := 0.5*m.Rate(1, ocVoltRatio) + 0.5*m.Rate(0.5, 1)
	if avg < 2.5 {
		t.Fatalf("naive 50%% OC rate = %v, want >= 2.5", avg)
	}
}

func TestWearAccumulation(t *testing.T) {
	w := NewWear(DefaultAgingModel())
	w.Add(10*time.Hour, 1, 1)
	if w.Aged() != 10*time.Hour {
		t.Fatalf("Aged = %v", w.Aged())
	}
	if w.Elapsed() != 10*time.Hour || w.Expected() != 10*time.Hour {
		t.Fatalf("Elapsed/Expected = %v/%v", w.Elapsed(), w.Expected())
	}
	if w.Credits() != 0 || !w.WithinEnvelope() {
		t.Fatal("reference usage must exactly track envelope")
	}
}

func TestWearCreditsAccrueUnderLowUtil(t *testing.T) {
	w := NewWear(DefaultAgingModel())
	w.Add(10*time.Hour, 0.3, 1)
	if w.Credits() <= 0 {
		t.Fatalf("Credits = %v, want positive", w.Credits())
	}
	if !w.WithinEnvelope() {
		t.Fatal("low utilization must stay within envelope")
	}
}

func TestWearEnvelopeExceededByAlwaysOC(t *testing.T) {
	w := NewWear(DefaultAgingModel())
	w.Add(10*time.Hour, 0.5, ocVoltRatio)
	if w.WithinEnvelope() {
		t.Fatalf("always-OC at 50%% util must exceed envelope (aged %v over %v)",
			w.Aged(), w.Elapsed())
	}
}

// TestFig7Anchors reproduces the three policies of the paper's Fig 7 on a
// synthetic 5-day diurnal utilization trace (midday peaks above 50%, night
// valleys below 20%).
func TestFig7Anchors(t *testing.T) {
	m := DefaultAgingModel()
	diurnalUtil := func(hour int) float64 {
		return 0.38 - 0.28*math.Cos(2*math.Pi*float64(hour)/24)
	}
	simulate := func(ocHours func(hour int) bool) time.Duration {
		w := NewWear(m)
		for day := 0; day < 5; day++ {
			for hour := 0; hour < 24; hour++ {
				vr := 1.0
				if ocHours(hour) {
					vr = ocVoltRatio
				}
				w.Add(time.Hour, diurnalUtil(hour), vr)
			}
		}
		return w.Aged()
	}
	day := 24 * time.Hour
	baseline := simulate(func(int) bool { return false })
	alwaysOC := simulate(func(int) bool { return true })
	// Overclock-aware: 25% of the time, at the daily peak (hours 10-16).
	aware := simulate(func(h int) bool { return h >= 10 && h < 16 })

	if baseline >= 2*day {
		t.Fatalf("non-overclocked aged %v, want < 2 days", baseline)
	}
	if alwaysOC <= 10*day {
		t.Fatalf("always-overclock aged %v, want > 10 days", alwaysOC)
	}
	if aware > 5*day+day/2 {
		t.Fatalf("overclock-aware aged %v, want ≈ expected 5 days", aware)
	}
	if aware <= baseline {
		t.Fatal("overclock-aware must consume credits (age more than baseline)")
	}
}

func TestWearAddPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWear(DefaultAgingModel()).Add(-time.Second, 1, 1)
}

func TestBudgetConfigValidate(t *testing.T) {
	if err := DefaultBudgetConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []BudgetConfig{
		{Epoch: 0, Fraction: 0.1},
		{Epoch: time.Hour, Fraction: -0.1},
		{Epoch: time.Hour, Fraction: 1.5},
		{Epoch: time.Hour, Fraction: 0.1, MaxCarryOver: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAllowance(t *testing.T) {
	cfg := DefaultBudgetConfig()
	want := time.Duration(float64(7*24*time.Hour) * 0.10)
	if got := cfg.Allowance(); got != want {
		t.Fatalf("Allowance = %v, want %v", got, want)
	}
}

func TestBudgetConsume(t *testing.T) {
	cfg := BudgetConfig{Epoch: 10 * time.Hour, Fraction: 0.1}
	b := NewBudget(cfg, epoch0)
	if b.Remaining() != time.Hour {
		t.Fatalf("initial = %v", b.Remaining())
	}
	if !b.Consume(30*time.Minute, false) {
		t.Fatal("consume failed")
	}
	if b.Remaining() != 30*time.Minute {
		t.Fatalf("after consume = %v", b.Remaining())
	}
	if b.Consume(time.Hour, false) {
		t.Fatal("over-consume succeeded")
	}
	if b.Remaining() != 30*time.Minute {
		t.Fatal("failed consume must not change budget")
	}
	if b.Consume(-time.Minute, false) {
		t.Fatal("negative consume must fail")
	}
}

func TestBudgetReservations(t *testing.T) {
	cfg := BudgetConfig{Epoch: 10 * time.Hour, Fraction: 0.1}
	b := NewBudget(cfg, epoch0)
	if !b.Reserve(40 * time.Minute) {
		t.Fatal("reserve failed")
	}
	if b.Remaining() != 20*time.Minute || b.Reserved() != 40*time.Minute {
		t.Fatalf("remaining=%v reserved=%v", b.Remaining(), b.Reserved())
	}
	if b.Reserve(30 * time.Minute) {
		t.Fatal("over-reserve succeeded")
	}
	// Scheduled consumption draws from the reservation.
	if !b.Consume(10*time.Minute, true) {
		t.Fatal("reserved consume failed")
	}
	if b.Reserved() != 30*time.Minute || b.Total() != 50*time.Minute {
		t.Fatalf("reserved=%v total=%v", b.Reserved(), b.Total())
	}
	b.ReleaseReservation(time.Hour) // release more than held: clamps
	if b.Reserved() != 0 {
		t.Fatalf("reserved after release = %v", b.Reserved())
	}
	if b.Remaining() != 50*time.Minute {
		t.Fatalf("remaining after release = %v", b.Remaining())
	}
}

func TestBudgetEpochRollWithCarryOver(t *testing.T) {
	cfg := BudgetConfig{Epoch: 10 * time.Hour, Fraction: 0.1, CarryOver: true, MaxCarryOver: 1}
	b := NewBudget(cfg, epoch0)
	b.Consume(30*time.Minute, false)
	b.Advance(epoch0.Add(10 * time.Hour))
	// 1h fresh + 30m carry.
	if b.Remaining() != 90*time.Minute {
		t.Fatalf("after roll = %v", b.Remaining())
	}
	if !b.EpochStart().Equal(epoch0.Add(10 * time.Hour)) {
		t.Fatalf("epoch start = %v", b.EpochStart())
	}
}

func TestBudgetCarryOverCap(t *testing.T) {
	cfg := BudgetConfig{Epoch: 10 * time.Hour, Fraction: 0.1, CarryOver: true, MaxCarryOver: 0.5}
	b := NewBudget(cfg, epoch0)
	// Nothing consumed; carry would be 1h but cap is 30m.
	b.Advance(epoch0.Add(10 * time.Hour))
	if b.Remaining() != 90*time.Minute {
		t.Fatalf("capped carry = %v, want 90m", b.Remaining())
	}
}

func TestBudgetNoCarryOver(t *testing.T) {
	cfg := BudgetConfig{Epoch: 10 * time.Hour, Fraction: 0.1}
	b := NewBudget(cfg, epoch0)
	b.Advance(epoch0.Add(25 * time.Hour)) // two epoch boundaries
	if b.Remaining() != time.Hour {
		t.Fatalf("no-carry remaining = %v", b.Remaining())
	}
	if !b.EpochStart().Equal(epoch0.Add(20 * time.Hour)) {
		t.Fatalf("epoch start = %v", b.EpochStart())
	}
}

func TestBudgetReservationsExpireAtEpoch(t *testing.T) {
	cfg := BudgetConfig{Epoch: 10 * time.Hour, Fraction: 0.1, CarryOver: true, MaxCarryOver: 1}
	b := NewBudget(cfg, epoch0)
	b.Reserve(time.Hour)
	b.Advance(epoch0.Add(10 * time.Hour))
	if b.Reserved() != 0 {
		t.Fatalf("reservation survived epoch: %v", b.Reserved())
	}
}

func TestNewBudgetPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBudget(BudgetConfig{}, epoch0)
}

func TestCoreBudgets(t *testing.T) {
	cfg := BudgetConfig{Epoch: 10 * time.Hour, Fraction: 0.1}
	cb := NewCoreBudgets(cfg, 4, epoch0)
	if cb.Len() != 4 {
		t.Fatalf("Len = %d", cb.Len())
	}
	if cb.TotalRemaining() != 4*time.Hour {
		t.Fatalf("TotalRemaining = %v", cb.TotalRemaining())
	}
	cb.Core(0).Consume(time.Hour, false)
	cb.Core(1).Consume(30*time.Minute, false)
	cores := cb.FindCores(2, 45*time.Minute)
	if len(cores) != 2 {
		t.Fatalf("FindCores = %v", cores)
	}
	// Cores 2 and 3 have the most budget; 0 and 1 are depleted below need.
	for _, c := range cores {
		if c == 0 {
			t.Fatalf("depleted core selected: %v", cores)
		}
	}
	if got := cb.FindCores(4, 45*time.Minute); got != nil {
		t.Fatalf("FindCores must fail when not enough qualify, got %v", got)
	}
	cb.Advance(epoch0.Add(10 * time.Hour))
	if cb.TotalRemaining() != 4*time.Hour {
		t.Fatalf("after advance = %v", cb.TotalRemaining())
	}
}

// Property: consume never makes Remaining negative and fails atomically.
func TestBudgetConsumeProperty(t *testing.T) {
	cfg := BudgetConfig{Epoch: 100 * time.Hour, Fraction: 0.5}
	f := func(spends []int16) bool {
		b := NewBudget(cfg, epoch0)
		for _, s := range spends {
			d := time.Duration(s) * time.Minute
			before := b.Remaining()
			ok := b.Consume(d, false)
			after := b.Remaining()
			if after < 0 {
				return false
			}
			if ok && before-after != d {
				return false
			}
			if !ok && before != after {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: aging rate is monotone in both utilization and voltage.
func TestRateMonotoneProperty(t *testing.T) {
	m := DefaultAgingModel()
	f := func(u1, u2, v1, v2 float64) bool {
		norm := func(x float64, lo, hi float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return lo
			}
			return lo + math.Abs(math.Mod(x, 1))*(hi-lo)
		}
		ua, ub := norm(u1, 0, 1), norm(u2, 0, 1)
		va, vb := norm(v1, 1, 1.3), norm(v2, 1, 1.3)
		if ua > ub {
			ua, ub = ub, ua
		}
		if va > vb {
			va, vb = vb, va
		}
		return m.Rate(ua, va) <= m.Rate(ub, vb)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineWearGateAllowsWithinEnvelope(t *testing.T) {
	g := DefaultOnlineWearGate()
	w := NewWear(DefaultAgingModel())
	w.Add(2*time.Hour, 0.4, 1) // under-utilized: well inside envelope
	if !g.Allow(w) {
		t.Fatal("gate closed inside the envelope")
	}
	if g.Headroom(w) <= 0 {
		t.Fatal("headroom must be positive inside the envelope")
	}
}

func TestOnlineWearGateClosesWhenOverAged(t *testing.T) {
	g := DefaultOnlineWearGate()
	w := NewWear(DefaultAgingModel())
	w.Add(2*time.Hour, 1, ocVoltRatio) // sustained max overclock at full load
	if g.Allow(w) {
		t.Fatalf("gate open at %v aged over %v elapsed", w.Aged(), w.Elapsed())
	}
	if g.Headroom(w) != 0 {
		t.Fatalf("headroom = %v, want 0", g.Headroom(w))
	}
}

func TestOnlineWearGateNeedsObservation(t *testing.T) {
	g := DefaultOnlineWearGate()
	w := NewWear(DefaultAgingModel())
	w.Add(10*time.Minute, 1, ocVoltRatio) // aged fast but observed briefly
	if !g.Allow(w) {
		t.Fatal("gate must stay open before MinObservation")
	}
}

func TestOnlineWearGateMarginBoundary(t *testing.T) {
	g := OnlineWearGate{Margin: 0.10, MinObservation: 0}
	w := NewWear(DefaultAgingModel())
	// Reference-rate operation ages exactly 1:1; a 10% margin keeps the
	// gate open.
	w.Add(3*time.Hour, 1, 1)
	if !g.Allow(w) {
		t.Fatal("gate closed at exactly on-schedule aging")
	}
}
