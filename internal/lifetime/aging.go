// Package lifetime models the reliability side of overclocking: component
// aging from gate-oxide wearout and the per-epoch overclocking time budgets
// SmartOClock enforces to stay within server lifetime goals (§II, §III-Q2,
// §IV-B).
//
// The aging model follows the paper's description of the vendor composite
// model: wearout accelerates exponentially with voltage, and accumulates in
// proportion to utilization (the time cores spend at the elevated voltage).
// Vendors assume near-100% utilization at turbo when rating a part, so the
// reference rate is one unit of aging per unit of time at full utilization
// and nominal voltage; cloud under-utilization accrues "lifetime credits"
// that overclocking can spend.
package lifetime

import (
	"fmt"
	"math"
	"time"
)

// AgingModel computes relative wearout rates. The zero value is unusable;
// construct with DefaultAgingModel or fill the fields explicitly.
type AgingModel struct {
	// Kappa is the exponential voltage-acceleration coefficient:
	// accel = exp(Kappa · (V/Vref − 1)). The paper reports an exponential
	// relationship between voltage and lifetime (§II).
	Kappa float64
	// UtilFloor is the minimum effective utilization: even an idle core at
	// elevated voltage wears (leakage stress). Keeps the model conservative.
	UtilFloor float64
}

// DefaultAgingModel is calibrated to the paper's anchors (§III-Q2, Fig 7):
//
//   - a conservative fleet at ~50% utilization and turbo ages 2.5 years over
//     a 5-year period (rate = util at nominal voltage);
//   - always overclocking a diurnal workload (mean utilization ≈38%) ages
//     the part more than 10 days over a 5-day window (Fig 7), which pins the
//     acceleration at max overclock voltage (+27.6% over nominal) to ≈5.5×;
//   - an overclock-aware policy spending ~25% overclocked time at the daily
//     peak stays within ~10% of the expected aging envelope;
//   - naive overclocking 50% of the time at high utilization ages a part
//     several years per year of use.
func DefaultAgingModel() AgingModel {
	return AgingModel{Kappa: 6.18, UtilFloor: 0.05}
}

// Accel returns the wearout acceleration factor at the given voltage ratio
// (V/Vref). At nominal voltage the factor is 1; it grows exponentially.
func (m AgingModel) Accel(voltRatio float64) float64 {
	if voltRatio < 1 {
		voltRatio = 1 // undervolting headroom is out of scope
	}
	return math.Exp(m.Kappa * (voltRatio - 1))
}

// Rate returns the instantaneous aging rate in aging-seconds per second for
// a core at utilization util and voltage ratio voltRatio. The vendor
// reference (full utilization, nominal voltage) has rate 1.
func (m AgingModel) Rate(util, voltRatio float64) float64 {
	if util < m.UtilFloor {
		util = m.UtilFloor
	}
	if util > 1 {
		util = 1
	}
	return util * m.Accel(voltRatio)
}

// Wear accumulates aging for one component against the expected envelope.
type Wear struct {
	model   AgingModel
	aged    time.Duration // accumulated aging
	elapsed time.Duration // wall-clock time observed
}

// NewWear creates a wear tracker using model.
func NewWear(model AgingModel) *Wear {
	return &Wear{model: model}
}

// Add integrates dt of operation at the given utilization and voltage
// ratio. It panics on negative dt.
func (w *Wear) Add(dt time.Duration, util, voltRatio float64) {
	if dt < 0 {
		panic(fmt.Sprintf("lifetime: negative interval %v", dt))
	}
	rate := w.model.Rate(util, voltRatio)
	w.aged += time.Duration(float64(dt) * rate)
	w.elapsed += dt
}

// Aged returns accumulated aging (in time units of equivalent reference
// operation).
func (w *Wear) Aged() time.Duration { return w.aged }

// Elapsed returns observed wall-clock time.
func (w *Wear) Elapsed() time.Duration { return w.elapsed }

// Expected returns the aging envelope for the elapsed period: the vendor
// expectation that a part ages one unit per unit time.
func (w *Wear) Expected() time.Duration { return w.elapsed }

// Credits returns unspent lifetime: Expected − Aged. Positive credits mean
// the part has aged less than the vendor assumed and the difference can be
// consumed by overclocking; negative means the envelope is exceeded.
func (w *Wear) Credits() time.Duration { return w.Expected() - w.aged }

// WithinEnvelope reports whether accumulated aging is at or below the
// expected envelope.
func (w *Wear) WithinEnvelope() bool { return w.aged <= w.Expected() }

// OnlineWearGate upgrades lifetime management from the conservative offline
// time-budget model to a per-part online calculation driven by wear-out
// counters (§VI "Hardware support for overclocking"): overclocking is
// allowed while the component's measured aging stays inside its expected
// envelope plus a configurable margin.
//
// The gate is advisory — SmartOClock consults it in addition to (or instead
// of) epoch time budgets when the platform exposes wear counters.
type OnlineWearGate struct {
	// Margin is the tolerated aging overshoot as a fraction of the
	// expected envelope (0.05 = may age 5% ahead of schedule).
	Margin float64
	// MinObservation avoids gating on noise before enough operation has
	// been observed.
	MinObservation time.Duration
}

// DefaultOnlineWearGate tolerates 5% overshoot after one hour of
// observation.
func DefaultOnlineWearGate() OnlineWearGate {
	return OnlineWearGate{Margin: 0.05, MinObservation: time.Hour}
}

// Allow reports whether the component behind w may be overclocked now.
func (g OnlineWearGate) Allow(w *Wear) bool {
	if w.Elapsed() < g.MinObservation {
		return true // not enough signal; the offline budget still applies
	}
	limit := time.Duration(float64(w.Expected()) * (1 + g.Margin))
	return w.Aged() <= limit
}

// Headroom returns how much more aging the component may accumulate before
// the gate closes (zero when already over).
func (g OnlineWearGate) Headroom(w *Wear) time.Duration {
	limit := time.Duration(float64(w.Expected()) * (1 + g.Margin))
	if w.Aged() >= limit {
		return 0
	}
	return limit - w.Aged()
}
