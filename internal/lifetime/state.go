package lifetime

import (
	"fmt"
	"time"
)

// BudgetState is the serializable state of one Budget. The configuration is
// deliberately absent: config is code, state is data — a restored process
// re-creates the Budget from its own configuration and only the ledger
// (epoch position, remaining allowance, reservations) comes from the
// checkpoint.
type BudgetState struct {
	EpochStart time.Time     `json:"epoch_start"`
	Remaining  time.Duration `json:"remaining"`
	Reserved   time.Duration `json:"reserved"`
}

// Snapshot captures the budget's ledger.
func (b *Budget) Snapshot() BudgetState {
	return BudgetState{EpochStart: b.epochStart, Remaining: b.remaining, Reserved: b.reserved}
}

// Restore overwrites the ledger from a snapshot, keeping the configuration.
func (b *Budget) Restore(st BudgetState) {
	b.epochStart = st.EpochStart
	b.remaining = st.Remaining
	b.reserved = st.Reserved
}

// CoreBudgetsState is the serializable state of a per-core budget set.
type CoreBudgetsState struct {
	Cores []BudgetState `json:"cores"`
}

// Snapshot captures every core's ledger.
func (cb *CoreBudgets) Snapshot() *CoreBudgetsState {
	st := &CoreBudgetsState{Cores: make([]BudgetState, len(cb.cores))}
	for i, b := range cb.cores {
		st.Cores[i] = b.Snapshot()
	}
	return st
}

// Restore overwrites every core's ledger from a snapshot. It fails when the
// snapshot was taken on a server with a different core count — restoring a
// mismatched ledger would silently mis-assign budgets.
func (cb *CoreBudgets) Restore(st *CoreBudgetsState) error {
	if len(st.Cores) != len(cb.cores) {
		return fmt.Errorf("lifetime: snapshot has %d cores, budgets have %d", len(st.Cores), len(cb.cores))
	}
	for i, b := range cb.cores {
		b.Restore(st.Cores[i])
	}
	return nil
}

// WearState is the serializable state of one Wear tracker. As with
// BudgetState the aging model is not serialized; only the accumulated
// counters are.
type WearState struct {
	Aged    time.Duration `json:"aged"`
	Elapsed time.Duration `json:"elapsed"`
}

// Snapshot captures the wear counters.
func (w *Wear) Snapshot() WearState {
	return WearState{Aged: w.aged, Elapsed: w.elapsed}
}

// Restore overwrites the wear counters from a snapshot, keeping the model.
func (w *Wear) Restore(st WearState) {
	w.aged = st.Aged
	w.elapsed = st.Elapsed
}
