package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"smartoclock/internal/baselines"
	"smartoclock/internal/core"
	"smartoclock/internal/parallel"
	"smartoclock/internal/predict"
	"smartoclock/internal/stats"
	"smartoclock/internal/timeseries"
	"smartoclock/internal/trace"
)

// The ablation studies isolate the design choices DESIGN.md calls out:
// the template-creation strategy behind admission control, the exploration
// step size, and the rack warning threshold. Each runs SmartOClock on
// High-Power racks (where every mechanism is stressed) and reports capping
// events, overclocking success and normalized performance.

// ablationPoint is one configuration's result.
type ablationPoint struct {
	label    string
	caps     int
	success  float64
	normPerf float64
}

// runHighPowerSmart runs SmartOClock over High-Power racks.
func runHighPowerSmart(cfg FleetSimConfig) (ablationPoint, error) {
	return runHighPower(cfg, baselines.SmartOClock)
}

// runHighPower runs one system over the High-Power racks of a fleet
// generated from cfg and aggregates the Table I metrics.
func runHighPower(cfg FleetSimConfig, sys baselines.System) (ablationPoint, error) {
	days := cfg.TrainDays + cfg.EvalDays
	fcfg := trace.DefaultFleetConfig(fleetStart, time.Duration(days)*24*time.Hour)
	fcfg.Seed = cfg.Seed
	fcfg.Regions = []string{"Ablation"}
	fcfg.RacksPerRegion = cfg.RacksPerClass
	fcfg.Step = cfg.Step
	fcfg.ClassMix = map[trace.ClusterClass]float64{trace.HighPower: 1}
	// Anomalous days land in the training window: they are precisely what
	// separates per-day aggregation from raw replay (§IV-B).
	fcfg.RackTemplate.OutlierDayProb = 0.6
	fcfg.RackTemplate.OutlierWithinDays = cfg.TrainDays
	// Stream: each worker generates its rack (a pure function of seed and
	// index), simulates it and drops it — the single-class mix means every
	// index is a High-Power rack, so no materialized fleet is needed.
	type out struct {
		m   rackMetrics
		err error
	}
	results := parallel.Map(fcfg.NumRacks(), fleetOpts(cfg), func(i int) out {
		fr, err := trace.GenFleetRack(fcfg, i)
		if err != nil {
			return out{err: err}
		}
		return out{m: rackRun(fr.RackTrace, sys, cfg)}
	})
	var agg rackMetrics
	for _, o := range results {
		if o.err != nil {
			return ablationPoint{}, o.err
		}
		agg.accumulate(o.m)
	}
	pt := ablationPoint{caps: agg.caps}
	if agg.requests > 0 {
		pt.success = 100 * float64(agg.successes) / float64(agg.requests)
	}
	if agg.perfN > 0 {
		pt.normPerf = agg.perfSum / float64(agg.perfN)
	}
	return pt, nil
}

// RunAblationTemplates compares the template strategies behind admission
// control (§IV-B) in the NoFeedback regime, isolating admission from
// exploration. Two findings: over-predicting templates (FlatMax, and
// DailyMax to a lesser degree) strangle admission outright, while
// under-predicting ones (FlatMed) are partially rescued by the
// decentralized budget-enforcement loop — evidence for the paper's Q5
// argument that local enforcement makes the system robust to prediction
// error. Prediction quality itself is measured directly in Fig 15.
func RunAblationTemplates(base FleetSimConfig) (*Table, error) {
	tbl := &Table{
		Caption: "Ablation: power-template strategy for admission control (NoFeedback regime, High-Power racks)",
		Headers: []string{"Template", "CapEvents", "Success", "Norm.Performance"},
	}
	strategies := []string{"dailymed", "dailymax", "flatmed", "flatmax", "weekly"}
	pts, err := sweepAblation(base, len(strategies), func(i int) (ablationPoint, error) {
		cfg := base
		cfg.TemplateStrategy = strategies[i]
		return runHighPower(cfg, baselines.NoFeedback)
	})
	if err != nil {
		return nil, err
	}
	for i, pt := range pts {
		tbl.AddRow(strategies[i], pt.caps, fmt.Sprintf("%.0f%%", pt.success), fmt.Sprintf("%.3f", pt.normPerf))
	}
	return tbl, nil
}

// sweepAblation runs independent configuration points concurrently and
// returns their results in sweep order; the first error wins.
func sweepAblation(base FleetSimConfig, n int, run func(i int) (ablationPoint, error)) ([]ablationPoint, error) {
	type out struct {
		pt  ablationPoint
		err error
	}
	outs := parallel.Map(n, fleetOpts(base), func(i int) out {
		pt, err := run(i)
		return out{pt, err}
	})
	pts := make([]ablationPoint, n)
	for i, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		pts[i] = o.pt
	}
	return pts, nil
}

// RunAblationExploreStep sweeps the exploration increment (§IV-D): zero
// disables exploration entirely (the NoFeedback regime), small steps
// converge slowly, large steps overshoot into warnings.
func RunAblationExploreStep(base FleetSimConfig) (*Table, error) {
	tbl := &Table{
		Caption: "Ablation: exploration step size (SmartOClock, High-Power racks)",
		Headers: []string{"StepWatts", "CapEvents", "Success", "Norm.Performance"},
	}
	steps := []float64{-1, 20, 40, 80, 160}
	pts, err := sweepAblation(base, len(steps), func(i int) (ablationPoint, error) {
		cfg := base
		cfg.ExploreStepWatts = steps[i]
		return runHighPowerSmart(cfg)
	})
	if err != nil {
		return nil, err
	}
	for i, pt := range pts {
		label := fmt.Sprintf("%.0f", steps[i])
		if steps[i] < 0 {
			label = "disabled"
		}
		tbl.AddRow(label, pt.caps, fmt.Sprintf("%.0f%%", pt.success), fmt.Sprintf("%.3f", pt.normPerf))
	}
	return tbl, nil
}

// RunAblationWarnThreshold sweeps the rack warning threshold: warning too
// late (0.99) degenerates toward NoWarning; warning too early (0.85)
// suppresses exploration and success.
func RunAblationWarnThreshold(base FleetSimConfig) (*Table, error) {
	tbl := &Table{
		Caption: "Ablation: rack warning threshold (SmartOClock, High-Power racks)",
		Headers: []string{"WarnFraction", "CapEvents", "Success", "Norm.Performance"},
	}
	fractions := []float64{0.85, 0.90, 0.95, 0.99}
	pts, err := sweepAblation(base, len(fractions), func(i int) (ablationPoint, error) {
		cfg := base
		cfg.WarnFraction = fractions[i]
		return runHighPowerSmart(cfg)
	})
	if err != nil {
		return nil, err
	}
	for i, pt := range pts {
		tbl.AddRow(fmt.Sprintf("%.2f", fractions[i]), pt.caps, fmt.Sprintf("%.0f%%", pt.success), fmt.Sprintf("%.3f", pt.normPerf))
	}
	return tbl, nil
}

// RunDatacenterRebalance evaluates the hierarchy-composition extension:
// a DatacenterAgent reassigns rack power limits in proportion to each
// rack's overclocking demand before the racks run SmartOClock, versus the
// provider default of even (static) limits. The setup skews demand: one
// High-Power rack full of overclock-hungry services next to a quiet
// Low-Power rack — rebalancing should move headroom toward the demand.
func RunDatacenterRebalance(base FleetSimConfig) (*Table, error) {
	days := base.TrainDays + base.EvalDays
	gen := func(name string, profiles []trace.ServiceProfile, servers int, seedOff int64) (*trace.RackTrace, error) {
		rcfg := trace.DefaultRackGenConfig(name, fleetStart, time.Duration(days)*24*time.Hour)
		rcfg.Step = base.Step
		rcfg.Profiles = profiles
		rcfg.Servers = servers
		return trace.GenRack(rcfg, rand.New(rand.NewSource(base.Seed+seedOff)))
	}
	// The hot rack hosts 28 servers of user-facing services with overclock
	// demand; the quiet rack is half-populated with batch/ML tenants that
	// never ask — the density asymmetry a provider's even split ignores.
	catalog := trace.Catalog()
	var userFacing, batch []trace.ServiceProfile
	for _, p := range catalog {
		switch p.Pattern {
		case trace.PatternSpiky, trace.PatternBroadPeak, trace.PatternDiurnal:
			userFacing = append(userFacing, p)
		default:
			batch = append(batch, p)
		}
	}
	hot, err := gen("hot", userFacing, 28, 0)
	if err != nil {
		return nil, err
	}
	quiet, err := gen("quiet", batch, 14, 1)
	if err != nil {
		return nil, err
	}
	// A tight shared budget: 5% above the racks' combined P99 draw, so
	// headroom placement matters.
	totalBudget := 1.05 * (stats.P99(hot.RackPower().Values) + stats.P99(quiet.RackPower().Values))

	run := func(hotLimit, quietLimit float64) (success float64, caps int) {
		pairs := []struct {
			rt    *trace.RackTrace
			limit float64
		}{{hot, hotLimit}, {quiet, quietLimit}}
		results := parallel.Map(len(pairs), fleetOpts(base), func(i int) rackMetrics {
			rt := *pairs[i].rt // shallow copy so the limit override is local
			rt.LimitWatts = pairs[i].limit
			return rackRun(&rt, baselines.SmartOClock, base)
		})
		var agg rackMetrics
		for _, m := range results {
			agg.accumulate(m)
		}
		if agg.requests > 0 {
			success = 100 * float64(agg.successes) / float64(agg.requests)
		}
		return success, agg.caps
	}

	// Static even split of the shared budget.
	evenSuccess, evenCaps := run(totalBudget/2, totalBudget/2)

	// DatacenterAgent: limits proportional to training-week demand.
	trainEnd := fleetStart.Add(time.Duration(base.TrainDays) * 24 * time.Hour)
	dc := core.NewDatacenterAgent("dc", totalBudget)
	for _, fr := range []*trace.RackTrace{hot, quiet} {
		total := fr.RackPower().Slice(fleetStart, trainEnd)
		powerTpl := timeseries.BuildWeekTemplate(total, timeseries.ReduceMedian)
		trainTicks := base.TrainDays * int(24*time.Hour/base.Step)
		rec := predict.NewOCRecorder(fleetStart, base.Step)
		for t := 0; t < trainTicks; t++ {
			demand := 0
			ts := fleetStart.Add(time.Duration(t) * base.Step)
			for _, st := range fr.Servers {
				for _, vm := range st.Spec.VMs {
					switch vm.Service.Pattern {
					case trace.PatternSpiky, trace.PatternBroadPeak, trace.PatternDiurnal:
						if vm.Service.UtilAt(ts, nil) >= base.OCThreshold {
							demand += vm.Cores
						}
					}
				}
			}
			rec.Record(demand, 0)
		}
		dc.SetRackProfile(fr.Name, core.ServerProfile{
			Power:      powerTpl,
			OC:         rec.Template(),
			OCCoreCost: fr.Servers[0].Spec.HW.OCCoreCost(),
		})
	}
	// Use the busiest-hour assignment as the static reallocation (a
	// provider would install per-slot limits; one representative slot
	// keeps the comparison simple). Rack baselines fluctuate above their
	// median, so each rack keeps a variance floor at its P99 draw —
	// demand-proportional splitting alone would cap the quiet rack's own
	// tenants on ordinary noise.
	limits := dc.RackLimitsAt(fleetStart.Add(7*24*time.Hour + 11*time.Hour))
	quietLimit := limits[quiet.Name]
	if floor := 1.02 * stats.P99(quiet.RackPower().Values); quietLimit < floor {
		quietLimit = floor
	}
	hotLimit := totalBudget - quietLimit
	rebalSuccess, rebalCaps := run(hotLimit, quietLimit)

	tbl := &Table{
		Caption: "Extension: datacenter-level rack-limit rebalancing (SmartOClock on a hot + quiet rack pair)",
		Headers: []string{"Assignment", "HotRackLimitW", "QuietRackLimitW", "Success", "CapEvents"},
	}
	tbl.AddRow("even-split", totalBudget/2, totalBudget/2,
		fmt.Sprintf("%.0f%%", evenSuccess), evenCaps)
	tbl.AddRow("rebalanced", hotLimit, quietLimit,
		fmt.Sprintf("%.0f%%", rebalSuccess), rebalCaps)
	return tbl, nil
}
