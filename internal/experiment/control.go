package experiment

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smartoclock/internal/api"
	"smartoclock/internal/cluster"
	"smartoclock/internal/core"
	"smartoclock/internal/invariant"
	"smartoclock/internal/metrics"
	"smartoclock/internal/power"
	"smartoclock/internal/predict"
	"smartoclock/internal/store"
	"smartoclock/internal/timeseries"
)

// liveServer is one emulated server of the live plane with its sOA and its
// control-plane identity.
type liveServer struct {
	srv     *cluster.Server
	agentID string
	soa     *core.SOA
	rng     *rand.Rand
}

// liveDeployment is an API-registered workload owning cores on one server.
// Its cores run at util each tick (overriding the background pattern), and
// its name doubles as the VM name for overclock sessions.
type liveDeployment struct {
	name   string
	server string
	cores  []int
	util   float64
}

// liveWorld is the complete mutable state of one RunLive invocation. It is
// owned by the run goroutine: every mutation — simulation ticks, inbound
// control messages and API commands alike — is applied by that goroutine,
// with shared reads (HTTP scrapes) going through the locked registry. API
// commands therefore enter the same single-writer channel-inbox model as
// the TCP control plane, which is what keeps the invariant battery and the
// hold-mode determinism guarantees intact.
type liveWorld struct {
	cfg LiveConfig
	lk  *metrics.Locked

	// now is the simulated time of the next tick to run; end the last.
	now time.Time
	end time.Time

	servers []*liveServer
	byName  map[string]*liveServer
	goa     *core.GOA
	rack    *power.Rack
	vmCores []int

	deployments map[string]*liveDeployment
	// coreOwner maps server → core index → deployment name for the free
	// pool (indices at or above len(vmCores)).
	coreOwner map[string]map[int]string

	// chaosDown marks agents ("goa", "soa/<server>") whose control
	// messages are dropped in both directions; dropped counts the drops.
	chaosDown map[string]bool
	dropped   int

	res       *LiveResult
	checker   *invariant.Checker
	stateInfo *store.StateInfo
	statePub  interface{ PublishState(store.StateInfo) }

	ckptWrites *metrics.Counter
	ckptErrors *metrics.Counter
	ckptBytes  *metrics.Gauge

	buildCheckpoint func() *store.Checkpoint
	// doTick runs exactly one simulation tick (set by RunLive).
	doTick   func()
	shutdown bool

	// sent/received count control messages successfully written to and
	// delivered from the loopback links; hold mode barriers on their
	// equality so tick N+1 always drains everything tick N sent.
	sent     atomic.Int64
	received atomic.Int64
}

// do runs fn under the shared registry lock.
func (w *liveWorld) do(fn func()) { w.lk.Do(func(*metrics.Registry) { fn() }) }

// server resolves a server name (byName is immutable after setup).
func (w *liveWorld) server(name string) (*liveServer, error) {
	ls, ok := w.byName[name]
	if !ok {
		return nil, api.NotFoundf("no server %q", name)
	}
	return ls, nil
}

// sendAllowed gates one control-plane send on the chaos fault state: a
// message is dropped when either endpoint is down. Must run under the lock.
func (w *liveWorld) sendAllowed(from, to string) bool {
	if w.chaosDown[from] || w.chaosDown[to] {
		w.dropped++
		return false
	}
	return true
}

// --- Command implementations (run-goroutine only) --------------------------

func (w *liveWorld) buildStatus() *api.ClusterStatus {
	st := &api.ClusterStatus{
		Now:      w.now,
		Hold:     w.cfg.Hold,
		Ticks:    w.res.Ticks,
		Requests: w.res.Requests,
		Granted:  w.res.Granted,
		Rack: api.RackStatus{
			Name:       w.rack.Name(),
			LimitWatts: w.rack.Config().LimitWatts,
			PowerWatts: w.rack.Power(),
			CapEvents:  w.rack.CapEvents(),
			Warnings:   w.rack.Warnings(),
		},
		ChaosDropped: w.dropped,
		Checkpoint: api.CheckpointInfo{
			Path:         w.stateInfo.CheckpointPath,
			Writes:       w.stateInfo.Writes,
			LastBytes:    w.stateInfo.LastBytes,
			LastSavedAt:  w.stateInfo.LastSavedAt,
			RestoredFrom: w.stateInfo.RestoredFrom,
		},
	}
	if w.checker != nil {
		st.Violations = w.checker.Total()
	}
	st.ProfiledServers = w.goa.Servers()
	for a := range w.chaosDown {
		st.ChaosDown = append(st.ChaosDown, a)
	}
	sort.Strings(st.ChaosDown)
	for _, ls := range w.servers {
		ss := api.ServerStatus{
			Name:         ls.srv.Name(),
			Severity:     int(ls.srv.Severity()),
			SeverityName: ls.srv.Severity().String(),
			CapLevel:     ls.srv.CapLevel(),
			PowerWatts:   ls.srv.Power(),
			BudgetWatts:  ls.soa.BudgetAt(w.now),
		}
		sessions := ls.soa.Sessions()
		vms := make([]string, 0, len(sessions))
		for vm := range sessions {
			vms = append(vms, vm)
		}
		sort.Strings(vms)
		for _, vm := range vms {
			s := sessions[vm]
			ss.Sessions = append(ss.Sessions, api.SessionStatus{
				VM:       vm,
				Cores:    append([]int(nil), s.Cores...),
				MHz:      s.CurrentMHz(),
				Priority: s.Priority.String(),
			})
		}
		st.Servers = append(st.Servers, ss)
	}
	names := make([]string, 0, len(w.deployments))
	for name := range w.deployments {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d := w.deployments[name]
		for i := range st.Servers {
			if st.Servers[i].Name == d.server {
				st.Servers[i].Deployments = append(st.Servers[i].Deployments, api.DeploymentStatus{
					Name: d.name, Server: d.server,
					Cores: append([]int(nil), d.cores...), Util: d.util,
				})
			}
		}
	}
	return st
}

func (w *liveWorld) registerDeployment(spec api.DeploymentSpec) (*api.DeploymentStatus, error) {
	if _, dup := w.deployments[spec.Name]; dup {
		return nil, api.Conflictf("deployment %q already registered", spec.Name)
	}
	ls, err := w.server(spec.Server)
	if err != nil {
		return nil, err
	}
	owners := w.coreOwner[spec.Server]
	var free []int
	for c := len(w.vmCores); c < ls.srv.NumCores(); c++ {
		if owners[c] == "" {
			free = append(free, c)
		}
	}
	if len(free) < spec.Cores {
		return nil, api.Conflictf("server %s has %d free cores, deployment %q needs %d",
			spec.Server, len(free), spec.Name, spec.Cores)
	}
	cores := append([]int(nil), free[:spec.Cores]...)
	dep := &liveDeployment{name: spec.Name, server: spec.Server, cores: cores, util: spec.Util}
	w.do(func() {
		for _, c := range cores {
			owners[c] = spec.Name
			ls.srv.SetCoreUtil(c, spec.Util)
		}
		w.deployments[spec.Name] = dep
	})
	return &api.DeploymentStatus{Name: dep.name, Server: dep.server,
		Cores: append([]int(nil), cores...), Util: dep.util}, nil
}

func (w *liveWorld) drainDeployment(name string) error {
	dep, ok := w.deployments[name]
	if !ok {
		return api.NotFoundf("no deployment %q", name)
	}
	ls := w.byName[dep.server]
	w.do(func() {
		ls.soa.Stop(w.now, name)
		owners := w.coreOwner[dep.server]
		for _, c := range dep.cores {
			delete(owners, c)
			ls.srv.SetCoreUtil(c, 0)
		}
		delete(w.deployments, name)
	})
	return nil
}

func (w *liveWorld) setProfile(spec api.ProfileSpec) error {
	ls, err := w.server(spec.Server)
	if err != nil {
		return err
	}
	cost := spec.CoreCostWatts
	if cost == 0 {
		cost = ls.srv.Machine().Config().OCCoreCost()
	}
	w.do(func() {
		w.goa.SetProfile(spec.Server, core.ServerProfile{
			Power: timeseries.FlatWeek(spec.MedianWatts, time.Hour),
			OC: &predict.OCTemplate{
				Requested: timeseries.FlatWeek(spec.RequestedCores, time.Hour),
				Granted:   timeseries.FlatWeek(spec.GrantedCores, time.Hour),
			},
			OCCoreCost: cost,
		})
	})
	return nil
}

func (w *liveWorld) setBudget(spec api.BudgetSpec) error {
	ls, err := w.server(spec.Server)
	if err != nil {
		return err
	}
	w.do(func() { ls.soa.SetStaticBudget(spec.Watts, true) })
	return nil
}

func (w *liveWorld) assignBudgets(spec api.AssignSpec) (*api.AssignStatus, error) {
	step := time.Duration(spec.StepMinutes) * time.Minute
	if step == 0 {
		step = time.Hour
	}
	st := &api.AssignStatus{}
	var err error
	w.do(func() {
		templates := w.goa.BudgetTemplates(step)
		if len(templates) == 0 {
			err = api.Unavailablef("no server profiles reported yet")
			return
		}
		for name, tmpl := range templates {
			ls, ok := w.byName[name]
			if !ok {
				continue
			}
			ls.soa.SetAssignedBudget(tmpl)
			st.Servers++
		}
		st.Budgets = w.goa.BudgetsAt(w.now)
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

func (w *liveWorld) setSeverity(spec api.SeveritySpec) error {
	ls, err := w.server(spec.Server)
	if err != nil {
		return err
	}
	w.do(func() { ls.srv.SetSeverity(power.Severity(spec.Severity)) })
	return nil
}

func (w *liveWorld) startOverclock(spec api.OCSpec) (*api.OCStatus, error) {
	ls, err := w.server(spec.Server)
	if err != nil {
		return nil, err
	}
	var owned []int
	switch {
	case spec.VM == "vm":
		owned = w.vmCores
	default:
		dep, ok := w.deployments[spec.VM]
		if !ok || dep.server != spec.Server {
			return nil, api.NotFoundf("no vm %q on server %s", spec.VM, spec.Server)
		}
		owned = dep.cores
	}
	n := spec.Cores
	if n == 0 {
		n = len(owned)
	}
	if n > len(owned) {
		return nil, api.Invalidf("vm %q owns %d cores, requested %d", spec.VM, len(owned), n)
	}
	target := spec.TargetMHz
	if target == 0 {
		target = ls.srv.MaxOCMHz()
	}
	var d core.Decision
	w.do(func() {
		w.res.Requests++
		d = ls.soa.Request(w.now, core.Request{
			VM: spec.VM, Cores: n, TargetMHz: target,
			Priority:       core.PriorityMetric,
			Duration:       time.Duration(spec.DurationSec) * time.Second,
			PreferredCores: append([]int(nil), owned[:n]...),
		})
		if d.Granted {
			w.res.Granted++
		}
	})
	return &api.OCStatus{Granted: d.Granted, Reason: string(d.Reason),
		Cores: append([]int(nil), d.Cores...)}, nil
}

func (w *liveWorld) stopOverclock(spec api.StopSpec) error {
	ls, err := w.server(spec.Server)
	if err != nil {
		return err
	}
	var found bool
	w.do(func() {
		if _, ok := ls.soa.Sessions()[spec.VM]; ok {
			found = true
			ls.soa.Stop(w.now, spec.VM)
		}
	})
	if !found {
		return api.NotFoundf("no active session for vm %q on server %s", spec.VM, spec.Server)
	}
	return nil
}

func (w *liveWorld) setChaos(spec api.ChaosSpec) (*api.ChaosStatus, error) {
	agent := spec.Agent
	switch {
	case agent == "goa":
	case strings.HasPrefix(agent, "soa/"):
		if _, ok := w.byName[strings.TrimPrefix(agent, "soa/")]; !ok {
			return nil, api.NotFoundf("no agent %q", agent)
		}
	default:
		// A bare server name is shorthand for its sOA.
		if _, ok := w.byName[agent]; !ok {
			return nil, api.NotFoundf("no agent %q", agent)
		}
		agent = "soa/" + agent
	}
	st := &api.ChaosStatus{Agent: agent, Down: spec.Down}
	w.do(func() {
		if spec.Down {
			w.chaosDown[agent] = true
		} else {
			delete(w.chaosDown, agent)
		}
		for a := range w.chaosDown {
			st.DownAgents = append(st.DownAgents, a)
		}
	})
	sort.Strings(st.DownAgents)
	return st, nil
}

// checkpointNow writes a durable checkpoint immediately, sharing the
// periodic path's metrics and state publication. The snapshot is taken
// under the lock, the disk write outside it.
func (w *liveWorld) checkpointNow() (*api.CheckpointStatus, error) {
	if w.cfg.CheckpointPath == "" {
		return nil, api.Unavailablef("run has no -checkpoint path configured")
	}
	var cp *store.Checkpoint
	w.do(func() { cp = w.buildCheckpoint() })
	data, err := store.Encode(w.now, cp)
	if err == nil {
		err = store.SaveEncoded(w.cfg.CheckpointPath, data)
	}
	w.do(func() {
		if err != nil {
			w.ckptErrors.Inc()
		} else {
			w.ckptWrites.Inc()
			w.ckptBytes.Set(float64(len(data)))
		}
	})
	if err != nil {
		return nil, api.Unavailablef("checkpoint: %v", err)
	}
	w.res.Checkpoints++
	w.stateInfo.Writes = w.res.Checkpoints
	w.stateInfo.LastSavedAt = w.now
	w.stateInfo.LastBytes = len(data)
	if w.statePub != nil {
		w.statePub.PublishState(*w.stateInfo)
	}
	return &api.CheckpointStatus{
		Path:    w.cfg.CheckpointPath,
		Bytes:   len(data),
		Writes:  w.res.Checkpoints,
		SavedAt: w.now,
	}, nil
}

func (w *liveWorld) advance(spec api.AdvanceSpec) (*api.AdvanceStatus, error) {
	if !w.cfg.Hold {
		return nil, api.Conflictf("advance requires a run started in hold mode")
	}
	n := spec.Ticks
	if n == 0 {
		n = 1
	}
	ran := 0
	for i := 0; i < n && !w.now.After(w.end) && !w.shutdown; i++ {
		w.doTick()
		ran++
	}
	return &api.AdvanceStatus{Ticks: ran, Now: w.now}, nil
}

// --- LiveController: the api.Service adapter -------------------------------

type liveReply struct {
	v   any
	err error
}

type liveCmd struct {
	apply func(w *liveWorld) (any, error)
	reply chan liveReply
}

// LiveController adapts the api.Service port onto a live cluster run: each
// call is enqueued as a command and applied by the run goroutine between
// ticks, so callers get synchronous read-your-writes semantics while the
// simulation keeps its single-writer discipline. Construct one with
// NewLiveController, set it as LiveConfig.Control, and hand Service
// callers (the HTTP adapter, socctl, tests) the controller itself.
type LiveController struct {
	cmds chan liveCmd
	done chan struct{}
	once sync.Once
}

// NewLiveController returns a controller ready to attach to a LiveConfig.
// Commands submitted before the run starts queue up (bounded) and apply
// once it does.
func NewLiveController() *LiveController {
	return &LiveController{cmds: make(chan liveCmd, 1024), done: make(chan struct{})}
}

var _ api.Service = (*LiveController)(nil)

// finish ends the controller's life: pending and future commands fail with
// an unavailable error. Called by RunLive on exit.
func (c *LiveController) finish() {
	c.once.Do(func() { close(c.done) })
	for {
		select {
		case cmd := <-c.cmds:
			cmd.reply <- liveReply{nil, api.Unavailablef("live run ended")}
		default:
			return
		}
	}
}

// exec applies one command on the run goroutine and replies.
func (c *LiveController) exec(w *liveWorld, cmd liveCmd) {
	v, err := cmd.apply(w)
	cmd.reply <- liveReply{v, err}
}

// drain applies every queued command without blocking.
func (c *LiveController) drain(w *liveWorld) {
	for {
		select {
		case cmd := <-c.cmds:
			c.exec(w, cmd)
		default:
			return
		}
	}
}

// submit enqueues fn and waits for the run goroutine to apply it.
func (c *LiveController) submit(ctx context.Context, fn func(w *liveWorld) (any, error)) (any, error) {
	cmd := liveCmd{apply: fn, reply: make(chan liveReply, 1)}
	select {
	case c.cmds <- cmd:
	case <-c.done:
		return nil, api.Unavailablef("live run not accepting commands")
	case <-ctx.Done():
		return nil, api.Unavailablef("canceled: %v", ctx.Err())
	}
	select {
	case r := <-cmd.reply:
		return r.v, r.err
	case <-c.done:
		// The run ended between enqueue and apply; finish() answers the
		// buffered reply if it drained the command.
		select {
		case r := <-cmd.reply:
			return r.v, r.err
		default:
			return nil, api.Unavailablef("live run ended")
		}
	}
}

// Status implements api.Service.
func (c *LiveController) Status(ctx context.Context) (*api.ClusterStatus, error) {
	v, err := c.submit(ctx, func(w *liveWorld) (any, error) {
		var st *api.ClusterStatus
		w.do(func() { st = w.buildStatus() })
		return st, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*api.ClusterStatus), nil
}

// RegisterDeployment implements api.Service.
func (c *LiveController) RegisterDeployment(ctx context.Context, spec api.DeploymentSpec) (*api.DeploymentStatus, error) {
	v, err := c.submit(ctx, func(w *liveWorld) (any, error) { return w.registerDeployment(spec) })
	if err != nil {
		return nil, err
	}
	return v.(*api.DeploymentStatus), nil
}

// DrainDeployment implements api.Service.
func (c *LiveController) DrainDeployment(ctx context.Context, name string) error {
	_, err := c.submit(ctx, func(w *liveWorld) (any, error) { return nil, w.drainDeployment(name) })
	return err
}

// SetProfile implements api.Service.
func (c *LiveController) SetProfile(ctx context.Context, spec api.ProfileSpec) error {
	_, err := c.submit(ctx, func(w *liveWorld) (any, error) { return nil, w.setProfile(spec) })
	return err
}

// SetBudget implements api.Service.
func (c *LiveController) SetBudget(ctx context.Context, spec api.BudgetSpec) error {
	_, err := c.submit(ctx, func(w *liveWorld) (any, error) { return nil, w.setBudget(spec) })
	return err
}

// AssignBudgets implements api.Service.
func (c *LiveController) AssignBudgets(ctx context.Context, spec api.AssignSpec) (*api.AssignStatus, error) {
	v, err := c.submit(ctx, func(w *liveWorld) (any, error) { return w.assignBudgets(spec) })
	if err != nil {
		return nil, err
	}
	return v.(*api.AssignStatus), nil
}

// SetSeverity implements api.Service.
func (c *LiveController) SetSeverity(ctx context.Context, spec api.SeveritySpec) error {
	_, err := c.submit(ctx, func(w *liveWorld) (any, error) { return nil, w.setSeverity(spec) })
	return err
}

// StartOverclock implements api.Service.
func (c *LiveController) StartOverclock(ctx context.Context, spec api.OCSpec) (*api.OCStatus, error) {
	v, err := c.submit(ctx, func(w *liveWorld) (any, error) { return w.startOverclock(spec) })
	if err != nil {
		return nil, err
	}
	return v.(*api.OCStatus), nil
}

// StopOverclock implements api.Service.
func (c *LiveController) StopOverclock(ctx context.Context, spec api.StopSpec) error {
	_, err := c.submit(ctx, func(w *liveWorld) (any, error) { return nil, w.stopOverclock(spec) })
	return err
}

// SetChaos implements api.Service.
func (c *LiveController) SetChaos(ctx context.Context, spec api.ChaosSpec) (*api.ChaosStatus, error) {
	v, err := c.submit(ctx, func(w *liveWorld) (any, error) { return w.setChaos(spec) })
	if err != nil {
		return nil, err
	}
	return v.(*api.ChaosStatus), nil
}

// ForceCheckpoint implements api.Service.
func (c *LiveController) ForceCheckpoint(ctx context.Context) (*api.CheckpointStatus, error) {
	v, err := c.submit(ctx, func(w *liveWorld) (any, error) { return w.checkpointNow() })
	if err != nil {
		return nil, err
	}
	return v.(*api.CheckpointStatus), nil
}

// Advance implements api.Service.
func (c *LiveController) Advance(ctx context.Context, spec api.AdvanceSpec) (*api.AdvanceStatus, error) {
	v, err := c.submit(ctx, func(w *liveWorld) (any, error) { return w.advance(spec) })
	if err != nil {
		return nil, err
	}
	return v.(*api.AdvanceStatus), nil
}

// Shutdown implements api.Service.
func (c *LiveController) Shutdown(ctx context.Context) error {
	_, err := c.submit(ctx, func(w *liveWorld) (any, error) {
		w.shutdown = true
		return nil, nil
	})
	return err
}
