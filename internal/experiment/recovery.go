package experiment

import (
	"fmt"
	"time"

	"smartoclock/internal/cluster"
	"smartoclock/internal/core"
	"smartoclock/internal/lifetime"
	"smartoclock/internal/machine"
	"smartoclock/internal/predict"
	"smartoclock/internal/sim"
	"smartoclock/internal/stats"
	"smartoclock/internal/store"
	"smartoclock/internal/timeseries"
)

// RecoveryConfig parameterizes the crash-recovery experiment: a rack whose
// whole control plane (gOA plus every sOA) crashes mid-run and comes back
// either cold (all in-memory state lost — profiles, budgets, sessions) or
// warm (restored from the last durable checkpoint). It is the reproduction's
// version of the paper's Fig 17 unavailability analysis, extended with the
// recovery dimension: how fast overclocking comes back after the restart,
// and how far the rebooted gOA's budget splits sit from an uninterrupted
// oracle's.
//
// The rig is deliberately noiseless — constant asymmetric demand, no random
// draws, a synchronous control plane — so every difference between the
// oracle, cold and warm runs is attributable to state loss alone. Message
// faults are the chaos experiment's job.
type RecoveryConfig struct {
	Seed     int64
	Start    time.Time
	Duration time.Duration
	// Tick is the control cadence (sOA ticks, workload updates, metrics).
	Tick    time.Duration
	Servers int
	HW      machine.Config

	// ProfileEvery is the sOA → gOA profile-report cadence; BudgetEvery the
	// gOA → sOA budget-push cadence. A cold-restarted gOA has no profiles,
	// so its first useful push lags a restart by up to ProfileEvery +
	// BudgetEvery — the window the warm restart closes.
	ProfileEvery time.Duration
	BudgetEvery  time.Duration

	// CrashAt (offset into the run) is when the control plane dies;
	// DownFor is how long it stays dead. Both cold and warm runs lose the
	// down window itself — the modes differ only in what the restart knows.
	CrashAt time.Duration
	DownFor time.Duration

	// Staleness lists the checkpoint ages to sweep for warm restarts: each
	// value yields one warm run restored from a checkpoint taken
	// CrashAt−staleness into the run. Staler checkpoints restore older
	// budgets and session sets.
	Staleness []time.Duration

	// BudgetEpoch/OCBudgetFraction set the per-core overclock time budget
	// (durable across crashes, like NVRAM-backed wear accounting).
	BudgetEpoch      time.Duration
	OCBudgetFraction float64
	// RackLimitScale scales the rack limit relative to baseline-plus-full-
	// overclock draw: >1 leaves headroom so the gOA can fund every hot
	// server once it knows their profiles, while the even share a cold sOA
	// falls back to cannot.
	RackLimitScale float64
}

// DefaultRecoveryConfig returns the profile behind `socsim -recovery`:
// eight servers (half hot, half cool), a 2-minute control-plane outage at
// the 30-minute mark of a 1-hour run, warm restarts swept across 1, 5 and
// 15-minute-old checkpoints.
func DefaultRecoveryConfig() RecoveryConfig {
	return RecoveryConfig{
		Seed:             1,
		Start:            time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC),
		Duration:         time.Hour,
		Tick:             5 * time.Second,
		Servers:          8,
		HW:               machine.DefaultConfig(),
		ProfileEvery:     2 * time.Minute,
		BudgetEvery:      time.Minute,
		CrashAt:          30 * time.Minute,
		DownFor:          2 * time.Minute,
		Staleness:        []time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute},
		BudgetEpoch:      7 * 24 * time.Hour,
		OCBudgetFraction: 0.25,
		RackLimitScale:   1.10,
	}
}

// Validate reports whether the configuration is runnable.
func (c RecoveryConfig) Validate() error {
	switch {
	case c.Tick <= 0 || c.Duration < c.Tick:
		return fmt.Errorf("experiment: bad recovery tick/duration %v/%v", c.Tick, c.Duration)
	case c.Servers < 2:
		return fmt.Errorf("experiment: recovery needs >= 2 servers for a hot/cool split, got %d", c.Servers)
	case c.ProfileEvery <= 0 || c.BudgetEvery <= 0:
		return fmt.Errorf("experiment: non-positive control cadence")
	case c.CrashAt <= 0 || c.CrashAt+c.DownFor >= c.Duration:
		return fmt.Errorf("experiment: crash window [%v, %v) outside run", c.CrashAt, c.CrashAt+c.DownFor)
	case c.BudgetEpoch <= 0 || c.OCBudgetFraction <= 0:
		return fmt.Errorf("experiment: bad OC budget %v/%v", c.BudgetEpoch, c.OCBudgetFraction)
	}
	for _, s := range c.Staleness {
		if s <= 0 || s >= c.CrashAt {
			return fmt.Errorf("experiment: checkpoint staleness %v outside (0, CrashAt)", s)
		}
	}
	return nil
}

// RecoveryRun is one mode's outcome.
type RecoveryRun struct {
	// Mode is "cold" or "warm"; Staleness is the checkpoint age for warm
	// runs (zero for cold).
	Mode      string
	Staleness time.Duration
	// TimeToFirstGrant is how long after the restart instant overclocking
	// first ran again (restored sessions count — that is the point of warm
	// restarts). Negative means it never did.
	TimeToFirstGrant time.Duration
	// GrantedCoreTicks sums active overclocked cores per tick over the
	// post-crash window [CrashAt, Duration).
	GrantedCoreTicks int
	// GapCoreTicks is the grant-availability gap: the oracle's granted
	// core-ticks minus this run's, over the same post-crash window.
	GapCoreTicks int
	// PushesMissed counts budget-push instants where the oracle's gOA
	// pushed but this run's could not (down, or no profiles yet).
	PushesMissed int
	// BudgetDivergence is the mean, over post-restart push instants where
	// both gOAs pushed, of the summed per-server |budget − oracle budget|
	// in watts.
	BudgetDivergence float64
}

// RecoveryResult aggregates the sweep.
type RecoveryResult struct {
	Config RecoveryConfig
	// OracleCoreTicks is the uninterrupted run's granted core-ticks over
	// the post-crash window — the availability ceiling.
	OracleCoreTicks int
	// Runs holds the cold run followed by one warm run per staleness.
	Runs []RecoveryRun
}

// recoveryPushLog records every budget push: instant → server → watts.
type recoveryPushLog map[int64]map[string]float64

// recoveryOutcome is one simulated run's raw output.
type recoveryOutcome struct {
	grantedCoreTicks int // over the post-crash window
	firstGrantAfter  time.Duration
	pushes           recoveryPushLog
}

// runRecoveryOnce simulates one run. mode: "oracle" never crashes; "cold"
// restarts with empty state; "warm" restores from a checkpoint taken
// staleness before the crash.
func runRecoveryOnce(cfg RecoveryConfig, mode string, staleness time.Duration) recoveryOutcome {
	eng := sim.NewEngine(cfg.Start, cfg.Seed)
	end := cfg.Start.Add(cfg.Duration)
	crashAt := cfg.Start.Add(cfg.CrashAt)
	restartAt := crashAt.Add(cfg.DownFor)
	maxOC := cfg.HW.MaxOCMHz

	// Hot servers (the first half) host a latency-critical VM on half their
	// cores with constant overclock demand; cool servers idle. Utilization
	// is constant — the only dynamics in this rig are control-plane ones.
	hot := func(i int) bool { return i < cfg.Servers/2 }
	vmCores := make([]int, cfg.HW.Cores/2)
	for i := range vmCores {
		vmCores[i] = i
	}

	srvs := make([]*cluster.Server, cfg.Servers)
	ledgers := make([]*lifetime.CoreBudgets, cfg.Servers)
	bcfg := lifetime.BudgetConfig{Epoch: cfg.BudgetEpoch, Fraction: cfg.OCBudgetFraction, CarryOver: true, MaxCarryOver: 1}
	for i := range srvs {
		srvs[i] = cluster.NewServer(fmt.Sprintf("rec-%02d", i), cfg.HW, 0)
		ledgers[i] = lifetime.NewCoreBudgets(bcfg, srvs[i].NumCores(), cfg.Start)
		for c := 0; c < srvs[i].NumCores(); c++ {
			util := 0.35
			if hot(i) {
				util = 0.45
				if c < len(vmCores) {
					util = 0.85
				}
			}
			srvs[i].SetCoreUtil(c, util)
		}
	}

	// Rack limit: baseline plus the full hot-set overclock delta, scaled.
	// The gOA can fund every hot server once profiled; the even share a
	// cold sOA starts from cannot cover a hot server's baseline + delta.
	est, fullOC := 0.0, 0.0
	for i, s := range srvs {
		est += s.Power()
		if hot(i) {
			fullOC += s.OCDeltaWatts(len(vmCores), maxOC, 0.9)
		}
	}
	limit := cfg.RackLimitScale * (est + fullOC)
	evenShare := limit / float64(cfg.Servers)

	soaCfg := core.DefaultSOAConfig()
	soaCfg.ProfileStep = time.Minute
	soaCfg.DefaultOCHorizon = 5 * time.Minute
	soaCfg.AdmissionUtil = 0.7
	// No exploration: grants return exactly when budgets do, which keeps
	// the recovery signal clean (exploration recovery is measured by the
	// chaos experiment).
	soaCfg.NoExplore = true
	soaCfg.ExploreStepWatts = 0

	goa := core.NewGOA("rack-recovery", limit)
	soas := make([]*core.SOA, cfg.Servers)
	bootSOA := func(i int, now time.Time) {
		soas[i] = core.NewSOA(soaCfg, srvs[i], ledgers[i], evenShare, now)
	}
	for i := range soas {
		bootSOA(i, cfg.Start)
	}

	// --- Durable checkpoint (warm mode only) -------------------------------
	var ckptBytes []byte
	if mode == "warm" {
		eng.At(crashAt.Add(-staleness), func() {
			cp := &store.Checkpoint{GOA: goa.Snapshot(), SOAs: make(map[string]*core.SOAState, cfg.Servers)}
			for i, a := range soas {
				snap := a.Snapshot()
				// The lifetime ledger is durable on its own; restoring a
				// stale copy would roll back consumed wear.
				snap.Budgets = nil
				cp.SOAs[srvs[i].Name()] = snap
			}
			data, err := store.Encode(eng.Now(), cp)
			if err != nil {
				panic(fmt.Sprintf("experiment: recovery checkpoint: %v", err))
			}
			ckptBytes = data
		})
	}

	// --- Crash and restart -------------------------------------------------
	down := false
	if mode != "oracle" {
		eng.At(crashAt, func() {
			down = true
			for i := range soas {
				// Host watchdog fail-safe: cores return to turbo when the
				// supervising agent dies.
				for c := 0; c < srvs[i].NumCores(); c++ {
					srvs[i].SetDesiredFreq(c, srvs[i].TurboMHz())
				}
				soas[i] = nil
			}
			goa = nil
		})
		eng.At(restartAt, func() {
			down = false
			goa = core.NewGOA("rack-recovery", limit)
			for i := range soas {
				bootSOA(i, eng.Now())
			}
			if mode == "warm" && ckptBytes != nil {
				var cp store.Checkpoint
				if _, err := store.Decode(ckptBytes, &cp); err != nil {
					panic(fmt.Sprintf("experiment: recovery restore: %v", err))
				}
				goa.Restore(cp.GOA)
				for i := range soas {
					if st, ok := cp.SOAs[srvs[i].Name()]; ok {
						if err := soas[i].Restore(st); err != nil {
							panic(fmt.Sprintf("experiment: recovery restore %s: %v", srvs[i].Name(), err))
						}
					}
				}
			}
		})
	}

	// --- Synchronous control plane -----------------------------------------
	// sOA → gOA profile reports.
	eng.Every(cfg.Start.Add(cfg.ProfileEvery), cfg.ProfileEvery, func(now time.Time) {
		if down {
			return
		}
		for i, a := range soas {
			window := lastSamples(a.PowerRecord().Values, 10)
			med := stats.Median(window)
			if len(window) == 0 {
				med = srvs[i].Power()
			}
			granted := float64(a.ActiveOCCores())
			requested := a.RecentRequestedCores(5)
			if granted > requested {
				requested = granted
			}
			goa.SetProfile(srvs[i].Name(), core.ServerProfile{
				Power: timeseries.FlatWeek(med, time.Hour),
				OC: &predict.OCTemplate{
					Requested: timeseries.FlatWeek(requested, time.Hour),
					Granted:   timeseries.FlatWeek(granted, time.Hour),
				},
				OCCoreCost: srvs[i].Machine().Config().OCCoreCost(),
			})
		}
	})
	// gOA → sOA budget pushes, logged for the divergence comparison.
	pushes := make(recoveryPushLog)
	eng.Every(cfg.Start.Add(cfg.BudgetEvery), cfg.BudgetEvery, func(now time.Time) {
		if down {
			return
		}
		budgets := goa.BudgetsAt(now)
		if len(budgets) == 0 {
			return // a cold gOA with no profiles has nothing to split
		}
		logged := make(map[string]float64, len(budgets))
		for i, a := range soas {
			b, ok := budgets[srvs[i].Name()]
			if !ok || b <= 0 {
				continue
			}
			a.SetStaticBudget(b, true)
			logged[srvs[i].Name()] = b
		}
		pushes[now.UnixNano()] = logged
	})

	// --- Main tick ---------------------------------------------------------
	out := recoveryOutcome{firstGrantAfter: -1}
	eng.Every(cfg.Start.Add(cfg.Tick), cfg.Tick, func(now time.Time) {
		active := 0
		for i := range srvs {
			if soas[i] == nil {
				continue
			}
			if hot(i) {
				if _, ok := soas[i].Sessions()["oc"]; !ok {
					soas[i].Request(now, core.Request{
						VM: "oc", Cores: len(vmCores), TargetMHz: maxOC,
						Priority: core.PriorityMetric, PreferredCores: vmCores,
					})
				}
			}
			soas[i].Tick(now)
			active += soas[i].ActiveOCCores()
		}
		for _, s := range srvs {
			s.Advance(cfg.Tick)
		}
		if !now.Before(crashAt) {
			out.grantedCoreTicks += active
		}
		if out.firstGrantAfter < 0 && active > 0 && !now.Before(restartAt) {
			out.firstGrantAfter = now.Sub(restartAt)
		}
	})

	eng.Run(end)
	out.pushes = pushes
	return out
}

// RunRecovery executes the sweep: one uninterrupted oracle run, one cold
// restart, and one warm restart per configured checkpoint staleness.
func RunRecovery(cfg RecoveryConfig) (*RecoveryResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	oracle := runRecoveryOnce(cfg, "oracle", 0)
	res := &RecoveryResult{Config: cfg, OracleCoreTicks: oracle.grantedCoreTicks}

	restartAt := cfg.Start.Add(cfg.CrashAt + cfg.DownFor)
	summarize := func(mode string, staleness time.Duration, out recoveryOutcome) RecoveryRun {
		run := RecoveryRun{
			Mode: mode, Staleness: staleness,
			TimeToFirstGrant: out.firstGrantAfter,
			GrantedCoreTicks: out.grantedCoreTicks,
			GapCoreTicks:     oracle.grantedCoreTicks - out.grantedCoreTicks,
		}
		var divSum float64
		var divN int
		for at, want := range oracle.pushes {
			if time.Unix(0, at).Before(restartAt) {
				continue
			}
			got, ok := out.pushes[at]
			if !ok {
				run.PushesMissed++
				continue
			}
			sum := 0.0
			for name, w := range want {
				d := got[name] - w
				if d < 0 {
					d = -d
				}
				sum += d
			}
			divSum += sum
			divN++
		}
		if divN > 0 {
			run.BudgetDivergence = divSum / float64(divN)
		}
		return run
	}

	res.Runs = append(res.Runs, summarize("cold", 0, runRecoveryOnce(cfg, "cold", 0)))
	for _, s := range cfg.Staleness {
		res.Runs = append(res.Runs, summarize("warm", s, runRecoveryOnce(cfg, "warm", s)))
	}
	return res, nil
}

// Format renders the sweep as a report table.
func (r *RecoveryResult) Format() string {
	tbl := &Table{
		Caption: fmt.Sprintf("Recovery: control-plane crash at %v, down %v (oracle granted %d core-ticks post-crash)",
			r.Config.CrashAt, r.Config.DownFor, r.OracleCoreTicks),
		Headers: []string{"Restart", "Ckpt age", "FirstGrant", "GrantedCoreTicks", "GapVsOracle", "PushesMissed", "BudgetDiv(W)"},
	}
	for _, run := range r.Runs {
		age := "-"
		if run.Mode == "warm" {
			age = run.Staleness.String()
		}
		first := "never"
		if run.TimeToFirstGrant >= 0 {
			first = run.TimeToFirstGrant.String()
		}
		tbl.AddRow(run.Mode, age, first,
			run.GrantedCoreTicks, run.GapCoreTicks, run.PushesMissed,
			fmt.Sprintf("%.1f", run.BudgetDivergence))
	}
	return tbl.Format()
}
