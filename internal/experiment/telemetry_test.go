package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"smartoclock/internal/metrics"
	"smartoclock/internal/obs"
	"smartoclock/internal/store"
)

// table1Series runs the observed Table I at smoke scale with continuous
// recording enabled and renders the recorded series as CSV, which captures
// every interval sample — rates, levels and quantiles — at full float
// precision.
func table1Series(t *testing.T, seed int64, workers int, shuffle int64) string {
	t.Helper()
	cfg := smokeFleetCfg()
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.ShuffleShards = shuffle
	cfg.RecordEvery = time.Hour
	_, _, observation, err := RunTable1Observed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if observation == nil || observation.Series == nil {
		t.Fatal("observed run returned no recording")
	}
	var b strings.Builder
	if err := observation.Series.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestRecordedSeriesEquivalenceAcrossWorkers extends the worker-count
// contract to continuous recording: the merged per-interval series must be
// byte-identical whether the fleet ran serially, across 8 workers, or with
// shuffled shard dispatch. This is what makes -series-out artifacts
// comparable across machines.
func TestRecordedSeriesEquivalenceAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulations")
	}
	for _, seed := range []int64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ref := table1Series(t, seed, 1, 0)
			if !strings.Contains(ref, "soa_requests_total") {
				t.Fatalf("recording missing expected series:\n%.2000s", ref)
			}
			for _, workers := range []int{2, 8} {
				if got := table1Series(t, seed, workers, 0); got != ref {
					t.Errorf("recording at workers=%d diverges from workers=1 (len %d vs %d)",
						workers, len(got), len(ref))
				}
			}
			if got := table1Series(t, seed, 8, 54321); got != ref {
				t.Error("recording with shuffled dispatch diverges from serial order")
			}
		})
	}
}

// TestRecordingZeroObserverEffect pins the observer effect of the recorder
// at zero twice over: enabling recording must not change a byte of the
// experiment's scientific output, nor of the end-of-run snapshot and trace
// the observed run already produced.
func TestRecordingZeroObserverEffect(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulations")
	}
	cfg := smokeFleetCfg()
	plain, _, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	observed, _, obsPlain, err := RunTable1Observed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RecordEvery = time.Hour
	recorded, _, obsRec, err := RunTable1Observed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Format() != recorded.Format() {
		t.Errorf("recording changed experiment results:\n--- plain ---\n%s\n--- recorded ---\n%s",
			plain.Format(), recorded.Format())
	}
	if observed.Format() != recorded.Format() {
		t.Error("recording changed the observed run's table")
	}
	render := func(o *FleetObservation) string {
		var b strings.Builder
		if err := o.Metrics.WriteProm(&b); err != nil {
			t.Fatal(err)
		}
		b.WriteString("--- trace ---\n")
		if err := o.Trace.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if render(obsPlain) != render(obsRec) {
		t.Error("recording changed the end-of-run snapshot or trace")
	}
	if obsPlain.Series != nil {
		t.Error("recording disabled but Series non-nil")
	}
	if obsRec.Series == nil || obsRec.Series.Intervals() == 0 {
		t.Fatal("recording enabled but Series empty")
	}
}

// TestClusterRecordedSeries exercises the recording path of the cluster
// emulation: series appear, byte-stable across repeat runs, without
// perturbing the run's scientific results.
func TestClusterRecordedSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster emulation")
	}
	cfg := smokeClusterCfg(SysSmartOClock)
	plain, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observe = true
	cfg.RecordEvery = time.Minute
	run := func() (*ClusterResult, string) {
		res, err := RunCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Series == nil || res.Series.Intervals() == 0 {
			t.Fatal("cluster run recorded no series")
		}
		var b strings.Builder
		if err := res.Series.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		return res, b.String()
	}
	res1, csv1 := run()
	_, csv2 := run()
	if csv1 != csv2 {
		t.Error("recorded series differ across identical runs")
	}
	if plain.TotalEnergy != res1.TotalEnergy || plain.CapEvents != res1.CapEvents ||
		plain.OCRequests != res1.OCRequests {
		t.Errorf("recording changed results: %+v vs %+v", plain, res1)
	}
	if !strings.Contains(csv1, "rack_power_watts") {
		t.Errorf("recording missing rack power series:\n%.1000s", csv1)
	}
}

// TestChaosAlertsGolden pins the alert output of a shortened chaos run:
// the default rule set must fire deterministically (the run's rack limit
// makes warning bursts part of normal operation), and both the summarized
// table and the alert events on the trace are golden-checked byte for
// byte. Regenerate with -update.
func TestChaosAlertsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run")
	}
	cfg := DefaultChaosConfig()
	cfg.Duration = 45 * time.Minute
	cfg.GOAOutageStart = 10 * time.Minute
	cfg.GOAOutage = 10 * time.Minute
	cfg.SOACrashes = 3
	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alerts) == 0 {
		t.Fatal("default rules fired no alerts on the chaos run")
	}
	var b strings.Builder
	b.WriteString(FormatAlerts(res.Alerts).Format())
	b.WriteString("--- events ---\n")
	var alertEvents []obs.Event
	for _, ev := range res.Trace.Events() {
		if ev.Component == obs.Alert {
			alertEvents = append(alertEvents, ev)
		}
	}
	if len(alertEvents) == 0 {
		t.Fatal("no alert events on the trace")
	}
	if err := obs.WriteEventsJSONL(&b, alertEvents); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chaos_alerts.golden", b.String())
}

// captureSink counts publications and keeps the latest snapshot.
type captureSink struct {
	snaps  int
	events int
	last   *metrics.Snapshot
}

func (c *captureSink) PublishSnapshot(s *metrics.Snapshot) { c.snaps++; c.last = s }
func (c *captureSink) PublishEvents(evs []obs.Event)       { c.events += len(evs) }

// stateSink additionally records durable-state publications, exercising the
// optional PublishState interface RunLive probes for.
type stateSink struct {
	captureSink
	states []store.StateInfo
}

func (c *stateSink) PublishState(info store.StateInfo) { c.states = append(c.states, info) }

// TestRunLiveSmoke boots the live networked mode flat out on loopback: the
// control plane must actually cross the TCP links (transport series appear
// on both nodes) and the sink must receive one snapshot per tick.
func TestRunLiveSmoke(t *testing.T) {
	cfg := DefaultLiveConfig()
	cfg.Duration = 10 * time.Minute
	cfg.Pace = 0
	cfg.Servers = 2
	sink := &captureSink{}
	res, err := RunLive(cfg, sink)
	if err != nil {
		t.Fatal(err)
	}
	wantTicks := int(cfg.Duration / cfg.Tick)
	if res.Ticks != wantTicks || sink.snaps != wantTicks {
		t.Fatalf("ticks/snapshots = %d/%d, want %d", res.Ticks, sink.snaps, wantTicks)
	}
	if res.Requests == 0 {
		t.Fatal("live run made no overclock requests")
	}
	for _, node := range []string{"goa", "soa"} {
		s := sink.last.Find("transport_sends_total",
			map[string]string{"transport": "tcp", "node": node})
		if s == nil || s.Value == 0 {
			t.Fatalf("no TCP sends recorded on node %s", node)
		}
	}
	if sink.events == 0 {
		t.Fatal("no trace events published")
	}
}

// TestRunLiveCheckpointRestore runs live mode with periodic checkpointing,
// verifies the checkpoint file on disk is a valid envelope with the full
// control plane in it, then warm-starts a second run from it.
func TestRunLiveCheckpointRestore(t *testing.T) {
	cfg := DefaultLiveConfig()
	cfg.Duration = 10 * time.Minute
	cfg.Pace = 0
	cfg.Servers = 2
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "state.json")
	cfg.CheckpointEvery = 2 * time.Minute

	sink := &stateSink{}
	res, err := RunLive(cfg, sink)
	if err != nil {
		t.Fatal(err)
	}
	wantCkpts := int(cfg.Duration / cfg.CheckpointEvery)
	if res.Checkpoints != wantCkpts {
		t.Fatalf("checkpoints = %d, want %d", res.Checkpoints, wantCkpts)
	}
	if res.Restored {
		t.Fatal("first run claims to be restored")
	}

	// The sink saw the initial publication plus one per checkpoint, and the
	// final state matches the run's bookkeeping.
	if len(sink.states) != wantCkpts+1 {
		t.Fatalf("state publications = %d, want %d", len(sink.states), wantCkpts+1)
	}
	last := sink.states[len(sink.states)-1]
	if last.Writes != wantCkpts || last.CheckpointPath != cfg.CheckpointPath {
		t.Fatalf("final state info = %+v", last)
	}
	if last.LastBytes <= 0 || last.LastSavedAt.IsZero() {
		t.Fatalf("final state info missing save details: %+v", last)
	}

	// The checkpoint metrics made it into the published snapshot.
	writes := sink.last.Find("checkpoint_writes_total", nil)
	if writes == nil || writes.Value != float64(wantCkpts) {
		t.Fatalf("checkpoint_writes_total = %+v, want %d", writes, wantCkpts)
	}

	// The file on disk is a valid envelope holding the whole control plane.
	var cp store.Checkpoint
	savedAt, err := store.Load(cfg.CheckpointPath, &cp)
	if err != nil {
		t.Fatal(err)
	}
	if !savedAt.Equal(last.LastSavedAt) {
		t.Fatalf("file saved at %v, state info says %v", savedAt, last.LastSavedAt)
	}
	if cp.GOA == nil || len(cp.SOAs) != cfg.Servers || len(cp.Servers) != cfg.Servers {
		t.Fatalf("checkpoint incomplete: goa=%v soas=%d servers=%d",
			cp.GOA != nil, len(cp.SOAs), len(cp.Servers))
	}

	// Warm-start a second run from the checkpoint.
	cfg2 := cfg
	cfg2.CheckpointPath = ""
	cfg2.CheckpointEvery = 0
	cfg2.RestorePath = cfg.CheckpointPath
	sink2 := &stateSink{}
	res2, err := RunLive(cfg2, sink2)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Restored {
		t.Fatal("second run did not report a warm start")
	}
	if res2.Ticks != int(cfg2.Duration/cfg2.Tick) {
		t.Fatalf("restored run ticks = %d", res2.Ticks)
	}
	if len(sink2.states) == 0 {
		t.Fatal("restored run published no state info")
	}
	first := sink2.states[0]
	if first.RestoredFrom != cfg2.RestorePath || !first.RestoredAt.Equal(savedAt) {
		t.Fatalf("restored state info = %+v", first)
	}

	// A corrupt checkpoint must fail the run, not silently cold-start.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg3 := cfg2
	cfg3.RestorePath = bad
	if _, err := RunLive(cfg3, &stateSink{}); err == nil {
		t.Fatal("restore from corrupt file succeeded")
	}
}
