package experiment

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The golden tests snapshot the formatted experiment tables at smoke scale.
// Any change to trace generation, seed derivation, agent behavior or table
// formatting shows up as a readable diff against testdata/. Regenerate
// intentionally with:
//
//	go test ./internal/experiment -run Golden -update

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// checkGolden compares got against testdata/<name>, rewriting the file
// when -update is set.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (rerun with -update if the change is intended):\n--- want ---\n%s\n--- got ---\n%s",
			path, want, got)
	}
}

func TestTable1Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulation")
	}
	tbl, _, err := RunTable1(smokeFleetCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1_smoke.golden", tbl.Format())
}

func TestFig12To14Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster emulation x4")
	}
	fig12, fig13, fig14, _, err := RunFig12To14(smokeClusterCfg(SysBaseline))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig12_14_smoke.golden", fig12.Format()+fig13.Format()+fig14.Format())
}
