package experiment

import (
	"os"
	"strconv"
	"testing"
)

// scaleSmokeCfg shrinks the per-rack cost so scale tests measure the
// streaming machinery, not the simulator's full Table I windows.
func scaleSmokeCfg(racks int) ScaleConfig {
	cfg := DefaultScaleConfig(racks)
	cfg.ServersPerRack = 6
	return cfg
}

// TestFleetScaleDeterministicAcrossWorkers pins the scale run's anchors:
// Requests/Successes/CapEvents are pure functions of (seed, config),
// identical at any worker count and dispatch order.
func TestFleetScaleDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulations")
	}
	run := func(workers int, shuffle int64) *ScaleResult {
		cfg := scaleSmokeCfg(6)
		cfg.Workers = workers
		cfg.ShuffleShards = shuffle
		res, err := RunFleetScale(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1, 0)
	if ref.Requests == 0 {
		t.Fatal("scale run produced no overclock requests")
	}
	for _, v := range []struct {
		workers int
		shuffle int64
	}{{2, 0}, {8, 0}, {8, 2718}} {
		got := run(v.workers, v.shuffle)
		if got.Requests != ref.Requests || got.Successes != ref.Successes || got.CapEvents != ref.CapEvents {
			t.Errorf("workers=%d shuffle=%d: anchors (%d,%d,%d) diverge from workers=1 (%d,%d,%d)",
				v.workers, v.shuffle, got.Requests, got.Successes, got.CapEvents,
				ref.Requests, ref.Successes, ref.CapEvents)
		}
	}
}

// TestFleetScaleStamps checks the honest-parallelism bookkeeping that the
// flat-speedup bench bug motivated: every result carries GOMAXPROCS and an
// effective parallelism never exceeding it.
func TestFleetScaleStamps(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulation")
	}
	cfg := scaleSmokeCfg(2)
	cfg.Workers = 64 // far beyond any host's GOMAXPROCS
	res, err := RunFleetScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.GoMaxProcs < 1 {
		t.Errorf("GoMaxProcs = %d", res.GoMaxProcs)
	}
	if res.EffectiveParallelism > res.GoMaxProcs {
		t.Errorf("effective parallelism %d exceeds GOMAXPROCS %d", res.EffectiveParallelism, res.GoMaxProcs)
	}
	if res.RacksPerSec <= 0 || res.WallSeconds <= 0 {
		t.Errorf("throughput not measured: %+v", res)
	}
}

func TestEffectiveParallelism(t *testing.T) {
	cases := []struct{ workers, procs, want int }{
		{0, 4, 4},  // unset = GOMAXPROCS
		{-1, 4, 4}, // negative = GOMAXPROCS
		{2, 4, 2},  // bounded below the host
		{8, 4, 4},  // more workers than the host can run
		{1, 1, 1},  // single-core host
		{64, 1, 1}, // the BENCH_fleet.json bug: workers=4, gomaxprocs=1
	}
	for _, c := range cases {
		if got := EffectiveParallelism(c.workers, c.procs); got != c.want {
			t.Errorf("EffectiveParallelism(%d, %d) = %d, want %d", c.workers, c.procs, got, c.want)
		}
	}
}

// TestScaleSmoke1k is the CI scale-smoke job: a 1k-rack streamed fleet must
// complete with per-rack residency inside budget — the O(active shard)
// property. Gated behind SOC_SCALE_SMOKE because it simulates 1000 racks
// (about a minute under -race on one core).
func TestScaleSmoke1k(t *testing.T) {
	if os.Getenv("SOC_SCALE_SMOKE") == "" {
		t.Skip("set SOC_SCALE_SMOKE=1 to run the 1k-rack scale smoke")
	}
	racks := 1000
	if v := os.Getenv("SOC_SCALE_SMOKE_RACKS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad SOC_SCALE_SMOKE_RACKS %q", v)
		}
		racks = n
	}
	res, err := RunFleetScale(scaleSmokeCfg(racks))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("scale smoke produced no overclock requests")
	}
	// Budget: streamed residency is O(workers x rack), a few MB total, so
	// per-rack bytes shrink as the fleet grows. 256 KiB/rack is ~10x the
	// expected value with -race instrumentation overhead included; a
	// materialized fleet (~1.3 MB/rack at paper density, ~300 KB at this
	// test's 6 servers/rack times the 5x system fan-out) blows through it.
	const budget = 256 << 10
	if res.BytesPerRack > budget {
		t.Errorf("bytes/rack = %d exceeds budget %d: fleet memory is no longer O(active shard)", res.BytesPerRack, budget)
	}
	t.Logf("racks=%d racks/sec=%.1f bytes/rack=%d peak=%dMB eff=%d",
		res.Racks, res.RacksPerSec, res.BytesPerRack, res.PeakHeapBytes>>20, res.EffectiveParallelism)
}
