// Package experiment contains one runner per table and figure of the
// paper's evaluation (§V). Each runner builds its workload, executes the
// systems under test and returns a Table whose rows mirror what the paper
// plots, so benches and CLIs can print reproductions directly.
package experiment

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result: a caption, column headers and
// rows of cells.
type Table struct {
	Caption string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row of cells, formatting each with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table with aligned columns.
func (t *Table) Format() string {
	var b strings.Builder
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Cell looks up a cell by row and column index, returning "" when out of
// range (convenient in tests).
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.Rows) || col < 0 || col >= len(t.Rows[row]) {
		return ""
	}
	return t.Rows[row][col]
}

// FindRow returns the first row whose first cell equals key, or nil.
func (t *Table) FindRow(key string) []string {
	for _, row := range t.Rows {
		if len(row) > 0 && row[0] == key {
			return row
		}
	}
	return nil
}
