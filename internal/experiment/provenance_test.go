package experiment

import (
	"bytes"
	"testing"
	"time"

	"smartoclock/internal/causal"
)

// provBytes renders the zoo matrix's provenance log as canonical JSONL.
func provBytes(t *testing.T, cfg ZooConfig) []byte {
	t.Helper()
	res, err := RunZoo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.ProvenanceLog().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestZooProvenanceDeterministicAcrossWorkers extends the byte-determinism
// contract to the provenance plane: the concatenated decision log of the
// full zoo matrix is byte-identical at workers 1, 2 and 8, shuffled or
// not, for more than one seed. Span IDs derive from cell seeds, never from
// dispatch order, so this holds by construction — this test keeps it held.
func TestZooProvenanceDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []int64{1, 99} {
		cfg := DefaultZooConfig()
		cfg.Duration = 20 * time.Minute
		cfg.Seed = seed
		cfg.Workers = 1
		want := provBytes(t, cfg)
		if len(want) == 0 {
			t.Fatalf("seed %d: empty provenance log", seed)
		}
		for _, w := range []int{2, 8} {
			for _, shuffle := range []int64{0, 12345} {
				c := cfg
				c.Workers = w
				c.ShuffleSeed = shuffle
				if got := provBytes(t, c); !bytes.Equal(got, want) {
					t.Fatalf("seed %d workers=%d shuffle=%d: provenance diverges from workers=1",
						seed, w, shuffle)
				}
			}
		}
	}
}

// TestZooProvenanceZeroObserverEffect pins that recording provenance never
// changes what the experiment does: the matrix renders byte-identically
// with the recorder armed and disarmed.
func TestZooProvenanceZeroObserverEffect(t *testing.T) {
	cfg := DefaultZooConfig()
	cfg.Duration = 20 * time.Minute

	on, err := RunZoo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Provenance = false
	off, err := RunZoo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if on.Format() != off.Format() {
		t.Fatalf("provenance recording changed the experiment:\n--- on ---\n%s\n--- off ---\n%s",
			on.Format(), off.Format())
	}
	if on.ProvenanceLog().Len() == 0 {
		t.Fatal("armed run recorded nothing")
	}
	if off.ProvenanceLog().Len() != 0 {
		t.Fatal("disarmed run still recorded provenance")
	}
}

// TestZooProvenanceExplainsDecisions is the acceptance bar of the
// provenance layer: every risk decision the zoo reports — denied
// admissions, grants, session stops — has a "why" record resolvable by
// span, and admission verdicts chain back to the workload request that
// caused them.
func TestZooProvenanceExplainsDecisions(t *testing.T) {
	cfg := DefaultZooConfig()
	cfg.Duration = 30 * time.Minute
	res, err := RunZoo(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for ci := range res.Cells {
		c := &res.Cells[ci]
		log := &c.Provenance
		if log.Len() == 0 {
			t.Errorf("%s×%s: no provenance records", c.Policy, c.Scenario)
			continue
		}
		var grants, rejects int
		for i := range log.Records {
			r := &log.Records[i]
			// Every record resolves by its own span.
			if log.Find(r.Span) == nil {
				t.Errorf("%s×%s: span %s unresolvable in its own log", c.Policy, c.Scenario, r.Span)
			}
			if r.Site != "soa.admit" {
				continue
			}
			switch r.Verdict {
			case "grant":
				grants++
			default:
				rejects++
			}
			// The why-chain of an admission must reach the workload request
			// that triggered it.
			chain := log.Chain(r.Span)
			rooted := false
			for j := range chain {
				if chain[j].Site == "wi.request" {
					rooted = true
					break
				}
			}
			if !rooted {
				t.Errorf("%s×%s: admission %s does not chain back to a wi.request",
					c.Policy, c.Scenario, r.Span)
			}
		}
		if c.Granted > 0 && grants == 0 {
			t.Errorf("%s×%s: %d grants reported but no grant records", c.Policy, c.Scenario, c.Granted)
		}
		if c.Requests > c.Granted && rejects == 0 {
			t.Errorf("%s×%s: %d denials reported but no reject records",
				c.Policy, c.Scenario, c.Requests-c.Granted)
		}
	}
}

// TestFleetProvenanceDeterministicAcrossWorkers extends the fleet
// simulation's worker-equivalence contract to the provenance log and its
// critical-path profile: shard logs concatenate in shard-index order, so
// the merged JSONL and the Stats derived from it cannot depend on how many
// workers ran the shards.
func TestFleetProvenanceDeterministicAcrossWorkers(t *testing.T) {
	cfg := DefaultFleetSimConfig()
	cfg.RacksPerClass = 1
	cfg.TrainDays = 2
	cfg.EvalDays = 1

	run := func(workers int) ([]byte, causal.Stats) {
		c := cfg
		c.Workers = workers
		_, _, ob, err := RunTable1Observed(c)
		if err != nil {
			t.Fatal(err)
		}
		if ob == nil || ob.Provenance == nil {
			t.Fatal("observed run returned no provenance")
		}
		var buf bytes.Buffer
		if err := ob.Provenance.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), ob.CriticalPath
	}

	wantLog, wantStats := run(1)
	if len(wantLog) == 0 {
		t.Fatal("empty fleet provenance log")
	}
	if wantStats.Decisions == 0 {
		t.Fatal("critical-path profile counted no decisions")
	}
	for _, w := range []int{2, 8} {
		gotLog, gotStats := run(w)
		if !bytes.Equal(gotLog, wantLog) {
			t.Fatalf("workers=%d: provenance log diverges from workers=1", w)
		}
		if gotStats != wantStats {
			t.Fatalf("workers=%d: critical path %+v, want %+v", w, gotStats, wantStats)
		}
	}
}
