package experiment

import (
	"testing"
	"time"
)

// TestChaosRunHoldsInvariants is the gOA-unavailability ablation as a
// regression test: a 3-hour run with 25% message loss, delays, duplicates,
// a 1-hour gOA outage and 6 sOA crash/restarts must finish with zero
// invariant violations — and must not be vacuously safe (overclocking was
// granted, messages were actually lost, faults actually fired).
func TestChaosRunHoldsInvariants(t *testing.T) {
	cfg := DefaultChaosConfig()
	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if res.Err != nil {
		t.Fatalf("invariants violated:\n%v", res.Err)
	}

	// Non-vacuity: the safety result only means something if the run was
	// genuinely hostile and genuinely overclocking.
	if lf := res.Transport.LossFraction(); lf < 0.20 {
		t.Errorf("loss fraction %.3f < 0.20 — fault injection too gentle", lf)
	}
	if res.Granted == 0 {
		t.Error("no overclock session was ever granted — nothing was at risk")
	}
	if res.Crashes == 0 || res.Restarts == 0 {
		t.Errorf("crashes=%d restarts=%d — process faults did not fire", res.Crashes, res.Restarts)
	}
	if res.StaleBudgetTicks == 0 {
		t.Error("no stale-budget ticks — the gOA outage never forced a fallback")
	}
	if res.InvariantChecks == 0 {
		t.Fatal("invariant checker never ran")
	}
	wantTicks := int(cfg.Duration / cfg.Tick)
	if res.Ticks < wantTicks-1 {
		t.Errorf("ticks = %d, want ~%d", res.Ticks, wantTicks)
	}
}

// TestChaosWarmRestart: with checkpointing on, crashed sOAs come back from
// their last checkpoint instead of cold — and the run stays invariant-clean.
func TestChaosWarmRestart(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.WarmRestart = true
	cfg.CheckpointEvery = 2 * time.Minute
	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if res.Err != nil {
		t.Fatalf("invariants violated under warm restart:\n%v", res.Err)
	}
	if res.Checkpoints == 0 {
		t.Fatal("no checkpoints taken despite CheckpointEvery")
	}
	if res.Restarts == 0 {
		t.Fatal("no restarts fired — warm path untested")
	}
	// Crashes are scheduled from 5 minutes in and the first checkpoint lands
	// at 2 minutes, so every restart should have had a checkpoint to restore.
	if res.WarmRestores != res.Restarts {
		t.Errorf("warm restores = %d, restarts = %d — some restarts fell back to cold", res.WarmRestores, res.Restarts)
	}

	// Warm restart must also be deterministic.
	again, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.Transport != res.Transport || again.Granted != res.Granted ||
		again.WarmRestores != res.WarmRestores || again.Checkpoints != res.Checkpoints {
		t.Errorf("warm-restart run not deterministic: %+v vs %+v", res, again)
	}
}

// TestChaosDeterministic: same config, same seed — identical run, down to
// every fault counter and every decision.
func TestChaosDeterministic(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Duration = 45 * time.Minute
	cfg.GOAOutageStart = 15 * time.Minute
	cfg.GOAOutage = 10 * time.Minute
	cfg.SOACrashes = 2
	a, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Transport != b.Transport {
		t.Errorf("transport stats differ: %+v vs %+v", a.Transport, b.Transport)
	}
	if a.Requests != b.Requests || a.Granted != b.Granted {
		t.Errorf("oc activity differs: %d/%d vs %d/%d", a.Requests, a.Granted, b.Requests, b.Granted)
	}
	if a.StaleBudgetTicks != b.StaleBudgetTicks || a.CapEvents != b.CapEvents || a.Warnings != b.Warnings {
		t.Errorf("run metrics differ: %+v vs %+v", a, b)
	}
}

func TestChaosConfigValidate(t *testing.T) {
	ok := DefaultChaosConfig()
	if err := ok.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	for name, mutate := range map[string]func(*ChaosConfig){
		"zero tick":       func(c *ChaosConfig) { c.Tick = 0 },
		"no servers":      func(c *ChaosConfig) { c.Servers = 0 },
		"no cadence":      func(c *ChaosConfig) { c.BudgetEvery = 0 },
		"no budget":       func(c *ChaosConfig) { c.OCBudgetFraction = 0 },
		"grace sub-tick":  func(c *ChaosConfig) { c.EnforcementGrace = c.Tick / 2 },
		"short duration":  func(c *ChaosConfig) { c.Duration = c.Tick / 2 },
		"no profile push": func(c *ChaosConfig) { c.ProfileEvery = 0 },
	} {
		cfg := DefaultChaosConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: config validated", name)
		}
		if _, err := RunChaos(cfg); err == nil {
			t.Errorf("%s: RunChaos accepted invalid config", name)
		}
	}
}
