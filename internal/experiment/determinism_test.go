package experiment

import (
	"fmt"
	"strings"
	"testing"
)

// These tests pin the central contract of the parallel fleet runner: the
// worker count and the shard dispatch order are pure performance knobs.
// Every experiment entry point must produce byte-identical tables whether
// it runs serially, across 8 workers, or with shards dispatched in a
// shuffled order. Seed derivation (parallel.ChildSeed) plus fixed-index
// reduction make this hold exactly, not just statistically.

// table1Formatted runs Table I at smoke scale and returns the formatted
// table, which captures every reported metric at full float precision.
func table1Formatted(t *testing.T, seed int64, workers int, shuffle int64) string {
	t.Helper()
	cfg := smokeFleetCfg()
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.ShuffleShards = shuffle
	tbl, _, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tbl.Format()
}

func TestTable1EquivalenceAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulations")
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ref := table1Formatted(t, seed, 1, 0)
			for _, workers := range []int{2, 8} {
				if got := table1Formatted(t, seed, workers, 0); got != ref {
					t.Errorf("workers=%d diverges from workers=1:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
						workers, ref, workers, got)
				}
			}
			// Shuffled dispatch order must not matter either.
			if got := table1Formatted(t, seed, 8, 12345); got != ref {
				t.Errorf("shuffled dispatch diverges from serial order:\n%s\nvs\n%s", ref, got)
			}
		})
	}
}

func TestAblationEquivalenceAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulations")
	}
	run := func(workers int, shuffle int64) string {
		cfg := smokeFleetCfg()
		cfg.Workers = workers
		cfg.ShuffleShards = shuffle
		tbl, err := RunAblationExploreStep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tbl.Format()
	}
	ref := run(1, 0)
	if got := run(8, 0); got != ref {
		t.Errorf("ablation sweep workers=8 diverges:\n%s\nvs\n%s", ref, got)
	}
	if got := run(8, 777); got != ref {
		t.Errorf("ablation sweep shuffled dispatch diverges:\n%s\nvs\n%s", ref, got)
	}
}

func TestFig12To14EquivalenceAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster emulations x8")
	}
	run := func(workers int) string {
		cfg := smokeClusterCfg(SysBaseline)
		cfg.Workers = workers
		fig12, fig13, fig14, _, err := RunFig12To14(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fig12.Format() + fig13.Format() + fig14.Format()
	}
	if a, b := run(1), run(8); a != b {
		t.Errorf("cluster sweep diverges across worker counts:\n%s\nvs\n%s", a, b)
	}
}

// table1Observed runs the observed Table I at smoke scale and renders the
// full telemetry output — Prometheus exposition plus the JSONL trace — so
// the comparison covers every series value, bucket count and event byte.
func table1Observed(t *testing.T, seed int64, workers int, shuffle int64) string {
	t.Helper()
	cfg := smokeFleetCfg()
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.ShuffleShards = shuffle
	_, _, observation, err := RunTable1Observed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if observation == nil || observation.Metrics == nil {
		t.Fatal("observed run returned no telemetry")
	}
	var b strings.Builder
	if err := observation.Metrics.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	b.WriteString("--- trace ---\n")
	if err := observation.Trace.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestObservedTelemetryEquivalenceAcrossWorkers extends the worker-count
// contract to the observability layer: the merged metrics snapshot and the
// concatenated trace must be byte-identical whether the fleet ran serially,
// across 8 workers, or with shuffled shard dispatch. This is what makes
// -metrics-out/-trace-out artifacts comparable across machines.
func TestObservedTelemetryEquivalenceAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulations")
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ref := table1Observed(t, seed, 1, 0)
			if !strings.Contains(ref, "soa_requests_total") {
				t.Fatalf("telemetry missing expected series:\n%.2000s", ref)
			}
			for _, workers := range []int{2, 8} {
				if got := table1Observed(t, seed, workers, 0); got != ref {
					t.Errorf("telemetry at workers=%d diverges from workers=1 (len %d vs %d)",
						workers, len(got), len(ref))
				}
			}
			if got := table1Observed(t, seed, 8, 54321); got != ref {
				t.Error("telemetry with shuffled dispatch diverges from serial order")
			}
		})
	}
}

// TestObservedTable1MatchesUnobserved pins the observer effect at zero:
// attaching the metrics registry and tracer must not change a single byte
// of the experiment's scientific output.
func TestObservedTable1MatchesUnobserved(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulations")
	}
	cfg := smokeFleetCfg()
	plain, _, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	observed, _, _, err := RunTable1Observed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Format() != observed.Format() {
		t.Errorf("observation changed experiment results:\n--- plain ---\n%s\n--- observed ---\n%s",
			plain.Format(), observed.Format())
	}
}

// TestTable1RaceStress drives the parallel runner with far more workers
// than shards and a shuffled dispatch order. Its assertions are mild; its
// real job is giving the race detector (CI runs `go test -race ./...`)
// maximal scheduling freedom over the shard pool, reducers and scratch
// buffers.
func TestTable1RaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulations")
	}
	ref := table1Formatted(t, 9, 1, 0)
	for trial := 0; trial < 2; trial++ {
		if got := table1Formatted(t, 9, 32, int64(1000+trial)); got != ref {
			t.Fatalf("trial %d: oversubscribed shuffled run diverges", trial)
		}
	}
}
