package experiment

import (
	"strings"
	"testing"
	"time"

	"smartoclock/internal/policy"
	"smartoclock/internal/trace"
)

// TestZooMatrixZeroViolations is the zoo's acceptance bar: every safe
// policy set crossed with every scenario runs with zero invariant
// violations, and no cell is vacuously safe — each one actually requests,
// grants, and audits overclocking while enforcement stays busy.
func TestZooMatrixZeroViolations(t *testing.T) {
	cfg := DefaultZooConfig()
	res, err := RunZoo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	pols, scs := map[string]bool{}, map[string]bool{}
	warnings := 0
	for _, c := range res.Cells {
		pols[c.Policy] = true
		scs[c.Scenario] = true
		warnings += c.Warnings
		if len(c.Violations) != 0 {
			t.Errorf("%s×%s: %d violations", c.Policy, c.Scenario, len(c.Violations))
		}
		if c.Requests == 0 || c.Granted == 0 {
			t.Errorf("%s×%s: vacuous cell (req=%d granted=%d)", c.Policy, c.Scenario, c.Requests, c.Granted)
		}
		if c.AdmissionAudits == 0 {
			t.Errorf("%s×%s: admission audit saw no decisions", c.Policy, c.Scenario)
		}
		if c.InvariantChecks == 0 {
			t.Errorf("%s×%s: invariant checker never ran", c.Policy, c.Scenario)
		}
	}
	if len(pols) < 2 {
		t.Errorf("matrix covers %d policy sets, want ≥2", len(pols))
	}
	if len(scs) < 5 {
		t.Errorf("matrix covers %d scenarios, want ≥5", len(scs))
	}
	if warnings == 0 {
		t.Error("no rack warnings anywhere: enforcement never engaged")
	}
}

// TestZooCanaryPolicyDetected is the negative control: an intentionally
// over-granting admission policy must trip the decision-time admission
// audit. A zoo that stays green under the canary has a silently broken
// checker, not a safe policy.
func TestZooCanaryPolicyDetected(t *testing.T) {
	cfg := DefaultZooConfig()
	cfg.Duration = 30 * time.Minute
	res := RunZooCell(cfg, policy.Canary(), trace.ZooBenign(cfg.Seed), 7)
	if res.Err == nil {
		t.Fatal("canary policy ran violation-free: the invariant checker is silently green")
	}
	found := false
	for _, v := range res.Violations {
		if v.Invariant == "admission-within-budget" {
			found = true
			if !strings.Contains(v.Detail, "over-grant") {
				t.Errorf("violation does not name the policy: %s", v.Detail)
			}
			break
		}
	}
	if !found {
		t.Fatalf("no admission-within-budget violation among %d; first: %v",
			len(res.Violations), res.Violations[0])
	}
}

// TestZooDeterminismAcrossWorkers extends the byte-determinism suite to
// every zoo scenario: the full matrix renders byte-identically at workers
// 1, 2 and 8, with and without shuffled dispatch.
func TestZooDeterminismAcrossWorkers(t *testing.T) {
	cfg := DefaultZooConfig()
	cfg.Duration = 20 * time.Minute
	run := func(workers int, shuffle int64) string {
		c := cfg
		c.Workers = workers
		c.ShuffleSeed = shuffle
		res, err := RunZoo(c)
		if err != nil {
			t.Fatal(err)
		}
		return res.Format()
	}
	want := run(1, 0)
	if !strings.Contains(want, "benign") || !strings.Contains(want, "sensor-drift") {
		t.Fatalf("matrix output missing scenarios:\n%s", want)
	}
	for _, w := range []int{2, 8} {
		for _, shuffle := range []int64{0, 12345, 777} {
			if got := run(w, shuffle); got != want {
				t.Fatalf("workers=%d shuffle=%d diverges from workers=1:\n--- want ---\n%s\n--- got ---\n%s",
					w, shuffle, want, got)
			}
		}
	}
}

// TestZooSeedChangesOutcome guards against a matrix frozen by accident: a
// different root seed must actually change what happens.
func TestZooSeedChangesOutcome(t *testing.T) {
	cfg := DefaultZooConfig()
	cfg.Duration = 20 * time.Minute
	a, err := RunZoo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 1234
	b, err := RunZoo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Format() == b.Format() {
		t.Fatal("seeds 1 and 1234 produce identical matrices")
	}
}

func TestZooConfigValidation(t *testing.T) {
	cfg := DefaultZooConfig()
	cfg.Tick = 0
	if _, err := RunZoo(cfg); err == nil {
		t.Fatal("zero tick must fail validation")
	}
	cfg = DefaultZooConfig()
	cfg.EnforcementGrace = time.Second
	if _, err := RunZoo(cfg); err == nil {
		t.Fatal("grace below one tick must fail validation")
	}
}
