package experiment

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"smartoclock/internal/trace"
)

// The streamed fleet path generates each shard's rack trace inside the
// worker instead of materializing the whole fleet up front. Because a rack
// is a pure function of (seed, rack index), both paths must produce
// byte-identical output — this suite pins that equivalence for the Table I
// rows, the merged metrics snapshot, the recorded series, the event trace
// and the provenance log, across worker counts and shuffled dispatch.

// renderObserved serializes every byte-deterministic artifact of an
// observed Table I run into one comparable string.
func renderObserved(t *testing.T, cfg FleetSimConfig) string {
	t.Helper()
	tbl, rows, observation, err := RunTable1Observed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if observation == nil || observation.Metrics == nil {
		t.Fatal("observed run returned no telemetry")
	}
	var b strings.Builder
	b.WriteString(tbl.Format())
	b.WriteString("--- rows ---\n")
	fmt.Fprintf(&b, "%+v\n", rows)
	b.WriteString("--- metrics ---\n")
	if err := observation.Metrics.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	b.WriteString("--- trace ---\n")
	if err := observation.Trace.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	b.WriteString("--- provenance ---\n")
	if err := observation.Provenance.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	b.WriteString("--- recording ---\n")
	rec, err := json.Marshal(observation.Series)
	if err != nil {
		t.Fatal(err)
	}
	b.Write(rec)
	return b.String()
}

// TestStreamedMatchesMaterializedTable1 is the core equivalence claim:
// identical bytes whether shards stream their racks or borrow them from a
// pre-generated fleet, at workers 1/2/8 and under shuffled dispatch, for
// two seeds.
func TestStreamedMatchesMaterializedTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulations x16")
	}
	type variant struct {
		workers int
		shuffle int64
	}
	variants := []variant{{1, 0}, {2, 0}, {8, 0}, {8, 31415}}
	for _, seed := range []int64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			var ref string
			for _, v := range variants {
				cfg := smokeFleetCfg()
				cfg.Seed = seed
				cfg.Workers = v.workers
				cfg.ShuffleShards = v.shuffle
				cfg.RecordEvery = 2 * cfg.Step

				cfg.MaterializeFleet = false
				streamed := renderObserved(t, cfg)
				cfg.MaterializeFleet = true
				materialized := renderObserved(t, cfg)

				if streamed != materialized {
					t.Fatalf("workers=%d shuffle=%d: streamed and materialized output differ (len %d vs %d)",
						v.workers, v.shuffle, len(streamed), len(materialized))
				}
				// Every variant must also agree with every other: the
				// streamed path keeps the cross-worker determinism contract.
				if ref == "" {
					ref = streamed
				} else if streamed != ref {
					t.Fatalf("workers=%d shuffle=%d diverges from workers=1", v.workers, v.shuffle)
				}
			}
		})
	}
}

// TestGenFleetRackMatchesGenFleet pins the generator-level identity the
// streamed path is built on: rack i of a materialized fleet equals
// GenFleetRack(cfg, i), byte for byte, for a multi-region mixed-class
// config.
func TestGenFleetRackMatchesGenFleet(t *testing.T) {
	fcfg := trace.DefaultFleetConfig(fleetStart, 48*time.Hour)
	fcfg.Seed = 7
	fcfg.RacksPerRegion = 3
	fleet, err := trace.GenFleet(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Racks) != fcfg.NumRacks() {
		t.Fatalf("fleet has %d racks, want %d", len(fleet.Racks), fcfg.NumRacks())
	}
	for i, want := range fleet.Racks {
		got, err := trace.GenFleetRack(fcfg, i)
		if err != nil {
			t.Fatal(err)
		}
		if got.Region != want.Region || got.Class != want.Class || got.Name != want.Name {
			t.Fatalf("rack %d identity mismatch: %s/%v/%s vs %s/%v/%s",
				i, got.Region, got.Class, got.Name, want.Region, want.Class, want.Name)
		}
		gj, _ := json.Marshal(got.RackTrace)
		wj, _ := json.Marshal(want.RackTrace)
		if string(gj) != string(wj) {
			t.Fatalf("rack %d trace differs between streamed and materialized generation", i)
		}
	}
	// Out-of-range indices are errors, not panics.
	if _, err := trace.GenFleetRack(fcfg, fcfg.NumRacks()); err == nil {
		t.Error("GenFleetRack accepted an out-of-range index")
	}
	if _, err := trace.GenFleetRack(fcfg, -1); err == nil {
		t.Error("GenFleetRack accepted a negative index")
	}
}
