package experiment

import (
	"fmt"

	"smartoclock/internal/workload"
)

// RunFig12To14 executes the four cluster systems and assembles the three
// result tables of §V-A: latency (Fig 12), cost (Fig 13) and energy
// (Fig 14).
func RunFig12To14(base ClusterConfig) (fig12, fig13, fig14 *Table, results map[ClusterSystem]*ClusterResult, err error) {
	results = make(map[ClusterSystem]*ClusterResult)
	for _, sys := range ClusterSystems() {
		cfg := base
		cfg.System = sys
		res, err := RunCluster(cfg)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		results[sys] = res
	}

	fig12 = &Table{
		Caption: "Fig 12: SocialNet latency normalized to SLO (P99 of per-tick samples / mean), with missed SLO counts",
		Headers: []string{"System", "P99.Low", "P99.Med", "P99.High", "Avg.High", "Missed.Low", "Missed.Med", "Missed.High"},
	}
	fig13 = &Table{
		Caption: "Fig 13: Average concurrently active SocialNet instances",
		Headers: []string{"System", "Instances", "Inst.Low", "Inst.Med", "Inst.High"},
	}
	fig14 = &Table{
		Caption: "Fig 14: Energy, normalized to Baseline per-server and to ScaleOut for totals",
		Headers: []string{"System", "PerSrv.Low", "PerSrv.Med", "PerSrv.High", "TotalNorm", "LatencyCriticalNorm"},
	}
	baseRes := results[SysBaseline]
	scaleOutRes := results[SysScaleOut]
	for _, sys := range ClusterSystems() {
		r := results[sys]
		fig12.AddRow(sys.String(),
			r.NormP99[workload.LowLoad], r.NormP99[workload.MediumLoad], r.NormP99[workload.HighLoad],
			r.NormAvg[workload.HighLoad],
			r.MissedSLO[workload.LowLoad], r.MissedSLO[workload.MediumLoad], r.MissedSLO[workload.HighLoad])
		fig13.AddRow(sys.String(), r.MeanInstances,
			r.MeanInstancesByLevel[workload.LowLoad],
			r.MeanInstancesByLevel[workload.MediumLoad],
			r.MeanInstancesByLevel[workload.HighLoad])
		norm := func(lvl workload.LoadLevel) float64 {
			if baseRes.ServerEnergy[lvl] == 0 {
				return 0
			}
			return r.ServerEnergy[lvl] / baseRes.ServerEnergy[lvl]
		}
		totalNorm, lcNorm := 0.0, 0.0
		if scaleOutRes.TotalEnergy > 0 {
			totalNorm = r.TotalEnergy / scaleOutRes.TotalEnergy
		}
		if scaleOutRes.LCEnergy > 0 {
			lcNorm = r.LCEnergy / scaleOutRes.LCEnergy
		}
		fig14.AddRow(sys.String(),
			norm(workload.LowLoad), norm(workload.MediumLoad), norm(workload.HighLoad),
			totalNorm, lcNorm)
	}
	return fig12, fig13, fig14, results, nil
}

// RunPowerConstrained reproduces §V-A's power-constrained experiment:
// NaiveOClock vs SmartOClock under a reduced rack limit, reporting
// SocialNet tail latency, MLTrain throughput and capping events.
func RunPowerConstrained(base ClusterConfig, limitScale float64) (*Table, map[ClusterSystem]*ClusterResult, error) {
	results := make(map[ClusterSystem]*ClusterResult)
	for _, sys := range []ClusterSystem{SysNaiveOClock, SysSmartOClock} {
		cfg := base
		cfg.System = sys
		cfg.RackLimitScale = limitScale
		res, err := RunCluster(cfg)
		if err != nil {
			return nil, nil, err
		}
		results[sys] = res
	}
	tbl := &Table{
		Caption: fmt.Sprintf("Power-constrained (rack limit x%.2f): NaiveOClock vs SmartOClock", limitScale),
		Headers: []string{"System", "P99.Med", "P99.High", "MLThroughput", "CapEvents", "Missed.High"},
	}
	for _, sys := range []ClusterSystem{SysNaiveOClock, SysSmartOClock} {
		r := results[sys]
		tbl.AddRow(sys.String(), r.NormP99[workload.MediumLoad], r.NormP99[workload.HighLoad],
			r.MLThroughput, r.CapEvents, r.MissedSLO[workload.HighLoad])
	}
	return tbl, results, nil
}

// RunOCConstrained reproduces §V-A's overclocking-constrained experiment:
// the overclocking budget is reduced to 75/50/25% of its initial value and
// reactive vs proactive corrective scale-out are compared on the fraction
// of time with missed SLOs.
func RunOCConstrained(base ClusterConfig, initialBudget float64) (*Table, error) {
	tbl := &Table{
		Caption: "Overclocking-constrained: fraction of time with missed SLOs",
		Headers: []string{"BudgetPct", "Reactive", "Proactive"},
	}
	for _, pct := range []float64{0.75, 0.50, 0.25} {
		row := []any{fmt.Sprintf("%.0f%%", pct*100)}
		for _, proactive := range []bool{false, true} {
			cfg := base
			cfg.System = SysSmartOClock
			cfg.OCBudgetScale = initialBudget * pct
			cfg.Proactive = proactive
			res, err := RunCluster(cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f%%", 100*res.MissedTickFrac))
		}
		tbl.AddRow(row...)
	}
	return tbl, nil
}
