package experiment

import (
	"fmt"

	"smartoclock/internal/metrics"
	"smartoclock/internal/obs"
	"smartoclock/internal/parallel"
	"smartoclock/internal/workload"
)

// MergeClusterObservations folds the per-system observations of a sweep
// into one snapshot and one trace, in the given system order — the same
// fixed fold order that keeps the fleet sweep deterministic. Runs without
// observability (Observe false) are skipped.
func MergeClusterObservations(systems []ClusterSystem, results map[ClusterSystem]*ClusterResult) *FleetObservation {
	snaps := make([]*metrics.Snapshot, 0, len(systems))
	tracers := make([]*obs.Tracer, 0, len(systems))
	recs := make([]*metrics.Recording, 0, len(systems))
	for _, sys := range systems {
		r := results[sys]
		if r == nil || r.Metrics == nil {
			continue
		}
		snaps = append(snaps, r.Metrics)
		tracers = append(tracers, r.Trace)
		recs = append(recs, r.Series)
	}
	if len(snaps) == 0 {
		return nil
	}
	return &FleetObservation{
		Metrics: metrics.Merge(snaps...),
		Trace:   obs.Concat(tracers...),
		Series:  metrics.MergeRecordings(recs...),
	}
}

// runClusterSweep executes one RunCluster per system concurrently (bounded
// by base.Workers) and returns the results keyed by system. Each emulation
// owns its entire world — servers, racks, rng — so the sweep parallelizes
// without any cross-run coordination.
func runClusterSweep(base ClusterConfig, systems []ClusterSystem) (map[ClusterSystem]*ClusterResult, error) {
	type out struct {
		res *ClusterResult
		err error
	}
	outs := parallel.Map(len(systems), parallel.Options{Workers: base.Workers}, func(i int) out {
		cfg := base
		cfg.System = systems[i]
		res, err := RunCluster(cfg)
		return out{res, err}
	})
	results := make(map[ClusterSystem]*ClusterResult, len(systems))
	for i, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		results[systems[i]] = o.res
	}
	return results, nil
}

// RunFig12To14 executes the four cluster systems and assembles the three
// result tables of §V-A: latency (Fig 12), cost (Fig 13) and energy
// (Fig 14).
func RunFig12To14(base ClusterConfig) (fig12, fig13, fig14 *Table, results map[ClusterSystem]*ClusterResult, err error) {
	results, err = runClusterSweep(base, ClusterSystems())
	if err != nil {
		return nil, nil, nil, nil, err
	}

	fig12 = &Table{
		Caption: "Fig 12: SocialNet latency normalized to SLO (P99 of per-tick samples / mean), with missed SLO counts",
		Headers: []string{"System", "P99.Low", "P99.Med", "P99.High", "Avg.High", "Missed.Low", "Missed.Med", "Missed.High"},
	}
	fig13 = &Table{
		Caption: "Fig 13: Average concurrently active SocialNet instances",
		Headers: []string{"System", "Instances", "Inst.Low", "Inst.Med", "Inst.High"},
	}
	fig14 = &Table{
		Caption: "Fig 14: Energy, normalized to Baseline per-server and to ScaleOut for totals",
		Headers: []string{"System", "PerSrv.Low", "PerSrv.Med", "PerSrv.High", "TotalNorm", "LatencyCriticalNorm"},
	}
	baseRes := results[SysBaseline]
	scaleOutRes := results[SysScaleOut]
	for _, sys := range ClusterSystems() {
		r := results[sys]
		fig12.AddRow(sys.String(),
			r.NormP99[workload.LowLoad], r.NormP99[workload.MediumLoad], r.NormP99[workload.HighLoad],
			r.NormAvg[workload.HighLoad],
			r.MissedSLO[workload.LowLoad], r.MissedSLO[workload.MediumLoad], r.MissedSLO[workload.HighLoad])
		fig13.AddRow(sys.String(), r.MeanInstances,
			r.MeanInstancesByLevel[workload.LowLoad],
			r.MeanInstancesByLevel[workload.MediumLoad],
			r.MeanInstancesByLevel[workload.HighLoad])
		norm := func(lvl workload.LoadLevel) float64 {
			if baseRes.ServerEnergy[lvl] == 0 {
				return 0
			}
			return r.ServerEnergy[lvl] / baseRes.ServerEnergy[lvl]
		}
		totalNorm, lcNorm := 0.0, 0.0
		if scaleOutRes.TotalEnergy > 0 {
			totalNorm = r.TotalEnergy / scaleOutRes.TotalEnergy
		}
		if scaleOutRes.LCEnergy > 0 {
			lcNorm = r.LCEnergy / scaleOutRes.LCEnergy
		}
		fig14.AddRow(sys.String(),
			norm(workload.LowLoad), norm(workload.MediumLoad), norm(workload.HighLoad),
			totalNorm, lcNorm)
	}
	return fig12, fig13, fig14, results, nil
}

// RunPowerConstrained reproduces §V-A's power-constrained experiment:
// NaiveOClock vs SmartOClock under a reduced rack limit, reporting
// SocialNet tail latency, MLTrain throughput and capping events.
func RunPowerConstrained(base ClusterConfig, limitScale float64) (*Table, map[ClusterSystem]*ClusterResult, error) {
	cfg := base
	cfg.RackLimitScale = limitScale
	results, err := runClusterSweep(cfg, []ClusterSystem{SysNaiveOClock, SysSmartOClock})
	if err != nil {
		return nil, nil, err
	}
	tbl := &Table{
		Caption: fmt.Sprintf("Power-constrained (rack limit x%.2f): NaiveOClock vs SmartOClock", limitScale),
		Headers: []string{"System", "P99.Med", "P99.High", "MLThroughput", "CapEvents", "Missed.High"},
	}
	for _, sys := range []ClusterSystem{SysNaiveOClock, SysSmartOClock} {
		r := results[sys]
		tbl.AddRow(sys.String(), r.NormP99[workload.MediumLoad], r.NormP99[workload.HighLoad],
			r.MLThroughput, r.CapEvents, r.MissedSLO[workload.HighLoad])
	}
	return tbl, results, nil
}

// RunOCConstrained reproduces §V-A's overclocking-constrained experiment:
// the overclocking budget is reduced to 75/50/25% of its initial value and
// reactive vs proactive corrective scale-out are compared on the fraction
// of time with missed SLOs.
func RunOCConstrained(base ClusterConfig, initialBudget float64) (*Table, error) {
	tbl := &Table{
		Caption: "Overclocking-constrained: fraction of time with missed SLOs",
		Headers: []string{"BudgetPct", "Reactive", "Proactive"},
	}
	// The 3x2 (budget, corrective-policy) grid flattens into independent
	// emulation shards; results are assembled back into rows in grid order.
	pcts := []float64{0.75, 0.50, 0.25}
	modes := []bool{false, true}
	type out struct {
		res *ClusterResult
		err error
	}
	outs := parallel.Map(len(pcts)*len(modes), parallel.Options{Workers: base.Workers}, func(i int) out {
		cfg := base
		cfg.System = SysSmartOClock
		cfg.OCBudgetScale = initialBudget * pcts[i/len(modes)]
		cfg.Proactive = modes[i%len(modes)]
		res, err := RunCluster(cfg)
		return out{res, err}
	})
	for pi, pct := range pcts {
		row := []any{fmt.Sprintf("%.0f%%", pct*100)}
		for mi := range modes {
			o := outs[pi*len(modes)+mi]
			if o.err != nil {
				return nil, o.err
			}
			row = append(row, fmt.Sprintf("%.1f%%", 100*o.res.MissedTickFrac))
		}
		tbl.AddRow(row...)
	}
	return tbl, nil
}
