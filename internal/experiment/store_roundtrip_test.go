package experiment

import (
	"fmt"
	"strings"
	"testing"
)

// TestFleetCheckpointRoundtrip is the tentpole acceptance test for the
// durable-state layer: a fleet simulation whose entire control plane is
// checkpointed mid-run — serialized through the store envelope, torn down,
// and restored from the decoded bytes — must produce a byte-identical
// Table I to an uninterrupted run, at every worker count. Any state the
// snapshot misses, any field the restore mangles, any float that drifts
// through JSON shows up as a diverging table.
func TestFleetCheckpointRoundtrip(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulations")
	}
	ref := func() string {
		tbl, _, err := RunTable1(smokeFleetCfg())
		if err != nil {
			t.Fatal(err)
		}
		return tbl.Format()
	}()

	// One eval day at a 5-minute step is 288 ticks; checkpoint mid-run.
	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := smokeFleetCfg()
			cfg.Workers = workers
			cfg.CheckpointTick = 100
			tbl, _, err := RunTable1(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := tbl.Format(); got != ref {
				t.Errorf("checkpointed run diverges from uninterrupted run:\n--- uninterrupted ---\n%s\n--- checkpointed ---\n%s", ref, got)
			}
		})
	}

	// Checkpoint staleness must not matter either: restoring at a different
	// tick still reproduces the same run.
	cfg := smokeFleetCfg()
	cfg.CheckpointTick = 250
	tbl, _, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Format(); got != ref {
		t.Errorf("late checkpoint diverges:\n%s\nvs\n%s", ref, got)
	}
}

// TestFleetCheckpointObserved: with the observability layer on, a rebuilt
// agent resolves the same series identities, so the merged snapshot of a
// checkpointed run matches the uninterrupted one exactly.
func TestFleetCheckpointObserved(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulations")
	}
	run := func(checkpointTick int) string {
		cfg := smokeFleetCfg()
		cfg.CheckpointTick = checkpointTick
		_, _, ob, err := RunTable1Observed(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := ob.Metrics.WriteProm(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	ref := run(0)
	if got := run(100); got != ref {
		t.Error("observed metrics diverge between checkpointed and uninterrupted runs")
	}
}
