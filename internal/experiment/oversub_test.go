package experiment

import (
	"strings"
	"testing"
	"time"
)

// smokeOversubCfg shrinks the oversubscription sweep for CI: same ratio
// sweep and arrival machinery as the default profile, 40 simulated minutes.
func smokeOversubCfg() OversubConfig {
	cfg := DefaultOversubConfig()
	cfg.Duration = 40 * time.Minute
	cfg.Arrivals = 12
	cfg.ArrivalEvery = 3 * time.Minute
	return cfg
}

func TestOversubConfigValidate(t *testing.T) {
	mod := func(f func(*OversubConfig)) OversubConfig {
		cfg := DefaultOversubConfig()
		f(&cfg)
		return cfg
	}
	cases := []struct {
		name string
		cfg  OversubConfig
		ok   bool
	}{
		{"default", DefaultOversubConfig(), true},
		{"smoke", smokeOversubCfg(), true},
		{"zero tick", mod(func(c *OversubConfig) { c.Tick = 0 }), false},
		{"duration under tick", mod(func(c *OversubConfig) { c.Duration = time.Second }), false},
		{"no ratios", mod(func(c *OversubConfig) { c.Ratios = nil }), false},
		{"negative ratio", mod(func(c *OversubConfig) { c.Ratios = []float64{1.0, -0.5} }), false},
		{"zero limit", mod(func(c *OversubConfig) { c.LimitWatts = 0 }), false},
		{"no arrivals", mod(func(c *OversubConfig) { c.Arrivals = 0 }), false},
		{"zero arrival spacing", mod(func(c *OversubConfig) { c.ArrivalEvery = 0 }), false},
		{"huge history step", mod(func(c *OversubConfig) { c.HistoryStep = 48 * time.Hour }), false},
		{"quantile over 1", mod(func(c *OversubConfig) { c.Quantile = 1.5 }), false},
		{"zero template age", mod(func(c *OversubConfig) { c.MaxTemplateAge = 0 }), false},
		{"no base servers", mod(func(c *OversubConfig) { c.BaseServers = 0 }), false},
		{"limit scale at 1", mod(func(c *OversubConfig) { c.ContentionLimitScale = 1.0 }), false},
		{"zero budget epoch", mod(func(c *OversubConfig) { c.BudgetEpoch = 0 }), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("Validate() = nil, want error")
			}
		})
	}
}

// TestRunOversubInvariantsHold is the headline safety test: across the
// ratio sweep, admission plus severity-ordered capping keep both
// oversubscription invariants green — and the run is not vacuous (servers
// were admitted, rejected, conservatively assessed, and the rack actually
// had to cap).
func TestRunOversubInvariantsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("oversubscription sweep")
	}
	res, err := RunOversub(smokeOversubCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("invariant violations: %v", res.Err)
	}
	var admitted, rejected, fallback, caps int
	for _, c := range res.Cells {
		if c.InvariantChecks == 0 {
			t.Fatalf("ratio %.2f: invariants never ran", c.Ratio)
		}
		if c.Offered == 0 {
			t.Fatalf("ratio %.2f: no arrivals offered", c.Ratio)
		}
		if c.Offered != c.Admitted+c.Rejected {
			t.Fatalf("ratio %.2f: offered %d != admitted %d + rejected %d",
				c.Ratio, c.Offered, c.Admitted, c.Rejected)
		}
		admitted += c.Admitted
		rejected += c.Rejected
		fallback += c.Fallback
		caps += c.CapEvents
	}
	if admitted == 0 || rejected == 0 || fallback == 0 {
		t.Fatalf("vacuous sweep: admitted=%d rejected=%d fallback=%d — every admission path must be exercised",
			admitted, rejected, fallback)
	}
	if caps == 0 {
		t.Fatal("vacuous sweep: capping never engaged, the severity discipline went untested")
	}
	// More oversubscription budget must never admit fewer deployments.
	for i := 1; i < len(res.Cells); i++ {
		lo, hi := res.Cells[i-1], res.Cells[i]
		if hi.Ratio > lo.Ratio && hi.Admitted < lo.Admitted {
			t.Fatalf("ratio %.2f admitted %d < ratio %.2f admitted %d",
				hi.Ratio, hi.Admitted, lo.Ratio, lo.Admitted)
		}
	}
}

// TestRunContentionTradeoff checks the combined sweep: overclock sessions
// and oversubscription admission share one rack without violating any
// invariant (the overclock battery stays armed), overclocking actually
// delivers core-hours, and raising the ratio admits at least as many
// deployments.
func TestRunContentionTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("contention sweep")
	}
	res, err := RunContention(smokeOversubCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("invariant violations: %v", res.Err)
	}
	for i, c := range res.Cells {
		if c.OCCoreHours <= 0 {
			t.Fatalf("ratio %.2f: no overclocked core-hours delivered", c.Ratio)
		}
		if c.InvariantChecks == 0 {
			t.Fatalf("ratio %.2f: invariants never ran", c.Ratio)
		}
		if i > 0 && c.Ratio > res.Cells[i-1].Ratio && c.Admitted < res.Cells[i-1].Admitted {
			t.Fatalf("ratio %.2f admitted %d < ratio %.2f admitted %d",
				c.Ratio, c.Admitted, res.Cells[i-1].Ratio, res.Cells[i-1].Admitted)
		}
	}
}

// TestRunOversubCanary proves the battery has teeth. Over-admission with
// capping disabled must trip invariant.NoBrownout; severity-inverted
// capping must trip invariant.SeverityOrder. If either unsafe cell comes
// back green, the invariants are decorative.
func TestRunOversubCanary(t *testing.T) {
	if testing.Short() {
		t.Skip("canary cells")
	}
	noCapping, inverted, err := RunOversubCanary(smokeOversubCfg())
	if err != nil {
		t.Fatal(err)
	}
	assertTripped := func(cell *OversubCellResult, invariantName, mode string) {
		t.Helper()
		if cell.Err == nil {
			t.Fatalf("%s cell reported no violations — the %s invariant is not protecting anything",
				mode, invariantName)
		}
		for _, v := range cell.Violations {
			if v.Invariant == invariantName {
				return
			}
		}
		t.Fatalf("%s cell violated invariants, but never %q: %v", mode, invariantName, cell.Err)
	}
	assertTripped(noCapping, "no-brownout", "capping-disabled")
	assertTripped(inverted, "severity-order", "severity-inverted")
}

// TestOversubDeterminism asserts the byte-identity contract for both
// runners: any worker count, any dispatch shuffle, same formatted tables.
func TestOversubDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated sweeps")
	}
	base := smokeOversubCfg()
	base.Duration = 24 * time.Minute
	base.Arrivals = 8
	for _, seed := range []int64{1, 7, 1234} {
		cfg := base
		cfg.Seed = seed
		cfg.Workers = 1
		cfg.ShuffleSeed = 0
		ov, err := RunOversub(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := RunContention(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wantOv, wantCt := ov.Format(), ct.Format()
		for _, workers := range []int{2, 8} {
			for _, shuffle := range []int64{0, 99} {
				cfg.Workers = workers
				cfg.ShuffleSeed = shuffle
				ov2, err := RunOversub(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if got := ov2.Format(); got != wantOv {
					t.Fatalf("seed %d workers=%d shuffle=%d: RunOversub output differs\n--- want ---\n%s\n--- got ---\n%s",
						seed, workers, shuffle, wantOv, got)
				}
				ct2, err := RunContention(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if got := ct2.Format(); got != wantCt {
					t.Fatalf("seed %d workers=%d shuffle=%d: RunContention output differs\n--- want ---\n%s\n--- got ---\n%s",
						seed, workers, shuffle, wantCt, got)
				}
			}
		}
	}
}

func TestOversubGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("oversubscription sweep")
	}
	res, err := RunOversub(smokeOversubCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	checkGolden(t, "oversub_smoke.golden", res.Format())
}

func TestContentionGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("contention sweep")
	}
	res, err := RunContention(smokeOversubCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	checkGolden(t, "contention_smoke.golden", res.Format())
}

// TestOversubFormatMentionsInvariants pins the report captions to their
// safety framing so socreport keeps telling readers what zero violations
// certifies.
func TestOversubFormatMentionsInvariants(t *testing.T) {
	r := &OversubResult{Cells: []OversubCellResult{{Ratio: 1}}}
	if !strings.Contains(r.Format(), "invariant violations must be 0") {
		t.Fatal("oversub table caption lost its invariant framing")
	}
	c := &ContentionResult{Cells: []OversubCellResult{{Ratio: 1}}}
	if !strings.Contains(c.Format(), "OC core-h") {
		t.Fatal("contention table lost its overclock column")
	}
}
