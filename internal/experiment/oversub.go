package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"smartoclock/internal/cluster"
	"smartoclock/internal/core"
	"smartoclock/internal/invariant"
	"smartoclock/internal/lifetime"
	"smartoclock/internal/machine"
	"smartoclock/internal/parallel"
	"smartoclock/internal/power"
	"smartoclock/internal/sim"
	"smartoclock/internal/timeseries"
	"smartoclock/internal/trace"
)

// The oversubscription experiments: power headroom spent the opposite way
// from overclocking. RunOversub sweeps the oversubscription ratio on a rack
// fed by a deterministic deployment-arrival stream — predicted-peak
// admission in front, severity-ordered capping behind — and reports the
// admitted-servers / cap-events / availability tradeoff. RunContention puts
// both consumers on one rack: production servers running sOA overclock
// sessions (severity-critical) against harvest deployments admitted by
// oversubscription, competing for the same headroom. Both are watched by
// the invariant battery (NoBrownout, SeverityOrder, plus the overclock
// safety invariants in the contention cells) and are byte-identical at any
// worker count, like every other experiment.

// OversubConfig parameterizes the oversubscription and contention sweeps.
type OversubConfig struct {
	Seed     int64
	Start    time.Time
	Duration time.Duration
	// Tick is the control cadence (utilization updates, rack manager
	// ticks, invariant checks).
	Tick time.Duration

	// Ratios is the oversubscription-ratio sweep; each ratio is one cell.
	Ratios []float64
	// LimitWatts is the provisioned rack limit of the standalone cells.
	LimitWatts float64

	// Arrivals / ArrivalEvery shape the deployment-arrival stream.
	Arrivals     int
	ArrivalEvery time.Duration
	// HistoryStep is the sampling step of the synthetic power history each
	// arrival's day template is fitted on.
	HistoryStep time.Duration
	// Quantile / MaxTemplateAge parameterize predicted-peak admission.
	Quantile       float64
	MaxTemplateAge time.Duration

	// Contention-cell knobs: BaseServers production servers run sOAs, and
	// the rack limit is ContentionLimitScale × their reserved predicted
	// peak, so the headroom both policy families fight over is explicit.
	BaseServers          int
	ContentionLimitScale float64
	BudgetEpoch          time.Duration
	OCBudgetFraction     float64

	// Workers/ShuffleSeed control cell-level parallelism; results are
	// byte-identical for any values.
	Workers     int
	ShuffleSeed int64
}

// DefaultOversubConfig returns the profile used by `socsim -oversub` /
// `-contention` and CI: three ratios straddling the provisioned limit, two
// hours of simulated time, ~18 deployment arrivals.
func DefaultOversubConfig() OversubConfig {
	return OversubConfig{
		Seed:                 1,
		Start:                time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC),
		Duration:             2 * time.Hour,
		Tick:                 15 * time.Second,
		Ratios:               []float64{0.90, 1.05, 1.20, 1.40},
		LimitWatts:           2600,
		Arrivals:             18,
		ArrivalEvery:         5 * time.Minute,
		HistoryStep:          15 * time.Minute,
		Quantile:             0.98,
		MaxTemplateAge:       14 * 24 * time.Hour,
		BaseServers:          6,
		ContentionLimitScale: 1.20,
		BudgetEpoch:          time.Hour,
		OCBudgetFraction:     0.25,
	}
}

// Validate reports whether the configuration is runnable.
func (c OversubConfig) Validate() error {
	switch {
	case c.Tick <= 0 || c.Duration < c.Tick:
		return fmt.Errorf("experiment: bad oversub tick/duration %v/%v", c.Tick, c.Duration)
	case len(c.Ratios) == 0:
		return fmt.Errorf("experiment: oversub sweep has no ratios")
	case c.LimitWatts <= 0:
		return fmt.Errorf("experiment: oversub LimitWatts = %v", c.LimitWatts)
	case c.Arrivals < 1 || c.ArrivalEvery <= 0:
		return fmt.Errorf("experiment: oversub arrivals %d every %v", c.Arrivals, c.ArrivalEvery)
	case c.HistoryStep <= 0 || c.HistoryStep > 24*time.Hour:
		return fmt.Errorf("experiment: oversub HistoryStep = %v", c.HistoryStep)
	case c.Quantile <= 0 || c.Quantile > 1:
		return fmt.Errorf("experiment: oversub Quantile = %v out of (0,1]", c.Quantile)
	case c.MaxTemplateAge <= 0:
		return fmt.Errorf("experiment: oversub MaxTemplateAge = %v", c.MaxTemplateAge)
	case c.BaseServers < 1 || c.ContentionLimitScale <= 1:
		return fmt.Errorf("experiment: oversub base servers %d, limit scale %v (must be >1)",
			c.BaseServers, c.ContentionLimitScale)
	case c.BudgetEpoch <= 0 || c.OCBudgetFraction <= 0:
		return fmt.Errorf("experiment: bad oversub OC budget %v/%v", c.BudgetEpoch, c.OCBudgetFraction)
	}
	for _, r := range c.Ratios {
		if r <= 0 {
			return fmt.Errorf("experiment: oversub ratio %v, must be positive", r)
		}
	}
	return nil
}

// OversubCellResult is one ratio cell of a sweep.
type OversubCellResult struct {
	Ratio float64
	// Offered/Admitted/Rejected count admission decisions; Fallback counts
	// decisions that used the conservative nameplate path (absent, stale
	// or unusable template).
	Offered   int
	Admitted  int
	Rejected  int
	Fallback  int
	Warnings  int
	CapEvents int
	// ServerTicks/CappedTicks book availability of the admitted
	// deployments: the fraction of admitted server-ticks spent capped.
	ServerTicks int
	CappedTicks int
	// MaxUtil is the highest post-enforcement rack draw as a fraction of
	// the provisioned limit.
	MaxUtil float64
	// OCCoreHours is overclocked core-hours delivered to the production
	// servers (contention cells only).
	OCCoreHours     float64
	InvariantChecks int64
	Violations      []invariant.Violation
	// Err is non-nil when any invariant was violated.
	Err error
}

// Availability returns the fraction of admitted server-ticks spent
// uncapped, 1 when nothing was admitted.
func (c *OversubCellResult) Availability() float64 {
	if c.ServerTicks == 0 {
		return 1
	}
	return 1 - float64(c.CappedTicks)/float64(c.ServerTicks)
}

// OversubResult is the standalone ratio sweep.
type OversubResult struct {
	Cells []OversubCellResult
	Err   error
}

// ContentionResult is the combined overclocking-vs-oversubscription sweep.
type ContentionResult struct {
	Cells []OversubCellResult
	Err   error
}

// admittedServer is one deployment placed on the rack, with its private
// utilization RNG (seeded from the sweep seed and arrival index, so the
// stream is independent of admission order).
type admittedServer struct {
	srv *cluster.Server
	arr trace.Arrival
	rng *rand.Rand
}

// fitArrivalTemplate builds the candidate's power day template from a
// synthetic history: the arrival's service shape sampled every HistoryStep
// over its HistoryDays, converted to watts through its hardware model.
func fitArrivalTemplate(start time.Time, step time.Duration, a trace.Arrival, seed int64) *timeseries.WeekTemplate {
	histStart := start.AddDate(0, 0, -a.HistoryDays)
	hist := timeseries.New(histStart, step)
	rng := rand.New(rand.NewSource(parallel.ChildSeed(seed, uint64(5000+a.Index))))
	n := int(time.Duration(a.HistoryDays) * 24 * time.Hour / step)
	for i := 0; i < n; i++ {
		u := a.Service.UtilAt(histStart.Add(time.Duration(i)*step), rng)
		hist.Append(a.HW.IdleWatts + float64(a.HW.Cores)*a.HW.CorePower(a.HW.TurboMHz, u))
	}
	return timeseries.BuildWeekTemplate(hist, timeseries.ReduceMedian)
}

// contentionBase is one production server with its sOA in a contention cell.
type contentionBase struct {
	srv     *cluster.Server
	soa     *core.SOA
	vmCores []int
}

// runOversubCell executes one ratio cell. contention adds the production
// sOA servers; mode and admitAll select the unsafe canary variants.
func runOversubCell(cfg OversubConfig, ratio float64, seed int64, contention bool, mode power.CapMode, admitAll bool) *OversubCellResult {
	res := &OversubCellResult{Ratio: ratio}
	eng := sim.NewEngine(cfg.Start, seed)
	end := cfg.Start.Add(cfg.Duration)
	since := func(now time.Time) time.Duration { return now.Sub(cfg.Start) }

	// Production base servers and their predicted-peak reserve (contention
	// only): hot VM cores, warm background, plus half the overclock delta —
	// the same estimate the zoo uses to size rack limits.
	var bases []*contentionBase
	reserve := 0.0
	limit := cfg.LimitWatts
	if contention {
		for i := 0; i < cfg.BaseServers; i++ {
			srv := cluster.NewServer(fmt.Sprintf("base-%02d", i), machine.DefaultConfig(), 100+i)
			srv.SetSeverity(power.SeverityCritical)
			b := &contentionBase{srv: srv, vmCores: make([]int, srv.NumCores()/4)}
			for c := range b.vmCores {
				b.vmCores[c] = c
			}
			for c := 0; c < srv.NumCores(); c++ {
				u := 0.40
				if c < len(b.vmCores) {
					u = 0.90
				}
				srv.SetCoreUtil(c, u)
			}
			peak := srv.Power() + 0.5*srv.OCDeltaWatts(len(b.vmCores), srv.MaxOCMHz(), 0.9)
			for c := 0; c < srv.NumCores(); c++ {
				srv.SetCoreUtil(c, 0.40)
			}
			reserve += peak
			bases = append(bases, b)
		}
		limit = cfg.ContentionLimitScale * reserve
	}

	rackCfg := power.DefaultRackConfig("oversub-r0", limit)
	rackCfg.Mode = mode
	if mode == power.CapInvertedUnsafe {
		// Shallow emergency target for the inverted canary: the default deep
		// target caps every class to the floor, which leaves no uncapped
		// witness for invariant.SeverityOrder to pair against. Stopping
		// partway guarantees the inversion is observable.
		rackCfg.TargetFraction = 0.90
	}
	rack := power.NewRack(rackCfg)
	for _, b := range bases {
		rack.AddServer(b.srv)
	}

	adm, err := power.NewAdmission(power.OversubConfig{
		Ratio:          ratio,
		Quantile:       cfg.Quantile,
		MaxTemplateAge: cfg.MaxTemplateAge,
		AdmitAllUnsafe: admitAll,
	}, limit)
	if err != nil {
		res.Err = err
		return res
	}
	adm.Reserve(reserve)

	checker := invariant.NewChecker()
	invariant.NoBrownout(checker, rack, 1e-6)
	invariant.SeverityOrder(checker, rack)

	// The contention cells keep the overclocking safety battery armed too:
	// competing with oversubscription must not loosen any overclock bound.
	bcfg := lifetime.BudgetConfig{Epoch: cfg.BudgetEpoch, Fraction: cfg.OCBudgetFraction, CarryOver: true, MaxCarryOver: 1}
	if contention {
		soaCfg := core.DefaultSOAConfig()
		soaCfg.ProfileStep = time.Minute
		soaCfg.ExploreConfirm = 30 * time.Second
		soaCfg.ExploitTime = 5 * time.Minute
		soaCfg.InitialBackoff = time.Minute
		soaCfg.MaxBackoff = 15 * time.Minute
		soaCfg.DefaultOCHorizon = 5 * time.Minute
		soaCfg.ExhaustionWindow = 5 * time.Minute
		soaCfg.AdmissionUtil = 0.7
		share := reserve / float64(len(bases))
		for _, b := range bases {
			b := b
			b.soa = core.NewSOA(soaCfg, b.srv, lifetime.NewCoreBudgets(bcfg, b.srv.NumCores(), cfg.Start), share, cfg.Start)
			invariant.SessionsWithinGrant(checker, rack.Name(), b.srv, func() *core.SOA { return b.soa })
			invariant.CoreBudgetsNeverOverdrawn(checker, rack.Name(), b.srv, bcfg, cfg.Start, 12*cfg.Tick)
		}
		rack.Subscribe(func(ev power.Event) {
			for _, b := range bases {
				b.soa.OnRackEvent(eng.Now(), ev)
			}
		})
	}

	// The deployment-arrival stream: admission decides at each arrival;
	// granted deployments join the rack with their severity class.
	var admitted []*admittedServer
	// The arrival stream, day templates and utilization traces all derive
	// from the sweep seed, not the cell seed: every ratio cell faces the
	// exact same workload, so admitted/rejected/capped differences across a
	// sweep are attributable to the ratio alone.
	stream := trace.NewArrivalStream(cfg.Seed+17, cfg.ArrivalEvery, cfg.Arrivals)
	for i := 0; i < cfg.Arrivals; i++ {
		a := stream.Arrival(i)
		if a.At >= cfg.Duration {
			continue
		}
		if contention && a.Severity == 0 {
			a.Severity = 1 // class 0 belongs to the production base
		}
		res.Offered++
		eng.At(cfg.Start.Add(a.At), func() {
			cand := power.Candidate{
				Name:           a.Name,
				NameplateWatts: a.HW.NameplateWatts(),
				Severity:       power.Severity(a.Severity),
			}
			if a.HistoryDays > 0 {
				cand.Template = fitArrivalTemplate(cfg.Start, cfg.HistoryStep, a, cfg.Seed)
				cand.FittedAt = cfg.Start.AddDate(0, 0, -a.TemplateAgeDays)
			}
			d := adm.Admit(eng.Now(), cand)
			if d.Conservative {
				res.Fallback++
			}
			if !d.Granted {
				res.Rejected++
				return
			}
			res.Admitted++
			srv := cluster.NewServer(a.Name, a.HW, int(power.NumSeverities)-1-a.Severity)
			srv.SetSeverity(power.Severity(a.Severity))
			rack.AddServer(srv)
			admitted = append(admitted, &admittedServer{
				srv: srv,
				arr: a,
				rng: rand.New(rand.NewSource(parallel.ChildSeed(cfg.Seed, uint64(9000+a.Index)))),
			})
		})
	}

	eng.Every(cfg.Start.Add(cfg.Tick), cfg.Tick, func(now time.Time) {
		off := since(now)
		for _, ad := range admitted {
			u := ad.arr.Service.UtilAt(now, ad.rng)
			for c := 0; c < ad.srv.NumCores(); c++ {
				ad.srv.SetCoreUtil(c, u)
			}
		}
		for i, b := range bases {
			hot := trace.BenignUtil(cfg.Seed, 0, i, off, true)
			base := trace.BenignUtil(cfg.Seed, 0, i, off, false)
			want := trace.DemandWave(0, i, len(bases), off, 20*time.Minute, 0.45)
			for c := 0; c < b.srv.NumCores(); c++ {
				if want && c < len(b.vmCores) {
					b.srv.SetCoreUtil(c, hot)
				} else {
					b.srv.SetCoreUtil(c, base)
				}
			}
			_, active := b.soa.Sessions()["vm"]
			if want && !active {
				b.soa.Request(now, core.Request{
					VM: "vm", Cores: len(b.vmCores), TargetMHz: b.srv.MaxOCMHz(),
					Priority: core.PriorityMetric, PreferredCores: b.vmCores,
				})
			} else if !want && active {
				b.soa.Stop(now, "vm")
			}
			b.soa.Tick(now)
			res.OCCoreHours += float64(b.soa.ActiveOCCores()) * cfg.Tick.Hours()
		}
		for _, ad := range admitted {
			ad.srv.Advance(cfg.Tick)
		}
		for _, b := range bases {
			b.srv.Advance(cfg.Tick)
		}
		rack.Tick(now)
		for _, ad := range admitted {
			res.ServerTicks++
			if ad.srv.CapLevel() > 0 {
				res.CappedTicks++
			}
		}
		if u := rack.Power() / limit; u > res.MaxUtil {
			res.MaxUtil = u
		}
		checker.Check(now)
	})

	eng.Run(end)

	res.Warnings = rack.Warnings()
	res.CapEvents = rack.CapEvents()
	res.InvariantChecks = checker.Checks()
	res.Violations = checker.Violations()
	res.Err = checker.Err()
	return res
}

// gatherOversubCells wraps the parallel sweep shared by both runners.
func gatherOversubCells(cfg OversubConfig, contention bool, seedBase uint64) ([]OversubCellResult, error) {
	opts := parallel.Options{Workers: cfg.Workers, ShuffleSeed: cfg.ShuffleSeed}
	results := parallel.Map(len(cfg.Ratios), opts, func(i int) *OversubCellResult {
		return runOversubCell(cfg, cfg.Ratios[i], parallel.ChildSeed(cfg.Seed, seedBase+uint64(i)),
			contention, power.CapSeverity, false)
	})
	cells := make([]OversubCellResult, len(results))
	var firstErr error
	for i, c := range results {
		cells[i] = *c
		if firstErr == nil && c.Err != nil {
			firstErr = fmt.Errorf("oversub ratio %.2f: %w", c.Ratio, c.Err)
		}
	}
	return cells, firstErr
}

// RunOversub executes the standalone oversubscription sweep: predicted-peak
// admission against severity-ordered capping across the configured ratios.
// Cells run in parallel under cfg.Workers; each cell's seed derives from
// its fixed index, so the result is byte-identical for any worker count or
// dispatch order.
func RunOversub(cfg OversubConfig) (*OversubResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cells, err := gatherOversubCells(cfg, false, 0)
	return &OversubResult{Cells: cells, Err: err}, nil
}

// RunContention executes the combined sweep: oversubscription admission and
// sOA overclock sessions competing for the same rack headroom.
func RunContention(cfg OversubConfig) (*ContentionResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cells, err := gatherOversubCells(cfg, true, 100)
	return &ContentionResult{Cells: cells, Err: err}, nil
}

// RunOversubCanary runs the deliberately unsafe negative controls at an
// aggressive ratio with admission bypassed: one cell with capping disabled
// (invariant.NoBrownout must fire — over-admission without enforcement
// browns the rack out) and one with severity-inverted capping
// (invariant.SeverityOrder must fire — critical work shed while harvest
// runs free). A battery that stays green under these cells is silently
// broken.
func RunOversubCanary(cfg OversubConfig) (noCapping, inverted *OversubCellResult, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	const canaryRatio = 1.6
	noCapping = runOversubCell(cfg, canaryRatio, parallel.ChildSeed(cfg.Seed, 900),
		false, power.CapDisabledUnsafe, true)
	inverted = runOversubCell(cfg, canaryRatio, parallel.ChildSeed(cfg.Seed, 901),
		false, power.CapInvertedUnsafe, true)
	return noCapping, inverted, nil
}

// formatOversubCells renders a sweep as a report table.
func formatOversubCells(caption string, cells []OversubCellResult, withOC bool) string {
	headers := []string{"Ratio", "Offered", "Admit", "Reject", "Fallback", "Warn", "Caps", "Avail%", "MaxUtil", "Checks", "Viol"}
	if withOC {
		headers = append(headers[:7], append([]string{"OC core-h"}, headers[7:]...)...)
	}
	tbl := &Table{Caption: caption, Headers: headers}
	for i := range cells {
		c := &cells[i]
		row := []any{
			fmt.Sprintf("%.2f", c.Ratio), c.Offered, c.Admitted, c.Rejected, c.Fallback,
			c.Warnings, c.CapEvents,
		}
		if withOC {
			row = append(row, c.OCCoreHours)
		}
		row = append(row, 100*c.Availability(), c.MaxUtil, c.InvariantChecks, len(c.Violations))
		tbl.AddRow(row...)
	}
	return tbl.Format()
}

// Format renders the standalone sweep.
func (r *OversubResult) Format() string {
	return formatOversubCells(
		"Oversubscription: predicted-peak admission vs severity-classed capping (invariant violations must be 0)",
		r.Cells, false)
}

// Format renders the contention sweep.
func (r *ContentionResult) Format() string {
	return formatOversubCells(
		"Contention: oversubscription admission vs overclock sessions on shared headroom (invariant violations must be 0)",
		r.Cells, true)
}
