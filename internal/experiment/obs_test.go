package experiment

import (
	"testing"
	"time"

	"smartoclock/internal/obs"
)

// The chaos experiment keeps two independent sets of books: the harness's
// own counters (ChaosResult fields, fed by the experiment's bookkeeping)
// and the metrics registry (fed by instrument hooks inside the components).
// This integration test cross-checks them: every observability counter must
// agree exactly with the experiment's ground truth, across crash/restart
// cycles, message faults and a gOA outage.
func TestChaosMetricsAgreeWithResult(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run")
	}
	cfg := DefaultChaosConfig()
	cfg.Duration = 45 * time.Minute
	cfg.GOAOutageStart = 10 * time.Minute
	cfg.GOAOutage = 10 * time.Minute
	cfg.SOACrashes = 3
	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("invariants violated: %v", res.Err)
	}
	if res.Metrics == nil || res.Trace == nil {
		t.Fatal("chaos run returned no telemetry")
	}
	snap := res.Metrics

	check := func(name string, want float64) {
		t.Helper()
		if got := snap.SumByName(name); got != want {
			t.Errorf("%s = %v, metrics registry disagrees with result %v", name, got, want)
		}
	}

	// Invariant checker books.
	check("invariant_checks_total", float64(res.InvariantChecks))
	check("invariant_violations_total", float64(len(res.Violations)))

	// Transport books: Stats struct vs chaos_* counters.
	check("chaos_messages_sent_total", float64(res.Transport.Sent))
	check("chaos_messages_delivered_total", float64(res.Transport.Delivered))
	faulted := res.Transport.Dropped + res.Transport.Outage + res.Transport.Duplicated + res.Transport.Delayed
	check("chaos_messages_faulted_total", float64(faulted))
	check("chaos_crashes_total", float64(res.Crashes))
	check("chaos_restarts_total", float64(res.Restarts))

	// Rack books.
	check("rack_cap_events_total", float64(res.CapEvents))
	check("rack_warnings_total", float64(res.Warnings))

	// sOA books: the harness counts one request per SOA.Request call and
	// one grant per accepted session; rebooted sOAs re-resolve the same
	// series, so totals must hold across crash/restart cycles.
	check("soa_requests_total", float64(res.Requests))
	check("soa_grants_total", float64(res.Granted))

	// The fault plan injected real faults — the cross-check above would
	// pass vacuously on an idle run.
	if res.Transport.Sent == 0 || res.Crashes == 0 || res.Transport.Dropped == 0 {
		t.Fatalf("chaos run injected no faults: %+v", res.Transport)
	}

	// Trace sanity: every crash/restart is traced; sim-time stamps only.
	counts := res.Trace.CountByComponent()
	if counts[obs.Chaos] != res.Crashes+res.Restarts {
		t.Errorf("chaos trace events = %d, want crashes+restarts = %d",
			counts[obs.Chaos], res.Crashes+res.Restarts)
	}
	end := cfg.Start.Add(cfg.Duration)
	for _, ev := range res.Trace.Events() {
		if ev.Time.Before(cfg.Start) || ev.Time.After(end) {
			t.Fatalf("event outside simulated time: %+v", ev)
		}
	}
}

// TestClusterObservedSmoke exercises the Observe path of the cluster
// emulation: the SmartOClock system must surface its control-plane series
// and the observation must not perturb the run's scientific results.
func TestClusterObservedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster emulation")
	}
	cfg := smokeClusterCfg(SysSmartOClock)
	plain, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observe = true
	observed, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if observed.Metrics == nil || observed.Trace == nil {
		t.Fatal("observed run returned no telemetry")
	}
	if plain.TotalEnergy != observed.TotalEnergy || plain.MeanInstances != observed.MeanInstances ||
		plain.CapEvents != observed.CapEvents || plain.OCRequests != observed.OCRequests {
		t.Errorf("observation changed results: %+v vs %+v", plain, observed)
	}
	snap := observed.Metrics
	// sOA admission books match the harness's request/rejection totals.
	if got := snap.SumByName("soa_requests_total"); got != float64(plain.OCRequests) {
		t.Errorf("soa_requests_total = %v, want %d", got, plain.OCRequests)
	}
	if got := snap.SumByName("soa_rejects_total"); got != float64(plain.OCRejections) {
		t.Errorf("soa_rejects_total = %v, want %d", got, plain.OCRejections)
	}
	// ClusterResult.CapEvents covers the main rack only, so compare the
	// labeled series rather than the sum across both racks.
	mainCaps := snap.Find("rack_cap_events_total",
		map[string]string{"rack": "rack-main", "system": SysSmartOClock.String()})
	if mainCaps == nil {
		t.Fatal("rack_cap_events_total{rack=rack-main} missing")
	}
	if mainCaps.Value != float64(plain.CapEvents) {
		t.Errorf("rack_cap_events_total = %v, want %d", mainCaps.Value, plain.CapEvents)
	}
	// Every series carries the system label (merge-safety across sweeps).
	for _, s := range snap.Series {
		if s.Labels["system"] != SysSmartOClock.String() {
			t.Fatalf("series %s missing system label: %v", s.Name, s.Labels)
		}
	}
}
