package experiment

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"smartoclock/internal/agent"
	"smartoclock/internal/alert"
	"smartoclock/internal/chaos"
	"smartoclock/internal/cluster"
	"smartoclock/internal/core"
	"smartoclock/internal/invariant"
	"smartoclock/internal/lifetime"
	"smartoclock/internal/machine"
	"smartoclock/internal/metrics"
	"smartoclock/internal/obs"
	"smartoclock/internal/power"
	"smartoclock/internal/predict"
	"smartoclock/internal/sim"
	"smartoclock/internal/stats"
	"smartoclock/internal/store"
	"smartoclock/internal/timeseries"
)

// ChaosConfig parameterizes the fault-injection experiment: a rack of
// sOA-managed servers whose control plane (profile reports, budget pushes,
// rack warning/cap notifications) runs over a lossy, delaying, duplicating
// transport, with a gOA outage window and sOA crash/restart faults on top.
// It reproduces the paper's gOA-unavailability ablation (§VI): when budgets
// go stale the sOAs must fall back to exploration/exploitation, and
// decentralized enforcement must keep every safety invariant intact.
type ChaosConfig struct {
	Seed     int64
	Start    time.Time
	Duration time.Duration
	// Tick is the control cadence: workload updates, sOA ticks, rack
	// manager ticks and invariant checks all run at this period.
	Tick    time.Duration
	Servers int
	HW      machine.Config

	// Message-level faults (see chaos.Config).
	DropProb  float64
	DupProb   float64
	DelayProb float64
	MaxDelay  time.Duration
	BaseDelay time.Duration

	// GOAOutageStart/GOAOutage define the gOA unavailability window as an
	// offset into the run: budget pushes stop and assignments go stale.
	GOAOutageStart time.Duration
	GOAOutage      time.Duration
	// SOACrashes is how many sOA crash/restart faults to inject; each
	// loses the agent's in-memory state (sessions, exploration surplus,
	// assigned budget) for up to MaxCrashDown. Per-core lifetime budgets
	// are durable, as production wear accounting would be.
	SOACrashes   int
	MaxCrashDown time.Duration
	// WarmRestart restores each crashed sOA from its last durable
	// checkpoint instead of rebuilding it cold, and CheckpointEvery is the
	// checkpoint cadence (mirrored onto the chaos.Plan). A longer cadence
	// means staler restored state. Ignored unless both are set.
	WarmRestart     bool
	CheckpointEvery time.Duration

	// Control-plane cadences.
	ProfileEvery time.Duration // sOA → gOA profile reports
	BudgetEvery  time.Duration // gOA → sOA budget pushes

	// BudgetEpoch/OCBudgetFraction set the per-core overclock time budget.
	BudgetEpoch      time.Duration
	OCBudgetFraction float64
	// RackLimitScale scales the rack limit relative to the estimated
	// baseline-plus-half-overclock draw (<1 makes warnings and caps part
	// of normal operation, which is the regime worth testing).
	RackLimitScale float64
	// EnforcementGrace is how long rack power may exceed the limit before
	// the invariant fires — the enforcement-latency window within which
	// warnings and prioritized capping must restore safety.
	EnforcementGrace time.Duration

	// RecordEvery samples the registry into per-interval time series at
	// this sim-time cadence; the recording also feeds the default alert
	// rules after the run. Zero disables recording (and alerting).
	RecordEvery time.Duration
	// TraceOnly restricts the event trace to these components; empty
	// records everything.
	TraceOnly []obs.Component
}

// DefaultChaosConfig returns the profile used by `socsim -chaos` and the
// chaos regression test: 25% message loss, delays up to 30 s, duplicates,
// a 1-hour gOA outage in the middle of a 3-hour run, and 6 sOA crashes.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Seed:             1,
		Start:            time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC),
		Duration:         3 * time.Hour,
		Tick:             5 * time.Second,
		Servers:          8,
		HW:               machine.DefaultConfig(),
		DropProb:         0.25,
		DupProb:          0.05,
		DelayProb:        0.20,
		MaxDelay:         30 * time.Second,
		BaseDelay:        50 * time.Millisecond,
		GOAOutageStart:   time.Hour,
		GOAOutage:        time.Hour,
		SOACrashes:       6,
		MaxCrashDown:     10 * time.Minute,
		ProfileEvery:     2 * time.Minute,
		BudgetEvery:      time.Minute,
		BudgetEpoch:      time.Hour,
		OCBudgetFraction: 0.25,
		RackLimitScale:   0.90,
		EnforcementGrace: 15 * time.Second,
		RecordEvery:      30 * time.Second,
	}
}

// Validate reports whether the configuration is runnable.
func (c ChaosConfig) Validate() error {
	switch {
	case c.Tick <= 0 || c.Duration < c.Tick:
		return fmt.Errorf("experiment: bad chaos tick/duration %v/%v", c.Tick, c.Duration)
	case c.Servers <= 0:
		return fmt.Errorf("experiment: chaos needs servers, got %d", c.Servers)
	case c.ProfileEvery <= 0 || c.BudgetEvery <= 0:
		return fmt.Errorf("experiment: non-positive control cadence")
	case c.BudgetEpoch <= 0 || c.OCBudgetFraction <= 0:
		return fmt.Errorf("experiment: bad OC budget %v/%v", c.BudgetEpoch, c.OCBudgetFraction)
	case c.EnforcementGrace < c.Tick:
		return fmt.Errorf("experiment: EnforcementGrace %v below one tick %v", c.EnforcementGrace, c.Tick)
	}
	return nil
}

// Control-plane payloads. They cross the faulty transport as JSON — the
// same encode/decode path the TCP transport uses — so chaos runs exercise
// real (de)serialization, not Go pointers.

type profileMsg struct {
	Server      string  `json:"server"`
	MedianWatts float64 `json:"median_watts"`
	Requested   float64 `json:"requested_cores"`
	Granted     float64 `json:"granted_cores"`
	CoreCost    float64 `json:"core_cost"`
}

type budgetMsg struct {
	Watts float64 `json:"watts"`
}

type rackEventMsg struct {
	Kind  int     `json:"kind"`
	Power float64 `json:"power"`
	Limit float64 `json:"limit"`
}

// ChaosResult aggregates one chaos run.
type ChaosResult struct {
	Ticks     int
	Transport chaos.Stats
	// CapEvents/Warnings from the rack manager — nonzero means
	// enforcement actually had work to do during the run.
	CapEvents int
	Warnings  int
	// Overclocking activity, to prove the run wasn't vacuously safe.
	Requests int
	Granted  int
	// Crashes injected and restarts completed within the run.
	Crashes  int
	Restarts int
	// Checkpoints taken and warm restores applied (warm-restart mode only;
	// a restart with no checkpoint yet falls back to a cold boot).
	Checkpoints  int
	WarmRestores int
	// StaleBudgetTicks counts (server, tick) pairs where the sOA ran on a
	// gOA assignment older than 2× the push cadence (or none at all) —
	// the stale-budget epochs the exploration fallback has to cover.
	StaleBudgetTicks int
	// InvariantChecks is how many checker passes ran; Violations is what
	// they found (empty on a healthy run).
	InvariantChecks int64
	Violations      []invariant.Violation
	// Err is non-nil when invariants were violated, naming every recorded
	// violation with its tick, rack and invariant.
	Err error
	// Metrics and Trace are the run's observability output: chaos runs are
	// single-shard, so the snapshot is the one registry frozen at the end
	// and the trace is already in emission order.
	Metrics *metrics.Snapshot
	Trace   *obs.Tracer
	// Series is the continuous recording (nil when RecordEvery is zero);
	// Alerts are the default risk rules evaluated over it after the run.
	Series *metrics.Recording
	Alerts []alert.Alert
}

// chaosServer bundles one server's durable and volatile control state.
type chaosServer struct {
	srv     *cluster.Server
	agentID string
	// budgets is durable (it survives sOA crashes, like NVRAM-backed wear
	// accounting would); soa is volatile and nil while crashed.
	budgets *lifetime.CoreBudgets
	soa     *core.SOA
	// lastBudgetAt is when the last gOA budget push was applied.
	lastBudgetAt time.Time
	hasBudget    bool
	requests     int
	granted      int
	// ckpt is the last encoded checkpoint envelope (warm-restart mode).
	ckpt []byte
}

// soaCheckpoint is the chaos rig's checkpoint payload: the agent snapshot
// plus the rig-level budget-freshness bookkeeping that must survive with it.
type soaCheckpoint struct {
	SOA          *core.SOAState `json:"soa"`
	HasBudget    bool           `json:"has_budget"`
	LastBudgetAt time.Time      `json:"last_budget_at"`
}

// RunChaos executes the fault-injection experiment.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine(cfg.Start, cfg.Seed)
	end := cfg.Start.Add(cfg.Duration)
	maxOC := cfg.HW.MaxOCMHz

	// --- Transport with fault injection -----------------------------------
	var outages []chaos.Window
	if cfg.GOAOutage > 0 {
		outages = append(outages, chaos.Window{
			Agent: "goa",
			From:  cfg.Start.Add(cfg.GOAOutageStart),
			To:    cfg.Start.Add(cfg.GOAOutageStart + cfg.GOAOutage),
		})
	}
	tr := chaos.NewTransport(chaos.Config{
		Seed:      cfg.Seed + 1,
		DropProb:  cfg.DropProb,
		DupProb:   cfg.DupProb,
		DelayProb: cfg.DelayProb,
		MaxDelay:  cfg.MaxDelay,
		BaseDelay: cfg.BaseDelay,
		Outages:   outages,
	}, eng, agent.NewBus())

	// Chaos runs are always observed: a single shard on the real
	// discrete-event engine, so telemetry costs nothing measurable and the
	// trace documents the fault story tick by tick.
	reg := metrics.NewRegistry()
	tracer := newShardTracer(cfg.TraceOnly)
	tr.Instrument(reg, tracer)
	var recorder *metrics.Recorder
	if cfg.RecordEvery > 0 {
		recorder = metrics.NewRecorder(reg, cfg.Start, cfg.RecordEvery)
	}

	// --- Servers and workload ---------------------------------------------
	// Each server hosts one latency-critical VM spanning half its cores;
	// overclock demand arrives in phase-shifted square waves (~45% duty),
	// deliberately exceeding the per-epoch overclock time budget so the
	// lifetime-exhaustion path runs too.
	servers := make([]*chaosServer, cfg.Servers)
	bcfg := lifetime.BudgetConfig{Epoch: cfg.BudgetEpoch, Fraction: cfg.OCBudgetFraction, CarryOver: true, MaxCarryOver: 1}
	for i := range servers {
		s := cluster.NewServer(fmt.Sprintf("ch-%02d", i), cfg.HW, 0)
		servers[i] = &chaosServer{
			srv:     s,
			agentID: "soa/" + s.Name(),
			budgets: lifetime.NewCoreBudgets(bcfg, s.NumCores(), cfg.Start),
		}
	}
	vmCores := make([]int, cfg.HW.Cores/2)
	for i := range vmCores {
		vmCores[i] = i
	}
	demandPeriod := 20 * time.Minute
	demandAt := func(i int, now time.Time) bool {
		phase := time.Duration(i) * demandPeriod / time.Duration(cfg.Servers)
		into := (now.Sub(cfg.Start) + phase) % demandPeriod
		return into < 9*time.Minute
	}
	utilRng := rand.New(rand.NewSource(cfg.Seed + 2))
	setUtil := func(i int, now time.Time) {
		cs := servers[i]
		base := 0.35 + 0.05*utilRng.Float64()
		hot := base
		if demandAt(i, now) {
			hot = 0.80 + 0.10*utilRng.Float64()
		}
		for c := 0; c < cs.srv.NumCores(); c++ {
			if c < len(vmCores) {
				cs.srv.SetCoreUtil(c, hot)
			} else {
				cs.srv.SetCoreUtil(c, base)
			}
		}
	}
	for i := range servers {
		setUtil(i, cfg.Start)
	}

	// --- Rack: headroom for some, not all, servers to overclock at once ---
	est := 0.0
	members := make([]power.Server, 0, cfg.Servers)
	for _, cs := range servers {
		est += cs.srv.Power()
		members = append(members, cs.srv)
	}
	fullOC := float64(cfg.Servers) * servers[0].srv.OCDeltaWatts(len(vmCores), maxOC, 0.9)
	limit := cfg.RackLimitScale * (est + 0.5*fullOC)
	rack := power.NewRack(power.DefaultRackConfig("rack-chaos", limit), members...)
	rack.Instrument(reg, tracer)
	for _, cs := range servers {
		cs.srv.Instrument(reg)
	}

	// --- gOA ---------------------------------------------------------------
	goa := core.NewGOA("rack-chaos", limit)
	goa.Instrument(reg, tracer)
	evenShare := limit / float64(cfg.Servers)

	// --- sOAs: volatile agents over durable budgets ------------------------
	soaCfg := core.DefaultSOAConfig()
	soaCfg.ProfileStep = time.Minute
	soaCfg.ExploreConfirm = 30 * time.Second
	soaCfg.ExploitTime = 5 * time.Minute
	soaCfg.InitialBackoff = time.Minute
	soaCfg.MaxBackoff = 15 * time.Minute
	soaCfg.DefaultOCHorizon = 5 * time.Minute
	soaCfg.ExhaustionWindow = 5 * time.Minute
	soaCfg.AdmissionUtil = 0.7

	res := &ChaosResult{}
	bootSOA := func(cs *chaosServer, now time.Time) {
		cs.soa = core.NewSOA(soaCfg, cs.srv, cs.budgets, evenShare, now)
		// Rebooted agents resolve the same series (registry identity is
		// name+labels), so counters accumulate across crash/restart cycles.
		cs.soa.Instrument(reg, tracer)
		cs.hasBudget = false
		tr.Register(cs.agentID, func(m agent.Message) {
			if cs.soa == nil {
				return // crashed in the same tick the message landed
			}
			switch m.Type {
			case "goa.budget":
				b, err := agent.Decode[budgetMsg](m)
				if err != nil || b.Watts <= 0 {
					return
				}
				cs.soa.SetStaticBudget(b.Watts, true)
				cs.lastBudgetAt = eng.Now()
				cs.hasBudget = true
			case "rack.event":
				ev, err := agent.Decode[rackEventMsg](m)
				if err != nil {
					return
				}
				cs.soa.OnRackEvent(eng.Now(), power.Event{
					Kind: power.EventKind(ev.Kind), Time: eng.Now(),
					Rack: "rack-chaos", Power: ev.Power, Limit: ev.Limit,
				})
			}
		})
	}
	for _, cs := range servers {
		bootSOA(cs, cfg.Start)
	}

	// --- Rack events travel the faulty transport ---------------------------
	// Capping itself is enforced in hardware (the rack manager throttles
	// directly); only the notifications to the sOAs are messages. A lost
	// warning means the sOA keeps exploring and gets capped again — safe
	// but slower, exactly the decentralized-enforcement story.
	// The event payload is identical for every recipient: encode it once and
	// fan the batch out in one transport call. The scratch slice is reused
	// across events — the rack fires at most one event per tick, and the
	// subscription runs on the single simulation goroutine.
	var rackEventBatch []agent.Message
	rack.Subscribe(func(ev power.Event) {
		payload, err := json.Marshal(rackEventMsg{Kind: int(ev.Kind), Power: ev.Power, Limit: ev.Limit})
		if err != nil {
			return
		}
		batch := rackEventBatch[:0]
		for _, cs := range servers {
			batch = append(batch, agent.Message{Type: "rack.event", From: "rack", To: cs.agentID, Payload: payload})
		}
		rackEventBatch = batch
		_ = agent.SendAll(tr, batch)
	})

	// --- gOA inbox ---------------------------------------------------------
	tr.Register("goa", func(m agent.Message) {
		if m.Type != "soa.profile" {
			return
		}
		p, err := agent.Decode[profileMsg](m)
		if err != nil {
			return
		}
		goa.SetProfile(p.Server, core.ServerProfile{
			Power: timeseries.FlatWeek(p.MedianWatts, time.Hour),
			OC: &predict.OCTemplate{
				Requested: timeseries.FlatWeek(p.Requested, time.Hour),
				Granted:   timeseries.FlatWeek(p.Granted, time.Hour),
			},
			OCCoreCost: p.CoreCost,
		})
	})

	// --- Crash/restart plan ------------------------------------------------
	agentNames := make([]string, len(servers))
	byAgent := make(map[string]*chaosServer, len(servers))
	for i, cs := range servers {
		agentNames[i] = cs.agentID
		byAgent[cs.agentID] = cs
	}
	plan := chaos.GenPlan(cfg.Seed+3, agentNames, cfg.Start.Add(5*time.Minute),
		cfg.Duration-15*time.Minute, cfg.SOACrashes, cfg.MaxCrashDown)
	plan.WarmRestart = cfg.WarmRestart
	plan.CheckpointEvery = cfg.CheckpointEvery
	if plan.WarmRestart && plan.CheckpointEvery > 0 {
		eng.Every(cfg.Start.Add(plan.CheckpointEvery), plan.CheckpointEvery, func(now time.Time) {
			for _, cs := range servers {
				if cs.soa == nil {
					continue // crashed agents keep their previous checkpoint
				}
				snap := cs.soa.Snapshot()
				// The lifetime ledger is durable in this rig (NVRAM-style,
				// it survives crashes on its own); restoring a stale copy
				// would roll back consumed wear, so it is excluded.
				snap.Budgets = nil
				data, err := store.Encode(now, &soaCheckpoint{
					SOA: snap, HasBudget: cs.hasBudget, LastBudgetAt: cs.lastBudgetAt,
				})
				if err == nil {
					cs.ckpt = data
					res.Checkpoints++
				}
			}
		})
	}
	plan.Schedule(eng, tr,
		func(name string) {
			cs := byAgent[name]
			if cs.soa == nil {
				return // already down (overlapping faults)
			}
			// The host watchdog fail-safes overclocking when its agent
			// dies: cores return to turbo, so an unsupervised server can
			// never burn budget or power it wouldn't be granted.
			for c := 0; c < cs.srv.NumCores(); c++ {
				cs.srv.SetDesiredFreq(c, cs.srv.TurboMHz())
			}
			cs.soa = nil
			res.Crashes++
		},
		func(name string) {
			cs := byAgent[name]
			if cs.soa != nil {
				return
			}
			bootSOA(cs, eng.Now())
			if plan.WarmRestart && cs.ckpt != nil {
				// Warm restart: restore the rebooted agent from its last
				// checkpoint. A decode/restore failure degrades to the cold
				// boot that already happened — never worse than cold.
				var ck soaCheckpoint
				if _, err := store.Decode(cs.ckpt, &ck); err == nil {
					if err := cs.soa.Restore(ck.SOA); err == nil {
						cs.hasBudget = ck.HasBudget
						cs.lastBudgetAt = ck.LastBudgetAt
						res.WarmRestores++
					}
				}
			}
			res.Restarts++
		})

	// --- Invariants --------------------------------------------------------
	checker := invariant.NewChecker()
	checker.Instrument(reg, tracer)
	invariant.RackPowerWithinLimit(checker, rack, cfg.EnforcementGrace)
	invariant.BudgetConservation(checker, goa, 1e-3)
	for _, cs := range servers {
		cs := cs
		invariant.CoreBudgetsNeverOverdrawn(checker, "rack-chaos", cs.srv, bcfg, cfg.Start, 12*cfg.Tick)
		invariant.SessionsWithinGrant(checker, "rack-chaos", cs.srv, func() *core.SOA { return cs.soa })
	}

	// --- Periodic control planes -------------------------------------------
	// sOA → gOA profile reports (staggered one tick apart per server).
	for i, cs := range servers {
		cs := cs
		eng.Every(cfg.Start.Add(cfg.ProfileEvery+time.Duration(i)*cfg.Tick), cfg.ProfileEvery, func(now time.Time) {
			if cs.soa == nil {
				return
			}
			window := lastSamples(cs.soa.PowerRecord().Values, 10)
			med := stats.Median(window)
			if len(window) == 0 {
				med = cs.srv.Power()
			}
			granted := float64(cs.soa.ActiveOCCores())
			requested := cs.soa.RecentRequestedCores(5)
			if granted > requested {
				requested = granted
			}
			payload := profileMsg{
				Server: cs.srv.Name(), MedianWatts: med,
				Requested: requested, Granted: granted,
				CoreCost: cs.srv.Machine().Config().OCCoreCost(),
			}
			if msg, err := agent.NewMessage("soa.profile", cs.agentID, "goa", payload); err == nil {
				_ = tr.Send(msg)
			}
		})
	}
	// gOA → sOA budget pushes. While the gOA is down it computes nothing.
	// The per-tick burst accumulates into a reused scratch batch and crosses
	// the transport in one call; the chaos transport draws its fault rng per
	// message in batch order, so results match unbatched sends byte for byte.
	var budgetBatch []agent.Message
	eng.Every(cfg.Start.Add(cfg.BudgetEvery), cfg.BudgetEvery, func(now time.Time) {
		if tr.Down("goa") {
			return
		}
		budgets := goa.BudgetsAt(now)
		batch := budgetBatch[:0]
		for _, cs := range servers {
			b, ok := budgets[cs.srv.Name()]
			if !ok || b <= 0 {
				continue
			}
			goa.TraceBroadcast(now, cs.srv.Name(), b)
			if msg, err := agent.NewMessage("goa.budget", "goa", cs.agentID, budgetMsg{Watts: b}); err == nil {
				batch = append(batch, msg)
			}
		}
		budgetBatch = batch
		_ = agent.SendAll(tr, batch)
	})

	// --- Main control tick -------------------------------------------------
	staleAfter := 2 * cfg.BudgetEvery
	eng.Every(cfg.Start.Add(cfg.Tick), cfg.Tick, func(now time.Time) {
		res.Ticks++
		for i, cs := range servers {
			setUtil(i, now)
			if cs.soa == nil {
				continue // crashed: nobody to ask, VM runs at turbo
			}
			want := demandAt(i, now)
			_, active := cs.soa.Sessions()["vm"]
			if want && !active {
				cs.requests++
				d := cs.soa.Request(now, core.Request{
					VM: "vm", Cores: len(vmCores), TargetMHz: maxOC,
					Priority: core.PriorityMetric, PreferredCores: vmCores,
				})
				if d.Granted {
					cs.granted++
				}
			} else if !want && active {
				cs.soa.Stop(now, "vm")
			}
			cs.soa.Tick(now)
			if !cs.hasBudget {
				if now.Sub(cfg.Start) > staleAfter {
					res.StaleBudgetTicks++
				}
			} else if now.Sub(cs.lastBudgetAt) > staleAfter {
				res.StaleBudgetTicks++
			}
		}
		for _, cs := range servers {
			cs.srv.Advance(cfg.Tick)
		}
		rack.Tick(now)
		checker.Check(now)
		// The callback fires at Start+k*Tick, so `now` is already the
		// tick's end boundary.
		if recorder != nil {
			recorder.Tick(now)
		}
	})

	eng.Run(end)

	// --- Aggregate ---------------------------------------------------------
	res.Transport = tr.Stats()
	res.CapEvents = rack.CapEvents()
	res.Warnings = rack.Warnings()
	for _, cs := range servers {
		res.Requests += cs.requests
		res.Granted += cs.granted
	}
	res.InvariantChecks = checker.Checks()
	res.Violations = checker.Violations()
	res.Err = checker.Err()
	res.Metrics = reg.Snapshot()
	res.Trace = tracer
	if recorder != nil {
		res.Series = recorder.Recording()
		res.Alerts = alert.Eval(res.Series, alert.DefaultRules(), tracer)
	}
	return res, nil
}

// Format renders the chaos run as a report table.
func (r *ChaosResult) Format() string {
	tbl := &Table{
		Caption: "Chaos: fault-injected SmartOClock run (gOA outage + lossy control plane)",
		Headers: []string{"Metric", "Value"},
	}
	tbl.AddRow("ticks", r.Ticks)
	tbl.AddRow("messages sent", r.Transport.Sent)
	tbl.AddRow("messages lost", fmt.Sprintf("%d (%.1f%%)", r.Transport.Dropped+r.Transport.Outage, 100*r.Transport.LossFraction()))
	tbl.AddRow("messages duplicated", r.Transport.Duplicated)
	tbl.AddRow("messages delayed", r.Transport.Delayed)
	tbl.AddRow("sOA crashes / restarts", fmt.Sprintf("%d / %d", r.Crashes, r.Restarts))
	if r.Checkpoints > 0 || r.WarmRestores > 0 {
		tbl.AddRow("checkpoints / warm restores", fmt.Sprintf("%d / %d", r.Checkpoints, r.WarmRestores))
	}
	tbl.AddRow("stale-budget server-ticks", r.StaleBudgetTicks)
	tbl.AddRow("oc requests (granted)", fmt.Sprintf("%d (%d)", r.Requests, r.Granted))
	tbl.AddRow("rack warnings / cap events", fmt.Sprintf("%d / %d", r.Warnings, r.CapEvents))
	tbl.AddRow("invariant checks", r.InvariantChecks)
	tbl.AddRow("invariant violations", len(r.Violations))
	tbl.AddRow("alerts fired", len(r.Alerts))
	return tbl.Format()
}
