package experiment

import (
	"fmt"
	"time"

	"smartoclock/internal/baselines"
	"smartoclock/internal/causal"
	"smartoclock/internal/core"
	"smartoclock/internal/lifetime"
	"smartoclock/internal/metrics"
	"smartoclock/internal/obs"
	"smartoclock/internal/parallel"
	"smartoclock/internal/power"
	"smartoclock/internal/predict"
	"smartoclock/internal/store"
	"smartoclock/internal/timeseries"
	"smartoclock/internal/trace"
)

// FleetSimConfig parameterizes the large-scale trace-driven simulation
// behind Table I (§V-B).
type FleetSimConfig struct {
	Seed          int64
	RacksPerClass int
	// TrainDays of trace feed the templates; EvalDays are simulated with
	// the agents running.
	TrainDays, EvalDays int
	// Step is the trace/simulation tick (the paper's traces are 5-minute).
	Step time.Duration
	// OCThreshold is the service utilization above which a VM's cores
	// demand overclocking.
	OCThreshold float64
	// OCBudgetFraction is the weekly per-core overclock time allowance.
	OCBudgetFraction float64

	// The remaining knobs exist for ablation studies; zero values select
	// the defaults used by Table I.

	// TemplateStrategy picks the predictor behind power templates:
	// "dailymed" (default), "dailymax", "flatmed", "flatmax" or "weekly".
	TemplateStrategy string
	// ExploreStepWatts overrides the sOA exploration increment.
	ExploreStepWatts float64
	// WarnFraction overrides the rack warning threshold.
	WarnFraction float64

	// CheckpointTick, when positive, checkpoints every rack's control plane
	// (gOA + all sOAs with their lifetime ledgers) at the start of that
	// evaluation tick, serializes it through the store envelope, tears the
	// live agents down and replaces them with fresh agents restored from the
	// decoded bytes. The run must be byte-identical to an uninterrupted one
	// — the roundtrip test uses this to prove checkpoint/restore is lossless
	// mid-run, at every worker count.
	CheckpointTick int

	// Workers bounds how many rack simulations run concurrently;
	// <= 0 selects GOMAXPROCS. Results are bit-identical for every
	// worker count: each rack shard is independent and per-shard results
	// are reduced in shard-index order, never completion order.
	Workers int
	// ShuffleShards, when nonzero, dispatches rack shards in a seeded
	// random order instead of ascending index order. Output must not
	// change; the determinism and race tests set it to prove that.
	ShuffleShards int64

	// MaterializeFleet forces the pre-streaming behavior: every per-class
	// fleet is generated eagerly up front and shards borrow the
	// materialized racks, making memory O(fleet) instead of O(active
	// shards). Results are byte-identical to the default streamed path —
	// each rack is a pure function of (seed, index) — and the equivalence
	// suite runs both to prove it. Only tests should set this.
	MaterializeFleet bool

	// Observe enables the observability layer: every shard runs with its
	// own metrics registry and event tracer, merged in shard-index order so
	// the combined snapshot and trace are byte-identical for any worker
	// count. Off by default — the uninstrumented hot path pays only nil
	// checks.
	Observe bool
	// RecordEvery, when positive and Observe is set, additionally samples
	// every shard's registry into per-interval time series at this sim-time
	// cadence. Shard recordings merge in shard-index order, so recorded
	// series are byte-identical across worker counts like snapshots are.
	RecordEvery time.Duration
	// TraceOnly restricts the event trace to these components (see
	// obs.NewFiltered); empty records everything.
	TraceOnly []obs.Component
}

// DefaultFleetSimConfig returns a configuration sized to finish in seconds
// while exercising every mechanism; scale RacksPerClass/EvalDays up on the
// CLI for tighter statistics.
func DefaultFleetSimConfig() FleetSimConfig {
	return FleetSimConfig{
		Seed:             1,
		RacksPerClass:    6,
		TrainDays:        7,
		EvalDays:         5,
		Step:             5 * time.Minute,
		OCThreshold:      0.55,
		OCBudgetFraction: 0.25,
	}
}

// fleetStart is a Monday at midnight: training week is Mon-Sun, evaluation
// starts the following Monday.
var fleetStart = time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)

// traceHost replays a server's baseline power trace and adds the modeled
// overclock power of whatever frequencies the agents set. It implements
// core.Host for the sOA and power.Server for the rack manager, exactly as
// the paper's simulator does: "Models are used to estimate the power impact
// of overclocking; CPU utilization and core frequency are the input."
type traceHost struct {
	name        string
	turbo       int
	maxOC       int
	stepMHz     int
	minMHz      int
	cores       int
	ocCoreCost  float64
	desired     []int
	capLevel    int
	basePower   float64 // current baseline (trace) watts
	util        float64 // current mean utilization
	capPriority int
}

func newTraceHost(st *trace.ServerTrace, capPriority int) *traceHost {
	hw := st.Spec.HW
	h := &traceHost{
		name:        st.Spec.Name,
		turbo:       hw.TurboMHz,
		maxOC:       hw.MaxOCMHz,
		stepMHz:     hw.StepMHz,
		minMHz:      hw.MinMHz,
		cores:       hw.Cores,
		ocCoreCost:  hw.OCCoreCost(),
		desired:     make([]int, hw.Cores),
		capPriority: capPriority,
	}
	for i := range h.desired {
		h.desired[i] = h.turbo
	}
	return h
}

func (h *traceHost) setTick(baseWatts, util float64) {
	h.basePower = baseWatts
	h.util = util
}

// core.Host.

func (h *traceHost) Name() string              { return h.name }
func (h *traceHost) NumCores() int             { return h.cores }
func (h *traceHost) TurboMHz() int             { return h.turbo }
func (h *traceHost) MaxOCMHz() int             { return h.maxOC }
func (h *traceHost) StepMHz() int              { return h.stepMHz }
func (h *traceHost) CoreUtil(core int) float64 { return h.util }

func (h *traceHost) SetDesiredFreq(core, mhz int) {
	if mhz < h.minMHz {
		mhz = h.minMHz
	}
	if mhz > h.maxOC {
		mhz = h.maxOC
	}
	h.desired[core] = mhz - mhz%h.stepMHz
}

func (h *traceHost) DesiredFreq(core int) int { return h.desired[core] }

func (h *traceHost) capCeiling() int {
	c := h.maxOC - h.capLevel*h.stepMHz
	if c < h.minMHz {
		c = h.minMHz
	}
	return c
}

func (h *traceHost) effectiveFreq(core int) int {
	f := h.desired[core]
	if c := h.capCeiling(); f > c {
		f = c
	}
	return f
}

// ocFraction returns how far into the overclock range a frequency sits.
func (h *traceHost) ocFraction(freq int) float64 {
	if freq <= h.turbo {
		return 0
	}
	return float64(freq-h.turbo) / float64(h.maxOC-h.turbo)
}

// Power models the server draw: the baseline trace scaled down when capped
// below turbo, plus per-core overclock power scaled by utilization.
func (h *traceHost) Power() float64 {
	ceil := h.capCeiling()
	base := h.basePower
	if ceil < h.turbo {
		base *= float64(ceil) / float64(h.turbo)
	}
	uf := h.util
	if uf < 0.3 {
		uf = 0.3 // static overclock cost never vanishes
	}
	oc := 0.0
	for _, f := range h.desired {
		if f > h.turbo {
			eff := f
			if eff > ceil {
				eff = ceil
			}
			oc += h.ocCoreCost * h.ocFraction(eff) * uf
		}
	}
	return base + oc
}

func (h *traceHost) OCDeltaWatts(cores, mhz int, util float64) float64 {
	if mhz > h.maxOC {
		mhz = h.maxOC
	}
	if util < 0.3 {
		util = 0.3
	}
	return float64(cores) * h.ocCoreCost * h.ocFraction(mhz) * util
}

// power.Server.

func (h *traceHost) CapPriority() int { return h.capPriority }
func (h *traceHost) CapLevel() int    { return h.capLevel }

// MaxCapLevel rounds up so the deepest level reaches MinMHz even when the
// MaxOC→Min range is not a whole number of steps (see cluster.Server).
func (h *traceHost) MaxCapLevel() int { return (h.maxOC - h.minMHz + h.stepMHz - 1) / h.stepMHz }

func (h *traceHost) ForceCap(level int) {
	if level < 0 {
		level = 0
	}
	if max := h.MaxCapLevel(); level > max {
		level = max
	}
	h.capLevel = level
}

// meanFreqRatio returns the mean effective frequency across cores relative
// to turbo — the per-server performance metric of Table I.
func (h *traceHost) meanFreqRatio() float64 {
	sum := 0.0
	for i := range h.desired {
		sum += float64(h.effectiveFreq(i))
	}
	return sum / float64(h.cores) / float64(h.turbo)
}

// hasOC reports whether any core is requested beyond turbo.
func (h *traceHost) hasOC() bool {
	for _, f := range h.desired {
		if f > h.turbo {
			return true
		}
	}
	return false
}

// sessionEffectiveRatio returns the mean effective (post-cap) frequency of
// a session's cores relative to turbo.
func sessionEffectiveRatio(h *traceHost, s *core.Session) float64 {
	if len(s.Cores) == 0 {
		return 1
	}
	sum := 0.0
	for _, c := range s.Cores {
		sum += float64(h.effectiveFreq(c))
	}
	return sum / float64(len(s.Cores)) / float64(h.turbo)
}

// Table1Row is one (system, class) cell set of Table I.
type Table1Row struct {
	System      baselines.System
	Class       trace.ClusterClass
	CapEvents   int
	NormCaps    float64 // capping events normalized to Central
	SuccessPct  float64 // successful overclocking request-ticks
	PenaltyPct  float64 // mean frequency reduction of non-OC servers during caps
	NormPerf    float64 // mean frequency ratio vs turbo baseline
	Requests    int
	RacksTested int
}

// demandSeries precomputes, per server, the number of cores demanding
// overclocking at each evaluation tick: the user-facing VMs whose service
// utilization exceeds the threshold.
func demandSeries(st *trace.ServerTrace, cfg FleetSimConfig, evalStart time.Time, ticks int) []int {
	return fillDemand(make([]int, ticks), st, cfg, evalStart)
}

// fillDemand is demandSeries into a caller-owned buffer (len(out) ticks),
// so shards can carve per-server demand out of one arena allocation.
func fillDemand(out []int, st *trace.ServerTrace, cfg FleetSimConfig, start time.Time) []int {
	for t := range out {
		ts := start.Add(time.Duration(t) * cfg.Step)
		demand := 0
		for _, vm := range st.Spec.VMs {
			switch vm.Service.Pattern {
			case trace.PatternSpiky, trace.PatternBroadPeak, trace.PatternDiurnal:
				if vm.Service.UtilAt(ts, nil) >= cfg.OCThreshold {
					demand += vm.Cores
				}
			}
		}
		if demand > st.Spec.HW.Cores {
			demand = st.Spec.HW.Cores
		}
		out[t] = demand
	}
	return out
}

// predictorFor returns a fresh predictor for the configured strategy.
func predictorFor(strategy string) predict.Predictor {
	switch strategy {
	case "", "dailymed":
		return predict.NewDailyMed()
	case "dailymax":
		return predict.NewDailyMax()
	case "flatmed":
		return &predict.FlatMed{}
	case "flatmax":
		return &predict.FlatMax{}
	case "weekly":
		return &predict.Weekly{}
	default:
		return predict.NewDailyMed()
	}
}

// templateFromPredictor fits p on train and materializes it as a week
// template at the training series' step, so any predictor can drive the
// template-shaped agent interfaces.
func templateFromPredictor(p predict.Predictor, train *timeseries.Series) *timeseries.WeekTemplate {
	p.Fit(train)
	step := train.Step
	slots := int(24 * time.Hour / step)
	if slots < 1 {
		slots = 1
	}
	mk := func(ref time.Time, kind timeseries.DayKind) *timeseries.DayTemplate {
		t := &timeseries.DayTemplate{Step: step, Kind: kind, Slots: make([]float64, slots)}
		for i := range t.Slots {
			t.Slots[i] = p.Predict(ref.Add(time.Duration(i) * step))
		}
		return t
	}
	// Reference instants in the week immediately after training (what the
	// templates will be queried for).
	monday := train.End()
	for monday.Weekday() != time.Monday {
		monday = monday.Add(24 * time.Hour)
	}
	saturday := monday.Add(5 * 24 * time.Hour)
	return &timeseries.WeekTemplate{
		Weekday: mk(monday, timeseries.Weekdays),
		Weekend: mk(saturday, timeseries.Weekends),
	}
}

// rackMetrics is one rack's contribution to the Table I aggregates. Racks
// are simulated concurrently, so each shard returns its own rackMetrics and
// the caller folds them in shard-index order (see accumulate) — float sums
// stay bit-identical for any worker count.
type rackMetrics struct {
	caps, requests, successes int
	penaltySum                float64
	penaltyN                  int
	perfSum                   float64
	perfN                     int
}

// accumulate folds other into m. Callers must invoke it in a fixed shard
// order: float addition is not associative, and completion-order folding
// would make results depend on scheduling.
func (m *rackMetrics) accumulate(other rackMetrics) {
	m.caps += other.caps
	m.requests += other.requests
	m.successes += other.successes
	m.penaltySum += other.penaltySum
	m.penaltyN += other.penaltyN
	m.perfSum += other.perfSum
	m.perfN += other.perfN
}

// FleetObservation bundles the telemetry of an observed fleet run: the
// merged metrics snapshot, the concatenated event trace and — when
// recording was enabled — the merged per-interval time series. All three
// are byte-deterministic for a given seed regardless of worker count.
type FleetObservation struct {
	Metrics *metrics.Snapshot
	Trace   *obs.Tracer
	// Series holds the recorded time series; nil unless RecordEvery was set.
	Series *metrics.Recording
	// Provenance is the fleet-wide causal decision log, shard logs
	// concatenated in shard-index order.
	Provenance *causal.Log
	// CriticalPath summarizes the provenance log: longest causal chain,
	// decisions and messages per tick (the tick critical-path profile).
	CriticalPath causal.Stats
}

// newShardTracer builds the tracer for one observed shard, honoring the
// config's component filter.
func newShardTracer(only []obs.Component) *obs.Tracer {
	if len(only) > 0 {
		return obs.NewFiltered(only...)
	}
	return obs.New()
}

// rackRun simulates one rack under one system for the evaluation window
// and returns its metric contributions. It is a pure function of its
// arguments — no shared state, no random draws — which is what makes the
// rack the unit of parallel sharding.
func rackRun(rt *trace.RackTrace, sys baselines.System, cfg FleetSimConfig) rackMetrics {
	m, _, _, _, _ := rackRunObserved(rt, sys, cfg, "", 0)
	return m
}

// rackRunObserved is rackRun plus per-shard telemetry: when cfg.Observe is
// set the rack, gOA and every sOA are instrumented against a shard-local
// registry and tracer (single-goroutine, like the shard itself) whose
// snapshot the caller merges in shard-index order. class labels the shard's
// cluster class — rack names repeat across the per-class mini-fleets, so
// class+system+rack is the unique series identity.
// shard is the shard's fixed matrix index, which (with the root seed)
// derives the shard-local provenance recorder so span IDs never depend on
// dispatch order.
func rackRunObserved(rt *trace.RackTrace, sys baselines.System, cfg FleetSimConfig, class string, shard int) (rackMetrics, *metrics.Snapshot, *obs.Tracer, *metrics.Recording, *causal.Log) {
	var requests, successes, penaltyN, perfN int
	var penaltySum, perfSum float64
	var reg *metrics.Registry
	var tracer *obs.Tracer
	var prov *causal.Recorder
	var shardLabels []metrics.Label
	if cfg.Observe {
		reg = metrics.NewRegistry()
		tracer = newShardTracer(cfg.TraceOnly)
		prov = causal.NewRecorder(parallel.ChildSeed(cfg.Seed, uint64(shard)), 1)
		shardLabels = []metrics.Label{
			metrics.L("class", class),
			metrics.L("system", sys.String()),
		}
	}
	evalStart := fleetStart.Add(time.Duration(cfg.TrainDays) * 24 * time.Hour)
	ticks := cfg.EvalDays * int(24*time.Hour/cfg.Step)
	var recorder *metrics.Recorder
	if reg != nil && cfg.RecordEvery > 0 {
		recorder = metrics.NewRecorder(reg, evalStart, cfg.RecordEvery)
	}

	// Build hosts, templates and demand.
	hosts := make([]*traceHost, len(rt.Servers))
	demands := make([][]int, len(rt.Servers))
	soas := make([]*core.SOA, len(rt.Servers))

	rackCfg := power.DefaultRackConfig(rt.Name, rt.LimitWatts)
	if cfg.WarnFraction > 0 {
		rackCfg.WarnFraction = cfg.WarnFraction
		if rackCfg.RestoreFraction > cfg.WarnFraction {
			rackCfg.RestoreFraction = cfg.WarnFraction - 0.03
		}
	}
	// One arena allocation backs every server's demand series: the shard
	// makes 1 slice instead of len(Servers), and the whole block frees at
	// once when the shard ends.
	demandArena := make([]int, len(rt.Servers)*ticks)
	servers := make([]power.Server, 0, len(rt.Servers))
	for i, st := range rt.Servers {
		hosts[i] = newTraceHost(st, 0)
		servers = append(servers, hosts[i])
		demands[i] = fillDemand(demandArena[i*ticks:(i+1)*ticks:(i+1)*ticks], st, cfg, evalStart)
	}
	rack := power.NewRack(rackCfg, servers...)
	rack.AttachProvenance(prov)
	if reg != nil {
		rack.Instrument(reg, tracer, shardLabels...)
	}

	// Global Overclocking Agent: training-week templates per server.
	goa := core.NewGOA(rt.Name, rt.LimitWatts)
	goa.AttachProvenance(prov)
	if reg != nil {
		goa.Instrument(reg, tracer, shardLabels...)
	}
	trainEnd := evalStart
	// Training demand is consumed immediately per server, so one scratch
	// buffer serves every server in turn.
	trainScratch := make([]int, cfg.TrainDays*int(24*time.Hour/cfg.Step))
	for i, st := range rt.Servers {
		train := st.Power.Slice(fleetStart, trainEnd)
		powerTpl := templateFromPredictor(predictorFor(cfg.TemplateStrategy), train)
		// Overclock template from the training week's demand (granted = 0
		// during training: the baseline trace has no overclocking).
		rec := predict.NewOCRecorder(fleetStart, cfg.Step)
		trainDemand := fillDemand(trainScratch, st, cfg, fleetStart)
		for _, d := range trainDemand {
			rec.Record(d, 0)
		}
		goa.SetProfile(st.Spec.Name, core.ServerProfile{
			Power:      powerTpl,
			OC:         rec.Template(),
			OCCoreCost: st.Spec.HW.OCCoreCost(),
		})
		_ = i
	}
	budgetTpls := goa.BudgetTemplates(cfg.Step)

	// Server Overclocking Agents.
	soaBase := core.DefaultSOAConfig()
	soaBase.ProfileStep = cfg.Step
	soaBase.ExploreConfirm = cfg.Step
	soaBase.ExploitTime = 6 * cfg.Step
	soaBase.InitialBackoff = cfg.Step
	soaBase.MaxBackoff = 12 * cfg.Step
	// One tick stands for ~10 of the paper's 30-second exploration rounds,
	// so each bump is correspondingly larger.
	soaBase.ExploreStepWatts = 40
	if cfg.ExploreStepWatts > 0 {
		soaBase.ExploreStepWatts = cfg.ExploreStepWatts
	}
	if cfg.ExploreStepWatts < 0 {
		soaBase.ExploreStepWatts = 0
		soaBase.NoExplore = true
	}
	soaBase.DefaultOCHorizon = 15 * time.Minute
	soaBase.AdmissionUtil = 0.7
	soaBase.BufferWatts = 15

	oracle := func(extra float64) bool {
		return rack.Power()+extra <= rt.LimitWatts
	}
	bcfg := lifetime.BudgetConfig{
		Epoch: 7 * 24 * time.Hour, Fraction: cfg.OCBudgetFraction,
		CarryOver: true, MaxCarryOver: 1,
	}
	// buildSOA constructs server i's agent from configuration alone — the
	// same recipe whether it is the initial boot or a post-checkpoint
	// rebuild. Config is code, state is data: closures (the oracle), host
	// bindings and cadences come from here; learned state comes from
	// SetAssignedBudget/SetPowerTemplate at boot or Restore after a
	// checkpoint.
	buildSOA := func(i int) *core.SOA {
		st := rt.Servers[i]
		scfg := baselines.SOAConfig(sys, soaBase, oracle)
		budgets := lifetime.NewCoreBudgets(bcfg, st.Spec.HW.Cores, evalStart)
		even := rt.LimitWatts / float64(len(rt.Servers))
		if sys == baselines.Central {
			// The oracle performs all admission; no local budget
			// enforcement should second-guess it.
			even = 1e9
		}
		return core.NewSOA(scfg, hosts[i], budgets, even, evalStart)
	}
	// instrumentSOA binds an agent to the shard registry. Rebuilt agents
	// resolve the same series (identity is name+labels), so counters keep
	// accumulating across a checkpoint/restore cycle.
	instrumentSOA := func(a *core.SOA) {
		a.AttachProvenance(prov)
		if reg == nil {
			return
		}
		soaLabels := make([]metrics.Label, 0, len(shardLabels)+1)
		soaLabels = append(soaLabels, shardLabels...)
		soaLabels = append(soaLabels, metrics.L("rack", rt.Name))
		a.Instrument(reg, tracer, soaLabels...)
	}
	for i, st := range rt.Servers {
		soas[i] = buildSOA(i)
		switch sys {
		case baselines.NaiveOClock, baselines.Central:
			// Even share; Central admits via the oracle anyway.
		default:
			soas[i].SetAssignedBudget(budgetTpls[st.Spec.Name])
		}
		train := st.Power.Slice(fleetStart, trainEnd)
		soas[i].SetPowerTemplate(templateFromPredictor(predictorFor(cfg.TemplateStrategy), train))
		instrumentSOA(soas[i])
	}

	// Rack events feed every sOA; caps are counted by the rack itself.
	var now time.Time
	rack.Subscribe(func(ev power.Event) {
		for _, a := range soas {
			a.OnRackEvent(now, ev)
		}
	})

	trainOffset := cfg.TrainDays * int(24*time.Hour/cfg.Step)
	for t := 0; t < ticks; t++ {
		now = evalStart.Add(time.Duration(t) * cfg.Step)
		// 0. Optional mid-run checkpoint/restore cycle: snapshot the whole
		// control plane, push it through the serialized envelope, and swap
		// in fresh agents restored from the decoded bytes. The remainder of
		// the run must be indistinguishable from never having restarted.
		if cfg.CheckpointTick > 0 && t == cfg.CheckpointTick {
			cp := &store.Checkpoint{GOA: goa.Snapshot(), SOAs: make(map[string]*core.SOAState, len(rt.Servers))}
			for i, st := range rt.Servers {
				cp.SOAs[st.Spec.Name] = soas[i].Snapshot()
			}
			data, err := store.Encode(now, cp)
			var got store.Checkpoint
			if err == nil {
				_, err = store.Decode(data, &got)
			}
			if err == nil {
				g := core.NewGOA(rt.Name, rt.LimitWatts)
				g.Restore(got.GOA)
				g.AttachProvenance(prov)
				if reg != nil {
					g.Instrument(reg, tracer, shardLabels...)
				}
				goa = g
				for i, st := range rt.Servers {
					a := buildSOA(i)
					if rerr := a.Restore(got.SOAs[st.Spec.Name]); rerr != nil {
						err = rerr
						break
					}
					instrumentSOA(a)
					soas[i] = a
				}
			}
			if err != nil {
				// A checkpoint that cannot roundtrip is a store-layer bug,
				// not a simulation outcome — fail loudly.
				panic(fmt.Sprintf("experiment: fleet checkpoint roundtrip at tick %d: %v", t, err))
			}
		}
		// 1. Update baselines from the trace.
		for i, st := range rt.Servers {
			idx := trainOffset + t
			if idx >= st.Power.Len() {
				idx = st.Power.Len() - 1
			}
			hosts[i].setTick(st.Power.Values[idx], st.Util.Values[idx])
		}
		// 2. Demand changes → session management + admission. Unmet
		// demand retries every tick (the WI agent keeps asking), which
		// is also what drives the sOA's exploration.
		for i := range rt.Servers {
			d := demands[i][t]
			sessions := soas[i].Sessions()
			_, active := sessions["oc"]
			prev := 0
			if active {
				prev = len(sessions["oc"].Cores)
			}
			if d != prev {
				if active {
					soas[i].Stop(now, "oc")
				}
				if d > 0 {
					req := core.Request{
						VM: "oc", Cores: d, TargetMHz: hosts[i].maxOC,
						Priority: core.PriorityMetric,
					}
					// The demand signal plays the WI: its span roots the
					// admission chain for this request.
					req.Span = uint64(prov.Emit(causal.Record{
						Time:      now,
						Kind:      causal.KindMessage,
						Component: "wi",
						Site:      "wi.request",
						Subject:   hosts[i].name + "/oc",
					}))
					soas[i].Request(now, req)
				}
			}
			if d > 0 {
				requests++
				s, ok := soas[i].Sessions()["oc"]
				if ok && sessionEffectiveRatio(hosts[i], s) > 1 {
					successes++
				}
			}
		}
		// 3. sOA control loops.
		for _, a := range soas {
			a.Tick(now)
		}
		// 4. Rack manager: warnings, caps, restores.
		capsBefore := rack.CapEvents()
		rack.Tick(now)
		capped := rack.CapEvents() > capsBefore
		// 5. Metrics. Performance is measured over the overclock-candidate
		// VMs: their effective frequency relative to turbo, including any
		// capping penalty. The capping penalty itself is measured on the
		// servers with no overclock demand.
		for i := range hosts {
			if demands[i][t] > 0 {
				if s, ok := soas[i].Sessions()["oc"]; ok {
					perfSum += sessionEffectiveRatio(hosts[i], s)
				} else {
					ceil := hosts[i].capCeiling()
					if ceil > hosts[i].turbo {
						ceil = hosts[i].turbo
					}
					perfSum += float64(ceil) / float64(hosts[i].turbo)
				}
				perfN++
			} else if capped && !hosts[i].hasOC() {
				ceil := hosts[i].capCeiling()
				if ceil < hosts[i].turbo {
					penaltySum += 1 - float64(ceil)/float64(hosts[i].turbo)
					penaltyN++
				}
			}
		}
		// 6. Telemetry recording at the end of the tick: the sampled state
		// covers everything up to the tick's end boundary.
		if recorder != nil {
			recorder.Tick(now.Add(cfg.Step))
		}
	}
	m := rackMetrics{
		caps: rack.CapEvents(), requests: requests, successes: successes,
		penaltySum: penaltySum, penaltyN: penaltyN,
		perfSum: perfSum, perfN: perfN,
	}
	if reg == nil {
		return m, nil, nil, nil, nil
	}
	// Critical-path and fan-out profile of the shard's causal log, plus the
	// tracer's drop counter, become ordinary (sum-mergeable) series.
	log := &causal.Log{Records: prov.Records()}
	log.Register(reg, shardLabels...)
	reg.Counter("trace_dropped_total", shardLabels...).Add(float64(tracer.Dropped()))
	var recording *metrics.Recording
	if recorder != nil {
		recording = recorder.Recording()
	}
	return m, reg.Snapshot(), tracer, recording, log
}

// fleetOpts returns the parallel scheduling options for a fleet sim config.
func fleetOpts(cfg FleetSimConfig) parallel.Options {
	return parallel.Options{Workers: cfg.Workers, ShuffleSeed: cfg.ShuffleShards}
}

// table1Shard is one unit of parallel work in RunTable1: a single rack
// simulated under a single system. The shard carries the recipe for its
// rack (fleet config + index), not the rack itself: the worker generates
// the trace on entry and drops it on exit, so a paper-scale fleet holds
// O(workers) rack traces in memory instead of O(fleet). rack is non-nil
// only when cfg.MaterializeFleet pre-generated the fleet.
type table1Shard struct {
	class trace.ClusterClass
	sys   baselines.System
	fcfg  trace.FleetConfig
	// rackIdx is the rack's index within its per-class mini-fleet.
	rackIdx int
	rack    *trace.RackTrace
	// cell indexes the (class, system) aggregate the shard contributes to.
	cell int
}

// table1FleetConfig builds the per-class mini-fleet config for class index
// ci. Each class gets its own seed stream and a single-class mix, so exact
// class coverage is guaranteed at any scale.
func table1FleetConfig(cfg FleetSimConfig, class trace.ClusterClass, ci int) trace.FleetConfig {
	days := cfg.TrainDays + cfg.EvalDays
	fcfg := trace.DefaultFleetConfig(fleetStart, time.Duration(days)*24*time.Hour)
	fcfg.Seed = cfg.Seed + int64(ci)
	fcfg.Regions = []string{"SimRegion"}
	fcfg.RacksPerRegion = cfg.RacksPerClass
	fcfg.Step = cfg.Step
	fcfg.ClassMix = map[trace.ClusterClass]float64{class: 1}
	fcfg.Workers = cfg.Workers
	return fcfg
}

// shardRack returns the shard's rack trace: the materialized one when the
// fleet was pre-generated, otherwise generated on demand from the shard's
// (config, index) recipe — byte-identical either way, since a rack is a
// pure function of its seed and position.
func (s *table1Shard) shardRack() (*trace.RackTrace, error) {
	if s.rack != nil {
		return s.rack, nil
	}
	fr, err := trace.GenFleetRack(s.fcfg, s.rackIdx)
	if err != nil {
		return nil, err
	}
	if fr.Class != s.class {
		// Single-class mixes always draw their class; anything else means
		// the shard recipe and the generator disagree.
		return nil, fmt.Errorf("experiment: rack %d drew class %v, want %v", s.rackIdx, fr.Class, s.class)
	}
	return fr.RackTrace, nil
}

// RunTable1 reproduces Table I: five systems across the three power
// classes. Every (rack, system) pair is an independent shard fanned out
// across cfg.Workers goroutines; shard results are folded in shard-index
// order so the table is bit-identical to the serial sweep.
func RunTable1(cfg FleetSimConfig) (*Table, []Table1Row, error) {
	tbl, rows, _, err := runTable1(cfg)
	return tbl, rows, err
}

// RunTable1Observed is RunTable1 with the observability layer on: it
// additionally returns the fleet-wide metrics snapshot and event trace,
// merged across shards in shard-index order.
func RunTable1Observed(cfg FleetSimConfig) (*Table, []Table1Row, *FleetObservation, error) {
	cfg.Observe = true
	return runTable1(cfg)
}

func runTable1(cfg FleetSimConfig) (*Table, []Table1Row, *FleetObservation, error) {
	classes := []trace.ClusterClass{trace.HighPower, trace.MediumPower, trace.LowPower}
	systems := baselines.All()

	// Flatten every (class, system, rack) triple into the shard list. Each
	// per-class mini-fleet has a single-class mix, so it guarantees exact
	// class coverage at any scale. By default no trace is generated here:
	// shards stream their racks inside the worker (memory O(active
	// shards)); MaterializeFleet pre-generates everything for the
	// streamed-vs-materialized equivalence suite.
	var shards []table1Shard
	racksPerClass := make([]int, len(classes))
	for ci, class := range classes {
		fcfg := table1FleetConfig(cfg, class, ci)
		racksPerClass[ci] = fcfg.NumRacks()
		var racks []*trace.FleetRack
		if cfg.MaterializeFleet {
			fleet, err := trace.GenFleet(fcfg)
			if err != nil {
				return nil, nil, nil, err
			}
			racks = fleet.ByClass(class)
			if len(racks) != fcfg.NumRacks() {
				return nil, nil, nil, fmt.Errorf("experiment: class %v drew %d racks, want %d", class, len(racks), fcfg.NumRacks())
			}
		}
		for si, sys := range systems {
			for ri := 0; ri < fcfg.NumRacks(); ri++ {
				sh := table1Shard{
					class: class, sys: sys, fcfg: fcfg, rackIdx: ri,
					cell: ci*len(systems) + si,
				}
				if racks != nil {
					sh.rack = racks[ri].RackTrace
				}
				shards = append(shards, sh)
			}
		}
	}

	// Fan out. Each shard is pure; results land in index-addressed slots.
	type shardResult struct {
		m    rackMetrics
		snap *metrics.Snapshot
		tr   *obs.Tracer
		rec  *metrics.Recording
		prov *causal.Log
		err  error
	}
	results := parallel.Map(len(shards), fleetOpts(cfg), func(i int) shardResult {
		rt, err := shards[i].shardRack()
		if err != nil {
			return shardResult{err: err}
		}
		m, snap, tr, rec, prov := rackRunObserved(rt, shards[i].sys, cfg, shards[i].class.String(), i)
		return shardResult{m: m, snap: snap, tr: tr, rec: rec, prov: prov}
	})
	for _, r := range results {
		if r.err != nil {
			return nil, nil, nil, r.err
		}
	}

	// Reduce in shard order: shards are grouped by cell, so this fold
	// visits each cell's racks in generation order, exactly like the old
	// serial loop. Telemetry merges in the same order, which is what makes
	// the snapshot and trace byte-identical across worker counts.
	cells := make([]rackMetrics, len(classes)*len(systems))
	var observation *FleetObservation
	if cfg.Observe {
		snaps := make([]*metrics.Snapshot, len(results))
		tracers := make([]*obs.Tracer, len(results))
		recs := make([]*metrics.Recording, len(results))
		for i, r := range results {
			snaps[i] = r.snap
			tracers[i] = r.tr
			recs[i] = r.rec
		}
		total := 0
		for _, r := range results {
			if r.prov != nil {
				total += len(r.prov.Records)
			}
		}
		prov := &causal.Log{Records: make([]causal.Record, 0, total)}
		for _, r := range results {
			if r.prov != nil {
				prov.Records = append(prov.Records, r.prov.Records...)
			}
		}
		observation = &FleetObservation{
			Metrics:      metrics.Merge(snaps...),
			Trace:        obs.Concat(tracers...),
			Series:       metrics.MergeRecordings(recs...),
			Provenance:   prov,
			CriticalPath: prov.Stats(),
		}
	}
	for i, r := range results {
		cells[shards[i].cell].accumulate(r.m)
	}

	var rows []Table1Row
	for ci, class := range classes {
		centralCaps := 0
		classRows := make([]Table1Row, 0, len(systems))
		for si, sys := range systems {
			agg := cells[ci*len(systems)+si]
			row := Table1Row{System: sys, Class: class, CapEvents: agg.caps,
				Requests: agg.requests, RacksTested: racksPerClass[ci]}
			if agg.requests > 0 {
				row.SuccessPct = 100 * float64(agg.successes) / float64(agg.requests)
			}
			if agg.penaltyN > 0 {
				row.PenaltyPct = 100 * agg.penaltySum / float64(agg.penaltyN)
			}
			if agg.perfN > 0 {
				row.NormPerf = agg.perfSum / float64(agg.perfN)
			}
			if sys == baselines.Central {
				centralCaps = agg.caps
			}
			classRows = append(classRows, row)
		}
		denom := centralCaps
		if denom < 1 {
			denom = 1 // a capless oracle: report absolute counts
		}
		for i := range classRows {
			classRows[i].NormCaps = float64(classRows[i].CapEvents) / float64(denom)
		}
		rows = append(rows, classRows...)
	}

	tbl := &Table{
		Caption: "Table I: Comparison of SmartOClock to different baselines",
		Headers: []string{"Cluster", "System", "Norm.#PowerCaps", "SuccessfulOClockReqs", "PenaltyOnPowerCap", "Norm.Performance"},
	}
	for _, r := range rows {
		tbl.AddRow(r.Class.String(), r.System.String(),
			fmt.Sprintf("%.1f", r.NormCaps),
			fmt.Sprintf("%.0f%%", r.SuccessPct),
			fmt.Sprintf("%.0f%%", r.PenaltyPct),
			fmt.Sprintf("%.3f", r.NormPerf))
	}
	return tbl, rows, observation, nil
}
