package experiment

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"smartoclock/internal/baselines"
	"smartoclock/internal/trace"
	"smartoclock/internal/workload"
)

func TestTableFormatAndLookups(t *testing.T) {
	tbl := &Table{Caption: "cap", Headers: []string{"a", "b"}}
	tbl.AddRow("x", 1.5)
	tbl.AddRow("y", "str")
	out := tbl.Format()
	if !strings.Contains(out, "cap") || !strings.Contains(out, "1.500") {
		t.Fatalf("format output:\n%s", out)
	}
	if tbl.Cell(0, 1) != "1.500" || tbl.Cell(5, 0) != "" || tbl.Cell(0, 9) != "" {
		t.Fatal("Cell lookups wrong")
	}
	if row := tbl.FindRow("y"); row == nil || row[1] != "str" {
		t.Fatalf("FindRow = %v", row)
	}
	if tbl.FindRow("zz") != nil {
		t.Fatal("FindRow must miss")
	}
}

func TestFig1Shape(t *testing.T) {
	tbl := Fig1()
	if len(tbl.Rows) != 24 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Service A peaks 10am-noon: its 10:00/11:00 values must be the max.
	at := func(row, col int) float64 {
		v, err := strconv.ParseFloat(tbl.Cell(row, col), 64)
		if err != nil {
			t.Fatalf("cell %d,%d: %v", row, col, err)
		}
		return v
	}
	for h := 0; h < 24; h++ {
		if h == 10 || h == 11 {
			continue
		}
		if at(h, 1) >= at(10, 1) {
			t.Fatalf("Service A hour %d >= peak hour", h)
		}
	}
	// Services B/C have flat hourly means (spikes every hour).
	if at(3, 2) != at(15, 2) {
		t.Fatal("Service B hourly mean should be stationary")
	}
}

func TestFig2And3Shape(t *testing.T) {
	fig2, fig3 := Fig2And3()
	if len(fig2.Rows) != 24 || len(fig3.Rows) != 24 {
		t.Fatalf("rows = %d/%d", len(fig2.Rows), len(fig3.Rows))
	}
	countViolations := func(col int, load string) int {
		n := 0
		for _, row := range fig2.Rows {
			if row[1] == load && strings.HasSuffix(row[col], "*") {
				n++
			}
		}
		return n
	}
	// Baseline at high load violates most SLOs; ScaleOut violates none;
	// Overclock sits in between.
	base := countViolations(3, "High")
	oc := countViolations(4, "High")
	so := countViolations(5, "High")
	if base < 5 {
		t.Fatalf("baseline high violations = %d", base)
	}
	if oc >= base || so != 0 {
		t.Fatalf("violations base/oc/scaleout = %d/%d/%d", base, oc, so)
	}
	// Low load: no violations anywhere.
	if countViolations(3, "Low")+countViolations(4, "Low")+countViolations(5, "Low") != 0 {
		t.Fatal("low load must meet all SLOs")
	}
}

func TestFig4DeploymentGoal(t *testing.T) {
	tbl := Fig4()
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Both configurations meet the 50% deployment target: overclocking is
	// unnecessary at deployment level.
	for _, row := range tbl.Rows {
		if row[4] != "true" {
			t.Fatalf("deployment target missed in %v", row)
		}
	}
}

func TestFig5Monotone(t *testing.T) {
	tbl, err := Fig5(12, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Within each row: average <= ... and P99 >= P50.
	for _, row := range tbl.Rows {
		p50, _ := strconv.ParseFloat(row[2], 64)
		p99, _ := strconv.ParseFloat(row[3], 64)
		if p99 < p50 {
			t.Fatalf("row %v: P99 < P50", row)
		}
	}
}

func TestFig6OverLimitFraction(t *testing.T) {
	_, frac, err := Fig6(3)
	if err != nil {
		t.Fatal(err)
	}
	// Naive overclocking must exceed the limit some of the time on a
	// high-power rack, but not most of the time (paper: ~15%).
	if frac <= 0.01 || frac >= 0.5 {
		t.Fatalf("over-limit fraction = %v", frac)
	}
}

func TestFig7Ordering(t *testing.T) {
	tbl := Fig7()
	get := func(name string) float64 {
		row := tbl.FindRow(name)
		if row == nil {
			t.Fatalf("row %q missing", name)
		}
		v, _ := strconv.ParseFloat(row[1], 64)
		return v
	}
	nonOC := get("Non-overclocked")
	always := get("Always overclock")
	aware := get("Overclock-aware")
	if nonOC >= 2 {
		t.Fatalf("non-overclocked aged %v days, want < 2", nonOC)
	}
	if always <= 10 {
		t.Fatalf("always-overclock aged %v days, want > 10", always)
	}
	if aware > 5.5 || aware <= nonOC {
		t.Fatalf("overclock-aware aged %v days", aware)
	}
}

func TestFig8LowRMSE(t *testing.T) {
	tbl, err := Fig8(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		p99, _ := strconv.ParseFloat(row[3], 64)
		if p99 <= 0 || p99 > 100 {
			t.Fatalf("region %s P99 RMSE = %v W, want small", row[0], p99)
		}
	}
}

func TestFig9DominantChanges(t *testing.T) {
	tbl, err := Fig9(21)
	if err != nil {
		t.Fatal(err)
	}
	dominant := map[string]bool{}
	for _, row := range tbl.Rows {
		dominant[row[7]] = true
	}
	if len(dominant) < 2 {
		t.Fatalf("dominant server never changes: %v", dominant)
	}
}

func TestFig15DailyMedWins(t *testing.T) {
	tbl, err := Fig15(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	rmse := func(name string) float64 {
		row := tbl.FindRow(name)
		if row == nil {
			t.Fatalf("row %q missing", name)
		}
		v, _ := strconv.ParseFloat(row[4], 64)
		return v
	}
	dm := rmse("DailyMed")
	for _, other := range []string{"FlatMed", "FlatMax", "Weekly", "DailyMax"} {
		if rmse(other) < dm {
			t.Fatalf("DailyMed RMSE %v not best vs %s %v", dm, other, rmse(other))
		}
	}
	// FlatMax over-predicts: positive mean error at p10 already.
	row := tbl.FindRow("FlatMax")
	p10, _ := strconv.ParseFloat(row[1], 64)
	if p10 <= 0 {
		t.Fatalf("FlatMax p10 error = %v, want positive (over-prediction)", p10)
	}
}

func TestFig16Calibration(t *testing.T) {
	tbl := Fig16()
	row := tbl.FindRow("equal-util")
	if row == nil {
		t.Fatal("equal-util row missing")
	}
	if !strings.Contains(row[3], "+28% load") {
		t.Fatalf("equal-util row = %v", row)
	}
}

func TestFig17Reduction(t *testing.T) {
	_, red := Fig17()
	if red < 0.1 || red > 0.35 {
		t.Fatalf("peak reduction = %v, want ~0.16-0.25", red)
	}
}

// smokeFleetCfg returns the smallest fleet sim that exercises everything.
func smokeFleetCfg() FleetSimConfig {
	cfg := DefaultFleetSimConfig()
	cfg.RacksPerClass = 1
	cfg.EvalDays = 1
	return cfg
}

func TestTable1SmokeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulation")
	}
	tbl, rows, err := RunTable1(smokeFleetCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("rows = %d, want 5 systems x 3 classes", len(rows))
	}
	if len(tbl.Rows) != 15 {
		t.Fatalf("table rows = %d", len(tbl.Rows))
	}
	byKey := map[string]Table1Row{}
	for _, r := range rows {
		byKey[r.Class.String()+"/"+r.System.String()] = r
	}
	// Structural invariants that hold even at smoke scale:
	for _, class := range []trace.ClusterClass{trace.HighPower, trace.MediumPower, trace.LowPower} {
		naive := byKey[class.String()+"/"+baselines.NaiveOClock.String()]
		smart := byKey[class.String()+"/"+baselines.SmartOClock.String()]
		nofb := byKey[class.String()+"/"+baselines.NoFeedback.String()]
		if naive.Requests == 0 || smart.Requests == 0 {
			t.Fatalf("%s: no overclocking demand simulated", class)
		}
		if naive.SuccessPct < 1 {
			t.Fatalf("%s: naive success = %v", class, naive.SuccessPct)
		}
		if smart.SuccessPct < nofb.SuccessPct-1e-9 {
			t.Fatalf("%s: exploration must not reduce success: smart %v < nofeedback %v",
				class, smart.SuccessPct, nofb.SuccessPct)
		}
		if smart.NormPerf <= 1.0 {
			t.Fatalf("%s: SmartOClock perf %v, want above turbo baseline", class, smart.NormPerf)
		}
	}
	// High-power: naive causes at least as many caps as SmartOClock.
	naiveHi := byKey["High-Power/NaiveOClock"]
	smartHi := byKey["High-Power/SmartOClock"]
	if naiveHi.CapEvents < smartHi.CapEvents {
		t.Fatalf("high-power: naive caps %d < smart caps %d", naiveHi.CapEvents, smartHi.CapEvents)
	}
}

// smokeClusterCfg returns a small but complete cluster emulation config.
func smokeClusterCfg(sys ClusterSystem) ClusterConfig {
	cfg := DefaultClusterConfig(sys)
	cfg.Duration = 14 * time.Minute
	cfg.Warmup = 3 * time.Minute
	cfg.SocialNetServers = 9 // 4 low, 4 medium, 1 high
	cfg.MLServers = 4
	cfg.SpareServers = 4
	return cfg
}

func TestRunClusterBaseline(t *testing.T) {
	res, err := RunCluster(smokeClusterCfg(SysBaseline))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanInstances != 9 {
		t.Fatalf("baseline instances = %v, must stay at initial count", res.MeanInstances)
	}
	if res.TotalEnergy <= 0 || res.MLThroughput <= 0.9 {
		t.Fatalf("energy/throughput: %v/%v", res.TotalEnergy, res.MLThroughput)
	}
	if res.NormP99[workload.HighLoad] <= res.NormP99[workload.LowLoad] {
		t.Fatal("high load must have worse tails than low load")
	}
}

func TestRunClusterSmartBeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster emulation")
	}
	base, err := RunCluster(smokeClusterCfg(SysBaseline))
	if err != nil {
		t.Fatal(err)
	}
	smart, err := RunCluster(smokeClusterCfg(SysSmartOClock))
	if err != nil {
		t.Fatal(err)
	}
	bMiss := base.MissedSLO[workload.HighLoad] + base.MissedSLO[workload.MediumLoad]
	sMiss := smart.MissedSLO[workload.HighLoad] + smart.MissedSLO[workload.MediumLoad]
	if sMiss >= bMiss {
		t.Fatalf("SmartOClock misses %d >= baseline %d", sMiss, bMiss)
	}
	if smart.NormP99[workload.HighLoad] >= base.NormP99[workload.HighLoad] {
		t.Fatal("SmartOClock must improve the high-load tail")
	}
}

func TestRunClusterDeterministic(t *testing.T) {
	a, err := RunCluster(smokeClusterCfg(SysSmartOClock))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCluster(smokeClusterCfg(SysSmartOClock))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalEnergy != b.TotalEnergy || a.MeanInstances != b.MeanInstances {
		t.Fatalf("non-deterministic: %v/%v vs %v/%v",
			a.TotalEnergy, a.MeanInstances, b.TotalEnergy, b.MeanInstances)
	}
}

func TestRunClusterValidation(t *testing.T) {
	cfg := smokeClusterCfg(SysBaseline)
	cfg.Tick = 0
	if _, err := RunCluster(cfg); err == nil {
		t.Fatal("expected error on zero tick")
	}
}

func TestClusterSystemStrings(t *testing.T) {
	if SysBaseline.String() != "Baseline" || SysSmartOClock.String() != "SmartOClock" ||
		SysNaiveOClock.String() != "NaiveOClock" {
		t.Fatal("system names wrong")
	}
	if len(ClusterSystems()) != 4 {
		t.Fatal("ClusterSystems must return 4")
	}
}

func TestRunFig12To14Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster emulation x4")
	}
	fig12, fig13, fig14, results, err := RunFig12To14(smokeClusterCfg(SysBaseline))
	if err != nil {
		t.Fatal(err)
	}
	if len(fig12.Rows) != 4 || len(fig13.Rows) != 4 || len(fig14.Rows) != 4 {
		t.Fatal("each figure must have one row per system")
	}
	if len(results) != 4 {
		t.Fatal("results map incomplete")
	}
	// ScaleOut normalizes its own totals to 1.
	row := fig14.FindRow("ScaleOut")
	if row == nil || row[4] != "1.000" {
		t.Fatalf("ScaleOut total norm row = %v", row)
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulations")
	}
	cfg := smokeFleetCfg()
	tbl, err := RunAblationTemplates(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("template ablation rows = %d", len(tbl.Rows))
	}
	tbl, err = RunAblationExploreStep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("explore ablation rows = %d", len(tbl.Rows))
	}
	// Disabled exploration must not beat the default step on success.
	parse := func(s string) float64 {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		return v
	}
	disabled := parse(tbl.FindRow("disabled")[2])
	def := parse(tbl.FindRow("40")[2])
	if disabled > def+1e-9 {
		t.Fatalf("disabled exploration success %v beats default %v", disabled, def)
	}
	tbl, err = RunAblationWarnThreshold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("warn ablation rows = %d", len(tbl.Rows))
	}
}

func TestServiceAExtraLoad(t *testing.T) {
	extra := ServiceAExtraLoad()
	if extra < 0.2 || extra > 0.35 {
		t.Fatalf("Service A extra load = %v, want ≈0.25-0.28", extra)
	}
}

func TestDatacenterRebalance(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulation")
	}
	cfg := smokeFleetCfg()
	cfg.EvalDays = 2
	tbl, err := RunDatacenterRebalance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	parse := func(s string) float64 {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		return v
	}
	even := parse(tbl.FindRow("even-split")[3])
	rebal := parse(tbl.FindRow("rebalanced")[3])
	if rebal < even {
		t.Fatalf("rebalancing must not reduce success: %v -> %v", even, rebal)
	}
	// The hot rack receives a larger limit than the quiet one.
	hotL, _ := strconv.ParseFloat(tbl.FindRow("rebalanced")[1], 64)
	quietL, _ := strconv.ParseFloat(tbl.FindRow("rebalanced")[2], 64)
	if hotL <= quietL {
		t.Fatalf("headroom did not move toward demand: hot %v quiet %v", hotL, quietL)
	}
}
