package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"smartoclock/internal/agent"
	"smartoclock/internal/causal"
	"smartoclock/internal/cluster"
	"smartoclock/internal/core"
	"smartoclock/internal/invariant"
	"smartoclock/internal/lifetime"
	"smartoclock/internal/machine"
	"smartoclock/internal/metrics"
	"smartoclock/internal/obs"
	"smartoclock/internal/power"
	"smartoclock/internal/predict"
	"smartoclock/internal/stats"
	"smartoclock/internal/store"
	"smartoclock/internal/timeseries"
)

// LiveSink receives the periodic publications of a live run — typically a
// telemetry.Server, but the interface keeps experiment free of HTTP.
type LiveSink interface {
	PublishSnapshot(*metrics.Snapshot)
	PublishEvents([]obs.Event)
}

// LiveConfig parameterizes the live networked mode: a small rack of
// sOA-managed servers whose control plane (profile reports, budget pushes,
// rack notifications) crosses real loopback TCP links, paced in wall-clock
// time and published to a sink after every tick. Unlike the deterministic
// experiments this mode exists to be watched while it runs — scraped by
// Prometheus, tailed over HTTP, profiled with pprof — and, with a Control
// attached, mutated over the control-plane API.
type LiveConfig struct {
	Seed     int64
	Start    time.Time
	Duration time.Duration // simulated time to cover
	Tick     time.Duration // simulated time per iteration
	// Pace is the wall-clock sleep between ticks; zero runs flat out.
	Pace    time.Duration
	Servers int
	HW      machine.Config
	// TraceOnly restricts the event trace to these components; empty
	// records everything.
	TraceOnly []obs.Component

	// CheckpointPath/CheckpointEvery enable periodic durable checkpoints:
	// every CheckpointEvery of simulated time the whole control plane (gOA,
	// sOAs with their lifetime ledgers, server cap/wear state) is written
	// atomically to CheckpointPath. Both must be set.
	CheckpointPath  string
	CheckpointEvery time.Duration
	// RestorePath, when set, warm-starts the run from that checkpoint
	// before the first tick: profiles, budgets, sessions and wear continue
	// where the checkpointed process left off.
	RestorePath string

	// Control, when set, attaches the api.Service command inbox: every
	// control-plane mutation is applied by the run goroutine between ticks.
	Control *LiveController
	// Hold suspends the clock: the run only ticks when an Advance command
	// says so, which makes mutate-then-advance sequences deterministic.
	// Requires Control.
	Hold bool
}

// DefaultLiveConfig paces one 5-second control tick per 200 ms of wall
// clock, so an hour of simulated operation plays back in about a minute.
func DefaultLiveConfig() LiveConfig {
	return LiveConfig{
		Seed:     1,
		Start:    time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC),
		Duration: time.Hour,
		Tick:     5 * time.Second,
		Pace:     200 * time.Millisecond,
		Servers:  4,
		HW:       machine.DefaultConfig(),
	}
}

// Validate reports whether the configuration is runnable.
func (c LiveConfig) Validate() error {
	switch {
	case c.Tick <= 0 || c.Duration < c.Tick:
		return fmt.Errorf("experiment: bad live tick/duration %v/%v", c.Tick, c.Duration)
	case c.Servers <= 0:
		return fmt.Errorf("experiment: live mode needs servers, got %d", c.Servers)
	case c.Hold && c.Control == nil:
		return fmt.Errorf("experiment: hold mode needs a LiveController to advance it")
	}
	return nil
}

// LiveResult aggregates one live run.
type LiveResult struct {
	Ticks     int
	Requests  int
	Granted   int
	CapEvents int
	Warnings  int
	// Violations counts invariant-battery violations observed across the
	// run; zero is the only healthy value.
	Violations int
	// Checkpoints counts successful checkpoint writes; Restored reports
	// whether the run warm-started from RestorePath.
	Checkpoints int
	Restored    bool
	Metrics     *metrics.Snapshot
	Trace       *obs.Tracer
	// Provenance holds the (ring-bounded) causal decision log of the run.
	Provenance *causal.Log
}

// Format renders the live run as a report table.
func (r *LiveResult) Format() string {
	tbl := &Table{
		Caption: "Live: TCP control plane with HTTP telemetry",
		Headers: []string{"Metric", "Value"},
	}
	tbl.AddRow("ticks", r.Ticks)
	tbl.AddRow("oc requests (granted)", fmt.Sprintf("%d (%d)", r.Requests, r.Granted))
	tbl.AddRow("rack warnings / cap events", fmt.Sprintf("%d / %d", r.Warnings, r.CapEvents))
	tbl.AddRow("invariant violations", r.Violations)
	if r.Checkpoints > 0 || r.Restored {
		tbl.AddRow("checkpoints (warm-started)", fmt.Sprintf("%d (%v)", r.Checkpoints, r.Restored))
	}
	return tbl.Format()
}

// RunLive executes the live networked mode. The world is a scaled-down
// chaos rig without the faults: each server hosts one latency-critical VM
// whose overclock demand arrives in phase-shifted square waves, the rack
// limit leaves headroom for only some servers to overclock at once, and
// every control message — sOA profile reports to the gOA, gOA budget
// pushes back, rack warning/cap notifications — travels a real TCP link
// between two loopback nodes, so the transport histograms on the scrape
// endpoint carry genuine wire latencies and frame sizes.
//
// Concurrency: simulation state is mutated only by this goroutine. TCP
// read loops never touch it — inbound messages land in channel inboxes
// drained at the top of each tick — and control-plane API mutations enter
// the same way, as commands on cfg.Control's inbox applied between ticks.
// All metric updates from both sides go through the shared metrics.Locked,
// which is also what the HTTP scraper snapshots.
//
// An invariant battery (rack power within limit, gOA budget conservation,
// sessions within grant, core lifetime budgets, admission audits) checks
// the world every tick; LiveResult.Violations reports the total.
func RunLive(cfg LiveConfig, sink LiveSink) (*LiveResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lk := metrics.NewLocked()
	tracer := newShardTracer(cfg.TraceOnly)
	maxOC := cfg.HW.MaxOCMHz
	checker := invariant.NewChecker()
	// Live runs are long-lived: the provenance recorder is a bounded ring so
	// memory stays flat while the latest decisions remain explorable via
	// /explain. Only the run goroutine touches it.
	prov := causal.NewBounded(cfg.Seed, 2, 4096)
	checker.AttachProvenance(prov)

	// --- Two nodes on loopback: the gOA's and the servers' ----------------
	goaNode, err := agent.NewTCPNode("goa-node", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer goaNode.Close()
	soaNode, err := agent.NewTCPNode("soa-node", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer soaNode.Close()
	goaNode.Instrument(lk, metrics.L("node", "goa"))
	soaNode.Instrument(lk, metrics.L("node", "soa"))

	// --- Servers, workload, rack, gOA --------------------------------------
	servers := make([]*liveServer, cfg.Servers)
	bcfg := lifetime.BudgetConfig{Epoch: time.Hour, Fraction: 0.25, CarryOver: true, MaxCarryOver: 1}
	for i := range servers {
		s := cluster.NewServer(fmt.Sprintf("lv-%02d", i), cfg.HW, 0)
		servers[i] = &liveServer{
			srv:     s,
			agentID: "soa/" + s.Name(),
			rng:     rand.New(rand.NewSource(cfg.Seed + int64(i))),
		}
	}
	vmCores := make([]int, cfg.HW.Cores/2)
	for i := range vmCores {
		vmCores[i] = i
	}

	res := &LiveResult{}
	w := &liveWorld{
		cfg:         cfg,
		lk:          lk,
		now:         cfg.Start.Add(cfg.Tick),
		end:         cfg.Start.Add(cfg.Duration),
		servers:     servers,
		byName:      make(map[string]*liveServer, len(servers)),
		vmCores:     vmCores,
		deployments: make(map[string]*liveDeployment),
		coreOwner:   make(map[string]map[int]string, len(servers)),
		chaosDown:   make(map[string]bool),
		res:         res,
		checker:     checker,
	}
	for _, ls := range servers {
		w.byName[ls.srv.Name()] = ls
		w.coreOwner[ls.srv.Name()] = make(map[int]string)
	}

	demandPeriod := 20 * time.Minute
	demandAt := func(i int, now time.Time) bool {
		phase := time.Duration(i) * demandPeriod / time.Duration(cfg.Servers)
		into := (now.Sub(cfg.Start) + phase) % demandPeriod
		return into < 9*time.Minute
	}
	// setUtil drives the background pattern; cores owned by an API-registered
	// deployment keep the utilization the deployment pinned.
	setUtil := func(ls *liveServer, i int, now time.Time) {
		owners := w.coreOwner[ls.srv.Name()]
		base := 0.35 + 0.05*ls.rng.Float64()
		hot := base
		if demandAt(i, now) {
			hot = 0.80 + 0.10*ls.rng.Float64()
		}
		for c := 0; c < ls.srv.NumCores(); c++ {
			if owners[c] != "" {
				continue
			}
			if c < len(vmCores) {
				ls.srv.SetCoreUtil(c, hot)
			} else {
				ls.srv.SetCoreUtil(c, base)
			}
		}
	}

	est := 0.0
	members := make([]power.Server, 0, cfg.Servers)
	for _, ls := range servers {
		setUtil(ls, 0, cfg.Start)
		est += ls.srv.Power()
		members = append(members, ls.srv)
	}
	fullOC := float64(cfg.Servers) * servers[0].srv.OCDeltaWatts(len(vmCores), maxOC, 0.9)
	limit := 0.9 * (est + 0.5*fullOC)
	rack := power.NewRack(power.DefaultRackConfig("rack-live", limit), members...)
	rack.AttachProvenance(prov)
	goa := core.NewGOA("rack-live", limit)
	goa.AttachProvenance(prov)
	evenShare := limit / float64(cfg.Servers)
	w.rack, w.goa = rack, goa

	soaCfg := core.DefaultSOAConfig()
	soaCfg.ProfileStep = time.Minute
	soaCfg.ExploreConfirm = 30 * time.Second
	soaCfg.ExploitTime = 5 * time.Minute
	soaCfg.DefaultOCHorizon = 5 * time.Minute
	soaCfg.OnAdmit = invariant.AdmissionWithinBudget(checker, "rack-live", 1e-6)

	// Instrumentation resolves handles into the shared registry under the
	// lock; the simulation later updates them under the same lock.
	lk.Do(func(reg *metrics.Registry) {
		rack.Instrument(reg, tracer)
		goa.Instrument(reg, tracer)
		checker.Instrument(reg, tracer)
		for _, ls := range servers {
			ls.srv.Instrument(reg)
			ls.soa = core.NewSOA(soaCfg, ls.srv, lifetime.NewCoreBudgets(bcfg, ls.srv.NumCores(), cfg.Start), evenShare, cfg.Start)
			ls.soa.Instrument(reg, tracer)
			ls.soa.AttachProvenance(prov)
		}
		w.ckptWrites = reg.Counter("checkpoint_writes_total")
		w.ckptErrors = reg.Counter("checkpoint_errors_total")
		w.ckptBytes = reg.Gauge("checkpoint_bytes")
	})

	// --- Durable state: warm start and periodic checkpoints ----------------
	stateInfo := store.StateInfo{CheckpointPath: cfg.CheckpointPath}
	w.stateInfo = &stateInfo
	w.buildCheckpoint = func() *store.Checkpoint {
		cp := &store.Checkpoint{
			GOA:     goa.Snapshot(),
			SOAs:    make(map[string]*core.SOAState, len(servers)),
			Servers: make(map[string]*cluster.ServerState, len(servers)),
		}
		for _, ls := range servers {
			cp.SOAs[ls.srv.Name()] = ls.soa.Snapshot()
			cp.Servers[ls.srv.Name()] = ls.srv.Snapshot()
		}
		return cp
	}
	if cfg.RestorePath != "" {
		var cp store.Checkpoint
		savedAt, err := store.Load(cfg.RestorePath, &cp)
		if err != nil {
			return nil, err
		}
		lk.Do(func(*metrics.Registry) {
			if cp.GOA != nil {
				goa.Restore(cp.GOA)
			}
			for _, ls := range servers {
				if st, ok := cp.Servers[ls.srv.Name()]; ok {
					if rerr := ls.srv.Restore(st); rerr != nil && err == nil {
						err = rerr
					}
				}
				if st, ok := cp.SOAs[ls.srv.Name()]; ok {
					if rerr := ls.soa.Restore(st); rerr != nil && err == nil {
						err = rerr
					}
				}
			}
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: restore %s: %w", cfg.RestorePath, err)
		}
		res.Restored = true
		stateInfo.RestoredFrom = cfg.RestorePath
		stateInfo.RestoredAt = savedAt
	}
	// Sinks that understand durable-state status (the telemetry server's
	// /statez) get it pushed alongside snapshots.
	statePub, _ := sink.(interface{ PublishState(store.StateInfo) })
	w.statePub = statePub
	if statePub != nil {
		statePub.PublishState(stateInfo)
	}

	// Register the invariant battery after the (possible) restore so the
	// lifetime accounting samples the restored frequencies, not cold ones.
	grace := 15 * time.Second
	if g := 3 * cfg.Tick; g > grace {
		grace = g
	}
	invariant.RackPowerWithinLimit(checker, rack, grace)
	invariant.BudgetConservation(checker, goa, 1e-3)
	for _, ls := range servers {
		ls := ls
		invariant.SessionsWithinGrant(checker, "rack-live", ls.srv, func() *core.SOA { return ls.soa })
		if cfg.RestorePath == "" {
			// The independent lifetime accounting assumes it watched the run
			// from its start; a warm restore carries spend it never saw.
			invariant.CoreBudgetsNeverOverdrawn(checker, "rack-live", ls.srv, bcfg, cfg.Start, 12*cfg.Tick)
		}
	}

	// --- Inboxes: TCP read loops hand off, the main loop applies ----------
	// The received counter ticks on every delivered message (even ones a
	// full inbox sheds): hold mode barriers on received == sent so a tick's
	// sends are all visible to the next tick's drain.
	goaInbox := make(chan agent.Message, 256)
	soaInbox := make(chan agent.Message, 256)
	goaNode.Register("goa", func(m agent.Message) {
		w.received.Add(1)
		select {
		case goaInbox <- m:
		default: // full inbox sheds load rather than blocking the link
		}
	})
	for _, ls := range servers {
		soaNode.Register(ls.agentID, func(m agent.Message) {
			w.received.Add(1)
			select {
			case soaInbox <- m:
			default:
			}
		})
		goaNode.AddPeer(ls.agentID, soaNode.Addr())
	}
	soaNode.AddPeer("goa", goaNode.Addr())

	byAgent := make(map[string]*liveServer, len(servers))
	for _, ls := range servers {
		byAgent[ls.agentID] = ls
	}

	// Rack events queue locally during Tick (which runs under the lock) and
	// are flushed over TCP afterwards, outside it.
	var pendingRack []power.Event
	rack.Subscribe(func(ev power.Event) { pendingRack = append(pendingRack, ev) })

	send := func(node *agent.TCPNode, msg agent.Message, from, to string) {
		if !w.sendAllowed(from, to) {
			return
		}
		if node.Send(msg) == nil {
			w.sent.Add(1)
		}
	}

	// Sinks that understand provenance (the telemetry server's /explain)
	// get new records pushed after every tick.
	provPub, _ := sink.(interface{ PublishProvenance([]causal.Record) })

	// --- One tick of the world ---------------------------------------------
	published := 0             // events already handed to the sink
	publishedProv := uint64(0) // records (kept + dropped) already handed over
	profileEvery, budgetEvery := 2*time.Minute, time.Minute
	nextProfile, nextBudget := cfg.Start.Add(profileEvery), cfg.Start.Add(budgetEvery)
	checkpointing := cfg.CheckpointPath != "" && cfg.CheckpointEvery > 0
	nextCkpt := cfg.Start.Add(cfg.CheckpointEvery)
	w.doTick = func() {
		now := w.now
		res.Ticks++

		// 1. Drain inboxes and apply under the lock. Chaos-downed agents
		// drop at delivery too, catching messages already in flight when
		// the fault flipped.
		applyMsg := func(m agent.Message) {
			if w.chaosDown[m.From] || w.chaosDown[m.To] {
				w.dropped++
				return
			}
			switch m.Type {
			case "goa.budget":
				ls := byAgent[m.To]
				b, err := agent.Decode[budgetMsg](m)
				if ls == nil || err != nil || b.Watts <= 0 {
					return
				}
				ls.soa.SetStaticBudget(b.Watts, true)
				ls.soa.NoteBudget(now, b.Watts, m.Span)
			case "rack.event":
				ls := byAgent[m.To]
				ev, err := agent.Decode[rackEventMsg](m)
				if ls == nil || err != nil {
					return
				}
				ls.soa.OnRackEvent(now, power.Event{
					Kind: power.EventKind(ev.Kind), Time: now,
					Rack: "rack-live", Power: ev.Power, Limit: ev.Limit,
					Span: m.Span,
				})
			case "soa.profile":
				p, err := agent.Decode[profileMsg](m)
				if err != nil {
					return
				}
				goa.NoteProfile(m.Span)
				goa.SetProfile(p.Server, core.ServerProfile{
					Power: timeseries.FlatWeek(p.MedianWatts, time.Hour),
					OC: &predict.OCTemplate{
						Requested: timeseries.FlatWeek(p.Requested, time.Hour),
						Granted:   timeseries.FlatWeek(p.Granted, time.Hour),
					},
					OCCoreCost: p.CoreCost,
				})
			}
		}
		lk.Do(func(*metrics.Registry) {
			for drained := false; !drained; {
				select {
				case m := <-goaInbox:
					applyMsg(m)
				case m := <-soaInbox:
					applyMsg(m)
				default:
					drained = true
				}
			}

			// 2. Tick the world.
			for i, ls := range servers {
				setUtil(ls, i, now)
				want := demandAt(i, now)
				_, active := ls.soa.Sessions()["vm"]
				if want && !active {
					res.Requests++
					req := core.Request{
						VM: "vm", Cores: len(vmCores), TargetMHz: maxOC,
						Priority: core.PriorityMetric, PreferredCores: vmCores,
					}
					req.Span = uint64(prov.Emit(causal.Record{
						Time:      now,
						Kind:      causal.KindMessage,
						Component: "wi",
						Site:      "wi.request",
						Subject:   ls.srv.Name() + "/vm",
					}))
					d := ls.soa.Request(now, req)
					if d.Granted {
						res.Granted++
					}
				} else if !want && active {
					ls.soa.Stop(now, "vm")
				}
				ls.soa.Tick(now)
			}
			for _, ls := range servers {
				ls.srv.Advance(cfg.Tick)
			}
			rack.Tick(now)
			checker.Check(now)
		})

		// 3. Control-plane traffic over TCP, outside the lock (the
		// transport instrumentation takes it per message). Chaos gates
		// drop sends from or to downed agents.
		for _, ev := range pendingRack {
			payload := rackEventMsg{Kind: int(ev.Kind), Power: ev.Power, Limit: ev.Limit}
			for _, ls := range servers {
				if msg, err := agent.NewMessage("rack.event", "rack", ls.agentID, payload); err == nil {
					msg.Span = uint64(prov.Emit(causal.Record{
						Parent:    causal.SpanID(ev.Span),
						Time:      ev.Time,
						Kind:      causal.KindMessage,
						Component: "rack",
						Site:      "msg.rack.event",
						Subject:   ls.agentID,
					}))
					send(goaNode, msg, "rack", ls.agentID)
				}
			}
		}
		pendingRack = pendingRack[:0]
		if !now.Before(nextProfile) {
			nextProfile = nextProfile.Add(profileEvery)
			for _, ls := range servers {
				var payload profileMsg
				lk.Do(func(*metrics.Registry) {
					window := lastSamples(ls.soa.PowerRecord().Values, 10)
					med := stats.Median(window)
					if len(window) == 0 {
						med = ls.srv.Power()
					}
					granted := float64(ls.soa.ActiveOCCores())
					requested := ls.soa.RecentRequestedCores(5)
					if granted > requested {
						requested = granted
					}
					payload = profileMsg{
						Server: ls.srv.Name(), MedianWatts: med,
						Requested: requested, Granted: granted,
						CoreCost: ls.srv.Machine().Config().OCCoreCost(),
					}
				})
				if msg, err := agent.NewMessage("soa.profile", ls.agentID, "goa", payload); err == nil {
					msg.Span = uint64(prov.Emit(causal.Record{
						Time:      now,
						Kind:      causal.KindMessage,
						Component: "soa",
						Site:      "msg.soa.profile",
						Subject:   ls.srv.Name(),
					}))
					send(soaNode, msg, ls.agentID, "goa")
				}
			}
		}
		if !now.Before(nextBudget) {
			nextBudget = nextBudget.Add(budgetEvery)
			var budgets map[string]float64
			budgetSpans := make(map[string]uint64, len(servers))
			lk.Do(func(*metrics.Registry) {
				budgets = goa.BudgetsAt(now)
				for _, ls := range servers {
					if b, ok := budgets[ls.srv.Name()]; ok && b > 0 {
						goa.TraceBroadcast(now, ls.srv.Name(), b)
						budgetSpans[ls.srv.Name()] = goa.ProvenanceBroadcast(now, ls.srv.Name(), b)
					}
				}
			})
			for _, ls := range servers {
				b, ok := budgets[ls.srv.Name()]
				if !ok || b <= 0 {
					continue
				}
				if msg, err := agent.NewMessage("goa.budget", "goa", ls.agentID, budgetMsg{Watts: b}); err == nil {
					msg.Span = budgetSpans[ls.srv.Name()]
					send(goaNode, msg, "goa", ls.agentID)
				}
			}
		}

		// 4. Periodic checkpoint: snapshot under the lock, write to disk
		// outside it (atomic rename — a crash mid-write leaves the previous
		// checkpoint intact).
		if checkpointing && !now.Before(nextCkpt) {
			nextCkpt = nextCkpt.Add(cfg.CheckpointEvery)
			var cp *store.Checkpoint
			lk.Do(func(*metrics.Registry) { cp = w.buildCheckpoint() })
			data, err := store.Encode(now, cp)
			if err == nil {
				err = store.SaveEncoded(cfg.CheckpointPath, data)
			}
			lk.Do(func(*metrics.Registry) {
				if err != nil {
					w.ckptErrors.Inc()
				} else {
					w.ckptWrites.Inc()
					w.ckptBytes.Set(float64(len(data)))
				}
			})
			if err == nil {
				res.Checkpoints++
				stateInfo.Writes = res.Checkpoints
				stateInfo.LastSavedAt = now
				stateInfo.LastBytes = len(data)
				if statePub != nil {
					statePub.PublishState(stateInfo)
				}
			}
		}

		// 5. Publish to the sink.
		if sink != nil {
			sink.PublishSnapshot(lk.Snapshot())
			if evs := tracer.Events(); len(evs) > published {
				sink.PublishEvents(evs[published:])
				published = len(evs)
			}
			if provPub != nil {
				recs := prov.Records()
				total := uint64(len(recs)) + prov.Dropped()
				if fresh := total - publishedProv; fresh > 0 {
					if fresh > uint64(len(recs)) {
						fresh = uint64(len(recs)) // ring overwrote some unseen records
					}
					provPub.PublishProvenance(recs[uint64(len(recs))-fresh:])
					publishedProv = total
				}
			}
		}
		w.now = now.Add(cfg.Tick)

		// 6. In hold mode, barrier on loopback delivery: the next tick must
		// drain exactly what this tick sent, whenever it runs. TCP per-peer
		// connections deliver in order, so equality means all arrived.
		if cfg.Hold {
			deadline := time.Now().Add(5 * time.Second)
			for w.received.Load() < w.sent.Load() && time.Now().Before(deadline) {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}

	// --- Main loop ----------------------------------------------------------
	ctrl := cfg.Control
	if ctrl != nil {
		defer ctrl.finish()
	}
	if cfg.Hold {
		// The clock is suspended: block on the command inbox and let
		// Advance commands run ticks synchronously.
		for !w.shutdown && !w.now.After(w.end) {
			select {
			case cmd := <-ctrl.cmds:
				ctrl.exec(w, cmd)
			case <-ctrl.done:
				w.shutdown = true
			}
		}
	} else {
		for !w.shutdown && !w.now.After(w.end) {
			if ctrl != nil {
				ctrl.drain(w)
			}
			w.doTick()
			if cfg.Pace <= 0 {
				continue
			}
			if ctrl == nil {
				time.Sleep(cfg.Pace)
				continue
			}
			// Serve commands while pacing so API callers are not stuck
			// behind the wall-clock sleep.
			timer := time.NewTimer(cfg.Pace)
			for pacing := true; pacing; {
				select {
				case cmd := <-ctrl.cmds:
					ctrl.exec(w, cmd)
				case <-timer.C:
					pacing = false
				}
			}
		}
	}

	res.CapEvents = rack.CapEvents()
	res.Warnings = rack.Warnings()
	res.Violations = checker.Total()
	res.Metrics = lk.Snapshot()
	res.Trace = tracer
	res.Provenance = &causal.Log{Records: prov.Records()}
	return res, nil
}
