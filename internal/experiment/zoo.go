package experiment

import (
	"encoding/json"
	"fmt"
	"time"

	"smartoclock/internal/agent"
	"smartoclock/internal/causal"
	"smartoclock/internal/chaos"
	"smartoclock/internal/cluster"
	"smartoclock/internal/core"
	"smartoclock/internal/invariant"
	"smartoclock/internal/lifetime"
	"smartoclock/internal/parallel"
	"smartoclock/internal/policy"
	"smartoclock/internal/power"
	"smartoclock/internal/predict"
	"smartoclock/internal/sim"
	"smartoclock/internal/stats"
	"smartoclock/internal/timeseries"
	"smartoclock/internal/trace"
)

// The scenario zoo experiment: every policy set crossed with every
// adversarial scenario, each cell a full multi-rack simulation with the
// invariant checker watching — including the decision-time admission audit
// that catches over-granting policies the feedback loop would otherwise
// mask. The bar is uniform: zero violations in every cell, byte-identical
// output at any worker count.

// ZooConfig parameterizes the policy × scenario matrix.
type ZooConfig struct {
	Seed     int64
	Start    time.Time
	Duration time.Duration
	// Tick is the control cadence (workload updates, sOA ticks, rack
	// manager ticks, invariant checks).
	Tick time.Duration

	// Policies are the policy sets to certify; nil means the safe catalog
	// (policy.Factories()).
	Policies []policy.Factory
	// Scenarios are the regimes to run; nil means trace.ZooCatalog(Seed).
	Scenarios []trace.ZooScenario

	// Mild control-plane faults (always on: a zoo without message loss
	// certifies less than production sees).
	DropProb  float64
	DelayProb float64
	MaxDelay  time.Duration
	BaseDelay time.Duration

	// Control-plane cadences.
	ProfileEvery time.Duration
	BudgetEvery  time.Duration

	// Per-core overclock time budgets.
	BudgetEpoch      time.Duration
	OCBudgetFraction float64
	// RackLimitScale scales each rack's limit relative to estimated
	// baseline-plus-half-overclock draw (<1 keeps enforcement busy).
	RackLimitScale float64
	// EnforcementGrace bounds how long rack power may exceed the limit
	// before the invariant fires.
	EnforcementGrace time.Duration

	// Workers/ShuffleSeed control cell-level parallelism; output is
	// byte-identical for any values (each cell derives its own seed from
	// its index, never from dispatch order).
	Workers     int
	ShuffleSeed int64

	// Provenance enables causal decision records: each cell carries a
	// deterministic recorder seeded from the cell seed, spans ride the
	// control-plane messages, and the resulting log lands on
	// ZooCellResult.Provenance. Off or on, the simulation result bytes are
	// identical (the zero-observer-effect contract).
	Provenance bool
}

// DefaultZooConfig returns the profile used by `socsim -zoo` and CI: the
// full safe-policy catalog against the full scenario catalog, 90 minutes
// of simulated time per cell, 10% message loss.
func DefaultZooConfig() ZooConfig {
	return ZooConfig{
		Seed:             1,
		Start:            time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC),
		Duration:         90 * time.Minute,
		Tick:             5 * time.Second,
		DropProb:         0.10,
		DelayProb:        0.10,
		MaxDelay:         10 * time.Second,
		BaseDelay:        50 * time.Millisecond,
		ProfileEvery:     2 * time.Minute,
		BudgetEvery:      time.Minute,
		BudgetEpoch:      time.Hour,
		OCBudgetFraction: 0.25,
		RackLimitScale:   0.90,
		EnforcementGrace: 15 * time.Second,
		Provenance:       true,
	}
}

// Validate reports whether the configuration is runnable.
func (c ZooConfig) Validate() error {
	switch {
	case c.Tick <= 0 || c.Duration < c.Tick:
		return fmt.Errorf("experiment: bad zoo tick/duration %v/%v", c.Tick, c.Duration)
	case c.ProfileEvery <= 0 || c.BudgetEvery <= 0:
		return fmt.Errorf("experiment: non-positive zoo control cadence")
	case c.BudgetEpoch <= 0 || c.OCBudgetFraction <= 0:
		return fmt.Errorf("experiment: bad zoo OC budget %v/%v", c.BudgetEpoch, c.OCBudgetFraction)
	case c.EnforcementGrace < c.Tick:
		return fmt.Errorf("experiment: zoo EnforcementGrace %v below one tick %v", c.EnforcementGrace, c.Tick)
	}
	return nil
}

// ZooCellResult is one (policy, scenario) cell of the matrix.
type ZooCellResult struct {
	Policy   string
	Scenario string
	Ticks    int
	// Requests/Granted prove the cell wasn't vacuously safe.
	Requests int
	Granted  int
	// Warnings/CapEvents across the cell's racks: enforcement activity.
	Warnings  int
	CapEvents int
	// AdmissionAudits is how many power-side admission decisions the
	// decision-time audit saw.
	AdmissionAudits int
	InvariantChecks int64
	Violations      []invariant.Violation
	// Provenance is the cell's causal decision log (empty with provenance
	// off). Records are in emission order, which the deterministic engine
	// makes byte-stable for the cell's seed.
	Provenance causal.Log
	// Err is non-nil when any invariant was violated.
	Err error
}

// ZooResult is the full matrix.
type ZooResult struct {
	Cells []ZooCellResult
	// Err is the first cell failure, nil when the whole matrix is clean.
	Err error
}

// driftHost is the sOA-facing view of a server with an imperfect power
// sensor: every reading is scaled by the scenario's gain while the rack
// manager and the invariants keep seeing the true draw.
type driftHost struct {
	*cluster.Server
	gain func() float64
}

func (h *driftHost) Power() float64 { return h.gain() * h.Server.Power() }

// zooServer bundles one server's control state inside a cell.
type zooServer struct {
	srv     *cluster.Server
	host    core.Host
	agentID string
	soa     *core.SOA
	vmCores []int
}

// RunZooCell executes one (policy, scenario) cell with the given seed.
func RunZooCell(cfg ZooConfig, f policy.Factory, sc trace.ZooScenario, seed int64) *ZooCellResult {
	res := &ZooCellResult{Policy: f.Name, Scenario: sc.Name}
	eng := sim.NewEngine(cfg.Start, seed)
	end := cfg.Start.Add(cfg.Duration)
	since := func(now time.Time) time.Duration { return now.Sub(cfg.Start) }

	tr := chaos.NewTransport(chaos.Config{
		Seed:      seed + 1,
		DropProb:  cfg.DropProb,
		DelayProb: cfg.DelayProb,
		MaxDelay:  cfg.MaxDelay,
		BaseDelay: cfg.BaseDelay,
	}, eng, agent.NewBus())

	// One recorder per cell: single-goroutine engine, deterministic span
	// sequence derived from the cell seed. nil when provenance is off —
	// every Emit/Span call below degrades to a no-op.
	var prov *causal.Recorder
	if cfg.Provenance {
		prov = causal.NewRecorder(seed, 0)
	}

	checker := invariant.NewChecker()
	checker.AttachProvenance(prov)
	bcfg := lifetime.BudgetConfig{Epoch: cfg.BudgetEpoch, Fraction: cfg.OCBudgetFraction, CarryOver: true, MaxCarryOver: 1}

	soaCfg := core.DefaultSOAConfig()
	soaCfg.ProfileStep = time.Minute
	soaCfg.ExploreConfirm = 30 * time.Second
	soaCfg.ExploitTime = 5 * time.Minute
	soaCfg.InitialBackoff = time.Minute
	soaCfg.MaxBackoff = 15 * time.Minute
	soaCfg.DefaultOCHorizon = 5 * time.Minute
	soaCfg.ExhaustionWindow = 5 * time.Minute
	soaCfg.AdmissionUtil = 0.7
	soaCfg.Policies = f

	type zooRack struct {
		name    string
		rack    *power.Rack
		goa     *core.GOA
		servers []*zooServer
	}
	racks := make([]*zooRack, sc.Racks)
	for r := 0; r < sc.Racks; r++ {
		r := r
		zr := &zooRack{name: fmt.Sprintf("zoo-r%d", r)}
		audit := invariant.AdmissionWithinBudget(checker, zr.name, 0)
		members := make([]power.Server, 0, sc.ServersPerRack)
		est, fullOC := 0.0, 0.0
		for i := 0; i < sc.ServersPerRack; i++ {
			i := i
			srv := cluster.NewServer(fmt.Sprintf("%s-s%02d", zr.name, i), sc.HW(r, i), 0)
			zs := &zooServer{
				srv:     srv,
				agentID: fmt.Sprintf("soa/%s", srv.Name()),
			}
			zs.host = &driftHost{Server: srv, gain: func() float64 {
				return sc.SensorGain(r, i, since(eng.Now()))
			}}
			zs.vmCores = make([]int, srv.NumCores()/4)
			for c := range zs.vmCores {
				zs.vmCores[c] = c
			}
			// Limit estimate: halfway between all-quiet and VM-hot draw
			// (demand waves run roughly half duty), plus half the fleet
			// overclocking at once.
			hot := sc.Util(r, i, 0, true)
			base := sc.Util(r, i, 0, false)
			for c := 0; c < srv.NumCores(); c++ {
				if c < len(zs.vmCores) {
					srv.SetCoreUtil(c, hot)
				} else {
					srv.SetCoreUtil(c, base)
				}
			}
			est += 0.5 * srv.Power()
			for c := 0; c < srv.NumCores(); c++ {
				srv.SetCoreUtil(c, base)
			}
			est += 0.5 * srv.Power()
			fullOC += srv.OCDeltaWatts(len(zs.vmCores), srv.MaxOCMHz(), 0.9)
			members = append(members, srv)
			zr.servers = append(zr.servers, zs)
		}
		limit := cfg.RackLimitScale * (est + 0.5*fullOC)
		zr.rack = power.NewRack(power.DefaultRackConfig(zr.name, limit), members...)
		zr.goa = core.NewGOA(zr.name, limit)
		evenShare := limit / float64(sc.ServersPerRack)

		sCfg := soaCfg
		sCfg.OnAdmit = func(a core.AdmissionAudit) {
			res.AdmissionAudits++
			audit(a)
		}
		for _, zs := range zr.servers {
			zs := zs
			zs.soa = core.NewSOA(sCfg, zs.host, lifetime.NewCoreBudgets(bcfg, zs.srv.NumCores(), cfg.Start), evenShare, cfg.Start)
			zs.soa.AttachProvenance(prov)
			tr.Register(zs.agentID, func(m agent.Message) {
				switch m.Type {
				case "goa.budget":
					b, err := agent.Decode[budgetMsg](m)
					if err != nil || b.Watts <= 0 {
						return
					}
					zs.soa.SetStaticBudget(b.Watts, true)
					zs.soa.NoteBudget(eng.Now(), b.Watts, m.Span)
				case "rack.event":
					ev, err := agent.Decode[rackEventMsg](m)
					if err != nil {
						return
					}
					zs.soa.OnRackEvent(eng.Now(), power.Event{
						Kind: power.EventKind(ev.Kind), Time: eng.Now(),
						Rack: zr.name, Power: ev.Power, Limit: ev.Limit,
						Span: m.Span,
					})
				}
			})
		}

		// Rack events cross the (lossy) transport, like the chaos rig. The
		// event's provenance span (assigned by the rack's recorder) rides
		// each relayed message so sOA setbacks chain back to the event.
		zr.rack.AttachProvenance(prov)
		// The payload is identical per recipient: encode once, stamp each
		// copy with its own provenance span (spans are drawn in server order,
		// exactly like the unbatched loop) and cross the transport in one
		// batched call. Scratch is reused across events; the zoo runs on the
		// single engine goroutine.
		var rackEventBatch []agent.Message
		zr.rack.Subscribe(func(ev power.Event) {
			payload, err := json.Marshal(rackEventMsg{Kind: int(ev.Kind), Power: ev.Power, Limit: ev.Limit})
			if err != nil {
				return
			}
			batch := rackEventBatch[:0]
			for _, zs := range zr.servers {
				msg := agent.Message{Type: "rack.event", From: zr.name, To: zs.agentID, Payload: payload}
				msg.Span = uint64(prov.Emit(causal.Record{
					Parent:    causal.SpanID(ev.Span),
					Time:      ev.Time,
					Kind:      causal.KindMessage,
					Component: "rack",
					Site:      "msg.rack.event",
					Subject:   zs.agentID,
				}))
				batch = append(batch, msg)
			}
			rackEventBatch = batch
			_ = agent.SendAll(tr, batch)
		})

		// gOA inbox.
		goaID := "goa/" + zr.name
		zr.goa.AttachProvenance(prov)
		tr.Register(goaID, func(m agent.Message) {
			if m.Type != "soa.profile" {
				return
			}
			p, err := agent.Decode[profileMsg](m)
			if err != nil {
				return
			}
			zr.goa.NoteProfile(m.Span)
			zr.goa.SetProfile(p.Server, core.ServerProfile{
				Power: timeseries.FlatWeek(p.MedianWatts, time.Hour),
				OC: &predict.OCTemplate{
					Requested: timeseries.FlatWeek(p.Requested, time.Hour),
					Granted:   timeseries.FlatWeek(p.Granted, time.Hour),
				},
				OCCoreCost: p.CoreCost,
			})
		})

		// sOA → gOA profile reports (staggered one tick per server).
		for i, zs := range zr.servers {
			zs := zs
			eng.Every(cfg.Start.Add(cfg.ProfileEvery+time.Duration(i)*cfg.Tick), cfg.ProfileEvery, func(now time.Time) {
				window := lastSamples(zs.soa.PowerRecord().Values, 10)
				med := stats.Median(window)
				if len(window) == 0 {
					med = zs.host.Power()
				}
				granted := float64(zs.soa.ActiveOCCores())
				requested := zs.soa.RecentRequestedCores(5)
				if granted > requested {
					requested = granted
				}
				payload := profileMsg{
					Server: zs.srv.Name(), MedianWatts: med,
					Requested: requested, Granted: granted,
					CoreCost: zs.srv.Machine().Config().OCCoreCost(),
				}
				if msg, err := agent.NewMessage("soa.profile", zs.agentID, goaID, payload); err == nil {
					msg.Span = uint64(prov.Emit(causal.Record{
						Time:      now,
						Kind:      causal.KindMessage,
						Component: "soa",
						Site:      "msg.soa.profile",
						Subject:   zs.srv.Name(),
					}))
					_ = tr.Send(msg)
				}
			})
		}

		// gOA → sOA budget pushes, batched per tick: provenance spans are
		// drawn in server order as the batch builds, then the burst crosses
		// the transport in one call — byte-identical to per-message sends.
		var budgetBatch []agent.Message
		eng.Every(cfg.Start.Add(cfg.BudgetEvery), cfg.BudgetEvery, func(now time.Time) {
			budgets := zr.goa.BudgetsAt(now)
			batch := budgetBatch[:0]
			for _, zs := range zr.servers {
				b, ok := budgets[zs.srv.Name()]
				if !ok || b <= 0 {
					continue
				}
				if msg, err := agent.NewMessage("goa.budget", goaID, zs.agentID, budgetMsg{Watts: b}); err == nil {
					msg.Span = zr.goa.ProvenanceBroadcast(now, zs.srv.Name(), b)
					batch = append(batch, msg)
				}
			}
			budgetBatch = batch
			_ = agent.SendAll(tr, batch)
		})

		// Invariants: the zoo's bar is all of them, every tick.
		invariant.RackPowerWithinLimit(checker, zr.rack, cfg.EnforcementGrace)
		invariant.BudgetConservation(checker, zr.goa, 1e-3)
		for _, zs := range zr.servers {
			zs := zs
			invariant.CoreBudgetsNeverOverdrawn(checker, zr.name, zs.srv, bcfg, cfg.Start, 12*cfg.Tick)
			invariant.SessionsWithinGrant(checker, zr.name, zs.srv, func() *core.SOA { return zs.soa })
		}
		racks[r] = zr
	}

	// Main control tick.
	eng.Every(cfg.Start.Add(cfg.Tick), cfg.Tick, func(now time.Time) {
		res.Ticks++
		off := since(now)
		for r, zr := range racks {
			for i, zs := range zr.servers {
				hot := sc.Util(r, i, off, true)
				base := sc.Util(r, i, off, false)
				want := sc.Demand(r, i, off)
				for c := 0; c < zs.srv.NumCores(); c++ {
					if want && c < len(zs.vmCores) {
						zs.srv.SetCoreUtil(c, hot)
					} else {
						zs.srv.SetCoreUtil(c, base)
					}
				}
				_, active := zs.soa.Sessions()["vm"]
				if want && !active {
					res.Requests++
					req := core.Request{
						VM: "vm", Cores: len(zs.vmCores), TargetMHz: zs.srv.MaxOCMHz(),
						Priority: core.PriorityMetric, PreferredCores: zs.vmCores,
					}
					// The WI's ask is the root of the admission chain: the
					// sOA's verdict record names this span as its parent.
					req.Span = uint64(prov.Emit(causal.Record{
						Time:      now,
						Kind:      causal.KindMessage,
						Component: "wi",
						Site:      "wi.request",
						Subject:   zs.srv.Name() + "/vm",
					}))
					d := zs.soa.Request(now, req)
					if d.Granted {
						res.Granted++
					}
				} else if !want && active {
					zs.soa.Stop(now, "vm")
				}
				zs.soa.Tick(now)
			}
			for _, zs := range zr.servers {
				zs.srv.Advance(cfg.Tick)
			}
			zr.rack.Tick(now)
		}
		checker.Check(now)
	})

	eng.Run(end)

	for _, zr := range racks {
		res.Warnings += zr.rack.Warnings()
		res.CapEvents += zr.rack.CapEvents()
	}
	res.InvariantChecks = checker.Checks()
	res.Violations = checker.Violations()
	res.Provenance = causal.Log{Records: prov.Records()}
	res.Err = checker.Err()
	return res
}

// ProvenanceLog concatenates the cells' provenance logs in matrix-index
// order — the canonical whole-zoo log, byte-identical for any worker count.
func (r *ZooResult) ProvenanceLog() *causal.Log {
	var log causal.Log
	for i := range r.Cells {
		log.Records = append(log.Records, r.Cells[i].Provenance.Records...)
	}
	return &log
}

// RunZoo executes the full policy × scenario matrix. Cells run in parallel
// under cfg.Workers; each cell's seed derives from its fixed matrix index,
// so the result is byte-identical for any worker count or dispatch order.
func RunZoo(cfg ZooConfig) (*ZooResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pols := cfg.Policies
	if pols == nil {
		pols = policy.Factories()
	}
	scs := cfg.Scenarios
	if scs == nil {
		scs = trace.ZooCatalog(cfg.Seed)
	}
	for _, sc := range scs {
		if err := sc.Validate(); err != nil {
			return nil, err
		}
	}

	type cell struct {
		f  policy.Factory
		sc trace.ZooScenario
	}
	cells := make([]cell, 0, len(pols)*len(scs))
	for _, sc := range scs {
		for _, f := range pols {
			cells = append(cells, cell{f: f, sc: sc})
		}
	}

	opts := parallel.Options{Workers: cfg.Workers, ShuffleSeed: cfg.ShuffleSeed}
	results := parallel.Map(len(cells), opts, func(i int) *ZooCellResult {
		return RunZooCell(cfg, cells[i].f, cells[i].sc, parallel.ChildSeed(cfg.Seed, uint64(i)))
	})

	res := &ZooResult{Cells: make([]ZooCellResult, len(results))}
	for i, c := range results {
		res.Cells[i] = *c
		if res.Err == nil && c.Err != nil {
			res.Err = fmt.Errorf("zoo cell %s×%s: %w", c.Policy, c.Scenario, c.Err)
		}
	}
	return res, nil
}

// Format renders the matrix as a report table.
func (r *ZooResult) Format() string {
	tbl := &Table{
		Caption: "Zoo: policy × scenario stress matrix (invariant violations must be 0)",
		Headers: []string{"Scenario", "Policy", "Ticks", "Reqs", "Granted", "Warn", "Caps", "Audits", "Checks", "Violations"},
	}
	for _, c := range r.Cells {
		tbl.AddRow(c.Scenario, c.Policy, c.Ticks, c.Requests, c.Granted,
			c.Warnings, c.CapEvents, c.AdmissionAudits, c.InvariantChecks, len(c.Violations))
	}
	return tbl.Format()
}
