package experiment

import (
	"reflect"
	"testing"
	"time"
)

// TestRecoveryWarmBeatsCold is the headline acceptance test: after a
// control-plane crash, a warm restart (restored from a checkpoint) must show
// a strictly smaller grant-availability gap than a cold restart, at every
// checkpoint staleness — and must recover overclocking sooner.
func TestRecoveryWarmBeatsCold(t *testing.T) {
	res, err := RunRecovery(DefaultRecoveryConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleCoreTicks == 0 {
		t.Fatal("oracle run never granted — the rig is vacuous")
	}
	if len(res.Runs) < 2 || res.Runs[0].Mode != "cold" {
		t.Fatalf("unexpected run set: %+v", res.Runs)
	}
	cold := res.Runs[0]
	if cold.GapCoreTicks <= 0 {
		t.Fatalf("cold restart shows no availability gap (%d) — nothing to recover from", cold.GapCoreTicks)
	}
	warms := res.Runs[1:]
	if len(warms) != len(res.Config.Staleness) {
		t.Fatalf("want %d warm runs, got %d", len(res.Config.Staleness), len(warms))
	}
	for _, w := range warms {
		if w.Mode != "warm" {
			t.Fatalf("unexpected mode %q", w.Mode)
		}
		if w.GapCoreTicks >= cold.GapCoreTicks {
			t.Errorf("warm(staleness=%v) gap %d not strictly smaller than cold gap %d",
				w.Staleness, w.GapCoreTicks, cold.GapCoreTicks)
		}
		if cold.TimeToFirstGrant >= 0 && w.TimeToFirstGrant >= 0 &&
			w.TimeToFirstGrant > cold.TimeToFirstGrant {
			t.Errorf("warm(staleness=%v) first grant %v slower than cold %v",
				w.Staleness, w.TimeToFirstGrant, cold.TimeToFirstGrant)
		}
		// A warm gOA restores its profiles, so it never misses more pushes
		// than the cold gOA, which has to relearn them.
		if w.PushesMissed > cold.PushesMissed {
			t.Errorf("warm(staleness=%v) missed %d pushes, cold missed %d",
				w.Staleness, w.PushesMissed, cold.PushesMissed)
		}
	}

	// The table renders without issue and names every run.
	if s := res.Format(); len(s) == 0 {
		t.Fatal("empty report")
	}
}

// TestRecoveryDeterministic: the sweep is a pure function of its config.
func TestRecoveryDeterministic(t *testing.T) {
	cfg := DefaultRecoveryConfig()
	cfg.Duration = 40 * time.Minute
	cfg.CrashAt = 20 * time.Minute
	cfg.Staleness = []time.Duration{5 * time.Minute}
	a, err := RunRecovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRecovery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.OracleCoreTicks != b.OracleCoreTicks || !reflect.DeepEqual(a.Runs, b.Runs) {
		t.Errorf("recovery sweep not deterministic:\n%+v\nvs\n%+v", a.Runs, b.Runs)
	}
}

func TestRecoveryConfigValidate(t *testing.T) {
	if err := DefaultRecoveryConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	for name, mutate := range map[string]func(*RecoveryConfig){
		"zero tick":       func(c *RecoveryConfig) { c.Tick = 0 },
		"one server":      func(c *RecoveryConfig) { c.Servers = 1 },
		"crash past end":  func(c *RecoveryConfig) { c.CrashAt = c.Duration },
		"no cadence":      func(c *RecoveryConfig) { c.BudgetEvery = 0 },
		"stale pre-start": func(c *RecoveryConfig) { c.Staleness = []time.Duration{c.CrashAt + time.Minute} },
	} {
		cfg := DefaultRecoveryConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: config validated", name)
		}
		if _, err := RunRecovery(cfg); err == nil {
			t.Errorf("%s: RunRecovery accepted invalid config", name)
		}
	}
}
