package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"smartoclock/internal/autoscale"
	"smartoclock/internal/cluster"
	"smartoclock/internal/core"
	"smartoclock/internal/lifetime"
	"smartoclock/internal/machine"
	"smartoclock/internal/metrics"
	"smartoclock/internal/obs"
	"smartoclock/internal/power"
	"smartoclock/internal/predict"
	"smartoclock/internal/stats"
	"smartoclock/internal/timeseries"
	"smartoclock/internal/workload"
)

// ClusterSystem identifies a system under test in the cluster emulation
// (§V-A).
type ClusterSystem int

const (
	// SysBaseline neither scales out nor up.
	SysBaseline ClusterSystem = iota
	// SysScaleOut scales instance counts on observed tail latency.
	SysScaleOut
	// SysScaleUp overclocks on observed tail latency, no admission control.
	SysScaleUp
	// SysSmartOClock runs the full platform: WI agents, sOAs, gOA.
	SysSmartOClock
	// SysNaiveOClock grants all overclock requests (power-constrained
	// comparison).
	SysNaiveOClock
)

// String returns the system name.
func (s ClusterSystem) String() string {
	switch s {
	case SysBaseline:
		return "Baseline"
	case SysScaleOut:
		return "ScaleOut"
	case SysScaleUp:
		return "ScaleUp"
	case SysSmartOClock:
		return "SmartOClock"
	case SysNaiveOClock:
		return "NaiveOClock"
	default:
		return fmt.Sprintf("ClusterSystem(%d)", int(s))
	}
}

// ClusterSystems returns the four systems of Fig 12-14 in plot order.
func ClusterSystems() []ClusterSystem {
	return []ClusterSystem{SysBaseline, SysScaleOut, SysScaleUp, SysSmartOClock}
}

// ClusterConfig parameterizes the 36-server emulation.
type ClusterConfig struct {
	Seed     int64
	Start    time.Time
	Duration time.Duration
	Tick     time.Duration
	Warmup   time.Duration

	SocialNetServers int // latency-critical apps, one per server
	MLServers        int // throughput-optimized neighbours
	SpareServers     int // scale-out targets (second rack in the paper)
	HW               machine.Config
	CoresPerService  int // cores per microservice VM; an app replica is 8 of them

	// RackLimitScale shrinks the main rack's limit for power-constrained
	// experiments (1 = generous headroom).
	RackLimitScale float64
	// OCBudgetScale is the fraction of the run each core may spend
	// overclocked (2 = effectively unlimited; the overclocking-
	// constrained experiment lowers it).
	OCBudgetScale float64
	// Proactive selects proactive vs reactive corrective scale-out.
	Proactive bool
	// ProvisionDelay is how long a newly created replica takes to boot
	// and become ready — the minutes-long VM startup that motivates
	// overclocking as the faster lever (§I).
	ProvisionDelay time.Duration

	System ClusterSystem

	// Workers bounds how many independent cluster emulations run
	// concurrently in the multi-system sweeps (RunFig12To14,
	// RunPowerConstrained, RunOCConstrained); <= 0 selects GOMAXPROCS.
	// A single RunCluster is inherently serial — one shared rack state —
	// so the system sweep is the sharding unit. Results are identical for
	// any worker count: each run owns its own rng seeded from cfg.Seed.
	Workers int

	// Observe attaches a metrics registry and event tracer to the run and
	// returns the frozen snapshot and trace in ClusterResult. Every run
	// carries a system label so sweep results merge without collisions.
	Observe bool
	// RecordEvery, when positive and Observe is set, samples the registry
	// into per-interval time series at this sim-time cadence.
	RecordEvery time.Duration
	// TraceOnly restricts the event trace to these components; empty
	// records everything.
	TraceOnly []obs.Component
}

// DefaultClusterConfig mirrors the paper's testbed: 36 overclockable
// servers (28 + 8 across two racks), 14 SocialNet instance groups (apps)
// and 14 MLTrain servers. The paper's "instance" is one SocialNet app
// replica; autoscaling starts at 14 instances.
func DefaultClusterConfig(system ClusterSystem) ClusterConfig {
	return ClusterConfig{
		Seed:             1,
		Start:            time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC),
		Duration:         40 * time.Minute,
		Tick:             time.Second,
		Warmup:           8 * time.Minute,
		SocialNetServers: 14,
		MLServers:        14,
		SpareServers:     8,
		HW:               machine.DefaultConfig(),
		CoresPerService:  4,
		RackLimitScale:   1,
		OCBudgetScale:    2,
		Proactive:        true,
		ProvisionDelay:   90 * time.Second,
		System:           system,
	}
}

// appLoadLevel assigns the paper's Low/Medium/High grouping across the 14
// apps: 5 low, 5 medium, 4 high.
func appLoadLevel(app, total int) workload.LoadLevel {
	third := total / 3
	switch {
	case app < third+1:
		return workload.LowLoad
	case app < 2*third+2:
		return workload.MediumLoad
	default:
		return workload.HighLoad
	}
}

// appReplica is one full SocialNet app instance: one VM per microservice,
// all on one server.
type appReplica struct {
	name      string
	server    *cluster.Server
	vms       []*cluster.VM        // one per service
	instances []*workload.Instance // queueing state per service
	slot      *spareSlot           // nil for the primary replica
	readyAt   time.Time            // serves load only once booted
}

// ready reports whether the replica has finished provisioning.
func (r *appReplica) ready(now time.Time) bool { return !now.Before(r.readyAt) }

// spareSlot is a 32-core (8 services × 4 cores) allocation on a spare
// server; each spare holds two.
type spareSlot struct {
	server    *cluster.Server
	firstCore int
	used      bool
}

// appState is one SocialNet app under test.
type appState struct {
	id       int
	level    workload.LoadLevel
	services []workload.Microservice
	gens     []*workload.LoadGen
	replicas []*appReplica
	ctrl     autoscale.Controller
	wi       *core.GlobalWI

	// lastNorm is the most recent end-to-end normalized tail, updated
	// every tick (controllers act on it from the first tick).
	lastNorm float64
	// Measurement accumulators (post-warmup): streaming P99 of the
	// per-tick normalized tail (O(1) memory for arbitrarily long runs)
	// plus the running mean of the normalized average latency.
	p99Est    *stats.P2Quantile
	avgSum    float64
	avgCount  int
	sloMisses int
}

// ClusterResult aggregates one run.
type ClusterResult struct {
	System ClusterSystem
	// NormP99/NormAvg: per load level, averaged across that level's apps:
	// the P99 (mean) of per-tick app latency samples normalized to SLOs.
	NormP99 map[workload.LoadLevel]float64
	NormAvg map[workload.LoadLevel]float64
	// MissedSLO counts (app, tick) pairs with a violated SLO.
	MissedSLO map[workload.LoadLevel]int
	// MeanInstances is the average number of concurrently active app
	// replicas (the paper's VM instances, Fig 13); MeanInstancesByLevel
	// splits it per load class.
	MeanInstances        float64
	MeanInstancesByLevel map[workload.LoadLevel]float64
	// ServerEnergy is mean per-home-server energy per load level in
	// joules (Fig 14); TotalEnergy covers every server; LCEnergy covers
	// only latency-critical servers (home + spares).
	ServerEnergy map[workload.LoadLevel]float64
	TotalEnergy  float64
	LCEnergy     float64
	// MLThroughput is mean normalized MLTrain throughput (1 = turbo).
	MLThroughput float64
	// CapEvents on the main rack.
	CapEvents int
	// OCRequests/OCRejections across all sOAs.
	OCRequests, OCRejections int
	// MissedTickFrac is the fraction of measured ticks with at least one
	// SLO violation anywhere.
	MissedTickFrac float64
	// Metrics and Trace are set when ClusterConfig.Observe is true; Series
	// additionally requires RecordEvery.
	Metrics *metrics.Snapshot
	Trace   *obs.Tracer
	Series  *metrics.Recording
}

// RunCluster executes the 36-server emulation for one system.
func RunCluster(cfg ClusterConfig) (*ClusterResult, error) {
	if cfg.Tick <= 0 || cfg.Duration < cfg.Tick {
		return nil, fmt.Errorf("experiment: bad tick/duration %v/%v", cfg.Tick, cfg.Duration)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	turbo := cfg.HW.TurboMHz
	maxOC := cfg.HW.MaxOCMHz
	services := workload.SocialNet()
	coresPerReplica := cfg.CoresPerService * len(services)

	// Observability: one registry and tracer per run; every series carries
	// the system label so sweep snapshots merge without identity collisions.
	var reg *metrics.Registry
	var tracer *obs.Tracer
	var recorder *metrics.Recorder
	var sysLabels []metrics.Label
	if cfg.Observe {
		reg = metrics.NewRegistry()
		tracer = newShardTracer(cfg.TraceOnly)
		sysLabels = []metrics.Label{metrics.L("system", cfg.System.String())}
		if cfg.RecordEvery > 0 {
			recorder = metrics.NewRecorder(reg, cfg.Start, cfg.RecordEvery)
		}
	}

	// --- Servers -----------------------------------------------------------
	var mlServers, snServers, spares []*cluster.Server
	for i := 0; i < cfg.MLServers; i++ {
		mlServers = append(mlServers, cluster.NewServer(fmt.Sprintf("ml-%02d", i), cfg.HW, 1))
	}
	for i := 0; i < cfg.SocialNetServers; i++ {
		snServers = append(snServers, cluster.NewServer(fmt.Sprintf("sn-%02d", i), cfg.HW, 0))
	}
	for i := 0; i < cfg.SpareServers; i++ {
		spares = append(spares, cluster.NewServer(fmt.Sprintf("sp-%02d", i), cfg.HW, 0))
	}
	if reg != nil {
		for _, s := range append(append(append([]*cluster.Server{}, snServers...), mlServers...), spares...) {
			s.Instrument(reg, sysLabels...)
		}
	}

	mls := make([]*workload.MLTrain, len(mlServers))
	for i, s := range mlServers {
		mls[i] = workload.NewMLTrain(100)
		for c := 0; c < s.NumCores(); c++ {
			s.SetCoreUtil(c, mls[i].Util)
		}
	}

	// Replicas prefer empty spare servers: operators spread instances
	// across servers for resiliency (§III-Q2), so a scale-out usually
	// activates a whole server — idle and static power included. Only
	// when every spare already hosts a replica does placement double up.
	var slots []*spareSlot
	for pass := 0; ; pass++ {
		off := pass * coresPerReplica
		added := false
		for _, s := range spares {
			if off+coresPerReplica <= s.NumCores() {
				slots = append(slots, &spareSlot{server: s, firstCore: off})
				added = true
			}
		}
		if !added || pass >= 1 {
			break // two passes: anti-affinity first, then one double-up
		}
	}
	takeSlot := func() *spareSlot {
		for _, sl := range slots {
			if !sl.used {
				sl.used = true
				return sl
			}
		}
		return nil
	}

	// --- Apps ----------------------------------------------------------------
	var now time.Time
	buildReplica := func(app *appState, server *cluster.Server, firstCore int, slot *spareSlot) (*appReplica, error) {
		r := &appReplica{
			name:   fmt.Sprintf("app%02d-r%d", app.id, len(app.replicas)),
			server: server,
			slot:   slot,
		}
		if slot != nil {
			r.readyAt = now.Add(cfg.ProvisionDelay) // booting a VM takes minutes
		}
		for si, svc := range services {
			vm, err := cluster.PlaceVM(server, fmt.Sprintf("%s-%s", r.name, svc.Name),
				cfg.CoresPerService, firstCore+si*cfg.CoresPerService)
			if err != nil {
				return nil, err
			}
			r.vms = append(r.vms, vm)
			r.instances = append(r.instances, workload.NewInstance(svc))
		}
		return r, nil
	}

	ascfg := autoscale.DefaultConfig(turbo, maxOC, cfg.HW.StepMHz)
	ascfg.MaxInst = 3
	// Vertical scaling acts at DVFS speed (milliseconds in the paper), far
	// faster than VM creation.
	ascfgUp := ascfg
	ascfgUp.Cooldown = 15 * time.Second

	var apps []*appState
	for i := 0; i < cfg.SocialNetServers; i++ {
		app := &appState{
			id: i, level: appLoadLevel(i, cfg.SocialNetServers),
			services: services, p99Est: stats.NewP2Quantile(0.99),
		}
		// Time-varying load: a steady base with square transient peaks
		// (Fig 1's Services B/C shape compressed to emulation scale).
		// Peak offered load corresponds to the level's Fig 2 operating
		// point; the base leaves headroom at turbo.
		var baseRho, spikeFactor float64
		switch app.level {
		case workload.LowLoad:
			baseRho, spikeFactor = 0.35, 1
		case workload.MediumLoad:
			baseRho, spikeFactor = 0.50, 1.55
		default:
			baseRho, spikeFactor = 0.65, 1.36
		}
		for _, svc := range services {
			app.gens = append(app.gens, &workload.LoadGen{
				BaseRPS:     baseRho * svc.CapacityRPS(turbo, turbo),
				BurstProb:   cfg.Tick.Seconds() / (5 * 60),
				BurstFactor: 1.05,
				BurstLen:    int(30 / cfg.Tick.Seconds()),
				NoiseSD:     0.04,
				SpikeFactor: spikeFactor,
				SpikePeriod: 15 * time.Minute,
				SpikeLen:    5 * time.Minute,
				SpikePhase:  time.Duration(i) * 15 * time.Minute / 14,
			})
		}
		r, err := buildReplica(app, snServers[i], 0, nil)
		if err != nil {
			return nil, err
		}
		app.replicas = []*appReplica{r}
		switch cfg.System {
		case SysBaseline:
			app.ctrl = autoscale.NewBaseline(ascfg)
		case SysScaleOut:
			app.ctrl = autoscale.NewScaleOut(ascfg)
		case SysScaleUp:
			app.ctrl = autoscale.NewScaleUp(ascfgUp)
		case SysSmartOClock, SysNaiveOClock:
			mp := core.DefaultMetricPolicy()
			sc := core.DefaultScaleOutConfig()
			sc.MaxInstances = 3
			sc.Proactive = cfg.Proactive
			// The WI agent works on SLO-normalized latency: SLO = 1.
			app.wi = core.NewGlobalWI(1, &mp, nil, sc)
			if reg != nil {
				app.wi.Instrument(reg, tracer, fmt.Sprintf("app%02d", app.id), sysLabels...)
			}
		}
		apps = append(apps, app)
	}

	// --- Racks -----------------------------------------------------------------
	// One representative workload tick to estimate steady power, then set
	// the main rack's limit with a margin.
	for _, app := range apps {
		r := app.replicas[0]
		for si := range services {
			res := r.instances[si].Step(cfg.Tick, app.gens[si].BaseRPS, turbo, turbo, nil)
			r.vms[si].SetUtil(res.Util)
			r.instances[si].Reset()
		}
	}
	mainServers := make([]power.Server, 0, len(mlServers)+len(snServers))
	est := 0.0
	for _, s := range mlServers {
		mainServers = append(mainServers, s)
		est += s.Power()
	}
	for _, s := range snServers {
		mainServers = append(mainServers, s)
		est += s.Power()
	}
	// §VI: the production cluster "provisioned adequate power to avoid
	// capping; the limits are lowered for power management evaluations" —
	// RackLimitScale < 1 does exactly that.
	mainLimit := cfg.RackLimitScale * est * 1.25
	mainRack := power.NewRack(power.DefaultRackConfig("rack-main", mainLimit), mainServers...)
	if reg != nil {
		mainRack.Instrument(reg, tracer, sysLabels...)
	}

	var spareRack *power.Rack
	if len(spares) > 0 {
		spareServers := make([]power.Server, 0, len(spares))
		for _, s := range spares {
			spareServers = append(spareServers, s)
		}
		limit := float64(len(spares)) * cluster.NewServer("est", cfg.HW, 0).Machine().MaxPower(maxOC) * 1.05
		spareRack = power.NewRack(power.DefaultRackConfig("rack-spare", limit), spareServers...)
		if reg != nil {
			spareRack.Instrument(reg, tracer, sysLabels...)
		}
	}

	// --- SmartOClock control plane ------------------------------------------------
	usesSOA := cfg.System == SysSmartOClock || cfg.System == SysNaiveOClock
	soas := make(map[string]*core.SOA)
	appByReplica := make(map[string]*appState)
	var goa *core.GOA
	if usesSOA {
		goa = core.NewGOA("rack-main", mainLimit)
		soaCfg := core.DefaultSOAConfig()
		soaCfg.ProfileStep = time.Minute
		soaCfg.ExploreConfirm = 30 * time.Second
		soaCfg.ExploitTime = 5 * time.Minute
		soaCfg.ExhaustionWindow = 5 * time.Minute
		soaCfg.DefaultOCHorizon = 5 * time.Minute
		soaCfg.AdmissionUtil = 0.6
		if cfg.System == SysNaiveOClock {
			soaCfg.Naive = true
		}
		bcfg := lifetime.BudgetConfig{
			Epoch:     24 * time.Hour,
			Fraction:  cfg.OCBudgetScale * cfg.Duration.Hours() / 24,
			CarryOver: false,
		}
		mkSOA := func(s *cluster.Server, even float64) {
			budgets := lifetime.NewCoreBudgets(bcfg, s.NumCores(), cfg.Start)
			a := core.NewSOA(soaCfg, s, budgets, even, cfg.Start)
			if reg != nil {
				a.Instrument(reg, tracer, sysLabels...)
			}
			a.OnReject = func(vm string, reason core.RejectReason) {
				if app, ok := appByReplica[vm]; ok && app.wi != nil {
					app.wi.ReportRejection(vm, reason)
				}
			}
			soas[s.Name()] = a
			a.OnExhaustionSoon = func(kind core.ExhaustionKind, at time.Time) {
				// Only the apps whose sessions are consuming this
				// server's budget need to take corrective action.
				for vm := range a.Sessions() {
					if app, ok := appByReplica[vm]; ok && app.wi != nil {
						app.wi.ReportExhaustion(kind, at)
					}
				}
			}
		}
		evenMain := mainLimit / float64(len(mainServers))
		for _, s := range snServers {
			mkSOA(s, evenMain)
		}
		for _, s := range mlServers {
			mkSOA(s, evenMain)
		}
		if spareRack != nil {
			evenSpare := spareRack.Config().LimitWatts / float64(len(spares))
			for _, s := range spares {
				mkSOA(s, evenSpare)
			}
		}
		mainRack.Subscribe(func(ev power.Event) {
			for _, s := range snServers {
				soas[s.Name()].OnRackEvent(now, ev)
			}
			for _, s := range mlServers {
				soas[s.Name()].OnRackEvent(now, ev)
			}
		})
	}
	for _, app := range apps {
		appByReplica[app.replicas[0].name] = app
	}

	// --- Main loop ------------------------------------------------------------------
	ticks := int(cfg.Duration / cfg.Tick)
	warmupTicks := int(cfg.Warmup / cfg.Tick)
	controlEvery := int((5 * time.Second) / cfg.Tick)
	if controlEvery < 1 {
		controlEvery = 1
	}
	budgetEvery := int((30 * time.Second) / cfg.Tick)
	rackEvery := int(time.Second / cfg.Tick)
	if rackEvery < 1 {
		rackEvery = 1
	}

	replicaTotal := 0
	replicaByLevel := map[workload.LoadLevel]int{}
	replicaTicks := 0
	measStartEnergy := map[*cluster.Server]float64{}
	measuredTicks := 0
	// Spare servers are charged only while hosting replicas: an unused
	// spare returns to the provider's pool and is not this workload's
	// cost, which is exactly why fewer scale-outs save energy (Fig 14).
	spareActiveEnergy := 0.0
	spareHasActive := func(sp *cluster.Server) bool {
		for _, sl := range slots {
			if sl.server == sp && sl.used {
				return true
			}
		}
		return false
	}

	allServers := append(append(append([]*cluster.Server{}, snServers...), mlServers...), spares...)

	for t := 0; t < ticks; t++ {
		now = cfg.Start.Add(time.Duration(t) * cfg.Tick)
		measuring := t >= warmupTicks
		if t == warmupTicks {
			for _, s := range allServers {
				measStartEnergy[s] = s.Energy()
			}
		}

		// 1. Workload step. The app-level metric is end-to-end: a request
		// traverses the microservice chain, so the app's latency is the
		// sum of per-service latencies and its SLO the sum of per-service
		// SLOs.
		for _, app := range apps {
			sumP99, sumAvg, sumSLO := 0.0, 0.0, 0.0
			ready := app.replicas[:0:0]
			for _, r := range app.replicas {
				if r.ready(now) {
					ready = append(ready, r)
				}
			}
			if len(ready) == 0 {
				ready = app.replicas[:1] // the primary always serves
			}
			for si, svc := range services {
				rps := app.gens[si].RPSAt(now, rng)
				per := rps / float64(len(ready))
				svcP99, svcAvg := 0.0, 0.0
				for _, r := range ready {
					freq := r.vms[si].Freq()
					res := r.instances[si].Step(cfg.Tick, per, freq, turbo, rng)
					r.vms[si].SetUtil(res.Util)
					if res.P99MS > svcP99 {
						svcP99 = res.P99MS
					}
					svcAvg += res.AvgMS
				}
				svcAvg /= float64(len(ready))
				sumP99 += svcP99
				sumAvg += svcAvg
				sumSLO += svc.SLOms()
			}
			e2eNorm := sumP99 / sumSLO
			app.lastNorm = e2eNorm
			missed := e2eNorm > 1
			if app.wi != nil {
				for _, r := range app.replicas {
					app.wi.Observe(r.name, core.InstanceMetrics{P99MS: e2eNorm})
				}
			}
			if measuring {
				app.p99Est.Add(e2eNorm)
				app.avgSum += sumAvg / sumSLO
				app.avgCount++
				if missed {
					app.sloMisses++
				}
			}
		}
		if measuring {
			measuredTicks++
		}

		// 2. Control decisions. WI agents decide every tick (overclocking
		// reacts at millisecond scale, §IV-D); autoscale controllers keep
		// the coarser cadence of VM automation.
		if t%controlEvery == 0 || usesSOA {
			for _, app := range apps {
				// Decisions react to the current state: bursts last far
				// longer than a control period, so the latest value
				// catches them without replaying pre-action latency.
				p99 := app.lastNorm
				switch {
				case app.ctrl != nil:
					if t%controlEvery != 0 {
						continue
					}
					dec := app.ctrl.Control(now, p99, 1)
					scaleApp(app, dec.Instances, takeSlot, buildReplica, appByReplica)
					if cfg.System == SysScaleUp {
						for _, r := range app.replicas {
							for _, vm := range r.vms {
								for _, c := range vm.Cores {
									vm.Server.SetDesiredFreq(c, dec.FreqMHz)
								}
							}
						}
					}
				case app.wi != nil:
					dir := app.wi.Decide(now)
					scaleApp(app, dir.Instances, takeSlot, buildReplica, appByReplica)
					for _, r := range app.replicas {
						if !r.ready(now) {
							continue // cannot overclock a booting VM
						}
						soa := soas[r.server.Name()]
						if soa == nil {
							continue
						}
						_, active := soa.Sessions()[r.name]
						want := dir.Overclock[r.name]
						if want && !active {
							cores := replicaCores(r)
							soa.Request(now, core.Request{
								VM: r.name, Cores: len(cores), TargetMHz: maxOC,
								Priority: core.PriorityMetric, PreferredCores: cores,
							})
						} else if !want && active {
							soa.Stop(now, r.name)
						}
					}
				}
			}
		}

		// 3. sOA ticks, budget refresh, rack managers.
		if usesSOA && t%rackEvery == 0 {
			for _, a := range soas {
				a.Tick(now)
			}
		}
		if usesSOA && cfg.System == SysSmartOClock && t > 0 && t%budgetEvery == 0 {
			refreshBudgets(goa, snServers, mlServers, soas, now)
		}
		if t%rackEvery == 0 {
			mainRack.Tick(now)
			if spareRack != nil {
				spareRack.Tick(now)
			}
		}

		// 4. Advance hardware.
		for _, s := range snServers {
			s.Advance(cfg.Tick)
		}
		for i, s := range mlServers {
			mls[i].Step(cfg.Tick, s.EffectiveFreq(0), turbo)
			s.Advance(cfg.Tick)
		}
		for _, s := range spares {
			s.Advance(cfg.Tick)
			if measuring && spareHasActive(s) {
				spareActiveEnergy += s.Power() * cfg.Tick.Seconds()
			}
		}
		if measuring {
			for _, app := range apps {
				replicaTotal += len(app.replicas)
				replicaByLevel[app.level] += len(app.replicas)
			}
			replicaTicks++
		}

		// 5. Telemetry recording at the tick's end boundary.
		if recorder != nil {
			recorder.Tick(now.Add(cfg.Tick))
		}
	}

	// --- Aggregate --------------------------------------------------------------
	res := &ClusterResult{
		System:               cfg.System,
		NormP99:              map[workload.LoadLevel]float64{},
		NormAvg:              map[workload.LoadLevel]float64{},
		MissedSLO:            map[workload.LoadLevel]int{},
		MeanInstancesByLevel: map[workload.LoadLevel]float64{},
		ServerEnergy:         map[workload.LoadLevel]float64{},
		CapEvents:            mainRack.CapEvents(),
	}
	counts := map[workload.LoadLevel]int{}
	for _, app := range apps {
		res.NormP99[app.level] += app.p99Est.Value()
		if app.avgCount > 0 {
			res.NormAvg[app.level] += app.avgSum / float64(app.avgCount)
		}
		res.MissedSLO[app.level] += app.sloMisses
		counts[app.level]++
	}
	for lvl, n := range counts {
		if n > 0 {
			res.NormP99[lvl] /= float64(n)
			res.NormAvg[lvl] /= float64(n)
		}
	}
	if replicaTicks > 0 {
		res.MeanInstances = float64(replicaTotal) / float64(replicaTicks)
		for lvl, total := range replicaByLevel {
			res.MeanInstancesByLevel[lvl] = float64(total) / float64(replicaTicks) / float64(counts[lvl])
		}
	}
	energyCount := map[workload.LoadLevel]int{}
	for i, s := range snServers {
		lvl := appLoadLevel(i, cfg.SocialNetServers)
		res.ServerEnergy[lvl] += s.Energy() - measStartEnergy[s]
		energyCount[lvl]++
	}
	for lvl, n := range energyCount {
		if n > 0 {
			res.ServerEnergy[lvl] /= float64(n)
		}
	}
	for _, s := range snServers {
		res.TotalEnergy += s.Energy() - measStartEnergy[s]
		res.LCEnergy += s.Energy() - measStartEnergy[s]
	}
	for _, s := range mlServers {
		res.TotalEnergy += s.Energy() - measStartEnergy[s]
	}
	res.TotalEnergy += spareActiveEnergy
	res.LCEnergy += spareActiveEnergy
	mlSum := 0.0
	for _, ml := range mls {
		mlSum += ml.MeanThroughput() / 100
	}
	res.MLThroughput = mlSum / float64(len(mls))
	for _, a := range soas {
		res.OCRequests += a.Granted() + a.Rejected()
		res.OCRejections += a.Rejected()
	}
	if measuredTicks > 0 {
		// Mean over apps of the fraction of measured time in violation —
		// the §V-A overclocking-constrained metric ("misses the SLO for
		// x% of time").
		total := 0.0
		for _, app := range apps {
			total += float64(app.sloMisses) / float64(measuredTicks)
		}
		res.MissedTickFrac = total / float64(len(apps))
	}
	if reg != nil {
		res.Metrics = reg.Snapshot()
		res.Trace = tracer
		if recorder != nil {
			res.Series = recorder.Recording()
		}
	}
	return res, nil
}

// replicaCores flattens a replica's VM core lists.
func replicaCores(r *appReplica) []int {
	var cores []int
	for _, vm := range r.vms {
		cores = append(cores, vm.Cores...)
	}
	return cores
}

// scaleApp grows or shrinks an app's replica set using spare-server slots.
func scaleApp(app *appState, want int, takeSlot func() *spareSlot,
	build func(*appState, *cluster.Server, int, *spareSlot) (*appReplica, error),
	byName map[string]*appState) {
	if want < 1 {
		want = 1
	}
	for len(app.replicas) < want {
		sl := takeSlot()
		if sl == nil {
			return
		}
		r, err := build(app, sl.server, sl.firstCore, sl)
		if err != nil {
			sl.used = false
			return
		}
		app.replicas = append(app.replicas, r)
		byName[r.name] = app
	}
	for len(app.replicas) > want {
		last := app.replicas[len(app.replicas)-1]
		if last.slot == nil {
			return // never remove the primary
		}
		for _, vm := range last.vms {
			vm.SetUtil(0)
		}
		last.slot.used = false
		delete(byName, last.name)
		if app.wi != nil {
			app.wi.Forget(last.name)
		}
		app.replicas = app.replicas[:len(app.replicas)-1]
	}
}

// lastSamples returns the trailing n entries of xs.
func lastSamples(xs []float64, n int) []float64 {
	if len(xs) <= n {
		return xs
	}
	return xs[len(xs)-n:]
}

// refreshBudgets recomputes heterogeneous budgets from each sOA's recent
// profile window — the cluster-scale analogue of the weekly template
// exchange (§IV-C) compressed to the emulation's time scale.
func refreshBudgets(goa *core.GOA, snServers, mlServers []*cluster.Server, soas map[string]*core.SOA, now time.Time) {
	all := append(append([]*cluster.Server{}, snServers...), mlServers...)
	isSN := map[string]bool{}
	for _, s := range snServers {
		isSN[s.Name()] = true
	}
	for _, s := range all {
		a := soas[s.Name()]
		window := lastSamples(a.PowerRecord().Values, 10)
		med := stats.Median(window)
		if len(window) == 0 {
			med = s.Power()
		}
		granted := float64(a.ActiveOCCores())
		requested := a.RecentRequestedCores(5)
		if granted > requested {
			requested = granted
		}
		if isSN[s.Name()] && requested < 16 {
			// Latency-critical servers keep a floor reserve: their load
			// waves are phase-shifted, so demand can arrive on servers
			// that were quiet during the profiling window.
			requested = 16
		}
		goa.SetProfile(s.Name(), core.ServerProfile{
			Power: timeseries.FlatWeek(med, time.Hour),
			OC: &predict.OCTemplate{
				Requested: timeseries.FlatWeek(requested, time.Hour),
				Granted:   timeseries.FlatWeek(granted, time.Hour),
			},
			OCCoreCost: s.Machine().Config().OCCoreCost(),
		})
	}
	budgets := goa.BudgetsAt(now)
	for _, s := range all {
		if b, ok := budgets[s.Name()]; ok && b > 0 {
			soas[s.Name()].SetStaticBudget(b, true)
		}
	}
}
